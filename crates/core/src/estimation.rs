//! Step 1 on the simulated GPU: one lane per voxel's Markov chain.
//!
//! "We use one thread for the MCMC of one voxel, since the MCMC processes
//! for different voxels are completely independent of each other." Unlike
//! tracking, every chain runs the same `NumLoops`, so MCMC lanes are
//! perfectly balanced and need no segmentation — which is why the paper's
//! Table III speedup is a flat ~34× while tracking required the
//! load-balancing contribution.

use tracto_diffusion::posterior::{BallSticksParams, NUM_PARAMETERS};
use tracto_diffusion::{Acquisition, BallSticksPosterior, PriorConfig};
use tracto_gpu_sim::{Gpu, LaneStatus, MultiGpu, SimKernel, TimingLedger};
use tracto_mcmc::chain::ChainConfig;
use tracto_mcmc::checkpoint::{CheckpointPolicy, CHECKPOINT_LANE_BYTES};
use tracto_mcmc::mh::MhSampler;
use tracto_mcmc::voxelwise::{default_proposal_scales, SampleVolumes};
use tracto_rng::HybridTaus;
use tracto_trace::TractoResult;
use tracto_volume::{Mask, Volume4};

/// One voxel's chain as a GPU lane.
pub struct McmcLane {
    voxel_index: usize,
    signal: Vec<f64>,
    sampler: MhSampler<NUM_PARAMETERS>,
    rng: HybridTaus,
    loops_done: u32,
    samples: Vec<[f64; NUM_PARAMETERS]>,
}

/// The MCMC kernel: one `step` = one MH loop (one update of each of the 9
/// parameters), matching the paper's Fig. 2 inner loop.
struct McmcKernel<'a> {
    acq: &'a Acquisition,
    prior: PriorConfig,
    config: ChainConfig,
}

impl SimKernel for McmcKernel<'_> {
    type Lane = McmcLane;

    /// One MH loop performs `NUM_PARAMETERS` posterior evaluations, each a
    /// full pass over the measurement vector — far heavier than the
    /// device's reference iteration (one tracking step, a handful of
    /// arithmetic ops plus a texture fetch). The weight makes simulated
    /// MCMC kernel seconds comparable across the two steps.
    fn cost_weight(&self) -> f64 {
        // Calibrated so a paper-shaped run (205k voxels × 600 loops on the
        // default 64-measurement protocol) lands near Table III's 41.3 s of
        // GPU time: one MH loop ≈ 0.08 × 9 × n_meas tracking-step
        // equivalents.
        NUM_PARAMETERS as f64 * self.acq.len() as f64 * 0.08
    }

    fn step(&self, lane: &mut McmcLane) -> LaneStatus {
        let config = self.config;
        if lane.loops_done >= config.num_loops() {
            return LaneStatus::Finished;
        }
        let posterior = BallSticksPosterior::new(self.acq, &lane.signal, self.prior);
        let target =
            |p: &[f64; NUM_PARAMETERS]| posterior.log_posterior(&BallSticksParams::from_array(*p));
        lane.sampler.step_loop(&target, &mut lane.rng);
        lane.loops_done += 1;
        // Record a sample every L loops after burn-in.
        if lane.loops_done > config.num_burnin {
            let since = lane.loops_done - config.num_burnin;
            if since % config.sample_interval == 0
                && lane.samples.len() < config.num_samples as usize
            {
                lane.samples.push(*lane.sampler.params());
            }
        }
        if lane.loops_done >= config.num_loops() {
            LaneStatus::Finished
        } else {
            LaneStatus::Continue
        }
    }
}

/// Report of a GPU-simulated MCMC run.
#[derive(Debug, Clone)]
pub struct McmcGpuReport {
    /// The six 4-D sample volumes.
    pub samples: SampleVolumes,
    /// Timing breakdown of the run.
    pub ledger: TimingLedger,
    /// Number of voxels estimated.
    pub voxels: usize,
    /// Chain-state snapshots taken (0 when checkpointing is disabled).
    pub checkpoints: u64,
}

/// Build one [`McmcLane`] per masked voxel, seeded per-voxel so results are
/// independent of how lanes are later partitioned across devices.
fn build_mcmc_lanes(
    acq: &Acquisition,
    dwi: &Volume4<f32>,
    mask: &Mask,
    prior: PriorConfig,
    config: ChainConfig,
    seed: u64,
) -> Vec<McmcLane> {
    mask.indices()
        .into_iter()
        .map(|voxel_index| {
            let signal: Vec<f64> = dwi
                .voxel_at(voxel_index)
                .iter()
                .map(|&v| v as f64)
                .collect();
            let posterior = BallSticksPosterior::new(acq, &signal, prior);
            let mut init = posterior.initial_params();
            if prior.max_sticks == 1 {
                init.f2 = 0.0;
            }
            let scales = default_proposal_scales(init.s0);
            let target = |p: &[f64; NUM_PARAMETERS]| {
                posterior.log_posterior(&BallSticksParams::from_array(*p))
            };
            let mut sampler = MhSampler::new(&target, init.to_array(), scales, config.adapt);
            if prior.max_sticks == 1 {
                use tracto_diffusion::posterior::param_index;
                sampler.freeze(param_index::F2);
                sampler.freeze(param_index::TH2);
                sampler.freeze(param_index::PH2);
            }
            McmcLane {
                voxel_index,
                signal,
                sampler,
                rng: HybridTaus::seed_stream(seed, voxel_index as u64),
                loops_done: 0,
                samples: Vec::with_capacity(config.num_samples as usize),
            }
        })
        .collect()
}

/// Assemble downloaded lanes into the six sample volumes.
fn assemble_volumes(
    lanes: &[McmcLane],
    dwi: &Volume4<f32>,
    config: ChainConfig,
) -> (SampleVolumes, usize) {
    let mut volumes = SampleVolumes::zeros(dwi.dims(), config.num_samples as usize);
    let dims = dwi.dims();
    let mut voxels = 0;
    for lane in lanes {
        let c = dims.coords(lane.voxel_index);
        let out = tracto_mcmc::chain::ChainOutput::<NUM_PARAMETERS> {
            samples: lane.samples.clone(),
            final_scales: *lane.sampler.scales(),
            final_acceptance: lane.sampler.recent_acceptance_rates(),
        };
        volumes.store_chain(c, &out);
        voxels += 1;
    }
    (volumes, voxels)
}

/// Run Step 1 on the simulated GPU: upload the DWI volume, run one lane per
/// masked voxel for `NumLoops` iterations, download the six sample volumes.
///
/// Results are bit-identical to
/// [`VoxelEstimator::run_voxel`](tracto_mcmc::VoxelEstimator) with the same
/// `(seed, voxel)` pairs, since lanes execute the same chain code with the
/// same per-voxel RNG streams.
pub fn run_mcmc_gpu(
    gpu: &mut Gpu,
    acq: &Acquisition,
    dwi: &Volume4<f32>,
    mask: &Mask,
    prior: PriorConfig,
    config: ChainConfig,
    seed: u64,
) -> McmcGpuReport {
    assert_eq!(dwi.nt(), acq.len(), "DWI volume count must match protocol");
    assert_eq!(dwi.dims(), mask.dims(), "mask dims must match DWI dims");
    gpu.reset();

    // Upload the 4-D DWI volume plus b-values/gradients (Fig. 1 inputs).
    let dwi_bytes = dwi.len() as u64 * 4;
    let protocol_bytes = acq.len() as u64 * 16; // b + 3-vector per volume
    gpu.transfer_to_device(dwi_bytes + protocol_bytes);

    let mut lanes = build_mcmc_lanes(acq, dwi, mask, prior, config, seed);

    let kernel = McmcKernel { acq, prior, config };
    // Every chain needs exactly NumLoops iterations: one launch, perfectly
    // balanced lanes.
    gpu.launch(&kernel, &mut lanes, config.num_loops());

    // Download the six sample volumes.
    let out_bytes = 6 * dwi.dims().len() as u64 * config.num_samples as u64 * 4;
    gpu.transfer_to_host(out_bytes);

    let (volumes, voxels) = assemble_volumes(&lanes, dwi, config);

    McmcGpuReport {
        samples: volumes,
        ledger: *gpu.ledger(),
        voxels,
        checkpoints: 0,
    }
}

/// Run Step 1 across a device pool with chain checkpointing.
///
/// The single `NumLoops` launch is split into `checkpoint.segments(..)`
/// budgets; after each non-final segment the kept chain state is
/// snapshotted to the host ([`CHECKPOINT_LANE_BYTES`] per lane). Each chain
/// guards on its own loop counter, so segmentation — and any mid-segment
/// device-loss failover inside
/// [`launch_partitioned`](MultiGpu::launch_partitioned) — leaves the
/// posterior samples bit-identical to [`run_mcmc_gpu`] with the same seed:
/// a failed launch never advances a lane, so a lost device costs only the
/// replay time since the last completed segment, never a burn-in re-run.
///
/// Errors with [`tracto_trace::TractoError::Capacity`] if every device in
/// the pool is lost.
#[allow(clippy::too_many_arguments)]
pub fn run_mcmc_multi(
    multi: &mut MultiGpu,
    acq: &Acquisition,
    dwi: &Volume4<f32>,
    mask: &Mask,
    prior: PriorConfig,
    config: ChainConfig,
    seed: u64,
    checkpoint: CheckpointPolicy,
) -> TractoResult<McmcGpuReport> {
    assert_eq!(dwi.nt(), acq.len(), "DWI volume count must match protocol");
    assert_eq!(dwi.dims(), mask.dims(), "mask dims must match DWI dims");

    // Every device needs the full DWI volume and protocol.
    let dwi_bytes = dwi.len() as u64 * 4;
    let protocol_bytes = acq.len() as u64 * 16;
    multi.broadcast_to_devices(dwi_bytes + protocol_bytes);

    let mut lanes = build_mcmc_lanes(acq, dwi, mask, prior, config, seed);
    let kernel = McmcKernel { acq, prior, config };

    let segments = checkpoint.segments(config.num_loops());
    let mut checkpoints = 0u64;
    for (i, &budget) in segments.iter().enumerate() {
        multi.launch_partitioned(&kernel, &mut lanes, budget)?;
        if i + 1 < segments.len() {
            // Snapshot chain state so a later device loss replays at most
            // one segment.
            multi.gather_to_host(lanes.len() as u64 * CHECKPOINT_LANE_BYTES);
            checkpoints += 1;
        }
    }

    // Download the six sample volumes.
    let out_bytes = 6 * dwi.dims().len() as u64 * config.num_samples as u64 * 4;
    multi.gather_to_host(out_bytes);

    let (volumes, voxels) = assemble_volumes(&lanes, dwi, config);

    Ok(McmcGpuReport {
        samples: volumes,
        ledger: multi.aggregate_ledger(),
        voxels,
        checkpoints,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracto_gpu_sim::DeviceConfig;
    use tracto_mcmc::VoxelEstimator;
    use tracto_phantom::datasets;
    use tracto_volume::{Dim3, Ijk};

    fn small_gpu() -> Gpu {
        Gpu::new(DeviceConfig {
            wavefront_size: 8,
            num_compute_units: 2,
            waves_per_cu: 2,
            ..DeviceConfig::radeon_5870()
        })
    }

    #[test]
    fn gpu_mcmc_matches_cpu_reference_exactly() {
        let ds = datasets::single_bundle(Dim3::new(6, 4, 4), Some(25.0), 3);
        let mask = Mask::from_fn(ds.dwi.dims(), |c| c.j == 2 && c.k == 2);
        let config = ChainConfig::fast_test();
        let prior = PriorConfig::default();
        let mut gpu = small_gpu();
        let gpu_out = run_mcmc_gpu(&mut gpu, &ds.acq, &ds.dwi, &mask, prior, config, 77);
        let cpu_out = VoxelEstimator::new(&ds.acq, &ds.dwi, &mask, prior, config, 77).run_serial();
        assert_eq!(
            gpu_out.samples.f1, cpu_out.f1,
            "f1 volumes must be bit-identical"
        );
        assert_eq!(gpu_out.samples.th1, cpu_out.th1);
        assert_eq!(gpu_out.samples.ph2, cpu_out.ph2);
        assert_eq!(gpu_out.voxels, mask.count());
    }

    #[test]
    fn mcmc_lanes_perfectly_balanced() {
        let ds = datasets::single_bundle(Dim3::new(6, 4, 4), None, 3);
        let mask = Mask::from_fn(ds.dwi.dims(), |c| c.k == 2);
        let config = ChainConfig::fast_test();
        let mut gpu = small_gpu();
        let out = run_mcmc_gpu(
            &mut gpu,
            &ds.acq,
            &ds.dwi,
            &mask,
            PriorConfig::default(),
            config,
            5,
        );
        // All lanes run NumLoops: zero lockstep waste.
        assert!(
            (out.ledger.simd_utilization() - 1.0).abs() < 1e-12,
            "utilization {}",
            out.ledger.simd_utilization()
        );
        assert_eq!(out.ledger.launches, 1);
    }

    #[test]
    fn transfers_match_volume_sizes() {
        let ds = datasets::single_bundle(Dim3::new(6, 4, 4), None, 3);
        let mask = Mask::from_fn(ds.dwi.dims(), |c| c == Ijk::new(3, 2, 2));
        let config = ChainConfig::fast_test();
        let mut gpu = small_gpu();
        let out = run_mcmc_gpu(
            &mut gpu,
            &ds.acq,
            &ds.dwi,
            &mask,
            PriorConfig::default(),
            config,
            5,
        );
        let dwi_bytes = ds.dwi.len() as u64 * 4;
        assert!(out.ledger.bytes_h2d >= dwi_bytes);
        let sample_bytes = 6 * ds.dwi.dims().len() as u64 * config.num_samples as u64 * 4;
        assert_eq!(out.ledger.bytes_d2h, sample_bytes);
    }

    #[test]
    fn multi_device_checkpointed_matches_single_device_exactly() {
        let ds = datasets::single_bundle(Dim3::new(6, 4, 4), Some(25.0), 3);
        let mask = Mask::from_fn(ds.dwi.dims(), |c| c.j == 2 && c.k == 2);
        let config = ChainConfig::fast_test();
        let prior = PriorConfig::default();
        let mut gpu = small_gpu();
        let single = run_mcmc_gpu(&mut gpu, &ds.acq, &ds.dwi, &mask, prior, config, 77);
        let mut multi = MultiGpu::new(small_gpu().config().clone(), 3);
        let multi_out = run_mcmc_multi(
            &mut multi,
            &ds.acq,
            &ds.dwi,
            &mask,
            prior,
            config,
            77,
            CheckpointPolicy::every(3),
        )
        .unwrap();
        assert_eq!(single.samples.f1, multi_out.samples.f1);
        assert_eq!(single.samples.th1, multi_out.samples.th1);
        assert_eq!(single.samples.ph2, multi_out.samples.ph2);
        assert_eq!(single.voxels, multi_out.voxels);
        assert!(multi_out.checkpoints > 0, "policy of 3 loops snapshots");
        // Snapshots are charged to the transfer ledger.
        assert!(multi_out.ledger.bytes_d2h > single.ledger.bytes_d2h);
    }

    #[test]
    fn device_loss_mid_estimation_resumes_from_checkpoint() {
        use tracto_gpu_sim::FaultPlan;

        let ds = datasets::single_bundle(Dim3::new(6, 4, 4), Some(25.0), 3);
        let mask = Mask::from_fn(ds.dwi.dims(), |c| c.j == 2 && c.k == 2);
        let config = ChainConfig::fast_test();
        let prior = PriorConfig::default();
        let run = |plan: Option<&FaultPlan>| {
            let mut multi = MultiGpu::new(small_gpu().config().clone(), 3);
            if let Some(p) = plan {
                multi.set_fault_plan(p);
            }
            run_mcmc_multi(
                &mut multi,
                &ds.acq,
                &ds.dwi,
                &mask,
                prior,
                config,
                77,
                CheckpointPolicy::every(3),
            )
            .map(|r| {
                (
                    r,
                    multi.failovers(),
                    multi.aggregate_ledger().useful_iterations,
                )
            })
        };
        let (clean, _, clean_useful) = run(None).unwrap();
        // Lose device 1 partway through the segmented launches.
        let plan = FaultPlan::parse("fault 1 2 device-lost").unwrap();
        let (faulted, failovers, faulted_useful) = run(Some(&plan)).unwrap();
        assert_eq!(clean.samples.f1, faulted.samples.f1, "bit-identical");
        assert_eq!(clean.samples.th1, faulted.samples.th1);
        assert_eq!(failovers, 1);
        // No burn-in re-run: failed launches never advance a lane, so the
        // faulted run performs exactly the same useful work.
        assert_eq!(clean_useful, faulted_useful);
    }

    #[test]
    fn all_devices_lost_surfaces_capacity_error() {
        use tracto_gpu_sim::FaultPlan;

        let ds = datasets::single_bundle(Dim3::new(6, 4, 4), None, 3);
        let mask = Mask::from_fn(ds.dwi.dims(), |c| c == Ijk::new(3, 2, 2));
        let plan = FaultPlan::parse("fault 0 0 device-lost\nfault 1 0 device-lost").unwrap();
        let mut multi = MultiGpu::new(small_gpu().config().clone(), 2);
        multi.set_fault_plan(&plan);
        let err = run_mcmc_multi(
            &mut multi,
            &ds.acq,
            &ds.dwi,
            &mask,
            PriorConfig::default(),
            ChainConfig::fast_test(),
            5,
            CheckpointPolicy::disabled(),
        )
        .expect_err("no devices left");
        assert_eq!(err.kind(), tracto_trace::ErrorKind::Capacity);
    }

    #[test]
    fn sample_count_honored() {
        let ds = datasets::single_bundle(Dim3::new(6, 4, 4), None, 3);
        let mask = Mask::from_fn(ds.dwi.dims(), |c| c == Ijk::new(3, 2, 2));
        let config = ChainConfig::fast_test();
        let mut gpu = small_gpu();
        let out = run_mcmc_gpu(
            &mut gpu,
            &ds.acq,
            &ds.dwi,
            &mask,
            PriorConfig::default(),
            config,
            5,
        );
        assert_eq!(out.samples.num_samples(), config.num_samples as usize);
    }
}
