//! Step 1 on the simulated GPU: one lane per voxel's Markov chain.
//!
//! "We use one thread for the MCMC of one voxel, since the MCMC processes
//! for different voxels are completely independent of each other." Unlike
//! tracking, every chain runs the same `NumLoops`, so MCMC lanes are
//! perfectly balanced and need no segmentation — which is why the paper's
//! Table III speedup is a flat ~34× while tracking required the
//! load-balancing contribution.

use tracto_diffusion::posterior::{BallSticksParams, NUM_PARAMETERS};
use tracto_diffusion::{Acquisition, BallSticksPosterior, PriorConfig};
use tracto_gpu_sim::{Gpu, LaneStatus, SimKernel, TimingLedger};
use tracto_mcmc::chain::ChainConfig;
use tracto_mcmc::mh::MhSampler;
use tracto_mcmc::voxelwise::{default_proposal_scales, SampleVolumes};
use tracto_rng::HybridTaus;
use tracto_volume::{Mask, Volume4};

/// One voxel's chain as a GPU lane.
pub struct McmcLane {
    voxel_index: usize,
    signal: Vec<f64>,
    sampler: MhSampler<NUM_PARAMETERS>,
    rng: HybridTaus,
    loops_done: u32,
    samples: Vec<[f64; NUM_PARAMETERS]>,
}

/// The MCMC kernel: one `step` = one MH loop (one update of each of the 9
/// parameters), matching the paper's Fig. 2 inner loop.
struct McmcKernel<'a> {
    acq: &'a Acquisition,
    prior: PriorConfig,
    config: ChainConfig,
}

impl SimKernel for McmcKernel<'_> {
    type Lane = McmcLane;

    /// One MH loop performs `NUM_PARAMETERS` posterior evaluations, each a
    /// full pass over the measurement vector — far heavier than the
    /// device's reference iteration (one tracking step, a handful of
    /// arithmetic ops plus a texture fetch). The weight makes simulated
    /// MCMC kernel seconds comparable across the two steps.
    fn cost_weight(&self) -> f64 {
        // Calibrated so a paper-shaped run (205k voxels × 600 loops on the
        // default 64-measurement protocol) lands near Table III's 41.3 s of
        // GPU time: one MH loop ≈ 0.08 × 9 × n_meas tracking-step
        // equivalents.
        NUM_PARAMETERS as f64 * self.acq.len() as f64 * 0.08
    }

    fn step(&self, lane: &mut McmcLane) -> LaneStatus {
        let config = self.config;
        if lane.loops_done >= config.num_loops() {
            return LaneStatus::Finished;
        }
        let posterior = BallSticksPosterior::new(self.acq, &lane.signal, self.prior);
        let target =
            |p: &[f64; NUM_PARAMETERS]| posterior.log_posterior(&BallSticksParams::from_array(*p));
        lane.sampler.step_loop(&target, &mut lane.rng);
        lane.loops_done += 1;
        // Record a sample every L loops after burn-in.
        if lane.loops_done > config.num_burnin {
            let since = lane.loops_done - config.num_burnin;
            if since % config.sample_interval == 0
                && lane.samples.len() < config.num_samples as usize
            {
                lane.samples.push(*lane.sampler.params());
            }
        }
        if lane.loops_done >= config.num_loops() {
            LaneStatus::Finished
        } else {
            LaneStatus::Continue
        }
    }
}

/// Report of a GPU-simulated MCMC run.
#[derive(Debug, Clone)]
pub struct McmcGpuReport {
    /// The six 4-D sample volumes.
    pub samples: SampleVolumes,
    /// Timing breakdown of the run.
    pub ledger: TimingLedger,
    /// Number of voxels estimated.
    pub voxels: usize,
}

/// Run Step 1 on the simulated GPU: upload the DWI volume, run one lane per
/// masked voxel for `NumLoops` iterations, download the six sample volumes.
///
/// Results are bit-identical to
/// [`VoxelEstimator::run_voxel`](tracto_mcmc::VoxelEstimator) with the same
/// `(seed, voxel)` pairs, since lanes execute the same chain code with the
/// same per-voxel RNG streams.
pub fn run_mcmc_gpu(
    gpu: &mut Gpu,
    acq: &Acquisition,
    dwi: &Volume4<f32>,
    mask: &Mask,
    prior: PriorConfig,
    config: ChainConfig,
    seed: u64,
) -> McmcGpuReport {
    assert_eq!(dwi.nt(), acq.len(), "DWI volume count must match protocol");
    assert_eq!(dwi.dims(), mask.dims(), "mask dims must match DWI dims");
    gpu.reset();

    // Upload the 4-D DWI volume plus b-values/gradients (Fig. 1 inputs).
    let dwi_bytes = dwi.len() as u64 * 4;
    let protocol_bytes = acq.len() as u64 * 16; // b + 3-vector per volume
    gpu.transfer_to_device(dwi_bytes + protocol_bytes);

    let mut lanes: Vec<McmcLane> = mask
        .indices()
        .into_iter()
        .map(|voxel_index| {
            let signal: Vec<f64> = dwi
                .voxel_at(voxel_index)
                .iter()
                .map(|&v| v as f64)
                .collect();
            let posterior = BallSticksPosterior::new(acq, &signal, prior);
            let mut init = posterior.initial_params();
            if prior.max_sticks == 1 {
                init.f2 = 0.0;
            }
            let scales = default_proposal_scales(init.s0);
            let target = |p: &[f64; NUM_PARAMETERS]| {
                posterior.log_posterior(&BallSticksParams::from_array(*p))
            };
            let mut sampler = MhSampler::new(&target, init.to_array(), scales, config.adapt);
            if prior.max_sticks == 1 {
                use tracto_diffusion::posterior::param_index;
                sampler.freeze(param_index::F2);
                sampler.freeze(param_index::TH2);
                sampler.freeze(param_index::PH2);
            }
            McmcLane {
                voxel_index,
                signal,
                sampler,
                rng: HybridTaus::seed_stream(seed, voxel_index as u64),
                loops_done: 0,
                samples: Vec::with_capacity(config.num_samples as usize),
            }
        })
        .collect();

    let kernel = McmcKernel { acq, prior, config };
    // Every chain needs exactly NumLoops iterations: one launch, perfectly
    // balanced lanes.
    gpu.launch(&kernel, &mut lanes, config.num_loops());

    // Download the six sample volumes.
    let out_bytes = 6 * dwi.dims().len() as u64 * config.num_samples as u64 * 4;
    gpu.transfer_to_host(out_bytes);

    let mut volumes = SampleVolumes::zeros(dwi.dims(), config.num_samples as usize);
    let dims = dwi.dims();
    let mut voxels = 0;
    for lane in &lanes {
        let c = dims.coords(lane.voxel_index);
        let out = tracto_mcmc::chain::ChainOutput::<NUM_PARAMETERS> {
            samples: lane.samples.clone(),
            final_scales: *lane.sampler.scales(),
            final_acceptance: lane.sampler.recent_acceptance_rates(),
        };
        volumes.store_chain(c, &out);
        voxels += 1;
    }

    McmcGpuReport {
        samples: volumes,
        ledger: *gpu.ledger(),
        voxels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracto_gpu_sim::DeviceConfig;
    use tracto_mcmc::VoxelEstimator;
    use tracto_phantom::datasets;
    use tracto_volume::{Dim3, Ijk};

    fn small_gpu() -> Gpu {
        Gpu::new(DeviceConfig {
            wavefront_size: 8,
            num_compute_units: 2,
            waves_per_cu: 2,
            ..DeviceConfig::radeon_5870()
        })
    }

    #[test]
    fn gpu_mcmc_matches_cpu_reference_exactly() {
        let ds = datasets::single_bundle(Dim3::new(6, 4, 4), Some(25.0), 3);
        let mask = Mask::from_fn(ds.dwi.dims(), |c| c.j == 2 && c.k == 2);
        let config = ChainConfig::fast_test();
        let prior = PriorConfig::default();
        let mut gpu = small_gpu();
        let gpu_out = run_mcmc_gpu(&mut gpu, &ds.acq, &ds.dwi, &mask, prior, config, 77);
        let cpu_out = VoxelEstimator::new(&ds.acq, &ds.dwi, &mask, prior, config, 77).run_serial();
        assert_eq!(
            gpu_out.samples.f1, cpu_out.f1,
            "f1 volumes must be bit-identical"
        );
        assert_eq!(gpu_out.samples.th1, cpu_out.th1);
        assert_eq!(gpu_out.samples.ph2, cpu_out.ph2);
        assert_eq!(gpu_out.voxels, mask.count());
    }

    #[test]
    fn mcmc_lanes_perfectly_balanced() {
        let ds = datasets::single_bundle(Dim3::new(6, 4, 4), None, 3);
        let mask = Mask::from_fn(ds.dwi.dims(), |c| c.k == 2);
        let config = ChainConfig::fast_test();
        let mut gpu = small_gpu();
        let out = run_mcmc_gpu(
            &mut gpu,
            &ds.acq,
            &ds.dwi,
            &mask,
            PriorConfig::default(),
            config,
            5,
        );
        // All lanes run NumLoops: zero lockstep waste.
        assert!(
            (out.ledger.simd_utilization() - 1.0).abs() < 1e-12,
            "utilization {}",
            out.ledger.simd_utilization()
        );
        assert_eq!(out.ledger.launches, 1);
    }

    #[test]
    fn transfers_match_volume_sizes() {
        let ds = datasets::single_bundle(Dim3::new(6, 4, 4), None, 3);
        let mask = Mask::from_fn(ds.dwi.dims(), |c| c == Ijk::new(3, 2, 2));
        let config = ChainConfig::fast_test();
        let mut gpu = small_gpu();
        let out = run_mcmc_gpu(
            &mut gpu,
            &ds.acq,
            &ds.dwi,
            &mask,
            PriorConfig::default(),
            config,
            5,
        );
        let dwi_bytes = ds.dwi.len() as u64 * 4;
        assert!(out.ledger.bytes_h2d >= dwi_bytes);
        let sample_bytes = 6 * ds.dwi.dims().len() as u64 * config.num_samples as u64 * 4;
        assert_eq!(out.ledger.bytes_d2h, sample_bytes);
    }

    #[test]
    fn sample_count_honored() {
        let ds = datasets::single_bundle(Dim3::new(6, 4, 4), None, 3);
        let mask = Mask::from_fn(ds.dwi.dims(), |c| c == Ijk::new(3, 2, 2));
        let config = ChainConfig::fast_test();
        let mut gpu = small_gpu();
        let out = run_mcmc_gpu(
            &mut gpu,
            &ds.acq,
            &ds.dwi,
            &mask,
            PriorConfig::default(),
            config,
            5,
        );
        assert_eq!(out.samples.num_samples(), config.num_samples as usize);
    }
}
