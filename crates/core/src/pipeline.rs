//! The end-to-end pipeline: dataset → MCMC sampling → probabilistic
//! streamlining → connectivity.

use crate::estimation::run_mcmc_gpu_streamed;
use std::time::{Duration, Instant};
use tracto_diffusion::PriorConfig;
use tracto_gpu_sim::{DeviceConfig, Gpu, TimingLedger};
use tracto_mcmc::{ChainConfig, SampleVolumes, VoxelEstimator};
use tracto_phantom::Dataset;
use tracto_trace::Tracer;
use tracto_tracking::analytic::{analytic_params, mean_posterior};
use tracto_tracking::getter::Modality;
use tracto_tracking::gpu::{GpuTracker, SeedOrdering};
use tracto_tracking::probabilistic::{seeds_from_mask, CpuTracker, RecordMode};
use tracto_tracking::stop::mask_from_percentile;
use tracto_tracking::tensorline::TensorField;
use tracto_tracking::walker::TrackingParams;
use tracto_tracking::{SegmentationStrategy, TrackingOutput};
use tracto_volume::{Volume3, Volume4};

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// MCMC schedule.
    pub chain: ChainConfig,
    /// Priors for the ball-and-two-sticks posterior.
    pub prior: PriorConfig,
    /// Tracking parameters.
    pub tracking: TrackingParams,
    /// Kernel segmentation strategy (GPU backend).
    pub strategy: SegmentationStrategy,
    /// Seed submission ordering (GPU backend).
    pub ordering: SeedOrdering,
    /// Sub-voxel seed jitter (voxels).
    pub jitter: f64,
    /// Master seed.
    pub seed: u64,
    /// Record per-voxel connectivity.
    pub record_connectivity: bool,
    /// Stream lanes for the GPU backend: both steps issue their launches
    /// and transfers through the overlap scheduler with this many streams.
    /// `1` (the default) reproduces the serialized host loop exactly;
    /// results are bit-identical for any value, only simulated wall time
    /// changes.
    pub streams: usize,
    /// Which direction getter drives Step 2. The default (`Mcmc`) is
    /// bit-identical to the pre-modality pipeline; `Tensorline` replaces
    /// Step 1 with a closed-form tensor fit; `Analytic` collapses the
    /// posterior to its mean and tracks voxel-length hops.
    pub modality: Modality,
    /// Optional stop mask expressed as a percentile (0–100) of the
    /// dataset's mean-DWI values: streamlines stop on leaving the
    /// above-percentile region.
    pub stop_percentile: Option<f64>,
}

impl PipelineConfig {
    /// The paper's experimental configuration: burn-in 500, 50 samples at
    /// interval 2; step 0.1, angular threshold 0.9; the Table II
    /// increasing-interval array.
    pub fn paper_default() -> Self {
        PipelineConfig {
            chain: ChainConfig::paper_default(),
            prior: PriorConfig::default(),
            tracking: TrackingParams::paper_default(),
            strategy: SegmentationStrategy::paper_table2(),
            ordering: SeedOrdering::Natural,
            jitter: 0.5,
            seed: 42,
            record_connectivity: true,
            streams: 1,
            modality: Modality::Mcmc,
            stop_percentile: None,
        }
    }

    /// A configuration small enough for unit tests and examples.
    pub fn fast() -> Self {
        PipelineConfig {
            chain: ChainConfig::fast_test(),
            tracking: TrackingParams {
                max_steps: 400,
                ..TrackingParams::paper_default()
            },
            ..Self::paper_default()
        }
    }
}

/// Execution backend.
#[derive(Debug, Clone)]
pub enum Backend {
    /// Single-threaded CPU reference (the paper's baseline).
    CpuSerial,
    /// Rayon-parallel host execution.
    CpuParallel,
    /// The simulated GPU with a given device model.
    GpuSim(DeviceConfig),
}

/// Everything a pipeline run produces.
#[derive(Debug, Clone)]
pub struct PipelineOutcome {
    /// The six 4-D sample volumes from Step 1.
    pub samples: SampleVolumes,
    /// Step-2 output: fiber lengths, connectivity, total steps.
    pub tracking: TrackingOutput,
    /// Simulated Step-1 timing (GPU backend only).
    pub mcmc_ledger: Option<TimingLedger>,
    /// Simulated Step-2 timing (GPU backend only).
    pub tracking_ledger: Option<TimingLedger>,
    /// Wall-clock duration of Step 1.
    pub mcmc_wall: Duration,
    /// Wall-clock duration of Step 2.
    pub tracking_wall: Duration,
}

/// Per-voxel mean DWI signal — the scalar volume that `--stop-threshold`
/// percentiles are taken over, on both the CLI and the server side.
pub fn mean_dwi_volume(dwi: &Volume4<f32>) -> Volume3<f32> {
    Volume3::from_fn(dwi.dims(), |c| {
        let v = dwi.voxel(c);
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f32>() / v.len() as f32
        }
    })
}

/// The end-to-end driver.
#[derive(Debug, Clone)]
pub struct Pipeline {
    config: PipelineConfig,
    tracer: Tracer,
}

impl Pipeline {
    /// Create a pipeline with the given configuration.
    pub fn new(config: PipelineConfig) -> Self {
        Pipeline {
            config,
            tracer: Tracer::disabled(),
        }
    }

    /// Emit structured events (spans per step, per-launch GPU events,
    /// MCMC chain progress) into `tracer`.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// The configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Run both steps on `dataset` with the chosen backend. Seeds are the
    /// centers of all fiber-bearing voxels of the dataset's ground truth
    /// (the realistic seeding choice available because the phantom knows its
    /// anatomy; callers needing custom seeds use the step drivers directly).
    pub fn run(&self, dataset: &Dataset, backend: Backend) -> PipelineOutcome {
        let cfg = &self.config;
        let seeds = seeds_from_mask(&dataset.truth.fiber_mask());

        // ---- Step 1: local parameter estimation.
        let t0 = Instant::now();
        let step1 = self.tracer.span_with(
            "pipeline.step1",
            &[("voxels", dataset.wm_mask.count().into())],
        );
        let (samples, mcmc_ledger) = if cfg.modality == Modality::Tensorline {
            // The tensorline tier needs no posterior: Step 1 is the
            // closed-form tensor fit re-encoded as a one-sample volume,
            // identical on every backend.
            (
                TensorField::fit(&dataset.acq, &dataset.dwi).to_sample_volumes(),
                None,
            )
        } else {
            match &backend {
                Backend::CpuSerial => (
                    VoxelEstimator::new(
                        &dataset.acq,
                        &dataset.dwi,
                        &dataset.wm_mask,
                        cfg.prior,
                        cfg.chain,
                        cfg.seed,
                    )
                    .with_tracer(self.tracer.clone())
                    .run_serial(),
                    None,
                ),
                Backend::CpuParallel => (
                    VoxelEstimator::new(
                        &dataset.acq,
                        &dataset.dwi,
                        &dataset.wm_mask,
                        cfg.prior,
                        cfg.chain,
                        cfg.seed,
                    )
                    .with_tracer(self.tracer.clone())
                    .run_parallel(),
                    None,
                ),
                Backend::GpuSim(device) => {
                    let mut gpu = Gpu::with_tracer(device.clone(), self.tracer.clone());
                    let report = run_mcmc_gpu_streamed(
                        &mut gpu,
                        &dataset.acq,
                        &dataset.dwi,
                        &dataset.wm_mask,
                        cfg.prior,
                        cfg.chain,
                        cfg.seed,
                        cfg.streams,
                    );
                    (report.samples, Some(report.ledger))
                }
            }
        };
        step1.end_with(&[(
            "sim_s",
            mcmc_ledger
                .as_ref()
                .map(|l| l.total_s())
                .unwrap_or(0.0)
                .into(),
        )]);
        let mcmc_wall = t0.elapsed();

        // ---- Step 2: streamlining under the configured modality.
        let t1 = Instant::now();
        // The analytic tier tracks the posterior mean with voxel-length
        // hops; the other tiers track the Step-1 samples directly.
        // Deterministic tiers force the seed jitter off.
        let analytic_samples;
        let (track_samples, track_params, jitter): (&SampleVolumes, TrackingParams, f64) =
            match cfg.modality {
                Modality::Analytic => {
                    analytic_samples = mean_posterior(&samples);
                    (&analytic_samples, analytic_params(&cfg.tracking), 0.0)
                }
                _ => (
                    &samples,
                    cfg.tracking,
                    cfg.modality.effective_jitter(cfg.jitter),
                ),
            };
        let stop_mask = cfg
            .stop_percentile
            .and_then(|pct| mask_from_percentile(&mean_dwi_volume(&dataset.dwi), pct));
        let record = if cfg.record_connectivity {
            RecordMode::Connectivity
        } else {
            RecordMode::LengthsOnly
        };
        let step2 = self
            .tracer
            .span_with("pipeline.step2", &[("seeds", seeds.len().into())]);
        let (tracking, tracking_ledger) = match &backend {
            Backend::CpuSerial | Backend::CpuParallel => {
                let tracker = CpuTracker {
                    samples: track_samples,
                    params: track_params,
                    seeds,
                    mask: stop_mask.as_ref(),
                    jitter,
                    run_seed: cfg.seed,
                    bidirectional: false,
                };
                let out = if matches!(backend, Backend::CpuSerial) {
                    tracker.run_serial(record)
                } else {
                    tracker.run_parallel(record)
                };
                (out, None)
            }
            Backend::GpuSim(device) => {
                let mut gpu = Gpu::with_tracer(device.clone(), self.tracer.clone());
                let tracker = GpuTracker {
                    samples: track_samples,
                    params: track_params,
                    seeds,
                    mask: stop_mask.as_ref(),
                    strategy: cfg.strategy.clone(),
                    ordering: cfg.ordering,
                    jitter,
                    run_seed: cfg.seed,
                    record_visits: cfg.record_connectivity,
                };
                let report = tracker.run_streamed(&mut gpu, cfg.streams);
                let out = TrackingOutput {
                    lengths_by_sample: report.lengths_by_sample.clone(),
                    total_steps: report.total_steps,
                    connectivity: report.connectivity.clone(),
                    streamlines: Vec::new(),
                };
                (out, Some(report.ledger))
            }
        };
        step2.end_with(&[("total_steps", tracking.total_steps.into())]);
        let tracking_wall = t1.elapsed();

        PipelineOutcome {
            samples,
            tracking,
            mcmc_ledger,
            tracking_ledger,
            mcmc_wall,
            tracking_wall,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracto_phantom::datasets::DatasetSpec;
    use tracto_volume::Dim3;

    fn tiny_dataset() -> Dataset {
        DatasetSpec {
            name: "tiny".into(),
            dims: Dim3::new(10, 8, 8),
            spacing_mm: 2.5,
            n_dirs: 12,
            n_b0: 2,
            bval: 1000.0,
            snr: None,
            seed: 9,
        }
        .build()
    }

    #[test]
    fn gpu_backend_records_one_event_per_kernel_launch() {
        use std::sync::Arc;
        use tracto_trace::{RingSink, Tracer};

        let ds = tiny_dataset();
        let ring = Arc::new(RingSink::new(1 << 16));
        let pipeline =
            Pipeline::new(PipelineConfig::fast()).with_tracer(Tracer::shared(ring.clone()));
        let out = pipeline.run(&ds, Backend::GpuSim(DeviceConfig::radeon_5870()));
        let launches = out.mcmc_ledger.as_ref().unwrap().launches
            + out.tracking_ledger.as_ref().unwrap().launches;
        assert!(launches >= 1);
        assert_eq!(ring.count("gpu.launch") as u64, launches);
        // Each step's span opens and closes.
        assert_eq!(ring.count("pipeline.step1"), 2);
        assert_eq!(ring.count("pipeline.step2"), 2);
        // Transfers are traced too.
        assert!(ring.count("gpu.transfer_h2d") >= 1);
    }

    #[test]
    fn gpu_and_cpu_backends_agree_on_results() {
        let ds = tiny_dataset();
        let pipeline = Pipeline::new(PipelineConfig::fast());
        let cpu = pipeline.run(&ds, Backend::CpuSerial);
        let gpu = pipeline.run(&ds, Backend::GpuSim(DeviceConfig::radeon_5870()));
        // "CPU and GPU results are substantially the same" — here exactly.
        assert_eq!(cpu.samples.f1, gpu.samples.f1);
        assert_eq!(
            cpu.tracking.lengths_by_sample,
            gpu.tracking.lengths_by_sample
        );
        assert_eq!(cpu.tracking.total_steps, gpu.tracking.total_steps);
        // Ledgers only exist for the GPU backend.
        assert!(cpu.mcmc_ledger.is_none() && gpu.mcmc_ledger.is_some());
        assert!(gpu.tracking_ledger.unwrap().total_s() > 0.0);
    }

    #[test]
    fn parallel_backend_matches_serial() {
        let ds = tiny_dataset();
        let pipeline = Pipeline::new(PipelineConfig::fast());
        let a = pipeline.run(&ds, Backend::CpuSerial);
        let b = pipeline.run(&ds, Backend::CpuParallel);
        assert_eq!(a.samples.th1, b.samples.th1);
        assert_eq!(a.tracking.total_steps, b.tracking.total_steps);
    }

    #[test]
    fn connectivity_follows_the_bundle() {
        let ds = tiny_dataset();
        let pipeline = Pipeline::new(PipelineConfig::fast());
        let out = pipeline.run(&ds, Backend::CpuParallel);
        let conn = out.tracking.connectivity.expect("connectivity recorded");
        assert!(conn.total_streamlines() > 0);
        // Voxels on the bundle spine should be visited far more often than
        // corner voxels.
        let dims = ds.dwi.dims();
        let spine = tracto_volume::Ijk::new(dims.nx / 2, dims.ny / 2, dims.nz / 2);
        let corner = tracto_volume::Ijk::new(0, 0, 0);
        assert!(conn.count(spine) > conn.count(corner));
    }

    #[test]
    fn stream_count_never_changes_pipeline_results() {
        let ds = tiny_dataset();
        let serialized = Pipeline::new(PipelineConfig::fast())
            .run(&ds, Backend::GpuSim(DeviceConfig::radeon_5870()));
        for streams in [2usize, 4] {
            let cfg = PipelineConfig {
                streams,
                ..PipelineConfig::fast()
            };
            let streamed =
                Pipeline::new(cfg).run(&ds, Backend::GpuSim(DeviceConfig::radeon_5870()));
            assert_eq!(
                serialized.samples.f1, streamed.samples.f1,
                "{streams} streams: Step-1 samples must be bit-identical"
            );
            assert_eq!(serialized.samples.ph2, streamed.samples.ph2);
            assert_eq!(
                serialized.tracking.lengths_by_sample, streamed.tracking.lengths_by_sample,
                "{streams} streams: Step-2 lengths must be bit-identical"
            );
            assert_eq!(
                serialized.tracking.total_steps,
                streamed.tracking.total_steps
            );
            let (a, b) = (
                serialized.tracking.connectivity.as_ref().unwrap(),
                streamed.tracking.connectivity.as_ref().unwrap(),
            );
            assert_eq!(a.total_streamlines(), b.total_streamlines());
        }
    }

    #[test]
    fn analytic_modality_is_cheaper_than_mcmc_tracking() {
        let ds = tiny_dataset();
        let mcmc = Pipeline::new(PipelineConfig::fast())
            .run(&ds, Backend::GpuSim(DeviceConfig::radeon_5870()));
        let cfg = PipelineConfig {
            modality: Modality::Analytic,
            ..PipelineConfig::fast()
        };
        let analytic = Pipeline::new(cfg).run(&ds, Backend::GpuSim(DeviceConfig::radeon_5870()));
        // One mean volume instead of N samples, voxel-length hops instead
        // of sub-voxel steps: far fewer lanes and far fewer iterations.
        assert!(analytic.tracking.total_steps > 0);
        assert!(
            analytic.tracking.total_steps * 5 <= mcmc.tracking.total_steps,
            "analytic steps {} vs mcmc {}",
            analytic.tracking.total_steps,
            mcmc.tracking.total_steps
        );
        let (a, m) = (
            analytic.tracking_ledger.unwrap().total_s(),
            mcmc.tracking_ledger.unwrap().total_s(),
        );
        assert!(a * 5.0 <= m, "analytic {a:.4}s vs mcmc {m:.4}s");
        // Connectivity still lands on fiber voxels.
        let conn = analytic.tracking.connectivity.expect("connectivity");
        let fiber_hits: u32 = ds
            .truth
            .fiber_mask()
            .coords()
            .iter()
            .map(|&c| conn.count(c))
            .sum();
        assert!(fiber_hits > 0, "analytic tier must visit the bundle");
    }

    #[test]
    fn tensorline_modality_skips_mcmc_and_tracks() {
        let ds = tiny_dataset();
        let cfg = PipelineConfig {
            modality: Modality::Tensorline,
            ..PipelineConfig::fast()
        };
        let out = Pipeline::new(cfg).run(&ds, Backend::GpuSim(DeviceConfig::radeon_5870()));
        // Step 1 is the tensor fit: one sample volume, no MCMC ledger.
        assert_eq!(out.samples.num_samples(), 1);
        assert!(out.mcmc_ledger.is_none());
        assert!(out.tracking_ledger.is_some());
        assert!(out.tracking.total_steps > 0);
        // Deterministic tier: repeat runs are bit-identical even though
        // the config asks for jitter.
        let cfg2 = PipelineConfig {
            modality: Modality::Tensorline,
            jitter: 0.5,
            ..PipelineConfig::fast()
        };
        let out2 = Pipeline::new(cfg2).run(&ds, Backend::CpuSerial);
        assert_eq!(
            out.tracking.lengths_by_sample,
            out2.tracking.lengths_by_sample
        );
    }

    #[test]
    fn stop_percentile_truncates_streamlines() {
        let ds = tiny_dataset();
        let base = Pipeline::new(PipelineConfig::fast()).run(&ds, Backend::CpuSerial);
        let cfg = PipelineConfig {
            stop_percentile: Some(95.0),
            ..PipelineConfig::fast()
        };
        let masked = Pipeline::new(cfg).run(&ds, Backend::CpuSerial);
        assert!(masked.tracking.total_steps > 0);
        assert!(
            masked.tracking.total_steps < base.tracking.total_steps,
            "a tight stop mask must shorten tracking: {} vs {}",
            masked.tracking.total_steps,
            base.tracking.total_steps
        );
    }

    #[test]
    fn fast_config_is_consistent() {
        let cfg = PipelineConfig::fast();
        assert!(cfg.chain.num_loops() < ChainConfig::paper_default().num_loops());
        assert!(cfg.tracking.max_steps <= TrackingParams::paper_default().max_steps);
    }
}
