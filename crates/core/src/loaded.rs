//! Datasets loaded from real data rather than synthesized from a phantom
//! recipe — the receiving end of the protocol's chunked volume uploads.
//!
//! An uploaded volume travels (and is staged on disk) as a single **TRDS**
//! container: an 8-byte magic followed by three length-prefixed sections
//! holding exactly the bytes of the dataset directory layout the CLI
//! already writes — `dwi.trv4`, `wm_mask.trv3` (f32, thresholded at 0.5),
//! and `acq.txt` (`bval gx gy gz` rows). One blob means one content hash
//! names the whole dataset, and the on-disk store stays a flat file per
//! upload.
//!
//! A loaded [`Dataset`] carries a placeholder ground-truth field
//! ([`GroundTruthField::from_mask`]) whose fiber mask equals the uploaded
//! white-matter mask, so mask-driven seeding works unchanged; truth-based
//! accuracy metrics are meaningless for uploads and must not be reported.

use tracto_diffusion::Acquisition;
use tracto_phantom::datasets::{Dataset, DatasetSpec};
use tracto_phantom::field::GroundTruthField;
use tracto_phantom::signal::TissueParams;
use tracto_trace::{TractoError, TractoResult};
use tracto_volume::io::{read_volume3, read_volume4, write_volume3, write_volume4};
use tracto_volume::{Mask, Vec3, Volume3, Volume4, VoxelGrid};

/// Leading magic of a TRDS container (version byte included).
pub const TRDS_MAGIC: &[u8; 8] = b"TRDS\x01\r\n\0";

/// Stick fraction assigned to every in-mask voxel of the placeholder
/// truth field.
const PLACEHOLDER_FRACTION: f64 = 0.5;

/// b-values at or below this (s/mm²) count as b=0 measurements.
const B0_THRESHOLD: f64 = 50.0;

/// Render an acquisition as protocol text: one `bval gx gy gz` row per
/// measurement — byte-identical to the CLI's `acq.txt`.
pub fn acq_to_text(acq: &Acquisition) -> String {
    let mut out = String::new();
    for i in 0..acq.len() {
        let g = acq.grad(i);
        out.push_str(&format!("{} {} {} {}\n", acq.bval(i), g.x, g.y, g.z));
    }
    out
}

/// Parse protocol text (blank lines and `#` comments allowed).
pub fn acq_from_text(text: &str) -> TractoResult<Acquisition> {
    let mut bvals = Vec::new();
    let mut grads = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let parts: Vec<f64> = trimmed
            .split_whitespace()
            .map(|t| {
                t.parse().map_err(|_| {
                    TractoError::format(format!("acq line {}: bad number `{t}`", lineno + 1))
                })
            })
            .collect::<TractoResult<_>>()?;
        if parts.len() != 4 {
            return Err(TractoError::format(format!(
                "acq line {}: expected 4 columns",
                lineno + 1
            )));
        }
        bvals.push(parts[0]);
        grads.push(Vec3::new(parts[1], parts[2], parts[3]));
    }
    if bvals.is_empty() {
        return Err(TractoError::format("acq text: no measurements"));
    }
    Ok(Acquisition::new(bvals, grads))
}

fn push_section(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u64).to_be_bytes());
    out.extend_from_slice(bytes);
}

/// Serialize a dataset's components into one TRDS container blob.
pub fn encode_trds(dwi: &Volume4<f32>, mask: &Mask, acq: &Acquisition) -> TractoResult<Vec<u8>> {
    let mut dwi_bytes = Vec::new();
    write_volume4(&mut dwi_bytes, dwi)
        .map_err(|e| TractoError::format_with("encode dwi section", e))?;
    let mask_vol = mask.as_volume().map(|&b| if b { 1.0f32 } else { 0.0 });
    let mut mask_bytes = Vec::new();
    write_volume3(&mut mask_bytes, &mask_vol)
        .map_err(|e| TractoError::format_with("encode mask section", e))?;
    let acq_bytes = acq_to_text(acq).into_bytes();

    let mut out = Vec::with_capacity(8 + 24 + dwi_bytes.len() + mask_bytes.len() + acq_bytes.len());
    out.extend_from_slice(TRDS_MAGIC);
    push_section(&mut out, &dwi_bytes);
    push_section(&mut out, &mask_bytes);
    push_section(&mut out, &acq_bytes);
    Ok(out)
}

fn take_section<'a>(rest: &mut &'a [u8], what: &str) -> TractoResult<&'a [u8]> {
    if rest.len() < 8 {
        return Err(TractoError::format(format!(
            "TRDS container truncated before the {what} section length"
        )));
    }
    let (prefix, tail) = rest.split_at(8);
    let len = u64::from_be_bytes(prefix.try_into().expect("8 bytes")) as usize;
    if tail.len() < len {
        return Err(TractoError::format(format!(
            "TRDS container truncated inside the {what} section ({} of {len} bytes)",
            tail.len()
        )));
    }
    let (section, tail) = tail.split_at(len);
    *rest = tail;
    Ok(section)
}

/// Parse a TRDS container back into its components, validating shape
/// consistency (mask dims = dwi dims, acq rows = dwi measurements).
pub fn decode_trds(bytes: &[u8]) -> TractoResult<(Volume4<f32>, Mask, Acquisition)> {
    let Some(rest) = bytes.strip_prefix(TRDS_MAGIC.as_slice()) else {
        return Err(TractoError::format(
            "not a TRDS container (bad or missing magic)",
        ));
    };
    let mut rest = rest;
    let dwi_bytes = take_section(&mut rest, "dwi")?;
    let mask_bytes = take_section(&mut rest, "mask")?;
    let acq_bytes = take_section(&mut rest, "acq")?;
    if !rest.is_empty() {
        return Err(TractoError::format(format!(
            "TRDS container has {} trailing bytes",
            rest.len()
        )));
    }
    let dwi = read_volume4(&mut { dwi_bytes })
        .map_err(|e| TractoError::format_with("decode dwi section", e))?;
    let mask_vol: Volume3<f32> = read_volume3(&mut { mask_bytes })
        .map_err(|e| TractoError::format_with("decode mask section", e))?;
    let mask = Mask::threshold(&mask_vol, 0.5);
    let acq_text = std::str::from_utf8(acq_bytes)
        .map_err(|_| TractoError::format("acq section is not UTF-8"))?;
    let acq = acq_from_text(acq_text)?;
    if dwi.dims() != mask.dims() {
        return Err(TractoError::format(
            "TRDS inconsistent: mask dims differ from dwi",
        ));
    }
    if dwi.nt() != acq.len() {
        return Err(TractoError::format(format!(
            "TRDS inconsistent: dwi has {} measurements, acq {}",
            dwi.nt(),
            acq.len()
        )));
    }
    Ok((dwi, mask, acq))
}

/// Build a runnable [`Dataset`] from loaded components. `name` labels the
/// spec (e.g. `upload:<hash>`); spacing defaults to 2 mm isotropic since
/// the container carries no geometry.
pub fn dataset_from_parts(
    name: impl Into<String>,
    dwi: Volume4<f32>,
    mask: Mask,
    acq: Acquisition,
) -> TractoResult<Dataset> {
    if dwi.dims() != mask.dims() {
        return Err(TractoError::format(
            "loaded dataset: mask dims differ from dwi",
        ));
    }
    if dwi.nt() != acq.len() {
        return Err(TractoError::format(format!(
            "loaded dataset: dwi has {} measurements, acq {}",
            dwi.nt(),
            acq.len()
        )));
    }
    if mask.count() == 0 {
        return Err(TractoError::format(
            "loaded dataset: white-matter mask is empty",
        ));
    }
    let dims = dwi.dims();
    let n_b0 = (0..acq.len())
        .filter(|&i| acq.bval(i) <= B0_THRESHOLD)
        .count();
    let bval = (0..acq.len()).map(|i| acq.bval(i)).fold(0.0f64, f64::max);
    let truth = GroundTruthField::from_mask(dims, &mask, PLACEHOLDER_FRACTION);
    Ok(Dataset {
        spec: DatasetSpec {
            name: name.into(),
            dims,
            spacing_mm: 2.0,
            n_dirs: acq.len() - n_b0,
            n_b0,
            bval,
            snr: None,
            seed: 0,
        },
        grid: VoxelGrid::isotropic(dims, 2.0),
        acq,
        dwi,
        truth,
        wm_mask: mask,
        tissue: TissueParams::default(),
    })
}

/// Decode a TRDS container straight into a runnable [`Dataset`].
pub fn dataset_from_trds(name: impl Into<String>, bytes: &[u8]) -> TractoResult<Dataset> {
    let (dwi, mask, acq) = decode_trds(bytes)?;
    dataset_from_parts(name, dwi, mask, acq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracto_phantom::datasets;
    use tracto_trace::ErrorKind;
    use tracto_volume::Dim3;

    #[test]
    fn trds_round_trips_a_phantom_bit_for_bit() {
        let ds = datasets::single_bundle(Dim3::new(6, 5, 4), Some(25.0), 3);
        let blob = encode_trds(&ds.dwi, &ds.wm_mask, &ds.acq).unwrap();
        let loaded = dataset_from_trds("upload:test", &blob).unwrap();
        assert_eq!(loaded.dwi, ds.dwi, "DWI must survive bit-for-bit");
        assert_eq!(loaded.wm_mask.count(), ds.wm_mask.count());
        assert_eq!(loaded.acq.len(), ds.acq.len());
        for i in 0..loaded.acq.len() {
            assert!((loaded.acq.bval(i) - ds.acq.bval(i)).abs() < 1e-12);
            assert!((loaded.acq.grad(i) - ds.acq.grad(i)).norm() < 1e-12);
        }
        // Re-encoding the loaded components reproduces the same blob, so
        // the content hash is stable across a round trip.
        let again = encode_trds(&loaded.dwi, &loaded.wm_mask, &loaded.acq).unwrap();
        assert_eq!(blob, again);
        // Placeholder truth reproduces the mask for seeding.
        assert_eq!(
            loaded.truth.fiber_mask().count(),
            loaded.wm_mask.count(),
            "fiber mask must equal the uploaded wm mask"
        );
        assert_eq!(loaded.spec.n_dirs + loaded.spec.n_b0, loaded.acq.len());
    }

    #[test]
    fn hostile_containers_are_typed_format_errors() {
        let ds = datasets::single_bundle(Dim3::new(5, 4, 4), None, 2);
        let blob = encode_trds(&ds.dwi, &ds.wm_mask, &ds.acq).unwrap();

        let err = decode_trds(b"garbage").unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Format);
        assert!(err.to_string().contains("magic"));

        let err = decode_trds(&blob[..blob.len() / 2]).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Format);
        assert!(err.to_string().contains("truncated"));

        let mut trailing = blob.clone();
        trailing.push(0);
        let err = decode_trds(&trailing).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Format);
        assert!(err.to_string().contains("trailing"));

        // A section length announcing more than the blob holds.
        let mut lying = blob.clone();
        lying[8..16].copy_from_slice(&u64::MAX.to_be_bytes());
        let err = decode_trds(&lying).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Format);
    }

    #[test]
    fn acq_text_round_trips_and_rejects_bad_rows() {
        let acq = Acquisition::new(
            vec![0.0, 1000.0],
            vec![Vec3::new(0.0, 0.0, 0.0), Vec3::new(1.0, 0.0, 0.0)],
        );
        let text = acq_to_text(&acq);
        let back = acq_from_text(&text).unwrap();
        assert_eq!(back.len(), 2);
        assert!((back.bval(1) - 1000.0).abs() < 1e-12);

        assert_eq!(
            acq_from_text("1000 1 0").unwrap_err().kind(),
            ErrorKind::Format
        );
        assert_eq!(
            acq_from_text("# only comments\n").unwrap_err().kind(),
            ErrorKind::Format
        );
    }

    #[test]
    fn empty_mask_is_rejected() {
        let ds = datasets::single_bundle(Dim3::new(5, 4, 4), None, 2);
        let empty = Mask::from_fn(ds.dwi.dims(), |_| false);
        let err = dataset_from_parts("x", ds.dwi.clone(), empty, ds.acq.clone()).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Format);
        assert!(err.to_string().contains("empty"));
    }
}
