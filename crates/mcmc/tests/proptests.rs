//! Property-based tests of the sampler machinery.

use proptest::prelude::*;
use tracto_mcmc::chain::{run_chain, ChainConfig};
use tracto_mcmc::diagnostics::{autocorrelation, effective_sample_size};
use tracto_mcmc::mh::{AdaptScheme, MhSampler};
use tracto_rng::HybridTaus;

proptest! {
    #[test]
    fn chain_collects_exact_sample_count(
        burnin in 0u32..50,
        samples in 1u32..40,
        interval in 1u32..5,
        seed in 0u64..1000,
    ) {
        let target = |p: &[f64; 1]| -0.5 * p[0] * p[0];
        let config = ChainConfig {
            num_burnin: burnin,
            num_samples: samples,
            sample_interval: interval,
            adapt: AdaptScheme::paper_default(),
        };
        let mut rng = HybridTaus::new(seed);
        let out = run_chain(&target, [0.0], [1.0], config, &mut rng);
        prop_assert_eq!(out.samples.len(), samples as usize);
        prop_assert_eq!(config.num_loops(), burnin + samples * interval);
    }

    #[test]
    fn sampler_stays_in_support(
        lo in -5.0f64..0.0,
        width in 0.5f64..10.0,
        seed in 0u64..500,
        scale in 0.1f64..20.0,
    ) {
        // Uniform target on [lo, lo+width]: the chain must never escape.
        let hi = lo + width;
        let target = move |p: &[f64; 1]| {
            if p[0] >= lo && p[0] <= hi { 0.0 } else { f64::NEG_INFINITY }
        };
        let start = lo + width / 2.0;
        let mut s = MhSampler::new(&target, [start], [scale], AdaptScheme::Fixed);
        let mut rng = HybridTaus::new(seed);
        for _ in 0..300 {
            s.step_loop(&target, &mut rng);
            prop_assert!(s.params()[0] >= lo && s.params()[0] <= hi);
        }
    }

    #[test]
    fn log_density_never_decreases_on_accept(
        seed in 0u64..500,
        mean in -3.0f64..3.0,
    ) {
        let target = move |p: &[f64; 1]| -0.5 * (p[0] - mean) * (p[0] - mean);
        let mut s = MhSampler::new(&target, [0.0], [0.7], AdaptScheme::Fixed);
        let mut rng = HybridTaus::new(seed);
        for _ in 0..200 {
            let before = s.log_density();
            let accepted = s.step_param(&target, &mut rng, 0);
            if !accepted {
                prop_assert_eq!(s.log_density(), before, "rejected move changed density");
            } else {
                // Accepted moves can go downhill (that's MH), but the stored
                // density must match the target at the new point.
                let expect = target(s.params());
                prop_assert!((s.log_density() - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn determinism_across_replays(seed in 0u64..2000) {
        let target = |p: &[f64; 2]| -0.5 * (p[0] * p[0] + p[1] * p[1]);
        let run = |seed: u64| {
            let config = ChainConfig::fast_test();
            let mut rng = HybridTaus::new(seed);
            run_chain(&target, [1.0, -1.0], [0.5, 0.5], config, &mut rng).samples
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    #[test]
    fn ess_bounds(data in prop::collection::vec(-10.0f64..10.0, 8..300)) {
        let ess = effective_sample_size(&data);
        prop_assert!(ess >= 1.0 && ess <= data.len() as f64 + 1e-9);
    }

    #[test]
    fn autocorrelation_bounds(data in prop::collection::vec(-10.0f64..10.0, 4..200), lag in 0usize..5) {
        let rho = autocorrelation(&data, lag);
        prop_assert!(rho.abs() <= 1.0 + 1e-9, "|ρ|={rho}");
        if lag == 0 && data.iter().any(|&x| x != data[0]) {
            prop_assert!((rho - 1.0).abs() < 1e-9);
        }
    }
}
