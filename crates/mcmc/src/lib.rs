//! Metropolis–Hastings MCMC for voxelwise diffusion parameter estimation.
//!
//! This is Step 1 of the paper's pipeline (Fig. 2): for every valid
//! (white-matter) voxel, sample the posterior of the ball-and-two-sticks
//! parameters with a per-parameter Metropolis–Hastings sweep:
//!
//! * each loop performs one MH step per parameter (the paper: "the MH step
//!   is repeated NumParameters times");
//! * proposals are zero-mean Gaussian perturbations `N(0, σ²ⱼ)`;
//! * every `K` loops the proposal σs are adapted so acceptance stays in the
//!   25–50 % band the paper prescribes;
//! * after `NumBurnIn` loops, every `L`-th state is recorded until
//!   `NumSamples` samples exist, so
//!   `NumLoops = NumBurnIn + NumSamples × L`.
//!
//! The module split mirrors the paper's architecture: [`mh`] is the generic
//! sampler machinery (one simulated GPU lane's worth of state), [`cached`]
//! evaluates the ball-and-sticks posterior incrementally (per-parameter
//! proposals invalidate only the per-measurement terms they touch, bit-
//! identical to the full evaluation), [`chain`] drives one voxel's chain,
//! [`voxelwise`] fans chains out across the brain volume and assembles the
//! six 4-D sample volumes of Fig. 1, and [`diagnostics`] provides
//! acceptance/ESS checks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cached;
pub mod chain;
pub mod checkpoint;
pub mod diagnostics;
pub mod gibbs;
pub mod mh;
pub mod pointest;
pub mod voxelwise;

pub use cached::{BallSticksCacheBuffers, CachedBallSticks};
pub use chain::{ChainConfig, ChainOutput};
pub use checkpoint::{CheckpointPolicy, CheckpointStore, SnapshotLoad, CHECKPOINT_LANE_BYTES};
pub use mh::{AdaptScheme, IncrementalTarget, MhSampler, MhState, Target};
pub use pointest::{PointEstimate, PointEstimator};
pub use voxelwise::{SampleVolumes, VoxelEstimator};
