//! Chain checkpointing cadence and the persistent snapshot store.
//!
//! MCMC burn-in is the expensive, unsampled prefix of every chain; losing a
//! device mid-Step-1 without checkpoints means re-running it. A
//! [`CheckpointPolicy`] splits the single `NumLoops` launch into segments
//! of at most `every` loops. After each non-final segment the driver
//! snapshots kept samples to the host (a device→host transfer of
//! [`CHECKPOINT_LANE_BYTES`] per lane), so a device lost in segment *k*
//! resumes from the end of segment *k−1* instead of loop 0.
//!
//! Segmentation itself is free of numerical consequence: each chain guards
//! on its own `loops_done`, so running `NumLoops` iterations as one launch
//! or as many produces bit-identical samples. The policy only chooses how
//! much work sits between snapshots — the re-execution window after a
//! fault — against the transfer cost of taking them.
//!
//! [`CheckpointStore`] extends the same snapshots across *process* crashes:
//! a keyed directory of versioned, checksummed snapshot files, each written
//! atomically (write + fsync + rename) so a crash mid-write leaves either
//! the previous snapshot or a complete new one, never a torn file. A
//! snapshot that fails validation on load is quarantined (deleted) and
//! reported as [`SnapshotLoad::Corrupt`], so callers fall back to
//! restart-from-scratch instead of resuming from garbage.

use std::io::Write;
use std::path::{Path, PathBuf};
use tracto_trace::{TractoError, TractoResult};

/// Bytes snapshotted per lane at a checkpoint: the 9-parameter state vector
/// plus RNG state and loop counter, in device precision (f32 on the paper's
/// hardware).
pub const CHECKPOINT_LANE_BYTES: u64 = 64;

/// How often the voxelwise driver snapshots chain state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Maximum MH loops between snapshots. `u32::MAX` disables
    /// checkpointing (one segment, no snapshots).
    pub every: u32,
}

impl CheckpointPolicy {
    /// Checkpoint every `every` loops (clamped to at least 1).
    pub fn every(every: u32) -> Self {
        CheckpointPolicy {
            every: every.max(1),
        }
    }

    /// No checkpoints: the whole chain runs as one segment.
    pub fn disabled() -> Self {
        CheckpointPolicy { every: u32::MAX }
    }

    /// Whether this policy ever snapshots a chain of `num_loops` loops.
    pub fn active_for(&self, num_loops: u32) -> bool {
        self.every < num_loops
    }

    /// The per-segment loop budgets covering a chain of `num_loops` loops:
    /// `ceil(num_loops / every)` segments, all of size `every` except a
    /// final remainder. An empty chain yields no segments.
    pub fn segments(&self, num_loops: u32) -> Vec<u32> {
        let mut out = Vec::new();
        let mut remaining = num_loops;
        while remaining > 0 {
            let seg = remaining.min(self.every);
            out.push(seg);
            remaining -= seg;
        }
        out
    }
}

/// Snapshot file magic: identifies the format before any parsing.
const SNAPSHOT_MAGIC: [u8; 4] = *b"TCKP";

/// Current snapshot envelope version. Bumped on any layout change; older
/// versions are treated as corrupt (restart-from-scratch), never
/// misinterpreted.
pub const SNAPSHOT_VERSION: u32 = 1;

/// FNV-1a over a byte slice — the workspace's standard content hash, used
/// here as the snapshot integrity checksum.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Outcome of [`CheckpointStore::load`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotLoad {
    /// No snapshot exists for the key.
    Missing,
    /// A snapshot existed but failed validation (bad magic, unknown
    /// version, truncation, or checksum mismatch). The file has been
    /// quarantined (deleted); the payload describes what was wrong.
    Corrupt(String),
    /// A valid snapshot payload.
    Snapshot(Vec<u8>),
}

/// A keyed directory of durable, checksummed snapshots.
///
/// File layout per snapshot (`<key>.ckpt`), all integers little-endian:
///
/// ```text
/// magic "TCKP" | version u32 | payload_len u64 | payload … | fnv64 checksum
/// ```
///
/// The checksum covers everything before it. Writes go to `<key>.ckpt.tmp`
/// first, are fsynced, then renamed over the final name (and the directory
/// fsynced), so a crash at any instant leaves a previous complete snapshot
/// or none — never a partial one presented as valid.
pub struct CheckpointStore {
    dir: PathBuf,
}

impl CheckpointStore {
    /// Open (creating if needed) a store rooted at `dir`.
    pub fn open(dir: &Path) -> TractoResult<Self> {
        std::fs::create_dir_all(dir)
            .map_err(|e| TractoError::io(format!("create checkpoint dir {}", dir.display()), e))?;
        Ok(CheckpointStore {
            dir: dir.to_path_buf(),
        })
    }

    /// The directory snapshots live in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn validate_key(key: &str) -> TractoResult<()> {
        if key.is_empty()
            || !key
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
        {
            return Err(TractoError::config(format!(
                "checkpoint key `{key}` must be non-empty [A-Za-z0-9._-]"
            )));
        }
        Ok(())
    }

    fn snapshot_path(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.ckpt"))
    }

    /// Durably persist `payload` under `key`, replacing any previous
    /// snapshot atomically.
    pub fn save(&self, key: &str, payload: &[u8]) -> TractoResult<()> {
        Self::validate_key(key)?;
        let final_path = self.snapshot_path(key);
        let tmp_path = self.dir.join(format!("{key}.ckpt.tmp"));
        let mut buf = Vec::with_capacity(payload.len() + 24);
        buf.extend_from_slice(&SNAPSHOT_MAGIC);
        buf.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        buf.extend_from_slice(payload);
        let checksum = fnv1a(&buf);
        buf.extend_from_slice(&checksum.to_le_bytes());

        let io = |what: &str, e: std::io::Error| {
            TractoError::io(format!("{what} {}", tmp_path.display()), e)
        };
        let mut file = std::fs::File::create(&tmp_path).map_err(|e| io("create snapshot", e))?;
        file.write_all(&buf).map_err(|e| io("write snapshot", e))?;
        file.sync_all().map_err(|e| io("sync snapshot", e))?;
        drop(file);
        std::fs::rename(&tmp_path, &final_path).map_err(|e| {
            TractoError::io(format!("rename snapshot into {}", final_path.display()), e)
        })?;
        // fsync the directory so the rename itself is durable (best effort:
        // not every filesystem supports opening a directory for sync).
        if let Ok(d) = std::fs::File::open(&self.dir) {
            d.sync_all().ok();
        }
        Ok(())
    }

    /// Load the snapshot stored under `key`. Corrupt snapshots are deleted
    /// and reported as [`SnapshotLoad::Corrupt`] — loading never fails the
    /// caller into an unrecoverable state over bad bytes on disk.
    pub fn load(&self, key: &str) -> TractoResult<SnapshotLoad> {
        Self::validate_key(key)?;
        let path = self.snapshot_path(key);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(SnapshotLoad::Missing),
            Err(e) => {
                return Err(TractoError::io(
                    format!("read snapshot {}", path.display()),
                    e,
                ))
            }
        };
        match Self::decode(&bytes) {
            Ok(payload) => Ok(SnapshotLoad::Snapshot(payload)),
            Err(reason) => {
                std::fs::remove_file(&path).ok();
                Ok(SnapshotLoad::Corrupt(reason))
            }
        }
    }

    fn decode(bytes: &[u8]) -> Result<Vec<u8>, String> {
        if bytes.len() < 24 {
            return Err(format!("truncated envelope ({} bytes)", bytes.len()));
        }
        if bytes[0..4] != SNAPSHOT_MAGIC {
            return Err("bad magic".to_string());
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        if version != SNAPSHOT_VERSION {
            return Err(format!(
                "unsupported snapshot version {version} (expected {SNAPSHOT_VERSION})"
            ));
        }
        let payload_len = u64::from_le_bytes(bytes[8..16].try_into().unwrap()) as usize;
        let expected_total = 16usize
            .checked_add(payload_len)
            .and_then(|n| n.checked_add(8));
        if expected_total != Some(bytes.len()) {
            return Err(format!(
                "length mismatch: payload_len {payload_len}, file {} bytes",
                bytes.len()
            ));
        }
        let body = &bytes[..16 + payload_len];
        let stored = u64::from_le_bytes(bytes[16 + payload_len..].try_into().unwrap());
        let computed = fnv1a(body);
        if stored != computed {
            return Err(format!(
                "checksum mismatch: stored {stored:016x}, computed {computed:016x}"
            ));
        }
        Ok(bytes[16..16 + payload_len].to_vec())
    }

    /// Remove the snapshot for `key`, if any (e.g. after the chain it
    /// guards has completed). Missing snapshots are not an error.
    pub fn discard(&self, key: &str) -> TractoResult<()> {
        Self::validate_key(key)?;
        let path = self.snapshot_path(key);
        match std::fs::remove_file(&path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(TractoError::io(
                format!("remove snapshot {}", path.display()),
                e,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segments_cover_num_loops_exactly() {
        let p = CheckpointPolicy::every(100);
        assert_eq!(p.segments(250), vec![100, 100, 50]);
        assert_eq!(p.segments(200), vec![100, 100]);
        assert_eq!(p.segments(99), vec![99]);
        assert_eq!(p.segments(0), Vec::<u32>::new());
        for n in [1u32, 99, 100, 101, 1000, 1234] {
            assert_eq!(p.segments(n).iter().sum::<u32>(), n);
        }
    }

    #[test]
    fn disabled_policy_is_one_segment() {
        let p = CheckpointPolicy::disabled();
        assert_eq!(p.segments(600), vec![600]);
        assert!(!p.active_for(600));
        assert!(CheckpointPolicy::every(100).active_for(600));
        assert!(!CheckpointPolicy::every(600).active_for(600));
    }

    #[test]
    fn zero_interval_clamped() {
        let p = CheckpointPolicy::every(0);
        assert_eq!(p.every, 1);
        assert_eq!(p.segments(3), vec![1, 1, 1]);
    }

    fn tmp_store(tag: &str) -> (PathBuf, CheckpointStore) {
        let dir = std::env::temp_dir().join(format!(
            "tracto-ckpt-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = CheckpointStore::open(&dir).unwrap();
        (dir, store)
    }

    #[test]
    fn snapshot_round_trips_and_discards() {
        let (dir, store) = tmp_store("roundtrip");
        assert_eq!(store.load("chain-a").unwrap(), SnapshotLoad::Missing);
        let payload = vec![7u8; 1000];
        store.save("chain-a", &payload).unwrap();
        assert_eq!(
            store.load("chain-a").unwrap(),
            SnapshotLoad::Snapshot(payload.clone())
        );
        // Overwrite is atomic and replaces the payload.
        store.save("chain-a", b"second").unwrap();
        assert_eq!(
            store.load("chain-a").unwrap(),
            SnapshotLoad::Snapshot(b"second".to_vec())
        );
        store.discard("chain-a").unwrap();
        assert_eq!(store.load("chain-a").unwrap(), SnapshotLoad::Missing);
        store.discard("chain-a").unwrap(); // idempotent
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_payload_is_valid() {
        let (dir, store) = tmp_store("empty");
        store.save("k", b"").unwrap();
        assert_eq!(store.load("k").unwrap(), SnapshotLoad::Snapshot(Vec::new()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_is_detected_and_quarantined() {
        for (tag, mutate) in [
            (
                "flip",
                (|b: &mut Vec<u8>| b[20] ^= 0x01) as fn(&mut Vec<u8>),
            ),
            ("truncate", |b| b.truncate(b.len() - 3)),
            ("magic", |b| b[0] = b'X'),
            ("version", |b| b[4] = 99),
            ("short", |b| b.truncate(5)),
        ] {
            let (dir, store) = tmp_store(&format!("corrupt-{tag}"));
            store.save("k", &[3u8; 64]).unwrap();
            let path = dir.join("k.ckpt");
            let mut bytes = std::fs::read(&path).unwrap();
            mutate(&mut bytes);
            std::fs::write(&path, &bytes).unwrap();
            match store.load("k").unwrap() {
                SnapshotLoad::Corrupt(_) => {}
                other => panic!("{tag}: expected Corrupt, got {other:?}"),
            }
            assert!(!path.exists(), "{tag}: corrupt snapshot quarantined");
            assert_eq!(
                store.load("k").unwrap(),
                SnapshotLoad::Missing,
                "{tag}: a quarantined snapshot never reappears"
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn crash_mid_write_leaves_previous_snapshot() {
        // A leftover .tmp file (crash between write and rename) must not
        // shadow or corrupt the committed snapshot.
        let (dir, store) = tmp_store("tornwrite");
        store.save("k", b"committed").unwrap();
        std::fs::write(dir.join("k.ckpt.tmp"), b"torn partial write").unwrap();
        assert_eq!(
            store.load("k").unwrap(),
            SnapshotLoad::Snapshot(b"committed".to_vec())
        );
        // The next save replaces the stale tmp file and commits cleanly.
        store.save("k", b"next").unwrap();
        assert_eq!(
            store.load("k").unwrap(),
            SnapshotLoad::Snapshot(b"next".to_vec())
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hostile_keys_are_config_errors() {
        let (dir, store) = tmp_store("keys");
        for key in ["", "../escape", "a/b", "a b", "k\0"] {
            let err = store.save(key, b"x").expect_err("must reject");
            assert_eq!(err.kind(), tracto_trace::ErrorKind::Config, "{key:?}");
        }
        assert!(store.save("Ok-key_1.ckpt", b"x").is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
