//! Chain checkpointing cadence.
//!
//! MCMC burn-in is the expensive, unsampled prefix of every chain; losing a
//! device mid-Step-1 without checkpoints means re-running it. A
//! [`CheckpointPolicy`] splits the single `NumLoops` launch into segments
//! of at most `every` loops. After each non-final segment the driver
//! snapshots kept samples to the host (a device→host transfer of
//! [`CHECKPOINT_LANE_BYTES`] per lane), so a device lost in segment *k*
//! resumes from the end of segment *k−1* instead of loop 0.
//!
//! Segmentation itself is free of numerical consequence: each chain guards
//! on its own `loops_done`, so running `NumLoops` iterations as one launch
//! or as many produces bit-identical samples. The policy only chooses how
//! much work sits between snapshots — the re-execution window after a
//! fault — against the transfer cost of taking them.

/// Bytes snapshotted per lane at a checkpoint: the 9-parameter state vector
/// plus RNG state and loop counter, in device precision (f32 on the paper's
/// hardware).
pub const CHECKPOINT_LANE_BYTES: u64 = 64;

/// How often the voxelwise driver snapshots chain state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Maximum MH loops between snapshots. `u32::MAX` disables
    /// checkpointing (one segment, no snapshots).
    pub every: u32,
}

impl CheckpointPolicy {
    /// Checkpoint every `every` loops (clamped to at least 1).
    pub fn every(every: u32) -> Self {
        CheckpointPolicy {
            every: every.max(1),
        }
    }

    /// No checkpoints: the whole chain runs as one segment.
    pub fn disabled() -> Self {
        CheckpointPolicy { every: u32::MAX }
    }

    /// Whether this policy ever snapshots a chain of `num_loops` loops.
    pub fn active_for(&self, num_loops: u32) -> bool {
        self.every < num_loops
    }

    /// The per-segment loop budgets covering a chain of `num_loops` loops:
    /// `ceil(num_loops / every)` segments, all of size `every` except a
    /// final remainder. An empty chain yields no segments.
    pub fn segments(&self, num_loops: u32) -> Vec<u32> {
        let mut out = Vec::new();
        let mut remaining = num_loops;
        while remaining > 0 {
            let seg = remaining.min(self.every);
            out.push(seg);
            remaining -= seg;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segments_cover_num_loops_exactly() {
        let p = CheckpointPolicy::every(100);
        assert_eq!(p.segments(250), vec![100, 100, 50]);
        assert_eq!(p.segments(200), vec![100, 100]);
        assert_eq!(p.segments(99), vec![99]);
        assert_eq!(p.segments(0), Vec::<u32>::new());
        for n in [1u32, 99, 100, 101, 1000, 1234] {
            assert_eq!(p.segments(n).iter().sum::<u32>(), n);
        }
    }

    #[test]
    fn disabled_policy_is_one_segment() {
        let p = CheckpointPolicy::disabled();
        assert_eq!(p.segments(600), vec![600]);
        assert!(!p.active_for(600));
        assert!(CheckpointPolicy::every(100).active_for(600));
        assert!(!CheckpointPolicy::every(600).active_for(600));
    }

    #[test]
    fn zero_interval_clamped() {
        let p = CheckpointPolicy::every(0);
        assert_eq!(p.every, 1);
        assert_eq!(p.segments(3), vec![1, 1, 1]);
    }
}
