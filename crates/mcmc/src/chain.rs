//! Driving one voxel's chain: burn-in, thinning, sample collection.

use crate::mh::{AdaptScheme, MhSampler, Target};
use tracto_rng::RandomSource;

/// Chain schedule configuration (the paper's Fig. 2 parameters).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChainConfig {
    /// Loops discarded before sampling begins (`NumBurnIn`; paper example
    /// value 500).
    pub num_burnin: u32,
    /// Number of posterior samples to record (`NumSamples`; the paper's
    /// experiments use 50).
    pub num_samples: u32,
    /// Loops between recorded samples (`L`; paper value 2).
    pub sample_interval: u32,
    /// Proposal adaptation scheme.
    pub adapt: AdaptScheme,
}

impl ChainConfig {
    /// The paper's experimental configuration: burn-in 500, 50 samples at
    /// interval 2 (⇒ `NumLoops = 600`).
    pub fn paper_default() -> Self {
        ChainConfig {
            num_burnin: 500,
            num_samples: 50,
            sample_interval: 2,
            adapt: AdaptScheme::paper_default(),
        }
    }

    /// A fast configuration for unit tests.
    pub fn fast_test() -> Self {
        ChainConfig {
            num_burnin: 150,
            num_samples: 25,
            sample_interval: 2,
            adapt: AdaptScheme::paper_default(),
        }
    }

    /// Total number of loops: `NumBurnIn + NumSamples × L`.
    pub fn num_loops(&self) -> u32 {
        self.num_burnin + self.num_samples * self.sample_interval
    }

    /// Total random numbers consumed per chain:
    /// `NumLoops × NumParameters × 3` (the paper's memory-cost analysis).
    pub fn random_numbers_needed(&self, num_parameters: u32) -> u64 {
        self.num_loops() as u64 * num_parameters as u64 * 3
    }
}

/// The output of one chain run.
#[derive(Debug, Clone)]
pub struct ChainOutput<const N: usize> {
    /// Recorded posterior samples, `num_samples` rows.
    pub samples: Vec<[f64; N]>,
    /// Final proposal scales after adaptation.
    pub final_scales: [f64; N],
    /// Acceptance rates over the final adaptation window.
    pub final_acceptance: [f64; N],
}

impl<const N: usize> ChainOutput<N> {
    /// Posterior mean of parameter `j`.
    pub fn mean(&self, j: usize) -> f64 {
        if self.samples.is_empty() {
            return f64::NAN;
        }
        self.samples.iter().map(|s| s[j]).sum::<f64>() / self.samples.len() as f64
    }

    /// Posterior variance of parameter `j`.
    pub fn variance(&self, j: usize) -> f64 {
        let m = self.mean(j);
        if self.samples.len() < 2 {
            return 0.0;
        }
        self.samples
            .iter()
            .map(|s| (s[j] - m) * (s[j] - m))
            .sum::<f64>()
            / (self.samples.len() - 1) as f64
    }
}

/// Run one chain to completion: burn-in, then record `num_samples` states at
/// interval `L`. This function body is exactly the paper's Fig. 2 loop and
/// is shared verbatim between the CPU reference and the simulated-GPU lane.
pub fn run_chain<const N: usize, T: Target<N>, R: RandomSource>(
    target: &T,
    initial: [f64; N],
    scales: [f64; N],
    config: ChainConfig,
    rng: &mut R,
) -> ChainOutput<N> {
    let mut sampler = MhSampler::new(target, initial, scales, config.adapt);
    for _ in 0..config.num_burnin {
        sampler.step_loop(target, rng);
    }
    let mut samples = Vec::with_capacity(config.num_samples as usize);
    for _ in 0..config.num_samples {
        for _ in 0..config.sample_interval {
            sampler.step_loop(target, rng);
        }
        samples.push(*sampler.params());
    }
    ChainOutput {
        samples,
        final_scales: *sampler.scales(),
        final_acceptance: sampler.recent_acceptance_rates(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracto_rng::HybridTaus;

    fn std_normal(p: &[f64; 1]) -> f64 {
        -0.5 * p[0] * p[0]
    }

    #[test]
    fn num_loops_formula() {
        let c = ChainConfig::paper_default();
        assert_eq!(c.num_loops(), 500 + 50 * 2);
    }

    #[test]
    fn random_number_budget_matches_paper_formula() {
        // Paper example: NumBurnIn 500, L 2, NumSamples 250, 9 parameters.
        let c = ChainConfig {
            num_burnin: 500,
            num_samples: 250,
            sample_interval: 2,
            adapt: AdaptScheme::paper_default(),
        };
        assert_eq!(c.random_numbers_needed(9), (500 + 250 * 2) * 9 * 3);
        // And the paper's ">20 GB for >200k voxels" claim: 4 bytes each.
        let total_bytes = c.random_numbers_needed(9) * 200_000 * 4;
        assert!(total_bytes > 20_000_000_000);
    }

    #[test]
    fn collects_requested_samples() {
        let mut rng = HybridTaus::new(1);
        let out = run_chain(
            &std_normal,
            [0.0],
            [1.0],
            ChainConfig::fast_test(),
            &mut rng,
        );
        assert_eq!(out.samples.len(), 25);
    }

    #[test]
    fn chain_recovers_normal_moments() {
        let mut rng = HybridTaus::new(2);
        let config = ChainConfig {
            num_burnin: 500,
            num_samples: 4000,
            sample_interval: 2,
            adapt: AdaptScheme::paper_default(),
        };
        let out = run_chain(&std_normal, [3.0], [1.0], config, &mut rng);
        assert!(out.mean(0).abs() < 0.1, "mean {}", out.mean(0));
        assert!(
            (out.variance(0) - 1.0).abs() < 0.15,
            "var {}",
            out.variance(0)
        );
    }

    #[test]
    fn thinning_reduces_autocorrelation() {
        let cfg_thin = ChainConfig {
            num_burnin: 300,
            num_samples: 2000,
            sample_interval: 8,
            adapt: AdaptScheme::paper_default(),
        };
        let cfg_dense = ChainConfig {
            sample_interval: 1,
            ..cfg_thin
        };
        let mut r1 = HybridTaus::new(3);
        let mut r2 = HybridTaus::new(3);
        let thin = run_chain(&std_normal, [0.0], [0.5], cfg_thin, &mut r1);
        let dense = run_chain(&std_normal, [0.0], [0.5], cfg_dense, &mut r2);
        let lag1 = |out: &ChainOutput<1>| {
            let m = out.mean(0);
            let n = out.samples.len();
            let mut num = 0.0;
            let mut den = 0.0;
            for i in 0..n {
                let d = out.samples[i][0] - m;
                den += d * d;
                if i + 1 < n {
                    num += d * (out.samples[i + 1][0] - m);
                }
            }
            num / den
        };
        assert!(lag1(&thin) < lag1(&dense), "thinning must decorrelate");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut r1 = HybridTaus::new(9);
        let mut r2 = HybridTaus::new(9);
        let a = run_chain(&std_normal, [0.0], [1.0], ChainConfig::fast_test(), &mut r1);
        let b = run_chain(&std_normal, [0.0], [1.0], ChainConfig::fast_test(), &mut r2);
        assert_eq!(a.samples, b.samples);
    }

    #[test]
    fn mean_variance_helpers() {
        let out = ChainOutput::<2> {
            samples: vec![[1.0, 10.0], [3.0, 10.0]],
            final_scales: [1.0; 2],
            final_acceptance: [0.3; 2],
        };
        assert_eq!(out.mean(0), 2.0);
        assert_eq!(out.mean(1), 10.0);
        assert_eq!(out.variance(0), 2.0);
        assert_eq!(out.variance(1), 0.0);
    }
}
