//! Chain diagnostics: autocorrelation, effective sample size, and the
//! Gelman–Rubin statistic for multi-chain checks.

/// Lag-`k` autocorrelation of a series.
pub fn autocorrelation(series: &[f64], lag: usize) -> f64 {
    let n = series.len();
    if n <= lag + 1 {
        return 0.0;
    }
    let mean = series.iter().sum::<f64>() / n as f64;
    let mut num = 0.0;
    let mut den = 0.0;
    for (i, &x) in series.iter().enumerate() {
        let d = x - mean;
        den += d * d;
        if i + lag < n {
            num += d * (series[i + lag] - mean);
        }
    }
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

/// Effective sample size by the initial-positive-sequence estimator:
/// `ESS = n / (1 + 2 Σ ρ_k)` truncated at the first non-positive pairwise
/// sum of autocorrelations (Geyer 1992).
pub fn effective_sample_size(series: &[f64]) -> f64 {
    let n = series.len();
    if n < 4 {
        return n as f64;
    }
    let mut sum = 0.0;
    let mut k = 1;
    loop {
        let rho_a = autocorrelation(series, k);
        let rho_b = autocorrelation(series, k + 1);
        if rho_a + rho_b <= 0.0 || k + 1 >= n - 1 {
            break;
        }
        sum += rho_a + rho_b;
        k += 2;
    }
    (n as f64 / (1.0 + 2.0 * sum)).clamp(1.0, n as f64)
}

/// Gelman–Rubin potential scale reduction factor `R̂` across chains of equal
/// length. Values close to 1 indicate convergence.
pub fn gelman_rubin(chains: &[Vec<f64>]) -> f64 {
    let m = chains.len();
    assert!(m >= 2, "need at least two chains");
    let n = chains[0].len();
    assert!(
        chains.iter().all(|c| c.len() == n),
        "chains must share length"
    );
    assert!(n >= 2, "chains too short");

    let chain_means: Vec<f64> = chains
        .iter()
        .map(|c| c.iter().sum::<f64>() / n as f64)
        .collect();
    let grand = chain_means.iter().sum::<f64>() / m as f64;
    // Between-chain variance.
    let b = n as f64 / (m as f64 - 1.0)
        * chain_means
            .iter()
            .map(|&mu| (mu - grand) * (mu - grand))
            .sum::<f64>();
    // Within-chain variance.
    let w = chains
        .iter()
        .zip(&chain_means)
        .map(|(c, &mu)| c.iter().map(|&x| (x - mu) * (x - mu)).sum::<f64>() / (n as f64 - 1.0))
        .sum::<f64>()
        / m as f64;
    if w == 0.0 {
        return 1.0;
    }
    let var_plus = (n as f64 - 1.0) / n as f64 * w + b / n as f64;
    (var_plus / w).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracto_rng::{BoxMuller, HybridTaus};

    fn iid_normal(n: usize, seed: u64) -> Vec<f64> {
        let mut g = BoxMuller::new(HybridTaus::new(seed));
        (0..n).map(|_| g.next_standard()).collect()
    }

    fn ar1(n: usize, phi: f64, seed: u64) -> Vec<f64> {
        let mut g = BoxMuller::new(HybridTaus::new(seed));
        let mut x = 0.0;
        (0..n)
            .map(|_| {
                x = phi * x + g.next_standard();
                x
            })
            .collect()
    }

    #[test]
    fn autocorrelation_lag0_is_one() {
        let s = iid_normal(1000, 1);
        assert!((autocorrelation(&s, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn iid_series_has_small_lag1() {
        let s = iid_normal(20_000, 2);
        assert!(autocorrelation(&s, 1).abs() < 0.03);
    }

    #[test]
    fn ar1_autocorrelation_matches_phi() {
        let s = ar1(50_000, 0.7, 3);
        assert!((autocorrelation(&s, 1) - 0.7).abs() < 0.03);
    }

    #[test]
    fn ess_near_n_for_iid() {
        let s = iid_normal(5000, 4);
        let ess = effective_sample_size(&s);
        assert!(ess > 3500.0, "ESS {ess} for iid series");
    }

    #[test]
    fn ess_shrinks_with_correlation() {
        let s = ar1(5000, 0.9, 5);
        let ess = effective_sample_size(&s);
        // AR(1) with φ=0.9 has ESS ≈ n(1−φ)/(1+φ) ≈ n/19.
        assert!(ess < 1000.0, "ESS {ess} for strongly correlated series");
    }

    #[test]
    fn ess_bounded_by_n() {
        let s = iid_normal(100, 6);
        assert!(effective_sample_size(&s) <= 100.0);
    }

    #[test]
    fn gelman_rubin_converged_chains() {
        let chains: Vec<Vec<f64>> = (0..4).map(|i| iid_normal(2000, 10 + i)).collect();
        let r = gelman_rubin(&chains);
        assert!((r - 1.0).abs() < 0.02, "R̂ {r}");
    }

    #[test]
    fn gelman_rubin_detects_divergent_chains() {
        let mut chains: Vec<Vec<f64>> = (0..3).map(|i| iid_normal(500, 20 + i)).collect();
        // Shift one chain far away.
        for x in &mut chains[0] {
            *x += 10.0;
        }
        assert!(gelman_rubin(&chains) > 2.0);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn gelman_rubin_single_chain_panics() {
        let _ = gelman_rubin(&[vec![1.0, 2.0]]);
    }

    #[test]
    fn short_series_degenerate_cases() {
        assert_eq!(autocorrelation(&[1.0], 1), 0.0);
        assert_eq!(effective_sample_size(&[1.0, 2.0]), 2.0);
        assert_eq!(autocorrelation(&[2.0, 2.0, 2.0], 1), 0.0);
    }
}
