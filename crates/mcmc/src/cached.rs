//! Incremental (cached) evaluation of the ball-and-two-sticks posterior.
//!
//! The per-parameter MH sweep changes exactly one coordinate per proposal,
//! but the plain [`BallSticksPosterior::log_posterior`] recomputes every
//! per-measurement term — two direction projections and three exponentials
//! per measurement — on every call. This module keeps those terms in
//! structure-of-arrays buffers and invalidates only what the proposed
//! coordinate actually touches:
//!
//! | coordinate      | recomputed per measurement                  |
//! |-----------------|---------------------------------------------|
//! | `S₀`, `f₁`, `f₂`| signal recombination + residual only (0 exp)|
//! | `d`             | all three exponentials                      |
//! | `σ`             | nothing (closed form from the cached SSE)   |
//! | `θ₁`, `φ₁`      | stick-1 projection + exponential            |
//! | `θ₂`, `φ₂`      | stick-2 projection + exponential            |
//!
//! Every staged expression is written exactly as the plain evaluation
//! writes it (same literals, same association), so the cached chain is
//! **bit-identical** to the serialized one — the property
//! `tests::cached_chain_matches_plain_chain_exactly` pins down.
//!
//! The Rician likelihood couples σ into every per-measurement term, so it
//! falls back to the full evaluation (still behind the same
//! [`IncrementalTarget`] interface).

use crate::mh::IncrementalTarget;
use tracto_diffusion::posterior::{param_index, NUM_PARAMETERS};
use tracto_diffusion::{BallSticksParams, BallSticksPosterior, NoiseLikelihood};

/// Which staged buffers a pending proposal holds, i.e. what
/// [`accept`](IncrementalTarget::accept) must fold into the committed
/// cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum Pending {
    /// Nothing staged (σ move, out-of-support proposal, or exact fallback).
    #[default]
    Nothing,
    /// Only the residual sum changed (`S₀`, `f₁`, `f₂`).
    Sse,
    /// Diffusivity changed: all three exponential arrays + SSE.
    Ball,
    /// Stick-1 direction changed: its projection + exponential + SSE.
    Stick1,
    /// Stick-2 direction changed: its projection + exponential + SSE.
    Stick2,
}

/// Owned, reusable buffers for one [`CachedBallSticks`] target. Keeping
/// them separate from the borrowing adapter lets a driver hold one set per
/// thread and rebind it to a different voxel's posterior each step without
/// reallocating.
#[derive(Debug, Clone, Default)]
pub struct BallSticksCacheBuffers {
    // Committed per-measurement terms at the chain's current position.
    p1: Vec<f64>,
    p2: Vec<f64>,
    iso: Vec<f64>,
    e1: Vec<f64>,
    e2: Vec<f64>,
    sse: f64,
    // Staged terms for the in-flight proposal.
    s_p1: Vec<f64>,
    s_p2: Vec<f64>,
    s_iso: Vec<f64>,
    s_e1: Vec<f64>,
    s_e2: Vec<f64>,
    s_sse: f64,
    pending: Pending,
    // Committed prior terms `[ln sin θ₁, ln sin θ₂, ln σ, ARD]` — a
    // proposal touches at most one, so the rest never re-pay their
    // transcendentals. `ln σ` doubles as the likelihood's closing factor.
    prior_terms: [f64; 4],
    // Staged `(term index, value)` for the in-flight proposal.
    staged_prior: Option<(usize, f64)>,
}

impl BallSticksCacheBuffers {
    /// Fresh, empty buffers (sized lazily on first
    /// [`IncrementalTarget::init`]).
    pub fn new() -> Self {
        BallSticksCacheBuffers::default()
    }

    fn resize(&mut self, n: usize) {
        self.p1.resize(n, 0.0);
        self.p2.resize(n, 0.0);
        self.iso.resize(n, 0.0);
        self.e1.resize(n, 0.0);
        self.e2.resize(n, 0.0);
        self.s_p1.resize(n, 0.0);
        self.s_p2.resize(n, 0.0);
        self.s_iso.resize(n, 0.0);
        self.s_e1.resize(n, 0.0);
        self.s_e2.resize(n, 0.0);
        self.pending = Pending::Nothing;
        self.staged_prior = None;
    }
}

/// [`IncrementalTarget`] adapter binding a voxel's posterior to a set of
/// cache buffers for the duration of one chain run (or one kernel step).
#[derive(Debug)]
pub struct CachedBallSticks<'a> {
    post: &'a BallSticksPosterior<'a>,
    buf: &'a mut BallSticksCacheBuffers,
    /// Rician likelihood couples σ into every term — evaluate exactly.
    exact: bool,
}

impl<'a> CachedBallSticks<'a> {
    /// Bind `post` to reusable `buf`. The caller must
    /// [`init`](IncrementalTarget::init) before the first proposal.
    pub fn new(post: &'a BallSticksPosterior<'a>, buf: &'a mut BallSticksCacheBuffers) -> Self {
        let exact = post.prior().likelihood != NoiseLikelihood::Gaussian;
        CachedBallSticks { post, buf, exact }
    }

    /// Gaussian log-likelihood from an already-known residual sum — the
    /// exact closing expression of the plain evaluation. `sigma_ln` is
    /// `sigma.ln()`, cached or freshly staged, so unchanged-σ proposals
    /// skip the logarithm.
    fn gaussian_ll(&self, sigma: f64, sigma_ln: f64, sse: f64) -> f64 {
        let inv_two_var = 0.5 / (sigma * sigma);
        -(self.post.signal().len() as f64) * sigma_ln - sse * inv_two_var
    }

    /// The plain prior's support checks — comparisons only, no
    /// transcendentals. (`sin θ > 0` for an *unchanged* θ is guaranteed by
    /// the committed term; a changed θ is checked where it is staged.)
    fn in_support(&self, p: &BallSticksParams) -> bool {
        !(p.s0 <= 0.0
            || p.d <= 0.0
            || p.d > self.post.prior().d_max
            || p.sigma <= 0.0
            || p.sigma > self.post.prior().sigma_max
            || !(0.0..=1.0).contains(&p.f1)
            || !(0.0..=1.0).contains(&p.f2)
            || p.f1 + p.f2 > 1.0)
    }

    /// Log prior from the committed terms with at most one overridden —
    /// the same values summed in the same association as the plain prior,
    /// so the float result is bit-identical.
    fn prior_from_terms(&self, override_term: Option<(usize, f64)>) -> f64 {
        let t = |k: usize| match override_term {
            Some((ok, v)) if ok == k => v,
            _ => self.buf.prior_terms[k],
        };
        let lp = t(0) + t(1) - t(2);
        if self.post.prior().ard_weight.is_some() {
            lp + t(3)
        } else {
            lp
        }
    }

    /// Residual sum against the committed exponentials with (possibly
    /// proposed) `s0`, `f1`, `f2` — accumulated in measurement order so the
    /// float result matches the plain loop bit-for-bit.
    fn sse_from_committed(&self, s0: f64, f1: f64, f2: f64) -> f64 {
        let mut sse = 0.0;
        for (((&y, &iso), &e1), &e2) in self
            .post
            .signal()
            .iter()
            .zip(&self.buf.iso)
            .zip(&self.buf.e1)
            .zip(&self.buf.e2)
        {
            let mu = s0 * ((1.0 - f1 - f2) * iso + f1 * e1 + f2 * e2);
            let r = y - mu;
            sse += r * r;
        }
        sse
    }
}

impl IncrementalTarget<NUM_PARAMETERS> for CachedBallSticks<'_> {
    fn init(&mut self, params: &[f64; NUM_PARAMETERS]) -> f64 {
        let p = BallSticksParams::from_array(*params);
        if self.exact {
            return self.post.log_posterior(&p);
        }
        let lp = self.post.log_prior(&p);
        if lp == f64::NEG_INFINITY {
            return lp;
        }
        let acq = self.post.acquisition();
        let n = self.post.signal().len();
        self.buf.resize(n);
        let dir1 = p.dir1();
        let dir2 = p.dir2();
        let mut sse = 0.0;
        for (i, &y) in self.post.signal().iter().enumerate() {
            let b = acq.bval(i);
            let g = acq.grad(i);
            let p1 = g.dot(dir1);
            let p2 = g.dot(dir2);
            let iso = (-b * p.d).exp();
            let e1 = (-b * p.d * p1 * p1).exp();
            let e2 = (-b * p.d * p2 * p2).exp();
            self.buf.p1[i] = p1;
            self.buf.p2[i] = p2;
            self.buf.iso[i] = iso;
            self.buf.e1[i] = e1;
            self.buf.e2[i] = e2;
            let mu = p.s0 * ((1.0 - p.f1 - p.f2) * iso + p.f1 * e1 + p.f2 * e2);
            let r = y - mu;
            sse += r * r;
        }
        self.buf.sse = sse;
        self.buf.pending = Pending::Nothing;
        self.buf.prior_terms = [
            p.th1.sin().abs().ln(),
            p.th2.sin().abs().ln(),
            p.sigma.ln(),
            match self.post.prior().ard_weight {
                Some(w) => w * (1.0 - p.f2).ln(),
                None => 0.0,
            },
        ];
        self.buf.staged_prior = None;
        let sigma_ln = self.buf.prior_terms[2];
        lp + self.gaussian_ll(p.sigma, sigma_ln, sse)
    }

    fn propose(&mut self, j: usize, params: &[f64; NUM_PARAMETERS]) -> f64 {
        let p = BallSticksParams::from_array(*params);
        if self.exact {
            self.buf.pending = Pending::Nothing;
            self.buf.staged_prior = None;
            return self.post.log_posterior(&p);
        }
        if !self.in_support(&p) {
            self.buf.pending = Pending::Nothing;
            self.buf.staged_prior = None;
            return f64::NEG_INFINITY;
        }
        // Stage the one prior term coordinate `j` can touch (a rejected
        // θ with `sin θ ≤ 0` short-circuits exactly as the plain prior).
        let staged = match j {
            param_index::TH1 | param_index::TH2 => {
                let s = if j == param_index::TH1 { p.th1 } else { p.th2 }
                    .sin()
                    .abs();
                if s <= 0.0 {
                    self.buf.pending = Pending::Nothing;
                    self.buf.staged_prior = None;
                    return f64::NEG_INFINITY;
                }
                Some((usize::from(j == param_index::TH2), s.ln()))
            }
            param_index::SIGMA => Some((2, p.sigma.ln())),
            param_index::F2 => self
                .post
                .prior()
                .ard_weight
                .map(|w| (3, w * (1.0 - p.f2).ln())),
            _ => None,
        };
        let lp = self.prior_from_terms(staged);
        self.buf.staged_prior = staged;
        let sigma_ln = match staged {
            Some((2, v)) => v,
            _ => self.buf.prior_terms[2],
        };
        let acq = self.post.acquisition();
        match j {
            param_index::SIGMA => {
                self.buf.pending = Pending::Nothing;
                lp + self.gaussian_ll(p.sigma, sigma_ln, self.buf.sse)
            }
            param_index::S0 | param_index::F1 | param_index::F2 => {
                self.buf.s_sse = self.sse_from_committed(p.s0, p.f1, p.f2);
                self.buf.pending = Pending::Sse;
                lp + self.gaussian_ll(p.sigma, sigma_ln, self.buf.s_sse)
            }
            param_index::D => {
                let buf = &mut *self.buf;
                let mut sse = 0.0;
                for ((((&y, &b), (&p1, &p2)), iso_out), (e1_out, e2_out)) in self
                    .post
                    .signal()
                    .iter()
                    .zip(acq.bvals())
                    .zip(buf.p1.iter().zip(&buf.p2))
                    .zip(buf.s_iso.iter_mut())
                    .zip(buf.s_e1.iter_mut().zip(buf.s_e2.iter_mut()))
                {
                    let iso = (-b * p.d).exp();
                    let e1 = (-b * p.d * p1 * p1).exp();
                    let e2 = (-b * p.d * p2 * p2).exp();
                    *iso_out = iso;
                    *e1_out = e1;
                    *e2_out = e2;
                    let mu = p.s0 * ((1.0 - p.f1 - p.f2) * iso + p.f1 * e1 + p.f2 * e2);
                    let r = y - mu;
                    sse += r * r;
                }
                buf.s_sse = sse;
                buf.pending = Pending::Ball;
                lp + self.gaussian_ll(p.sigma, sigma_ln, sse)
            }
            param_index::TH1 | param_index::PH1 => {
                let dir1 = p.dir1();
                let buf = &mut *self.buf;
                let mut sse = 0.0;
                for (((((&y, &b), g), (&iso, &e2)), p1_out), e1_out) in self
                    .post
                    .signal()
                    .iter()
                    .zip(acq.bvals())
                    .zip(acq.grads())
                    .zip(buf.iso.iter().zip(&buf.e2))
                    .zip(buf.s_p1.iter_mut())
                    .zip(buf.s_e1.iter_mut())
                {
                    let p1 = g.dot(dir1);
                    let e1 = (-b * p.d * p1 * p1).exp();
                    *p1_out = p1;
                    *e1_out = e1;
                    let mu = p.s0 * ((1.0 - p.f1 - p.f2) * iso + p.f1 * e1 + p.f2 * e2);
                    let r = y - mu;
                    sse += r * r;
                }
                buf.s_sse = sse;
                buf.pending = Pending::Stick1;
                lp + self.gaussian_ll(p.sigma, sigma_ln, sse)
            }
            param_index::TH2 | param_index::PH2 => {
                let dir2 = p.dir2();
                let buf = &mut *self.buf;
                let mut sse = 0.0;
                for (((((&y, &b), g), (&iso, &e1)), p2_out), e2_out) in self
                    .post
                    .signal()
                    .iter()
                    .zip(acq.bvals())
                    .zip(acq.grads())
                    .zip(buf.iso.iter().zip(&buf.e1))
                    .zip(buf.s_p2.iter_mut())
                    .zip(buf.s_e2.iter_mut())
                {
                    let p2 = g.dot(dir2);
                    let e2 = (-b * p.d * p2 * p2).exp();
                    *p2_out = p2;
                    *e2_out = e2;
                    let mu = p.s0 * ((1.0 - p.f1 - p.f2) * iso + p.f1 * e1 + p.f2 * e2);
                    let r = y - mu;
                    sse += r * r;
                }
                buf.s_sse = sse;
                buf.pending = Pending::Stick2;
                lp + self.gaussian_ll(p.sigma, sigma_ln, sse)
            }
            _ => panic!("parameter index {j} out of range for ball-and-two-sticks"),
        }
    }

    fn accept(&mut self, _j: usize) {
        if let Some((k, v)) = self.buf.staged_prior.take() {
            self.buf.prior_terms[k] = v;
        }
        match self.buf.pending {
            Pending::Nothing => {}
            Pending::Sse => self.buf.sse = self.buf.s_sse,
            Pending::Ball => {
                std::mem::swap(&mut self.buf.iso, &mut self.buf.s_iso);
                std::mem::swap(&mut self.buf.e1, &mut self.buf.s_e1);
                std::mem::swap(&mut self.buf.e2, &mut self.buf.s_e2);
                self.buf.sse = self.buf.s_sse;
            }
            Pending::Stick1 => {
                std::mem::swap(&mut self.buf.p1, &mut self.buf.s_p1);
                std::mem::swap(&mut self.buf.e1, &mut self.buf.s_e1);
                self.buf.sse = self.buf.s_sse;
            }
            Pending::Stick2 => {
                std::mem::swap(&mut self.buf.p2, &mut self.buf.s_p2);
                std::mem::swap(&mut self.buf.e2, &mut self.buf.s_e2);
                self.buf.sse = self.buf.s_sse;
            }
        }
        self.buf.pending = Pending::Nothing;
    }

    fn reject(&mut self, _j: usize) {
        self.buf.pending = Pending::Nothing;
        self.buf.staged_prior = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mh::{AdaptScheme, MhSampler};
    use tracto_diffusion::{Acquisition, PriorConfig};
    use tracto_rng::HybridTaus;
    use tracto_volume::Vec3;

    fn test_acq() -> Acquisition {
        let dirs = [
            (1.0, 0.0, 0.0),
            (0.0, 1.0, 0.0),
            (0.0, 0.0, 1.0),
            (1.0, 1.0, 0.0),
            (1.0, -1.0, 0.0),
            (1.0, 0.0, 1.0),
            (1.0, 0.0, -1.0),
            (0.0, 1.0, 1.0),
            (0.0, 1.0, -1.0),
            (1.0, 1.0, 1.0),
            (-1.0, 1.0, 1.0),
            (1.0, -1.0, 1.0),
        ];
        let mut bvals = vec![0.0, 0.0];
        let mut grads = vec![Vec3::ZERO, Vec3::ZERO];
        for (x, y, z) in dirs {
            bvals.push(1500.0);
            grads.push(Vec3::new(x, y, z));
        }
        Acquisition::new(bvals, grads)
    }

    /// A plausible anisotropic signal without pulling in the phantom crate.
    fn test_signal(acq: &Acquisition) -> Vec<f64> {
        let truth = BallSticksParams {
            s0: 110.0,
            d: 1.4e-3,
            sigma: 2.0,
            f1: 0.55,
            th1: 1.2,
            ph1: 0.4,
            f2: 0.2,
            th2: 2.1,
            ph2: -0.9,
        };
        let (dir1, dir2) = (truth.dir1(), truth.dir2());
        (0..acq.len())
            .map(|i| {
                let b = acq.bval(i);
                let g = acq.grad(i);
                let p1 = g.dot(dir1);
                let p2 = g.dot(dir2);
                truth.s0
                    * ((1.0 - truth.f1 - truth.f2) * (-b * truth.d).exp()
                        + truth.f1 * (-b * truth.d * p1 * p1).exp()
                        + truth.f2 * (-b * truth.d * p2 * p2).exp())
            })
            .collect()
    }

    fn run_pair(prior: PriorConfig, loops: u32, seed: u64) {
        let acq = test_acq();
        let signal = test_signal(&acq);
        let post = BallSticksPosterior::new(&acq, &signal, prior);
        let plain =
            |p: &[f64; NUM_PARAMETERS]| post.log_posterior(&BallSticksParams::from_array(*p));
        let init = post.initial_params().to_array();
        let scales = [1.0, 1e-4, 0.2, 0.05, 0.1, 0.1, 0.05, 0.1, 0.1];
        let mut a = MhSampler::new(&plain, init, scales, AdaptScheme::paper_default());
        let mut b = MhSampler::new(&plain, init, scales, AdaptScheme::paper_default());
        let mut buf = BallSticksCacheBuffers::new();
        let mut cached = CachedBallSticks::new(&post, &mut buf);
        let ld0 = cached.init(b.params());
        assert_eq!(ld0, b.log_density(), "init must reproduce the density");
        let mut r1 = HybridTaus::new(seed);
        let mut r2 = HybridTaus::new(seed);
        for loop_i in 0..loops {
            a.step_loop(&plain, &mut r1);
            b.step_loop_incremental(&mut cached, &mut r2);
            assert_eq!(a.params(), b.params(), "params diverged at loop {loop_i}");
            assert_eq!(
                a.log_density(),
                b.log_density(),
                "density diverged at loop {loop_i}"
            );
            assert_eq!(a.scales(), b.scales(), "scales diverged at loop {loop_i}");
        }
        assert_eq!(a.acceptance_rates(), b.acceptance_rates());
    }

    #[test]
    fn cached_chain_matches_plain_chain_exactly() {
        run_pair(PriorConfig::default(), 400, 41);
    }

    #[test]
    fn cached_chain_matches_with_ard_prior() {
        let prior = PriorConfig {
            ard_weight: Some(3.0),
            ..PriorConfig::default()
        };
        run_pair(prior, 250, 42);
    }

    #[test]
    fn rician_fallback_matches_plain_chain_exactly() {
        let prior = PriorConfig {
            likelihood: NoiseLikelihood::Rician,
            ..PriorConfig::default()
        };
        run_pair(prior, 150, 43);
    }

    #[test]
    fn rebinding_buffers_across_voxels_stays_exact() {
        // The same buffer set, reused for a second voxel with a different
        // signal, must re-initialize cleanly — the thread-local reuse shape
        // the estimation driver relies on.
        let acq = test_acq();
        let signal_a = test_signal(&acq);
        let signal_b: Vec<f64> = signal_a.iter().map(|s| s * 0.8 + 1.0).collect();
        let mut buf = BallSticksCacheBuffers::new();
        for signal in [&signal_a, &signal_b] {
            let post = BallSticksPosterior::new(&acq, signal, PriorConfig::default());
            let plain =
                |p: &[f64; NUM_PARAMETERS]| post.log_posterior(&BallSticksParams::from_array(*p));
            let init = post.initial_params().to_array();
            let scales = [1.0, 1e-4, 0.2, 0.05, 0.1, 0.1, 0.05, 0.1, 0.1];
            let mut a = MhSampler::new(&plain, init, scales, AdaptScheme::paper_default());
            let mut b = MhSampler::new(&plain, init, scales, AdaptScheme::paper_default());
            let mut cached = CachedBallSticks::new(&post, &mut buf);
            cached.init(b.params());
            let mut r1 = HybridTaus::new(7);
            let mut r2 = HybridTaus::new(7);
            for _ in 0..120 {
                a.step_loop(&plain, &mut r1);
                b.step_loop_incremental(&mut cached, &mut r2);
            }
            assert_eq!(a.params(), b.params());
            assert_eq!(a.log_density(), b.log_density());
        }
    }

    #[test]
    fn out_of_support_proposals_reject_without_corrupting_cache() {
        // Huge proposal scales make most proposals leave the support; the
        // cache must stay in sync through long reject runs.
        let acq = test_acq();
        let signal = test_signal(&acq);
        let post = BallSticksPosterior::new(&acq, &signal, PriorConfig::default());
        let plain =
            |p: &[f64; NUM_PARAMETERS]| post.log_posterior(&BallSticksParams::from_array(*p));
        let init = post.initial_params().to_array();
        let scales = [500.0, 1.0, 50.0, 5.0, 20.0, 20.0, 5.0, 20.0, 20.0];
        let mut a = MhSampler::new(&plain, init, scales, AdaptScheme::Fixed);
        let mut b = MhSampler::new(&plain, init, scales, AdaptScheme::Fixed);
        let mut buf = BallSticksCacheBuffers::new();
        let mut cached = CachedBallSticks::new(&post, &mut buf);
        cached.init(b.params());
        let mut r1 = HybridTaus::new(44);
        let mut r2 = HybridTaus::new(44);
        for _ in 0..300 {
            a.step_loop(&plain, &mut r1);
            b.step_loop_incremental(&mut cached, &mut r2);
        }
        assert_eq!(a.params(), b.params());
        assert_eq!(a.log_density(), b.log_density());
    }
}
