//! Generic per-parameter Metropolis–Hastings machinery.

use tracto_rng::{box_muller_pair, RandomSource};

/// A log-density target over an `N`-dimensional parameter vector.
///
/// Implementations return `f64::NEG_INFINITY` outside the support, which
/// makes the MH step reject the proposal unconditionally.
pub trait Target<const N: usize> {
    /// Unnormalized log density at `params`.
    fn log_density(&self, params: &[f64; N]) -> f64;
}

impl<const N: usize, F: Fn(&[f64; N]) -> f64> Target<N> for F {
    fn log_density(&self, params: &[f64; N]) -> f64 {
        self(params)
    }
}

/// A log-density target that exploits the *single-coordinate* structure of
/// the per-parameter MH sweep: between two proposals only one coordinate
/// changed, so per-measurement partial terms (projections, exponentials,
/// residual sums) can be cached and selectively invalidated instead of
/// recomputed from scratch.
///
/// The contract is transactional: [`propose`](Self::propose) evaluates the
/// density with coordinate `j` changed but must leave the committed cache
/// untouched; the sampler then calls exactly one of
/// [`accept`](Self::accept) (fold the staged terms into the cache) or
/// [`reject`](Self::reject) (discard them). Implementations must return
/// **bit-identical** values to the plain [`Target`] evaluation — the
/// serialized and incremental chains are required to agree exactly, not
/// statistically.
pub trait IncrementalTarget<const N: usize> {
    /// Rebuild the cache for `params` and return its log density. Called
    /// once before a run of [`MhSampler::step_loop_incremental`] calls, and
    /// whenever the sampler's position changed by other means (restore,
    /// external update).
    fn init(&mut self, params: &[f64; N]) -> f64;

    /// Log density of `params`, which differs from the committed position in
    /// coordinate `j` only. Staged work must not alter the committed cache.
    fn propose(&mut self, j: usize, params: &[f64; N]) -> f64;

    /// Commit the staged proposal for coordinate `j` into the cache.
    fn accept(&mut self, j: usize);

    /// Discard the staged proposal for coordinate `j`.
    fn reject(&mut self, j: usize);
}

/// Proposal-scale adaptation scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdaptScheme {
    /// Fixed proposal scales (no adaptation) — the ablation baseline.
    Fixed,
    /// Every `interval` loops, multiply a parameter's σ by `grow` when its
    /// acceptance rate exceeds `hi`, and by `shrink` when below `lo` — the
    /// paper's rule keeping acceptance "somewhere between 25% and 50%".
    Band {
        /// Loops between adaptations (the paper's `K`).
        interval: u32,
        /// Lower acceptance bound (paper: 0.25).
        lo: f64,
        /// Upper acceptance bound (paper: 0.50).
        hi: f64,
        /// Multiplier when acceptance is too high.
        grow: f64,
        /// Multiplier when acceptance is too low.
        shrink: f64,
    },
}

impl AdaptScheme {
    /// The paper's adaptation: every 50 loops, keep acceptance in
    /// [0.25, 0.50].
    pub fn paper_default() -> Self {
        AdaptScheme::Band {
            interval: 50,
            lo: 0.25,
            hi: 0.50,
            grow: 1.25,
            shrink: 0.8,
        }
    }
}

/// The serializable portion of one sampler: everything
/// [`MhSampler::step_loop`] mutates. Plain-old-data so persistent
/// checkpoints can encode it as raw bit patterns; the adaptation scheme and
/// freeze mask are configuration, re-derived on restore rather than stored.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MhState<const N: usize> {
    /// Current position.
    pub params: [f64; N],
    /// Log density at `params`.
    pub log_density: f64,
    /// Per-parameter proposal scales.
    pub scales: [f64; N],
    /// Acceptances since the last adaptation reset.
    pub accepted: [u32; N],
    /// Proposals since the last adaptation reset.
    pub proposed: [u32; N],
    /// Completed MH loops.
    pub loops_done: u32,
    /// Acceptance rates of the last complete adaptation window.
    pub last_window_rates: [f64; N],
}

/// One chain's Metropolis–Hastings state: current position, log density,
/// per-parameter proposal scales and acceptance counters.
///
/// This struct is exactly the per-lane state of the paper's MCMC GPU kernel;
/// the voxelwise driver owns one per voxel.
#[derive(Debug, Clone)]
pub struct MhSampler<const N: usize> {
    params: [f64; N],
    log_density: f64,
    scales: [f64; N],
    accepted: [u32; N],
    proposed: [u32; N],
    adapt: AdaptScheme,
    loops_done: u32,
    last_window_rates: [f64; N],
    frozen: [bool; N],
}

impl<const N: usize> MhSampler<N> {
    /// Start a sampler at `initial` with per-parameter proposal scales.
    ///
    /// # Panics
    /// If the initial point has zero density (`-∞` log density) — chains
    /// must start inside the support.
    pub fn new<T: Target<N>>(
        target: &T,
        initial: [f64; N],
        scales: [f64; N],
        adapt: AdaptScheme,
    ) -> Self {
        let log_density = target.log_density(&initial);
        assert!(
            log_density > f64::NEG_INFINITY,
            "initial state outside the target support"
        );
        assert!(
            scales.iter().all(|&s| s > 0.0),
            "proposal scales must be positive"
        );
        MhSampler {
            params: initial,
            log_density,
            scales,
            accepted: [0; N],
            proposed: [0; N],
            adapt,
            loops_done: 0,
            last_window_rates: [0.0; N],
            frozen: [false; N],
        }
    }

    /// Freeze a parameter: it is skipped by [`step_loop`](Self::step_loop)
    /// and keeps its initial value. Used to restrict the model — e.g.
    /// pinning `(f₂, θ₂, φ₂)` reduces ball-and-two-sticks to the N = 1
    /// compartment model of Table I.
    pub fn freeze(&mut self, j: usize) {
        self.frozen[j] = true;
    }

    /// Whether parameter `j` is frozen.
    pub fn is_frozen(&self, j: usize) -> bool {
        self.frozen[j]
    }

    /// Current position.
    #[inline]
    pub fn params(&self) -> &[f64; N] {
        &self.params
    }

    /// Current log density.
    #[inline]
    pub fn log_density(&self) -> f64 {
        self.log_density
    }

    /// Current proposal scales.
    pub fn scales(&self) -> &[f64; N] {
        &self.scales
    }

    /// Per-parameter acceptance rates since the last adaptation reset.
    pub fn acceptance_rates(&self) -> [f64; N] {
        let mut out = [0.0; N];
        for (o, (&acc, &prop)) in out.iter_mut().zip(self.accepted.iter().zip(&self.proposed)) {
            if prop > 0 {
                *o = acc as f64 / prop as f64;
            }
        }
        out
    }

    /// Acceptance rates of the most recent *complete* adaptation window —
    /// falls back to the live counters when no window has completed yet.
    pub fn recent_acceptance_rates(&self) -> [f64; N] {
        if self.proposed.iter().any(|&p| p > 0) && self.last_window_rates.iter().all(|&r| r == 0.0)
        {
            self.acceptance_rates()
        } else if self.proposed.iter().all(|&p| p == 0) {
            self.last_window_rates
        } else {
            // Mid-window: blend toward the live counts, which dominate once
            // enough proposals accumulate.
            self.acceptance_rates()
        }
    }

    /// One MH update of parameter `j`: propose a Gaussian perturbation and
    /// accept with probability `min(1, r)` where
    /// `r = P(ω′|Y)/P(ω|Y)` (paper Section III-A-2).
    ///
    /// Uses three uniform draws: two through Box–Muller for the proposal,
    /// one for the accept test — the paper's "3 random numbers" per step.
    #[inline]
    pub fn step_param<T: Target<N>, R: RandomSource>(
        &mut self,
        target: &T,
        rng: &mut R,
        j: usize,
    ) -> bool {
        let (z, _) = box_muller_pair(rng.next_f64(), rng.next_f64());
        let old = self.params[j];
        self.params[j] = old + self.scales[j] * z;
        let new_ld = target.log_density(&self.params);
        self.proposed[j] += 1;
        // log r = ln P(ω′) − ln P(ω); accept if u < r.
        let log_r = new_ld - self.log_density;
        let accept = if log_r >= 0.0 {
            true
        } else if new_ld == f64::NEG_INFINITY {
            false
        } else {
            rng.next_f64().ln() < log_r
        };
        if accept {
            self.log_density = new_ld;
            self.accepted[j] += 1;
        } else {
            self.params[j] = old;
        }
        accept
    }

    /// One full loop: an MH step for each of the `N` parameters, then
    /// (periodically) proposal adaptation.
    pub fn step_loop<T: Target<N>, R: RandomSource>(&mut self, target: &T, rng: &mut R) {
        for j in 0..N {
            if self.frozen[j] {
                continue;
            }
            self.step_param(target, rng, j);
        }
        self.loops_done += 1;
        if let AdaptScheme::Band {
            interval,
            lo,
            hi,
            grow,
            shrink,
        } = self.adapt
        {
            if self.loops_done % interval == 0 {
                self.adapt_scales(lo, hi, grow, shrink);
            }
        }
    }

    /// [`step_param`](Self::step_param) against an [`IncrementalTarget`]:
    /// identical draws, identical accept rule, but the density comes from
    /// the target's cache and the accept/reject outcome is forwarded so the
    /// cache tracks the chain. The target must have been synchronized to
    /// the current position via [`IncrementalTarget::init`].
    #[inline]
    pub fn step_param_incremental<T: IncrementalTarget<N>, R: RandomSource>(
        &mut self,
        target: &mut T,
        rng: &mut R,
        j: usize,
    ) -> bool {
        let (z, _) = box_muller_pair(rng.next_f64(), rng.next_f64());
        let old = self.params[j];
        self.params[j] = old + self.scales[j] * z;
        let new_ld = target.propose(j, &self.params);
        self.proposed[j] += 1;
        let log_r = new_ld - self.log_density;
        let accept = if log_r >= 0.0 {
            true
        } else if new_ld == f64::NEG_INFINITY {
            false
        } else {
            rng.next_f64().ln() < log_r
        };
        if accept {
            self.log_density = new_ld;
            self.accepted[j] += 1;
            target.accept(j);
        } else {
            self.params[j] = old;
            target.reject(j);
        }
        accept
    }

    /// [`step_loop`](Self::step_loop) against an [`IncrementalTarget`] —
    /// the fast inner loop. Consumes exactly the same random draws and
    /// produces a bit-identical chain to `step_loop` on the equivalent
    /// plain target; only the cost of each density evaluation changes.
    pub fn step_loop_incremental<T: IncrementalTarget<N>, R: RandomSource>(
        &mut self,
        target: &mut T,
        rng: &mut R,
    ) {
        for j in 0..N {
            if self.frozen[j] {
                continue;
            }
            self.step_param_incremental(target, rng, j);
        }
        self.loops_done += 1;
        if let AdaptScheme::Band {
            interval,
            lo,
            hi,
            grow,
            shrink,
        } = self.adapt
        {
            if self.loops_done % interval == 0 {
                self.adapt_scales(lo, hi, grow, shrink);
            }
        }
    }

    /// Export the sampler's full mutable state for a persistent checkpoint.
    /// [`restore`](Self::restore) with the same adaptation scheme and freeze
    /// mask rebuilds a sampler that continues the chain bit-identically.
    pub fn snapshot(&self) -> MhState<N> {
        MhState {
            params: self.params,
            log_density: self.log_density,
            scales: self.scales,
            accepted: self.accepted,
            proposed: self.proposed,
            loops_done: self.loops_done,
            last_window_rates: self.last_window_rates,
        }
    }

    /// Rebuild a sampler from a [`snapshot`](Self::snapshot). The target is
    /// *not* re-evaluated: the stored log density is trusted, so restore is
    /// exact even where the density computation involves cached signal.
    /// `frozen` must match the mask the original sampler ran with (it is
    /// re-derived from the model configuration, not stored).
    pub fn restore(state: MhState<N>, adapt: AdaptScheme, frozen: [bool; N]) -> Self {
        MhSampler {
            params: state.params,
            log_density: state.log_density,
            scales: state.scales,
            accepted: state.accepted,
            proposed: state.proposed,
            adapt,
            loops_done: state.loops_done,
            last_window_rates: state.last_window_rates,
            frozen,
        }
    }

    fn adapt_scales(&mut self, lo: f64, hi: f64, grow: f64, shrink: f64) {
        for j in 0..N {
            if self.proposed[j] == 0 {
                continue;
            }
            let rate = self.accepted[j] as f64 / self.proposed[j] as f64;
            self.last_window_rates[j] = rate;
            if rate > hi {
                self.scales[j] *= grow;
            } else if rate < lo {
                self.scales[j] *= shrink;
            }
            self.accepted[j] = 0;
            self.proposed[j] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracto_rng::HybridTaus;

    /// 1-D standard normal target.
    fn std_normal(p: &[f64; 1]) -> f64 {
        -0.5 * p[0] * p[0]
    }

    #[test]
    fn always_accepts_uphill() {
        // A target increasing in p[0]: any positive proposal is uphill.
        let target = |p: &[f64; 1]| p[0];
        let mut rng = HybridTaus::new(1);
        let mut s = MhSampler::new(&target, [0.0], [1.0], AdaptScheme::Fixed);
        for _ in 0..200 {
            let before = s.params()[0];
            let before_ld = s.log_density();
            let accepted = s.step_param(&target, &mut rng, 0);
            if s.params()[0] > before {
                assert!(accepted, "uphill move must be accepted");
                assert!(s.log_density() > before_ld);
            }
        }
    }

    #[test]
    fn rejects_out_of_support_always() {
        // Support is p > 0 only; start inside, propose huge jumps.
        let target = |p: &[f64; 1]| if p[0] > 0.0 { 0.0 } else { f64::NEG_INFINITY };
        let mut rng = HybridTaus::new(2);
        let mut s = MhSampler::new(&target, [1.0], [100.0], AdaptScheme::Fixed);
        for _ in 0..500 {
            s.step_param(&target, &mut rng, 0);
            assert!(s.params()[0] > 0.0, "chain escaped the support");
        }
    }

    #[test]
    fn normal_target_moments() {
        let mut rng = HybridTaus::new(3);
        let mut s = MhSampler::new(&std_normal, [0.0], [2.4], AdaptScheme::Fixed);
        // Burn in.
        for _ in 0..500 {
            s.step_loop(&std_normal, &mut rng);
        }
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        const N: usize = 20_000;
        for _ in 0..N {
            s.step_loop(&std_normal, &mut rng);
            let x = s.params()[0];
            sum += x;
            sum2 += x * x;
        }
        let mean = sum / N as f64;
        let var = sum2 / N as f64 - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn bivariate_correlated_gaussian() {
        // ρ = 0.8 bivariate normal.
        let rho: f64 = 0.8;
        let det = 1.0 - rho * rho;
        let target = move |p: &[f64; 2]| {
            -(p[0] * p[0] - 2.0 * rho * p[0] * p[1] + p[1] * p[1]) / (2.0 * det)
        };
        let mut rng = HybridTaus::new(4);
        let mut s = MhSampler::new(
            &target,
            [0.0, 0.0],
            [1.0, 1.0],
            AdaptScheme::paper_default(),
        );
        for _ in 0..1000 {
            s.step_loop(&target, &mut rng);
        }
        let (mut sx, mut sy, mut sxy, mut sxx, mut syy) = (0.0, 0.0, 0.0, 0.0, 0.0);
        const N: usize = 40_000;
        for _ in 0..N {
            s.step_loop(&target, &mut rng);
            let [x, y] = *s.params();
            sx += x;
            sy += y;
            sxy += x * y;
            sxx += x * x;
            syy += y * y;
        }
        let n = N as f64;
        let corr = (n * sxy - sx * sy) / ((n * sxx - sx * sx).sqrt() * (n * syy - sy * sy).sqrt());
        assert!((corr - rho).abs() < 0.05, "sampled correlation {corr}");
    }

    #[test]
    fn adaptation_reaches_band() {
        let mut rng = HybridTaus::new(5);
        // Start with a wildly oversized proposal; adaptation must pull the
        // acceptance rate into (or near) the band.
        let mut s = MhSampler::new(&std_normal, [0.0], [500.0], AdaptScheme::paper_default());
        for _ in 0..3000 {
            s.step_loop(&std_normal, &mut rng);
        }
        // Measure acceptance over a fresh window with frozen scales.
        let scales = *s.scales();
        let mut frozen = MhSampler::new(&std_normal, *s.params(), scales, AdaptScheme::Fixed);
        for _ in 0..2000 {
            frozen.step_loop(&std_normal, &mut rng);
        }
        let rate = frozen.acceptance_rates()[0];
        assert!(
            (0.15..=0.65).contains(&rate),
            "acceptance {rate} far outside the target band; scale {}",
            scales[0]
        );
        assert!(scales[0] < 500.0, "scale should have shrunk");
    }

    #[test]
    fn adaptation_grows_tiny_scales() {
        let mut rng = HybridTaus::new(6);
        let mut s = MhSampler::new(&std_normal, [0.0], [1e-6], AdaptScheme::paper_default());
        for _ in 0..3000 {
            s.step_loop(&std_normal, &mut rng);
        }
        assert!(s.scales()[0] > 1e-6, "tiny scale should grow");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut r1 = HybridTaus::new(7);
        let mut r2 = HybridTaus::new(7);
        let mut a = MhSampler::new(&std_normal, [0.5], [1.0], AdaptScheme::paper_default());
        let mut b = MhSampler::new(&std_normal, [0.5], [1.0], AdaptScheme::paper_default());
        for _ in 0..500 {
            a.step_loop(&std_normal, &mut r1);
            b.step_loop(&std_normal, &mut r2);
        }
        assert_eq!(a.params(), b.params());
        assert_eq!(a.scales(), b.scales());
    }

    #[test]
    fn snapshot_restore_resumes_bit_identically() {
        let mut rng = HybridTaus::new(11);
        let mut s = MhSampler::new(&std_normal, [0.3], [1.0], AdaptScheme::paper_default());
        // Stop mid-adaptation-window so counters and window rates matter.
        for _ in 0..137 {
            s.step_loop(&std_normal, &mut rng);
        }
        let state = s.snapshot();
        let rng_state = rng.state();
        // Continue the original.
        for _ in 0..300 {
            s.step_loop(&std_normal, &mut rng);
        }
        // Restore and continue the copy with the same draws.
        let mut restored = MhSampler::restore(state, AdaptScheme::paper_default(), [false]);
        let mut rng2 = HybridTaus::from_state(rng_state);
        for _ in 0..300 {
            restored.step_loop(&std_normal, &mut rng2);
        }
        assert_eq!(s.params(), restored.params());
        assert_eq!(s.scales(), restored.scales());
        assert_eq!(s.log_density(), restored.log_density());
        assert_eq!(s.acceptance_rates(), restored.acceptance_rates());
    }

    #[test]
    fn restore_preserves_freeze_mask() {
        let target = |p: &[f64; 2]| -0.5 * (p[0] * p[0] + p[1] * p[1]);
        let mut s = MhSampler::new(&target, [1.0, 4.0], [1.0, 1.0], AdaptScheme::Fixed);
        s.freeze(1);
        let restored = MhSampler::restore(s.snapshot(), AdaptScheme::Fixed, [false, true]);
        assert!(restored.is_frozen(1) && !restored.is_frozen(0));
        assert_eq!(restored.params(), s.params());
    }

    #[test]
    #[should_panic(expected = "support")]
    fn initial_outside_support_panics() {
        let target = |p: &[f64; 1]| if p[0] > 0.0 { 0.0 } else { f64::NEG_INFINITY };
        let _ = MhSampler::new(&target, [-1.0], [1.0], AdaptScheme::Fixed);
    }

    #[test]
    fn frozen_parameters_never_move() {
        let target = |p: &[f64; 2]| -0.5 * (p[0] * p[0] + p[1] * p[1]);
        let mut s = MhSampler::new(&target, [5.0, 5.0], [1.0, 1.0], AdaptScheme::Fixed);
        s.freeze(1);
        assert!(s.is_frozen(1) && !s.is_frozen(0));
        let mut rng = HybridTaus::new(3);
        for _ in 0..200 {
            s.step_loop(&target, &mut rng);
        }
        assert_eq!(s.params()[1], 5.0, "frozen coordinate moved");
        assert_ne!(s.params()[0], 5.0, "free coordinate should move");
    }

    /// An incremental version of the separable quadratic
    /// `-0.5 Σ wⱼ pⱼ²` that caches the per-coordinate terms and updates
    /// only the proposed one — the same transactional shape as the cached
    /// ball-and-sticks posterior, in miniature.
    struct CachedQuadratic<const N: usize> {
        weights: [f64; N],
        terms: [f64; N],
        staged: f64,
        staged_j: usize,
    }

    impl<const N: usize> CachedQuadratic<N> {
        fn new(weights: [f64; N]) -> Self {
            CachedQuadratic {
                weights,
                terms: [0.0; N],
                staged: 0.0,
                staged_j: 0,
            }
        }

        fn total(&self, override_j: Option<(usize, f64)>) -> f64 {
            // Sum in coordinate order so the float result is bit-identical
            // to the plain closure below.
            let mut ld = 0.0;
            for j in 0..N {
                ld += match override_j {
                    Some((oj, t)) if oj == j => t,
                    _ => self.terms[j],
                };
            }
            ld
        }
    }

    impl<const N: usize> IncrementalTarget<N> for CachedQuadratic<N> {
        fn init(&mut self, params: &[f64; N]) -> f64 {
            for (j, p) in params.iter().enumerate() {
                self.terms[j] = -0.5 * self.weights[j] * p * p;
            }
            self.total(None)
        }
        fn propose(&mut self, j: usize, params: &[f64; N]) -> f64 {
            self.staged = -0.5 * self.weights[j] * params[j] * params[j];
            self.staged_j = j;
            self.total(Some((j, self.staged)))
        }
        fn accept(&mut self, j: usize) {
            assert_eq!(j, self.staged_j);
            self.terms[j] = self.staged;
        }
        fn reject(&mut self, _j: usize) {}
    }

    #[test]
    fn incremental_loop_is_bit_identical_to_plain_loop() {
        let weights = [1.0, 0.5, 2.0];
        let plain = move |p: &[f64; 3]| {
            let mut ld = 0.0;
            for j in 0..3 {
                ld += -0.5 * weights[j] * p[j] * p[j];
            }
            ld
        };
        let mut cached = CachedQuadratic::new(weights);
        let initial = [0.7, -1.2, 0.1];
        let scales = [0.8, 0.8, 0.8];
        let mut a = MhSampler::new(&plain, initial, scales, AdaptScheme::paper_default());
        let mut b = MhSampler::new(&plain, initial, scales, AdaptScheme::paper_default());
        cached.init(b.params());
        let mut r1 = HybridTaus::new(21);
        let mut r2 = HybridTaus::new(21);
        for loop_i in 0..400 {
            a.step_loop(&plain, &mut r1);
            b.step_loop_incremental(&mut cached, &mut r2);
            assert_eq!(a.params(), b.params(), "diverged at loop {loop_i}");
            assert_eq!(a.log_density(), b.log_density());
            assert_eq!(a.scales(), b.scales());
        }
        assert_eq!(a.acceptance_rates(), b.acceptance_rates());
    }

    #[test]
    fn incremental_loop_respects_freeze_mask() {
        let weights = [1.0, 1.0];
        let plain = move |p: &[f64; 2]| -0.5 * (p[0] * p[0] + p[1] * p[1]);
        let mut cached = CachedQuadratic::new(weights);
        let mut s = MhSampler::new(&plain, [0.0, 3.0], [1.0, 1.0], AdaptScheme::Fixed);
        s.freeze(1);
        cached.init(s.params());
        let mut rng = HybridTaus::new(22);
        for _ in 0..100 {
            s.step_loop_incremental(&mut cached, &mut rng);
        }
        assert_eq!(s.params()[1], 3.0, "frozen coordinate moved");
        assert_ne!(s.params()[0], 0.0);
    }

    #[test]
    fn incremental_rejects_out_of_support() {
        struct HalfLine {
            term: f64,
            staged: f64,
        }
        impl IncrementalTarget<1> for HalfLine {
            fn init(&mut self, p: &[f64; 1]) -> f64 {
                self.term = if p[0] > 0.0 { 0.0 } else { f64::NEG_INFINITY };
                self.term
            }
            fn propose(&mut self, _j: usize, p: &[f64; 1]) -> f64 {
                self.staged = if p[0] > 0.0 { 0.0 } else { f64::NEG_INFINITY };
                self.staged
            }
            fn accept(&mut self, _j: usize) {
                self.term = self.staged;
            }
            fn reject(&mut self, _j: usize) {}
        }
        let plain = |p: &[f64; 1]| if p[0] > 0.0 { 0.0 } else { f64::NEG_INFINITY };
        let mut target = HalfLine {
            term: 0.0,
            staged: 0.0,
        };
        let mut s = MhSampler::new(&plain, [1.0], [100.0], AdaptScheme::Fixed);
        target.init(s.params());
        let mut rng = HybridTaus::new(23);
        for _ in 0..500 {
            s.step_loop_incremental(&mut target, &mut rng);
            assert!(s.params()[0] > 0.0, "chain escaped the support");
        }
    }

    #[test]
    fn acceptance_counters_track() {
        let target = |_: &[f64; 1]| 0.0; // flat: every proposal accepted
        let mut rng = HybridTaus::new(8);
        let mut s = MhSampler::new(&target, [0.0], [1.0], AdaptScheme::Fixed);
        for _ in 0..100 {
            s.step_loop(&target, &mut rng);
        }
        assert_eq!(s.acceptance_rates()[0], 1.0);
    }
}
