//! Point-estimation baseline — the empirical-Bayes alternative of Friman et
//! al. (and McGraw's GPU port) that the paper's related work contrasts with
//! full MCMC: "they replaced the MCMC sampling with point estimation for
//! computational tractability. However, the equivalence of these two
//! methods is still under investigation."
//!
//! This module implements that alternative for the single-stick model:
//! a MAP fit by coordinate descent, then a Laplace (Gaussian) approximation
//! of the orientation posterior from the numerical Hessian, from which
//! pseudo-samples are drawn. By construction it represents **one** fiber
//! population per voxel — the structural limitation (no crossings) that
//! motivates the full multi-fiber MCMC this repository centers on.

use crate::voxelwise::SampleVolumes;
use rayon::prelude::*;
use tracto_diffusion::posterior::BallSticksParams;
use tracto_diffusion::{Acquisition, BallSticksPosterior, PriorConfig};
use tracto_rng::{BoxMuller, HybridTaus};
use tracto_volume::{Mask, Volume4};

/// A single-stick MAP estimate with a Laplace orientation covariance.
#[derive(Debug, Clone, Copy)]
pub struct PointEstimate {
    /// MAP parameters (`f2 = 0`; stick 2 unused).
    pub map: BallSticksParams,
    /// Laplace covariance of `(θ₁, φ₁)`: `[var_θ, cov, var_φ]`.
    pub orientation_cov: [f64; 3],
}

impl PointEstimate {
    /// Standard deviation of the polar angle under the Laplace
    /// approximation.
    pub fn theta_std(&self) -> f64 {
        self.orientation_cov[0].max(0.0).sqrt()
    }

    /// Standard deviation of the azimuth.
    pub fn phi_std(&self) -> f64 {
        self.orientation_cov[2].max(0.0).sqrt()
    }
}

/// Golden-section maximization of `f` on `[lo, hi]`.
fn golden_max(mut lo: f64, mut hi: f64, iters: usize, f: impl Fn(f64) -> f64) -> f64 {
    const INV_PHI: f64 = 0.618_033_988_749_894_9;
    let mut x1 = hi - INV_PHI * (hi - lo);
    let mut x2 = lo + INV_PHI * (hi - lo);
    let mut f1 = f(x1);
    let mut f2 = f(x2);
    for _ in 0..iters {
        if f1 >= f2 {
            hi = x2;
            x2 = x1;
            f2 = f1;
            x1 = hi - INV_PHI * (hi - lo);
            f1 = f(x1);
        } else {
            lo = x1;
            x1 = x2;
            f1 = f2;
            x2 = lo + INV_PHI * (hi - lo);
            f2 = f(x2);
        }
    }
    if f1 >= f2 {
        x1
    } else {
        x2
    }
}

/// MAP-fit the single-stick (ball-and-one-stick) model to one voxel by
/// cyclic coordinate ascent on the log posterior with `f₂` pinned at zero.
pub fn fit_map(acq: &Acquisition, signal: &[f64], prior: PriorConfig) -> PointEstimate {
    let posterior = BallSticksPosterior::new(acq, signal, prior);
    let mut p = posterior.initial_params();
    p.f2 = 0.0;
    p.th2 = std::f64::consts::FRAC_PI_2;
    p.ph2 = 0.0;

    let eval = |p: &BallSticksParams| posterior.log_posterior(p);
    // Coordinate sweeps: (s0, d, sigma, f1, th1, ph1).
    for _sweep in 0..12 {
        let s0 = p.s0;
        p.s0 = golden_max(0.5 * s0, 1.5 * s0, 24, |v| {
            eval(&BallSticksParams { s0: v, ..p })
        });
        let d = p.d;
        p.d = golden_max(0.25 * d, 3.0 * d, 24, |v| {
            eval(&BallSticksParams { d: v, ..p })
        });
        let sg = p.sigma;
        p.sigma = golden_max(0.2 * sg, 4.0 * sg, 24, |v| {
            eval(&BallSticksParams { sigma: v, ..p })
        });
        p.f1 = golden_max(0.0, 1.0, 24, |v| eval(&BallSticksParams { f1: v, ..p }));
        let th = p.th1;
        p.th1 = golden_max(
            (th - 0.6).max(1e-3),
            (th + 0.6).min(std::f64::consts::PI - 1e-3),
            24,
            |v| eval(&BallSticksParams { th1: v, ..p }),
        );
        let ph = p.ph1;
        p.ph1 = golden_max(ph - 0.6, ph + 0.6, 24, |v| {
            eval(&BallSticksParams { ph1: v, ..p })
        });
    }

    // Laplace: numerical Hessian of −log posterior in (θ₁, φ₁).
    let h = 1e-3;
    let f00 = eval(&p);
    let fpp = |dt: f64, dp: f64| {
        eval(&BallSticksParams {
            th1: p.th1 + dt,
            ph1: p.ph1 + dp,
            ..p
        })
    };
    let d2t = -(fpp(h, 0.0) - 2.0 * f00 + fpp(-h, 0.0)) / (h * h);
    let d2p = -(fpp(0.0, h) - 2.0 * f00 + fpp(0.0, -h)) / (h * h);
    let dtp = -(fpp(h, h) - fpp(h, -h) - fpp(-h, h) + fpp(-h, -h)) / (4.0 * h * h);
    // Invert the 2×2 information matrix, guarding degenerate curvature.
    let det = d2t * d2p - dtp * dtp;
    let cov = if det > 1e-12 && d2t > 0.0 && d2p > 0.0 {
        [d2p / det, -dtp / det, d2t / det]
    } else {
        // Flat direction: fall back to a broad prior-scale dispersion.
        [0.25, 0.0, 0.25]
    };
    PointEstimate {
        map: p,
        orientation_cov: cov,
    }
}

/// Voxelwise point estimation mirroring
/// [`VoxelEstimator`](crate::VoxelEstimator)'s interface: produces sample
/// volumes by drawing `num_samples` pseudo-samples per voxel from the
/// Laplace orientation Gaussian. `f₂` is identically zero — the structural
/// single-fiber limitation of the method.
pub struct PointEstimator<'a> {
    acq: &'a Acquisition,
    dwi: &'a Volume4<f32>,
    mask: &'a Mask,
    prior: PriorConfig,
    num_samples: usize,
    seed: u64,
}

impl<'a> PointEstimator<'a> {
    /// Bind the estimator to a dataset.
    pub fn new(
        acq: &'a Acquisition,
        dwi: &'a Volume4<f32>,
        mask: &'a Mask,
        prior: PriorConfig,
        num_samples: usize,
        seed: u64,
    ) -> Self {
        assert_eq!(dwi.nt(), acq.len());
        assert_eq!(dwi.dims(), mask.dims());
        assert!(num_samples > 0);
        PointEstimator {
            acq,
            dwi,
            mask,
            prior,
            num_samples,
            seed,
        }
    }

    /// Point-estimate one voxel.
    pub fn estimate_voxel(&self, voxel_index: usize) -> PointEstimate {
        let signal: Vec<f64> = self
            .dwi
            .voxel_at(voxel_index)
            .iter()
            .map(|&v| v as f64)
            .collect();
        fit_map(self.acq, &signal, self.prior)
    }

    /// Run over the mask in parallel, producing pseudo-sample volumes.
    pub fn run_parallel(&self) -> SampleVolumes {
        let dims = self.dwi.dims();
        let results: Vec<(usize, PointEstimate)> = self
            .mask
            .indices()
            .into_par_iter()
            .map(|idx| (idx, self.estimate_voxel(idx)))
            .collect();
        let mut out = SampleVolumes::zeros(dims, self.num_samples);
        for (idx, est) in results {
            let c = dims.coords(idx);
            let mut rng = BoxMuller::new(HybridTaus::seed_stream(self.seed, idx as u64));
            // Cholesky of the 2×2 covariance.
            let a = est.orientation_cov[0].max(1e-12).sqrt();
            let b = est.orientation_cov[1] / a;
            let c22 = (est.orientation_cov[2] - b * b).max(0.0).sqrt();
            for s in 0..self.num_samples {
                let z1 = rng.next_standard();
                let z2 = rng.next_standard();
                let th = (est.map.th1 + a * z1).clamp(1e-3, std::f64::consts::PI - 1e-3);
                let ph = est.map.ph1 + b * z1 + c22 * z2;
                out.f1.set(c, s, est.map.f1 as f32);
                out.th1.set(c, s, th as f32);
                out.ph1.set(c, s, ph as f32);
                // f2 stays zero: single population.
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracto_phantom::datasets;
    use tracto_volume::{Dim3, Ijk};

    #[test]
    fn golden_max_finds_parabola_peak() {
        let x = golden_max(-4.0, 10.0, 60, |v| -(v - 3.0) * (v - 3.0));
        assert!((x - 3.0).abs() < 1e-6);
    }

    #[test]
    fn map_recovers_single_fiber() {
        let ds = datasets::single_bundle(Dim3::new(10, 6, 6), Some(30.0), 4);
        let c = Ijk::new(5, 2, 2);
        let truth = ds.truth.at(c).sticks()[0];
        let signal: Vec<f64> = ds.dwi.voxel(c).iter().map(|&v| v as f64).collect();
        let est = fit_map(&ds.acq, &signal, PriorConfig::default());
        assert!(
            est.map.dir1().dot(truth.0).abs() > 0.97,
            "MAP direction {:?} vs truth {:?}",
            est.map.dir1(),
            truth.0
        );
        assert!((est.map.f1 - truth.1).abs() < 0.2, "MAP f1 {}", est.map.f1);
        assert_eq!(est.map.f2, 0.0);
    }

    #[test]
    fn laplace_uncertainty_grows_with_noise() {
        let dims = Dim3::new(10, 6, 6);
        let c = Ijk::new(5, 2, 2);
        let spread = |snr: Option<f64>| {
            let ds = datasets::single_bundle(dims, snr, 4);
            let signal: Vec<f64> = ds.dwi.voxel(c).iter().map(|&v| v as f64).collect();
            let est = fit_map(&ds.acq, &signal, PriorConfig::default());
            est.theta_std() + est.phi_std()
        };
        assert!(spread(Some(10.0)) > spread(Some(50.0)));
    }

    #[test]
    fn pseudo_samples_scatter_around_map() {
        let ds = datasets::single_bundle(Dim3::new(8, 6, 6), Some(25.0), 5);
        let c = Ijk::new(4, 2, 2);
        let mask = Mask::from_fn(ds.dwi.dims(), |x| x == c);
        let est = PointEstimator::new(&ds.acq, &ds.dwi, &mask, PriorConfig::default(), 40, 9);
        let map = est.estimate_voxel(ds.dwi.dims().index(c));
        let vols = est.run_parallel();
        let mean = vols.mean_principal_direction(c);
        assert!(mean.dot(map.map.dir1()).abs() > 0.95);
        // Every sample's f2 is zero — single population by construction.
        for s in 0..vols.num_samples() {
            assert_eq!(vols.sticks_at(c, s)[1].1, 0.0);
        }
    }

    #[test]
    fn point_estimation_blind_to_crossings_unlike_mcmc() {
        // The structural contrast the paper's related work highlights.
        let dims = Dim3::new(14, 14, 5);
        let ds = datasets::crossing(dims, 90.0, Some(30.0), 8);
        let c = Ijk::new(6, 6, 2);
        assert_eq!(ds.truth.at(c).count, 2);
        let mask = Mask::from_fn(dims, |x| x == c);
        let point = PointEstimator::new(&ds.acq, &ds.dwi, &mask, PriorConfig::default(), 30, 3)
            .run_parallel();
        // Point estimation reports exactly one population.
        let pe_f2: f64 = (0..30).map(|s| point.sticks_at(c, s)[1].1).sum::<f64>() / 30.0;
        assert_eq!(pe_f2, 0.0);
        // Full MCMC assigns substantial volume to the second stick.
        let mcmc = crate::VoxelEstimator::new(
            &ds.acq,
            &ds.dwi,
            &mask,
            PriorConfig::default(),
            crate::ChainConfig::paper_default(),
            3,
        )
        .run_parallel();
        let mcmc_f2: f64 = (0..mcmc.num_samples())
            .map(|s| mcmc.sticks_at(c, s)[1].1)
            .sum::<f64>()
            / mcmc.num_samples() as f64;
        assert!(
            mcmc_f2 > 0.15,
            "MCMC should find the second population: mean f2 {mcmc_f2}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = datasets::single_bundle(Dim3::new(8, 6, 6), Some(25.0), 5);
        let mask = Mask::from_fn(ds.dwi.dims(), |c| c.k == 3);
        let make = || {
            PointEstimator::new(&ds.acq, &ds.dwi, &mask, PriorConfig::default(), 10, 4)
                .run_parallel()
        };
        let a = make();
        let b = make();
        assert_eq!(a.th1, b.th1);
        assert_eq!(a.ph1, b.ph1);
    }
}
