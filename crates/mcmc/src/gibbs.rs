//! A reference Gibbs sampler — and why it does not fit this application.
//!
//! The paper (Sections II–III): "The Gibbs Sampler does not fit our problem
//! since it is not possible to obtain the full conditional distributions
//! for each parameter … So we choose MH sampler." The ball-and-sticks
//! posterior couples `(f, θ, φ, d, S₀, σ)` through the nonlinear signal
//! prediction of Eq. 1, so no parameter has a standard-form full
//! conditional.
//!
//! To make the contrast concrete (and to mirror the `cudaBayesreg` package
//! the paper cites, which *is* Gibbs-based because linear-regression models
//! have conjugate conditionals), this module implements Gibbs for the one
//! textbook case that *does* admit it — a correlated multivariate Gaussian
//! — alongside a conjugate normal–inverse-gamma regression sampler. These
//! serve as cross-validation targets for the MH machinery: both samplers
//! must agree on the same distribution.

use tracto_rng::{BoxMuller, HybridTaus};

/// Gibbs sampler for a zero-mean bivariate Gaussian with unit variances and
/// correlation `rho`: each full conditional is `N(ρ·other, 1−ρ²)`.
#[derive(Debug, Clone)]
pub struct BivariateGaussianGibbs {
    rho: f64,
    state: [f64; 2],
    rng: BoxMuller<HybridTaus>,
}

impl BivariateGaussianGibbs {
    /// Create a sampler with correlation `rho ∈ (−1, 1)`.
    pub fn new(rho: f64, seed: u64) -> Self {
        assert!(rho.abs() < 1.0, "correlation must be in (-1, 1)");
        BivariateGaussianGibbs {
            rho,
            state: [0.0, 0.0],
            rng: BoxMuller::new(HybridTaus::new(seed)),
        }
    }

    /// One full Gibbs sweep (update both coordinates from their exact
    /// conditionals). Every proposal is "accepted" — the defining contrast
    /// with MH.
    pub fn sweep(&mut self) -> [f64; 2] {
        let cond_sd = (1.0 - self.rho * self.rho).sqrt();
        self.state[0] = self.rng.next(self.rho * self.state[1], cond_sd);
        self.state[1] = self.rng.next(self.rho * self.state[0], cond_sd);
        self.state
    }

    /// Draw `n` samples after `burnin` sweeps.
    pub fn sample(&mut self, burnin: usize, n: usize) -> Vec<[f64; 2]> {
        for _ in 0..burnin {
            self.sweep();
        }
        (0..n).map(|_| self.sweep()).collect()
    }
}

/// Conjugate Gibbs for Bayesian linear regression
/// `y = X β + ε, ε ~ N(0, σ²)` with a flat prior on `β` and Jeffreys prior
/// on `σ²` — the `cudaBayesreg` model family. Alternates:
///
/// * `β | σ², y ~ N(β̂, σ² (XᵀX)⁻¹)` (here for scalar β: 1-D),
/// * `σ² | β, y ~ InvGamma(n/2, SSE/2)` via scaled inverse chi-square.
#[derive(Debug, Clone)]
pub struct ScalarRegressionGibbs {
    xtx: f64,
    xty: f64,
    yty: f64,
    n: usize,
    beta: f64,
    sigma2: f64,
    rng: BoxMuller<HybridTaus>,
}

impl ScalarRegressionGibbs {
    /// Build from data vectors `x`, `y` (equal nonzero length).
    pub fn new(x: &[f64], y: &[f64], seed: u64) -> Self {
        assert_eq!(x.len(), y.len());
        assert!(x.len() >= 3, "need at least 3 observations");
        let xtx: f64 = x.iter().map(|v| v * v).sum();
        assert!(xtx > 0.0, "degenerate regressor");
        let xty: f64 = x.iter().zip(y).map(|(a, b)| a * b).sum();
        let yty: f64 = y.iter().map(|v| v * v).sum();
        ScalarRegressionGibbs {
            xtx,
            xty,
            yty,
            n: x.len(),
            beta: xty / xtx,
            sigma2: 1.0,
            rng: BoxMuller::new(HybridTaus::new(seed)),
        }
    }

    /// One Gibbs sweep; returns `(β, σ²)`.
    pub fn sweep(&mut self) -> (f64, f64) {
        // β | σ².
        let mean = self.xty / self.xtx;
        let sd = (self.sigma2 / self.xtx).sqrt();
        self.beta = self.rng.next(mean, sd);
        // σ² | β: InvGamma(n/2, SSE/2); draw via sum of squared normals
        // (chi-square with n dof).
        let sse =
            (self.yty - 2.0 * self.beta * self.xty + self.beta * self.beta * self.xtx).max(1e-12);
        let mut chi2 = 0.0;
        for _ in 0..self.n {
            let z = self.rng.next_standard();
            chi2 += z * z;
        }
        self.sigma2 = sse / chi2.max(1e-12);
        (self.beta, self.sigma2)
    }

    /// Draw `n` samples after `burnin` sweeps.
    pub fn sample(&mut self, burnin: usize, n: usize) -> Vec<(f64, f64)> {
        for _ in 0..burnin {
            self.sweep();
        }
        (0..n).map(|_| self.sweep()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mh::{AdaptScheme, MhSampler};
    use tracto_rng::HybridTaus as Taus;

    #[test]
    fn gibbs_recovers_bivariate_moments() {
        let rho = 0.8;
        let mut g = BivariateGaussianGibbs::new(rho, 1);
        let samples = g.sample(500, 40_000);
        let n = samples.len() as f64;
        let mean_x: f64 = samples.iter().map(|s| s[0]).sum::<f64>() / n;
        let var_x: f64 = samples.iter().map(|s| s[0] * s[0]).sum::<f64>() / n;
        let cov: f64 = samples.iter().map(|s| s[0] * s[1]).sum::<f64>() / n;
        assert!(mean_x.abs() < 0.03, "mean {mean_x}");
        assert!((var_x - 1.0).abs() < 0.05, "var {var_x}");
        assert!((cov - rho).abs() < 0.05, "correlation {cov}");
    }

    #[test]
    fn gibbs_and_mh_agree_on_the_same_target() {
        // Cross-validation: the MH machinery sampling the same bivariate
        // Gaussian must produce the same moments Gibbs does.
        let rho: f64 = 0.6;
        let det = 1.0 - rho * rho;
        let target = move |p: &[f64; 2]| {
            -(p[0] * p[0] - 2.0 * rho * p[0] * p[1] + p[1] * p[1]) / (2.0 * det)
        };
        let mut mh = MhSampler::new(
            &target,
            [0.0, 0.0],
            [1.0, 1.0],
            AdaptScheme::paper_default(),
        );
        let mut rng = Taus::new(2);
        for _ in 0..1000 {
            mh.step_loop(&target, &mut rng);
        }
        let mut cov_mh = 0.0;
        const N: usize = 40_000;
        for _ in 0..N {
            mh.step_loop(&target, &mut rng);
            cov_mh += mh.params()[0] * mh.params()[1];
        }
        cov_mh /= N as f64;

        let mut gibbs = BivariateGaussianGibbs::new(rho, 3);
        let samples = gibbs.sample(500, N);
        let cov_gibbs: f64 = samples.iter().map(|s| s[0] * s[1]).sum::<f64>() / N as f64;
        assert!(
            (cov_mh - cov_gibbs).abs() < 0.06,
            "MH {cov_mh:.3} vs Gibbs {cov_gibbs:.3}"
        );
    }

    #[test]
    fn regression_gibbs_recovers_slope_and_noise() {
        // y = 2.5 x + ε, σ = 0.5.
        let mut noise = BoxMuller::new(HybridTaus::new(4));
        let x: Vec<f64> = (0..200).map(|i| (i as f64) / 20.0 - 5.0).collect();
        let y: Vec<f64> = x.iter().map(|&v| 2.5 * v + noise.next(0.0, 0.5)).collect();
        let mut g = ScalarRegressionGibbs::new(&x, &y, 5);
        let samples = g.sample(200, 5000);
        let mean_beta: f64 = samples.iter().map(|s| s.0).sum::<f64>() / samples.len() as f64;
        let mean_s2: f64 = samples.iter().map(|s| s.1).sum::<f64>() / samples.len() as f64;
        // The posterior mean of β equals the OLS estimate of the realized
        // data (flat prior); the truth 2.5 is recovered within sampling
        // error of the data itself.
        let ols = x.iter().zip(&y).map(|(a, b)| a * b).sum::<f64>()
            / x.iter().map(|v| v * v).sum::<f64>();
        assert!(
            (mean_beta - ols).abs() < 0.005,
            "β {mean_beta} vs OLS {ols}"
        );
        assert!(
            (mean_beta - 2.5).abs() < 0.1,
            "β {mean_beta} far from truth"
        );
        assert!((mean_s2 - 0.25).abs() < 0.06, "σ² {mean_s2}");
    }

    #[test]
    fn gibbs_every_sweep_moves() {
        // Unlike MH, Gibbs never rejects: consecutive states differ a.s.
        let mut g = BivariateGaussianGibbs::new(0.5, 6);
        let mut prev = g.sweep();
        for _ in 0..100 {
            let cur = g.sweep();
            assert_ne!(cur, prev);
            prev = cur;
        }
    }

    #[test]
    #[should_panic(expected = "correlation")]
    fn invalid_rho_rejected() {
        let _ = BivariateGaussianGibbs::new(1.0, 1);
    }
}
