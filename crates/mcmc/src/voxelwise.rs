//! Fanning chains out across the brain volume.
//!
//! Step 1 of the pipeline consumes the 4-D DWI volume and produces "six 4-D
//! volumes (DimX × DimY × DimZ × NumSamples)" (Fig. 1): per-voxel posterior
//! samples of `(f₁, f₂, θ₁, θ₂, φ₁, φ₂)`. Chains for different voxels are
//! completely independent — "we use one thread for the MCMC of one voxel" —
//! so the CPU reference parallelizes voxels with rayon and the simulated-GPU
//! path maps one voxel per lane.

use crate::chain::{run_chain, ChainConfig, ChainOutput};
use rayon::prelude::*;
use tracto_diffusion::posterior::{param_index, BallSticksParams, NUM_PARAMETERS};
use tracto_diffusion::{Acquisition, BallSticksPosterior, PriorConfig};
use tracto_rng::HybridTaus;
use tracto_volume::{Dim3, Ijk, Mask, Vec3, Volume4};

/// The six 4-D sample volumes produced by the MCMC step.
#[derive(Debug, Clone)]
pub struct SampleVolumes {
    /// Stick-1 volume fraction samples.
    pub f1: Volume4<f32>,
    /// Stick-2 volume fraction samples.
    pub f2: Volume4<f32>,
    /// Stick-1 polar angle samples.
    pub th1: Volume4<f32>,
    /// Stick-1 azimuth samples.
    pub ph1: Volume4<f32>,
    /// Stick-2 polar angle samples.
    pub th2: Volume4<f32>,
    /// Stick-2 azimuth samples.
    pub ph2: Volume4<f32>,
}

impl SampleVolumes {
    /// Allocate zeroed sample volumes.
    pub fn zeros(dims: Dim3, num_samples: usize) -> Self {
        SampleVolumes {
            f1: Volume4::zeros(dims, num_samples),
            f2: Volume4::zeros(dims, num_samples),
            th1: Volume4::zeros(dims, num_samples),
            ph1: Volume4::zeros(dims, num_samples),
            th2: Volume4::zeros(dims, num_samples),
            ph2: Volume4::zeros(dims, num_samples),
        }
    }

    /// Grid dimensions.
    pub fn dims(&self) -> Dim3 {
        self.f1.dims()
    }

    /// Number of samples per voxel.
    pub fn num_samples(&self) -> usize {
        self.f1.nt()
    }

    /// The two sampled sticks `(direction, fraction)` of voxel `c` in sample
    /// `s`. Directions are reconstructed from `(θ, φ)`.
    #[inline]
    pub fn sticks_at(&self, c: Ijk, s: usize) -> [(Vec3, f64); 2] {
        [
            (
                Vec3::from_spherical(*self.th1.get(c, s) as f64, *self.ph1.get(c, s) as f64),
                *self.f1.get(c, s) as f64,
            ),
            (
                Vec3::from_spherical(*self.th2.get(c, s) as f64, *self.ph2.get(c, s) as f64),
                *self.f2.get(c, s) as f64,
            ),
        ]
    }

    /// Write one voxel's chain output into sample slot order, sorting each
    /// sample so stick 1 is the dominant population.
    pub fn store_chain(&mut self, c: Ijk, out: &ChainOutput<NUM_PARAMETERS>) {
        for (s, raw) in out.samples.iter().enumerate() {
            let p = BallSticksParams::from_array(*raw).sorted_by_fraction();
            self.f1.set(c, s, p.f1 as f32);
            self.f2.set(c, s, p.f2 as f32);
            self.th1.set(c, s, p.th1 as f32);
            self.ph1.set(c, s, p.ph1 as f32);
            self.th2.set(c, s, p.th2 as f32);
            self.ph2.set(c, s, p.ph2 as f32);
        }
    }

    /// Posterior-mean dominant direction of a voxel (mean of sample
    /// directions, sign-aligned to the first sample).
    pub fn mean_principal_direction(&self, c: Ijk) -> Vec3 {
        let n = self.num_samples();
        if n == 0 {
            return Vec3::ZERO;
        }
        let reference = self.sticks_at(c, 0)[0].0;
        let mut acc = Vec3::ZERO;
        for s in 0..n {
            acc += self.sticks_at(c, s)[0].0.aligned_with(reference);
        }
        acc.normalized()
    }

    /// Posterior mean of f₁ at a voxel.
    pub fn mean_f1(&self, c: Ijk) -> f64 {
        let n = self.num_samples();
        if n == 0 {
            return 0.0;
        }
        (0..n).map(|s| *self.f1.get(c, s) as f64).sum::<f64>() / n as f64
    }
}

/// Default per-parameter proposal scales, ordered per
/// [`param_index`]: generous starting points that the
/// band adaptation refines within the first burn-in windows.
pub fn default_proposal_scales(s0_estimate: f64) -> [f64; NUM_PARAMETERS] {
    let mut scales = [0.0; NUM_PARAMETERS];
    scales[param_index::S0] = 0.05 * s0_estimate.max(1e-6);
    scales[param_index::D] = 1e-4;
    scales[param_index::SIGMA] = 0.02 * s0_estimate.max(1e-6);
    scales[param_index::F1] = 0.05;
    scales[param_index::TH1] = 0.2;
    scales[param_index::PH1] = 0.2;
    scales[param_index::F2] = 0.05;
    scales[param_index::TH2] = 0.2;
    scales[param_index::PH2] = 0.2;
    scales
}

/// Orchestrates voxelwise estimation over a masked volume.
#[derive(Clone)]
pub struct VoxelEstimator<'a> {
    acq: &'a Acquisition,
    dwi: &'a Volume4<f32>,
    mask: &'a Mask,
    prior: PriorConfig,
    config: ChainConfig,
    seed: u64,
    tracer: tracto_trace::Tracer,
}

impl<'a> VoxelEstimator<'a> {
    /// Bind an estimator to a dataset.
    ///
    /// # Panics
    /// If the DWI measurement count does not match the protocol, or mask
    /// dims differ from DWI dims.
    pub fn new(
        acq: &'a Acquisition,
        dwi: &'a Volume4<f32>,
        mask: &'a Mask,
        prior: PriorConfig,
        config: ChainConfig,
        seed: u64,
    ) -> Self {
        assert_eq!(dwi.nt(), acq.len(), "DWI volume count must match protocol");
        assert_eq!(dwi.dims(), mask.dims(), "mask dims must match DWI dims");
        VoxelEstimator {
            acq,
            dwi,
            mask,
            prior,
            config,
            seed,
            tracer: tracto_trace::Tracer::disabled(),
        }
    }

    /// Emit chain-progress and acceptance-rate events into `tracer`.
    pub fn with_tracer(mut self, tracer: tracto_trace::Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Chain configuration in use.
    pub fn config(&self) -> ChainConfig {
        self.config
    }

    /// Number of voxels that will be estimated.
    pub fn workload(&self) -> usize {
        self.mask.count()
    }

    /// Run the chain of a single voxel (identified by linear index). This is
    /// the exact body of one simulated GPU lane. With
    /// `prior.max_sticks == 1` the second stick's parameters are frozen at
    /// `f₂ = 0` — the N = 1 compartment model.
    pub fn run_voxel(&self, voxel_index: usize) -> ChainOutput<NUM_PARAMETERS> {
        let signal: Vec<f64> = self
            .dwi
            .voxel_at(voxel_index)
            .iter()
            .map(|&v| v as f64)
            .collect();
        let posterior = BallSticksPosterior::new(self.acq, &signal, self.prior);
        let mut init = posterior.initial_params();
        if self.prior.max_sticks == 1 {
            init.f2 = 0.0;
        }
        let scales = default_proposal_scales(init.s0);
        let mut rng = HybridTaus::seed_stream(self.seed, voxel_index as u64);
        let target =
            |p: &[f64; NUM_PARAMETERS]| posterior.log_posterior(&BallSticksParams::from_array(*p));
        let mut sampler =
            crate::mh::MhSampler::new(&target, init.to_array(), scales, self.config.adapt);
        if self.prior.max_sticks == 1 {
            sampler.freeze(param_index::F2);
            sampler.freeze(param_index::TH2);
            sampler.freeze(param_index::PH2);
        }
        let mut samples = Vec::with_capacity(self.config.num_samples as usize);
        for _ in 0..self.config.num_burnin {
            sampler.step_loop(&target, &mut rng);
        }
        for _ in 0..self.config.num_samples {
            for _ in 0..self.config.sample_interval {
                sampler.step_loop(&target, &mut rng);
            }
            samples.push(*sampler.params());
        }
        let out = ChainOutput {
            samples,
            final_scales: *sampler.scales(),
            final_acceptance: sampler.recent_acceptance_rates(),
        };
        if self.tracer.enabled() {
            let rates = &out.final_acceptance;
            let mean = rates.iter().sum::<f64>() / rates.len() as f64;
            self.tracer.emit(
                "mcmc.chain",
                &[
                    ("voxel", voxel_index.into()),
                    ("samples", self.config.num_samples.into()),
                    ("mean_acceptance", mean.into()),
                ],
            );
        }
        out
    }

    /// Estimate all masked voxels serially (the CPU baseline of Table III).
    pub fn run_serial(&self) -> SampleVolumes {
        let mut out = SampleVolumes::zeros(self.dwi.dims(), self.config.num_samples as usize);
        let dims = self.dwi.dims();
        let indices = self.mask.indices();
        let total = indices.len();
        let stride = progress_stride(total);
        for (done, idx) in indices.into_iter().enumerate() {
            let chain = self.run_voxel(idx);
            out.store_chain(dims.coords(idx), &chain);
            if (done + 1) % stride == 0 || done + 1 == total {
                self.tracer.emit(
                    "mcmc.progress",
                    &[("done", (done + 1).into()), ("total", total.into())],
                );
            }
        }
        out
    }

    /// Multi-chain convergence check for one voxel: run `n_chains`
    /// independent chains (different RNG streams) and return the
    /// Gelman–Rubin R̂ of each parameter of interest
    /// `(f₁, θ₁, φ₁, f₂, θ₂, φ₂)`. Values near 1 indicate convergence; the
    /// paper's burn-in of 500 was chosen to reach this regime.
    pub fn convergence_check(&self, voxel_index: usize, n_chains: usize) -> [f64; 6] {
        assert!(n_chains >= 2, "need at least two chains");
        let param_slots = [
            param_index::F1,
            param_index::TH1,
            param_index::PH1,
            param_index::F2,
            param_index::TH2,
            param_index::PH2,
        ];
        let signal: Vec<f64> = self
            .dwi
            .voxel_at(voxel_index)
            .iter()
            .map(|&v| v as f64)
            .collect();
        let posterior = BallSticksPosterior::new(self.acq, &signal, self.prior);
        let init = posterior.initial_params();
        let scales = default_proposal_scales(init.s0);
        let target =
            |p: &[f64; NUM_PARAMETERS]| posterior.log_posterior(&BallSticksParams::from_array(*p));
        let chains: Vec<ChainOutput<NUM_PARAMETERS>> = (0..n_chains)
            .map(|chain_idx| {
                let stream = voxel_index as u64 ^ ((chain_idx as u64 + 1) << 48);
                let mut rng = HybridTaus::seed_stream(self.seed, stream);
                run_chain(&target, init.to_array(), scales, self.config, &mut rng)
            })
            .collect();
        let mut out = [0.0; 6];
        for (slot, &j) in param_slots.iter().enumerate() {
            let series: Vec<Vec<f64>> = chains
                .iter()
                .map(|c| c.samples.iter().map(|s| s[j]).collect())
                .collect();
            out[slot] = crate::diagnostics::gelman_rubin(&series);
        }
        out
    }

    /// Estimate all masked voxels in parallel with rayon (the fast host
    /// path; the simulated-GPU path lives in the core crate where the
    /// device model is attached).
    pub fn run_parallel(&self) -> SampleVolumes {
        let dims = self.dwi.dims();
        let indices = self.mask.indices();
        let total = indices.len();
        let stride = progress_stride(total);
        let done = std::sync::atomic::AtomicUsize::new(0);
        let chains: Vec<(usize, ChainOutput<NUM_PARAMETERS>)> = indices
            .par_iter()
            .map(|&idx| {
                let chain = self.run_voxel(idx);
                let n = done.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
                if n % stride == 0 || n == total {
                    self.tracer.emit(
                        "mcmc.progress",
                        &[("done", n.into()), ("total", total.into())],
                    );
                }
                (idx, chain)
            })
            .collect();
        let mut out = SampleVolumes::zeros(dims, self.config.num_samples as usize);
        for (idx, chain) in chains {
            out.store_chain(dims.coords(idx), &chain);
        }
        out
    }
}

/// Progress events are emitted roughly sixteen times per run, and at
/// completion.
fn progress_stride(total: usize) -> usize {
    (total / 16).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracto_phantom::datasets;

    fn quick_config() -> ChainConfig {
        ChainConfig::fast_test()
    }

    #[test]
    fn tracer_sees_chain_and_progress_events() {
        use std::sync::Arc;
        use tracto_trace::{RingSink, Tracer};

        let ds = datasets::single_bundle(Dim3::new(6, 4, 4), None, 11);
        let ring = Arc::new(RingSink::new(4096));
        let est = VoxelEstimator::new(
            &ds.acq,
            &ds.dwi,
            &ds.wm_mask,
            PriorConfig::default(),
            quick_config(),
            42,
        )
        .with_tracer(Tracer::shared(ring.clone()));
        let total = est.workload();
        est.run_parallel();
        assert_eq!(ring.count("mcmc.chain"), total);
        let progress = ring.named("mcmc.progress");
        assert!(!progress.is_empty());
        assert!(progress
            .iter()
            .any(|e| e.field_u64("done") == Some(total as u64)));
        let chain = &ring.named("mcmc.chain")[0];
        let rate = chain.field_f64("mean_acceptance").expect("rate field");
        assert!((0.0..=1.0).contains(&rate));
    }

    #[test]
    fn recovers_single_bundle_direction() {
        let ds = datasets::single_bundle(Dim3::new(8, 6, 6), None, 11);
        let est = VoxelEstimator::new(
            &ds.acq,
            &ds.dwi,
            &ds.wm_mask,
            PriorConfig::default(),
            quick_config(),
            42,
        );
        // Estimate just the center voxel.
        let c = Ijk::new(4, 2, 2);
        assert_eq!(
            ds.truth.at(c).count,
            1,
            "center voxel must carry the bundle"
        );
        let idx = ds.dwi.dims().index(c);
        let chain = est.run_voxel(idx);
        let mut vols = SampleVolumes::zeros(ds.dwi.dims(), chain.samples.len());
        vols.store_chain(c, &chain);
        let dir = vols.mean_principal_direction(c);
        let truth = ds.truth.at(c).sticks()[0].0;
        assert!(
            dir.dot(truth).abs() > 0.9,
            "posterior mean direction {dir:?} vs truth {truth:?}"
        );
        // The anisotropic fraction should be materially nonzero.
        assert!(vols.mean_f1(c) > 0.3, "mean f1 {}", vols.mean_f1(c));
    }

    #[test]
    fn serial_and_parallel_agree() {
        let ds = datasets::single_bundle(Dim3::new(6, 4, 4), None, 5);
        // Narrow mask to keep the test quick.
        let mask = Mask::from_fn(ds.dwi.dims(), |c| c.k == 2 && c.j == 2);
        let est = VoxelEstimator::new(
            &ds.acq,
            &ds.dwi,
            &mask,
            PriorConfig::default(),
            quick_config(),
            7,
        );
        let a = est.run_serial();
        let b = est.run_parallel();
        assert_eq!(a.f1, b.f1);
        assert_eq!(a.th1, b.th1);
        assert_eq!(a.ph2, b.ph2);
    }

    #[test]
    fn sample_volume_shapes() {
        let ds = datasets::single_bundle(Dim3::new(6, 4, 4), None, 5);
        let mask = Mask::from_fn(ds.dwi.dims(), |c| c.i == 3 && c.j == 2 && c.k == 2);
        let est = VoxelEstimator::new(
            &ds.acq,
            &ds.dwi,
            &mask,
            PriorConfig::default(),
            quick_config(),
            7,
        );
        let vols = est.run_parallel();
        assert_eq!(vols.dims(), ds.dwi.dims());
        assert_eq!(vols.num_samples(), quick_config().num_samples as usize);
    }

    #[test]
    fn sticks_sorted_dominant_first() {
        let ds = datasets::single_bundle(Dim3::new(6, 4, 4), None, 5);
        let c = Ijk::new(3, 2, 2);
        let est = VoxelEstimator::new(
            &ds.acq,
            &ds.dwi,
            &ds.wm_mask,
            PriorConfig::default(),
            quick_config(),
            3,
        );
        let chain = est.run_voxel(ds.dwi.dims().index(c));
        let mut vols = SampleVolumes::zeros(ds.dwi.dims(), chain.samples.len());
        vols.store_chain(c, &chain);
        for s in 0..vols.num_samples() {
            let sticks = vols.sticks_at(c, s);
            assert!(sticks[0].1 >= sticks[1].1, "sample {s} unsorted");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = datasets::single_bundle(Dim3::new(6, 4, 4), Some(25.0), 5);
        let mask = Mask::from_fn(ds.dwi.dims(), |c| c == Ijk::new(3, 2, 2));
        let make = || {
            VoxelEstimator::new(
                &ds.acq,
                &ds.dwi,
                &mask,
                PriorConfig::default(),
                quick_config(),
                99,
            )
            .run_parallel()
        };
        let a = make();
        let b = make();
        assert_eq!(a.th1, b.th1);
    }

    #[test]
    fn acceptance_rates_in_reasonable_band() {
        let ds = datasets::single_bundle(Dim3::new(8, 6, 6), Some(25.0), 11);
        let c = Ijk::new(4, 2, 2);
        let est = VoxelEstimator::new(
            &ds.acq,
            &ds.dwi,
            &ds.wm_mask,
            PriorConfig::default(),
            ChainConfig::paper_default(),
            42,
        );
        let chain = est.run_voxel(ds.dwi.dims().index(c));
        // After adaptation most parameters should sit near the 25–50% band;
        // allow slack since the last window is finite.
        let in_band = chain
            .final_acceptance
            .iter()
            .filter(|&&r| (0.1..=0.7).contains(&r))
            .count();
        assert!(
            in_band >= 6,
            "acceptance rates {:?}",
            chain.final_acceptance
        );
    }

    #[test]
    fn convergence_check_near_one_for_well_mixed_voxel() {
        let ds = datasets::single_bundle(Dim3::new(8, 6, 6), Some(20.0), 11);
        let c = Ijk::new(4, 2, 2);
        let est = VoxelEstimator::new(
            &ds.acq,
            &ds.dwi,
            &ds.wm_mask,
            PriorConfig::default(),
            ChainConfig {
                num_burnin: 400,
                num_samples: 150,
                sample_interval: 2,
                adapt: crate::mh::AdaptScheme::paper_default(),
            },
            42,
        );
        let rhat = est.convergence_check(ds.dwi.dims().index(c), 3);
        // The dominant-stick parameters must be well mixed; the secondary
        // stick of a single-fiber voxel can wander (its posterior is broad),
        // so only sanity-bound it.
        for (i, r) in rhat.iter().enumerate() {
            assert!(r.is_finite() && *r >= 0.97, "parameter {i}: R̂ {r}");
        }
        assert!(rhat[0] < 1.3, "f1 R̂ {} not converged", rhat[0]);
    }

    #[test]
    #[should_panic(expected = "two chains")]
    fn convergence_check_needs_two_chains() {
        let ds = datasets::single_bundle(Dim3::new(6, 4, 4), None, 5);
        let est = VoxelEstimator::new(
            &ds.acq,
            &ds.dwi,
            &ds.wm_mask,
            PriorConfig::default(),
            ChainConfig::fast_test(),
            1,
        );
        let _ = est.convergence_check(0, 1);
    }

    #[test]
    fn workload_equals_mask_count() {
        let ds = datasets::single_bundle(Dim3::new(6, 4, 4), None, 5);
        let est = VoxelEstimator::new(
            &ds.acq,
            &ds.dwi,
            &ds.wm_mask,
            PriorConfig::default(),
            quick_config(),
            1,
        );
        assert_eq!(est.workload(), ds.wm_mask.count());
    }
}
