//! Property-based tests for the volume crate's geometric invariants.

use proptest::prelude::*;
use tracto_volume::interp::{trilinear_scalar, trilinear_stencil, DirectionField};
use tracto_volume::{Dim3, Ijk, Vec3, Volume3, VoxelGrid};

fn dim_strategy() -> impl Strategy<Value = Dim3> {
    (1usize..8, 1usize..8, 1usize..8).prop_map(|(x, y, z)| Dim3::new(x, y, z))
}

proptest! {
    #[test]
    fn index_coords_roundtrip(d in dim_strategy(), frac in 0.0f64..1.0) {
        let idx = ((d.len() - 1) as f64 * frac) as usize;
        prop_assert_eq!(d.index(d.coords(idx)), idx);
    }

    #[test]
    fn coords_always_in_bounds(d in dim_strategy(), frac in 0.0f64..1.0) {
        let idx = ((d.len() - 1) as f64 * frac) as usize;
        prop_assert!(d.contains(d.coords(idx)));
    }

    #[test]
    fn spherical_roundtrip_unit(theta in 1e-6f64..std::f64::consts::PI - 1e-6,
                                phi in -std::f64::consts::PI..std::f64::consts::PI) {
        let v = Vec3::from_spherical(theta, phi);
        prop_assert!((v.norm() - 1.0).abs() < 1e-12);
        let (t2, p2) = v.to_spherical();
        let v2 = Vec3::from_spherical(t2, p2);
        prop_assert!((v - v2).norm() < 1e-9);
    }

    #[test]
    fn normalized_is_unit_or_zero(x in -100.0f64..100.0, y in -100.0f64..100.0, z in -100.0f64..100.0) {
        let v = Vec3::new(x, y, z);
        let n = v.normalized();
        if v.norm() == 0.0 {
            prop_assert_eq!(n, Vec3::ZERO);
        } else {
            prop_assert!((n.norm() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn cross_orthogonal_to_operands(
        ax in -10.0f64..10.0, ay in -10.0f64..10.0, az in -10.0f64..10.0,
        bx in -10.0f64..10.0, by in -10.0f64..10.0, bz in -10.0f64..10.0,
    ) {
        let a = Vec3::new(ax, ay, az);
        let b = Vec3::new(bx, by, bz);
        let c = a.cross(b);
        prop_assert!(c.dot(a).abs() < 1e-6);
        prop_assert!(c.dot(b).abs() < 1e-6);
    }

    #[test]
    fn stencil_weights_convex(d in dim_strategy(),
                              x in -2.0f64..10.0, y in -2.0f64..10.0, z in -2.0f64..10.0) {
        let st = trilinear_stencil(d, Vec3::new(x, y, z));
        let sum: f64 = st.weights.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        for (c, w) in st.corners.iter().zip(st.weights.iter()) {
            prop_assert!(d.contains(*c));
            prop_assert!(*w >= -1e-12 && *w <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn trilinear_within_data_range(d in dim_strategy(),
                                   x in 0.0f64..7.0, y in 0.0f64..7.0, z in 0.0f64..7.0,
                                   seed in 0u64..1000) {
        // Interpolation of a convex combination never escapes [min, max].
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let v = Volume3::from_fn(d, |_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f32) / (u32::MAX as f32)
        });
        let (lo, hi) = v.min_max().unwrap();
        let s = trilinear_scalar(&v, Vec3::new(x, y, z));
        prop_assert!(s >= lo as f64 - 1e-6 && s <= hi as f64 + 1e-6);
    }

    #[test]
    fn voxel_world_roundtrip(
        spacing in 0.5f64..5.0,
        ox in -100.0f64..100.0,
        px in 0.0f64..50.0, py in 0.0f64..50.0, pz in 0.0f64..50.0,
    ) {
        let mut g = VoxelGrid::isotropic(Dim3::new(64, 64, 64), spacing);
        g.origin = Vec3::new(ox, -ox, 2.0 * ox);
        let p = Vec3::new(px, py, pz);
        let back = g.world_to_voxel(g.voxel_to_world(p));
        prop_assert!((back - p).norm() < 1e-9);
    }

    #[test]
    fn direction_sample_in_reference_hemisphere(
        theta in 0.0f64..std::f64::consts::PI,
        phi in -std::f64::consts::PI..std::f64::consts::PI,
        x in 0.0f64..3.0, y in 0.0f64..3.0, z in 0.0f64..3.0,
    ) {
        let dims = Dim3::new(4, 4, 4);
        let dir = Vec3::from_spherical(theta, phi);
        let field = DirectionField::from_fn(dims, |c| {
            // alternate stored sign per voxel parity; axis is identical
            if (c.i + c.j + c.k) % 2 == 0 { dir } else { -dir }
        });
        let reference = Vec3::from_spherical(theta, phi);
        let s = field.sample_trilinear(Vec3::new(x, y, z), reference);
        // All corners share the same axis, so after alignment the sample is
        // the axis itself (within f32 storage error).
        prop_assert!(s.dot(reference) > 1.0 - 1e-5);
    }

    #[test]
    fn mask_threshold_counts(v0 in 0.0f32..1.0, v1 in 0.0f32..1.0, thr in 0.0f32..1.0) {
        let vol = Volume3::from_vec(Dim3::new(2, 1, 1), vec![v0, v1]).unwrap();
        let m = tracto_volume::Mask::threshold(&vol, thr);
        let expected = (v0 > thr) as usize + (v1 > thr) as usize;
        prop_assert_eq!(m.count(), expected);
    }
}

#[test]
fn volume4_slice_roundtrip() {
    use tracto_volume::Volume4;
    let d = Dim3::new(3, 2, 2);
    let v4 = Volume4::from_fn(d, 3, |c, t| (d.index(c) * 3 + t) as f32);
    for t in 0..3 {
        let s = v4.slice_t(t);
        for c in d.iter() {
            assert_eq!(*s.get(c), *v4.get(c, t));
        }
    }
    let _ = Ijk::new(0, 0, 0);
}
