//! Trilinear interpolation for scalar fields and sign-disambiguated
//! direction fields.
//!
//! The tracking kernel's `Interpolation()` step (Algorithm 1 in the paper)
//! evaluates the local fiber orientation at a continuous trajectory point.
//! Two modes are supported, matching the options in FSL's probtrackx:
//!
//! * **nearest** — take the orientation of the nearest voxel (cheap, what the
//!   original GPU kernel does for the sample volumes);
//! * **trilinear** — blend the eight surrounding voxels. Because fiber
//!   orientations are axes (sign-ambiguous), each corner direction is first
//!   flipped into the hemisphere of a reference direction before blending.

use crate::{Dim3, Ijk, Vec3, Volume3};

/// The eight corners and weights of the trilinear stencil around a point.
///
/// Coordinates are clamped to the lattice so that querying a boundary point
/// is well-defined; callers decide separately whether out-of-volume points
/// should terminate a streamline.
#[derive(Debug, Clone, Copy)]
pub struct TrilinearStencil {
    /// Corner voxel coordinates.
    pub corners: [Ijk; 8],
    /// Convex weights summing to 1.
    pub weights: [f64; 8],
}

/// Build the trilinear stencil for a continuous voxel-space point.
pub fn trilinear_stencil(dims: Dim3, p: Vec3) -> TrilinearStencil {
    let max_x = (dims.nx - 1) as f64;
    let max_y = (dims.ny - 1) as f64;
    let max_z = (dims.nz - 1) as f64;
    let x = p.x.clamp(0.0, max_x);
    let y = p.y.clamp(0.0, max_y);
    let z = p.z.clamp(0.0, max_z);

    let x0 = x.floor().min(max_x - 1.0).max(0.0);
    let y0 = y.floor().min(max_y - 1.0).max(0.0);
    let z0 = z.floor().min(max_z - 1.0).max(0.0);
    // Degenerate axes (extent 1) collapse the stencil onto the single plane.
    let (x0, fx) = if dims.nx == 1 {
        (0.0, 0.0)
    } else {
        (x0, x - x0)
    };
    let (y0, fy) = if dims.ny == 1 {
        (0.0, 0.0)
    } else {
        (y0, y - y0)
    };
    let (z0, fz) = if dims.nz == 1 {
        (0.0, 0.0)
    } else {
        (z0, z - z0)
    };

    let i0 = x0 as usize;
    let j0 = y0 as usize;
    let k0 = z0 as usize;
    let i1 = (i0 + 1).min(dims.nx - 1);
    let j1 = (j0 + 1).min(dims.ny - 1);
    let k1 = (k0 + 1).min(dims.nz - 1);

    let corners = [
        Ijk::new(i0, j0, k0),
        Ijk::new(i1, j0, k0),
        Ijk::new(i0, j1, k0),
        Ijk::new(i1, j1, k0),
        Ijk::new(i0, j0, k1),
        Ijk::new(i1, j0, k1),
        Ijk::new(i0, j1, k1),
        Ijk::new(i1, j1, k1),
    ];
    let weights = [
        (1.0 - fx) * (1.0 - fy) * (1.0 - fz),
        fx * (1.0 - fy) * (1.0 - fz),
        (1.0 - fx) * fy * (1.0 - fz),
        fx * fy * (1.0 - fz),
        (1.0 - fx) * (1.0 - fy) * fz,
        fx * (1.0 - fy) * fz,
        (1.0 - fx) * fy * fz,
        fx * fy * fz,
    ];
    TrilinearStencil { corners, weights }
}

/// Trilinearly interpolate a scalar volume at a continuous voxel-space point
/// (clamped to the lattice).
pub fn trilinear_scalar(volume: &Volume3<f32>, p: Vec3) -> f64 {
    let st = trilinear_stencil(volume.dims(), p);
    let mut acc = 0.0;
    for (c, w) in st.corners.iter().zip(st.weights.iter()) {
        acc += *volume.get(*c) as f64 * w;
    }
    acc
}

/// Nearest-voxel lookup of a scalar volume (clamped to the lattice).
pub fn nearest_scalar(volume: &Volume3<f32>, p: Vec3) -> f64 {
    let d = volume.dims();
    let c = Ijk::new(
        (p.x.round().clamp(0.0, (d.nx - 1) as f64)) as usize,
        (p.y.round().clamp(0.0, (d.ny - 1) as f64)) as usize,
        (p.z.round().clamp(0.0, (d.nz - 1) as f64)) as usize,
    );
    *volume.get(c) as f64
}

/// A direction field stored as three scalar component volumes.
///
/// Directions are axes: `v` and `-v` are equivalent. All sampling functions
/// take a `reference` direction and flip each sampled direction into its
/// hemisphere before use.
#[derive(Debug, Clone)]
pub struct DirectionField {
    /// x components.
    pub dx: Volume3<f32>,
    /// y components.
    pub dy: Volume3<f32>,
    /// z components.
    pub dz: Volume3<f32>,
}

impl DirectionField {
    /// Build from a per-voxel direction function.
    pub fn from_fn(dims: Dim3, mut f: impl FnMut(Ijk) -> Vec3) -> Self {
        let mut dx = Volume3::zeros(dims);
        let mut dy = Volume3::zeros(dims);
        let mut dz = Volume3::zeros(dims);
        for c in dims.iter() {
            let v = f(c);
            dx.set(c, v.x as f32);
            dy.set(c, v.y as f32);
            dz.set(c, v.z as f32);
        }
        DirectionField { dx, dy, dz }
    }

    /// Grid dimensions.
    pub fn dims(&self) -> Dim3 {
        self.dx.dims()
    }

    /// The stored direction at an integer voxel.
    #[inline]
    pub fn at(&self, c: Ijk) -> Vec3 {
        Vec3::new(
            *self.dx.get(c) as f64,
            *self.dy.get(c) as f64,
            *self.dz.get(c) as f64,
        )
    }

    /// Nearest-voxel direction sample, flipped toward `reference`.
    pub fn sample_nearest(&self, p: Vec3, reference: Vec3) -> Vec3 {
        let d = self.dims();
        let c = Ijk::new(
            (p.x.round().clamp(0.0, (d.nx - 1) as f64)) as usize,
            (p.y.round().clamp(0.0, (d.ny - 1) as f64)) as usize,
            (p.z.round().clamp(0.0, (d.nz - 1) as f64)) as usize,
        );
        self.at(c).aligned_with(reference)
    }

    /// Trilinear direction sample with per-corner hemisphere alignment to
    /// `reference`, renormalized. Returns `Vec3::ZERO` when the blend
    /// cancels out entirely (isotropic neighborhood).
    pub fn sample_trilinear(&self, p: Vec3, reference: Vec3) -> Vec3 {
        let st = trilinear_stencil(self.dims(), p);
        let mut acc = Vec3::ZERO;
        for (c, w) in st.corners.iter().zip(st.weights.iter()) {
            acc += self.at(*c).aligned_with(reference) * *w;
        }
        acc.normalized()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp_volume() -> Volume3<f32> {
        // value = i + 10 j + 100 k, trilinear in all axes.
        Volume3::from_fn(Dim3::new(4, 4, 4), |c| {
            (c.i as f32) + 10.0 * c.j as f32 + 100.0 * c.k as f32
        })
    }

    #[test]
    fn stencil_weights_sum_to_one() {
        let d = Dim3::new(4, 4, 4);
        for p in [
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.5, 2.3, 0.7),
            Vec3::new(3.0, 3.0, 3.0),
            Vec3::new(-1.0, 5.0, 1.2), // clamped
        ] {
            let st = trilinear_stencil(d, p);
            let sum: f64 = st.weights.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "weights sum {sum} at {p:?}");
            assert!(st
                .weights
                .iter()
                .all(|&w| (-1e-12..=1.0 + 1e-12).contains(&w)));
        }
    }

    #[test]
    fn trilinear_exact_on_lattice() {
        let v = ramp_volume();
        for c in v.dims().iter() {
            let p = Vec3::new(c.i as f64, c.j as f64, c.k as f64);
            assert!((trilinear_scalar(&v, p) - *v.get(c) as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn trilinear_linear_ramp_midpoints() {
        let v = ramp_volume();
        // Linear field → trilinear interpolation is exact everywhere.
        let p = Vec3::new(1.25, 2.5, 0.75);
        let expected = 1.25 + 10.0 * 2.5 + 100.0 * 0.75;
        assert!((trilinear_scalar(&v, p) - expected).abs() < 1e-9);
    }

    #[test]
    fn trilinear_clamps_outside() {
        let v = ramp_volume();
        let inside = trilinear_scalar(&v, Vec3::new(0.0, 0.0, 0.0));
        let outside = trilinear_scalar(&v, Vec3::new(-5.0, -5.0, -5.0));
        assert_eq!(inside, outside);
        let hi = trilinear_scalar(&v, Vec3::new(99.0, 99.0, 99.0));
        assert_eq!(hi, trilinear_scalar(&v, Vec3::new(3.0, 3.0, 3.0)));
    }

    #[test]
    fn nearest_scalar_picks_closest() {
        let v = ramp_volume();
        assert_eq!(
            nearest_scalar(&v, Vec3::new(1.4, 0.6, 2.5)),
            1.0 + 10.0 + 100.0 * 3.0
        );
    }

    #[test]
    fn degenerate_single_slice_volume() {
        let v = Volume3::from_fn(Dim3::new(3, 3, 1), |c| c.i as f32);
        // Query at arbitrary z must not panic and must use the only slice.
        assert!((trilinear_scalar(&v, Vec3::new(1.5, 1.0, 0.9)) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn direction_field_nearest_sign_alignment() {
        let dims = Dim3::new(2, 1, 1);
        let f = DirectionField::from_fn(dims, |c| if c.i == 0 { Vec3::Z } else { -Vec3::Z });
        let s = f.sample_nearest(Vec3::new(1.0, 0.0, 0.0), Vec3::Z);
        assert!(
            (s - Vec3::Z).norm() < 1e-12,
            "flipped into reference hemisphere"
        );
        let s2 = f.sample_nearest(Vec3::new(1.0, 0.0, 0.0), -Vec3::Z);
        assert!((s2 + Vec3::Z).norm() < 1e-12);
    }

    #[test]
    fn direction_field_trilinear_blends_consistent_axes() {
        // Two corners store opposite signs of the same axis; after alignment
        // the blend must recover the axis, not cancel to zero.
        let dims = Dim3::new(2, 1, 1);
        let f = DirectionField::from_fn(dims, |c| if c.i == 0 { Vec3::X } else { -Vec3::X });
        let s = f.sample_trilinear(Vec3::new(0.5, 0.0, 0.0), Vec3::X);
        assert!((s - Vec3::X).norm() < 1e-12);
    }

    #[test]
    fn direction_field_trilinear_unit_or_zero() {
        let dims = Dim3::new(3, 3, 3);
        let f = DirectionField::from_fn(dims, |c| {
            Vec3::new(c.i as f64 - 1.0, c.j as f64 - 1.0, 1.0).normalized()
        });
        let s = f.sample_trilinear(Vec3::new(1.2, 1.7, 0.4), Vec3::Z);
        assert!((s.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn direction_field_at_roundtrip() {
        let dims = Dim3::new(2, 2, 2);
        let f = DirectionField::from_fn(dims, |c| {
            Vec3::new(c.i as f64, c.j as f64, c.k as f64).normalized()
        });
        let c = Ijk::new(1, 0, 1);
        let expected = Vec3::new(1.0, 0.0, 1.0).normalized();
        assert!((f.at(c) - expected).norm() < 1e-6); // f32 storage rounding
    }
}
