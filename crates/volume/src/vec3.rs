//! A small 3-vector with the spherical-coordinate conversions used to
//! parameterize fiber orientations.

use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A 3-component `f64` vector used for positions and unit fiber directions.
///
/// Fiber orientations in the diffusion model are expressed in spherical
/// coordinates `(θ, φ)` with the physics convention used by FSL/bedpostx:
///
/// ```text
/// x = sin θ cos φ,   y = sin θ sin φ,   z = cos θ
/// ```
///
/// with `θ ∈ [0, π]` (polar, from +z) and `φ ∈ [-π, π]` (azimuth).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// x component.
    pub x: f64,
    /// y component.
    pub y: f64,
    /// z component.
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit x.
    pub const X: Vec3 = Vec3 {
        x: 1.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit y.
    pub const Y: Vec3 = Vec3 {
        x: 0.0,
        y: 1.0,
        z: 0.0,
    };
    /// Unit z.
    pub const Z: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 1.0,
    };

    /// Construct from components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Construct a unit vector from spherical angles `(θ, φ)`.
    #[inline]
    pub fn from_spherical(theta: f64, phi: f64) -> Self {
        let (st, ct) = theta.sin_cos();
        let (sp, cp) = phi.sin_cos();
        Vec3::new(st * cp, st * sp, ct)
    }

    /// Convert to spherical angles `(θ, φ)`.
    ///
    /// For the zero vector this returns `(0, 0)`. The result satisfies
    /// `Vec3::from_spherical(θ, φ) ≈ self.normalized()`.
    #[inline]
    pub fn to_spherical(self) -> (f64, f64) {
        let r = self.norm();
        if r == 0.0 {
            return (0.0, 0.0);
        }
        let theta = (self.z / r).clamp(-1.0, 1.0).acos();
        let phi = self.y.atan2(self.x);
        (theta, phi)
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, other: Vec3) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, other: Vec3) -> Vec3 {
        Vec3::new(
            self.y * other.z - self.z * other.y,
            self.z * other.x - self.x * other.z,
            self.x * other.y - self.y * other.x,
        )
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Unit vector in the same direction. Returns `Vec3::ZERO` for the zero
    /// vector rather than NaN, which keeps streamline stepping well-defined
    /// when an orientation sample degenerates.
    #[inline]
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        if n == 0.0 {
            Vec3::ZERO
        } else {
            self / n
        }
    }

    /// Angle (radians) between `self` and `other`, in `[0, π]`.
    #[inline]
    pub fn angle_between(self, other: Vec3) -> f64 {
        let denom = self.norm() * other.norm();
        if denom == 0.0 {
            return 0.0;
        }
        (self.dot(other) / denom).clamp(-1.0, 1.0).acos()
    }

    /// Componentwise linear interpolation `self + t (other - self)`.
    #[inline]
    pub fn lerp(self, other: Vec3, t: f64) -> Vec3 {
        self + (other - self) * t
    }

    /// Distance to `other`.
    #[inline]
    pub fn distance(self, other: Vec3) -> f64 {
        (self - other).norm()
    }

    /// True when every component is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// Flip the vector so that it points into the same hemisphere as
    /// `reference` (non-negative dot product). Used to resolve the sign
    /// ambiguity of fiber orientations, which are axes rather than vectors.
    #[inline]
    pub fn aligned_with(self, reference: Vec3) -> Vec3 {
        if self.dot(reference) < 0.0 {
            -self
        } else {
            self
        }
    }

    /// An arbitrary unit vector orthogonal to `self` (which must be nonzero).
    pub fn any_orthogonal(self) -> Vec3 {
        let candidate = if self.x.abs() <= self.y.abs() && self.x.abs() <= self.z.abs() {
            Vec3::X
        } else if self.y.abs() <= self.z.abs() {
            Vec3::Y
        } else {
            Vec3::Z
        };
        self.cross(candidate).normalized()
    }

    /// Componentwise conversion to `[f32; 3]` for device-buffer storage.
    #[inline]
    pub fn to_f32_array(self) -> [f32; 3] {
        [self.x as f32, self.y as f32, self.z as f32]
    }

    /// Componentwise construction from `[f32; 3]`.
    #[inline]
    pub fn from_f32_array(a: [f32; 3]) -> Self {
        Vec3::new(a[0] as f64, a[1] as f64, a[2] as f64)
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, o: Vec3) {
        *self = *self + o;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, o: Vec3) {
        *self = *self - o;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, s: f64) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    fn approx(a: f64, b: f64, eps: f64) -> bool {
        (a - b).abs() <= eps
    }

    fn approx_vec(a: Vec3, b: Vec3, eps: f64) -> bool {
        approx(a.x, b.x, eps) && approx(a.y, b.y, eps) && approx(a.z, b.z, eps)
    }

    #[test]
    fn spherical_axes() {
        assert!(approx_vec(Vec3::from_spherical(0.0, 0.0), Vec3::Z, 1e-12));
        assert!(approx_vec(
            Vec3::from_spherical(FRAC_PI_2, 0.0),
            Vec3::X,
            1e-12
        ));
        assert!(approx_vec(
            Vec3::from_spherical(FRAC_PI_2, FRAC_PI_2),
            Vec3::Y,
            1e-12
        ));
        assert!(approx_vec(Vec3::from_spherical(PI, 0.0), -Vec3::Z, 1e-12));
    }

    #[test]
    fn spherical_roundtrip() {
        for &(theta, phi) in &[(0.3, 0.7), (1.2, -2.1), (2.8, 3.0), (0.01, 0.0)] {
            let v = Vec3::from_spherical(theta, phi);
            assert!(approx(v.norm(), 1.0, 1e-12));
            let (t2, p2) = v.to_spherical();
            let v2 = Vec3::from_spherical(t2, p2);
            assert!(
                approx_vec(v, v2, 1e-12),
                "roundtrip failed for ({theta},{phi})"
            );
        }
    }

    #[test]
    fn to_spherical_zero_vector() {
        assert_eq!(Vec3::ZERO.to_spherical(), (0.0, 0.0));
    }

    #[test]
    fn dot_and_cross_orthogonality() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-4.0, 0.5, 2.0);
        let c = a.cross(b);
        assert!(approx(c.dot(a), 0.0, 1e-12));
        assert!(approx(c.dot(b), 0.0, 1e-12));
    }

    #[test]
    fn cross_right_handed() {
        assert!(approx_vec(Vec3::X.cross(Vec3::Y), Vec3::Z, 1e-15));
        assert!(approx_vec(Vec3::Y.cross(Vec3::Z), Vec3::X, 1e-15));
        assert!(approx_vec(Vec3::Z.cross(Vec3::X), Vec3::Y, 1e-15));
    }

    #[test]
    fn normalized_zero_is_zero() {
        assert_eq!(Vec3::ZERO.normalized(), Vec3::ZERO);
    }

    #[test]
    fn normalized_unit_norm() {
        let v = Vec3::new(3.0, -4.0, 12.0);
        assert!(approx(v.normalized().norm(), 1.0, 1e-12));
    }

    #[test]
    fn angle_between_axes() {
        assert!(approx(Vec3::X.angle_between(Vec3::Y), FRAC_PI_2, 1e-12));
        assert!(approx(Vec3::X.angle_between(Vec3::X), 0.0, 1e-6));
        assert!(approx(Vec3::X.angle_between(-Vec3::X), PI, 1e-6));
    }

    #[test]
    fn aligned_with_flips_when_opposed() {
        let v = Vec3::new(0.0, 0.0, -1.0);
        assert_eq!(v.aligned_with(Vec3::Z), Vec3::new(0.0, 0.0, 1.0));
        assert_eq!(v.aligned_with(-Vec3::Z), v);
    }

    #[test]
    fn any_orthogonal_is_orthogonal_unit() {
        for v in [
            Vec3::X,
            Vec3::Y,
            Vec3::Z,
            Vec3::new(1.0, 2.0, 3.0),
            Vec3::new(-0.1, 5.0, 0.2),
        ] {
            let o = v.any_orthogonal();
            assert!(approx(o.norm(), 1.0, 1e-12));
            assert!(approx(o.dot(v), 0.0, 1e-9));
        }
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vec3::new(1.0, 0.0, -1.0);
        let b = Vec3::new(3.0, 2.0, 1.0);
        assert!(approx_vec(a.lerp(b, 0.0), a, 1e-15));
        assert!(approx_vec(a.lerp(b, 1.0), b, 1e-15));
        assert!(approx_vec(a.lerp(b, 0.5), Vec3::new(2.0, 1.0, 0.0), 1e-15));
    }

    #[test]
    fn f32_array_roundtrip() {
        let v = Vec3::new(0.25, -0.5, 0.125);
        assert_eq!(Vec3::from_f32_array(v.to_f32_array()), v);
    }

    #[test]
    fn operators() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::new(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(a / 2.0, Vec3::new(0.5, 1.0, 1.5));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
        let mut c = a;
        c += b;
        assert_eq!(c, a + b);
        c -= b;
        assert_eq!(c, a);
    }
}
