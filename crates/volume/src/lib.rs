//! Dense 3-D/4-D volumes, voxel/world geometry, and interpolation.
//!
//! This crate is the spatial substrate of the `tracto` workspace. It provides:
//!
//! * [`Vec3`] — a small 3-vector used for positions and fiber directions,
//!   including spherical-coordinate conversions (the paper parameterizes
//!   fiber orientations as `(θ, φ)`).
//! * [`Dim3`] / [`Volume3`] / [`Volume4`] — dense scalar volumes with
//!   row-major `(x fastest)` layout matching the DWI data layout used by the
//!   pipeline (`DimX × DimY × DimZ × n` in the paper's Fig. 1).
//! * [`Mask`] — binary voxel masks (white-matter masks, seed regions).
//! * [`VoxelGrid`] — voxel↔world affine geometry (spacing + origin).
//! * [`interp`] — trilinear interpolation for scalar fields and
//!   sign-disambiguated direction fields.
//! * [`io`] — a minimal binary (de)serialization format for volumes.
//!
//! All math is `f64`; bulk voxel storage is generic and typically `f32`,
//! mirroring the precision split of the original GPU implementation
//! (single-precision device buffers, double-precision host math).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dims;
mod grid;
mod mask;
mod vec3;
mod volume3;
mod volume4;

pub mod interp;
pub mod io;
pub mod ops;
pub mod render;

pub use dims::{Dim3, Ijk};
pub use grid::VoxelGrid;
pub use mask::Mask;
pub use vec3::Vec3;
pub use volume3::Volume3;
pub use volume4::Volume4;

/// Errors produced by volume construction and I/O.
#[derive(Debug)]
pub enum VolumeError {
    /// Data length does not match the product of the dimensions.
    LengthMismatch {
        /// Expected number of elements (product of dims).
        expected: usize,
        /// Actual data length supplied.
        actual: usize,
    },
    /// A volume dimension was zero.
    ZeroDim,
    /// An I/O error during volume (de)serialization.
    Io(std::io::Error),
    /// The serialized stream had a bad magic number or header.
    BadFormat(String),
}

impl std::fmt::Display for VolumeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VolumeError::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "data length {actual} does not match dims product {expected}"
                )
            }
            VolumeError::ZeroDim => write!(f, "volume dimensions must be nonzero"),
            VolumeError::Io(e) => write!(f, "i/o error: {e}"),
            VolumeError::BadFormat(s) => write!(f, "bad volume format: {s}"),
        }
    }
}

impl std::error::Error for VolumeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VolumeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for VolumeError {
    fn from(e: std::io::Error) -> Self {
        VolumeError::Io(e)
    }
}
