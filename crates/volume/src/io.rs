//! Minimal binary (de)serialization for volumes.
//!
//! A deliberately tiny self-describing little-endian format (`TRV3`/`TRV4`
//! magic + dims + raw f32 payload) so phantom datasets and MCMC sample
//! volumes can be cached on disk between pipeline steps without pulling in a
//! full NIfTI implementation.

use crate::{Dim3, Volume3, Volume4, VolumeError};
use bytes::{Buf, BufMut};
use std::io::{Read, Write};

const MAGIC3: &[u8; 4] = b"TRV3";
const MAGIC4: &[u8; 4] = b"TRV4";
const VERSION: u32 = 1;

fn put_header(buf: &mut Vec<u8>, magic: &[u8; 4], dims: Dim3, nt: u32) {
    buf.put_slice(magic);
    buf.put_u32_le(VERSION);
    buf.put_u64_le(dims.nx as u64);
    buf.put_u64_le(dims.ny as u64);
    buf.put_u64_le(dims.nz as u64);
    buf.put_u32_le(nt);
}

fn read_exact_buf(r: &mut impl Read, n: usize) -> Result<Vec<u8>, VolumeError> {
    let mut buf = vec![0u8; n];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

fn parse_header(bytes: &mut &[u8], magic: &[u8; 4]) -> Result<(Dim3, u32), VolumeError> {
    if bytes.remaining() < 4 + 4 + 24 + 4 {
        return Err(VolumeError::BadFormat("truncated header".into()));
    }
    let mut m = [0u8; 4];
    bytes.copy_to_slice(&mut m);
    if &m != magic {
        return Err(VolumeError::BadFormat(format!(
            "bad magic {:?}, expected {:?}",
            m, magic
        )));
    }
    let version = bytes.get_u32_le();
    if version != VERSION {
        return Err(VolumeError::BadFormat(format!(
            "unsupported version {version}"
        )));
    }
    let nx = bytes.get_u64_le() as usize;
    let ny = bytes.get_u64_le() as usize;
    let nz = bytes.get_u64_le() as usize;
    let nt = bytes.get_u32_le();
    Ok((Dim3::new(nx, ny, nz), nt))
}

/// Serialize a `Volume3<f32>` to a writer.
pub fn write_volume3(w: &mut impl Write, v: &Volume3<f32>) -> Result<(), VolumeError> {
    let mut buf = Vec::with_capacity(40 + v.len() * 4);
    put_header(&mut buf, MAGIC3, v.dims(), 1);
    for &x in v.as_slice() {
        buf.put_f32_le(x);
    }
    w.write_all(&buf)?;
    Ok(())
}

/// Deserialize a `Volume3<f32>` from a reader.
pub fn read_volume3(r: &mut impl Read) -> Result<Volume3<f32>, VolumeError> {
    let header = read_exact_buf(r, 36)?;
    let mut slice: &[u8] = &header;
    let (dims, nt) = parse_header(&mut slice, MAGIC3)?;
    if nt != 1 {
        return Err(VolumeError::BadFormat(format!(
            "Volume3 stream with nt={nt}"
        )));
    }
    let payload = read_exact_buf(r, dims.len() * 4)?;
    let mut slice: &[u8] = &payload;
    let mut data = Vec::with_capacity(dims.len());
    for _ in 0..dims.len() {
        data.push(slice.get_f32_le());
    }
    Volume3::from_vec(dims, data)
}

/// Serialize a `Volume4<f32>` to a writer.
pub fn write_volume4(w: &mut impl Write, v: &Volume4<f32>) -> Result<(), VolumeError> {
    let mut buf = Vec::with_capacity(40 + v.len() * 4);
    put_header(&mut buf, MAGIC4, v.dims(), v.nt() as u32);
    for &x in v.as_slice() {
        buf.put_f32_le(x);
    }
    w.write_all(&buf)?;
    Ok(())
}

/// Deserialize a `Volume4<f32>` from a reader.
pub fn read_volume4(r: &mut impl Read) -> Result<Volume4<f32>, VolumeError> {
    let header = read_exact_buf(r, 36)?;
    let mut slice: &[u8] = &header;
    let (dims, nt) = parse_header(&mut slice, MAGIC4)?;
    if nt == 0 {
        return Err(VolumeError::BadFormat("Volume4 stream with nt=0".into()));
    }
    let count = dims.len() * nt as usize;
    let payload = read_exact_buf(r, count * 4)?;
    let mut slice: &[u8] = &payload;
    let mut data = Vec::with_capacity(count);
    for _ in 0..count {
        data.push(slice.get_f32_le());
    }
    Volume4::from_vec(dims, nt as usize, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Ijk;

    #[test]
    fn volume3_roundtrip() {
        let v = Volume3::from_fn(Dim3::new(3, 4, 5), |c| (c.i * 100 + c.j * 10 + c.k) as f32);
        let mut buf = Vec::new();
        write_volume3(&mut buf, &v).unwrap();
        let back = read_volume3(&mut buf.as_slice()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn volume4_roundtrip() {
        let v = Volume4::from_fn(Dim3::new(2, 3, 2), 4, |c, t| {
            (c.i + c.j + c.k + t) as f32 * 0.5
        });
        let mut buf = Vec::new();
        write_volume4(&mut buf, &v).unwrap();
        let back = read_volume4(&mut buf.as_slice()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn bad_magic_rejected() {
        let v = Volume3::filled(Dim3::new(1, 1, 1), 0.0f32);
        let mut buf = Vec::new();
        write_volume3(&mut buf, &v).unwrap();
        buf[0] = b'X';
        assert!(matches!(
            read_volume3(&mut buf.as_slice()),
            Err(VolumeError::BadFormat(_))
        ));
    }

    #[test]
    fn magic_mismatch_between_3_and_4() {
        let v = Volume3::filled(Dim3::new(1, 1, 1), 1.0f32);
        let mut buf = Vec::new();
        write_volume3(&mut buf, &v).unwrap();
        assert!(read_volume4(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn truncated_payload_rejected() {
        let v = Volume3::from_fn(Dim3::new(2, 2, 2), |c| c.i as f32);
        let mut buf = Vec::new();
        write_volume3(&mut buf, &v).unwrap();
        buf.truncate(buf.len() - 4);
        assert!(read_volume3(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn special_values_roundtrip() {
        let mut v = Volume3::filled(Dim3::new(2, 1, 1), 0.0f32);
        v.set(Ijk::new(0, 0, 0), f32::INFINITY);
        v.set(Ijk::new(1, 0, 0), -0.0);
        let mut buf = Vec::new();
        write_volume3(&mut buf, &v).unwrap();
        let back = read_volume3(&mut buf.as_slice()).unwrap();
        assert_eq!(back.as_slice()[0], f32::INFINITY);
        assert_eq!(back.as_slice()[1].to_bits(), (-0.0f32).to_bits());
    }

    #[test]
    fn bad_version_rejected() {
        let v = Volume3::filled(Dim3::new(1, 1, 1), 0.0f32);
        let mut buf = Vec::new();
        write_volume3(&mut buf, &v).unwrap();
        buf[4] = 99;
        assert!(matches!(
            read_volume3(&mut buf.as_slice()),
            Err(VolumeError::BadFormat(_))
        ));
    }
}
