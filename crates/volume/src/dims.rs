//! Volume dimensions and voxel coordinates.

/// Integer voxel coordinate `(i, j, k)` along `(x, y, z)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ijk {
    /// x index.
    pub i: usize,
    /// y index.
    pub j: usize,
    /// z index.
    pub k: usize,
}

impl Ijk {
    /// Construct from components.
    #[inline]
    pub const fn new(i: usize, j: usize, k: usize) -> Self {
        Ijk { i, j, k }
    }
}

impl From<(usize, usize, usize)> for Ijk {
    #[inline]
    fn from((i, j, k): (usize, usize, usize)) -> Self {
        Ijk { i, j, k }
    }
}

/// Dimensions of a 3-D volume, with x the fastest-varying axis
/// (`index = i + nx·(j + ny·k)`), matching the paper's
/// `DimX × DimY × DimZ` layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Dim3 {
    /// Extent along x.
    pub nx: usize,
    /// Extent along y.
    pub ny: usize,
    /// Extent along z.
    pub nz: usize,
}

impl Dim3 {
    /// Construct from extents.
    #[inline]
    pub const fn new(nx: usize, ny: usize, nz: usize) -> Self {
        Dim3 { nx, ny, nz }
    }

    /// Total number of voxels.
    #[inline]
    pub const fn len(self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// True when any extent is zero.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.len() == 0
    }

    /// Linear index of `(i, j, k)`. Panics in debug builds when out of range.
    #[inline]
    pub fn index(self, c: Ijk) -> usize {
        debug_assert!(self.contains(c), "voxel {c:?} out of bounds {self:?}");
        c.i + self.nx * (c.j + self.ny * c.k)
    }

    /// Inverse of [`Dim3::index`].
    #[inline]
    pub fn coords(self, index: usize) -> Ijk {
        debug_assert!(index < self.len());
        let i = index % self.nx;
        let rest = index / self.nx;
        Ijk::new(i, rest % self.ny, rest / self.ny)
    }

    /// True when `(i, j, k)` lies inside the volume.
    #[inline]
    pub fn contains(self, c: Ijk) -> bool {
        c.i < self.nx && c.j < self.ny && c.k < self.nz
    }

    /// True when a continuous voxel-space point lies inside the voxel lattice
    /// (i.e. can be trilinearly interpolated after clamping).
    #[inline]
    pub fn contains_point(self, x: f64, y: f64, z: f64) -> bool {
        x >= 0.0
            && y >= 0.0
            && z >= 0.0
            && x <= (self.nx - 1) as f64
            && y <= (self.ny - 1) as f64
            && z <= (self.nz - 1) as f64
    }

    /// Iterate over every voxel coordinate in linear-index order.
    pub fn iter(self) -> impl Iterator<Item = Ijk> {
        (0..self.len()).map(move |idx| self.coords(idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_layout_x_fastest() {
        let d = Dim3::new(4, 3, 2);
        assert_eq!(d.index(Ijk::new(0, 0, 0)), 0);
        assert_eq!(d.index(Ijk::new(1, 0, 0)), 1);
        assert_eq!(d.index(Ijk::new(0, 1, 0)), 4);
        assert_eq!(d.index(Ijk::new(0, 0, 1)), 12);
        assert_eq!(d.index(Ijk::new(3, 2, 1)), 23);
    }

    #[test]
    fn coords_roundtrip_exhaustive() {
        let d = Dim3::new(5, 4, 3);
        for idx in 0..d.len() {
            assert_eq!(d.index(d.coords(idx)), idx);
        }
    }

    #[test]
    fn len_and_empty() {
        assert_eq!(Dim3::new(4, 3, 2).len(), 24);
        assert!(Dim3::new(0, 3, 2).is_empty());
        assert!(!Dim3::new(1, 1, 1).is_empty());
    }

    #[test]
    fn contains_bounds() {
        let d = Dim3::new(2, 2, 2);
        assert!(d.contains(Ijk::new(1, 1, 1)));
        assert!(!d.contains(Ijk::new(2, 0, 0)));
        assert!(!d.contains(Ijk::new(0, 2, 0)));
        assert!(!d.contains(Ijk::new(0, 0, 2)));
    }

    #[test]
    fn contains_point_edges() {
        let d = Dim3::new(3, 3, 3);
        assert!(d.contains_point(0.0, 0.0, 0.0));
        assert!(d.contains_point(2.0, 2.0, 2.0));
        assert!(d.contains_point(1.5, 0.3, 1.99));
        assert!(!d.contains_point(-0.001, 0.0, 0.0));
        assert!(!d.contains_point(2.001, 0.0, 0.0));
    }

    #[test]
    fn iter_covers_all_voxels_in_order() {
        let d = Dim3::new(3, 2, 2);
        let coords: Vec<Ijk> = d.iter().collect();
        assert_eq!(coords.len(), d.len());
        for (idx, c) in coords.iter().enumerate() {
            assert_eq!(d.index(*c), idx);
        }
    }

    #[test]
    fn ijk_from_tuple() {
        let c: Ijk = (1, 2, 3).into();
        assert_eq!(c, Ijk::new(1, 2, 3));
    }
}
