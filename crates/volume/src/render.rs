//! Terminal rendering of volumes: maximum-intensity projections.
//!
//! The paper presents connectivity output as renderings (Figs. 9–12);
//! this repository's examples print ASCII maximum-intensity projections of
//! probability volumes instead, which is enough to see bundle shapes in a
//! terminal.

use crate::Volume3;
#[cfg(test)]
use crate::{Dim3, Ijk};

/// Projection axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// Project along x (render the y–z plane).
    X,
    /// Project along y (render the x–z plane).
    Y,
    /// Project along z (render the x–y plane).
    Z,
}

/// Maximum-intensity projection of a volume along `axis`, returned as a
/// row-major `(rows, cols, values)` image. The row axis is the *later*
/// remaining axis (z before y before x), so `Axis::Z` yields an x–y image
/// with `rows = ny`.
pub fn mip(volume: &Volume3<f32>, axis: Axis) -> (usize, usize, Vec<f32>) {
    let d = volume.dims();
    let (rows, cols): (usize, usize) = match axis {
        Axis::X => (d.nz, d.ny),
        Axis::Y => (d.nz, d.nx),
        Axis::Z => (d.ny, d.nx),
    };
    let mut img = vec![f32::NEG_INFINITY; rows * cols];
    for c in d.iter() {
        let (r, q) = match axis {
            Axis::X => (c.k, c.j),
            Axis::Y => (c.k, c.i),
            Axis::Z => (c.j, c.i),
        };
        let v = *volume.get(c);
        let slot = &mut img[r * cols + q];
        if v > *slot {
            *slot = v;
        }
    }
    (rows, cols, img)
}

/// Render a maximum-intensity projection as ASCII art (one character per
/// image cell, darker glyphs = higher intensity, rows top-to-bottom in
/// descending row index so +y/+z point up).
pub fn mip_ascii(volume: &Volume3<f32>, axis: Axis) -> String {
    const GLYPHS: [char; 10] = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    let (rows, cols, img) = mip(volume, axis);
    let max = img.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let min = img.iter().copied().fold(f32::INFINITY, f32::min);
    let span = (max - min).max(f32::MIN_POSITIVE);
    let mut out = String::with_capacity((cols + 1) * rows);
    for r in (0..rows).rev() {
        for q in 0..cols {
            let v = (img[r * cols + q] - min) / span;
            let idx = ((v * (GLYPHS.len() - 1) as f32).round() as usize).min(GLYPHS.len() - 1);
            out.push(GLYPHS[idx]);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> Volume3<f32> {
        Volume3::from_fn(Dim3::new(4, 3, 2), |c| (c.i + 10 * c.j + 100 * c.k) as f32)
    }

    #[test]
    fn mip_shapes() {
        let v = ramp();
        let (r, c, img) = mip(&v, Axis::Z);
        assert_eq!((r, c), (3, 4));
        assert_eq!(img.len(), 12);
        let (r, c, _) = mip(&v, Axis::X);
        assert_eq!((r, c), (2, 3));
        let (r, c, _) = mip(&v, Axis::Y);
        assert_eq!((r, c), (2, 4));
    }

    #[test]
    fn mip_takes_maximum_along_axis() {
        let v = ramp();
        // Projecting along z keeps the k=1 slice (value +100).
        let (_, cols, img) = mip(&v, Axis::Z);
        assert_eq!(img[0], 100.0); // (i=0, j=0, k=1)
        assert_eq!(img[2 * cols + 3], 123.0); // (i=3, j=2, k=1)
    }

    #[test]
    fn ascii_dimensions_and_glyphs() {
        let v = ramp();
        let s = mip_ascii(&v, Axis::Z);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines.iter().all(|l| l.chars().count() == 4));
        // Max cell renders '@', min cell renders ' '.
        assert!(s.contains('@'));
        // First printed row is the highest j (rows flipped).
        assert_eq!(lines[0].chars().last().unwrap(), '@');
    }

    #[test]
    fn constant_volume_renders_uniformly() {
        let v = Volume3::filled(Dim3::new(3, 3, 3), 5.0f32);
        let s = mip_ascii(&v, Axis::Y);
        // All one glyph (span collapses to MIN_POSITIVE).
        let glyphs: std::collections::HashSet<char> = s.chars().filter(|c| *c != '\n').collect();
        assert_eq!(glyphs.len(), 1);
    }

    #[test]
    fn bright_spot_localized() {
        let mut v = Volume3::filled(Dim3::new(8, 8, 3), 0.0f32);
        v.set(Ijk::new(2, 6, 1), 1.0);
        let s = mip_ascii(&v, Axis::Z);
        let lines: Vec<&str> = s.lines().collect();
        // Row for j=6 is lines[8-1-6] = lines[1]; column i=2.
        assert_eq!(lines[1].chars().nth(2).unwrap(), '@');
        assert_eq!(lines[0].chars().nth(2).unwrap(), ' ');
    }
}
