//! Voxel ↔ world affine geometry.

use crate::{Dim3, Ijk, Vec3};

/// An axis-aligned voxel grid: dimensions plus per-axis spacing (mm) and a
/// world-space origin at the center of voxel `(0,0,0)`.
///
/// The paper's datasets are 48×96×96 at 2.5 mm isotropic and 60×102×102 at
/// 2 mm isotropic; step lengths (0.1–0.3) are expressed in voxel units, so
/// tracking happens in continuous voxel space and this type converts to
/// world/physical coordinates for reporting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VoxelGrid {
    /// Grid dimensions.
    pub dims: Dim3,
    /// Voxel spacing in mm along (x, y, z).
    pub spacing: Vec3,
    /// World position of the center of voxel (0, 0, 0).
    pub origin: Vec3,
}

impl VoxelGrid {
    /// An isotropic grid with the given spacing and origin at zero.
    pub fn isotropic(dims: Dim3, spacing_mm: f64) -> Self {
        VoxelGrid {
            dims,
            spacing: Vec3::new(spacing_mm, spacing_mm, spacing_mm),
            origin: Vec3::ZERO,
        }
    }

    /// Continuous voxel coordinates → world (mm).
    #[inline]
    pub fn voxel_to_world(&self, p: Vec3) -> Vec3 {
        Vec3::new(
            self.origin.x + p.x * self.spacing.x,
            self.origin.y + p.y * self.spacing.y,
            self.origin.z + p.z * self.spacing.z,
        )
    }

    /// World (mm) → continuous voxel coordinates.
    #[inline]
    pub fn world_to_voxel(&self, w: Vec3) -> Vec3 {
        Vec3::new(
            (w.x - self.origin.x) / self.spacing.x,
            (w.y - self.origin.y) / self.spacing.y,
            (w.z - self.origin.z) / self.spacing.z,
        )
    }

    /// Center of an integer voxel in world space.
    #[inline]
    pub fn voxel_center_world(&self, c: Ijk) -> Vec3 {
        self.voxel_to_world(Vec3::new(c.i as f64, c.j as f64, c.k as f64))
    }

    /// Nearest integer voxel to a continuous voxel-space point, or `None`
    /// outside the grid.
    #[inline]
    pub fn nearest_voxel(&self, p: Vec3) -> Option<Ijk> {
        let i = p.x.round();
        let j = p.y.round();
        let k = p.z.round();
        if i < 0.0 || j < 0.0 || k < 0.0 {
            return None;
        }
        let c = Ijk::new(i as usize, j as usize, k as usize);
        self.dims.contains(c).then_some(c)
    }

    /// Whether a continuous voxel-space point lies within the interpolatable
    /// interior of the grid.
    #[inline]
    pub fn contains_point(&self, p: Vec3) -> bool {
        self.dims.contains_point(p.x, p.y, p.z)
    }

    /// Physical volume of one voxel in mm³.
    #[inline]
    pub fn voxel_volume_mm3(&self) -> f64 {
        self.spacing.x * self.spacing.y * self.spacing.z
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isotropic_roundtrip() {
        let g = VoxelGrid::isotropic(Dim3::new(10, 10, 10), 2.5);
        let p = Vec3::new(1.5, 2.0, 3.25);
        let w = g.voxel_to_world(p);
        assert_eq!(w, Vec3::new(3.75, 5.0, 8.125));
        let back = g.world_to_voxel(w);
        assert!((back - p).norm() < 1e-12);
    }

    #[test]
    fn origin_offsets_world() {
        let mut g = VoxelGrid::isotropic(Dim3::new(4, 4, 4), 1.0);
        g.origin = Vec3::new(10.0, -5.0, 0.0);
        assert_eq!(g.voxel_center_world(Ijk::new(0, 0, 0)), g.origin);
        assert_eq!(
            g.voxel_center_world(Ijk::new(1, 2, 3)),
            Vec3::new(11.0, -3.0, 3.0)
        );
    }

    #[test]
    fn nearest_voxel_rounds() {
        let g = VoxelGrid::isotropic(Dim3::new(4, 4, 4), 1.0);
        assert_eq!(
            g.nearest_voxel(Vec3::new(1.4, 1.6, 2.5)),
            Some(Ijk::new(1, 2, 3))
        );
        assert_eq!(g.nearest_voxel(Vec3::new(-0.6, 0.0, 0.0)), None);
        assert_eq!(g.nearest_voxel(Vec3::new(3.6, 0.0, 0.0)), None);
        // -0.4 rounds to 0, which is in bounds.
        assert_eq!(
            g.nearest_voxel(Vec3::new(-0.4, 0.0, 0.0)),
            Some(Ijk::new(0, 0, 0))
        );
    }

    #[test]
    fn contains_point_matches_dims() {
        let g = VoxelGrid::isotropic(Dim3::new(3, 3, 3), 2.0);
        assert!(g.contains_point(Vec3::new(2.0, 2.0, 2.0)));
        assert!(!g.contains_point(Vec3::new(2.01, 0.0, 0.0)));
    }

    #[test]
    fn voxel_volume() {
        let g = VoxelGrid::isotropic(Dim3::new(2, 2, 2), 2.5);
        assert!((g.voxel_volume_mm3() - 15.625).abs() < 1e-12);
    }

    #[test]
    fn anisotropic_spacing() {
        let g = VoxelGrid {
            dims: Dim3::new(4, 4, 4),
            spacing: Vec3::new(1.0, 2.0, 4.0),
            origin: Vec3::ZERO,
        };
        let w = g.voxel_to_world(Vec3::new(1.0, 1.0, 1.0));
        assert_eq!(w, Vec3::new(1.0, 2.0, 4.0));
        assert!((g.world_to_voxel(w) - Vec3::new(1.0, 1.0, 1.0)).norm() < 1e-12);
    }
}
