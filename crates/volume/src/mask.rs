//! Binary voxel masks (white-matter masks, seed and target regions).

use crate::{Dim3, Ijk, Volume3};

/// A binary voxel mask over a [`Dim3`] grid.
///
/// The MCMC step runs only on "valid (white matter) voxels" (Table III of the
/// paper); seeds and targets for connectivity estimation are also masks.
///
/// ```
/// use tracto_volume::{Dim3, Ijk, Mask};
/// let m = Mask::from_fn(Dim3::new(4, 4, 4), |c| c.i < 2);
/// assert_eq!(m.count(), 32);
/// assert!(m.contains(Ijk::new(1, 3, 3)));
/// assert_eq!(m.dilate().count(), 48); // grows one voxel along +x
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Mask {
    inner: Volume3<bool>,
}

impl Mask {
    /// An all-false mask.
    pub fn empty(dims: Dim3) -> Self {
        Mask {
            inner: Volume3::filled(dims, false),
        }
    }

    /// An all-true mask.
    pub fn full(dims: Dim3) -> Self {
        Mask {
            inner: Volume3::filled(dims, true),
        }
    }

    /// Build from a predicate over voxel coordinates.
    pub fn from_fn(dims: Dim3, mut f: impl FnMut(Ijk) -> bool) -> Self {
        Mask {
            inner: Volume3::from_fn(dims, &mut f),
        }
    }

    /// Wrap a boolean volume.
    pub fn from_volume(inner: Volume3<bool>) -> Self {
        Mask { inner }
    }

    /// Grid dimensions.
    #[inline]
    pub fn dims(&self) -> Dim3 {
        self.inner.dims()
    }

    /// Whether voxel `c` is in the mask. Out-of-bounds coordinates are false,
    /// so a streamline that leaves the grid is simply "outside the mask".
    #[inline]
    pub fn contains(&self, c: Ijk) -> bool {
        self.inner.get_checked(c).copied().unwrap_or(false)
    }

    /// Set membership of a voxel.
    #[inline]
    pub fn set(&mut self, c: Ijk, value: bool) {
        self.inner.set(c, value);
    }

    /// Number of voxels in the mask.
    pub fn count(&self) -> usize {
        self.inner.as_slice().iter().filter(|&&b| b).count()
    }

    /// Linear indices of all member voxels, ascending.
    pub fn indices(&self) -> Vec<usize> {
        self.inner
            .as_slice()
            .iter()
            .enumerate()
            .filter_map(|(idx, &b)| b.then_some(idx))
            .collect()
    }

    /// Coordinates of all member voxels in linear-index order.
    pub fn coords(&self) -> Vec<Ijk> {
        let dims = self.dims();
        self.indices()
            .into_iter()
            .map(|idx| dims.coords(idx))
            .collect()
    }

    /// Logical AND with another mask of the same dims.
    pub fn intersect(&self, other: &Mask) -> Mask {
        assert_eq!(self.dims(), other.dims(), "mask dims must match");
        let dims = self.dims();
        Mask::from_fn(dims, |c| self.contains(c) && other.contains(c))
    }

    /// Logical OR with another mask of the same dims.
    pub fn union(&self, other: &Mask) -> Mask {
        assert_eq!(self.dims(), other.dims(), "mask dims must match");
        let dims = self.dims();
        Mask::from_fn(dims, |c| self.contains(c) || other.contains(c))
    }

    /// Threshold a scalar volume: voxels with `value > threshold` are members.
    /// This is how white-matter masks are derived from mean b=0 intensity or
    /// anisotropy maps.
    pub fn threshold(volume: &Volume3<f32>, threshold: f32) -> Mask {
        Mask {
            inner: volume.map(|&v| v > threshold),
        }
    }

    /// Access the underlying boolean volume.
    pub fn as_volume(&self) -> &Volume3<bool> {
        &self.inner
    }

    /// Morphological dilation by one voxel with 6-connectivity: a voxel is
    /// in the result if it or any face-neighbor is in the mask. Standard
    /// preparation for seed regions and waypoint masks.
    pub fn dilate(&self) -> Mask {
        let dims = self.dims();
        Mask::from_fn(dims, |c| {
            if self.contains(c) {
                return true;
            }
            let Ijk { i, j, k } = c;
            (i > 0 && self.contains(Ijk::new(i - 1, j, k)))
                || self.contains(Ijk::new(i + 1, j, k))
                || (j > 0 && self.contains(Ijk::new(i, j - 1, k)))
                || self.contains(Ijk::new(i, j + 1, k))
                || (k > 0 && self.contains(Ijk::new(i, j, k - 1)))
                || self.contains(Ijk::new(i, j, k + 1))
        })
    }

    /// Morphological erosion by one voxel with 6-connectivity: a voxel stays
    /// only if it and all face-neighbors are in the mask (volume-boundary
    /// neighbors count as outside).
    pub fn erode(&self) -> Mask {
        let dims = self.dims();
        Mask::from_fn(dims, |c| {
            let Ijk { i, j, k } = c;
            self.contains(c)
                && i > 0
                && self.contains(Ijk::new(i - 1, j, k))
                && self.contains(Ijk::new(i + 1, j, k))
                && j > 0
                && self.contains(Ijk::new(i, j - 1, k))
                && self.contains(Ijk::new(i, j + 1, k))
                && k > 0
                && self.contains(Ijk::new(i, j, k - 1))
                && self.contains(Ijk::new(i, j, k + 1))
        })
    }

    /// The one-voxel boundary shell of the mask: members with at least one
    /// face-neighbor outside.
    pub fn boundary(&self) -> Mask {
        let eroded = self.erode();
        let dims = self.dims();
        Mask::from_fn(dims, |c| self.contains(c) && !eroded.contains(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_full_counts() {
        let d = Dim3::new(3, 3, 3);
        assert_eq!(Mask::empty(d).count(), 0);
        assert_eq!(Mask::full(d).count(), 27);
    }

    #[test]
    fn from_fn_membership() {
        let d = Dim3::new(4, 1, 1);
        let m = Mask::from_fn(d, |c| c.i % 2 == 0);
        assert!(m.contains(Ijk::new(0, 0, 0)));
        assert!(!m.contains(Ijk::new(1, 0, 0)));
        assert_eq!(m.count(), 2);
    }

    #[test]
    fn out_of_bounds_is_false() {
        let m = Mask::full(Dim3::new(2, 2, 2));
        assert!(!m.contains(Ijk::new(5, 0, 0)));
    }

    #[test]
    fn indices_and_coords_agree() {
        let d = Dim3::new(2, 2, 2);
        let m = Mask::from_fn(d, |c| c.k == 1);
        let idxs = m.indices();
        let coords = m.coords();
        assert_eq!(idxs.len(), 4);
        for (idx, c) in idxs.iter().zip(&coords) {
            assert_eq!(d.index(*c), *idx);
        }
    }

    #[test]
    fn set_toggles_membership() {
        let mut m = Mask::empty(Dim3::new(2, 2, 2));
        m.set(Ijk::new(1, 1, 0), true);
        assert!(m.contains(Ijk::new(1, 1, 0)));
        assert_eq!(m.count(), 1);
    }

    #[test]
    fn intersect_union() {
        let d = Dim3::new(3, 1, 1);
        let a = Mask::from_fn(d, |c| c.i < 2);
        let b = Mask::from_fn(d, |c| c.i > 0);
        assert_eq!(a.intersect(&b).count(), 1);
        assert_eq!(a.union(&b).count(), 3);
    }

    #[test]
    fn threshold_volume() {
        let v = Volume3::from_vec(Dim3::new(3, 1, 1), vec![0.1f32, 0.5, 0.9]).unwrap();
        let m = Mask::threshold(&v, 0.4);
        assert_eq!(m.count(), 2);
        assert!(!m.contains(Ijk::new(0, 0, 0)));
    }

    #[test]
    fn dilate_grows_by_face_neighbors() {
        let d = Dim3::new(5, 5, 5);
        let mut m = Mask::empty(d);
        m.set(Ijk::new(2, 2, 2), true);
        let g = m.dilate();
        assert_eq!(g.count(), 7); // center + 6 faces
        assert!(g.contains(Ijk::new(1, 2, 2)));
        assert!(!g.contains(Ijk::new(1, 1, 2)), "diagonals excluded");
    }

    #[test]
    fn erode_shrinks_and_inverts_dilate_on_solid_blocks() {
        let d = Dim3::new(7, 7, 7);
        let block = Mask::from_fn(d, |c| {
            (2..=4).contains(&c.i) && (2..=4).contains(&c.j) && (2..=4).contains(&c.k)
        });
        let eroded = block.erode();
        assert_eq!(eroded.count(), 1);
        assert!(eroded.contains(Ijk::new(3, 3, 3)));
        // Dilating the erosion stays inside the original block.
        let back = eroded.dilate();
        for c in back.coords() {
            assert!(block.contains(c));
        }
    }

    #[test]
    fn erode_respects_volume_boundary() {
        let d = Dim3::new(3, 3, 3);
        let full = Mask::full(d);
        let e = full.erode();
        assert_eq!(e.count(), 1, "only the center survives in a 3³ cube");
        assert!(e.contains(Ijk::new(1, 1, 1)));
    }

    #[test]
    fn boundary_is_members_minus_interior() {
        let d = Dim3::new(5, 5, 5);
        let full = Mask::full(d);
        let b = full.boundary();
        assert_eq!(b.count(), full.count() - full.erode().count());
        assert!(b.contains(Ijk::new(0, 2, 2)));
        assert!(!b.contains(Ijk::new(2, 2, 2)));
    }

    #[test]
    fn dilate_empty_stays_empty() {
        let m = Mask::empty(Dim3::new(4, 4, 4));
        assert_eq!(m.dilate().count(), 0);
        assert_eq!(m.erode().count(), 0);
    }

    #[test]
    #[should_panic(expected = "mask dims must match")]
    fn intersect_dim_mismatch_panics() {
        let a = Mask::full(Dim3::new(2, 2, 2));
        let b = Mask::full(Dim3::new(3, 3, 3));
        let _ = a.intersect(&b);
    }
}
