//! Dense 3-D volumes.

use crate::{Dim3, Ijk, VolumeError};

/// A dense 3-D volume of `T` with x-fastest layout.
#[derive(Debug, Clone, PartialEq)]
pub struct Volume3<T> {
    dims: Dim3,
    data: Vec<T>,
}

impl<T: Clone> Volume3<T> {
    /// Create a volume filled with `value`.
    pub fn filled(dims: Dim3, value: T) -> Self {
        Volume3 {
            dims,
            data: vec![value; dims.len()],
        }
    }
}

impl<T: Clone + Default> Volume3<T> {
    /// Create a volume filled with `T::default()`.
    pub fn zeros(dims: Dim3) -> Self {
        Self::filled(dims, T::default())
    }
}

impl<T> Volume3<T> {
    /// Wrap an existing buffer. Fails unless `data.len() == dims.len()` and
    /// all dims are nonzero.
    pub fn from_vec(dims: Dim3, data: Vec<T>) -> Result<Self, VolumeError> {
        if dims.is_empty() {
            return Err(VolumeError::ZeroDim);
        }
        if data.len() != dims.len() {
            return Err(VolumeError::LengthMismatch {
                expected: dims.len(),
                actual: data.len(),
            });
        }
        Ok(Volume3 { dims, data })
    }

    /// Build a volume by evaluating `f` at every voxel.
    pub fn from_fn(dims: Dim3, mut f: impl FnMut(Ijk) -> T) -> Self {
        let data = (0..dims.len()).map(|idx| f(dims.coords(idx))).collect();
        Volume3 { dims, data }
    }

    /// Volume dimensions.
    #[inline]
    pub fn dims(&self) -> Dim3 {
        self.dims
    }

    /// Number of voxels.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the volume holds no voxels (never true for valid volumes).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable voxel access.
    #[inline]
    pub fn get(&self, c: Ijk) -> &T {
        &self.data[self.dims.index(c)]
    }

    /// Mutable voxel access.
    #[inline]
    pub fn get_mut(&mut self, c: Ijk) -> &mut T {
        let idx = self.dims.index(c);
        &mut self.data[idx]
    }

    /// Voxel access returning `None` out of bounds.
    #[inline]
    pub fn get_checked(&self, c: Ijk) -> Option<&T> {
        if self.dims.contains(c) {
            Some(&self.data[self.dims.index(c)])
        } else {
            None
        }
    }

    /// Set a voxel value.
    #[inline]
    pub fn set(&mut self, c: Ijk, value: T) {
        let idx = self.dims.index(c);
        self.data[idx] = value;
    }

    /// Access by linear index.
    #[inline]
    pub fn at(&self, index: usize) -> &T {
        &self.data[index]
    }

    /// Mutable access by linear index.
    #[inline]
    pub fn at_mut(&mut self, index: usize) -> &mut T {
        &mut self.data[index]
    }

    /// The raw backing slice in linear-index order.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable raw backing slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consume into the raw buffer.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Map every voxel value producing a new volume of the same shape.
    pub fn map<U>(&self, f: impl FnMut(&T) -> U) -> Volume3<U> {
        Volume3 {
            dims: self.dims,
            data: self.data.iter().map(f).collect(),
        }
    }

    /// Iterate `(coordinate, value)` pairs in linear order.
    pub fn iter(&self) -> impl Iterator<Item = (Ijk, &T)> {
        let dims = self.dims;
        self.data
            .iter()
            .enumerate()
            .map(move |(idx, v)| (dims.coords(idx), v))
    }
}

impl Volume3<f32> {
    /// Minimum and maximum values (ignoring NaN). Returns `None` for
    /// all-NaN data.
    pub fn min_max(&self) -> Option<(f32, f32)> {
        let mut it = self.data.iter().copied().filter(|v| !v.is_nan());
        let first = it.next()?;
        let (mut lo, mut hi) = (first, first);
        for v in it {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        Some((lo, hi))
    }

    /// Mean value of all voxels.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().map(|&v| v as f64).sum::<f64>() / self.data.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filled_and_zeros() {
        let d = Dim3::new(2, 3, 4);
        let v = Volume3::filled(d, 7u8);
        assert_eq!(v.len(), 24);
        assert!(v.as_slice().iter().all(|&x| x == 7));
        let z: Volume3<f32> = Volume3::zeros(d);
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_vec_validation() {
        let d = Dim3::new(2, 2, 2);
        assert!(Volume3::from_vec(d, vec![0.0f32; 8]).is_ok());
        assert!(matches!(
            Volume3::from_vec(d, vec![0.0f32; 7]),
            Err(VolumeError::LengthMismatch {
                expected: 8,
                actual: 7
            })
        ));
        assert!(matches!(
            Volume3::from_vec(Dim3::new(0, 2, 2), Vec::<f32>::new()),
            Err(VolumeError::ZeroDim)
        ));
    }

    #[test]
    fn from_fn_and_get() {
        let d = Dim3::new(3, 3, 3);
        let v = Volume3::from_fn(d, |c| (c.i + 10 * c.j + 100 * c.k) as u32);
        assert_eq!(*v.get(Ijk::new(2, 1, 0)), 12);
        assert_eq!(*v.get(Ijk::new(0, 0, 2)), 200);
    }

    #[test]
    fn get_checked_bounds() {
        let v = Volume3::filled(Dim3::new(2, 2, 2), 1i32);
        assert_eq!(v.get_checked(Ijk::new(1, 1, 1)), Some(&1));
        assert_eq!(v.get_checked(Ijk::new(2, 0, 0)), None);
    }

    #[test]
    fn set_and_get_mut() {
        let mut v = Volume3::zeros(Dim3::new(2, 2, 2));
        v.set(Ijk::new(1, 0, 1), 5.0f32);
        assert_eq!(*v.get(Ijk::new(1, 0, 1)), 5.0);
        *v.get_mut(Ijk::new(0, 1, 0)) = 3.0;
        assert_eq!(*v.get(Ijk::new(0, 1, 0)), 3.0);
    }

    #[test]
    fn map_preserves_shape() {
        let v = Volume3::from_fn(Dim3::new(2, 2, 2), |c| c.i as f32);
        let m = v.map(|&x| x * 2.0);
        assert_eq!(m.dims(), v.dims());
        assert_eq!(*m.get(Ijk::new(1, 0, 0)), 2.0);
    }

    #[test]
    fn min_max_and_mean() {
        let v = Volume3::from_vec(Dim3::new(2, 2, 1), vec![1.0f32, -2.0, 3.0, 0.0]).unwrap();
        assert_eq!(v.min_max(), Some((-2.0, 3.0)));
        assert!((v.mean() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn min_max_ignores_nan() {
        let v = Volume3::from_vec(Dim3::new(2, 1, 1), vec![f32::NAN, 2.0]).unwrap();
        assert_eq!(v.min_max(), Some((2.0, 2.0)));
    }

    #[test]
    fn iter_matches_linear_order() {
        let v = Volume3::from_fn(Dim3::new(2, 2, 1), |c| c.i + 2 * c.j);
        let items: Vec<usize> = v.iter().map(|(_, &x)| x).collect();
        assert_eq!(items, vec![0, 1, 2, 3]);
    }
}
