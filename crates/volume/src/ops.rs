//! Elementwise volume arithmetic and summary statistics.
//!
//! Connectivity analysis combines probability volumes: averaging maps
//! across runs, thresholding them into masks, and summarizing intensity
//! distributions. These are the scalar-field utilities for that.

use crate::{Mask, Volume3};

/// Elementwise sum of two volumes of identical dims.
pub fn add(a: &Volume3<f32>, b: &Volume3<f32>) -> Volume3<f32> {
    assert_eq!(a.dims(), b.dims(), "volume dims must match");
    let data = a
        .as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| x + y)
        .collect();
    Volume3::from_vec(a.dims(), data).expect("dims valid")
}

/// Elementwise linear combination `a·wa + b·wb`.
pub fn lerp_volumes(a: &Volume3<f32>, wa: f32, b: &Volume3<f32>, wb: f32) -> Volume3<f32> {
    assert_eq!(a.dims(), b.dims(), "volume dims must match");
    let data = a
        .as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| x * wa + y * wb)
        .collect();
    Volume3::from_vec(a.dims(), data).expect("dims valid")
}

/// Scale a volume by a constant.
pub fn scale(a: &Volume3<f32>, s: f32) -> Volume3<f32> {
    a.map(|&v| v * s)
}

/// Mean of several volumes (e.g. connectivity maps from independent runs).
pub fn mean_volumes(volumes: &[&Volume3<f32>]) -> Volume3<f32> {
    assert!(!volumes.is_empty(), "need at least one volume");
    let mut acc = volumes[0].clone();
    for v in &volumes[1..] {
        acc = add(&acc, v);
    }
    scale(&acc, 1.0 / volumes.len() as f32)
}

/// Number of voxels strictly above a threshold.
pub fn count_above(a: &Volume3<f32>, threshold: f32) -> usize {
    a.as_slice().iter().filter(|&&v| v > threshold).count()
}

/// Nearest-rank percentile (`q ∈ [0, 1]`) of all voxel values (NaNs
/// excluded). Returns `None` when every value is NaN.
pub fn percentile(a: &Volume3<f32>, q: f64) -> Option<f32> {
    assert!((0.0..=1.0).contains(&q));
    let mut vals: Vec<f32> = a
        .as_slice()
        .iter()
        .copied()
        .filter(|v| !v.is_nan())
        .collect();
    if vals.is_empty() {
        return None;
    }
    vals.sort_by(|x, y| x.partial_cmp(y).expect("no NaN"));
    let idx = ((q * vals.len() as f64).ceil() as usize).clamp(1, vals.len());
    Some(vals[idx - 1])
}

/// Mean value over a mask's voxels (0 for an empty mask).
pub fn masked_mean(a: &Volume3<f32>, mask: &Mask) -> f64 {
    assert_eq!(a.dims(), mask.dims(), "mask dims must match");
    let idx = mask.indices();
    if idx.is_empty() {
        return 0.0;
    }
    idx.iter().map(|&i| *a.at(i) as f64).sum::<f64>() / idx.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dim3, Ijk};

    fn v(values: &[f32]) -> Volume3<f32> {
        Volume3::from_vec(Dim3::new(values.len(), 1, 1), values.to_vec()).unwrap()
    }

    #[test]
    fn add_and_scale() {
        let a = v(&[1.0, 2.0, 3.0]);
        let b = v(&[10.0, 20.0, 30.0]);
        assert_eq!(add(&a, &b).as_slice(), &[11.0, 22.0, 33.0]);
        assert_eq!(scale(&a, 2.0).as_slice(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn lerp_combination() {
        let a = v(&[1.0, 1.0]);
        let b = v(&[3.0, 5.0]);
        assert_eq!(lerp_volumes(&a, 0.5, &b, 0.5).as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn mean_of_three() {
        let a = v(&[0.0, 3.0]);
        let b = v(&[3.0, 3.0]);
        let c = v(&[6.0, 3.0]);
        assert_eq!(mean_volumes(&[&a, &b, &c]).as_slice(), &[3.0, 3.0]);
    }

    #[test]
    fn count_above_threshold() {
        let a = v(&[0.1, 0.5, 0.9, 0.5]);
        assert_eq!(count_above(&a, 0.5), 1);
        assert_eq!(count_above(&a, 0.0), 4);
        assert_eq!(count_above(&a, 1.0), 0);
    }

    #[test]
    fn percentile_nearest_rank() {
        let a = v(&[5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(percentile(&a, 0.0), Some(1.0));
        assert_eq!(percentile(&a, 0.5), Some(3.0));
        assert_eq!(percentile(&a, 1.0), Some(5.0));
    }

    #[test]
    fn percentile_ignores_nan() {
        let a = v(&[f32::NAN, 2.0, 4.0]);
        assert_eq!(percentile(&a, 1.0), Some(4.0));
        let all_nan = v(&[f32::NAN, f32::NAN]);
        assert_eq!(percentile(&all_nan, 0.5), None);
    }

    #[test]
    fn masked_mean_subsets() {
        let a = v(&[1.0, 2.0, 30.0]);
        let m = Mask::from_fn(a.dims(), |c| c.i < 2);
        assert!((masked_mean(&a, &m) - 1.5).abs() < 1e-12);
        assert_eq!(masked_mean(&a, &Mask::empty(a.dims())), 0.0);
        let _ = Ijk::new(0, 0, 0);
    }

    #[test]
    #[should_panic(expected = "dims must match")]
    fn dim_mismatch_panics() {
        let a = v(&[1.0]);
        let b = v(&[1.0, 2.0]);
        let _ = add(&a, &b);
    }
}
