//! Dense 4-D volumes (`DimX × DimY × DimZ × n`), the layout of raw DWI data
//! and of the per-voxel sample volumes produced by MCMC (Fig. 1 of the paper).

use crate::{Dim3, Ijk, Volume3, VolumeError};

/// A dense 4-D volume of `T`: a 3-D grid with `nt` values per voxel.
///
/// The last axis is fastest **within a voxel**: the `nt` values of a voxel are
/// contiguous, so extracting a voxel's full measurement vector (the common hot
/// access pattern in MCMC) is a contiguous slice.
#[derive(Debug, Clone, PartialEq)]
pub struct Volume4<T> {
    dims: Dim3,
    nt: usize,
    data: Vec<T>,
}

impl<T: Clone + Default> Volume4<T> {
    /// Create a zeroed 4-D volume.
    pub fn zeros(dims: Dim3, nt: usize) -> Self {
        Volume4 {
            dims,
            nt,
            data: vec![T::default(); dims.len() * nt],
        }
    }
}

impl<T> Volume4<T> {
    /// Wrap an existing buffer; `data.len()` must equal `dims.len() * nt`.
    pub fn from_vec(dims: Dim3, nt: usize, data: Vec<T>) -> Result<Self, VolumeError> {
        if dims.is_empty() || nt == 0 {
            return Err(VolumeError::ZeroDim);
        }
        let expected = dims.len() * nt;
        if data.len() != expected {
            return Err(VolumeError::LengthMismatch {
                expected,
                actual: data.len(),
            });
        }
        Ok(Volume4 { dims, nt, data })
    }

    /// Build by evaluating `f(coord, t)` at every element.
    pub fn from_fn(dims: Dim3, nt: usize, mut f: impl FnMut(Ijk, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(dims.len() * nt);
        for idx in 0..dims.len() {
            let c = dims.coords(idx);
            for t in 0..nt {
                data.push(f(c, t));
            }
        }
        Volume4 { dims, nt, data }
    }

    /// Spatial dimensions.
    #[inline]
    pub fn dims(&self) -> Dim3 {
        self.dims
    }

    /// Number of values per voxel (e.g. diffusion-weighted measurements, or
    /// posterior samples).
    #[inline]
    pub fn nt(&self) -> usize {
        self.nt
    }

    /// Total element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when there are no elements (never for valid volumes).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The contiguous per-voxel slice of `nt` values.
    #[inline]
    pub fn voxel(&self, c: Ijk) -> &[T] {
        let base = self.dims.index(c) * self.nt;
        &self.data[base..base + self.nt]
    }

    /// Mutable per-voxel slice.
    #[inline]
    pub fn voxel_mut(&mut self, c: Ijk) -> &mut [T] {
        let base = self.dims.index(c) * self.nt;
        &mut self.data[base..base + self.nt]
    }

    /// Per-voxel slice by linear voxel index.
    #[inline]
    pub fn voxel_at(&self, voxel_index: usize) -> &[T] {
        let base = voxel_index * self.nt;
        &self.data[base..base + self.nt]
    }

    /// Mutable per-voxel slice by linear voxel index.
    #[inline]
    pub fn voxel_at_mut(&mut self, voxel_index: usize) -> &mut [T] {
        let base = voxel_index * self.nt;
        &mut self.data[base..base + self.nt]
    }

    /// Single element access.
    #[inline]
    pub fn get(&self, c: Ijk, t: usize) -> &T {
        debug_assert!(t < self.nt);
        &self.data[self.dims.index(c) * self.nt + t]
    }

    /// Set a single element.
    #[inline]
    pub fn set(&mut self, c: Ijk, t: usize, value: T) {
        debug_assert!(t < self.nt);
        let idx = self.dims.index(c) * self.nt + t;
        self.data[idx] = value;
    }

    /// Raw backing slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }
}

impl<T: Copy> Volume4<T> {
    /// Extract the 3-D volume of the `t`-th value of every voxel — e.g. one
    /// posterior sample volume out of the `NumSamples` stack.
    pub fn slice_t(&self, t: usize) -> Volume3<T> {
        assert!(t < self.nt, "t={t} out of range nt={}", self.nt);
        let data = (0..self.dims.len())
            .map(|v| self.data[v * self.nt + t])
            .collect();
        Volume3::from_vec(self.dims, data).expect("dims are valid by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape() {
        let v: Volume4<f32> = Volume4::zeros(Dim3::new(2, 3, 4), 5);
        assert_eq!(v.len(), 2 * 3 * 4 * 5);
        assert_eq!(v.nt(), 5);
    }

    #[test]
    fn from_vec_validation() {
        let d = Dim3::new(2, 2, 1);
        assert!(Volume4::from_vec(d, 3, vec![0u8; 12]).is_ok());
        assert!(Volume4::from_vec(d, 3, vec![0u8; 11]).is_err());
        assert!(Volume4::from_vec(d, 0, Vec::<u8>::new()).is_err());
    }

    #[test]
    fn voxel_slice_contiguous() {
        let d = Dim3::new(2, 2, 1);
        let v = Volume4::from_fn(d, 3, |c, t| (d.index(c) * 10 + t) as u32);
        assert_eq!(v.voxel(Ijk::new(1, 0, 0)), &[10, 11, 12]);
        assert_eq!(v.voxel(Ijk::new(1, 1, 0)), &[30, 31, 32]);
    }

    #[test]
    fn voxel_at_matches_voxel() {
        let d = Dim3::new(2, 2, 2);
        let v = Volume4::from_fn(d, 2, |c, t| d.index(c) * 2 + t);
        for idx in 0..d.len() {
            assert_eq!(v.voxel_at(idx), v.voxel(d.coords(idx)));
        }
    }

    #[test]
    fn get_set_roundtrip() {
        let mut v: Volume4<f32> = Volume4::zeros(Dim3::new(2, 2, 2), 4);
        v.set(Ijk::new(1, 1, 1), 3, 9.5);
        assert_eq!(*v.get(Ijk::new(1, 1, 1), 3), 9.5);
        assert_eq!(*v.get(Ijk::new(1, 1, 1), 0), 0.0);
        assert_eq!(v.voxel(Ijk::new(1, 1, 1))[3], 9.5);
    }

    #[test]
    fn slice_t_extracts_sample_volume() {
        let d = Dim3::new(2, 1, 1);
        let v = Volume4::from_vec(d, 2, vec![1.0f32, 2.0, 3.0, 4.0]).unwrap();
        let s0 = v.slice_t(0);
        let s1 = v.slice_t(1);
        assert_eq!(s0.as_slice(), &[1.0, 3.0]);
        assert_eq!(s1.as_slice(), &[2.0, 4.0]);
    }

    #[test]
    #[should_panic]
    fn slice_t_out_of_range_panics() {
        let v: Volume4<f32> = Volume4::zeros(Dim3::new(1, 1, 1), 1);
        let _ = v.slice_t(1);
    }

    #[test]
    fn voxel_mut_writes_through() {
        let mut v: Volume4<u8> = Volume4::zeros(Dim3::new(1, 1, 2), 2);
        v.voxel_mut(Ijk::new(0, 0, 1)).copy_from_slice(&[7, 8]);
        assert_eq!(v.as_slice(), &[0, 0, 7, 8]);
    }
}
