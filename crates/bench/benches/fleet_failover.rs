//! fleet_failover — what fleet mode costs when nothing fails, and how
//! fast takeover is when something does.
//!
//! Three measurements behind the coordinator/replication machinery:
//!
//! 1. **Placement throughput** — consistent-hash routing decisions per
//!    second over a 3-member ring, plus the key distribution and how many
//!    keys move when one member dies (only the dead member's arcs may
//!    move — that is the point of the ring).
//! 2. **Replication overhead** — fsynced journal lifecycles/second with
//!    and without the replication mirror attached; the delta is what a
//!    member pays per job to keep its standby current.
//! 3. **Takeover latency** — re-sync a dead host's N-record journal into
//!    a standby's `ReplicaStore`, consume it, and replay it to the
//!    pending-job set: the storage-side cost of `declare_dead`.
//!
//! Not in the paper — the paper runs one host — but these bound what the
//! fleet layer charges for surviving `kill -9` of a whole member.

use std::time::Instant;
use tracto_bench::TableWriter;
use tracto_proto::placement_key;
use tracto_serve::{replay_text, HashRing, JobJournal, ReplicaStore};
use tracto_trace::Tracer;

fn spec(seed: u64) -> tracto_proto::JobSpec {
    let mut spec = tracto_proto::JobSpec::track(tracto_proto::DatasetSpec::new("single"));
    spec.seed = seed;
    spec
}

fn main() {
    let root = std::env::temp_dir().join(format!("tracto-bench-fleet-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).unwrap();

    let mut w = TableWriter::new(
        "fleet_failover",
        "Fleet mode: placement throughput, replication overhead, takeover latency",
    );

    // --- 1. placement throughput and stability ----------------------------
    let names: Vec<String> = ["a", "b", "c"].map(str::to_string).to_vec();
    let ring = HashRing::new(&names);
    const KEYS: u64 = 30_000;
    let keys: Vec<u64> = (0..KEYS).map(|i| placement_key(&spec(i))).collect();
    let alive = [true, true, true];
    let t0 = Instant::now();
    let mut counts = [0u64; 3];
    for &key in &keys {
        counts[ring.route(key, &alive).unwrap()] += 1;
    }
    let route_s = t0.elapsed().as_secs_f64();
    let degraded = [true, false, true]; // b is dead
    let moved = keys
        .iter()
        .filter(|&&k| {
            let before = ring.route(k, &alive).unwrap();
            before != ring.route(k, &degraded).unwrap()
        })
        .count();
    w.line(&format!(
        "routing: {:.2}M decisions/s over 3 members; spread {:?} of {} keys",
        KEYS as f64 / route_s / 1e6,
        counts,
        KEYS,
    ));
    w.line(&format!(
        "death of one member moves {moved} keys ({:.1}%) — exactly its own share",
        moved as f64 * 100.0 / KEYS as f64,
    ));
    assert_eq!(moved as u64, counts[1], "only the dead member's keys move");

    // --- 2. replication mirror overhead ------------------------------------
    const JOBS: u64 = 200;
    let lifecycles = |journal: &JobJournal| {
        let probe = spec(1);
        let t0 = Instant::now();
        for id in 1..=JOBS {
            journal.submitted(id, &probe);
            journal.admitted(id);
            journal.completed(id);
        }
        JOBS as f64 / t0.elapsed().as_secs_f64()
    };
    let (plain, _) = JobJournal::open(&root.join("plain"), Tracer::disabled()).unwrap();
    let plain_rate = lifecycles(&plain);
    let (mirrored, _) = JobJournal::open(&root.join("mirrored"), Tracer::disabled()).unwrap();
    let (tx, rx) = crossbeam::channel::unbounded();
    mirrored.set_mirror(tx);
    let mirrored_rate = lifecycles(&mirrored);
    assert_eq!(rx.len(), (JOBS * 3) as usize, "mirror tees every record");
    w.line("");
    w.line(&format!(
        "journal: {plain_rate:.0} submits/s plain, {mirrored_rate:.0} with replication mirror ({:+.1}%)",
        (mirrored_rate / plain_rate - 1.0) * 100.0,
    ));

    // --- 3. takeover latency ------------------------------------------------
    w.line("");
    let widths = [6, 10, 8, 9, 8];
    w.row(
        &["jobs", "records", "sync_ms", "replay_ms", "pending"].map(str::to_string),
        &widths,
    );
    for jobs in [10u64, 100, 1000] {
        // Half the jobs finished before the host died; half are pending
        // with a checkpoint — the mix takeover actually sees.
        let dir = root.join(format!("dead{jobs}"));
        let (journal, _) = JobJournal::open(&dir, Tracer::disabled()).unwrap();
        for id in 1..=jobs {
            journal.submitted(id, &spec(id));
            journal.admitted(id);
            if id % 2 == 0 {
                journal.completed(id);
            } else {
                journal.checkpointed(id, "abcd1234abcd1234");
            }
        }
        let lines: Vec<String> = journal
            .snapshot_text()
            .lines()
            .map(|l| l.to_string())
            .collect();
        drop(journal);

        let store = ReplicaStore::open(&root.join(format!("standby{jobs}"))).unwrap();
        let t0 = Instant::now();
        store.append("dead", 0, true, &lines).unwrap();
        let sync_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t0 = Instant::now();
        let text = store.take("dead").unwrap();
        let recovery = replay_text(&text, &Tracer::disabled());
        let replay_ms = t0.elapsed().as_secs_f64() * 1e3;
        assert_eq!(recovery.jobs.len() as u64, jobs / 2 + jobs % 2);
        w.row(
            &[
                format!("{jobs}"),
                format!("{}", lines.len()),
                format!("{sync_ms:.2}"),
                format!("{replay_ms:.2}"),
                format!("{}", recovery.jobs.len()),
            ],
            &widths,
        );
    }

    let _ = std::fs::remove_dir_all(&root);
    w.save();
}
