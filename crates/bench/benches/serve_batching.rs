//! Continuous batching in the job service: simulated cost of K concurrent
//! tracking jobs launched one-at-a-time (each client pays its own partially
//! filled wavefronts) versus merged into one shared lane population, plus
//! the Step-1 saving a warm sample cache buys a repeated job.
//!
//! Not in the paper — the serving layer generalizes the paper's single-run
//! model — but the numbers come from the same device simulation as every
//! other table.

use std::sync::Arc;
use std::time::Duration;
use tracto::mcmc::ChainConfig;
use tracto::phantom::datasets;
use tracto::pipeline::PipelineConfig;
use tracto::prelude::*;
use tracto_bench::{fmt_s, row_params, tracking_workload, BenchScale, TableWriter};
use tracto_gpu_sim::MultiGpu;
use tracto_serve::{run_batch, BatchJob, JobSpec, ServiceConfig, TractoService};
use tracto_volume::Dim3;

/// Split the workload's seeds round-robin into `k` jobs, as if `k` clients
/// each asked for a region of the same study.
fn split_jobs(samples: &Arc<SampleVolumes>, seeds: &[Vec3], k: usize) -> Vec<BatchJob> {
    (0..k)
        .map(|i| BatchJob {
            samples: Arc::clone(samples),
            params: row_params(0.1, 0.9),
            seeds: seeds.iter().skip(i).step_by(k).copied().collect(),
            mask: None,
            jitter: 0.5,
            run_seed: 42 + i as u64,
            record_visits: false,
        })
        .collect()
}

fn main() {
    let scale = BenchScale::from_env();
    let workload = tracking_workload(1, scale);
    let samples = Arc::new(workload.samples);
    let strategy = SegmentationStrategy::paper_table2();
    let mut w = TableWriter::new(
        "serve_batching",
        &format!(
            "Serving: sequential vs continuously batched tracking (dataset 1, strategy B; grid scale {:.2}, {} samples, {} seeds total)",
            scale.grid,
            scale.samples,
            workload.seeds.len()
        ),
    );
    let widths = [6, 8, 11, 11, 9, 9, 11, 11];
    w.row(
        &[
            "jobs",
            "lanes",
            "seq_sim_s",
            "batch_sim_s",
            "speedup",
            "launches",
            "seq_util%",
            "batch_util%",
        ]
        .map(str::to_string),
        &widths,
    );

    for &k in &[1usize, 4, 16] {
        let jobs = split_jobs(&samples, &workload.seeds, k);

        // Sequential: each job gets its own launch sequence on a fresh device.
        let mut seq_sim_s = 0.0;
        let mut seq_launches = 0u64;
        let mut seq_charged = 0.0f64;
        let mut seq_useful = 0.0f64;
        let mut seq_results = Vec::new();
        for job in &jobs {
            let mut gpu = MultiGpu::new(DeviceConfig::radeon_5870(), 1);
            let report =
                run_batch(&mut gpu, std::slice::from_ref(job), &strategy).expect("sequential run");
            seq_sim_s += report.wall_s;
            seq_launches += report.launches;
            seq_charged += report.ledger.charged_iterations as f64;
            seq_useful += report.ledger.useful_iterations as f64;
            seq_results.extend(report.per_job);
        }

        // Batched: all jobs merged into one shared lane population.
        let mut gpu = MultiGpu::new(DeviceConfig::radeon_5870(), 1);
        let batched = run_batch(&mut gpu, &jobs, &strategy).expect("batched run");

        // Scheduling must never change numerics.
        for (i, (seq, bat)) in seq_results.iter().zip(&batched.per_job).enumerate() {
            assert_eq!(
                seq.lengths_by_sample, bat.lengths_by_sample,
                "job {i}: batching changed results"
            );
        }

        let seq_util = if seq_charged > 0.0 {
            seq_useful / seq_charged
        } else {
            1.0
        };
        w.row(
            &[
                format!("{k}"),
                format!("{}", batched.lanes),
                fmt_s(seq_sim_s),
                fmt_s(batched.wall_s),
                format!("{:.2}x", seq_sim_s / batched.wall_s),
                format!("{}→{}", seq_launches, batched.launches),
                format!("{:.1}", seq_util * 100.0),
                format!("{:.1}", batched.utilization * 100.0),
            ],
            &widths,
        );
    }

    // --- Warm-cache effect: the same TrackJob twice through the service.
    let ds = Arc::new(datasets::single_bundle(Dim3::new(10, 7, 7), Some(20.0), 3));
    let mut cfg = PipelineConfig::fast();
    cfg.chain = ChainConfig {
        num_burnin: 80,
        num_samples: 4,
        sample_interval: 1,
        ..ChainConfig::fast_test()
    };
    cfg.tracking.max_steps = 200;
    let service = TractoService::start(ServiceConfig {
        batch_window: Duration::from_millis(5),
        ..ServiceConfig::default()
    });
    let cold = service
        .submit(JobSpec::track(Arc::clone(&ds), cfg.clone()))
        .wait_track()
        .expect("cold job");
    let after_cold = service.metrics();
    let warm = service
        .submit(JobSpec::track(Arc::clone(&ds), cfg.clone()))
        .wait_track()
        .expect("warm job");
    let after_warm = service.shutdown();
    assert!(
        !cold.cache_hit && warm.cache_hit,
        "second job must ride the cache"
    );

    let cold_sim = after_cold.estimation_sim_s + after_cold.tracking_sim_s;
    let warm_sim = (after_warm.estimation_sim_s - after_cold.estimation_sim_s)
        + (after_warm.tracking_sim_s - after_cold.tracking_sim_s);
    w.line("");
    w.line(&format!(
        "sample cache: cold job {} sim s (Step 1 {} + Step 2 {}), warm repeat {} sim s ({:.1}x), hit rate {:.2}, {} MCMC run(s) for 2 jobs",
        fmt_s(cold_sim),
        fmt_s(after_cold.estimation_sim_s),
        fmt_s(after_cold.tracking_sim_s),
        fmt_s(warm_sim),
        cold_sim / warm_sim.max(1e-12),
        after_warm.cache.hit_rate(),
        after_warm.estimations_run
    ));
    w.save();
}
