//! Figure 5 — fiber-length distributions.
//!
//! (a) the length histogram, (b) the "cumulative" distribution `P(L > x)`,
//! (c) the semi-log density, whose straightness "clearly indicates the
//! exponential distribution" (Eq. 4). Fits λ by maximum likelihood and
//! reports KS and semi-log R².

use tracto::stats::ecdf::Ecdf;
use tracto::stats::expfit::{bootstrap_lambda_ci, semilog_fit, ExponentialFit};
use tracto::stats::Histogram;
use tracto::tracking2::{CpuTracker, RecordMode};
use tracto_bench::{row_params, tracking_workload, BenchScale, TableWriter};

fn main() {
    let scale = BenchScale::from_env();
    let workload = tracking_workload(1, scale);
    // Step 0.1 at the strict 0.9 threshold (Table II row 1): the
    // curvature-stop hazard dominates, the regime of the Fig. 5 finding.
    let mut params = row_params(0.1, 0.9);
    params.max_steps = 2000;
    let tracker = CpuTracker {
        samples: &workload.samples,
        params,
        seeds: workload.seeds.clone(),
        mask: None,
        jitter: 0.5,
        run_seed: 42,
        bidirectional: false,
    };
    let out = tracker.run_parallel(RecordMode::LengthsOnly);
    let lengths: Vec<f64> = out
        .all_lengths()
        .into_iter()
        .filter(|&l| l > 0)
        .map(f64::from)
        .collect();

    let mut w = TableWriter::new(
        "fig5",
        &format!(
            "Fig. 5: fiber length distribution ({} tracked fibers)",
            lengths.len()
        ),
    );

    let fit = ExponentialFit::fit(&lengths);
    let line = semilog_fit(&lengths, 30);
    let ecdf = Ecdf::new(lengths.clone());
    let hi = ecdf.quantile(0.995);
    let hist = Histogram::from_data(lengths.iter().copied(), 0.0, hi, 24);

    w.line("(a) length histogram (steps):");
    w.line(&hist.render_ascii(48));
    w.line("(b) cumulative distribution P(L > x):");
    for (x, p) in ecdf.ccdf_series(12) {
        w.line(&format!("   P(L > {x:>7.1}) = {p:.4}"));
    }
    w.line("");
    w.line("(c) exponential fit (Eq. 4, p(x;λ) = λ e^{-λx}):");
    let (lo, hi) = bootstrap_lambda_ci(&lengths, 300, 0.05, 42);
    w.line(&format!(
        "   λ̂ (MLE)            = {:.5}  (mean length {:.1} steps; 95% bootstrap CI [{:.5}, {:.5}])",
        fit.lambda,
        fit.mean(),
        lo,
        hi
    ));
    w.line(&format!(
        "   semi-log slope      = {:.5}  (≈ −λ̂ ⇒ straight line in Fig. 5c)",
        line.slope
    ));
    w.line(&format!("   semi-log R²         = {:.4}", line.r_squared));
    w.line(&format!(
        "   KS statistic        = {:.4}  (critical @5%: {:.4})",
        fit.ks_statistic,
        fit.ks_critical(0.05)
    ));
    w.line("");
    w.line("Shape check: the semi-log density is a straight line (R² near 1) and the");
    w.line("MLE rate matches the semi-log slope — fiber lengths are exponential, the");
    w.line("paper's empirical finding enabling the increasing-interval strategy.");
    assert!(
        line.r_squared > 0.8,
        "semi-log R² {} too low",
        line.r_squared
    );
    assert!(
        (line.slope + fit.lambda).abs() / fit.lambda < 0.5,
        "slope {} vs -λ {}",
        line.slope,
        -fit.lambda
    );
    w.save();
}
