//! Socket front-end scaling: N concurrent clients against one reactor,
//! push (v2 subscriptions) vs poll (v1-style status loop).
//!
//! Not in the paper — the serving layer generalizes the paper's single-run
//! model — but the reactor's claim is concrete: a fixed three-thread front
//! end should hold per-job latency roughly flat as connections grow, while
//! pushed events eliminate the poll traffic entirely. Wall-clock numbers
//! here are host time (thread scheduling + socket IO), not the simulated
//! device clock the tables use.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use tracto_bench::TableWriter;
use tracto_proto::{ChainSpec, DatasetSpec, Endpoint, JobKind, JobState, RemoteService, TrackSpec};
use tracto_serve::{ServiceConfig, SocketServer, TractoService};

/// A tiny deterministic tracking job; every client reuses the same cache
/// key so the measurement is front-end overhead, not MCMC time.
fn wire_job() -> tracto_proto::JobSpec {
    let mut spec = tracto_proto::JobSpec::track(DatasetSpec {
        kind: "single".into(),
        scale: 0.05,
        seed: 3,
        snr: None,
        upload: None,
    });
    spec.chain = ChainSpec {
        burnin: 30,
        samples: 2,
        interval: 1,
    };
    spec.seed = 9;
    spec.kind = JobKind::Track(TrackSpec {
        step: 0.1,
        threshold: 0.9,
        max_steps: 60,
    });
    spec
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    /// Subscribe and wait for the pushed terminal event.
    Push,
    /// v1-style fixed-interval `status` polling (1 ms).
    Poll,
}

struct RunStats {
    wall: Duration,
    mean: Duration,
    worst: Duration,
    polls: u64,
}

/// Drive `clients` concurrent connections through one fresh server; each
/// submits one job and follows it to its terminal state.
fn run(clients: usize, mode: Mode) -> RunStats {
    let dir = std::env::temp_dir().join(format!(
        "tracto_connbench_{}_{}",
        std::process::id(),
        clients
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let service = Arc::new(TractoService::start(
        ServiceConfig::builder()
            .queue_capacity(2 * clients.max(8))
            .build()
            .unwrap(),
    ));
    let server = SocketServer::bind(
        Arc::clone(&service),
        &Endpoint::Unix(dir.join("tracto.sock")),
    )
    .unwrap();
    let endpoint = server.endpoint().clone();

    let latencies: Arc<Mutex<Vec<Duration>>> = Arc::new(Mutex::new(Vec::new()));
    let started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|i| {
            let endpoint = endpoint.clone();
            let latencies = Arc::clone(&latencies);
            std::thread::Builder::new()
                .stack_size(256 * 1024)
                .spawn(move || {
                    let mut client =
                        RemoteService::connect(&endpoint, &format!("bench-{i}")).unwrap();
                    let t0 = Instant::now();
                    let job = client.submit(wire_job()).unwrap();
                    let state = match mode {
                        Mode::Push => client.await_job(job, None).unwrap(),
                        Mode::Poll => loop {
                            match client.status(job).unwrap() {
                                JobState::Pending => std::thread::sleep(Duration::from_millis(1)),
                                settled => break settled,
                            }
                        },
                    };
                    assert!(matches!(state, JobState::Done(_)), "{state:?}");
                    latencies.lock().unwrap().push(t0.elapsed());
                })
                .unwrap()
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let wall = started.elapsed();
    let polls = server.poll_requests();
    server.stop();
    drop(service);
    let _ = std::fs::remove_dir_all(&dir);

    let lat = latencies.lock().unwrap();
    let mean = lat.iter().sum::<Duration>() / lat.len() as u32;
    let worst = lat.iter().max().copied().unwrap_or_default();
    RunStats {
        wall,
        mean,
        worst,
        polls,
    }
}

fn fmt_ms(d: Duration) -> String {
    format!("{:.1}", d.as_secs_f64() * 1e3)
}

fn main() {
    let mut w = TableWriter::new(
        "connections_vs_latency",
        "Socket front end: concurrent connections vs job latency, pushed events vs 1 ms status polling (host wall-clock; one tiny cached tracking job per client)",
    );
    let widths = [6, 6, 9, 9, 9, 8];
    w.row(
        &["conns", "mode", "wall_ms", "mean_ms", "max_ms", "polls"].map(str::to_string),
        &widths,
    );
    for &clients in &[1usize, 8, 64, 256] {
        for mode in [Mode::Push, Mode::Poll] {
            let stats = run(clients, mode);
            if mode == Mode::Push {
                assert_eq!(stats.polls, 0, "push mode must serve zero polls");
            }
            w.row(
                &[
                    clients.to_string(),
                    if mode == Mode::Push { "push" } else { "poll" }.to_string(),
                    fmt_ms(stats.wall),
                    fmt_ms(stats.mean),
                    fmt_ms(stats.worst),
                    stats.polls.to_string(),
                ],
                &widths,
            );
        }
    }
    w.line("");
    w.line("The reactor multiplexes every connection onto 3 fixed threads; push");
    w.line("mode follows v2 subscriptions (zero poll requests, asserted above),");
    w.line("poll mode replays the v1 client's 1 ms status loop.");
    w.save();
}
