//! Table IV — comparison of segmentation strategies.
//!
//! Dataset-1 workload (step 0.1, threshold 0.9, the paper's Table IV
//! setting), one row per strategy: `A_1 … A_200`, `A_MaxStep`, and the
//! increasing-interval strategies `B` and `C`. The published numbers are
//! printed alongside.

use tracto::prelude::*;
use tracto::tracking2::{GpuTracker, SeedOrdering};
use tracto_bench::{fmt_s, row_params, tracking_workload, BenchScale, TableWriter};

const PAPER: [(&str, f64, f64, f64, f64); 11] = [
    ("A_1", 9.16, 8.21, 41.21, 58.6),
    ("A_2", 7.84, 4.18, 21.14, 33.3),
    ("A_5", 6.91, 3.78, 11.35, 22.0),
    ("A_10", 7.81, 3.29, 7.86, 19.0),
    ("A_20", 9.46, 2.37, 5.17, 17.0),
    ("A_50", 14.42, 1.65, 2.27, 18.3),
    ("A_100", 23.27, 1.52, 1.62, 26.4),
    ("A_200", 39.45, 1.63, 1.14, 42.2),
    ("A_MaxStep", 58.52, 0.0, 0.0, 58.5),
    ("B", 7.06, 3.33, 4.09, 14.5),
    ("C", 6.55, 3.38, 4.73, 14.7),
];

fn main() {
    let scale = BenchScale::from_env();
    let workload = tracking_workload(1, scale);
    let params = row_params(0.1, 0.9);
    let mut w = TableWriter::new(
        "table4",
        &format!(
            "Table IV: segmentation strategies (dataset 1, step 0.1, thr 0.9; grid scale {:.2}, {} samples, {} seeds)",
            scale.grid,
            scale.samples,
            workload.seeds.len()
        ),
    );
    let widths = [10, 9, 9, 9, 9, 7, 24];
    w.row(
        &[
            "strategy",
            "kernel_s",
            "reduce_s",
            "xfer_s",
            "total_s",
            "util%",
            "paper k/r/x/total",
        ]
        .map(str::to_string),
        &widths,
    );

    let strategies: Vec<SegmentationStrategy> = vec![
        SegmentationStrategy::Uniform(1),
        SegmentationStrategy::Uniform(2),
        SegmentationStrategy::Uniform(5),
        SegmentationStrategy::Uniform(10),
        SegmentationStrategy::Uniform(20),
        SegmentationStrategy::Uniform(50),
        SegmentationStrategy::Uniform(100),
        SegmentationStrategy::Uniform(200),
        SegmentationStrategy::Single,
        SegmentationStrategy::paper_b(),
        SegmentationStrategy::paper_c(),
    ];

    let mut reference_steps = None;
    let mut results: Vec<(String, f64)> = Vec::new();
    for (strategy, paper) in strategies.into_iter().zip(PAPER) {
        let tracker = GpuTracker {
            samples: &workload.samples,
            params,
            seeds: workload.seeds.clone(),
            mask: None,
            strategy: strategy.clone(),
            ordering: SeedOrdering::Natural,
            jitter: 0.5,
            run_seed: 42,
            record_visits: false,
        };
        let mut gpu = Gpu::new(DeviceConfig::radeon_5870());
        let report = tracker.run(&mut gpu);
        match reference_steps {
            None => reference_steps = Some(report.total_steps),
            Some(expected) => assert_eq!(
                report.total_steps, expected,
                "strategy changed tracking results"
            ),
        }
        let l = report.ledger;
        w.row(
            &[
                strategy.label(),
                fmt_s(l.kernel_s),
                fmt_s(l.reduction_s),
                fmt_s(l.transfer_s),
                fmt_s(l.total_s()),
                format!("{:.1}", l.simd_utilization() * 100.0),
                format!(
                    "{}/{}/{}/{}",
                    fmt_s(paper.1),
                    fmt_s(paper.2),
                    fmt_s(paper.3),
                    fmt_s(paper.4)
                ),
            ],
            &widths,
        );
        results.push((strategy.label(), l.total_s()));
    }

    let best = results
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap();
    w.line("");
    w.line(&format!(
        "winner: {} at {} simulated s (paper: B at 14.5 s, C at 14.7 s)",
        best.0,
        fmt_s(best.1)
    ));
    let get = |n: &str| {
        results
            .iter()
            .find(|(l, _)| l == n)
            .map(|(_, t)| *t)
            .unwrap()
    };
    w.line(&format!(
        "shape: A_1 {}s > A_k sweet spot; A_MaxStep {}s imbalance-bound; B {}s / C {}s near the bottom",
        fmt_s(get("A_1")),
        fmt_s(get("A_MaxStep")),
        fmt_s(get("B")),
        fmt_s(get("C"))
    ));
    w.save();
}
