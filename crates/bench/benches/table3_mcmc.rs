//! Table III — the speedup of diffusion-parameter (MCMC) sampling.
//!
//! Runs the real Metropolis–Hastings estimator on the simulated GPU over
//! each dataset's white-matter mask (subsampled below full scale), and
//! reports voxel count, paper-calibrated CPU seconds, simulated GPU
//! seconds, and the speedup next to the published row. Also measures this
//! machine's actual wall-clock per MH loop for reference.

use tracto::prelude::*;
use tracto_bench::{fmt_s, BenchScale, HostModel, TableWriter};

const PAPER: [(u8, usize, f64, f64, f64); 2] = [
    (1, 205_082, 1383.0, 41.3, 33.6),
    (2, 402_194, 2724.0, 80.1, 34.0),
];

fn main() {
    let scale = BenchScale::from_env();
    let host = HostModel::default();
    // Paper chain: burn-in 500, 50 samples, interval 2 ⇒ 600 loops.
    let chain = ChainConfig::paper_default();
    let mut w = TableWriter::new(
        "table3",
        &format!(
            "Table III: speedup of diffusion parameter sampling (grid scale {:.2})",
            scale.grid
        ),
    );
    let widths = [3, 10, 10, 10, 8];
    w.row(
        &["ds", "voxels", "cpu_s", "gpu_s", "speedup"].map(str::to_string),
        &widths,
    );

    for dataset_id in [1u8, 2] {
        let spec = match dataset_id {
            1 => DatasetSpec::paper_dataset1(),
            2 => DatasetSpec::paper_dataset2(),
            _ => unreachable!(),
        };
        let ds = spec.scaled(scale.grid).build();
        // The chain cost per voxel is scale-independent and MCMC lanes are
        // perfectly balanced, so the simulated kernel time extrapolates
        // *exactly* from a voxel subset; run the real sampler on a bounded
        // subset (honest per-loop wall measurement) and scale to the mask.
        let all = ds.wm_mask.indices();
        let budget = all.len().min(if scale.grid >= 1.0 { 4000 } else { 1500 });
        let stride = (all.len() / budget.max(1)).max(1);
        let sub = Mask::from_volume(tracto::volume::Volume3::from_fn(ds.dwi.dims(), |c| {
            let idx = ds.dwi.dims().index(c);
            ds.wm_mask.contains(c)
                && (all
                    .binary_search(&idx)
                    .map(|p| p % stride == 0)
                    .unwrap_or(false))
        }));
        let mut gpu = Gpu::new(DeviceConfig::radeon_5870());
        let t0 = std::time::Instant::now();
        let report = tracto::run_mcmc_gpu(
            &mut gpu,
            &ds.acq,
            &ds.dwi,
            &sub,
            PriorConfig::default(),
            chain,
            77,
        );
        let wall = t0.elapsed().as_secs_f64();
        // Scale simulated kernel seconds from the subset to the full mask
        // (lanes are perfectly balanced, so time is linear in voxel count).
        let factor = ds.wm_mask.count() as f64 / report.voxels.max(1) as f64;
        let gpu_s = report.ledger.kernel_s * factor + report.ledger.transfer_s;
        let cpu_s = host.mcmc_seconds(ds.wm_mask.count(), chain.num_loops());
        w.row(
            &[
                dataset_id.to_string(),
                ds.wm_mask.count().to_string(),
                fmt_s(cpu_s),
                fmt_s(gpu_s),
                format!("{:.1}", cpu_s / gpu_s),
            ],
            &widths,
        );
        let p = PAPER[(dataset_id - 1) as usize];
        w.row(
            &[
                "·".into(),
                format!("{} (paper)", p.1),
                fmt_s(p.2),
                fmt_s(p.3),
                format!("{:.1}", p.4),
            ],
            &widths,
        );
        let per_loop_us = wall / (report.voxels.max(1) as f64 * chain.num_loops() as f64) * 1e6;
        w.line(&format!(
            "    [{} voxels sampled for real; this machine: {:.1} µs/MH-loop wall; simd util {:.0}%]",
            report.voxels,
            per_loop_us,
            report.ledger.simd_utilization() * 100.0
        ));
    }
    w.line("");
    w.line("Shape checks: both datasets near the same ~34x speedup (balanced lanes ⇒");
    w.line("speedup independent of anatomy); dataset 2 costs ~2x dataset 1 (voxel count).");
    w.save();
}
