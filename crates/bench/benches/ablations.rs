//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. wavefront width 64 vs 32 (AMD vs NVIDIA SIMD groups);
//! 2. nearest vs trilinear orientation interpolation;
//! 3. adaptive vs fixed MH proposals (acceptance band + ESS);
//! 4. ARD shrinkage prior on the secondary fraction;
//! 5. load sorting vs natural order (quantifying Fig. 4's conclusion);
//! 6. multi-GPU strong scaling (the conclusion's "proportional performance
//!    gains can be expected" claim).

use tracto::diffusion::posterior::{BallSticksParams, NUM_PARAMETERS};
use tracto::diffusion::{BallSticksPosterior, DiffusionModel};
use tracto::mcmc::chain::run_chain;
use tracto::mcmc::diagnostics::effective_sample_size;
use tracto::mcmc::mh::AdaptScheme;
use tracto::mcmc::voxelwise::default_proposal_scales;
use tracto::phantom::gradients;
use tracto::prelude::*;
use tracto::rng::{BoxMuller, HybridTaus};
use tracto::tracking2::{CpuTracker, GpuTracker, RecordMode, SeedOrdering};
use tracto_bench::{fmt_s, row_params, tracking_workload, BenchScale, TableWriter};

fn main() {
    let scale = BenchScale::from_env();
    let workload = tracking_workload(1, scale);
    let params = row_params(0.1, 0.9);
    let mut w = TableWriter::new("ablations", "Ablations of design choices");

    // ---- 1. Wavefront width.
    w.line("1) wavefront width (strategy A_MaxStep, imbalance-bound):");
    for device in [DeviceConfig::radeon_5870(), DeviceConfig::warp32_variant()] {
        let tracker = GpuTracker {
            samples: &workload.samples,
            params,
            seeds: workload.seeds.clone(),
            mask: None,
            strategy: SegmentationStrategy::Single,
            ordering: SeedOrdering::Natural,
            jitter: 0.5,
            run_seed: 42,
            record_visits: false,
        };
        let report = tracker.run(&mut Gpu::new(device.clone()));
        w.line(&format!(
            "   wavefront {:>2}: simd util {:>5.1}%, kernel {} s",
            device.wavefront_size,
            report.ledger.simd_utilization() * 100.0,
            fmt_s(report.ledger.kernel_s)
        ));
    }
    w.line("   → narrower SIMD groups waste fewer cycles on imbalanced loads.");

    // ---- 2. Interpolation mode.
    w.line("");
    w.line("2) orientation interpolation (CPU tracker, one run each):");
    for (label, interp) in [
        ("nearest", InterpMode::Nearest),
        ("trilinear", InterpMode::Trilinear),
    ] {
        let p = TrackingParams { interp, ..params };
        let t0 = std::time::Instant::now();
        let out = CpuTracker {
            samples: &workload.samples,
            params: p,
            seeds: workload.seeds.clone(),
            mask: None,
            jitter: 0.5,
            run_seed: 42,
            bidirectional: false,
        }
        .run_parallel(RecordMode::LengthsOnly);
        w.line(&format!(
            "   {label:<9}: total {:>10} steps, mean fiber {:>6.1}, wall {:.2}s",
            out.total_steps,
            out.total_steps as f64
                / out.all_lengths().iter().filter(|&&l| l > 0).count().max(1) as f64,
            t0.elapsed().as_secs_f64()
        ));
    }
    w.line("   → trilinear smooths the field: longer fibers at higher per-step cost.");

    // ---- 3. Adaptive vs fixed proposals.
    w.line("");
    w.line("3) MH proposal adaptation (single voxel, 2000 recorded samples):");
    let acq = gradients::default_protocol(5);
    let model = tracto::diffusion::BallSticksModel::new(
        1000.0,
        1.5e-3,
        vec![0.55, 0.2],
        vec![Vec3::X, Vec3::new(0.2, 1.0, 0.1)],
    );
    // Rician noise at SNR 25, as in a real scan — without it the posterior
    // is a near-delta and no sampler mixes.
    let noise = |clean: Vec<f64>, seed: u64| -> Vec<f64> {
        let mut rng = BoxMuller::new(HybridTaus::new(seed));
        clean
            .into_iter()
            .map(|s| {
                let re = s + rng.next(0.0, 40.0);
                let im = rng.next(0.0, 40.0);
                (re * re + im * im).sqrt()
            })
            .collect()
    };
    let signal = noise(model.predict_protocol(&acq), 31);
    let posterior = BallSticksPosterior::new(&acq, &signal, PriorConfig::default());
    let init = posterior.initial_params();
    let target =
        |p: &[f64; NUM_PARAMETERS]| posterior.log_posterior(&BallSticksParams::from_array(*p));
    for (label, adapt) in [
        ("adaptive (paper)", AdaptScheme::paper_default()),
        ("fixed scales", AdaptScheme::Fixed),
    ] {
        let config = tracto::mcmc::ChainConfig {
            num_burnin: 400,
            num_samples: 2000,
            sample_interval: 1,
            adapt,
        };
        let mut rng = HybridTaus::new(11);
        let out = run_chain(
            &target,
            init.to_array(),
            default_proposal_scales(init.s0),
            config,
            &mut rng,
        );
        let f1_series: Vec<f64> = out.samples.iter().map(|s| s[3]).collect();
        let ess = effective_sample_size(&f1_series);
        let mean_acc = out.final_acceptance.iter().sum::<f64>() / out.final_acceptance.len() as f64;
        w.line(&format!(
            "   {label:<17}: mean acceptance {:.2}, ESS(f1) {:>7.1} / 2000",
            mean_acc, ess
        ));
    }
    w.line("   → band adaptation keeps acceptance in the 25-50% window and raises ESS.");

    // ---- 4. ARD shrinkage prior on f2 at a single-fiber voxel.
    w.line("");
    w.line("4) ARD shrinkage prior on f2 (single-fiber voxel, should push f2 → 0):");
    let single_model =
        tracto::diffusion::BallSticksModel::new(1000.0, 1.5e-3, vec![0.6], vec![Vec3::X]);
    let single_signal = noise(single_model.predict_protocol(&acq), 32);
    for (label, prior) in [
        ("flat prior", PriorConfig::default()),
        (
            "ARD w=40",
            PriorConfig {
                ard_weight: Some(40.0),
                ..Default::default()
            },
        ),
    ] {
        let post = BallSticksPosterior::new(&acq, &single_signal, prior);
        let init = post.initial_params();
        let target =
            |p: &[f64; NUM_PARAMETERS]| post.log_posterior(&BallSticksParams::from_array(*p));
        let config = tracto::mcmc::ChainConfig {
            num_samples: 1500,
            ..tracto::mcmc::ChainConfig::paper_default()
        };
        let mut rng = HybridTaus::new(13);
        let out = run_chain(
            &target,
            init.to_array(),
            default_proposal_scales(init.s0),
            config,
            &mut rng,
        );
        let mean_f2 = out.mean(6);
        w.line(&format!("   {label:<11}: posterior mean f2 = {mean_f2:.4}"));
    }
    w.line("   → the shrinkage prior suppresses the spurious second stick.");

    // ---- 4b. Model complexity: N = 1 vs N = 2 sticks at a crossing.
    w.line("");
    w.line("4b) stick count N (paper fixes N = 2 \"to avoid over fitting\"):");
    {
        use tracto::volume::Dim3;
        let ds = tracto::phantom::datasets::crossing(Dim3::new(14, 14, 5), 90.0, Some(30.0), 8);
        let c = tracto::volume::Ijk::new(6, 6, 2);
        let mask = Mask::from_fn(ds.dwi.dims(), |x| x == c);
        for (label, sticks) in [("N = 1", 1u8), ("N = 2", 2u8)] {
            let prior = PriorConfig {
                max_sticks: sticks,
                ..Default::default()
            };
            let t0 = std::time::Instant::now();
            let sv = VoxelEstimator::new(
                &ds.acq,
                &ds.dwi,
                &mask,
                prior,
                tracto::mcmc::ChainConfig::paper_default(),
                3,
            )
            .run_parallel();
            let n = sv.num_samples();
            let mean_f2: f64 = (0..n).map(|s| sv.sticks_at(c, s)[1].1).sum::<f64>() / n as f64;
            w.line(&format!(
                "   {label}: mean f2 at the crossing {:.3}, wall {:.0} ms/voxel",
                mean_f2,
                t0.elapsed().as_secs_f64() * 1e3
            ));
        }
    }
    w.line("   → N = 1 is cheaper but structurally blind to the second population.");

    // ---- 5. Sorting vs natural (charged work).
    w.line("");
    w.line("5) seed ordering (strategy A_MaxStep):");
    for (label, ordering) in [
        ("natural", SeedOrdering::Natural),
        ("sorted-by-pilot", SeedOrdering::SortedByPilot),
    ] {
        let tracker = GpuTracker {
            samples: &workload.samples,
            params,
            seeds: workload.seeds.clone(),
            mask: None,
            strategy: SegmentationStrategy::Single,
            ordering,
            jitter: 0.5,
            run_seed: 42,
            record_visits: false,
        };
        let report = tracker.run(&mut Gpu::new(DeviceConfig::radeon_5870()));
        w.line(&format!(
            "   {label:<16}: kernel {} s, simd util {:>5.1}%",
            fmt_s(report.ledger.kernel_s),
            report.ledger.simd_utilization() * 100.0
        ));
    }
    w.line("   → stale sorting buys little (Fig. 4), unlike segmentation (Table IV).");

    // ---- 6. Multi-GPU strong scaling, serialized vs stream-overlapped.
    w.line("");
    w.line("6) multi-GPU strong scaling (paper: \"proportional performance gains\"):");
    use tracto::gpu_sim::multi::scaling_summary;
    use tracto_bench::{run_scaling, scaling_loads};
    let loads = scaling_loads(262_144, 99);
    // streams_for(n): 1 = the legacy serialized host loop; otherwise two
    // stream lanes per device so every device has a sibling stream to hide
    // its host work behind.
    type StreamsFor = fn(usize) -> usize;
    let rows: [(&str, SegmentationStrategy, StreamsFor); 3] = [
        (
            "A_MaxStep (kernel-bound)",
            SegmentationStrategy::Single,
            |_| 1,
        ),
        (
            "B (host-bound, serialized)",
            SegmentationStrategy::paper_b(),
            |_| 1,
        ),
        (
            "B (2 streams/device)",
            SegmentationStrategy::paper_b(),
            |n| 2 * n,
        ),
    ];
    for (label, strategy, streams_for) in rows {
        let runs: Vec<(usize, tracto_bench::ScalingRun)> = [1usize, 2, 4]
            .iter()
            .map(|&n| (n, run_scaling(&loads, &strategy, n, streams_for(n))))
            .collect();
        let measurements: Vec<(usize, f64)> = runs.iter().map(|(n, r)| (*n, r.wall_s)).collect();
        w.line(&format!("   strategy {label}:"));
        for (pt, (_, run)) in scaling_summary(&measurements).iter().zip(&runs) {
            w.line(&format!(
                "     {} GPU(s): wall {} s, speedup {:.2}x, efficiency {:.0}%{}",
                pt.devices,
                fmt_s(run.wall_s),
                pt.speedup,
                pt.efficiency * 100.0,
                if run.overlap_saved_s > 0.0 {
                    format!(", {} s hidden by overlap", fmt_s(run.overlap_saved_s))
                } else {
                    String::new()
                }
            ));
        }
    }
    // Bit-identity witness: the stream-overlapped schedule must execute
    // exactly the same iterations per lane as the serialized host loop, at
    // every device count — overlap reorders time, never work.
    let strategy_b = SegmentationStrategy::paper_b();
    for n in [1usize, 2, 4] {
        let serial = run_scaling(&loads, &strategy_b, n, 1);
        let streamed = run_scaling(&loads, &strategy_b, n, 2 * n);
        assert_eq!(
            serial.executed, streamed.executed,
            "streamed schedule diverged from serialized at {n} device(s)"
        );
        // At 1 device the split transfers pay per-op latency twice with no
        // sibling kernels to hide behind, so only multi-device schedules
        // are required to come out ahead.
        if n >= 2 {
            assert!(
                streamed.wall_s <= serial.wall_s,
                "overlap must not slow the schedule down at {n} device(s)"
            );
        }
    }
    w.line("   → serialized strategy B is host-bound: transfers/reductions cap");
    w.line("     multi-GPU benefit (Fig. 8's overlap problem). Stream-overlapped");
    w.line("     launches hide host work behind kernels of sibling streams and");
    w.line("     restore >1x scaling — with bit-identical per-lane iteration");
    w.line("     counts (asserted above) at every device count.");
    w.save();
}
