//! Figure 6 — the load and the utilization.
//!
//! Renders the cumulative-load rectangle model for the three segmentation
//! regimes of the figure: (a) one launch (`A_MaxStep`), (b) uniform
//! segments, (c) segments with increasing iterations. Reports the
//! necessary-work area, the charged (rectangle) area, and the waste.

use tracto::prelude::*;
use tracto::stats::loadbalance::rectangle_model;
use tracto::tracking2::{CpuTracker, RecordMode};
use tracto_bench::{row_params, tracking_workload, BenchScale, TableWriter};

fn main() {
    let scale = BenchScale::from_env();
    let workload = tracking_workload(1, scale);
    // The paper's Fig. 6 regime has mean fiber length far below MaxStep
    // (their dataset-1 mean is ~11 steps against a 1888-step budget), which
    // requires the strict 0.9 threshold here; the caption's 0.7 threshold
    // on their smaller dataset produced the same decay shape.
    let mut params = row_params(0.1, 0.9);
    params.max_steps = 2000;
    let out = CpuTracker {
        samples: &workload.samples,
        params,
        seeds: workload.seeds.clone(),
        mask: None,
        jitter: 0.5,
        run_seed: 42,
        bidirectional: false,
    }
    .run_parallel(RecordMode::LengthsOnly);

    // One sample's loads, as in the figure.
    let loads = out.lengths_by_sample[0].clone();
    let max = loads.iter().copied().max().unwrap().max(1);
    let useful: u64 = loads.iter().map(|&l| l as u64).sum();

    let mut w = TableWriter::new(
        "fig6",
        &format!(
            "Fig. 6: load and utilization ({} threads, longest {} steps, useful {} its)",
            loads.len(),
            max,
            useful
        ),
    );

    // Cumulative load curve (the number of threads still running after x
    // iterations) at a few points — the curve under which the useful area
    // lies.
    w.line("cumulative load curve (threads alive after x steps):");
    let mut sorted = loads.clone();
    sorted.sort_unstable();
    for frac in [0.0, 0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 1.0] {
        let x = (max as f64 * frac) as u32;
        let alive = sorted.len() - sorted.partition_point(|&l| l <= x);
        w.line(&format!("   alive(L > {x:>5}) = {alive:>8}"));
    }

    w.line("");
    let widths = [26, 12, 12, 10, 8];
    w.row(
        &["strategy", "charged", "useful", "wasted%", "launches"].map(str::to_string),
        &widths,
    );
    let cases: Vec<(String, Vec<u32>)> = vec![
        (
            "(a) minimize segments".into(),
            SegmentationStrategy::Single.budgets(max),
        ),
        // Fig. 6(b) draws a handful of coarse uniform segments; the full
        // uniform granularity sweep (with its launch/transfer costs) is
        // Table IV's subject.
        (
            "(b) uniform segments".into(),
            SegmentationStrategy::Uniform((max / 4).max(1)).budgets(max),
        ),
        (
            "(c) increasing intervals".into(),
            SegmentationStrategy::paper_b().budgets(max),
        ),
    ];
    let mut wastes = Vec::new();
    for (label, budgets) in cases {
        let model = rectangle_model(&loads, &budgets);
        let waste = 1.0 - model.utilization();
        w.row(
            &[
                label,
                model.charged.to_string(),
                model.useful.to_string(),
                format!("{:.1}", waste * 100.0),
                model.segments.len().to_string(),
            ],
            &widths,
        );
        wastes.push(waste);
    }
    w.line("");
    w.line("Shape check (matching Fig. 6a→6c): wasted area shrinks monotonically from");
    w.line("the single launch, to uniform segments, to increasing intervals.");
    assert!(
        wastes[0] > wastes[1] && wastes[1] > wastes[2],
        "waste ordering violated: {wastes:?}"
    );
    w.save();
}
