//! Table II — the speedup of probabilistic streamlining.
//!
//! For each dataset and `(step length, angular threshold)` row, runs the
//! GPU-simulated tracker with the paper's increasing-interval strategy
//! `{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000}`, reporting the longest
//! fiber, total fiber length, kernel / reduction / transfer seconds, the
//! paper-calibrated CPU baseline, and the speedup — next to the published
//! row.

use tracto::prelude::*;
use tracto::tracking2::{GpuTracker, SeedOrdering};
use tracto_bench::{
    fmt_s, row_params, table2_rows, tracking_workload, BenchScale, HostModel, TableWriter,
};

/// (dataset, step, thr, longest, total len, kernel, reduce, xfer, cpu, speedup)
type PaperRow = (u8, f64, f64, u32, u64, f64, f64, f64, f64, f64);
const PAPER: [PaperRow; 6] = [
    (
        1,
        0.1,
        0.90,
        453,
        113_822_762,
        3.02,
        0.78,
        2.94,
        289.6,
        43.0,
    ),
    (
        1,
        0.2,
        0.80,
        304,
        102_796_526,
        2.73,
        0.92,
        2.32,
        271.7,
        45.5,
    ),
    (
        1,
        0.3,
        0.85,
        286,
        109_408_821,
        2.71,
        0.78,
        2.33,
        306.6,
        52.7,
    ),
    (
        2,
        0.1,
        0.90,
        777,
        305_396_623,
        6.78,
        3.77,
        4.29,
        739.6,
        52.0,
    ),
    (
        2,
        0.2,
        0.85,
        476,
        272_836_940,
        6.42,
        3.35,
        4.38,
        702.8,
        49.7,
    ),
    (
        2,
        0.3,
        0.80,
        517,
        291_393_911,
        6.63,
        3.38,
        4.37,
        784.5,
        54.5,
    ),
];

fn main() {
    let scale = BenchScale::from_env();
    let host = HostModel::default();
    let mut w = TableWriter::new(
        "table2",
        &format!(
            "Table II: speedup of probabilistic streamlining (grid scale {:.2}, {} samples)",
            scale.grid, scale.samples
        ),
    );
    let widths = [3, 5, 5, 8, 13, 9, 9, 9, 9, 8];
    w.row(
        &[
            "ds",
            "step",
            "thr",
            "longest",
            "total_len",
            "kernel_s",
            "reduce_s",
            "xfer_s",
            "cpu_s",
            "speedup",
        ]
        .map(str::to_string),
        &widths,
    );

    for dataset_id in [1u8, 2] {
        let workload = tracking_workload(dataset_id, scale);
        for (step, thr) in table2_rows(dataset_id) {
            let params = row_params(step, thr);
            let tracker = GpuTracker {
                samples: &workload.samples,
                params,
                seeds: workload.seeds.clone(),
                mask: None,
                strategy: SegmentationStrategy::paper_table2(),
                ordering: SeedOrdering::Natural,
                jitter: 0.5,
                run_seed: 42,
                record_visits: false,
            };
            let mut gpu = Gpu::new(DeviceConfig::radeon_5870());
            let t0 = std::time::Instant::now();
            let report = tracker.run(&mut gpu);
            let wall = t0.elapsed().as_secs_f64();
            let l = report.ledger;
            let cpu_s = host.tracking_seconds(report.total_steps);
            let speedup = cpu_s / l.total_s();
            w.row(
                &[
                    dataset_id.to_string(),
                    format!("{step:.1}"),
                    format!("{thr:.2}"),
                    report.longest().to_string(),
                    report.total_steps.to_string(),
                    fmt_s(l.kernel_s),
                    fmt_s(l.reduction_s),
                    fmt_s(l.transfer_s),
                    fmt_s(cpu_s),
                    format!("{speedup:.1}"),
                ],
                &widths,
            );
            let paper = PAPER
                .iter()
                .find(|p| p.0 == dataset_id && p.1 == step && p.2 == thr)
                .expect("paper row");
            w.row(
                &[
                    "·".into(),
                    "paper".into(),
                    String::new(),
                    paper.3.to_string(),
                    paper.4.to_string(),
                    fmt_s(paper.5),
                    fmt_s(paper.6),
                    fmt_s(paper.7),
                    fmt_s(paper.8),
                    format!("{:.1}", paper.9),
                ],
                &widths,
            );
            w.line(&format!(
                "    [simd util {:.1}%, {} launches, wall {:.1}s]",
                l.simd_utilization() * 100.0,
                l.launches,
                wall
            ));
        }
    }
    w.line("");
    w.line("Shape checks: GPU wins by tens of x on every row; dataset 2 rows cost");
    w.line("more than dataset 1 rows; kernel+transfer dominate the GPU budget.");
    w.save();
}
