//! checkpoint_persistence — what crash-safe durability costs.
//!
//! Three measurements behind the `--state-dir` machinery:
//!
//! 1. **MCMC checkpoint overhead** — `run_mcmc_gpu_checkpointed` with a
//!    snapshot every N segments versus the plain runner, asserting the
//!    sample volumes stay bit-identical (durability must never change
//!    numerics).
//! 2. **Snapshot store latency** — fsynced save / validated load round
//!    trips through `CheckpointStore` at realistic payload sizes.
//! 3. **Job journal throughput** — fsynced lifecycle records/second
//!    through `JobJournal`, the per-submit price every wire job pays.
//!
//! Not in the paper — the paper's single-shot runs have nothing to
//! recover — but the overhead numbers bound what the service gives up for
//! surviving `kill -9`.

use std::time::Instant;
use tracto::mcmc::{CheckpointPolicy, CheckpointStore, SnapshotLoad};
use tracto::prelude::*;
use tracto::{run_mcmc_gpu_checkpointed, PersistentCheckpoint};
use tracto_bench::TableWriter;
use tracto_serve::JobJournal;
use tracto_trace::Tracer;

fn main() {
    let root = std::env::temp_dir().join(format!("tracto-bench-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).unwrap();

    let ds = datasets::single_bundle(Dim3::new(10, 8, 8), Some(25.0), 3);
    let config = ChainConfig {
        num_burnin: 120,
        num_samples: 6,
        sample_interval: 2,
        ..ChainConfig::fast_test()
    };
    let prior = PriorConfig::default();
    let mut w = TableWriter::new(
        "checkpoint_persistence",
        &format!(
            "Crash-safe durability: checkpoint overhead, snapshot store latency, journal throughput ({} voxels, {} MH loops)",
            ds.wm_mask.count(),
            config.num_burnin + config.num_samples * config.sample_interval,
        ),
    );

    // --- 1. checkpointed MCMC vs plain ------------------------------------
    let store = CheckpointStore::open(&root.join("checkpoints")).unwrap();
    let mut gpu = Gpu::new(DeviceConfig::radeon_5870());
    let t0 = Instant::now();
    let baseline = tracto::run_mcmc_gpu(&mut gpu, &ds.acq, &ds.dwi, &ds.wm_mask, prior, config, 77);
    let base_ms = t0.elapsed().as_secs_f64() * 1e3;

    let widths = [6, 6, 9, 10];
    w.row(
        &["every", "ckpts", "run_ms", "overhead%"].map(str::to_string),
        &widths,
    );
    w.row(
        &[
            "off".into(),
            "0".into(),
            format!("{base_ms:.1}"),
            "-".into(),
        ],
        &widths,
    );
    for every in [1u32, 2, 4] {
        let persist = PersistentCheckpoint {
            store: &store,
            key: format!("bench{every:02x}"),
            tracer: Tracer::disabled(),
        };
        let mut gpu = Gpu::new(DeviceConfig::radeon_5870());
        let t0 = Instant::now();
        let report = run_mcmc_gpu_checkpointed(
            &mut gpu,
            &ds.acq,
            &ds.dwi,
            &ds.wm_mask,
            prior,
            config,
            77,
            CheckpointPolicy::every(every),
            &persist,
        )
        .expect("checkpointed run");
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            report.samples.f1, baseline.samples.f1,
            "checkpointing must never change numerics"
        );
        assert_eq!(report.samples.th2, baseline.samples.th2);
        w.row(
            &[
                format!("{every}"),
                format!("{}", report.checkpoints),
                format!("{ms:.1}"),
                format!("{:+.1}", (ms / base_ms - 1.0) * 100.0),
            ],
            &widths,
        );
    }

    // --- 2. snapshot store latency ----------------------------------------
    w.line("");
    let widths = [11, 9, 9];
    w.row(
        &["payload_kb", "save_ms", "load_ms"].map(str::to_string),
        &widths,
    );
    for kb in [64usize, 1024, 4096] {
        let payload: Vec<u8> = (0..kb * 1024).map(|i| (i * 31 % 251) as u8).collect();
        let key = format!("payload{kb:05x}");
        let t0 = Instant::now();
        store.save(&key, &payload).unwrap();
        let save_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t0 = Instant::now();
        let back = match store.load(&key).unwrap() {
            SnapshotLoad::Snapshot(bytes) => bytes,
            other => panic!("expected a snapshot, got {other:?}"),
        };
        let load_ms = t0.elapsed().as_secs_f64() * 1e3;
        assert_eq!(back, payload, "store round trip is exact");
        store.discard(&key).unwrap();
        w.row(
            &[
                format!("{kb}"),
                format!("{save_ms:.2}"),
                format!("{load_ms:.2}"),
            ],
            &widths,
        );
    }

    // --- 3. journal throughput --------------------------------------------
    let (journal, _recovery) = JobJournal::open(&root.join("journal"), Tracer::disabled()).unwrap();
    let spec = tracto_proto::JobSpec::track(tracto_proto::DatasetSpec::new("single"));
    const JOBS: u64 = 200;
    let t0 = Instant::now();
    for id in 1..=JOBS {
        journal.submitted(id, &spec);
        journal.admitted(id);
        journal.completed(id);
    }
    let s = t0.elapsed().as_secs_f64();
    w.line("");
    w.line(&format!(
        "journal: {} fsynced records ({} job lifecycles) in {:.1} ms — {:.0} records/s, {:.0} submits/s",
        JOBS * 3,
        JOBS,
        s * 1e3,
        JOBS as f64 * 3.0 / s,
        JOBS as f64 / s,
    ));
    drop(journal);
    let _ = std::fs::remove_dir_all(&root);
    w.save();
}
