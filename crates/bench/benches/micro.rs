//! Criterion micro-benchmarks of the hot kernels: RNG throughput,
//! Box–Muller, the MH parameter step (posterior evaluation), trilinear
//! interpolation, and the walker step. These are the per-iteration costs
//! the device model abstracts.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use tracto::diffusion::posterior::{BallSticksParams, NUM_PARAMETERS};
use tracto::diffusion::{BallSticksPosterior, PriorConfig};
use tracto::mcmc::mh::{AdaptScheme, MhSampler};
use tracto::phantom::gradients;
use tracto::prelude::*;
use tracto::rng::{box_muller_pair, HybridTaus, RandomSource};
use tracto::tracking::field::FnField;
use tracto::tracking::walker::Walker;
use tracto::volume::interp::trilinear_scalar;

fn bench_rng(c: &mut Criterion) {
    let mut g = c.benchmark_group("rng");
    g.throughput(Throughput::Elements(1024));
    g.bench_function("hybrid_taus_1024_u32", |b| {
        let mut rng = HybridTaus::new(42);
        b.iter(|| {
            let mut acc = 0u32;
            for _ in 0..1024 {
                acc ^= rng.next_u32();
            }
            black_box(acc)
        })
    });
    g.bench_function("box_muller_512_pairs", |b| {
        let mut rng = HybridTaus::new(42);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..512 {
                let (z1, z2) = box_muller_pair(rng.next_f64(), rng.next_f64());
                acc += z1 + z2;
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn bench_posterior(c: &mut Criterion) {
    let acq = gradients::default_protocol(1);
    let dirs = (Vec3::X, Vec3::Y);
    let model = tracto::diffusion::BallSticksModel::new(
        1000.0,
        1.5e-3,
        vec![0.5, 0.2],
        vec![dirs.0, dirs.1],
    );
    use tracto::diffusion::DiffusionModel;
    let signal = model.predict_protocol(&acq);
    let posterior = BallSticksPosterior::new(&acq, &signal, PriorConfig::default());
    let params = posterior.initial_params();

    let mut g = c.benchmark_group("posterior");
    g.bench_function("log_posterior_64_measurements", |b| {
        b.iter(|| black_box(posterior.log_posterior(black_box(&params))))
    });
    g.bench_function("mh_full_loop_9_params", |b| {
        let target =
            |p: &[f64; NUM_PARAMETERS]| posterior.log_posterior(&BallSticksParams::from_array(*p));
        let mut sampler = MhSampler::new(
            &target,
            params.to_array(),
            [0.01; NUM_PARAMETERS],
            AdaptScheme::paper_default(),
        );
        let mut rng = HybridTaus::new(7);
        b.iter(|| {
            sampler.step_loop(&target, &mut rng);
            black_box(sampler.log_density())
        })
    });
    g.bench_function("mh_full_loop_9_params_cached", |b| {
        use tracto::mcmc::cached::{BallSticksCacheBuffers, CachedBallSticks};
        use tracto::mcmc::mh::IncrementalTarget;
        let target =
            |p: &[f64; NUM_PARAMETERS]| posterior.log_posterior(&BallSticksParams::from_array(*p));
        let mut sampler = MhSampler::new(
            &target,
            params.to_array(),
            [0.01; NUM_PARAMETERS],
            AdaptScheme::paper_default(),
        );
        let mut buf = BallSticksCacheBuffers::new();
        let mut cached = CachedBallSticks::new(&posterior, &mut buf);
        cached.init(sampler.params());
        let mut rng = HybridTaus::new(7);
        b.iter(|| {
            sampler.step_loop_incremental(&mut cached, &mut rng);
            black_box(sampler.log_density())
        })
    });
    g.finish();
}

fn bench_tracking(c: &mut Criterion) {
    let dims = Dim3::new(32, 32, 32);
    let scalar = tracto::volume::Volume3::from_fn(dims, |c| (c.i + c.j + c.k) as f32);
    let field = FnField::new(dims, |c: Ijk| {
        let t = Vec3::new(1.0, (c.j as f64 * 0.1).sin() * 0.2, 0.0).normalized();
        [(t, 0.6), (Vec3::ZERO, 0.0)]
    });
    let params = TrackingParams {
        step_length: 0.2,
        angular_threshold: 0.8,
        max_steps: u32::MAX,
        min_fraction: 0.05,
        interp: InterpMode::Nearest,
    };

    let mut g = c.benchmark_group("tracking");
    g.bench_function("trilinear_scalar", |b| {
        b.iter(|| {
            black_box(trilinear_scalar(
                &scalar,
                black_box(Vec3::new(12.3, 4.5, 21.7)),
            ))
        })
    });
    g.bench_function("walker_step_nearest", |b| {
        let mut w = Walker::new(0, Vec3::new(1.0, 16.0, 16.0), Vec3::X);
        b.iter(|| {
            if !w.alive() || w.pos.x > 30.0 {
                w = Walker::new(0, Vec3::new(1.0, 16.0, 16.0), Vec3::X);
            }
            black_box(w.step(&field, &params, None))
        })
    });
    let tri_params = TrackingParams {
        interp: InterpMode::Trilinear,
        ..params
    };
    g.bench_function("walker_step_trilinear", |b| {
        let mut w = Walker::new(0, Vec3::new(1.0, 16.0, 16.0), Vec3::X);
        b.iter(|| {
            if !w.alive() || w.pos.x > 30.0 {
                w = Walker::new(0, Vec3::new(1.0, 16.0, 16.0), Vec3::X);
            }
            black_box(w.step(&field, &tri_params, None))
        })
    });
    g.finish();
}

fn bench_tensor_fit(c: &mut Criterion) {
    let acq = gradients::default_protocol(2);
    let tensor =
        tracto::diffusion::SymTensor3::cylindrical(Vec3::new(1.0, 1.0, 0.5), 1.7e-3, 0.3e-3);
    use tracto::diffusion::DiffusionModel;
    let model = tracto::diffusion::TensorModel { s0: 900.0, tensor };
    let signal = model.predict_protocol(&acq);
    c.bench_function("tensor_fit_64_measurements", |b| {
        b.iter(|| black_box(tracto::diffusion::TensorFit::fit(&acq, black_box(&signal))))
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    use tracto::synthetic::samples_from_truth;
    use tracto::tracking2::{GpuTracker, SeedOrdering};
    use tracto_gpu_sim::Gpu;

    let ds = tracto::phantom::datasets::single_bundle(Dim3::new(16, 10, 10), Some(25.0), 7);
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);

    // Step 1 on one voxel (the per-lane unit of the MCMC kernel).
    let mask_one = Mask::from_fn(ds.dwi.dims(), |c| c == Ijk::new(8, 5, 5));
    let est = VoxelEstimator::new(
        &ds.acq,
        &ds.dwi,
        &mask_one,
        PriorConfig::default(),
        ChainConfig::fast_test(),
        3,
    );
    let idx = ds.dwi.dims().index(Ijk::new(8, 5, 5));
    g.bench_function("mcmc_one_voxel_fast_chain", |b| {
        b.iter(|| black_box(est.run_voxel(idx).samples.len()))
    });

    // Step 2 over the whole phantom with the paper's strategy.
    let samples = samples_from_truth(&ds.truth, 5, 0.15, 0.04, 9);
    let seeds = seeds_from_mask(&Mask::full(ds.dwi.dims()));
    g.bench_function("gpu_tracking_1600_seeds_5_samples", |b| {
        b.iter(|| {
            let tracker = GpuTracker {
                samples: &samples,
                params: TrackingParams::paper_default(),
                seeds: seeds.clone(),
                mask: None,
                strategy: SegmentationStrategy::paper_table2(),
                ordering: SeedOrdering::Natural,
                jitter: 0.5,
                run_seed: 5,
                record_visits: false,
            };
            let mut gpu = Gpu::new(DeviceConfig::radeon_5870());
            black_box(tracker.run(&mut gpu).total_steps)
        })
    });
    g.finish();
}

fn bench_trace(c: &mut Criterion) {
    use tracto_trace::{RingSink, Tracer};

    let mut g = c.benchmark_group("trace");
    g.throughput(Throughput::Elements(1));
    // The disabled tracer must cost a branch, nothing more: every
    // instrumented hot loop in gpu-sim and mcmc pays this on each event.
    g.bench_function("emit_disabled", |b| {
        let tracer = Tracer::disabled();
        let mut n = 0u64;
        b.iter(|| {
            n += 1;
            tracer.emit("bench.noop", &[("n", black_box(n).into())]);
            black_box(&tracer)
        })
    });
    g.bench_function("emit_ring", |b| {
        let tracer = Tracer::new(RingSink::new(4096));
        let mut n = 0u64;
        b.iter(|| {
            n += 1;
            tracer.emit("bench.ring", &[("n", black_box(n).into())]);
            black_box(&tracer)
        })
    });
    g.bench_function("span_ring", |b| {
        let tracer = Tracer::new(RingSink::new(4096));
        b.iter(|| {
            let span = tracer.span("bench.span");
            drop(black_box(span));
        })
    });
    g.finish();
}

fn bench_failover_overhead(c: &mut Criterion) {
    use tracto_gpu_sim::{FaultPlan, Gpu, LaneStatus, MultiGpu, SimKernel};

    // A deterministic spin kernel: each lane mixes a counter into an
    // accumulator for a fixed budget of iterations, so results expose any
    // replay divergence and the work is identical across pool sizes.
    struct SpinKernel;
    struct SpinLane {
        acc: u64,
        done: u32,
        budget: u32,
    }
    impl SimKernel for SpinKernel {
        type Lane = SpinLane;
        fn step(&self, lane: &mut SpinLane) -> LaneStatus {
            lane.acc = lane
                .acc
                .wrapping_mul(6364136223846793005)
                .wrapping_add(u64::from(lane.done));
            lane.done += 1;
            if lane.done >= lane.budget {
                LaneStatus::Finished
            } else {
                LaneStatus::Continue
            }
        }
    }
    let lanes = |n: usize| -> Vec<SpinLane> {
        (0..n)
            .map(|i| SpinLane {
                acc: i as u64,
                done: 0,
                budget: 64,
            })
            .collect()
    };

    let mut g = c.benchmark_group("failover_overhead");
    for devices in [2usize, 4, 8] {
        // Fault-free baseline at this pool width.
        g.bench_function(&format!("{devices}_devices_fault_free"), |b| {
            b.iter(|| {
                let mut multi = MultiGpu::new(DeviceConfig::radeon_5870(), devices);
                let mut pop = lanes(512);
                multi
                    .launch_partitioned(&SpinKernel, &mut pop, 64)
                    .expect("fault-free launch");
                black_box(pop.iter().map(|l| l.acc).fold(0u64, u64::wrapping_add))
            })
        });
        // Same run with one device lost mid-launch: the re-partition and
        // replay are the measured overhead, and the results must not move.
        let reference: u64 = {
            let mut multi = MultiGpu::new(DeviceConfig::radeon_5870(), devices);
            let mut pop = lanes(512);
            multi
                .launch_partitioned(&SpinKernel, &mut pop, 64)
                .expect("reference launch");
            pop.iter().map(|l| l.acc).fold(0u64, u64::wrapping_add)
        };
        g.bench_function(&format!("{devices}_devices_one_loss"), |b| {
            let plan = FaultPlan::parse("fault 1 0 device-lost").unwrap();
            b.iter(|| {
                let mut multi = MultiGpu::new(DeviceConfig::radeon_5870(), devices);
                multi.set_fault_plan(&plan);
                let mut pop = lanes(512);
                multi
                    .launch_partitioned(&SpinKernel, &mut pop, 64)
                    .expect("survivors absorb one loss");
                assert_eq!(multi.failovers(), 1);
                let sum = pop.iter().map(|l| l.acc).fold(0u64, u64::wrapping_add);
                assert_eq!(sum, reference, "failover must not change results");
                black_box(sum)
            })
        });
    }
    // Single-device fault path for scale: a transient launch failure
    // retried in place (no re-partition).
    g.bench_function("1_device_transient_retry", |b| {
        let plan = FaultPlan::parse("fault 0 0 launch-fail").unwrap();
        b.iter(|| {
            let mut gpu = Gpu::new(DeviceConfig::radeon_5870());
            gpu.set_fault_plan(&plan, 0);
            let mut pop = lanes(512);
            let err = gpu
                .try_launch(&SpinKernel, &mut pop, 64)
                .expect_err("planned transient fault");
            black_box(err.is_retryable());
            gpu.try_launch(&SpinKernel, &mut pop, 64)
                .expect("retry succeeds");
            black_box(pop.len())
        })
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(30)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_rng, bench_posterior, bench_tracking, bench_tensor_fit, bench_end_to_end, bench_trace, bench_failover_overhead
}
criterion_main!(benches);
