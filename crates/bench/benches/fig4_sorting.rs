//! Figure 4 — work loads before and after sorting.
//!
//! (a) per-thread loads in original sequence, (b) the same loads sorted,
//! (c) the sorted *order* applied to another sample: the general trends
//! match but neighbor variance persists, so "this method does not bring
//! any notable improvement at all".

use tracto::prelude::*;
use tracto::stats::loadbalance::{charged_iterations, neighbor_mean_abs_diff, utilization};
use tracto::tracking2::{GpuTracker, SeedOrdering};
use tracto_bench::{row_params, tracking_workload, BenchScale, TableWriter};

fn sparkline(loads: &[u32], buckets: usize) -> String {
    let glyphs = [' ', '.', ':', '-', '=', '+', '*', '#'];
    let max = loads.iter().copied().max().unwrap_or(1).max(1) as f64;
    let chunk = (loads.len() / buckets).max(1);
    loads
        .chunks(chunk)
        .take(buckets)
        .map(|c| {
            let m = c.iter().copied().max().unwrap_or(0) as f64;
            glyphs[((m / max) * (glyphs.len() - 1) as f64).round() as usize]
        })
        .collect()
}

fn main() {
    let scale = BenchScale::from_env();
    let workload = tracking_workload(1, scale);
    let params = row_params(0.1, 0.9);
    let tracker = GpuTracker {
        samples: &workload.samples,
        params,
        seeds: workload.seeds.clone(),
        mask: None,
        strategy: SegmentationStrategy::Single,
        ordering: SeedOrdering::SortedByPilot,
        jitter: 0.5,
        run_seed: 42,
        record_visits: false,
    };
    let report = tracker.run(&mut Gpu::new(DeviceConfig::radeon_5870()));

    let mut w = TableWriter::new("fig4", "Fig. 4: work loads before and after sorting");
    // (a) original sequence = pilot sample's natural-order loads.
    let original = report.lengths_by_sample[0].clone();
    // (b) sorted sequence.
    let mut sorted = original.clone();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    // (c) the pilot's sorted order applied to sample 1.
    let applied = report.thread_loads(1);

    let wf = 64;
    let rows: [(&str, &Vec<u32>); 3] = [
        ("(a) original", &original),
        ("(b) sorted", &sorted),
        ("(c) next sample", &applied),
    ];
    for (label, loads) in rows {
        w.line(&format!(
            "{label:<16} neighbor-MAD {:>8.2}  simd-util {:>5.1}%  charged {:>12}   |{}|",
            neighbor_mean_abs_diff(loads),
            utilization(loads, wf) * 100.0,
            charged_iterations(loads, wf),
            sparkline(loads, 72)
        ));
    }

    let mad_orig = neighbor_mean_abs_diff(&original);
    let mad_sorted = neighbor_mean_abs_diff(&sorted);
    let mad_applied = neighbor_mean_abs_diff(&applied);
    w.line("");
    w.line(&format!(
        "sorting smooths the pilot itself ({mad_orig:.1} → {mad_sorted:.1}) but the order does"
    ));
    w.line(&format!(
        "not transfer to the next sample (neighbor-MAD back up to {mad_applied:.1}),"
    ));
    let improvement =
        1.0 - charged_iterations(&applied, wf) as f64 / charged_iterations(&original, wf) as f64;
    w.line(&format!(
        "so charged SIMD work improves only {:.0}% — the paper's negative result.",
        improvement * 100.0
    ));
    assert!(
        mad_applied > 2.0 * mad_sorted.max(0.05),
        "sorting unexpectedly transferred"
    );
    w.save();
}
