//! Figures 3/7/8 — execution schedules and the CPU–GPU overlap extension.
//!
//! Renders the schedule trace of a segmented run (Figs. 3 and 7), then
//! evaluates the paper's future-work proposal (Fig. 8): interleave two
//! samples so the CPU reduces sample A while the GPU tracks sample B.

use tracto::gpu_sim::overlap::{interleave_identical, SegmentCost};
use tracto::gpu_sim::schedule::EventKind;
use tracto::prelude::*;
use tracto::tracking2::{GpuTracker, SeedOrdering};
use tracto_bench::{fmt_s, row_params, tracking_workload, BenchScale, TableWriter};

fn main() {
    let scale = BenchScale::from_env();
    let workload = tracking_workload(1, scale);
    let params = row_params(0.1, 0.9);

    // Run one sample's worth of segments to extract per-segment costs.
    let tracker = GpuTracker {
        samples: &workload.samples,
        params,
        seeds: workload.seeds.clone(),
        mask: None,
        strategy: SegmentationStrategy::paper_table2(),
        ordering: SeedOrdering::Natural,
        jitter: 0.5,
        run_seed: 42,
        record_visits: false,
    };
    let mut gpu = Gpu::new(DeviceConfig::radeon_5870());
    let report = tracker.run(&mut gpu);

    let mut w = TableWriter::new("fig8", "Figs. 3/7/8: schedules and CPU-GPU overlap");
    w.line("Fig. 7 (segmented schedule, first events of the trace):");
    let trace = gpu.trace();
    let head: Vec<_> = trace.events().iter().take(14).copied().collect();
    let mut head_trace = tracto::gpu_sim::schedule::ScheduleTrace::default();
    for e in head {
        head_trace.push(e);
    }
    w.line(&head_trace.render_ascii(56));

    // Build per-segment costs for one sample from the trace: each segment
    // is kernel + (readback + reduction + re-upload).
    let events = trace.events();
    let mut segments: Vec<SegmentCost> = Vec::new();
    let mut i = 0;
    let per_sample_segments = report.per_segment_unfinished[0].len();
    while i < events.len() && segments.len() < per_sample_segments {
        if events[i].kind == EventKind::Kernel {
            let kernel_s = events[i].duration_s;
            let mut host_s = 0.0;
            let mut j = i + 1;
            while j < events.len() && events[j].kind != EventKind::Kernel {
                host_s += events[j].duration_s;
                j += 1;
            }
            segments.push(SegmentCost { kernel_s, host_s });
            i = j;
        } else {
            i += 1;
        }
    }

    w.line(&format!(
        "one sample = {} segments; kernel {} s, host {} s",
        segments.len(),
        fmt_s(segments.iter().map(|s| s.kernel_s).sum::<f64>()),
        fmt_s(segments.iter().map(|s| s.host_s).sum::<f64>())
    ));
    w.line("");
    w.line("Fig. 8 (overlapped execution of interleaved samples):");
    let widths = [10, 14, 14, 9];
    w.row(
        &["streams", "sequential_s", "overlapped_s", "saving%"].map(str::to_string),
        &widths,
    );
    let mut savings = Vec::new();
    for k in [1usize, 2, 4] {
        let r = interleave_identical(&segments, k);
        w.row(
            &[
                k.to_string(),
                fmt_s(r.sequential_s),
                fmt_s(r.overlapped_s),
                format!("{:.1}", r.saving() * 100.0),
            ],
            &widths,
        );
        savings.push(r.saving());
    }
    w.line("");
    w.line("Shape check: one stream cannot overlap (segment i+1 depends on segment");
    w.line("i's reduction); two interleaved samples hide host work behind kernels,");
    w.line("as the paper anticipates in Fig. 8.");
    assert!(savings[0] < 1e-9, "single stream must not overlap");
    assert!(savings[1] > 0.0, "two streams must save time");
    w.save();
}
