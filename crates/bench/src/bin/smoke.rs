//! CI bench smoke: a quick-mode regression gate over the two performance
//! claims the overlap-scheduled execution path makes.
//!
//! 1. **Ablation-6 scaling**: stream-overlapped strategy B must scale at
//!    or above 1.0x at 2 and 4 simulated devices, with per-lane executed
//!    iteration counts bit-identical to the serialized host loop. These
//!    run on the simulated clock, so they are machine-independent.
//! 2. **MH inner loop**: the cached incremental loop must stay at or
//!    below its committed cached/plain time ratio (+10% tolerance) and
//!    below the 0.5 ceiling (the 2x acceptance bar), with bit-identical
//!    chain output for a fixed seed. Ratios divide out machine speed, so
//!    the committed baseline is portable across CI hosts.
//! 3. **Analytic fast tier**: tracking the posterior mean with closed-form
//!    unit steps must cost at least `analytic_vs_mcmc_min_speedup` times
//!    less simulated device time than per-sample MCMC tracking of the
//!    same dataset. Simulated clock again, so machine-independent.
//!
//! Baseline: `crates/bench/baselines/smoke.json`. Exit code 0 = pass.

use std::time::Instant;
use tracto::diffusion::posterior::{BallSticksParams, NUM_PARAMETERS};
use tracto::diffusion::DiffusionModel;
use tracto::mcmc::cached::{BallSticksCacheBuffers, CachedBallSticks};
use tracto::mcmc::mh::{AdaptScheme, IncrementalTarget, MhSampler};
use tracto::phantom::gradients;
use tracto::prelude::*;
use tracto::rng::HybridTaus;
use tracto_bench::{run_scaling, scaling_loads};
use tracto_trace::json::{parse, Json};

/// Quick-mode lane count: a quarter of the full ablation keeps the same
/// 10% heavy-tail shape while the whole gate runs in seconds.
const SMOKE_LANES: usize = 65_536;
/// Timing loops per MH measurement pass.
const MH_LOOPS: u32 = 2_000;

fn baseline() -> Json {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/baselines/smoke.json");
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read baseline {path}: {e}"));
    parse(&text).expect("baseline JSON parses")
}

fn baseline_f64(doc: &Json, key: &str) -> f64 {
    doc.get(key)
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("baseline missing numeric `{key}`"))
}

/// Gate 1: streamed strategy-B scaling on the simulated clock.
fn check_scaling(failures: &mut Vec<String>) {
    let loads = scaling_loads(SMOKE_LANES, 99);
    let strategy = SegmentationStrategy::paper_b();
    let base = run_scaling(&loads, &strategy, 1, 2);
    println!("ablation-6 (quick, {SMOKE_LANES} lanes), strategy B streamed:");
    for n in [2usize, 4] {
        let serial = run_scaling(&loads, &strategy, n, 1);
        let streamed = run_scaling(&loads, &strategy, n, 2 * n);
        let speedup = base.wall_s / streamed.wall_s;
        println!(
            "  {n} device(s): wall {:.4} s (serialized {:.4} s), speedup {speedup:.2}x, \
             {:.4} s hidden",
            streamed.wall_s, serial.wall_s, streamed.overlap_saved_s
        );
        if serial.executed != streamed.executed {
            failures.push(format!(
                "streamed schedule diverged from serialized at {n} device(s)"
            ));
        }
        if speedup < 1.0 {
            failures.push(format!(
                "strategy B streamed speedup {speedup:.3}x < 1.0x at {n} device(s)"
            ));
        }
    }
}

/// Gate 2: the cached MH inner loop — identical output, bounded ratio.
fn check_mh_loop(doc: &Json, failures: &mut Vec<String>) {
    let acq = gradients::default_protocol(1);
    let model = tracto::diffusion::BallSticksModel::new(
        1000.0,
        1.5e-3,
        vec![0.5, 0.2],
        vec![Vec3::X, Vec3::Y],
    );
    let signal = model.predict_protocol(&acq);
    let posterior = BallSticksPosterior::new(&acq, &signal, PriorConfig::default());
    let init = posterior.initial_params().to_array();
    let target =
        |p: &[f64; NUM_PARAMETERS]| posterior.log_posterior(&BallSticksParams::from_array(*p));
    let scheme = AdaptScheme::paper_default;

    // Identity first: the cached loop must retrace the plain one exactly.
    let mut plain = MhSampler::new(&target, init, [0.01; NUM_PARAMETERS], scheme());
    let mut rng = HybridTaus::new(7);
    for _ in 0..MH_LOOPS {
        plain.step_loop(&target, &mut rng);
    }
    let mut cached_s = MhSampler::new(&target, init, [0.01; NUM_PARAMETERS], scheme());
    let mut buf = BallSticksCacheBuffers::new();
    let mut cached = CachedBallSticks::new(&posterior, &mut buf);
    cached.init(cached_s.params());
    let mut rng = HybridTaus::new(7);
    for _ in 0..MH_LOOPS {
        cached_s.step_loop_incremental(&mut cached, &mut rng);
    }
    if plain.params() != cached_s.params() || plain.log_density() != cached_s.log_density() {
        failures.push("cached MH loop diverged from the plain sampler".into());
    }

    // Timing: median of 5 passes each, interleaved to share thermal state.
    let time_plain = || {
        let mut s = MhSampler::new(&target, init, [0.01; NUM_PARAMETERS], scheme());
        let mut rng = HybridTaus::new(7);
        let t = Instant::now();
        for _ in 0..MH_LOOPS {
            s.step_loop(&target, &mut rng);
        }
        t.elapsed().as_secs_f64()
    };
    let time_cached = || {
        let mut s = MhSampler::new(&target, init, [0.01; NUM_PARAMETERS], scheme());
        let mut buf = BallSticksCacheBuffers::new();
        let mut c = CachedBallSticks::new(&posterior, &mut buf);
        c.init(s.params());
        let mut rng = HybridTaus::new(7);
        let t = Instant::now();
        for _ in 0..MH_LOOPS {
            s.step_loop_incremental(&mut c, &mut rng);
        }
        t.elapsed().as_secs_f64()
    };
    let mut plain_ts = Vec::new();
    let mut cached_ts = Vec::new();
    for _ in 0..5 {
        plain_ts.push(time_plain());
        cached_ts.push(time_cached());
    }
    let median = |v: &mut Vec<f64>| {
        v.sort_by(|a, b| a.total_cmp(b));
        v[v.len() / 2]
    };
    let plain_us = median(&mut plain_ts) / f64::from(MH_LOOPS) * 1e6;
    let cached_us = median(&mut cached_ts) / f64::from(MH_LOOPS) * 1e6;
    let ratio = cached_us / plain_us;

    let base_ratio = baseline_f64(doc, "mh_loop_cached_ratio");
    let ceiling = baseline_f64(doc, "mh_loop_cached_ratio_max");
    println!(
        "mh loop: plain {plain_us:.2} us, cached {cached_us:.2} us, ratio {ratio:.3} \
         (baseline {base_ratio:.3}, ceiling {ceiling:.3})"
    );
    if ratio > base_ratio * 1.10 {
        failures.push(format!(
            "MH cached/plain ratio {ratio:.3} regressed >10% over baseline {base_ratio:.3}"
        ));
    }
    if ratio > ceiling {
        failures.push(format!(
            "MH cached/plain ratio {ratio:.3} above the {ceiling:.2} ceiling (2x speedup bar)"
        ));
    }
}

/// Gate 3: the analytic modality's simulated-time advantage over MCMC.
fn check_analytic_vs_mcmc(doc: &Json, failures: &mut Vec<String>) {
    use tracto::tracking::analytic::{analytic_params, mean_posterior};

    let min_speedup = baseline_f64(doc, "analytic_vs_mcmc_min_speedup");
    let ds = datasets::single_bundle(Dim3::new(12, 8, 8), None, 3);
    let mask = Mask::from_fn(ds.dwi.dims(), |c| ds.truth.at(c).count > 0);
    let samples = tracto::synthetic::samples_from_truth(&ds.truth, 16, 0.1, 0.02, 5);
    let seeds = seeds_from_mask(&mask);
    let params = TrackingParams {
        step_length: 0.1,
        angular_threshold: 0.9,
        max_steps: 2000,
        min_fraction: 0.05,
        interp: InterpMode::Nearest,
    };
    let simulated_s =
        |samples: &tracto::mcmc::SampleVolumes, params: TrackingParams, jitter: f64| {
            let tracker = GpuTracker {
                samples,
                params,
                seeds: seeds.clone(),
                mask: None,
                strategy: SegmentationStrategy::paper_b(),
                ordering: SeedOrdering::Natural,
                jitter,
                run_seed: 42,
                record_visits: false,
            };
            let mut gpu = Gpu::new(DeviceConfig::radeon_5870());
            tracker.run(&mut gpu).ledger.total_s()
        };
    let mcmc_s = simulated_s(&samples, params, 0.5);
    let analytic_s = simulated_s(&mean_posterior(&samples), analytic_params(&params), 0.0);
    let speedup = mcmc_s / analytic_s;
    println!(
        "analytic tier ({} seeds, {} samples): mcmc {mcmc_s:.4} s simulated, \
         analytic {analytic_s:.4} s simulated, {speedup:.1}x cheaper (floor {min_speedup:.1}x)",
        seeds.len(),
        samples.num_samples()
    );
    if speedup < min_speedup {
        failures.push(format!(
            "analytic tier only {speedup:.2}x cheaper than MCMC (floor {min_speedup:.1}x)"
        ));
    }
}

fn main() {
    let doc = baseline();
    let mut failures = Vec::new();
    check_scaling(&mut failures);
    check_mh_loop(&doc, &mut failures);
    check_analytic_vs_mcmc(&doc, &mut failures);
    if failures.is_empty() {
        println!("bench smoke: PASS");
    } else {
        for f in &failures {
            eprintln!("bench smoke FAIL: {f}");
        }
        std::process::exit(1);
    }
}
