//! Shared workload construction, host-cost models, and table rendering for
//! the benchmark harness that regenerates every table and figure of the
//! paper's evaluation (Section V).
//!
//! Scale control: benches default to a reduced grid so `cargo bench`
//! completes in minutes. Set `TRACTO_FULL=1` for the paper's full grid and
//! 50 samples, or `TRACTO_SCALE=<0..1>` / `TRACTO_SAMPLES=<n>` for custom
//! sizes. Reported *shape* (who wins, crossovers) is stable across scales
//! at or above the default; absolute simulated seconds grow with scale.

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use tracto::prelude::*;
use tracto::synthetic::samples_from_truth;

/// Host (CPU) cost model, calibrated from the paper's own baseline numbers
/// so that "CPU time" columns are directly comparable in shape:
///
/// * Table II, dataset 1, row 1: 289.6 s / 113.8 M steps ⇒ 2.54 µs per
///   tracking step on the Phenom X4 965;
/// * Table III, dataset 1: 1383 s / (205 082 voxels × 600 loops) ⇒ 11.24 µs
///   per MH loop.
#[derive(Debug, Clone, Copy)]
pub struct HostModel {
    /// CPU seconds per streamline tracking step.
    pub tracking_step_s: f64,
    /// CPU seconds per MH loop (all 9 parameter updates).
    pub mh_loop_s: f64,
}

impl Default for HostModel {
    fn default() -> Self {
        HostModel {
            tracking_step_s: 2.54e-6,
            mh_loop_s: 11.24e-6,
        }
    }
}

impl HostModel {
    /// Modeled CPU seconds for a tracking run of `total_steps`.
    pub fn tracking_seconds(&self, total_steps: u64) -> f64 {
        total_steps as f64 * self.tracking_step_s
    }

    /// Modeled CPU seconds for an MCMC run.
    pub fn mcmc_seconds(&self, voxels: usize, loops: u32) -> f64 {
        voxels as f64 * loops as f64 * self.mh_loop_s
    }
}

/// Benchmark scale configuration from the environment.
#[derive(Debug, Clone, Copy)]
pub struct BenchScale {
    /// Grid scale in (0, 1].
    pub grid: f64,
    /// Posterior samples per voxel.
    pub samples: usize,
}

impl BenchScale {
    /// Read `TRACTO_FULL` / `TRACTO_SCALE` / `TRACTO_SAMPLES`.
    pub fn from_env() -> Self {
        if std::env::var("TRACTO_FULL")
            .map(|v| v == "1")
            .unwrap_or(false)
        {
            return BenchScale {
                grid: 1.0,
                samples: 50,
            };
        }
        let grid = std::env::var("TRACTO_SCALE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.75);
        let samples = std::env::var("TRACTO_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(10);
        BenchScale { grid, samples }
    }
}

/// A fully prepared tracking workload: posterior sample volumes plus seeds.
pub struct TrackingWorkload {
    /// The generating dataset.
    pub dataset: Dataset,
    /// Synthetic posterior samples (see `tracto::synthetic`).
    pub samples: SampleVolumes,
    /// Seed positions (all white-matter voxels, as in the paper).
    pub seeds: Vec<Vec3>,
}

/// Build the Step-2 workload for a paper dataset (1 or 2) at a given scale.
///
/// Orientation dispersion 0.18 rad approximates the posterior angular
/// uncertainty of white-matter voxels at clinical SNR; it also reproduces
/// the paper's extreme load imbalance (SIMD utilization of a single launch
/// in the low percents).
pub fn tracking_workload(dataset_id: u8, scale: BenchScale) -> TrackingWorkload {
    let spec = match dataset_id {
        1 => DatasetSpec::paper_dataset1(),
        2 => DatasetSpec::paper_dataset2(),
        _ => panic!("dataset_id must be 1 or 2"),
    };
    let dataset = spec.scaled(scale.grid).light_protocol().noiseless().build();
    let samples = samples_from_truth(
        &dataset.truth,
        scale.samples,
        0.18,
        0.04,
        1000 + dataset_id as u64,
    );
    let seeds = seeds_from_mask(&dataset.wm_mask);
    TrackingWorkload {
        dataset,
        samples,
        seeds,
    }
}

/// The paper's tracking parameter rows for Table II: `(step, threshold)`
/// per dataset.
pub fn table2_rows(dataset_id: u8) -> Vec<(f64, f64)> {
    match dataset_id {
        1 => vec![(0.1, 0.9), (0.2, 0.8), (0.3, 0.85)],
        2 => vec![(0.1, 0.9), (0.2, 0.85), (0.3, 0.8)],
        _ => panic!("dataset_id must be 1 or 2"),
    }
}

/// Tracking parameters for a Table II row.
pub fn row_params(step: f64, threshold: f64) -> TrackingParams {
    TrackingParams {
        step_length: step,
        angular_threshold: threshold,
        max_steps: 1888, // Σ{1,2,5,10,20,50,100,200,500,1000}
        min_fraction: 0.05,
        interp: InterpMode::Nearest,
    }
}

/// The ablation-6 multi-GPU scaling workload: mostly-trivial lanes with a
/// 10% heavy exponential tail, reproducing the paper's load imbalance.
pub fn scaling_loads(count: usize, seed: u64) -> Vec<u32> {
    use tracto::rng::{dist, HybridTaus};
    let mut rng = HybridTaus::new(seed);
    (0..count)
        .map(|_| {
            if dist::bernoulli(&mut rng, 0.1) {
                dist::exponential(&mut rng, 1.0 / 110.0).ceil() as u32 + 1
            } else {
                1
            }
        })
        .collect()
}

/// One ablation-6 scaling measurement.
pub struct ScalingRun {
    /// Simulated wall-clock of the whole schedule.
    pub wall_s: f64,
    /// Simulated time hidden by stream overlap (0 on the serialized path).
    pub overlap_saved_s: f64,
    /// Iterations executed per original lane — the bit-identity witness:
    /// any two runs of the same loads and strategy must agree exactly,
    /// whatever the device count or stream mix.
    pub executed: Vec<u64>,
}

struct ScalingCountdown;
impl tracto::gpu_sim::SimKernel for ScalingCountdown {
    // `[remaining, original lane index]`.
    type Lane = [u32; 2];
    fn step(&self, lane: &mut [u32; 2]) -> tracto::gpu_sim::LaneStatus {
        if lane[0] > 1 {
            lane[0] -= 1;
            tracto::gpu_sim::LaneStatus::Continue
        } else {
            lane[0] = 0;
            tracto::gpu_sim::LaneStatus::Finished
        }
    }
}

const SCALING_VOLUME_BYTES: u64 = 6 * 442_368 * 4;
const SCALING_LANE_BYTES: u64 = 32;

/// Run the ablation-6 scaling loop on `devices` simulated GPUs.
/// `streams <= 1` reproduces the legacy serialized host loop
/// (broadcast / scatter / partitioned launch / gather / reduce);
/// `streams > 1` drives the same schedule through the stream-aware
/// launch path, round-robining lanes onto stream lanes pinned to
/// `stream % devices` so transfers and reductions hide behind kernels.
pub fn run_scaling(
    loads: &[u32],
    strategy: &SegmentationStrategy,
    devices: usize,
    streams: usize,
) -> ScalingRun {
    use tracto::gpu_sim::multi::MultiGpu;
    let budgets = strategy.budgets(2000);
    let mut multi = MultiGpu::new(DeviceConfig::radeon_5870(), devices);
    let mut executed = vec![0u64; loads.len()];

    if streams <= 1 {
        let mut lanes: Vec<[u32; 2]> = loads
            .iter()
            .enumerate()
            .map(|(i, &l)| [l, i as u32])
            .collect();
        multi.broadcast_to_devices(SCALING_VOLUME_BYTES);
        multi.scatter_to_devices(lanes.len() as u64 * SCALING_LANE_BYTES);
        for &b in &budgets {
            if lanes.is_empty() {
                break;
            }
            let stats = multi
                .launch_partitioned(&ScalingCountdown, &mut lanes, b)
                .expect("fault-free launch");
            multi.gather_to_host(lanes.len() as u64 * SCALING_LANE_BYTES);
            multi.host_reduction(lanes.len() as u64);
            let per_lane: Vec<(u32, bool)> = stats
                .iter()
                .flat_map(|s| s.executed.iter().copied().zip(s.finished.iter().copied()))
                .collect();
            let mut next = Vec::with_capacity(lanes.len());
            for (lane, (e, fin)) in lanes.into_iter().zip(per_lane) {
                executed[lane[1] as usize] += u64::from(e);
                if !fin {
                    next.push(lane);
                }
            }
            lanes = next;
            if !lanes.is_empty() {
                multi.scatter_to_devices(lanes.len() as u64 * SCALING_LANE_BYTES);
            }
        }
        return ScalingRun {
            wall_s: multi.wall_s(),
            overlap_saved_s: multi.overlap_saved_s(),
            executed,
        };
    }

    let k = streams;
    let mut groups: Vec<(usize, Vec<[u32; 2]>)> = (0..k)
        .map(|s| {
            let lanes: Vec<[u32; 2]> = loads
                .iter()
                .enumerate()
                .skip(s)
                .step_by(k)
                .map(|(i, &l)| [l, i as u32])
                .collect();
            (s % devices, lanes)
        })
        .collect();
    // One sample-volume upload per device (as broadcast charges), plus each
    // stream's share of the lane buffers; issued round-robin so the clock
    // can pipeline them.
    for d in 0..devices.min(k) {
        multi
            .stream_upload(d, d, SCALING_VOLUME_BYTES)
            .expect("fault-free upload");
    }
    for (s, (device, lanes)) in groups.iter().enumerate() {
        multi
            .stream_upload(s, *device, lanes.len() as u64 * SCALING_LANE_BYTES)
            .expect("fault-free upload");
    }
    for (seg_idx, &b) in budgets.iter().enumerate() {
        let mut any = false;
        for (s, (device, lanes)) in groups.iter_mut().enumerate() {
            if lanes.is_empty() {
                continue;
            }
            any = true;
            if seg_idx > 0 {
                multi
                    .stream_upload(s, *device, lanes.len() as u64 * SCALING_LANE_BYTES)
                    .expect("fault-free upload");
            }
            let stats = multi
                .stream_launch(s, *device, &ScalingCountdown, lanes, b)
                .expect("fault-free launch");
            multi
                .stream_readback(s, *device, lanes.len() as u64 * SCALING_LANE_BYTES)
                .expect("fault-free readback");
            multi.stream_reduce(s, *device, lanes.len() as u64);
            let mut next = Vec::with_capacity(lanes.len());
            for (lane, (e, fin)) in lanes.drain(..).zip(
                stats
                    .executed
                    .iter()
                    .copied()
                    .zip(stats.finished.iter().copied()),
            ) {
                executed[lane[1] as usize] += u64::from(e);
                if !fin {
                    next.push(lane);
                }
            }
            *lanes = next;
        }
        if !any {
            break;
        }
    }
    ScalingRun {
        wall_s: multi.wall_s(),
        overlap_saved_s: multi.overlap_saved_s(),
        executed,
    }
}

/// Fixed-width table printer that also appends to
/// `target/experiments/<name>.txt` so EXPERIMENTS.md can reference outputs.
pub struct TableWriter {
    name: String,
    lines: Vec<String>,
}

impl TableWriter {
    /// Start a table with a title line.
    pub fn new(name: &str, title: &str) -> Self {
        let mut w = TableWriter {
            name: name.to_string(),
            lines: Vec::new(),
        };
        w.line(&format!("== {title} =="));
        w
    }

    /// Emit one line (printed immediately, captured for the file).
    pub fn line(&mut self, s: &str) {
        println!("{s}");
        self.lines.push(s.to_string());
    }

    /// Formatted row helper.
    pub fn row(&mut self, cells: &[String], widths: &[usize]) {
        let mut s = String::new();
        for (c, w) in cells.iter().zip(widths) {
            s.push_str(&format!("{c:>width$} ", width = w));
        }
        self.line(s.trim_end());
    }

    /// Write the captured lines to `target/experiments/<name>.txt`.
    pub fn save(&self) {
        let dir = output_dir();
        let _ = fs::create_dir_all(&dir);
        let path = dir.join(format!("{}.txt", self.name));
        if let Ok(mut f) = fs::File::create(&path) {
            for l in &self.lines {
                let _ = writeln!(f, "{l}");
            }
            println!("[saved {}]", path.display());
        }
    }
}

/// Directory where benches persist their rendered tables: the workspace
/// root's `target/experiments/` (benches run with CWD = the bench crate, so
/// anchor on this crate's manifest path).
pub fn output_dir() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(|ws| ws.join("target").join("experiments"))
        .unwrap_or_else(|| PathBuf::from("target").join("experiments"))
}

/// Format seconds compactly.
pub fn fmt_s(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}")
    } else if s >= 1.0 {
        format!("{s:.2}")
    } else {
        format!("{s:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_model_matches_paper_calibration() {
        let m = HostModel::default();
        // Table II row 1: 113.8 M steps → ≈289.6 s.
        let t = m.tracking_seconds(113_822_762);
        assert!((t - 289.6).abs() < 5.0, "tracking model {t}");
        // Table III dataset 1: 205k voxels × 600 loops → ≈1383 s.
        let t = m.mcmc_seconds(205_082, 600);
        assert!((t - 1383.0).abs() < 10.0, "mcmc model {t}");
    }

    #[test]
    fn scale_defaults() {
        // Without env overrides the default is moderate.
        let s = BenchScale {
            grid: 0.6,
            samples: 10,
        };
        assert!(s.grid > 0.0 && s.grid <= 1.0);
    }

    #[test]
    fn workload_builds_for_both_datasets() {
        for id in [1u8, 2] {
            let w = tracking_workload(
                id,
                BenchScale {
                    grid: 0.15,
                    samples: 3,
                },
            );
            assert!(!w.seeds.is_empty());
            assert_eq!(w.samples.num_samples(), 3);
            assert_eq!(w.samples.dims(), w.dataset.dwi.dims());
        }
    }

    #[test]
    fn table2_row_definitions() {
        assert_eq!(table2_rows(1).len(), 3);
        assert_eq!(table2_rows(2)[2], (0.3, 0.8));
        let p = row_params(0.1, 0.9);
        assert_eq!(p.max_steps, 1888);
    }

    #[test]
    fn fmt_seconds() {
        assert_eq!(fmt_s(123.4), "123");
        assert_eq!(fmt_s(3.456), "3.46");
        assert_eq!(fmt_s(0.0123), "0.012");
    }
}
