//! Property-based tests of the simulator's cost-model invariants.

use proptest::prelude::*;
use tracto_gpu_sim::overlap::{schedule_streams, SegmentCost};
use tracto_gpu_sim::{DeviceConfig, Gpu, LaneStatus, SimKernel};

struct Countdown;
impl SimKernel for Countdown {
    type Lane = u32;
    fn step(&self, lane: &mut u32) -> LaneStatus {
        if *lane > 1 {
            *lane -= 1;
            LaneStatus::Continue
        } else {
            *lane = 0;
            LaneStatus::Finished
        }
    }
}

fn device(wavefront: usize) -> DeviceConfig {
    DeviceConfig {
        wavefront_size: wavefront,
        num_compute_units: 2,
        waves_per_cu: 2,
        ..DeviceConfig::radeon_5870()
    }
}

proptest! {
    #[test]
    fn executed_never_exceeds_budget(
        loads in prop::collection::vec(1u32..500, 1..200),
        budget in 1u32..100,
        wavefront in 1usize..16,
    ) {
        let mut gpu = Gpu::new(device(wavefront));
        let mut lanes = loads.clone();
        let stats = gpu.launch(&Countdown, &mut lanes, budget);
        for (i, (&e, &orig)) in stats.executed.iter().zip(&loads).enumerate() {
            prop_assert!(e <= budget, "lane {i} executed {e} > budget {budget}");
            prop_assert!(e <= orig, "lane {i} executed {e} > its own load {orig}");
            // Finished iff the load fit within the budget.
            prop_assert_eq!(stats.finished[i], orig <= budget);
        }
    }

    #[test]
    fn charged_at_least_useful(
        loads in prop::collection::vec(1u32..300, 1..256),
        wavefront in 1usize..64,
    ) {
        let mut gpu = Gpu::new(device(wavefront));
        let mut lanes = loads.clone();
        let stats = gpu.launch(&Countdown, &mut lanes, 1_000);
        prop_assert!(stats.charged_iterations >= stats.useful_iterations);
        prop_assert_eq!(
            stats.useful_iterations,
            loads.iter().map(|&l| l as u64).sum::<u64>()
        );
        let util = gpu.ledger().simd_utilization();
        prop_assert!(util > 0.0 && util <= 1.0 + 1e-12);
    }

    #[test]
    fn charging_invariant_to_intra_warp_permutation(
        mut loads in prop::collection::vec(1u32..200, 8..64),
        seed in 0u64..1000,
    ) {
        let wavefront = 8;
        let mut g1 = Gpu::new(device(wavefront));
        let s1 = g1.launch(&Countdown, &mut loads.clone(), 1_000);
        // Permute within each wavefront only.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        for chunk in loads.chunks_mut(wavefront) {
            for i in (1..chunk.len()).rev() {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let j = (state >> 33) as usize % (i + 1);
                chunk.swap(i, j);
            }
        }
        let mut g2 = Gpu::new(device(wavefront));
        let s2 = g2.launch(&Countdown, &mut loads, 1_000);
        prop_assert_eq!(s1.charged_iterations, s2.charged_iterations);
        prop_assert!((s1.kernel_s - s2.kernel_s).abs() < 1e-15);
    }

    #[test]
    fn wider_wavefronts_never_charge_less(
        loads in prop::collection::vec(1u32..200, 1..200),
    ) {
        // Doubling the wavefront merges pairs of warps: max(a,b) ≥ each.
        let mut narrow = Gpu::new(device(4));
        let mut wide = Gpu::new(device(8));
        let sn = narrow.launch(&Countdown, &mut loads.clone(), 1_000);
        let sw = wide.launch(&Countdown, &mut loads.clone(), 1_000);
        prop_assert!(sw.charged_iterations >= sn.charged_iterations);
    }

    #[test]
    fn transfer_time_monotone_and_additive(a in 0u64..1_000_000, b in 0u64..1_000_000) {
        let d = DeviceConfig::radeon_5870();
        let ta = d.pcie.transfer_seconds(a);
        let tb = d.pcie.transfer_seconds(b);
        let tab = d.pcie.transfer_seconds(a + b);
        prop_assert!(tab + 1e-15 >= ta.max(tb));
        // One big transfer beats two small ones (latency amortized).
        prop_assert!(tab <= ta + tb + 1e-15);
    }

    #[test]
    fn overlap_bounded_by_sequential_and_resource_floor(
        kernel_costs in prop::collection::vec(0.001f64..1.0, 1..10),
        host_costs in prop::collection::vec(0.001f64..1.0, 1..10),
        streams in 1usize..4,
    ) {
        let n = kernel_costs.len().min(host_costs.len());
        let segs: Vec<SegmentCost> = (0..n)
            .map(|i| SegmentCost { kernel_s: kernel_costs[i], host_s: host_costs[i] })
            .collect();
        let all: Vec<Vec<SegmentCost>> = (0..streams).map(|_| segs.clone()).collect();
        let r = schedule_streams(&all);
        prop_assert!(r.overlapped_s <= r.sequential_s + 1e-9);
        let gpu_total: f64 = segs.iter().map(|s| s.kernel_s).sum::<f64>() * streams as f64;
        let host_total: f64 = segs.iter().map(|s| s.host_s).sum::<f64>() * streams as f64;
        prop_assert!(r.overlapped_s + 1e-9 >= gpu_total.max(host_total),
            "makespan below the busy-resource floor");
    }

    #[test]
    fn kernel_time_monotone_in_weight(
        iters in 1u64..10_000_000,
        w1 in 0.1f64..10.0,
        extra in 0.1f64..10.0,
    ) {
        let d = DeviceConfig::radeon_5870();
        prop_assert!(
            d.kernel_seconds_weighted(iters, w1) <= d.kernel_seconds_weighted(iters, w1 + extra)
        );
    }
}
