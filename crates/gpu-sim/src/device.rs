//! Device cost model.

/// PCIe transfer cost model: fixed per-transfer latency plus bandwidth-
/// proportional payload time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PcieModel {
    /// Per-transfer fixed latency in microseconds (driver + DMA setup).
    pub latency_us: f64,
    /// Sustained bandwidth in GB/s.
    pub bandwidth_gb_s: f64,
}

impl PcieModel {
    /// Simulated seconds to move `bytes` across the bus.
    #[inline]
    pub fn transfer_seconds(&self, bytes: u64) -> f64 {
        self.latency_us * 1e-6 + bytes as f64 / (self.bandwidth_gb_s * 1e9)
    }
}

/// The simulated device: SIMD geometry plus calibrated cost constants.
///
/// Defaults model the paper's testbed (AMD Radeon 5870, PCIe 2.0 ×16,
/// Phenom X4 host): wavefronts of 64 lanes over 20 compute units. The
/// absolute constants set the *scale* of reported times; the experiments'
/// conclusions depend only on their ratios (lane-iteration cost vs. launch
/// overhead vs. transfer cost), which are taken from the era's published
/// figures.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceConfig {
    /// Human-readable device name.
    pub name: String,
    /// Lanes per wavefront (AMD: 64; NVIDIA warp: 32).
    pub wavefront_size: usize,
    /// Number of compute units (SIMD engines).
    pub num_compute_units: usize,
    /// Wavefronts resident per compute unit (occupancy).
    pub waves_per_cu: usize,
    /// Effective time, in nanoseconds, for one wavefront to complete one
    /// lockstep iteration — *including* memory stalls (a tracking step is a
    /// gather of six volumes, so the constant is memory-latency dominated).
    /// Calibrated to the paper's observed throughput: its Table IV
    /// `A_MaxStep` run retires ~10⁸ charged lane-steps per second on the
    /// Radeon 5870, i.e. ≈7.5 ns per charged lane-step ⇒ ≈38 µs per 64-lane
    /// wavefront-iteration at 80 resident wavefronts.
    pub wavefront_iteration_ns: f64,
    /// Fixed kernel-launch overhead in microseconds.
    pub kernel_launch_overhead_us: f64,
    /// Bus model.
    pub pcie: PcieModel,
    /// Host-side reduction/compaction cost per element, nanoseconds.
    pub host_reduction_ns_per_elem: f64,
    /// Device memory capacity in bytes (Radeon 5870: 1 GB). Allocations
    /// beyond it fail, which is what bounds how many sample volumes the
    /// overlap scheduler may keep resident ("the sample volume on the GPU
    /// also doubles").
    pub memory_bytes: u64,
}

impl DeviceConfig {
    /// The paper's GPU: AMD Radeon 5870 ("Cypress"), 20 CUs × 64-lane
    /// wavefronts, PCIe 2.0 ×16 (~6 GB/s effective), OpenCL launch overhead
    /// in the tens of microseconds.
    pub fn radeon_5870() -> Self {
        DeviceConfig {
            name: "AMD Radeon 5870 (simulated)".into(),
            wavefront_size: 64,
            num_compute_units: 20,
            waves_per_cu: 4,
            // Calibration against the paper's own Table IV (see
            // EXPERIMENTS.md): A₁ kernel 9.16 s over 22 650 launches ⇒
            // ≈0.4 ms launch overhead; A₁ transfer 41.2 s over ≈45 300
            // transfers ⇒ ≈0.9 ms per transfer; A₁ reduction 8.21 s over
            // 113.8 M elements ⇒ ≈72 ns/element.
            wavefront_iteration_ns: 38_400.0,
            kernel_launch_overhead_us: 400.0,
            pcie: PcieModel {
                latency_us: 900.0,
                bandwidth_gb_s: 5.5,
            },
            host_reduction_ns_per_elem: 72.0,
            memory_bytes: 1 << 30, // 1 GB GDDR5
        }
    }

    /// A 32-lane-warp variant of the same device — the ablation contrasting
    /// AMD wavefronts with NVIDIA warps (imbalance waste shrinks with
    /// narrower SIMD groups).
    pub fn warp32_variant() -> Self {
        DeviceConfig {
            name: "32-lane-warp variant (simulated)".into(),
            wavefront_size: 32,
            num_compute_units: 40, // same total lane count
            ..Self::radeon_5870()
        }
    }

    /// Total wavefronts the device executes concurrently (fluid
    /// approximation of the dispatcher).
    #[inline]
    pub fn parallel_wavefronts(&self) -> usize {
        self.num_compute_units * self.waves_per_cu
    }

    /// Simulated kernel time for a launch whose wavefronts need the given
    /// lockstep iteration counts.
    #[inline]
    pub fn kernel_seconds(&self, total_wavefront_iterations: u64) -> f64 {
        self.kernel_seconds_weighted(total_wavefront_iterations, 1.0)
    }

    /// As [`kernel_seconds`](Self::kernel_seconds), with a per-iteration
    /// cost weight: a kernel whose iteration does `weight ×` the work of the
    /// reference (one tracking step) charges proportionally more. The MCMC
    /// kernel's loop — 9 MH parameter updates, each evaluating the full
    /// measurement likelihood — uses this.
    #[inline]
    pub fn kernel_seconds_weighted(&self, total_wavefront_iterations: u64, weight: f64) -> f64 {
        self.kernel_launch_overhead_us * 1e-6
            + total_wavefront_iterations as f64 * self.wavefront_iteration_ns * weight * 1e-9
                / self.parallel_wavefronts() as f64
    }

    /// Simulated host reduction time over `elements` items.
    #[inline]
    pub fn reduction_seconds(&self, elements: u64) -> f64 {
        elements as f64 * self.host_reduction_ns_per_elem * 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pcie_latency_dominates_small_transfers() {
        let p = PcieModel {
            latency_us: 10.0,
            bandwidth_gb_s: 5.0,
        };
        let t_small = p.transfer_seconds(64);
        assert!((t_small - 10.0e-6).abs() / 10.0e-6 < 0.01);
    }

    #[test]
    fn pcie_bandwidth_dominates_large_transfers() {
        let p = PcieModel {
            latency_us: 10.0,
            bandwidth_gb_s: 5.0,
        };
        let t = p.transfer_seconds(5_000_000_000);
        assert!((t - 1.0) < 0.01, "5 GB at 5 GB/s ≈ 1 s, got {t}");
    }

    #[test]
    fn transfer_monotone_in_bytes() {
        let p = PcieModel {
            latency_us: 10.0,
            bandwidth_gb_s: 5.0,
        };
        assert!(p.transfer_seconds(1000) < p.transfer_seconds(10_000));
    }

    #[test]
    fn radeon_defaults_sane() {
        let d = DeviceConfig::radeon_5870();
        assert_eq!(d.wavefront_size, 64);
        assert_eq!(d.parallel_wavefronts(), 80);
        assert!(
            d.kernel_seconds(0) > 0.0,
            "launch overhead charged even for empty kernels"
        );
    }

    #[test]
    fn warp32_same_total_lanes() {
        let a = DeviceConfig::radeon_5870();
        let b = DeviceConfig::warp32_variant();
        assert_eq!(
            a.wavefront_size * a.num_compute_units,
            b.wavefront_size * b.num_compute_units
        );
    }

    #[test]
    fn kernel_time_linear_in_iterations() {
        let d = DeviceConfig::radeon_5870();
        let base = d.kernel_seconds(0);
        let t1 = d.kernel_seconds(1_000_000) - base;
        let t2 = d.kernel_seconds(2_000_000) - base;
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn reduction_linear() {
        let d = DeviceConfig::radeon_5870();
        assert_eq!(d.reduction_seconds(0), 0.0);
        // 1M elements at 72 ns/element = 72 ms.
        assert!((d.reduction_seconds(1_000_000) - 0.072).abs() < 1e-9);
    }
}
