//! Accumulated timing breakdown — the kernel / reduction / transfer columns
//! of the paper's Tables II and IV.

/// Accumulated simulated times and traffic counters for one pipeline run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TimingLedger {
    /// Simulated GPU kernel seconds (includes launch overhead).
    pub kernel_s: f64,
    /// Simulated host reduction/compaction seconds.
    pub reduction_s: f64,
    /// Simulated PCIe transfer seconds (both directions).
    pub transfer_s: f64,
    /// Number of kernel launches.
    pub launches: u64,
    /// Host→device bytes moved.
    pub bytes_h2d: u64,
    /// Device→host bytes moved.
    pub bytes_d2h: u64,
    /// Total useful lane-iterations executed.
    pub useful_iterations: u64,
    /// Total lane-iterations the lockstep model charged (≥ useful).
    pub charged_iterations: u64,
    /// Measured wall-clock seconds spent actually executing kernels on the
    /// host (for honesty reporting; not part of the simulated model).
    pub wall_kernel_s: f64,
}

impl TimingLedger {
    /// Total simulated seconds.
    pub fn total_s(&self) -> f64 {
        self.kernel_s + self.reduction_s + self.transfer_s
    }

    /// SIMD utilization in `[0, 1]`: useful / charged lane-iterations.
    /// 1.0 means no lockstep waste.
    pub fn simd_utilization(&self) -> f64 {
        if self.charged_iterations == 0 {
            return 1.0;
        }
        self.useful_iterations as f64 / self.charged_iterations as f64
    }

    /// Merge another ledger into this one.
    pub fn merge(&mut self, other: &TimingLedger) {
        self.kernel_s += other.kernel_s;
        self.reduction_s += other.reduction_s;
        self.transfer_s += other.transfer_s;
        self.launches += other.launches;
        self.bytes_h2d += other.bytes_h2d;
        self.bytes_d2h += other.bytes_d2h;
        self.useful_iterations += other.useful_iterations;
        self.charged_iterations += other.charged_iterations;
        self.wall_kernel_s += other.wall_kernel_s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_sums_components() {
        let l = TimingLedger {
            kernel_s: 1.0,
            reduction_s: 0.5,
            transfer_s: 0.25,
            ..Default::default()
        };
        assert_eq!(l.total_s(), 1.75);
    }

    #[test]
    fn utilization_bounds() {
        let mut l = TimingLedger::default();
        assert_eq!(l.simd_utilization(), 1.0);
        l.useful_iterations = 50;
        l.charged_iterations = 100;
        assert_eq!(l.simd_utilization(), 0.5);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = TimingLedger {
            kernel_s: 1.0,
            launches: 2,
            bytes_h2d: 100,
            useful_iterations: 10,
            ..Default::default()
        };
        let b = TimingLedger {
            kernel_s: 2.0,
            reduction_s: 1.0,
            launches: 3,
            bytes_d2h: 50,
            charged_iterations: 20,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.kernel_s, 3.0);
        assert_eq!(a.reduction_s, 1.0);
        assert_eq!(a.launches, 5);
        assert_eq!(a.bytes_h2d, 100);
        assert_eq!(a.bytes_d2h, 50);
        assert_eq!(a.useful_iterations, 10);
        assert_eq!(a.charged_iterations, 20);
    }
}
