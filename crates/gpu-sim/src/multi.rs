//! Multi-GPU extension.
//!
//! The paper's conclusion: "Our GPU-based framework has considerable
//! scalability, since the communication of parallel threads is negligible.
//! Little adaptation is needed to extend the current implementation to the
//! multi-GPU version, and proportional performance gains can be expected."
//! This module builds that version: lanes partition across `n` simulated
//! devices, each device runs its shard independently (kernel time is the
//! maximum across devices — they execute concurrently), while the single
//! host bus serializes transfers and the single CPU serializes reductions.

use crate::device::DeviceConfig;
use crate::fault::{DeviceHealth, FaultPlan};
use crate::kernel::{Gpu, LaunchStats, SimKernel};
use crate::ledger::TimingLedger;
use tracto_trace::{Tracer, TractoError, TractoResult};

/// A group of identical simulated devices sharing one host.
///
/// Device faults injected by a [`FaultPlan`] are absorbed here where
/// possible: transient launch failures and transfer timeouts retry on the
/// same device, and a lost device's lane shard fails over to the survivors
/// (see [`launch_partitioned`](Self::launch_partitioned)). Only allocation
/// faults and the loss of *every* device escape to the caller.
#[derive(Debug)]
pub struct MultiGpu {
    devices: Vec<Gpu>,
    // Aggregate wall view: kernels overlap across devices, host work is
    // serialized.
    kernel_wall_s: f64,
    host_serial_s: f64,
    failovers: u64,
    fault_retries: u64,
    tracer: Tracer,
}

impl MultiGpu {
    /// Bring up `n` identical devices.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`; fallible callers use
    /// [`try_new`](Self::try_new).
    pub fn new(config: DeviceConfig, n: usize) -> Self {
        MultiGpu::try_new(config, n).expect("need at least one device")
    }

    /// Bring up `n` identical devices, rejecting `n == 0` with
    /// [`TractoError::Config`].
    pub fn try_new(config: DeviceConfig, n: usize) -> TractoResult<Self> {
        if n == 0 {
            return Err(TractoError::config("device pool needs at least one device"));
        }
        Ok(MultiGpu {
            devices: (0..n).map(|_| Gpu::new(config.clone())).collect(),
            kernel_wall_s: 0.0,
            host_serial_s: 0.0,
            failovers: 0,
            fault_retries: 0,
            tracer: Tracer::disabled(),
        })
    }

    /// Number of devices (including failed ones).
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// Number of devices still able to execute work (healthy or degraded).
    pub fn alive_devices(&self) -> usize {
        self.devices
            .iter()
            .filter(|d| d.health() != DeviceHealth::Failed)
            .count()
    }

    /// Per-device health, indexed by device id.
    pub fn health(&self) -> Vec<DeviceHealth> {
        self.devices.iter().map(|d| d.health()).collect()
    }

    /// How many lane shards have been re-partitioned off a lost device.
    pub fn failovers(&self) -> u64 {
        self.failovers
    }

    /// How many transient faults were absorbed by same-device retries.
    pub fn fault_retries(&self) -> u64 {
        self.fault_retries
    }

    /// Total faults injected across the pool so far.
    pub fn faults_injected(&self) -> u64 {
        self.devices.iter().map(|d| d.faults_injected()).sum()
    }

    /// Install a fault plan: device `d` receives the plan's events
    /// addressed to device `d`.
    pub fn set_fault_plan(&mut self, plan: &FaultPlan) {
        for (d, gpu) in self.devices.iter_mut().enumerate() {
            gpu.set_fault_plan(plan, d as u32);
        }
    }

    /// Attach a tracer to every device; device `d`'s events carry
    /// `device=d`.
    pub fn set_tracer(&mut self, tracer: &Tracer) {
        self.tracer = tracer.clone();
        for (d, gpu) in self.devices.iter_mut().enumerate() {
            gpu.set_tracer(tracer.clone(), d as u32);
        }
    }

    /// Indices of devices that can still execute work.
    fn alive_indices(&self) -> Vec<usize> {
        self.devices
            .iter()
            .enumerate()
            .filter(|(_, d)| d.health() != DeviceHealth::Failed)
            .map(|(i, _)| i)
            .collect()
    }

    /// All devices lost: the pool can no longer run anything.
    fn pool_exhausted() -> TractoError {
        TractoError::capacity("gpu devices", 1, 0)
    }

    /// Launch a kernel with lanes partitioned round-robin-contiguously
    /// (device `d` gets the `d`-th contiguous shard). Returns per-shard
    /// launch stats whose concatenated `executed`/`finished` vectors align
    /// with `lanes` in order; lanes are mutated in place.
    ///
    /// Simulated wall time advances by the **maximum** shard kernel time
    /// per round — devices run concurrently.
    ///
    /// Fault handling: a transient launch failure retries on the same
    /// device (the failed attempt's overhead is charged). A lost device
    /// triggers failover — its shard and every not-yet-launched shard of
    /// the round are re-partitioned across the surviving devices and
    /// replayed. Because faults fire before any lane is stepped, the
    /// failed-over replay produces results bit-identical to a fault-free
    /// run. Errors with [`TractoError::Capacity`] only when no device
    /// remains.
    pub fn launch_partitioned<K: SimKernel>(
        &mut self,
        kernel: &K,
        lanes: &mut [K::Lane],
        max_iters: u32,
    ) -> TractoResult<Vec<LaunchStats>> {
        let mut stats = Vec::with_capacity(self.devices.len());
        let mut rest: &mut [K::Lane] = lanes;
        loop {
            if rest.is_empty() {
                return Ok(stats);
            }
            let alive = self.alive_indices();
            if alive.is_empty() {
                return Err(Self::pool_exhausted());
            }
            let shard = rest.len().div_ceil(alive.len()).max(1);
            let mut round_slowest = 0.0f64;
            let mut done_lanes = 0usize;
            let mut lost_device: Option<usize> = None;
            for (k, chunk) in rest.chunks_mut(shard).enumerate() {
                let d = alive[k];
                let t0 = self.devices[d].clock_s();
                let outcome = loop {
                    match self.devices[d].try_launch(kernel, chunk, max_iters) {
                        Ok(s) => break Ok(s),
                        Err(e) if self.devices[d].health() == DeviceHealth::Failed => {
                            break Err(e);
                        }
                        Err(_) => {
                            // Transient launch failure: retry on the same
                            // device. Bounded — every fault event fires at
                            // most once.
                            self.fault_retries += 1;
                            if self.tracer.enabled() {
                                self.tracer.emit(
                                    "gpu.retry",
                                    &[("device", (d as u32).into()), ("op", "launch".into())],
                                );
                            }
                        }
                    }
                };
                // Device time spent this round, including failed attempts.
                round_slowest = round_slowest.max(self.devices[d].clock_s() - t0);
                match outcome {
                    Ok(s) => {
                        done_lanes += chunk.len();
                        stats.push(s);
                    }
                    Err(_) => {
                        lost_device = Some(d);
                        break;
                    }
                }
            }
            self.kernel_wall_s += round_slowest;
            let Some(d) = lost_device else {
                return Ok(stats);
            };
            // Failover: re-partition everything not yet executed (the lost
            // device's untouched shard plus any shards after it) across the
            // survivors on the next round.
            self.failovers += 1;
            if self.tracer.enabled() {
                self.tracer.emit(
                    "gpu.failover",
                    &[
                        ("device", (d as u32).into()),
                        ("orphaned_lanes", (rest.len() - done_lanes).into()),
                        ("survivors", self.alive_devices().into()),
                    ],
                );
            }
            let r = std::mem::take(&mut rest);
            rest = &mut r[done_lanes..];
        }
    }

    /// Run one serialized host-bus transfer on device `i` via `op`,
    /// absorbing transient timeouts by retrying (each stall is charged to
    /// serialized host time). Gives up only if the device fails outright.
    fn transfer_with_retry(
        &mut self,
        i: usize,
        op: impl Fn(&mut Gpu) -> TractoResult<f64>,
        label: &'static str,
    ) {
        loop {
            let d = &mut self.devices[i];
            if d.health() == DeviceHealth::Failed {
                return;
            }
            let before = d.clock_s();
            match op(d) {
                Ok(t) => {
                    self.host_serial_s += t;
                    return;
                }
                Err(_) => {
                    // Timed-out transfer: the stall was charged to the
                    // device clock; mirror it into serialized host time and
                    // retry.
                    self.host_serial_s += self.devices[i].clock_s() - before;
                    self.fault_retries += 1;
                    if self.tracer.enabled() {
                        self.tracer.emit(
                            "gpu.retry",
                            &[("device", (i as u32).into()), ("op", label.into())],
                        );
                    }
                }
            }
        }
    }

    /// Broadcast an upload (e.g. the sample volume) to every live device
    /// over the shared bus: the bus serializes, so cost is `alive ×` one
    /// transfer.
    pub fn broadcast_to_devices(&mut self, bytes: u64) {
        for i in 0..self.devices.len() {
            self.transfer_with_retry(i, |d| d.try_transfer_to_device(bytes), "broadcast");
        }
    }

    /// Upload distinct shards (e.g. start points): total bytes split across
    /// live devices, one serialized transfer each.
    pub fn scatter_to_devices(&mut self, total_bytes: u64) {
        let n = self.alive_devices().max(1) as u64;
        for i in 0..self.devices.len() {
            self.transfer_with_retry(i, |d| d.try_transfer_to_device(total_bytes / n), "scatter");
        }
    }

    /// Read each live device's shard back.
    pub fn gather_to_host(&mut self, total_bytes: u64) {
        let n = self.alive_devices().max(1) as u64;
        for i in 0..self.devices.len() {
            self.transfer_with_retry(i, |d| d.try_transfer_to_host(total_bytes / n), "gather");
        }
    }

    /// Host reduction over all live shards (serialized on the one CPU).
    pub fn host_reduction(&mut self, elements: u64) {
        let n = self.alive_devices().max(1) as u64;
        for d in &mut self.devices {
            if d.health() == DeviceHealth::Failed {
                continue;
            }
            let t = d.host_reduction(elements / n);
            self.host_serial_s += t;
        }
    }

    /// Reserve `bytes` on every live device (replicated residency, e.g.
    /// each device holding the full sample-volume stack). On failure the
    /// devices already charged are rolled back and the error is returned:
    /// [`TractoError::Capacity`] for genuine exhaustion, retryable
    /// [`TractoError::Device`] for an injected allocation fault.
    pub fn device_alloc_all(&mut self, bytes: u64) -> Result<(), TractoError> {
        if self.alive_devices() == 0 {
            return Err(Self::pool_exhausted());
        }
        let mut charged: Vec<usize> = Vec::new();
        for i in 0..self.devices.len() {
            if self.devices[i].health() == DeviceHealth::Failed {
                continue;
            }
            if let Err(err) = self.devices[i].device_alloc(bytes) {
                for &j in &charged {
                    self.devices[j].device_free(bytes);
                }
                return Err(err);
            }
            charged.push(i);
        }
        Ok(())
    }

    /// Release a replicated reservation on every device.
    pub fn device_free_all(&mut self, bytes: u64) {
        for d in &mut self.devices {
            d.device_free(bytes);
        }
    }

    /// Aggregate ledger (sums across devices — device-seconds, not wall).
    pub fn aggregate_ledger(&self) -> TimingLedger {
        let mut total = TimingLedger::default();
        for d in &self.devices {
            total.merge(d.ledger());
        }
        total
    }

    /// Simulated wall-clock makespan: concurrent kernels + serialized host
    /// work.
    pub fn wall_s(&self) -> f64 {
        self.kernel_wall_s + self.host_serial_s
    }

    /// Per-device ledgers.
    pub fn device_ledgers(&self) -> Vec<TimingLedger> {
        self.devices.iter().map(|d| *d.ledger()).collect()
    }
}

/// Strong-scaling summary for a workload run at several device counts.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingPoint {
    /// Device count.
    pub devices: usize,
    /// Simulated wall seconds.
    pub wall_s: f64,
    /// Speedup over one device.
    pub speedup: f64,
    /// Parallel efficiency (`speedup / devices`).
    pub efficiency: f64,
}

/// Compute scaling points from `(devices, wall_s)` measurements.
pub fn scaling_summary(measurements: &[(usize, f64)]) -> Vec<ScalingPoint> {
    assert!(!measurements.is_empty());
    let base = measurements
        .iter()
        .find(|(n, _)| *n == 1)
        .map(|(_, t)| *t)
        .unwrap_or(measurements[0].1);
    measurements
        .iter()
        .map(|&(devices, wall_s)| {
            let speedup = base / wall_s;
            ScalingPoint {
                devices,
                wall_s,
                speedup,
                efficiency: speedup / devices as f64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::LaneStatus;

    struct Countdown;
    impl SimKernel for Countdown {
        type Lane = u32;
        fn step(&self, lane: &mut u32) -> LaneStatus {
            if *lane > 1 {
                *lane -= 1;
                LaneStatus::Continue
            } else {
                *lane = 0;
                LaneStatus::Finished
            }
        }
    }

    fn device() -> DeviceConfig {
        DeviceConfig {
            wavefront_size: 4,
            num_compute_units: 2,
            waves_per_cu: 2,
            ..DeviceConfig::radeon_5870()
        }
    }

    fn balanced_loads(n: usize) -> Vec<u32> {
        vec![100u32; n]
    }

    #[test]
    fn results_identical_across_device_counts() {
        for n in [1usize, 2, 4] {
            let mut multi = MultiGpu::new(device(), n);
            let mut lanes = (1..=257u32).collect::<Vec<_>>();
            multi
                .launch_partitioned(&Countdown, &mut lanes, 10_000)
                .unwrap();
            assert!(
                lanes.iter().all(|&l| l == 0),
                "all lanes completed on {n} devices"
            );
        }
    }

    #[test]
    fn kernels_overlap_across_devices() {
        let mut one = MultiGpu::new(device(), 1);
        let mut four = MultiGpu::new(device(), 4);
        let mut a = balanced_loads(1024);
        let mut b = balanced_loads(1024);
        one.launch_partitioned(&Countdown, &mut a, 10_000).unwrap();
        four.launch_partitioned(&Countdown, &mut b, 10_000).unwrap();
        // Proportional gains: 4 devices ≈ 4× faster on balanced loads
        // (modulo the fixed launch overhead).
        let ratio = one.wall_s() / four.wall_s();
        assert!(ratio > 3.0, "scaling ratio {ratio:.2}");
        // Total device-seconds are roughly conserved.
        let l1 = one.aggregate_ledger();
        let l4 = four.aggregate_ledger();
        assert_eq!(l1.useful_iterations, l4.useful_iterations);
    }

    #[test]
    fn host_work_serializes() {
        let mut multi = MultiGpu::new(device(), 4);
        multi.broadcast_to_devices(1_000_000);
        // Broadcast over a shared bus costs ~4 single transfers.
        let single = device().pcie.transfer_seconds(1_000_000);
        assert!((multi.wall_s() - 4.0 * single).abs() < 1e-9);
    }

    #[test]
    fn scatter_and_gather_split_bytes() {
        let mut multi = MultiGpu::new(device(), 2);
        multi.scatter_to_devices(1_000_000);
        multi.gather_to_host(1_000_000);
        let l = multi.aggregate_ledger();
        assert_eq!(l.bytes_h2d, 1_000_000);
        assert_eq!(l.bytes_d2h, 1_000_000);
    }

    #[test]
    fn scaling_summary_math() {
        let pts = scaling_summary(&[(1, 8.0), (2, 4.2), (4, 2.4)]);
        assert_eq!(pts[0].speedup, 1.0);
        assert!((pts[1].speedup - 8.0 / 4.2).abs() < 1e-12);
        assert!(pts[2].efficiency < 1.0 && pts[2].efficiency > 0.7);
    }

    #[test]
    fn reduction_split_across_shards() {
        let mut multi = MultiGpu::new(device(), 4);
        multi.host_reduction(4000);
        let l = multi.aggregate_ledger();
        // Total elements reduced = 4000 regardless of device count.
        assert!((l.reduction_s - device().reduction_seconds(4000)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_devices_rejected() {
        let _ = MultiGpu::new(device(), 0);
    }

    #[test]
    fn try_new_rejects_zero_devices_with_config_error() {
        let err = MultiGpu::try_new(device(), 0).expect_err("zero devices");
        assert_eq!(err.kind(), tracto_trace::ErrorKind::Config);
        assert!(MultiGpu::try_new(device(), 1).is_ok());
    }

    /// A device loss mid-launch fails over to the survivors and the lane
    /// results are bit-identical to the fault-free run.
    #[test]
    fn failover_preserves_results_bit_identically() {
        let plan = FaultPlan::parse("fault 1 0 device-lost").unwrap();
        let mut clean = MultiGpu::new(device(), 4);
        let mut faulted = MultiGpu::new(device(), 4);
        faulted.set_fault_plan(&plan);

        let mut a: Vec<u32> = (1..=257u32).collect();
        let mut b = a.clone();
        let sa = clean
            .launch_partitioned(&Countdown, &mut a, 10_000)
            .unwrap();
        let sb = faulted
            .launch_partitioned(&Countdown, &mut b, 10_000)
            .unwrap();
        assert_eq!(a, b, "lane states identical after failover");
        assert_eq!(faulted.failovers(), 1);
        assert_eq!(faulted.alive_devices(), 3);
        assert_eq!(faulted.health()[1], DeviceHealth::Failed);
        // Per-lane accounting also matches: concatenated executed vectors
        // align with the lane order either way.
        let ex_a: Vec<u32> = sa.into_iter().flat_map(|s| s.executed).collect();
        let ex_b: Vec<u32> = sb.into_iter().flat_map(|s| s.executed).collect();
        assert_eq!(ex_a, ex_b);
        // The replay costs extra simulated wall time.
        assert!(faulted.wall_s() > clean.wall_s());
    }

    #[test]
    fn transient_launch_failure_retries_on_same_device() {
        let plan = FaultPlan::parse("fault 0 0 launch-fail").unwrap();
        let mut multi = MultiGpu::new(device(), 2);
        multi.set_fault_plan(&plan);
        let mut lanes: Vec<u32> = (1..=64u32).collect();
        multi
            .launch_partitioned(&Countdown, &mut lanes, 10_000)
            .unwrap();
        assert!(lanes.iter().all(|&l| l == 0));
        assert_eq!(multi.fault_retries(), 1);
        assert_eq!(multi.failovers(), 0);
        assert_eq!(multi.alive_devices(), 2);
    }

    #[test]
    fn all_devices_lost_is_capacity_error() {
        let plan = FaultPlan::parse("fault 0 0 device-lost\nfault 1 0 device-lost").unwrap();
        let mut multi = MultiGpu::new(device(), 2);
        multi.set_fault_plan(&plan);
        let mut lanes: Vec<u32> = (1..=64u32).collect();
        let err = multi
            .launch_partitioned(&Countdown, &mut lanes, 10_000)
            .expect_err("no survivors");
        assert_eq!(err.kind(), tracto_trace::ErrorKind::Capacity);
        assert!(!err.is_retryable());
        assert_eq!(multi.alive_devices(), 0);
    }

    #[test]
    fn transfer_timeouts_absorbed_and_charged() {
        let plan = FaultPlan::parse("timeout-s 0.5\nfault 1 0 transfer-timeout").unwrap();
        let mut clean = MultiGpu::new(device(), 2);
        let mut faulted = MultiGpu::new(device(), 2);
        faulted.set_fault_plan(&plan);
        clean.broadcast_to_devices(1_000_000);
        faulted.broadcast_to_devices(1_000_000);
        let l_clean = clean.aggregate_ledger();
        let l_faulted = faulted.aggregate_ledger();
        assert_eq!(
            l_clean.bytes_h2d, l_faulted.bytes_h2d,
            "all bytes still arrive"
        );
        assert_eq!(faulted.fault_retries(), 1);
        assert!(
            (faulted.wall_s() - clean.wall_s() - 0.5).abs() < 1e-9,
            "the stall is charged to serialized host time"
        );
    }

    #[test]
    fn transfers_skip_failed_devices() {
        let plan = FaultPlan::parse("fault 0 0 device-lost").unwrap();
        let mut multi = MultiGpu::new(device(), 2);
        multi.set_fault_plan(&plan);
        let mut lanes: Vec<u32> = (1..=64u32).collect();
        multi
            .launch_partitioned(&Countdown, &mut lanes, 10_000)
            .unwrap();
        assert_eq!(multi.alive_devices(), 1);
        multi.scatter_to_devices(1_000_000);
        multi.gather_to_host(1_000_000);
        let l = multi.aggregate_ledger();
        // The surviving device carries the full payload.
        assert_eq!(l.bytes_h2d, 1_000_000);
        assert_eq!(l.bytes_d2h, 1_000_000);
    }

    #[test]
    fn failover_emits_trace_events() {
        use std::sync::Arc;
        use tracto_trace::{RingSink, Tracer};

        let plan = FaultPlan::parse("fault 0 1 device-lost\nfault 1 0 launch-fail").unwrap();
        let ring = Arc::new(RingSink::new(128));
        let mut multi = MultiGpu::new(device(), 2);
        multi.set_tracer(&Tracer::shared(ring.clone()));
        multi.set_fault_plan(&plan);
        let mut lanes: Vec<u32> = (1..=64u32).collect();
        multi.launch_partitioned(&Countdown, &mut lanes, 4).unwrap();
        multi
            .launch_partitioned(&Countdown, &mut lanes, 10_000)
            .unwrap();
        assert_eq!(ring.count("gpu.fault"), 2, "each injected fault traced");
        assert_eq!(ring.count("gpu.failover"), 1);
        assert_eq!(ring.count("gpu.retry"), 1);
        let failover = &ring.named("gpu.failover")[0];
        assert_eq!(failover.field_u64("device"), Some(0));
        assert_eq!(failover.field_u64("survivors"), Some(1));
    }

    #[test]
    fn device_alloc_all_propagates_injected_alloc_fault() {
        let plan = FaultPlan::parse("fault 1 0 alloc-fail").unwrap();
        let mut multi = MultiGpu::new(device(), 2);
        multi.set_fault_plan(&plan);
        let err = multi.device_alloc_all(1024).expect_err("alloc fault");
        assert_eq!(err.kind(), tracto_trace::ErrorKind::Device);
        assert!(err.is_retryable());
        // Rollback: nothing remains charged anywhere.
        assert_eq!(multi.aggregate_ledger().bytes_h2d, 0);
        // The fault was consumed; the retry succeeds on every device.
        multi.device_alloc_all(1024).expect("retry clean");
    }
}
