//! Multi-GPU extension.
//!
//! The paper's conclusion: "Our GPU-based framework has considerable
//! scalability, since the communication of parallel threads is negligible.
//! Little adaptation is needed to extend the current implementation to the
//! multi-GPU version, and proportional performance gains can be expected."
//! This module builds that version: lanes partition across `n` simulated
//! devices, each device runs its shard independently (kernel time is the
//! maximum across devices — they execute concurrently), while the single
//! host bus serializes transfers and the single CPU serializes reductions.

use crate::device::DeviceConfig;
use crate::fault::{DeviceHealth, FaultPlan};
use crate::kernel::{Gpu, LaunchStats, SimKernel};
use crate::ledger::TimingLedger;
use crate::stream::{ChargeSpan, StreamClock};
use tracto_trace::{Tracer, TractoError, TractoResult};

/// A group of identical simulated devices sharing one host.
///
/// Device faults injected by a [`FaultPlan`] are absorbed here where
/// possible: transient launch failures and transfer timeouts retry on the
/// same device, and a lost device's lane shard fails over to the survivors
/// (see [`launch_partitioned`](Self::launch_partitioned)). Only allocation
/// faults and the loss of *every* device escape to the caller.
///
/// Wall time is kept by a pool-level [`StreamClock`] with one compute
/// resource and one PCIe link per device plus one shared host CPU. The
/// legacy collective operations charge stream 0 — the serialized host loop
/// this pool always modelled — while the `stream_*` operations let callers
/// pin independent work to distinct streams so one job's transfers and
/// reductions hide behind another's kernels.
#[derive(Debug)]
pub struct MultiGpu {
    devices: Vec<Gpu>,
    clock: StreamClock,
    failovers: u64,
    fault_retries: u64,
    tracer: Tracer,
}

impl MultiGpu {
    /// Bring up `n` identical devices.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`; fallible callers use
    /// [`try_new`](Self::try_new).
    pub fn new(config: DeviceConfig, n: usize) -> Self {
        MultiGpu::try_new(config, n).expect("need at least one device")
    }

    /// Bring up `n` identical devices, rejecting `n == 0` with
    /// [`TractoError::Config`].
    pub fn try_new(config: DeviceConfig, n: usize) -> TractoResult<Self> {
        if n == 0 {
            return Err(TractoError::config("device pool needs at least one device"));
        }
        Ok(MultiGpu {
            devices: (0..n).map(|_| Gpu::new(config.clone())).collect(),
            clock: StreamClock::new(),
            failovers: 0,
            fault_retries: 0,
            tracer: Tracer::disabled(),
        })
    }

    /// Pool-clock resource id of device `d`'s compute engine.
    fn res_gpu(&self, d: usize) -> usize {
        d
    }

    /// Pool-clock resource id of device `d`'s PCIe link.
    fn res_dma(&self, d: usize) -> usize {
        self.devices.len() + d
    }

    /// Pool-clock resource id of the one shared host CPU.
    fn res_cpu(&self) -> usize {
        2 * self.devices.len()
    }

    /// Number of devices (including failed ones).
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// Number of devices still able to execute work (healthy or degraded).
    pub fn alive_devices(&self) -> usize {
        self.devices
            .iter()
            .filter(|d| d.health() != DeviceHealth::Failed)
            .count()
    }

    /// Per-device health, indexed by device id.
    pub fn health(&self) -> Vec<DeviceHealth> {
        self.devices.iter().map(|d| d.health()).collect()
    }

    /// How many lane shards have been re-partitioned off a lost device.
    pub fn failovers(&self) -> u64 {
        self.failovers
    }

    /// How many transient faults were absorbed by same-device retries.
    pub fn fault_retries(&self) -> u64 {
        self.fault_retries
    }

    /// Total faults injected across the pool so far.
    pub fn faults_injected(&self) -> u64 {
        self.devices.iter().map(|d| d.faults_injected()).sum()
    }

    /// Install a fault plan: device `d` receives the plan's events
    /// addressed to device `d`.
    pub fn set_fault_plan(&mut self, plan: &FaultPlan) {
        for (d, gpu) in self.devices.iter_mut().enumerate() {
            gpu.set_fault_plan(plan, d as u32);
        }
    }

    /// Attach a tracer to every device; device `d`'s events carry
    /// `device=d`.
    pub fn set_tracer(&mut self, tracer: &Tracer) {
        self.tracer = tracer.clone();
        for (d, gpu) in self.devices.iter_mut().enumerate() {
            gpu.set_tracer(tracer.clone(), d as u32);
        }
    }

    /// Indices of devices that can still execute work.
    fn alive_indices(&self) -> Vec<usize> {
        self.devices
            .iter()
            .enumerate()
            .filter(|(_, d)| d.health() != DeviceHealth::Failed)
            .map(|(i, _)| i)
            .collect()
    }

    /// All devices lost: the pool can no longer run anything.
    fn pool_exhausted() -> TractoError {
        TractoError::capacity("gpu devices", 1, 0)
    }

    /// Launch a kernel with lanes partitioned round-robin-contiguously
    /// (device `d` gets the `d`-th contiguous shard). Returns per-shard
    /// launch stats whose concatenated `executed`/`finished` vectors align
    /// with `lanes` in order; lanes are mutated in place.
    ///
    /// Simulated wall time advances by the **maximum** shard kernel time
    /// per round — devices run concurrently.
    ///
    /// Fault handling: a transient launch failure retries on the same
    /// device (the failed attempt's overhead is charged). A lost device
    /// triggers failover — its shard and every not-yet-launched shard of
    /// the round are re-partitioned across the surviving devices and
    /// replayed. Because faults fire before any lane is stepped, the
    /// failed-over replay produces results bit-identical to a fault-free
    /// run. Errors with [`TractoError::Capacity`] only when no device
    /// remains.
    pub fn launch_partitioned<K: SimKernel>(
        &mut self,
        kernel: &K,
        lanes: &mut [K::Lane],
        max_iters: u32,
    ) -> TractoResult<Vec<LaunchStats>> {
        let mut stats = Vec::with_capacity(self.devices.len());
        let mut rest: &mut [K::Lane] = lanes;
        loop {
            if rest.is_empty() {
                return Ok(stats);
            }
            let alive = self.alive_indices();
            if alive.is_empty() {
                return Err(Self::pool_exhausted());
            }
            let shard = rest.len().div_ceil(alive.len()).max(1);
            // One group charge per round: each device's time this round
            // (including failed attempts) on its own compute resource,
            // advancing stream 0 by the slowest — devices run concurrently.
            let mut round_parts: Vec<(usize, f64)> = Vec::with_capacity(alive.len());
            let mut done_lanes = 0usize;
            let mut lost_device: Option<usize> = None;
            for (k, chunk) in rest.chunks_mut(shard).enumerate() {
                let d = alive[k];
                let t0 = self.devices[d].clock_s();
                let outcome = loop {
                    match self.devices[d].try_launch(kernel, chunk, max_iters) {
                        Ok(s) => break Ok(s),
                        Err(e) if self.devices[d].health() == DeviceHealth::Failed => {
                            break Err(e);
                        }
                        Err(_) => {
                            // Transient launch failure: retry on the same
                            // device. Bounded — every fault event fires at
                            // most once.
                            self.fault_retries += 1;
                            if self.tracer.enabled() {
                                self.tracer.emit(
                                    "gpu.retry",
                                    &[("device", (d as u32).into()), ("op", "launch".into())],
                                );
                            }
                        }
                    }
                };
                // Device time spent this round, including failed attempts.
                let gpu_res = self.res_gpu(d);
                round_parts.push((gpu_res, self.devices[d].clock_s() - t0));
                match outcome {
                    Ok(s) => {
                        done_lanes += chunk.len();
                        stats.push(s);
                    }
                    Err(_) => {
                        lost_device = Some(d);
                        break;
                    }
                }
            }
            self.clock.charge_group(0, &round_parts);
            let Some(d) = lost_device else {
                return Ok(stats);
            };
            // Failover: re-partition everything not yet executed (the lost
            // device's untouched shard plus any shards after it) across the
            // survivors on the next round.
            self.failovers += 1;
            if self.tracer.enabled() {
                self.tracer.emit(
                    "gpu.failover",
                    &[
                        ("device", (d as u32).into()),
                        ("orphaned_lanes", (rest.len() - done_lanes).into()),
                        ("survivors", self.alive_devices().into()),
                    ],
                );
            }
            let r = std::mem::take(&mut rest);
            rest = &mut r[done_lanes..];
        }
    }

    /// Run one serialized host-bus transfer on device `i` via `op`,
    /// absorbing transient timeouts by retrying (each stall is charged to
    /// serialized host time). Gives up only if the device fails outright.
    fn transfer_with_retry(
        &mut self,
        i: usize,
        op: impl Fn(&mut Gpu) -> TractoResult<f64>,
        label: &'static str,
    ) {
        let dma = self.res_dma(i);
        loop {
            let d = &mut self.devices[i];
            if d.health() == DeviceHealth::Failed {
                return;
            }
            let before = d.clock_s();
            match op(d) {
                Ok(t) => {
                    self.clock.charge(0, dma, t);
                    return;
                }
                Err(_) => {
                    // Timed-out transfer: the stall was charged to the
                    // device clock; mirror it into serialized host time and
                    // retry.
                    let stall = self.devices[i].clock_s() - before;
                    self.clock.charge(0, dma, stall);
                    self.fault_retries += 1;
                    if self.tracer.enabled() {
                        self.tracer.emit(
                            "gpu.retry",
                            &[("device", (i as u32).into()), ("op", label.into())],
                        );
                    }
                }
            }
        }
    }

    /// Broadcast an upload (e.g. the sample volume) to every live device
    /// over the shared bus: the bus serializes, so cost is `alive ×` one
    /// transfer.
    pub fn broadcast_to_devices(&mut self, bytes: u64) {
        for i in 0..self.devices.len() {
            self.transfer_with_retry(i, |d| d.try_transfer_to_device(bytes), "broadcast");
        }
    }

    /// Upload distinct shards (e.g. start points): total bytes split across
    /// live devices, one serialized transfer each.
    pub fn scatter_to_devices(&mut self, total_bytes: u64) {
        let n = self.alive_devices().max(1) as u64;
        for i in 0..self.devices.len() {
            self.transfer_with_retry(i, |d| d.try_transfer_to_device(total_bytes / n), "scatter");
        }
    }

    /// Read each live device's shard back.
    pub fn gather_to_host(&mut self, total_bytes: u64) {
        let n = self.alive_devices().max(1) as u64;
        for i in 0..self.devices.len() {
            self.transfer_with_retry(i, |d| d.try_transfer_to_host(total_bytes / n), "gather");
        }
    }

    /// Host reduction over all live shards (serialized on the one CPU).
    pub fn host_reduction(&mut self, elements: u64) {
        let n = self.alive_devices().max(1) as u64;
        let cpu = self.res_cpu();
        for d in &mut self.devices {
            if d.health() == DeviceHealth::Failed {
                continue;
            }
            let t = d.host_reduction(elements / n);
            self.clock.charge(0, cpu, t);
        }
    }

    /// Reserve `bytes` on every live device (replicated residency, e.g.
    /// each device holding the full sample-volume stack). On failure the
    /// devices already charged are rolled back and the error is returned:
    /// [`TractoError::Capacity`] for genuine exhaustion, retryable
    /// [`TractoError::Device`] for an injected allocation fault.
    pub fn device_alloc_all(&mut self, bytes: u64) -> Result<(), TractoError> {
        if self.alive_devices() == 0 {
            return Err(Self::pool_exhausted());
        }
        let mut charged: Vec<usize> = Vec::new();
        for i in 0..self.devices.len() {
            if self.devices[i].health() == DeviceHealth::Failed {
                continue;
            }
            if let Err(err) = self.devices[i].device_alloc(bytes) {
                for &j in &charged {
                    self.devices[j].device_free(bytes);
                }
                return Err(err);
            }
            charged.push(i);
        }
        Ok(())
    }

    /// Release a replicated reservation on every device.
    pub fn device_free_all(&mut self, bytes: u64) {
        for d in &mut self.devices {
            d.device_free(bytes);
        }
    }

    /// Aggregate ledger (sums across devices — device-seconds, not wall).
    pub fn aggregate_ledger(&self) -> TimingLedger {
        let mut total = TimingLedger::default();
        for d in &self.devices {
            total.merge(d.ledger());
        }
        total
    }

    /// Simulated wall-clock makespan: concurrent kernels, overlapped
    /// streams, serialized per-link transfers and CPU reductions.
    pub fn wall_s(&self) -> f64 {
        self.clock.makespan_s()
    }

    /// Per-device ledgers.
    pub fn device_ledgers(&self) -> Vec<TimingLedger> {
        self.devices.iter().map(|d| *d.ledger()).collect()
    }

    /// What this pool's charges would have cost on the serialized
    /// single-stream path (concurrent device rounds still overlap).
    pub fn serial_s(&self) -> f64 {
        self.clock.serial_s()
    }

    /// Wall time hidden by multi-stream overlap: `serial − wall` (0 when
    /// everything ran through the legacy stream-0 path).
    pub fn overlap_saved_s(&self) -> f64 {
        self.clock.saved_s()
    }

    /// Stream occupancy `serial / wall` (1.0 when serialized, > 1 when
    /// streams overlapped).
    pub fn occupancy(&self) -> f64 {
        self.clock.occupancy()
    }

    /// The pool's stream clock.
    pub fn stream_clock(&self) -> &StreamClock {
        &self.clock
    }

    /// First alive device at or after `from` (wrapping); `None` when the
    /// pool is exhausted.
    pub fn next_alive_device(&self, from: usize) -> Option<usize> {
        let n = self.devices.len();
        (0..n)
            .map(|k| (from + k) % n)
            .find(|&d| self.devices[d].health() != DeviceHealth::Failed)
    }

    /// Emit a `gpu.stream` event for one pool-level stream segment.
    fn emit_stream_event(
        &self,
        segment: &'static str,
        stream: usize,
        device: usize,
        span: ChargeSpan,
    ) {
        if self.tracer.enabled() {
            self.tracer.emit_sim(
                "gpu.stream",
                span.end_s,
                &[
                    ("device", (device as u32).into()),
                    ("stream", stream.into()),
                    ("segment", segment.into()),
                    ("start_s", span.start_s.into()),
                    ("duration_s", span.duration_s().into()),
                    ("hidden_s", span.hidden_s.into()),
                ],
            );
        }
    }

    /// Reserve `bytes` on one device (streamed residency: each stream's
    /// jobs live only on their pinned device).
    pub fn stream_alloc(&mut self, device: usize, bytes: u64) -> Result<(), TractoError> {
        self.devices[device].device_alloc(bytes)
    }

    /// Release a per-device reservation.
    pub fn stream_free(&mut self, device: usize, bytes: u64) {
        self.devices[device].device_free(bytes);
    }

    /// Upload `bytes` to `device` on `stream`, charged to that device's
    /// PCIe link — transfers to *other* devices and all kernels overlap.
    /// Transient timeouts retry on the same device (stalls charged to the
    /// stream); errors only if the device has failed.
    pub fn stream_upload(&mut self, stream: usize, device: usize, bytes: u64) -> TractoResult<f64> {
        self.stream_transfer(stream, device, bytes, false)
    }

    /// Read `bytes` back from `device` on `stream` (see
    /// [`stream_upload`](Self::stream_upload)).
    pub fn stream_readback(
        &mut self,
        stream: usize,
        device: usize,
        bytes: u64,
    ) -> TractoResult<f64> {
        self.stream_transfer(stream, device, bytes, true)
    }

    fn stream_transfer(
        &mut self,
        stream: usize,
        device: usize,
        bytes: u64,
        to_host: bool,
    ) -> TractoResult<f64> {
        let dma = self.res_dma(device);
        let (label, segment): (&'static str, &'static str) = if to_host {
            ("stream-readback", "d2h")
        } else {
            ("stream-upload", "h2d")
        };
        loop {
            let d = &mut self.devices[device];
            let before = d.clock_s();
            let outcome = if to_host {
                d.try_transfer_to_host(bytes)
            } else {
                d.try_transfer_to_device(bytes)
            };
            match outcome {
                Ok(t) => {
                    let span = self.clock.charge(stream, dma, t);
                    self.emit_stream_event(segment, stream, device, span);
                    return Ok(t);
                }
                Err(e) if self.devices[device].health() == DeviceHealth::Failed => {
                    return Err(e);
                }
                Err(_) => {
                    let stall = self.devices[device].clock_s() - before;
                    self.clock.charge(stream, dma, stall);
                    self.fault_retries += 1;
                    if self.tracer.enabled() {
                        self.tracer.emit(
                            "gpu.retry",
                            &[("device", (device as u32).into()), ("op", label.into())],
                        );
                    }
                }
            }
        }
    }

    /// Launch `kernel` over `lanes` on one device, charged to `stream` on
    /// that device's compute resource — kernels of other devices and
    /// transfers of other streams overlap. Transient launch failures retry
    /// on the same device; a lost device returns the error with lanes
    /// untouched so the caller can fail over (see
    /// [`stream_failover`](Self::stream_failover)) and replay
    /// bit-identically.
    pub fn stream_launch<K: SimKernel>(
        &mut self,
        stream: usize,
        device: usize,
        kernel: &K,
        lanes: &mut [K::Lane],
        max_iters: u32,
    ) -> TractoResult<LaunchStats> {
        let gpu_res = self.res_gpu(device);
        loop {
            let d = &mut self.devices[device];
            let before = d.clock_s();
            match d.try_launch(kernel, lanes, max_iters) {
                Ok(stats) => {
                    let spent = self.devices[device].clock_s() - before;
                    let span = self.clock.charge(stream, gpu_res, spent);
                    self.emit_stream_event("kernel", stream, device, span);
                    return Ok(stats);
                }
                Err(e) if self.devices[device].health() == DeviceHealth::Failed => {
                    // Charge the failed attempt's overhead before erroring.
                    let spent = self.devices[device].clock_s() - before;
                    self.clock.charge(stream, gpu_res, spent);
                    return Err(e);
                }
                Err(_) => {
                    let spent = self.devices[device].clock_s() - before;
                    self.clock.charge(stream, gpu_res, spent);
                    self.fault_retries += 1;
                    if self.tracer.enabled() {
                        self.tracer.emit(
                            "gpu.retry",
                            &[
                                ("device", (device as u32).into()),
                                ("op", "stream-launch".into()),
                            ],
                        );
                    }
                }
            }
        }
    }

    /// Host reduction over one stream's shard, charged to `stream` on the
    /// shared CPU — reductions of different streams serialize (reduction
    /// *order* is the caller's, preserving bit-identity), but hide behind
    /// kernels and transfers of other streams.
    pub fn stream_reduce(&mut self, stream: usize, device: usize, elements: u64) -> f64 {
        let cpu = self.res_cpu();
        let t = self.devices[device].host_reduction(elements);
        let span = self.clock.charge(stream, cpu, t);
        self.emit_stream_event("reduce", stream, device, span);
        t
    }

    /// A stream's device was lost: pick the next alive device (wrapping),
    /// count the failover, and emit the `gpu.failover` trace event. Errors
    /// with [`TractoError::Capacity`] when no device remains.
    pub fn stream_failover(&mut self, from: usize, orphaned_lanes: usize) -> TractoResult<usize> {
        let Some(next) = self.next_alive_device(from) else {
            return Err(Self::pool_exhausted());
        };
        self.failovers += 1;
        if self.tracer.enabled() {
            self.tracer.emit(
                "gpu.failover",
                &[
                    ("device", (from as u32).into()),
                    ("orphaned_lanes", orphaned_lanes.into()),
                    ("survivors", self.alive_devices().into()),
                ],
            );
        }
        Ok(next)
    }
}

/// Strong-scaling summary for a workload run at several device counts.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingPoint {
    /// Device count.
    pub devices: usize,
    /// Simulated wall seconds.
    pub wall_s: f64,
    /// Speedup over one device.
    pub speedup: f64,
    /// Parallel efficiency (`speedup / devices`).
    pub efficiency: f64,
}

/// Compute scaling points from `(devices, wall_s)` measurements.
pub fn scaling_summary(measurements: &[(usize, f64)]) -> Vec<ScalingPoint> {
    assert!(!measurements.is_empty());
    let base = measurements
        .iter()
        .find(|(n, _)| *n == 1)
        .map(|(_, t)| *t)
        .unwrap_or(measurements[0].1);
    measurements
        .iter()
        .map(|&(devices, wall_s)| {
            let speedup = base / wall_s;
            ScalingPoint {
                devices,
                wall_s,
                speedup,
                efficiency: speedup / devices as f64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::LaneStatus;

    struct Countdown;
    impl SimKernel for Countdown {
        type Lane = u32;
        fn step(&self, lane: &mut u32) -> LaneStatus {
            if *lane > 1 {
                *lane -= 1;
                LaneStatus::Continue
            } else {
                *lane = 0;
                LaneStatus::Finished
            }
        }
    }

    fn device() -> DeviceConfig {
        DeviceConfig {
            wavefront_size: 4,
            num_compute_units: 2,
            waves_per_cu: 2,
            ..DeviceConfig::radeon_5870()
        }
    }

    fn balanced_loads(n: usize) -> Vec<u32> {
        vec![100u32; n]
    }

    #[test]
    fn results_identical_across_device_counts() {
        for n in [1usize, 2, 4] {
            let mut multi = MultiGpu::new(device(), n);
            let mut lanes = (1..=257u32).collect::<Vec<_>>();
            multi
                .launch_partitioned(&Countdown, &mut lanes, 10_000)
                .unwrap();
            assert!(
                lanes.iter().all(|&l| l == 0),
                "all lanes completed on {n} devices"
            );
        }
    }

    #[test]
    fn kernels_overlap_across_devices() {
        let mut one = MultiGpu::new(device(), 1);
        let mut four = MultiGpu::new(device(), 4);
        let mut a = balanced_loads(1024);
        let mut b = balanced_loads(1024);
        one.launch_partitioned(&Countdown, &mut a, 10_000).unwrap();
        four.launch_partitioned(&Countdown, &mut b, 10_000).unwrap();
        // Proportional gains: 4 devices ≈ 4× faster on balanced loads
        // (modulo the fixed launch overhead).
        let ratio = one.wall_s() / four.wall_s();
        assert!(ratio > 3.0, "scaling ratio {ratio:.2}");
        // Total device-seconds are roughly conserved.
        let l1 = one.aggregate_ledger();
        let l4 = four.aggregate_ledger();
        assert_eq!(l1.useful_iterations, l4.useful_iterations);
    }

    #[test]
    fn host_work_serializes() {
        let mut multi = MultiGpu::new(device(), 4);
        multi.broadcast_to_devices(1_000_000);
        // Broadcast over a shared bus costs ~4 single transfers.
        let single = device().pcie.transfer_seconds(1_000_000);
        assert!((multi.wall_s() - 4.0 * single).abs() < 1e-9);
    }

    #[test]
    fn scatter_and_gather_split_bytes() {
        let mut multi = MultiGpu::new(device(), 2);
        multi.scatter_to_devices(1_000_000);
        multi.gather_to_host(1_000_000);
        let l = multi.aggregate_ledger();
        assert_eq!(l.bytes_h2d, 1_000_000);
        assert_eq!(l.bytes_d2h, 1_000_000);
    }

    #[test]
    fn scaling_summary_math() {
        let pts = scaling_summary(&[(1, 8.0), (2, 4.2), (4, 2.4)]);
        assert_eq!(pts[0].speedup, 1.0);
        assert!((pts[1].speedup - 8.0 / 4.2).abs() < 1e-12);
        assert!(pts[2].efficiency < 1.0 && pts[2].efficiency > 0.7);
    }

    #[test]
    fn reduction_split_across_shards() {
        let mut multi = MultiGpu::new(device(), 4);
        multi.host_reduction(4000);
        let l = multi.aggregate_ledger();
        // Total elements reduced = 4000 regardless of device count.
        assert!((l.reduction_s - device().reduction_seconds(4000)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_devices_rejected() {
        let _ = MultiGpu::new(device(), 0);
    }

    #[test]
    fn try_new_rejects_zero_devices_with_config_error() {
        let err = MultiGpu::try_new(device(), 0).expect_err("zero devices");
        assert_eq!(err.kind(), tracto_trace::ErrorKind::Config);
        assert!(MultiGpu::try_new(device(), 1).is_ok());
    }

    /// A device loss mid-launch fails over to the survivors and the lane
    /// results are bit-identical to the fault-free run.
    #[test]
    fn failover_preserves_results_bit_identically() {
        let plan = FaultPlan::parse("fault 1 0 device-lost").unwrap();
        let mut clean = MultiGpu::new(device(), 4);
        let mut faulted = MultiGpu::new(device(), 4);
        faulted.set_fault_plan(&plan);

        let mut a: Vec<u32> = (1..=257u32).collect();
        let mut b = a.clone();
        let sa = clean
            .launch_partitioned(&Countdown, &mut a, 10_000)
            .unwrap();
        let sb = faulted
            .launch_partitioned(&Countdown, &mut b, 10_000)
            .unwrap();
        assert_eq!(a, b, "lane states identical after failover");
        assert_eq!(faulted.failovers(), 1);
        assert_eq!(faulted.alive_devices(), 3);
        assert_eq!(faulted.health()[1], DeviceHealth::Failed);
        // Per-lane accounting also matches: concatenated executed vectors
        // align with the lane order either way.
        let ex_a: Vec<u32> = sa.into_iter().flat_map(|s| s.executed).collect();
        let ex_b: Vec<u32> = sb.into_iter().flat_map(|s| s.executed).collect();
        assert_eq!(ex_a, ex_b);
        // The replay costs extra simulated wall time.
        assert!(faulted.wall_s() > clean.wall_s());
    }

    #[test]
    fn transient_launch_failure_retries_on_same_device() {
        let plan = FaultPlan::parse("fault 0 0 launch-fail").unwrap();
        let mut multi = MultiGpu::new(device(), 2);
        multi.set_fault_plan(&plan);
        let mut lanes: Vec<u32> = (1..=64u32).collect();
        multi
            .launch_partitioned(&Countdown, &mut lanes, 10_000)
            .unwrap();
        assert!(lanes.iter().all(|&l| l == 0));
        assert_eq!(multi.fault_retries(), 1);
        assert_eq!(multi.failovers(), 0);
        assert_eq!(multi.alive_devices(), 2);
    }

    #[test]
    fn all_devices_lost_is_capacity_error() {
        let plan = FaultPlan::parse("fault 0 0 device-lost\nfault 1 0 device-lost").unwrap();
        let mut multi = MultiGpu::new(device(), 2);
        multi.set_fault_plan(&plan);
        let mut lanes: Vec<u32> = (1..=64u32).collect();
        let err = multi
            .launch_partitioned(&Countdown, &mut lanes, 10_000)
            .expect_err("no survivors");
        assert_eq!(err.kind(), tracto_trace::ErrorKind::Capacity);
        assert!(!err.is_retryable());
        assert_eq!(multi.alive_devices(), 0);
    }

    #[test]
    fn transfer_timeouts_absorbed_and_charged() {
        let plan = FaultPlan::parse("timeout-s 0.5\nfault 1 0 transfer-timeout").unwrap();
        let mut clean = MultiGpu::new(device(), 2);
        let mut faulted = MultiGpu::new(device(), 2);
        faulted.set_fault_plan(&plan);
        clean.broadcast_to_devices(1_000_000);
        faulted.broadcast_to_devices(1_000_000);
        let l_clean = clean.aggregate_ledger();
        let l_faulted = faulted.aggregate_ledger();
        assert_eq!(
            l_clean.bytes_h2d, l_faulted.bytes_h2d,
            "all bytes still arrive"
        );
        assert_eq!(faulted.fault_retries(), 1);
        assert!(
            (faulted.wall_s() - clean.wall_s() - 0.5).abs() < 1e-9,
            "the stall is charged to serialized host time"
        );
    }

    #[test]
    fn transfers_skip_failed_devices() {
        let plan = FaultPlan::parse("fault 0 0 device-lost").unwrap();
        let mut multi = MultiGpu::new(device(), 2);
        multi.set_fault_plan(&plan);
        let mut lanes: Vec<u32> = (1..=64u32).collect();
        multi
            .launch_partitioned(&Countdown, &mut lanes, 10_000)
            .unwrap();
        assert_eq!(multi.alive_devices(), 1);
        multi.scatter_to_devices(1_000_000);
        multi.gather_to_host(1_000_000);
        let l = multi.aggregate_ledger();
        // The surviving device carries the full payload.
        assert_eq!(l.bytes_h2d, 1_000_000);
        assert_eq!(l.bytes_d2h, 1_000_000);
    }

    #[test]
    fn failover_emits_trace_events() {
        use std::sync::Arc;
        use tracto_trace::{RingSink, Tracer};

        let plan = FaultPlan::parse("fault 0 1 device-lost\nfault 1 0 launch-fail").unwrap();
        let ring = Arc::new(RingSink::new(128));
        let mut multi = MultiGpu::new(device(), 2);
        multi.set_tracer(&Tracer::shared(ring.clone()));
        multi.set_fault_plan(&plan);
        let mut lanes: Vec<u32> = (1..=64u32).collect();
        multi.launch_partitioned(&Countdown, &mut lanes, 4).unwrap();
        multi
            .launch_partitioned(&Countdown, &mut lanes, 10_000)
            .unwrap();
        assert_eq!(ring.count("gpu.fault"), 2, "each injected fault traced");
        assert_eq!(ring.count("gpu.failover"), 1);
        assert_eq!(ring.count("gpu.retry"), 1);
        let failover = &ring.named("gpu.failover")[0];
        assert_eq!(failover.field_u64("device"), Some(0));
        assert_eq!(failover.field_u64("survivors"), Some(1));
    }

    fn run_job(multi: &mut MultiGpu, stream: usize, device: usize, lanes: &mut [u32]) {
        multi.stream_upload(stream, device, 1_000_000).unwrap();
        multi
            .stream_launch(stream, device, &Countdown, lanes, 10_000)
            .unwrap();
        multi.stream_readback(stream, device, 500_000).unwrap();
        multi.stream_reduce(stream, device, lanes.len() as u64);
    }

    #[test]
    fn streams_hide_one_jobs_host_work_behind_anothers_kernels() {
        let mut serialized = MultiGpu::new(device(), 2);
        let mut streamed = MultiGpu::new(device(), 2);
        let mut a0 = balanced_loads(256);
        let mut a1 = balanced_loads(256);
        let mut b0 = a0.clone();
        let mut b1 = a1.clone();
        // Same jobs, same devices; the only difference is the stream id.
        run_job(&mut serialized, 0, 0, &mut a0);
        run_job(&mut serialized, 0, 1, &mut a1);
        run_job(&mut streamed, 0, 0, &mut b0);
        run_job(&mut streamed, 1, 1, &mut b1);
        assert_eq!(a0, b0);
        assert_eq!(a1, b1);
        assert!(
            streamed.wall_s() < serialized.wall_s(),
            "streamed {0} vs serialized {1}",
            streamed.wall_s(),
            serialized.wall_s()
        );
        assert!(streamed.overlap_saved_s() > 0.0);
        assert_eq!(serialized.overlap_saved_s(), 0.0);
        assert_eq!(
            streamed.serial_s(),
            serialized.wall_s(),
            "the serialized view of the streamed run is the stream-0 wall"
        );
        assert!(streamed.occupancy() > 1.0);
    }

    #[test]
    fn stream_failover_replays_bit_identically() {
        let plan = FaultPlan::parse("fault 1 0 device-lost").unwrap();
        let mut clean = MultiGpu::new(device(), 2);
        let mut faulted = MultiGpu::new(device(), 2);
        faulted.set_fault_plan(&plan);
        let mut a: Vec<u32> = (1..=64u32).collect();
        let mut b = a.clone();
        clean
            .stream_launch(0, 1, &Countdown, &mut a, 10_000)
            .unwrap();
        let err = faulted
            .stream_launch(0, 1, &Countdown, &mut b, 10_000)
            .expect_err("device 1 lost before stepping lanes");
        assert_eq!(err.kind(), tracto_trace::ErrorKind::Device);
        assert_eq!(b, (1..=64u32).collect::<Vec<_>>(), "lanes untouched");
        let next = faulted.stream_failover(1, b.len()).expect("a survivor");
        assert_eq!(next, 0);
        faulted
            .stream_launch(0, next, &Countdown, &mut b, 10_000)
            .unwrap();
        assert_eq!(a, b, "replay on the failover device is bit-identical");
        assert_eq!(faulted.failovers(), 1);
        assert_eq!(faulted.alive_devices(), 1);
    }

    #[test]
    fn stream_failover_with_no_survivors_is_capacity_error() {
        let plan = FaultPlan::parse("fault 0 0 device-lost").unwrap();
        let mut multi = MultiGpu::new(device(), 1);
        multi.set_fault_plan(&plan);
        let mut lanes = vec![4u32; 8];
        multi
            .stream_launch(0, 0, &Countdown, &mut lanes, 10)
            .expect_err("only device lost");
        let err = multi
            .stream_failover(0, lanes.len())
            .expect_err("exhausted");
        assert_eq!(err.kind(), tracto_trace::ErrorKind::Capacity);
    }

    #[test]
    fn stream_ops_emit_stream_events_with_device_and_hidden_time() {
        use std::sync::Arc;
        use tracto_trace::{RingSink, Tracer};

        let ring = Arc::new(RingSink::new(128));
        let mut multi = MultiGpu::new(device(), 2);
        multi.set_tracer(&Tracer::shared(ring.clone()));
        let mut l0 = balanced_loads(256);
        let mut l1 = balanced_loads(256);
        run_job(&mut multi, 0, 0, &mut l0);
        run_job(&mut multi, 1, 1, &mut l1);
        let events = ring.named("gpu.stream");
        assert_eq!(events.len(), 8, "4 segments per job");
        assert!(events
            .iter()
            .any(|e| e.field_u64("stream") == Some(1) && e.field_u64("device") == Some(1)));
        // Stream 1's upload runs on device 1's own link while stream 0
        // works: fully hidden.
        let s1_upload = events
            .iter()
            .find(|e| {
                e.field_u64("stream") == Some(1)
                    && e.field("segment") == Some(&tracto_trace::Value::Str("h2d"))
            })
            .expect("stream 1 upload traced");
        let dur = s1_upload.field_f64("duration_s").unwrap();
        let hidden = s1_upload.field_f64("hidden_s").unwrap();
        assert!((hidden - dur).abs() < 1e-15);
    }

    #[test]
    fn device_alloc_all_propagates_injected_alloc_fault() {
        let plan = FaultPlan::parse("fault 1 0 alloc-fail").unwrap();
        let mut multi = MultiGpu::new(device(), 2);
        multi.set_fault_plan(&plan);
        let err = multi.device_alloc_all(1024).expect_err("alloc fault");
        assert_eq!(err.kind(), tracto_trace::ErrorKind::Device);
        assert!(err.is_retryable());
        // Rollback: nothing remains charged anywhere.
        assert_eq!(multi.aggregate_ledger().bytes_h2d, 0);
        // The fault was consumed; the retry succeeds on every device.
        multi.device_alloc_all(1024).expect("retry clean");
    }
}
