//! Multi-GPU extension.
//!
//! The paper's conclusion: "Our GPU-based framework has considerable
//! scalability, since the communication of parallel threads is negligible.
//! Little adaptation is needed to extend the current implementation to the
//! multi-GPU version, and proportional performance gains can be expected."
//! This module builds that version: lanes partition across `n` simulated
//! devices, each device runs its shard independently (kernel time is the
//! maximum across devices — they execute concurrently), while the single
//! host bus serializes transfers and the single CPU serializes reductions.

use crate::device::DeviceConfig;
use crate::kernel::{Gpu, LaunchStats, SimKernel};
use crate::ledger::TimingLedger;
use tracto_trace::{Tracer, TractoError};

/// A group of identical simulated devices sharing one host.
#[derive(Debug)]
pub struct MultiGpu {
    devices: Vec<Gpu>,
    // Aggregate wall view: kernels overlap across devices, host work is
    // serialized.
    kernel_wall_s: f64,
    host_serial_s: f64,
}

impl MultiGpu {
    /// Bring up `n` identical devices.
    pub fn new(config: DeviceConfig, n: usize) -> Self {
        assert!(n >= 1, "need at least one device");
        MultiGpu {
            devices: (0..n).map(|_| Gpu::new(config.clone())).collect(),
            kernel_wall_s: 0.0,
            host_serial_s: 0.0,
        }
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// Attach a tracer to every device; device `d`'s events carry
    /// `device=d`.
    pub fn set_tracer(&mut self, tracer: &Tracer) {
        for (d, gpu) in self.devices.iter_mut().enumerate() {
            gpu.set_tracer(tracer.clone(), d as u32);
        }
    }

    /// Launch a kernel with lanes partitioned round-robin-contiguously
    /// (device `d` gets the `d`-th contiguous shard). Returns per-device
    /// launch stats; lanes are mutated in place.
    ///
    /// Simulated wall time advances by the **maximum** shard kernel time —
    /// devices run concurrently.
    pub fn launch_partitioned<K: SimKernel>(
        &mut self,
        kernel: &K,
        lanes: &mut [K::Lane],
        max_iters: u32,
    ) -> Vec<LaunchStats> {
        let n = self.devices.len();
        let shard = lanes.len().div_ceil(n).max(1);
        let mut stats = Vec::with_capacity(n);
        let mut slowest = 0.0f64;
        for (d, chunk) in lanes.chunks_mut(shard).enumerate() {
            let s = self.devices[d].launch(kernel, chunk, max_iters);
            slowest = slowest.max(s.kernel_s);
            stats.push(s);
        }
        self.kernel_wall_s += slowest;
        stats
    }

    /// Broadcast an upload (e.g. the sample volume) to every device over
    /// the shared bus: the bus serializes, so cost is `n ×` one transfer.
    pub fn broadcast_to_devices(&mut self, bytes: u64) {
        for d in &mut self.devices {
            let t = d.transfer_to_device(bytes);
            self.host_serial_s += t;
        }
    }

    /// Upload distinct shards (e.g. start points): total bytes split across
    /// devices, one serialized transfer each.
    pub fn scatter_to_devices(&mut self, total_bytes: u64) {
        let n = self.devices.len() as u64;
        for d in &mut self.devices {
            let t = d.transfer_to_device(total_bytes / n);
            self.host_serial_s += t;
        }
    }

    /// Read each device's shard back.
    pub fn gather_to_host(&mut self, total_bytes: u64) {
        let n = self.devices.len() as u64;
        for d in &mut self.devices {
            let t = d.transfer_to_host(total_bytes / n);
            self.host_serial_s += t;
        }
    }

    /// Host reduction over all shards (serialized on the one CPU).
    pub fn host_reduction(&mut self, elements: u64) {
        let n = self.devices.len() as u64;
        for d in &mut self.devices {
            let t = d.host_reduction(elements / n.max(1));
            self.host_serial_s += t;
        }
    }

    /// Reserve `bytes` on every device (replicated residency, e.g. each
    /// device holding the full sample-volume stack). On failure the
    /// devices already charged are rolled back and the first device's
    /// [`TractoError::Capacity`] error is returned.
    pub fn device_alloc_all(&mut self, bytes: u64) -> Result<(), TractoError> {
        for i in 0..self.devices.len() {
            if let Err(err) = self.devices[i].device_alloc(bytes) {
                for d in &mut self.devices[..i] {
                    d.device_free(bytes);
                }
                return Err(err);
            }
        }
        Ok(())
    }

    /// Release a replicated reservation on every device.
    pub fn device_free_all(&mut self, bytes: u64) {
        for d in &mut self.devices {
            d.device_free(bytes);
        }
    }

    /// Aggregate ledger (sums across devices — device-seconds, not wall).
    pub fn aggregate_ledger(&self) -> TimingLedger {
        let mut total = TimingLedger::default();
        for d in &self.devices {
            total.merge(d.ledger());
        }
        total
    }

    /// Simulated wall-clock makespan: concurrent kernels + serialized host
    /// work.
    pub fn wall_s(&self) -> f64 {
        self.kernel_wall_s + self.host_serial_s
    }

    /// Per-device ledgers.
    pub fn device_ledgers(&self) -> Vec<TimingLedger> {
        self.devices.iter().map(|d| *d.ledger()).collect()
    }
}

/// Strong-scaling summary for a workload run at several device counts.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingPoint {
    /// Device count.
    pub devices: usize,
    /// Simulated wall seconds.
    pub wall_s: f64,
    /// Speedup over one device.
    pub speedup: f64,
    /// Parallel efficiency (`speedup / devices`).
    pub efficiency: f64,
}

/// Compute scaling points from `(devices, wall_s)` measurements.
pub fn scaling_summary(measurements: &[(usize, f64)]) -> Vec<ScalingPoint> {
    assert!(!measurements.is_empty());
    let base = measurements
        .iter()
        .find(|(n, _)| *n == 1)
        .map(|(_, t)| *t)
        .unwrap_or(measurements[0].1);
    measurements
        .iter()
        .map(|&(devices, wall_s)| {
            let speedup = base / wall_s;
            ScalingPoint {
                devices,
                wall_s,
                speedup,
                efficiency: speedup / devices as f64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::LaneStatus;

    struct Countdown;
    impl SimKernel for Countdown {
        type Lane = u32;
        fn step(&self, lane: &mut u32) -> LaneStatus {
            if *lane > 1 {
                *lane -= 1;
                LaneStatus::Continue
            } else {
                *lane = 0;
                LaneStatus::Finished
            }
        }
    }

    fn device() -> DeviceConfig {
        DeviceConfig {
            wavefront_size: 4,
            num_compute_units: 2,
            waves_per_cu: 2,
            ..DeviceConfig::radeon_5870()
        }
    }

    fn balanced_loads(n: usize) -> Vec<u32> {
        vec![100u32; n]
    }

    #[test]
    fn results_identical_across_device_counts() {
        for n in [1usize, 2, 4] {
            let mut multi = MultiGpu::new(device(), n);
            let mut lanes = (1..=257u32).collect::<Vec<_>>();
            multi.launch_partitioned(&Countdown, &mut lanes, 10_000);
            assert!(
                lanes.iter().all(|&l| l == 0),
                "all lanes completed on {n} devices"
            );
        }
    }

    #[test]
    fn kernels_overlap_across_devices() {
        let mut one = MultiGpu::new(device(), 1);
        let mut four = MultiGpu::new(device(), 4);
        let mut a = balanced_loads(1024);
        let mut b = balanced_loads(1024);
        one.launch_partitioned(&Countdown, &mut a, 10_000);
        four.launch_partitioned(&Countdown, &mut b, 10_000);
        // Proportional gains: 4 devices ≈ 4× faster on balanced loads
        // (modulo the fixed launch overhead).
        let ratio = one.wall_s() / four.wall_s();
        assert!(ratio > 3.0, "scaling ratio {ratio:.2}");
        // Total device-seconds are roughly conserved.
        let l1 = one.aggregate_ledger();
        let l4 = four.aggregate_ledger();
        assert_eq!(l1.useful_iterations, l4.useful_iterations);
    }

    #[test]
    fn host_work_serializes() {
        let mut multi = MultiGpu::new(device(), 4);
        multi.broadcast_to_devices(1_000_000);
        // Broadcast over a shared bus costs ~4 single transfers.
        let single = device().pcie.transfer_seconds(1_000_000);
        assert!((multi.wall_s() - 4.0 * single).abs() < 1e-9);
    }

    #[test]
    fn scatter_and_gather_split_bytes() {
        let mut multi = MultiGpu::new(device(), 2);
        multi.scatter_to_devices(1_000_000);
        multi.gather_to_host(1_000_000);
        let l = multi.aggregate_ledger();
        assert_eq!(l.bytes_h2d, 1_000_000);
        assert_eq!(l.bytes_d2h, 1_000_000);
    }

    #[test]
    fn scaling_summary_math() {
        let pts = scaling_summary(&[(1, 8.0), (2, 4.2), (4, 2.4)]);
        assert_eq!(pts[0].speedup, 1.0);
        assert!((pts[1].speedup - 8.0 / 4.2).abs() < 1e-12);
        assert!(pts[2].efficiency < 1.0 && pts[2].efficiency > 0.7);
    }

    #[test]
    fn reduction_split_across_shards() {
        let mut multi = MultiGpu::new(device(), 4);
        multi.host_reduction(4000);
        let l = multi.aggregate_ledger();
        // Total elements reduced = 4000 regardless of device count.
        assert!((l.reduction_s - device().reduction_seconds(4000)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_devices_rejected() {
        let _ = MultiGpu::new(device(), 0);
    }
}
