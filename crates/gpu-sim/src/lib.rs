//! Wavefront-level SIMD GPU execution simulator.
//!
//! The paper's contribution is an *execution-scheduling* result: because
//! GPU wavefronts run in lockstep, a kernel whose lanes need wildly
//! different iteration counts (streamlines of exponentially distributed
//! length) wastes hardware, and the fix — segmenting the kernel into
//! launches with increasing iteration budgets — trades that waste against
//! kernel-launch overhead and PCIe transfer cost.
//!
//! No GPU is available in this reproduction, so this crate builds the
//! substrate that exposes exactly those quantities:
//!
//! * [`DeviceConfig`] — wavefront size, compute-unit count, per-iteration
//!   lane cost, kernel-launch overhead, and a PCIe latency/bandwidth model,
//!   with defaults calibrated to the paper's AMD Radeon 5870;
//! * [`SimKernel`] / [`Gpu::launch`] — kernels are Rust closures over
//!   per-lane state, executed **for real** (in parallel via rayon, one task
//!   per wavefront), while simulated time is charged per wavefront as
//!   `max(lane iterations)` — the lockstep rule;
//! * [`TimingLedger`] — accumulated kernel / host-reduction / transfer time,
//!   the three columns of the paper's Tables II and IV;
//! * [`schedule`] — an event trace of the run (the paper's Figs. 3 and 7);
//! * [`overlap`] — the two-stream overlapped scheduler the paper sketches in
//!   Fig. 8 as future work;
//! * [`stream`] — the same overlap cost model charged *online* on the
//!   simulated clock: every launch/transfer/reduction names a stream, and
//!   per-resource availability (GPU, DMA link, host CPU) decides how much
//!   of it hides behind other streams' work.
//!
//! Because lanes are mutated by real Rust code, results are bit-identical to
//! a serial CPU execution of the same algorithm — the property the paper
//! demonstrates in its Fig. 11/12 CPU-vs-GPU comparison — while the timing
//! model yields the load-balance economics the tables measure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod device;
mod kernel;
mod ledger;

pub mod fault;
pub mod multi;
pub mod overlap;
pub mod schedule;
pub mod stream;

pub use device::{DeviceConfig, PcieModel};
pub use fault::{DeviceHealth, FaultEvent, FaultKind, FaultPlan};
pub use kernel::{Gpu, LaneStatus, LaunchStats, SimKernel};
pub use ledger::TimingLedger;
pub use multi::MultiGpu;
pub use stream::{ChargeSpan, StreamClock};
