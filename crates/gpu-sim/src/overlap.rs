//! CPU–GPU overlap scheduling — the paper's Fig. 8 ("we leave this as
//! future work"), built here as an extension.
//!
//! Within one sample, segment `i+1` cannot launch until segment `i`'s
//! reduction completes, so there is nothing to overlap. But two *samples*
//! can interleave: while the GPU runs sample A's next kernel, the CPU
//! reduces sample B's previous output. This module schedules two (or more)
//! such streams over two resources — the GPU, and the host CPU + PCIe bus —
//! and reports the overlapped makespan against the sequential one.

/// One segment's cost in a stream: GPU kernel time, then host time
/// (readback transfer + reduction + compacted re-upload), which must finish
/// before the stream's next kernel may start.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentCost {
    /// GPU kernel seconds.
    pub kernel_s: f64,
    /// Host-side seconds (transfer + reduction).
    pub host_s: f64,
}

/// Result of scheduling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverlapResult {
    /// Makespan when streams run back-to-back with no overlap.
    pub sequential_s: f64,
    /// Makespan with kernel/host overlap across streams.
    pub overlapped_s: f64,
}

impl OverlapResult {
    /// Fractional saving of overlap over sequential execution.
    pub fn saving(&self) -> f64 {
        if self.sequential_s <= 0.0 {
            return 0.0;
        }
        1.0 - self.overlapped_s / self.sequential_s
    }
}

/// Schedule `streams` of segments over {GPU, host} with list scheduling:
/// at each step, dispatch the stream whose next task is ready earliest onto
/// its resource (GPU for kernels, host for reductions). Within a stream the
/// kernel→host→kernel chain is strictly ordered.
pub fn schedule_streams(streams: &[Vec<SegmentCost>]) -> OverlapResult {
    let sequential_s: f64 = streams
        .iter()
        .flat_map(|s| s.iter())
        .map(|c| c.kernel_s + c.host_s)
        .sum();

    // Per-stream cursor: (segment index, phase) where phase 0 = kernel
    // pending, 1 = host pending. `ready[s]` is when the stream's next task
    // may start (its previous task's completion).
    let n = streams.len();
    let mut seg = vec![0usize; n];
    let mut phase = vec![0u8; n];
    let mut ready = vec![0.0f64; n];
    let mut gpu_free = 0.0f64;
    let mut host_free = 0.0f64;
    let mut makespan = 0.0f64;

    loop {
        // Pick the dispatchable task that can *start* earliest.
        let mut best: Option<(usize, f64)> = None;
        for s in 0..n {
            if seg[s] >= streams[s].len() {
                continue;
            }
            let resource_free = if phase[s] == 0 { gpu_free } else { host_free };
            let start = ready[s].max(resource_free);
            if best.map(|(_, t)| start < t).unwrap_or(true) {
                best = Some((s, start));
            }
        }
        let Some((s, start)) = best else { break };
        let cost = streams[s][seg[s]];
        let (dur, resource_is_gpu) = if phase[s] == 0 {
            (cost.kernel_s, true)
        } else {
            (cost.host_s, false)
        };
        let end = start + dur;
        if resource_is_gpu {
            gpu_free = end;
            phase[s] = 1;
        } else {
            host_free = end;
            phase[s] = 0;
            seg[s] += 1;
        }
        ready[s] = end;
        makespan = makespan.max(end);
    }

    OverlapResult {
        sequential_s,
        overlapped_s: makespan,
    }
}

/// Convenience: split one stream of segments into `k` interleaved streams of
/// identical cost (the paper's "track from two samples at the same time")
/// and schedule them.
pub fn interleave_identical(segments: &[SegmentCost], k: usize) -> OverlapResult {
    assert!(k >= 1);
    let streams: Vec<Vec<SegmentCost>> = (0..k).map(|_| segments.to_vec()).collect();
    schedule_streams(&streams)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(kernel_s: f64, host_s: f64) -> SegmentCost {
        SegmentCost { kernel_s, host_s }
    }

    #[test]
    fn single_stream_no_overlap_possible() {
        let r = schedule_streams(&[vec![seg(1.0, 0.5); 4]]);
        assert!((r.sequential_s - 6.0).abs() < 1e-12);
        assert!((r.overlapped_s - 6.0).abs() < 1e-12);
        assert_eq!(r.saving(), 0.0);
    }

    #[test]
    fn two_streams_overlap_saves_time() {
        let stream = vec![seg(1.0, 1.0); 4];
        let r = schedule_streams(&[stream.clone(), stream]);
        assert!((r.sequential_s - 16.0).abs() < 1e-12);
        // Perfectly balanced kernels/hosts pipeline almost completely:
        // makespan ≈ 8 + 1 (pipeline fill).
        assert!(r.overlapped_s < 10.0, "overlapped {}", r.overlapped_s);
        assert!(r.overlapped_s >= 8.0, "cannot beat the busy resource bound");
        assert!(r.saving() > 0.35);
    }

    #[test]
    fn overlap_never_worse_than_sequential() {
        let a = vec![seg(0.5, 0.1), seg(2.0, 0.4), seg(0.2, 1.0)];
        let b = vec![seg(1.0, 1.0), seg(0.1, 0.1)];
        let r = schedule_streams(&[a, b]);
        assert!(r.overlapped_s <= r.sequential_s + 1e-12);
    }

    #[test]
    fn overlap_bounded_by_resource_totals() {
        let a = vec![seg(1.0, 0.2); 5];
        let b = vec![seg(1.0, 0.2); 5];
        let r = schedule_streams(&[a, b]);
        let gpu_total = 10.0;
        assert!(
            r.overlapped_s >= gpu_total,
            "GPU is the bottleneck resource"
        );
    }

    #[test]
    fn interleave_identical_matches_manual() {
        let segs = vec![seg(1.0, 0.5); 3];
        let r1 = interleave_identical(&segs, 2);
        let r2 = schedule_streams(&[segs.clone(), segs]);
        assert_eq!(r1, r2);
    }

    #[test]
    fn empty_streams() {
        let r = schedule_streams(&[]);
        assert_eq!(r.sequential_s, 0.0);
        assert_eq!(r.overlapped_s, 0.0);
    }

    #[test]
    fn host_dominated_streams_bottleneck_on_host() {
        let a = vec![seg(0.1, 1.0); 4];
        let b = vec![seg(0.1, 1.0); 4];
        let r = schedule_streams(&[a, b]);
        assert!(r.overlapped_s >= 8.0, "host resource floor");
        assert!(r.overlapped_s < r.sequential_s);
    }
}
