//! Kernel execution: real computation, lockstep-charged timing.

use crate::device::DeviceConfig;
use crate::fault::{DeviceHealth, FaultCategory, FaultKind, FaultPlan, FaultState};
use crate::ledger::TimingLedger;
use crate::schedule::{EventKind, ScheduleEvent, ScheduleTrace};
use crate::stream::{ChargeSpan, StreamClock};
use rayon::prelude::*;
use std::time::Instant;
use tracto_trace::{Tracer, TractoError, TractoResult};

/// Resource id of this device's compute engine on its [`StreamClock`].
pub const RES_GPU: usize = 0;
/// Resource id of this device's PCIe/DMA link.
pub const RES_DMA: usize = 1;
/// Resource id of the host CPU (reductions/compactions).
pub const RES_HOST: usize = 2;

/// Whether a lane wants to keep iterating.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneStatus {
    /// The lane has more work; it will run again next iteration (and in the
    /// next segment's launch if the budget runs out first).
    Continue,
    /// The lane has finished (streamline terminated / chain complete).
    Finished,
}

/// A simulated GPU kernel: one `step` is one unit of per-lane work (one
/// tracking step, one MH parameter update, …).
///
/// `step` receives only the lane state, mirroring the data-parallel,
/// communication-free structure the paper exploits ("the communication of
/// parallel threads is negligible").
pub trait SimKernel: Sync {
    /// Per-lane mutable state.
    type Lane: Send;

    /// Execute one iteration of one lane.
    fn step(&self, lane: &mut Self::Lane) -> LaneStatus;

    /// Relative cost of one iteration of this kernel versus the device's
    /// reference iteration (one streamline tracking step). Defaults to 1.
    fn cost_weight(&self) -> f64 {
        1.0
    }
}

/// Statistics of a single kernel launch.
#[derive(Debug, Clone)]
pub struct LaunchStats {
    /// Iterations actually executed per lane (≤ the launch budget).
    pub executed: Vec<u32>,
    /// Whether each lane finished during this launch.
    pub finished: Vec<bool>,
    /// Simulated kernel seconds for this launch.
    pub kernel_s: f64,
    /// Lockstep-charged lane-iterations.
    pub charged_iterations: u64,
    /// Useful lane-iterations.
    pub useful_iterations: u64,
}

impl LaunchStats {
    /// Number of lanes still unfinished after this launch.
    pub fn unfinished(&self) -> usize {
        self.finished.iter().filter(|&&f| !f).count()
    }
}

/// The simulated GPU: owns the device model, a timing ledger, and a
/// schedule trace.
///
/// Every operation accepts a *stream*: operations on the same stream are
/// dependent and chain sequentially, while operations on different streams
/// overlap wherever their resources (compute engine, DMA link, host CPU)
/// allow — the Fig. 8 model, charged on the simulated clock by a
/// [`StreamClock`]. The plain (streamless) methods charge stream 0, which
/// degenerates to the strictly sequential clock this simulator always had.
#[derive(Debug)]
pub struct Gpu {
    config: DeviceConfig,
    ledger: TimingLedger,
    trace: ScheduleTrace,
    clock: StreamClock,
    allocated_bytes: u64,
    tracer: Tracer,
    device_id: u32,
    fault: FaultState,
}

impl Gpu {
    /// Bring up a device.
    pub fn new(config: DeviceConfig) -> Self {
        Gpu {
            config,
            ledger: TimingLedger::default(),
            trace: ScheduleTrace::default(),
            clock: StreamClock::new(),
            allocated_bytes: 0,
            tracer: Tracer::disabled(),
            device_id: 0,
            fault: FaultState::default(),
        }
    }

    /// Bring up a device that emits structured events into `tracer`.
    pub fn with_tracer(config: DeviceConfig, tracer: Tracer) -> Self {
        let mut gpu = Gpu::new(config);
        gpu.tracer = tracer;
        gpu
    }

    /// Attach (or detach, with [`Tracer::disabled`]) a tracer after
    /// construction, tagging this device's events with `device_id`.
    pub fn set_tracer(&mut self, tracer: Tracer, device_id: u32) {
        self.tracer = tracer;
        self.device_id = device_id;
    }

    /// The tracer this device emits into (disabled by default).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The device model.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// Accumulated timing.
    pub fn ledger(&self) -> &TimingLedger {
        &self.ledger
    }

    /// The schedule trace recorded so far.
    pub fn trace(&self) -> &ScheduleTrace {
        &self.trace
    }

    /// Reset ledger, trace, and clock (keep the device model). Fault state
    /// — health, pending events, operation counters — is preserved: a lost
    /// device stays lost across a reset. Reinstall a plan with
    /// [`set_fault_plan`](Self::set_fault_plan) to revive it.
    pub fn reset(&mut self) {
        self.ledger = TimingLedger::default();
        self.trace = ScheduleTrace::default();
        self.clock.reset();
    }

    /// Install `plan`'s events addressed to `device` on this GPU, resetting
    /// health, operation counters, and the injected-fault count.
    pub fn set_fault_plan(&mut self, plan: &FaultPlan, device: u32) {
        self.fault.install(plan, device);
    }

    /// Current health of this device.
    pub fn health(&self) -> DeviceHealth {
        self.fault.health
    }

    /// How many faults the plan has injected on this device so far.
    pub fn faults_injected(&self) -> u64 {
        self.fault.faults_injected
    }

    /// Emit a `gpu.fault` trace event for an injected fault. `at_op` is the
    /// per-category operation index the fault fired on; recording it makes
    /// the trace replayable ([`FaultPlan::from_trace`]).
    fn emit_fault(&mut self, kind: FaultKind, op: &'static str, at_op: u64) {
        if self.tracer.enabled() {
            let health = match self.fault.health {
                DeviceHealth::Healthy => "healthy",
                DeviceHealth::Degraded => "degraded",
                DeviceHealth::Failed => "failed",
            };
            self.tracer.emit_sim(
                "gpu.fault",
                self.clock.makespan_s(),
                &[
                    ("device", self.device_id.into()),
                    ("kind", kind.as_str().into()),
                    ("op", op.into()),
                    ("at_op", at_op.into()),
                    ("health", health.into()),
                ],
            );
        }
    }

    /// Launch a kernel over `lanes` with a per-lane iteration budget of
    /// `max_iters` (one `NumIteration[i]` entry of the segmentation array).
    ///
    /// Infallible wrapper over [`try_launch`](Self::try_launch) for devices
    /// without a fault plan, where a launch cannot fail.
    ///
    /// # Panics
    ///
    /// Panics if a fault plan injects a launch fault or the device has
    /// failed; fault-aware callers use `try_launch`.
    pub fn launch<K: SimKernel>(
        &mut self,
        kernel: &K,
        lanes: &mut [K::Lane],
        max_iters: u32,
    ) -> LaunchStats {
        self.try_launch(kernel, lanes, max_iters)
            .expect("launch failed on a device with a fault plan; use try_launch")
    }

    /// Fault-aware launch. Scheduled launch faults fire *before* any lane
    /// is stepped, so a failed launch leaves lane state untouched (the
    /// failed attempt still charges its fixed launch overhead to the
    /// simulated clock) and a replay — on this device or another — yields
    /// results bit-identical to a fault-free run.
    ///
    /// Lanes are grouped into wavefronts **in submission order** — exactly
    /// how the paper's kernel maps seed points to SIMD threads — and each
    /// wavefront is charged the maximum iteration count among its lanes
    /// (lockstep execution). The real per-lane computation runs in parallel
    /// with one rayon task per wavefront. On a [`DeviceHealth::Degraded`]
    /// device the charged kernel time is multiplied by the plan's
    /// `degrade_factor`.
    pub fn try_launch<K: SimKernel>(
        &mut self,
        kernel: &K,
        lanes: &mut [K::Lane],
        max_iters: u32,
    ) -> TractoResult<LaunchStats> {
        self.try_launch_inner(kernel, lanes, max_iters, 0)
            .map(|(stats, _)| stats)
    }

    /// Stream-aware [`try_launch`](Self::try_launch): the kernel is charged
    /// to `stream` on this device's compute engine, so it overlaps other
    /// streams' transfers and host work. Emits a `gpu.stream` trace event
    /// recording how much of the kernel hid behind already-scheduled work.
    pub fn try_launch_on<K: SimKernel>(
        &mut self,
        kernel: &K,
        lanes: &mut [K::Lane],
        max_iters: u32,
        stream: usize,
    ) -> TractoResult<LaunchStats> {
        let (stats, span) = self.try_launch_inner(kernel, lanes, max_iters, stream)?;
        self.emit_stream_event("kernel", stream, span);
        Ok(stats)
    }

    fn try_launch_inner<K: SimKernel>(
        &mut self,
        kernel: &K,
        lanes: &mut [K::Lane],
        max_iters: u32,
        stream: usize,
    ) -> TractoResult<(LaunchStats, ChargeSpan)> {
        if self.fault.health == DeviceHealth::Failed {
            return Err(TractoError::device(
                self.device_id,
                "kernel launch on failed device",
            ));
        }
        if let Some((kind, at_op)) = self.fault.next_fault(FaultCategory::Launch) {
            match kind {
                FaultKind::LaunchFail | FaultKind::DeviceLost => {
                    let overhead = self.config.kernel_seconds_weighted(0, kernel.cost_weight());
                    self.ledger.kernel_s += overhead;
                    let span = self.clock.charge(stream, RES_GPU, overhead);
                    self.trace.push(ScheduleEvent {
                        kind: EventKind::Kernel,
                        start_s: span.start_s,
                        duration_s: overhead,
                        lanes: 0,
                    });
                    self.emit_fault(kind, "launch", at_op);
                    let context = if kind == FaultKind::DeviceLost {
                        "device lost during kernel launch"
                    } else {
                        "kernel launch failed"
                    };
                    return Err(TractoError::device(self.device_id, context));
                }
                FaultKind::Degrade => {
                    // Sticky slowdown; the launch itself proceeds.
                    self.emit_fault(kind, "launch", at_op);
                }
                FaultKind::AllocFail | FaultKind::TransferTimeout => {
                    unreachable!("category filter yields only launch faults")
                }
            }
        }
        let wf = self.config.wavefront_size.max(1);
        let n = lanes.len();
        let wall_start = Instant::now();

        // Run every wavefront in parallel; within a wavefront, lanes are
        // stepped round-robin so the executed-iteration accounting matches
        // lockstep semantics (all lanes advance together until each
        // finishes or the budget is exhausted).
        let per_wavefront: Vec<(Vec<u32>, Vec<bool>, u32)> = lanes
            .par_chunks_mut(wf)
            .map(|chunk| {
                let m = chunk.len();
                let mut executed = vec![0u32; m];
                let mut finished = vec![false; m];
                let mut alive = m;
                let mut iters_done = 0u32;
                while alive > 0 && iters_done < max_iters {
                    for (i, lane) in chunk.iter_mut().enumerate() {
                        if finished[i] {
                            continue;
                        }
                        executed[i] += 1;
                        if kernel.step(lane) == LaneStatus::Finished {
                            finished[i] = true;
                            alive -= 1;
                        }
                    }
                    iters_done += 1;
                }
                let lockstep = executed.iter().copied().max().unwrap_or(0);
                (executed, finished, lockstep)
            })
            .collect();

        let wall = wall_start.elapsed().as_secs_f64();

        let mut executed = Vec::with_capacity(n);
        let mut finished = Vec::with_capacity(n);
        let mut charged = 0u64;
        let mut useful = 0u64;
        let mut wavefront_iterations = 0u64;
        for (ex, fi, lockstep) in per_wavefront {
            charged += lockstep as u64 * ex.len() as u64;
            useful += ex.iter().map(|&e| e as u64).sum::<u64>();
            wavefront_iterations += lockstep as u64;
            executed.extend(ex);
            finished.extend(fi);
        }

        let kernel_s = self
            .config
            .kernel_seconds_weighted(wavefront_iterations, kernel.cost_weight())
            * self.fault.degrade_factor;
        self.ledger.kernel_s += kernel_s;
        self.ledger.launches += 1;
        self.ledger.useful_iterations += useful;
        self.ledger.charged_iterations += charged;
        self.ledger.wall_kernel_s += wall;
        let span = self.clock.charge(stream, RES_GPU, kernel_s);
        self.trace.push(ScheduleEvent {
            kind: EventKind::Kernel,
            start_s: span.start_s,
            duration_s: kernel_s,
            lanes: n,
        });
        if self.tracer.enabled() {
            self.tracer.emit_sim(
                "gpu.launch",
                span.end_s,
                &[
                    ("device", self.device_id.into()),
                    ("lanes", n.into()),
                    ("budget", max_iters.into()),
                    ("kernel_s", kernel_s.into()),
                    ("charged_iterations", charged.into()),
                    ("useful_iterations", useful.into()),
                    ("wall_s", wall.into()),
                ],
            );
        }

        Ok((
            LaunchStats {
                executed,
                finished,
                kernel_s,
                charged_iterations: charged,
                useful_iterations: useful,
            },
            span,
        ))
    }

    /// Emit a `gpu.stream` trace event for one stream-charged segment:
    /// which stream, what segment kind, where it landed on the overlapped
    /// timeline, and how much of it was hidden behind other streams' work.
    fn emit_stream_event(&self, segment: &'static str, stream: usize, span: ChargeSpan) {
        if self.tracer.enabled() {
            self.tracer.emit_sim(
                "gpu.stream",
                span.end_s,
                &[
                    ("device", self.device_id.into()),
                    ("stream", stream.into()),
                    ("segment", segment.into()),
                    ("start_s", span.start_s.into()),
                    ("duration_s", span.duration_s().into()),
                    ("hidden_s", span.hidden_s.into()),
                ],
            );
        }
    }

    /// Whether a scheduled fault pre-empts a transfer. On a timeout the
    /// stall is charged to the clock and ledger before the error returns.
    fn check_transfer_fault(
        &mut self,
        event_kind: EventKind,
        dir: &'static str,
        stream: usize,
    ) -> TractoResult<()> {
        if self.fault.health == DeviceHealth::Failed {
            return Err(TractoError::device(
                self.device_id,
                format!("{dir} transfer on failed device"),
            ));
        }
        if let Some((kind, at_op)) = self.fault.next_fault(FaultCategory::Transfer) {
            let stall = self.fault.transfer_timeout_s;
            self.ledger.transfer_s += stall;
            let span = self.clock.charge(stream, RES_DMA, stall);
            self.trace.push(ScheduleEvent {
                kind: event_kind,
                start_s: span.start_s,
                duration_s: stall,
                lanes: 0,
            });
            self.emit_fault(kind, "transfer", at_op);
            return Err(TractoError::device(
                self.device_id,
                format!("{dir} transfer timed out"),
            ));
        }
        Ok(())
    }

    /// Charge a host→device transfer.
    ///
    /// Infallible wrapper over [`try_transfer_to_device`]
    /// (Self::try_transfer_to_device) for devices without a fault plan.
    ///
    /// # Panics
    ///
    /// Panics if a fault plan injects a transfer fault or the device has
    /// failed.
    pub fn transfer_to_device(&mut self, bytes: u64) -> f64 {
        self.try_transfer_to_device(bytes)
            .expect("transfer failed on a device with a fault plan; use try_transfer_to_device")
    }

    /// Fault-aware host→device transfer: a scheduled timeout stalls for the
    /// plan's `transfer_timeout_s` (charged to the simulated clock), then
    /// errors without moving any bytes.
    pub fn try_transfer_to_device(&mut self, bytes: u64) -> TractoResult<f64> {
        self.try_transfer_to_device_inner(bytes, 0).map(|(t, _)| t)
    }

    /// Stream-aware [`try_transfer_to_device`](Self::try_transfer_to_device):
    /// the transfer is charged to `stream` on this device's DMA link, so it
    /// overlaps other streams' kernels. Emits a `gpu.stream` trace event.
    pub fn try_transfer_to_device_on(&mut self, bytes: u64, stream: usize) -> TractoResult<f64> {
        let (t, span) = self.try_transfer_to_device_inner(bytes, stream)?;
        self.emit_stream_event("h2d", stream, span);
        Ok(t)
    }

    fn try_transfer_to_device_inner(
        &mut self,
        bytes: u64,
        stream: usize,
    ) -> TractoResult<(f64, ChargeSpan)> {
        self.check_transfer_fault(EventKind::TransferH2D, "host-to-device", stream)?;
        let t = self.config.pcie.transfer_seconds(bytes);
        self.ledger.transfer_s += t;
        self.ledger.bytes_h2d += bytes;
        let span = self.clock.charge(stream, RES_DMA, t);
        self.trace.push(ScheduleEvent {
            kind: EventKind::TransferH2D,
            start_s: span.start_s,
            duration_s: t,
            lanes: 0,
        });
        if self.tracer.enabled() {
            self.tracer.emit_sim(
                "gpu.transfer_h2d",
                span.end_s,
                &[
                    ("device", self.device_id.into()),
                    ("bytes", bytes.into()),
                    ("transfer_s", t.into()),
                ],
            );
        }
        Ok((t, span))
    }

    /// Charge a device→host transfer.
    ///
    /// Infallible wrapper over [`try_transfer_to_host`]
    /// (Self::try_transfer_to_host) for devices without a fault plan.
    ///
    /// # Panics
    ///
    /// Panics if a fault plan injects a transfer fault or the device has
    /// failed.
    pub fn transfer_to_host(&mut self, bytes: u64) -> f64 {
        self.try_transfer_to_host(bytes)
            .expect("transfer failed on a device with a fault plan; use try_transfer_to_host")
    }

    /// Fault-aware device→host transfer: a scheduled timeout stalls for the
    /// plan's `transfer_timeout_s` (charged to the simulated clock), then
    /// errors without moving any bytes.
    pub fn try_transfer_to_host(&mut self, bytes: u64) -> TractoResult<f64> {
        self.try_transfer_to_host_inner(bytes, 0).map(|(t, _)| t)
    }

    /// Stream-aware [`try_transfer_to_host`](Self::try_transfer_to_host):
    /// the readback is charged to `stream` on this device's DMA link.
    /// Emits a `gpu.stream` trace event.
    pub fn try_transfer_to_host_on(&mut self, bytes: u64, stream: usize) -> TractoResult<f64> {
        let (t, span) = self.try_transfer_to_host_inner(bytes, stream)?;
        self.emit_stream_event("d2h", stream, span);
        Ok(t)
    }

    fn try_transfer_to_host_inner(
        &mut self,
        bytes: u64,
        stream: usize,
    ) -> TractoResult<(f64, ChargeSpan)> {
        self.check_transfer_fault(EventKind::TransferD2H, "device-to-host", stream)?;
        let t = self.config.pcie.transfer_seconds(bytes);
        self.ledger.transfer_s += t;
        self.ledger.bytes_d2h += bytes;
        let span = self.clock.charge(stream, RES_DMA, t);
        self.trace.push(ScheduleEvent {
            kind: EventKind::TransferD2H,
            start_s: span.start_s,
            duration_s: t,
            lanes: 0,
        });
        if self.tracer.enabled() {
            self.tracer.emit_sim(
                "gpu.transfer_d2h",
                span.end_s,
                &[
                    ("device", self.device_id.into()),
                    ("bytes", bytes.into()),
                    ("transfer_s", t.into()),
                ],
            );
        }
        Ok((t, span))
    }

    /// Charge a host-side reduction/compaction over `elements` items.
    pub fn host_reduction(&mut self, elements: u64) -> f64 {
        self.host_reduction_inner(elements, 0).0
    }

    /// Stream-aware [`host_reduction`](Self::host_reduction): the reduction
    /// is charged to `stream` on the host CPU, so it overlaps other
    /// streams' kernels and transfers. Emits a `gpu.stream` trace event.
    pub fn host_reduction_on(&mut self, elements: u64, stream: usize) -> f64 {
        let (t, span) = self.host_reduction_inner(elements, stream);
        self.emit_stream_event("reduce", stream, span);
        t
    }

    fn host_reduction_inner(&mut self, elements: u64, stream: usize) -> (f64, ChargeSpan) {
        let t = self.config.reduction_seconds(elements);
        self.ledger.reduction_s += t;
        let span = self.clock.charge(stream, RES_HOST, t);
        self.trace.push(ScheduleEvent {
            kind: EventKind::Reduction,
            start_s: span.start_s,
            duration_s: t,
            lanes: elements as usize,
        });
        if self.tracer.enabled() {
            self.tracer.emit_sim(
                "gpu.compaction",
                span.end_s,
                &[
                    ("device", self.device_id.into()),
                    ("elements", elements.into()),
                    ("reduction_s", t.into()),
                ],
            );
        }
        (t, span)
    }

    /// Current simulated clock: the end of the latest segment across all
    /// streams (for single-stream use, the plain sequential sum).
    pub fn clock_s(&self) -> f64 {
        self.clock.makespan_s()
    }

    /// The stream clock: per-stream readiness, per-resource availability,
    /// and the serialized-vs-overlapped accounting.
    pub fn stream_clock(&self) -> &StreamClock {
        &self.clock
    }

    /// Wall time hidden by multi-stream overlap so far (0 when serialized).
    pub fn overlap_saved_s(&self) -> f64 {
        self.clock.saved_s()
    }

    /// Reserve device memory. Fails with [`TractoError::Capacity`] when the
    /// device's capacity would be exceeded, or with [`TractoError::Device`]
    /// when the device has failed or a fault plan injects an allocation
    /// fault (transient — a retry may succeed).
    pub fn device_alloc(&mut self, bytes: u64) -> Result<(), TractoError> {
        if self.fault.health == DeviceHealth::Failed {
            return Err(TractoError::device(
                self.device_id,
                "allocation on failed device",
            ));
        }
        if let Some((kind, at_op)) = self.fault.next_fault(FaultCategory::Alloc) {
            self.emit_fault(kind, "alloc", at_op);
            return Err(TractoError::device(
                self.device_id,
                "device allocation fault",
            ));
        }
        let new_total = self.allocated_bytes + bytes;
        if new_total > self.config.memory_bytes {
            Err(TractoError::capacity(
                "device memory",
                new_total,
                self.config.memory_bytes,
            ))
        } else {
            self.allocated_bytes = new_total;
            Ok(())
        }
    }

    /// Release device memory (saturating).
    pub fn device_free(&mut self, bytes: u64) {
        self.allocated_bytes = self.allocated_bytes.saturating_sub(bytes);
    }

    /// Bytes currently resident on the device.
    pub fn allocated_bytes(&self) -> u64 {
        self.allocated_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A kernel whose lane is `(remaining, counter)`: runs `remaining`
    /// iterations then finishes.
    struct CountdownKernel;
    impl SimKernel for CountdownKernel {
        type Lane = u32;
        fn step(&self, lane: &mut u32) -> LaneStatus {
            if *lane > 1 {
                *lane -= 1;
                LaneStatus::Continue
            } else {
                *lane = 0;
                LaneStatus::Finished
            }
        }
    }

    fn device() -> DeviceConfig {
        DeviceConfig {
            wavefront_size: 4,
            num_compute_units: 2,
            waves_per_cu: 1,
            ..DeviceConfig::radeon_5870()
        }
    }

    #[test]
    fn lanes_execute_to_completion_within_budget() {
        let mut gpu = Gpu::new(device());
        let mut lanes = vec![3u32, 1, 5, 2];
        let stats = gpu.launch(&CountdownKernel, &mut lanes, 100);
        assert_eq!(stats.executed, vec![3, 1, 5, 2]);
        assert!(stats.finished.iter().all(|&f| f));
        assert_eq!(stats.unfinished(), 0);
        assert!(lanes.iter().all(|&l| l == 0));
    }

    #[test]
    fn budget_caps_execution() {
        let mut gpu = Gpu::new(device());
        let mut lanes = vec![10u32, 2];
        let stats = gpu.launch(&CountdownKernel, &mut lanes, 3);
        assert_eq!(stats.executed, vec![3, 2]);
        assert_eq!(stats.finished, vec![false, true]);
        assert_eq!(stats.unfinished(), 1);
        assert_eq!(
            lanes[0], 7,
            "partial progress preserved for the next segment"
        );
    }

    #[test]
    fn lockstep_charging_is_wavefront_max() {
        let mut gpu = Gpu::new(device());
        // One wavefront of 4 lanes: max executed = 5 → charged 5 × 4 = 20.
        let mut lanes = vec![5u32, 1, 1, 1];
        let stats = gpu.launch(&CountdownKernel, &mut lanes, 100);
        assert_eq!(stats.charged_iterations, 20);
        assert_eq!(stats.useful_iterations, 8);
    }

    #[test]
    fn charging_invariant_to_intra_wavefront_order() {
        let mut g1 = Gpu::new(device());
        let mut g2 = Gpu::new(device());
        let mut a = vec![5u32, 1, 2, 3];
        let mut b = vec![3u32, 2, 1, 5];
        let sa = g1.launch(&CountdownKernel, &mut a, 100);
        let sb = g2.launch(&CountdownKernel, &mut b, 100);
        assert_eq!(sa.charged_iterations, sb.charged_iterations);
        assert_eq!(sa.kernel_s, sb.kernel_s);
    }

    #[test]
    fn multiple_wavefronts_charged_independently() {
        let mut gpu = Gpu::new(device());
        // Two wavefronts: [9,1,1,1] and [1,1,1,1] → charged 9·4 + 1·4 = 40.
        let mut lanes = vec![9u32, 1, 1, 1, 1, 1, 1, 1];
        let stats = gpu.launch(&CountdownKernel, &mut lanes, 100);
        assert_eq!(stats.charged_iterations, 40);
        // Sorting the same loads so long lanes share a wavefront reduces
        // the charge: [9,1,1,1,1,1,1,1] sorted desc = [9,...] same here; use
        // a clearer case below.
        let mut g2 = Gpu::new(device());
        let mut sorted = vec![9u32, 9, 9, 9, 1, 1, 1, 1];
        let s2 = g2.launch(&CountdownKernel, &mut sorted, 100);
        assert_eq!(s2.charged_iterations, 40);
        let mut g3 = Gpu::new(device());
        let mut interleaved = vec![9u32, 1, 9, 1, 9, 1, 9, 1];
        let s3 = g3.launch(&CountdownKernel, &mut interleaved, 100);
        assert_eq!(
            s3.charged_iterations, 72,
            "imbalanced wavefronts charge more"
        );
    }

    #[test]
    fn ledger_accumulates_over_launches() {
        let mut gpu = Gpu::new(device());
        let mut lanes = vec![4u32; 8];
        gpu.launch(&CountdownKernel, &mut lanes, 2);
        gpu.launch(&CountdownKernel, &mut lanes, 2);
        assert_eq!(gpu.ledger().launches, 2);
        assert!(gpu.ledger().kernel_s > 0.0);
        assert_eq!(gpu.ledger().useful_iterations, 32);
    }

    #[test]
    fn transfers_and_reduction_tracked() {
        let mut gpu = Gpu::new(device());
        gpu.transfer_to_device(1_000_000);
        gpu.transfer_to_host(500_000);
        gpu.host_reduction(1000);
        let l = gpu.ledger();
        assert_eq!(l.bytes_h2d, 1_000_000);
        assert_eq!(l.bytes_d2h, 500_000);
        assert!(l.transfer_s > 0.0);
        assert!(l.reduction_s > 0.0);
        assert_eq!(gpu.trace().events().len(), 3);
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut gpu = Gpu::new(device());
        let t0 = gpu.clock_s();
        gpu.transfer_to_device(100);
        let t1 = gpu.clock_s();
        let mut lanes = vec![2u32; 4];
        gpu.launch(&CountdownKernel, &mut lanes, 10);
        let t2 = gpu.clock_s();
        assert!(t0 < t1 && t1 < t2);
    }

    #[test]
    fn reset_clears_state() {
        let mut gpu = Gpu::new(device());
        gpu.transfer_to_device(100);
        gpu.reset();
        assert_eq!(*gpu.ledger(), TimingLedger::default());
        assert_eq!(gpu.clock_s(), 0.0);
        assert!(gpu.trace().events().is_empty());
    }

    #[test]
    fn zero_budget_launch_is_noop_for_lanes() {
        let mut gpu = Gpu::new(device());
        let mut lanes = vec![5u32, 5];
        let stats = gpu.launch(&CountdownKernel, &mut lanes, 0);
        assert_eq!(stats.executed, vec![0, 0]);
        assert_eq!(lanes, vec![5, 5]);
        // But launch overhead is still charged — the cost the segmentation
        // strategy must amortize.
        assert!(stats.kernel_s > 0.0);
    }

    #[test]
    fn tracer_records_launch_transfer_and_compaction_events() {
        use std::sync::Arc;
        use tracto_trace::{RingSink, Tracer};

        let ring = Arc::new(RingSink::new(64));
        let mut gpu = Gpu::with_tracer(device(), Tracer::shared(ring.clone()));
        let mut lanes = vec![3u32, 1, 5, 2];
        gpu.transfer_to_device(1024);
        gpu.launch(&CountdownKernel, &mut lanes, 100);
        gpu.host_reduction(4);
        gpu.transfer_to_host(512);

        assert_eq!(ring.count("gpu.launch"), 1);
        assert_eq!(ring.count("gpu.transfer_h2d"), 1);
        assert_eq!(ring.count("gpu.transfer_d2h"), 1);
        assert_eq!(ring.count("gpu.compaction"), 1);
        let launch = &ring.named("gpu.launch")[0];
        assert_eq!(launch.field_u64("lanes"), Some(4));
        assert_eq!(launch.field_u64("charged_iterations"), Some(20));
        let sim = launch.sim_s.expect("launch carries the simulated clock");
        assert!(sim > 0.0);
    }

    #[test]
    fn device_alloc_failure_is_capacity_error() {
        let mut gpu = Gpu::new(device());
        let cap = gpu.config().memory_bytes;
        let err = gpu.device_alloc(cap + 1).expect_err("over capacity");
        assert_eq!(err.kind(), tracto_trace::ErrorKind::Capacity);
        assert!(err.to_string().contains("device memory"));
    }

    #[test]
    fn launch_fault_fires_before_lane_mutation() {
        let plan = FaultPlan::parse("fault 0 0 launch-fail").unwrap();
        let mut gpu = Gpu::new(device());
        gpu.set_fault_plan(&plan, 0);
        let mut lanes = vec![3u32, 1, 5, 2];
        let err = gpu
            .try_launch(&CountdownKernel, &mut lanes, 100)
            .expect_err("op 0 launch faulted");
        assert_eq!(err.kind(), tracto_trace::ErrorKind::Device);
        assert!(err.is_retryable());
        assert_eq!(lanes, vec![3, 1, 5, 2], "failed launch never touches lanes");
        // The failed attempt still cost its fixed overhead.
        let overhead = gpu.config().kernel_seconds_weighted(0, 1.0);
        assert!((gpu.clock_s() - overhead).abs() < 1e-15);
        assert_eq!(gpu.health(), DeviceHealth::Healthy);
        // Transient: the retry (launch op 1) succeeds with full results.
        let stats = gpu
            .try_launch(&CountdownKernel, &mut lanes, 100)
            .expect("retry clean");
        assert_eq!(stats.executed, vec![3, 1, 5, 2]);
        assert_eq!(gpu.faults_injected(), 1);
    }

    #[test]
    fn device_lost_is_sticky() {
        let plan = FaultPlan::parse("fault 0 1 device-lost").unwrap();
        let mut gpu = Gpu::new(device());
        gpu.set_fault_plan(&plan, 0);
        let mut lanes = vec![2u32; 4];
        gpu.try_launch(&CountdownKernel, &mut lanes, 10).unwrap();
        let err = gpu
            .try_launch(&CountdownKernel, &mut lanes, 10)
            .expect_err("lost on second launch");
        assert_eq!(err.kind(), tracto_trace::ErrorKind::Device);
        assert_eq!(gpu.health(), DeviceHealth::Failed);
        // Every subsequent operation errors.
        assert!(gpu.try_launch(&CountdownKernel, &mut lanes, 10).is_err());
        assert!(gpu.try_transfer_to_device(64).is_err());
        assert!(gpu.try_transfer_to_host(64).is_err());
        assert!(gpu.device_alloc(64).is_err());
    }

    #[test]
    fn transfer_timeout_charges_stall_then_errors() {
        let plan = FaultPlan::parse("timeout-s 0.125\nfault 0 0 transfer-timeout").unwrap();
        let mut gpu = Gpu::new(device());
        gpu.set_fault_plan(&plan, 0);
        let err = gpu.try_transfer_to_device(1024).expect_err("timed out");
        assert!(err.is_retryable());
        assert!((gpu.clock_s() - 0.125).abs() < 1e-15);
        assert_eq!(gpu.ledger().bytes_h2d, 0, "no bytes moved");
        // The retry is clean and moves the bytes.
        gpu.try_transfer_to_device(1024).expect("retry clean");
        assert_eq!(gpu.ledger().bytes_h2d, 1024);
    }

    #[test]
    fn degrade_slows_kernels_but_results_identical() {
        let plan = FaultPlan::parse("degrade-factor 4.0\nfault 0 0 degrade").unwrap();
        let mut clean = Gpu::new(device());
        let mut slow = Gpu::new(device());
        slow.set_fault_plan(&plan, 0);
        let mut a = vec![9u32, 3, 7, 5];
        let mut b = a.clone();
        let sc = clean.launch(&CountdownKernel, &mut a, 100);
        let sd = slow
            .try_launch(&CountdownKernel, &mut b, 100)
            .expect("degraded device still runs");
        assert_eq!(a, b, "degradation affects time, never results");
        assert_eq!(slow.health(), DeviceHealth::Degraded);
        assert!((sd.kernel_s / sc.kernel_s - 4.0).abs() < 1e-9);
    }

    #[test]
    fn alloc_fault_is_transient_device_error() {
        let plan = FaultPlan::parse("fault 0 0 alloc-fail").unwrap();
        let mut gpu = Gpu::new(device());
        gpu.set_fault_plan(&plan, 0);
        let err = gpu.device_alloc(1024).expect_err("alloc fault");
        assert_eq!(err.kind(), tracto_trace::ErrorKind::Device);
        assert!(err.is_retryable());
        assert_eq!(gpu.allocated_bytes(), 0);
        gpu.device_alloc(1024).expect("retry clean");
        assert_eq!(gpu.allocated_bytes(), 1024);
    }

    #[test]
    fn injected_faults_emit_trace_events() {
        use std::sync::Arc;
        use tracto_trace::{RingSink, Tracer};

        let plan = FaultPlan::parse(
            "fault 2 0 launch-fail\nfault 2 0 transfer-timeout\nfault 2 0 alloc-fail",
        )
        .unwrap();
        let ring = Arc::new(RingSink::new(64));
        let mut gpu = Gpu::with_tracer(device(), Tracer::shared(ring.clone()));
        gpu.set_tracer(Tracer::shared(ring.clone()), 2);
        gpu.set_fault_plan(&plan, 2);
        let mut lanes = vec![1u32];
        let _ = gpu.try_launch(&CountdownKernel, &mut lanes, 10);
        let _ = gpu.try_transfer_to_host(64);
        let _ = gpu.device_alloc(64);
        let faults = ring.named("gpu.fault");
        assert_eq!(faults.len(), 3);
        assert!(faults.iter().all(|e| e.field_u64("device") == Some(2)));
    }

    #[test]
    fn stream_zero_matches_legacy_clock_exactly() {
        let mut legacy = Gpu::new(device());
        let mut streamed = Gpu::new(device());
        let mut a = vec![7u32; 8];
        let mut b = a.clone();
        legacy.transfer_to_device(1_000_000);
        legacy.launch(&CountdownKernel, &mut a, 100);
        legacy.host_reduction(8);
        legacy.transfer_to_host(500_000);
        streamed.try_transfer_to_device_on(1_000_000, 0).unwrap();
        streamed
            .try_launch_on(&CountdownKernel, &mut b, 100, 0)
            .unwrap();
        streamed.host_reduction_on(8, 0);
        streamed.try_transfer_to_host_on(500_000, 0).unwrap();
        assert_eq!(a, b);
        assert_eq!(legacy.clock_s(), streamed.clock_s(), "bit-identical clock");
        assert_eq!(streamed.overlap_saved_s(), 0.0);
    }

    #[test]
    fn second_stream_hides_transfer_behind_kernel() {
        let mut serial = Gpu::new(device());
        let mut streamed = Gpu::new(device());
        let mut a = vec![200u32; 8];
        let mut b = a.clone();
        serial.launch(&CountdownKernel, &mut a, 1000);
        serial.transfer_to_device(4_000_000);
        streamed
            .try_launch_on(&CountdownKernel, &mut b, 1000, 0)
            .unwrap();
        streamed.try_transfer_to_device_on(4_000_000, 1).unwrap();
        assert_eq!(a, b, "streams reorder time, never results");
        assert!(streamed.clock_s() < serial.clock_s());
        assert!(streamed.overlap_saved_s() > 0.0);
        assert_eq!(
            streamed.ledger().total_s(),
            serial.ledger().total_s(),
            "device-seconds identical; only the wall shrinks"
        );
    }

    #[test]
    fn stream_ops_emit_stream_trace_events() {
        use std::sync::Arc;
        use tracto_trace::{RingSink, Tracer};

        let ring = Arc::new(RingSink::new(64));
        let mut gpu = Gpu::with_tracer(device(), Tracer::shared(ring.clone()));
        let mut lanes = vec![300u32; 8];
        gpu.try_launch_on(&CountdownKernel, &mut lanes, 1000, 0)
            .unwrap();
        gpu.try_transfer_to_device_on(4_000_000, 1).unwrap();
        gpu.host_reduction_on(16, 1);
        let events = ring.named("gpu.stream");
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].field_u64("stream"), Some(0));
        assert_eq!(
            events[0].field("segment"),
            Some(&tracto_trace::Value::Str("kernel"))
        );
        let h2d = &events[1];
        assert_eq!(h2d.field_u64("stream"), Some(1));
        let dur = h2d.field_f64("duration_s").unwrap();
        let hidden = h2d.field_f64("hidden_s").unwrap();
        assert!(
            (hidden - dur).abs() < 1e-15,
            "transfer fully hidden behind the stream-0 kernel"
        );
        // Legacy (streamless) ops never emit gpu.stream.
        gpu.transfer_to_host(64);
        assert_eq!(ring.count("gpu.stream"), 3);
    }

    #[test]
    fn parallel_matches_sequential_results() {
        // The same lanes through a 1-wide device (serial wavefronts) and the
        // normal device must end in identical states.
        let mut wide = Gpu::new(device());
        let mut narrow = Gpu::new(DeviceConfig {
            wavefront_size: 1,
            ..device()
        });
        let mut a: Vec<u32> = (1..100).collect();
        let mut b = a.clone();
        wide.launch(&CountdownKernel, &mut a, 1000);
        narrow.launch(&CountdownKernel, &mut b, 1000);
        assert_eq!(a, b);
    }
}
