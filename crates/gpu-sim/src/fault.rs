//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is a seeded, finite schedule of fault events addressed
//! by `(device, operation index, kind)`. The simulator keeps one operation
//! counter per fault *category* (launch / transfer / alloc) per device, and
//! when a counter reaches an event's `at_op` the fault fires — exactly once.
//! Because every event is consumed on firing, retry loops over a faulted
//! operation always terminate, and because the schedule is pure data keyed
//! on counters (not wall time), a run with a given plan is reproducible
//! bit-for-bit.
//!
//! Faults never mutate lane state: they fire *before* the simulated kernel
//! executes, so a failed launch leaves its lanes untouched and a replay on
//! a surviving device produces the same results as a fault-free run — the
//! property the chaos tests assert.

use std::fmt;
use std::path::Path;
use tracto_trace::{TractoError, TractoResult};

/// What kind of fault an event injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A kernel launch fails transiently (driver hiccup). The launch
    /// charges only its fixed overhead; a retry on the same device works.
    LaunchFail,
    /// The device is lost: health becomes [`DeviceHealth::Failed`] and every
    /// subsequent operation on it errors. Sticky.
    DeviceLost,
    /// A device allocation fails even though capacity remains (fragmentation
    /// / driver fault). Transient.
    AllocFail,
    /// A transfer stalls until the plan's timeout, charges that stall to the
    /// clock, then errors. Transient.
    TransferTimeout,
    /// The device drops to [`DeviceHealth::Degraded`]: kernels still run but
    /// take `degrade_factor ×` as long. Sticky.
    Degrade,
}

impl FaultKind {
    /// Which operation counter this kind is matched against.
    pub fn category(self) -> FaultCategory {
        match self {
            FaultKind::LaunchFail | FaultKind::DeviceLost | FaultKind::Degrade => {
                FaultCategory::Launch
            }
            FaultKind::TransferTimeout => FaultCategory::Transfer,
            FaultKind::AllocFail => FaultCategory::Alloc,
        }
    }

    /// Stable kebab-case name, used in plan files and trace events.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::LaunchFail => "launch-fail",
            FaultKind::DeviceLost => "device-lost",
            FaultKind::AllocFail => "alloc-fail",
            FaultKind::TransferTimeout => "transfer-timeout",
            FaultKind::Degrade => "degrade",
        }
    }

    /// Severity rank when several events collide on one operation: only the
    /// most severe fires, the rest are dropped.
    fn severity(self) -> u8 {
        match self {
            FaultKind::DeviceLost => 3,
            FaultKind::LaunchFail | FaultKind::AllocFail | FaultKind::TransferTimeout => 2,
            FaultKind::Degrade => 1,
        }
    }

    fn parse(text: &str) -> Option<Self> {
        match text {
            "launch-fail" => Some(FaultKind::LaunchFail),
            "device-lost" => Some(FaultKind::DeviceLost),
            "alloc-fail" => Some(FaultKind::AllocFail),
            "transfer-timeout" => Some(FaultKind::TransferTimeout),
            "degrade" => Some(FaultKind::Degrade),
            _ => None,
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The operation counter a fault kind is matched against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultCategory {
    /// Kernel launches.
    Launch,
    /// Transfers (either direction; one shared counter per device).
    Transfer,
    /// Device allocations.
    Alloc,
}

/// Health of a simulated device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceHealth {
    /// Operating normally.
    Healthy,
    /// Still executing, but kernels run `degrade_factor ×` slower.
    Degraded,
    /// Lost. Every operation errors with [`TractoError::Device`].
    Failed,
}

/// One scheduled fault: fires when `device`'s counter for
/// `kind.category()` reaches `at_op`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Which device the fault hits.
    pub device: u32,
    /// Zero-based index of the operation (within the kind's category) that
    /// the fault fires on.
    pub at_op: u64,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic schedule of fault events plus the constants that shape
/// their cost.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// The scheduled events, in declaration order.
    pub events: Vec<FaultEvent>,
    /// Simulated seconds a timed-out transfer stalls before erroring.
    pub transfer_timeout_s: f64,
    /// Kernel-time multiplier applied once a device degrades.
    pub degrade_factor: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            events: Vec::new(),
            transfer_timeout_s: 0.05,
            degrade_factor: 4.0,
        }
    }
}

/// splitmix64: small, dependency-free, and good enough to scatter fault
/// events deterministically from a seed.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// An empty plan (no faults, default timing constants).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Generate a recoverable plan from a seed: transient launch failures,
    /// transfer timeouts, and degradations scattered across `devices`
    /// devices, plus at most `devices - 1` device losses — never all of
    /// them. Every fault in a seeded plan is absorbable by multi-device
    /// failover, so results stay bit-identical to a fault-free run.
    pub fn seeded(seed: u64, devices: u32) -> Self {
        let devices = devices.max(1);
        let mut state = seed ^ 0xD6E8_FEB8_6659_FD93;
        let mut events = Vec::new();
        for d in 0..devices {
            let r = splitmix64(&mut state);
            if r % 2 == 0 {
                events.push(FaultEvent {
                    device: d,
                    at_op: (r >> 32) & 3,
                    kind: FaultKind::LaunchFail,
                });
            }
            let r = splitmix64(&mut state);
            if r % 3 == 0 {
                events.push(FaultEvent {
                    device: d,
                    at_op: (r >> 32) & 3,
                    kind: FaultKind::TransferTimeout,
                });
            }
            let r = splitmix64(&mut state);
            if r % 4 == 0 {
                events.push(FaultEvent {
                    device: d,
                    at_op: (r >> 32) & 7,
                    kind: FaultKind::Degrade,
                });
            }
        }
        if devices > 1 {
            let losses = 1 + (splitmix64(&mut state) % u64::from(devices - 1)) as u32;
            let mut candidates: Vec<u32> = (0..devices).collect();
            for _ in 0..losses {
                let idx = (splitmix64(&mut state) % candidates.len() as u64) as usize;
                let device = candidates.swap_remove(idx);
                events.push(FaultEvent {
                    device,
                    // Lose the device a little later than the transient
                    // faults so both paths get exercised.
                    at_op: 1 + (splitmix64(&mut state) & 3),
                    kind: FaultKind::DeviceLost,
                });
            }
        }
        if events.is_empty() {
            // A single lucky device still gets one transient fault so a
            // seeded plan is never a silent no-op.
            events.push(FaultEvent {
                device: 0,
                at_op: 0,
                kind: FaultKind::LaunchFail,
            });
        }
        FaultPlan {
            events,
            ..FaultPlan::default()
        }
    }

    /// The events addressed to one device, in declaration order.
    pub fn events_for(&self, device: u32) -> Vec<FaultEvent> {
        self.events
            .iter()
            .filter(|e| e.device == device)
            .copied()
            .collect()
    }

    /// Highest device index named by any event, plus one (0 for an empty
    /// plan). Useful for validating a plan against a pool size.
    pub fn max_device(&self) -> u32 {
        self.events.iter().map(|e| e.device + 1).max().unwrap_or(0)
    }

    /// Parse the plan file format: one directive per line, `#` comments.
    ///
    /// ```text
    /// # lose device 1 on its second launch, stall a transfer on device 0
    /// timeout-s 0.02
    /// degrade-factor 3.0
    /// fault 1 1 device-lost
    /// fault 0 0 transfer-timeout
    /// ```
    pub fn parse(text: &str) -> TractoResult<Self> {
        let mut plan = FaultPlan::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let directive = parts.next().unwrap_or("");
            let bad = |what: &str| {
                TractoError::config(format!("fault plan line {}: {what}: {raw:?}", lineno + 1))
            };
            match directive {
                "timeout-s" => {
                    let v: f64 = parts
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| bad("expected `timeout-s <seconds>`"))?;
                    if v <= 0.0 || v.is_nan() {
                        return Err(bad("timeout must be positive"));
                    }
                    plan.transfer_timeout_s = v;
                }
                "degrade-factor" => {
                    let v: f64 = parts
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| bad("expected `degrade-factor <multiplier>`"))?;
                    if v < 1.0 || v.is_nan() {
                        return Err(bad("degrade factor must be >= 1"));
                    }
                    plan.degrade_factor = v;
                }
                "fault" => {
                    let device: u32 = parts
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| bad("expected `fault <device> <at-op> <kind>`"))?;
                    let at_op: u64 = parts
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| bad("expected `fault <device> <at-op> <kind>`"))?;
                    let kind = parts.next().and_then(FaultKind::parse).ok_or_else(|| {
                        bad("kind must be one of launch-fail, device-lost, \
                                 alloc-fail, transfer-timeout, degrade")
                    })?;
                    plan.events.push(FaultEvent {
                        device,
                        at_op,
                        kind,
                    });
                }
                _ => return Err(bad("unknown directive")),
            }
            if parts.next().is_some() {
                return Err(bad("trailing tokens"));
            }
        }
        Ok(plan)
    }

    /// Load and parse a plan file.
    pub fn load(path: impl AsRef<Path>) -> TractoResult<Self> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| TractoError::io(format!("read fault plan {}", path.display()), e))?;
        FaultPlan::parse(&text)
    }
}

/// Per-device runtime fault state: the device's pending events, health, and
/// operation counters. Owned by [`Gpu`](crate::Gpu); split out so the
/// firing rule is testable on its own.
#[derive(Debug, Clone)]
pub(crate) struct FaultState {
    pending: Vec<FaultEvent>,
    pub(crate) health: DeviceHealth,
    pub(crate) degrade_factor: f64,
    pub(crate) transfer_timeout_s: f64,
    planned_degrade_factor: f64,
    launches_seen: u64,
    transfers_seen: u64,
    allocs_seen: u64,
    pub(crate) faults_injected: u64,
}

impl Default for FaultState {
    fn default() -> Self {
        FaultState {
            pending: Vec::new(),
            health: DeviceHealth::Healthy,
            degrade_factor: 1.0,
            transfer_timeout_s: FaultPlan::default().transfer_timeout_s,
            planned_degrade_factor: FaultPlan::default().degrade_factor,
            launches_seen: 0,
            transfers_seen: 0,
            allocs_seen: 0,
            faults_injected: 0,
        }
    }
}

impl FaultState {
    /// Install `plan`'s events for `device`, resetting counters and health.
    pub(crate) fn install(&mut self, plan: &FaultPlan, device: u32) {
        *self = FaultState {
            pending: plan.events_for(device),
            transfer_timeout_s: plan.transfer_timeout_s,
            planned_degrade_factor: plan.degrade_factor,
            ..FaultState::default()
        };
    }

    /// Advance the counter for `category` and return the fault (if any)
    /// scheduled for the operation just counted. When several events
    /// collide on one operation, the most severe fires and the others are
    /// dropped — all are consumed either way, so retries terminate.
    pub(crate) fn next_fault(&mut self, category: FaultCategory) -> Option<FaultKind> {
        let op = match category {
            FaultCategory::Launch => {
                self.launches_seen += 1;
                self.launches_seen - 1
            }
            FaultCategory::Transfer => {
                self.transfers_seen += 1;
                self.transfers_seen - 1
            }
            FaultCategory::Alloc => {
                self.allocs_seen += 1;
                self.allocs_seen - 1
            }
        };
        let mut fired: Option<FaultKind> = None;
        self.pending.retain(|e| {
            if e.kind.category() == category && e.at_op == op {
                match fired {
                    Some(prev) if prev.severity() >= e.kind.severity() => {}
                    _ => fired = Some(e.kind),
                }
                false
            } else {
                true
            }
        });
        if let Some(kind) = fired {
            self.faults_injected += 1;
            match kind {
                FaultKind::DeviceLost => self.health = DeviceHealth::Failed,
                FaultKind::Degrade if self.health == DeviceHealth::Healthy => {
                    self.health = DeviceHealth::Degraded;
                    self.degrade_factor = self.planned_degrade_factor;
                }
                _ => {}
            }
        }
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic_and_recoverable() {
        for seed in [0u64, 1, 2, 3, 42, 0xDEADBEEF] {
            for devices in [1u32, 2, 4, 8] {
                let a = FaultPlan::seeded(seed, devices);
                let b = FaultPlan::seeded(seed, devices);
                assert_eq!(a, b, "seed {seed} devices {devices}");
                assert!(!a.events.is_empty());
                let losses = a
                    .events
                    .iter()
                    .filter(|e| e.kind == FaultKind::DeviceLost)
                    .count();
                assert!(
                    losses < devices as usize,
                    "seed {seed}: {losses} losses must leave a survivor among {devices}"
                );
                assert!(
                    a.events.iter().all(|e| e.kind != FaultKind::AllocFail),
                    "seeded plans only contain internally recoverable faults"
                );
                assert!(a.events.iter().all(|e| e.device < devices));
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::seeded(1, 4);
        let b = FaultPlan::seeded(2, 4);
        assert_ne!(a, b);
    }

    #[test]
    fn parse_round_trips_directives() {
        let plan = FaultPlan::parse(
            "# header comment\n\
             timeout-s 0.02\n\
             degrade-factor 3.0\n\
             fault 1 1 device-lost  # inline comment\n\
             fault 0 0 transfer-timeout\n\
             fault 0 2 alloc-fail\n",
        )
        .unwrap();
        assert_eq!(plan.transfer_timeout_s, 0.02);
        assert_eq!(plan.degrade_factor, 3.0);
        assert_eq!(plan.events.len(), 3);
        assert_eq!(
            plan.events[0],
            FaultEvent {
                device: 1,
                at_op: 1,
                kind: FaultKind::DeviceLost
            }
        );
        assert_eq!(plan.max_device(), 2);
        assert_eq!(plan.events_for(0).len(), 2);
        assert_eq!(plan.events_for(7).len(), 0);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        for bad in [
            "fault 0 0 explode",
            "fault 0 zero launch-fail",
            "fault 0",
            "timeout-s -1",
            "degrade-factor 0.5",
            "warp-core-breach 1",
            "fault 0 0 launch-fail extra",
        ] {
            let err = FaultPlan::parse(bad).expect_err(bad);
            assert_eq!(err.kind(), tracto_trace::ErrorKind::Config, "{bad}");
            assert!(err.to_string().contains("line 1"), "{bad}: {err}");
        }
    }

    #[test]
    fn fault_state_fires_once_at_indexed_op() {
        let plan = FaultPlan::parse("fault 0 2 launch-fail\nfault 0 1 transfer-timeout").unwrap();
        let mut state = FaultState::default();
        state.install(&plan, 0);
        assert_eq!(state.next_fault(FaultCategory::Launch), None); // op 0
        assert_eq!(state.next_fault(FaultCategory::Launch), None); // op 1
        assert_eq!(
            state.next_fault(FaultCategory::Launch),
            Some(FaultKind::LaunchFail)
        );
        // Consumed: the retry of launch op 3 is clean.
        assert_eq!(state.next_fault(FaultCategory::Launch), None);
        assert_eq!(state.next_fault(FaultCategory::Transfer), None);
        assert_eq!(
            state.next_fault(FaultCategory::Transfer),
            Some(FaultKind::TransferTimeout)
        );
        assert_eq!(state.faults_injected, 2);
        assert_eq!(state.health, DeviceHealth::Healthy);
    }

    #[test]
    fn colliding_events_fire_most_severe_and_consume_all() {
        let plan =
            FaultPlan::parse("fault 0 0 degrade\nfault 0 0 device-lost\nfault 0 0 launch-fail")
                .unwrap();
        let mut state = FaultState::default();
        state.install(&plan, 0);
        assert_eq!(
            state.next_fault(FaultCategory::Launch),
            Some(FaultKind::DeviceLost)
        );
        assert_eq!(state.health, DeviceHealth::Failed);
        assert_eq!(state.next_fault(FaultCategory::Launch), None);
    }

    #[test]
    fn degrade_sets_health_and_factor() {
        let mut plan = FaultPlan::parse("fault 0 0 degrade").unwrap();
        plan.degrade_factor = 2.5;
        let mut state = FaultState::default();
        state.install(&plan, 0);
        assert_eq!(
            state.next_fault(FaultCategory::Launch),
            Some(FaultKind::Degrade)
        );
        assert_eq!(state.health, DeviceHealth::Degraded);
        assert_eq!(state.degrade_factor, 2.5);
    }

    #[test]
    fn events_only_hit_their_device() {
        let plan = FaultPlan::parse("fault 3 0 launch-fail").unwrap();
        let mut state = FaultState::default();
        state.install(&plan, 0);
        assert_eq!(state.next_fault(FaultCategory::Launch), None);
        let mut state3 = FaultState::default();
        state3.install(&plan, 3);
        assert_eq!(
            state3.next_fault(FaultCategory::Launch),
            Some(FaultKind::LaunchFail)
        );
    }
}
