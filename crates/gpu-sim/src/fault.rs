//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is a seeded, finite schedule of fault events addressed
//! by `(device, operation index, kind)`. The simulator keeps one operation
//! counter per fault *category* (launch / transfer / alloc) per device, and
//! when a counter reaches an event's `at_op` the fault fires — exactly once.
//! Because every event is consumed on firing, retry loops over a faulted
//! operation always terminate, and because the schedule is pure data keyed
//! on counters (not wall time), a run with a given plan is reproducible
//! bit-for-bit.
//!
//! Faults never mutate lane state: they fire *before* the simulated kernel
//! executes, so a failed launch leaves its lanes untouched and a replay on
//! a surviving device produces the same results as a fault-free run — the
//! property the chaos tests assert.

use std::fmt;
use std::path::Path;
use tracto_trace::{TractoError, TractoResult};

/// What kind of fault an event injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A kernel launch fails transiently (driver hiccup). The launch
    /// charges only its fixed overhead; a retry on the same device works.
    LaunchFail,
    /// The device is lost: health becomes [`DeviceHealth::Failed`] and every
    /// subsequent operation on it errors. Sticky.
    DeviceLost,
    /// A device allocation fails even though capacity remains (fragmentation
    /// / driver fault). Transient.
    AllocFail,
    /// A transfer stalls until the plan's timeout, charges that stall to the
    /// clock, then errors. Transient.
    TransferTimeout,
    /// The device drops to [`DeviceHealth::Degraded`]: kernels still run but
    /// take `degrade_factor ×` as long. Sticky.
    Degrade,
}

impl FaultKind {
    /// Which operation counter this kind is matched against.
    pub fn category(self) -> FaultCategory {
        match self {
            FaultKind::LaunchFail | FaultKind::DeviceLost | FaultKind::Degrade => {
                FaultCategory::Launch
            }
            FaultKind::TransferTimeout => FaultCategory::Transfer,
            FaultKind::AllocFail => FaultCategory::Alloc,
        }
    }

    /// Stable kebab-case name, used in plan files and trace events.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::LaunchFail => "launch-fail",
            FaultKind::DeviceLost => "device-lost",
            FaultKind::AllocFail => "alloc-fail",
            FaultKind::TransferTimeout => "transfer-timeout",
            FaultKind::Degrade => "degrade",
        }
    }

    /// Severity rank when several events collide on one operation: only the
    /// most severe fires, the rest are dropped.
    fn severity(self) -> u8 {
        match self {
            FaultKind::DeviceLost => 3,
            FaultKind::LaunchFail | FaultKind::AllocFail | FaultKind::TransferTimeout => 2,
            FaultKind::Degrade => 1,
        }
    }

    fn parse(text: &str) -> Option<Self> {
        match text {
            "launch-fail" => Some(FaultKind::LaunchFail),
            "device-lost" => Some(FaultKind::DeviceLost),
            "alloc-fail" => Some(FaultKind::AllocFail),
            "transfer-timeout" => Some(FaultKind::TransferTimeout),
            "degrade" => Some(FaultKind::Degrade),
            _ => None,
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The operation counter a fault kind is matched against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultCategory {
    /// Kernel launches.
    Launch,
    /// Transfers (either direction; one shared counter per device).
    Transfer,
    /// Device allocations.
    Alloc,
}

/// Health of a simulated device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceHealth {
    /// Operating normally.
    Healthy,
    /// Still executing, but kernels run `degrade_factor ×` slower.
    Degraded,
    /// Lost. Every operation errors with [`TractoError::Device`].
    Failed,
}

/// One scheduled fault: fires when `device`'s counter for
/// `kind.category()` reaches `at_op`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Which device the fault hits.
    pub device: u32,
    /// Zero-based index of the operation (within the kind's category) that
    /// the fault fires on.
    pub at_op: u64,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic schedule of fault events plus the constants that shape
/// their cost.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// The scheduled events, in declaration order.
    pub events: Vec<FaultEvent>,
    /// Simulated seconds a timed-out transfer stalls before erroring.
    pub transfer_timeout_s: f64,
    /// Kernel-time multiplier applied once a device degrades.
    pub degrade_factor: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            events: Vec::new(),
            transfer_timeout_s: 0.05,
            degrade_factor: 4.0,
        }
    }
}

/// splitmix64: small, dependency-free, and good enough to scatter fault
/// events deterministically from a seed.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// An empty plan (no faults, default timing constants).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Generate a recoverable plan from a seed: transient launch failures,
    /// transfer timeouts, and degradations scattered across `devices`
    /// devices, plus at most `devices - 1` device losses — never all of
    /// them. Every fault in a seeded plan is absorbable by multi-device
    /// failover, so results stay bit-identical to a fault-free run.
    pub fn seeded(seed: u64, devices: u32) -> Self {
        let devices = devices.max(1);
        let mut state = seed ^ 0xD6E8_FEB8_6659_FD93;
        let mut events = Vec::new();
        for d in 0..devices {
            let r = splitmix64(&mut state);
            if r % 2 == 0 {
                events.push(FaultEvent {
                    device: d,
                    at_op: (r >> 32) & 3,
                    kind: FaultKind::LaunchFail,
                });
            }
            let r = splitmix64(&mut state);
            if r % 3 == 0 {
                events.push(FaultEvent {
                    device: d,
                    at_op: (r >> 32) & 3,
                    kind: FaultKind::TransferTimeout,
                });
            }
            let r = splitmix64(&mut state);
            if r % 4 == 0 {
                events.push(FaultEvent {
                    device: d,
                    at_op: (r >> 32) & 7,
                    kind: FaultKind::Degrade,
                });
            }
        }
        if devices > 1 {
            let losses = 1 + (splitmix64(&mut state) % u64::from(devices - 1)) as u32;
            let mut candidates: Vec<u32> = (0..devices).collect();
            for _ in 0..losses {
                let idx = (splitmix64(&mut state) % candidates.len() as u64) as usize;
                let device = candidates.swap_remove(idx);
                events.push(FaultEvent {
                    device,
                    // Lose the device a little later than the transient
                    // faults so both paths get exercised.
                    at_op: 1 + (splitmix64(&mut state) & 3),
                    kind: FaultKind::DeviceLost,
                });
            }
        }
        if events.is_empty() {
            // A single lucky device still gets one transient fault so a
            // seeded plan is never a silent no-op.
            events.push(FaultEvent {
                device: 0,
                at_op: 0,
                kind: FaultKind::LaunchFail,
            });
        }
        FaultPlan {
            events,
            ..FaultPlan::default()
        }
    }

    /// The events addressed to one device, in declaration order.
    pub fn events_for(&self, device: u32) -> Vec<FaultEvent> {
        self.events
            .iter()
            .filter(|e| e.device == device)
            .copied()
            .collect()
    }

    /// Highest device index named by any event, plus one (0 for an empty
    /// plan). Useful for validating a plan against a pool size.
    pub fn max_device(&self) -> u32 {
        self.events.iter().map(|e| e.device + 1).max().unwrap_or(0)
    }

    /// Parse the plan file format: one directive per line, `#` comments.
    ///
    /// ```text
    /// # lose device 1 on its second launch, stall a transfer on device 0
    /// timeout-s 0.02
    /// degrade-factor 3.0
    /// fault 1 1 device-lost
    /// fault 0 0 transfer-timeout
    /// ```
    pub fn parse(text: &str) -> TractoResult<Self> {
        let mut plan = FaultPlan::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let directive = parts.next().unwrap_or("");
            let bad = |what: &str| {
                TractoError::config(format!("fault plan line {}: {what}: {raw:?}", lineno + 1))
            };
            match directive {
                "timeout-s" => {
                    let v: f64 = parts
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| bad("expected `timeout-s <seconds>`"))?;
                    if v <= 0.0 || v.is_nan() {
                        return Err(bad("timeout must be positive"));
                    }
                    plan.transfer_timeout_s = v;
                }
                "degrade-factor" => {
                    let v: f64 = parts
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| bad("expected `degrade-factor <multiplier>`"))?;
                    if v < 1.0 || v.is_nan() {
                        return Err(bad("degrade factor must be >= 1"));
                    }
                    plan.degrade_factor = v;
                }
                "fault" => {
                    let device: u32 = parts
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| bad("expected `fault <device> <at-op> <kind>`"))?;
                    let at_op: u64 = parts
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| bad("expected `fault <device> <at-op> <kind>`"))?;
                    let kind = parts.next().and_then(FaultKind::parse).ok_or_else(|| {
                        bad("kind must be one of launch-fail, device-lost, \
                                 alloc-fail, transfer-timeout, degrade")
                    })?;
                    plan.events.push(FaultEvent {
                        device,
                        at_op,
                        kind,
                    });
                }
                _ => return Err(bad("unknown directive")),
            }
            if parts.next().is_some() {
                return Err(bad("trailing tokens"));
            }
        }
        Ok(plan)
    }

    /// Load and parse a plan file.
    pub fn load(path: impl AsRef<Path>) -> TractoResult<Self> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| TractoError::io(format!("read fault plan {}", path.display()), e))?;
        FaultPlan::parse(&text)
    }

    /// Serialize the plan back to the [`FaultPlan::parse`] file format.
    /// `FaultPlan::parse(&plan.to_text())` reproduces the plan exactly.
    pub fn to_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "timeout-s {}", self.transfer_timeout_s);
        let _ = writeln!(out, "degrade-factor {}", self.degrade_factor);
        for e in &self.events {
            let _ = writeln!(out, "fault {} {} {}", e.device, e.at_op, e.kind);
        }
        out
    }

    /// Reconstruct a plan from a recorded JSON-lines trace: every
    /// `gpu.fault` event (as emitted by the simulator and written by a
    /// `JsonlSink`) becomes one scheduled [`FaultEvent`] at the operation
    /// index it originally fired on. Lines for other event names are
    /// ignored; malformed JSON or a `gpu.fault` line missing its
    /// `device`/`at_op`/`kind` fields is a [`Format`] error.
    ///
    /// Because the simulator's counters are deterministic, replaying the
    /// reconstructed plan against the same workload injects the identical
    /// failure sequence. Timing constants (`timeout-s`, `degrade-factor`)
    /// are not recorded in fault events and revert to defaults.
    ///
    /// [`Format`]: tracto_trace::ErrorKind::Format
    pub fn from_trace(text: &str) -> TractoResult<Self> {
        use tracto_trace::json::{parse, Json};
        let mut plan = FaultPlan::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() {
                continue;
            }
            let bad = |what: String| {
                TractoError::format(format!("fault trace line {}: {what}", lineno + 1))
            };
            let doc = parse(line).map_err(|e| bad(e.to_string()))?;
            if doc.get("name").and_then(Json::as_str) != Some("gpu.fault") {
                continue;
            }
            let fields = doc
                .get("fields")
                .ok_or_else(|| bad("gpu.fault event has no fields".into()))?;
            let device = fields
                .get("device")
                .and_then(Json::as_f64)
                .filter(|v| *v >= 0.0 && v.fract() == 0.0)
                .ok_or_else(|| bad("missing or non-integer `device`".into()))?
                as u32;
            let at_op = fields
                .get("at_op")
                .and_then(Json::as_f64)
                .filter(|v| *v >= 0.0 && v.fract() == 0.0)
                .ok_or_else(|| bad("missing or non-integer `at_op`".into()))?
                as u64;
            let kind = fields
                .get("kind")
                .and_then(Json::as_str)
                .and_then(FaultKind::parse)
                .ok_or_else(|| bad("missing or unknown `kind`".into()))?;
            plan.events.push(FaultEvent {
                device,
                at_op,
                kind,
            });
        }
        Ok(plan)
    }
}

/// Per-device runtime fault state: the device's pending events, health, and
/// operation counters. Owned by [`Gpu`](crate::Gpu); split out so the
/// firing rule is testable on its own.
#[derive(Debug, Clone)]
pub(crate) struct FaultState {
    pending: Vec<FaultEvent>,
    pub(crate) health: DeviceHealth,
    pub(crate) degrade_factor: f64,
    pub(crate) transfer_timeout_s: f64,
    planned_degrade_factor: f64,
    launches_seen: u64,
    transfers_seen: u64,
    allocs_seen: u64,
    pub(crate) faults_injected: u64,
}

impl Default for FaultState {
    fn default() -> Self {
        FaultState {
            pending: Vec::new(),
            health: DeviceHealth::Healthy,
            degrade_factor: 1.0,
            transfer_timeout_s: FaultPlan::default().transfer_timeout_s,
            planned_degrade_factor: FaultPlan::default().degrade_factor,
            launches_seen: 0,
            transfers_seen: 0,
            allocs_seen: 0,
            faults_injected: 0,
        }
    }
}

impl FaultState {
    /// Install `plan`'s events for `device`, resetting counters and health.
    pub(crate) fn install(&mut self, plan: &FaultPlan, device: u32) {
        *self = FaultState {
            pending: plan.events_for(device),
            transfer_timeout_s: plan.transfer_timeout_s,
            planned_degrade_factor: plan.degrade_factor,
            ..FaultState::default()
        };
    }

    /// Advance the counter for `category` and return the fault (if any)
    /// scheduled for the operation just counted, paired with that
    /// operation's index — the `at_op` a replay plan needs to re-fire it.
    /// When several events collide on one operation, the most severe fires
    /// and the others are dropped — all are consumed either way, so retries
    /// terminate.
    pub(crate) fn next_fault(&mut self, category: FaultCategory) -> Option<(FaultKind, u64)> {
        let op = match category {
            FaultCategory::Launch => {
                self.launches_seen += 1;
                self.launches_seen - 1
            }
            FaultCategory::Transfer => {
                self.transfers_seen += 1;
                self.transfers_seen - 1
            }
            FaultCategory::Alloc => {
                self.allocs_seen += 1;
                self.allocs_seen - 1
            }
        };
        let mut fired: Option<FaultKind> = None;
        self.pending.retain(|e| {
            if e.kind.category() == category && e.at_op == op {
                match fired {
                    Some(prev) if prev.severity() >= e.kind.severity() => {}
                    _ => fired = Some(e.kind),
                }
                false
            } else {
                true
            }
        });
        if let Some(kind) = fired {
            self.faults_injected += 1;
            match kind {
                FaultKind::DeviceLost => self.health = DeviceHealth::Failed,
                FaultKind::Degrade if self.health == DeviceHealth::Healthy => {
                    self.health = DeviceHealth::Degraded;
                    self.degrade_factor = self.planned_degrade_factor;
                }
                _ => {}
            }
        }
        fired.map(|kind| (kind, op))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic_and_recoverable() {
        for seed in [0u64, 1, 2, 3, 42, 0xDEADBEEF] {
            for devices in [1u32, 2, 4, 8] {
                let a = FaultPlan::seeded(seed, devices);
                let b = FaultPlan::seeded(seed, devices);
                assert_eq!(a, b, "seed {seed} devices {devices}");
                assert!(!a.events.is_empty());
                let losses = a
                    .events
                    .iter()
                    .filter(|e| e.kind == FaultKind::DeviceLost)
                    .count();
                assert!(
                    losses < devices as usize,
                    "seed {seed}: {losses} losses must leave a survivor among {devices}"
                );
                assert!(
                    a.events.iter().all(|e| e.kind != FaultKind::AllocFail),
                    "seeded plans only contain internally recoverable faults"
                );
                assert!(a.events.iter().all(|e| e.device < devices));
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::seeded(1, 4);
        let b = FaultPlan::seeded(2, 4);
        assert_ne!(a, b);
    }

    #[test]
    fn parse_round_trips_directives() {
        let plan = FaultPlan::parse(
            "# header comment\n\
             timeout-s 0.02\n\
             degrade-factor 3.0\n\
             fault 1 1 device-lost  # inline comment\n\
             fault 0 0 transfer-timeout\n\
             fault 0 2 alloc-fail\n",
        )
        .unwrap();
        assert_eq!(plan.transfer_timeout_s, 0.02);
        assert_eq!(plan.degrade_factor, 3.0);
        assert_eq!(plan.events.len(), 3);
        assert_eq!(
            plan.events[0],
            FaultEvent {
                device: 1,
                at_op: 1,
                kind: FaultKind::DeviceLost
            }
        );
        assert_eq!(plan.max_device(), 2);
        assert_eq!(plan.events_for(0).len(), 2);
        assert_eq!(plan.events_for(7).len(), 0);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        for bad in [
            "fault 0 0 explode",
            "fault 0 zero launch-fail",
            "fault 0",
            "timeout-s -1",
            "degrade-factor 0.5",
            "warp-core-breach 1",
            "fault 0 0 launch-fail extra",
        ] {
            let err = FaultPlan::parse(bad).expect_err(bad);
            assert_eq!(err.kind(), tracto_trace::ErrorKind::Config, "{bad}");
            assert!(err.to_string().contains("line 1"), "{bad}: {err}");
        }
    }

    #[test]
    fn fault_state_fires_once_at_indexed_op() {
        let plan = FaultPlan::parse("fault 0 2 launch-fail\nfault 0 1 transfer-timeout").unwrap();
        let mut state = FaultState::default();
        state.install(&plan, 0);
        assert_eq!(state.next_fault(FaultCategory::Launch), None); // op 0
        assert_eq!(state.next_fault(FaultCategory::Launch), None); // op 1
        assert_eq!(
            state.next_fault(FaultCategory::Launch),
            Some((FaultKind::LaunchFail, 2))
        );
        // Consumed: the retry of launch op 3 is clean.
        assert_eq!(state.next_fault(FaultCategory::Launch), None);
        assert_eq!(state.next_fault(FaultCategory::Transfer), None);
        assert_eq!(
            state.next_fault(FaultCategory::Transfer),
            Some((FaultKind::TransferTimeout, 1))
        );
        assert_eq!(state.faults_injected, 2);
        assert_eq!(state.health, DeviceHealth::Healthy);
    }

    #[test]
    fn colliding_events_fire_most_severe_and_consume_all() {
        let plan =
            FaultPlan::parse("fault 0 0 degrade\nfault 0 0 device-lost\nfault 0 0 launch-fail")
                .unwrap();
        let mut state = FaultState::default();
        state.install(&plan, 0);
        assert_eq!(
            state.next_fault(FaultCategory::Launch),
            Some((FaultKind::DeviceLost, 0))
        );
        assert_eq!(state.health, DeviceHealth::Failed);
        assert_eq!(state.next_fault(FaultCategory::Launch), None);
    }

    #[test]
    fn degrade_sets_health_and_factor() {
        let mut plan = FaultPlan::parse("fault 0 0 degrade").unwrap();
        plan.degrade_factor = 2.5;
        let mut state = FaultState::default();
        state.install(&plan, 0);
        assert_eq!(
            state.next_fault(FaultCategory::Launch),
            Some((FaultKind::Degrade, 0))
        );
        assert_eq!(state.health, DeviceHealth::Degraded);
        assert_eq!(state.degrade_factor, 2.5);
    }

    #[test]
    fn to_text_round_trips_through_parse() {
        let plan = FaultPlan::parse(
            "timeout-s 0.02\ndegrade-factor 3\n\
             fault 1 1 device-lost\nfault 0 0 transfer-timeout\nfault 2 5 degrade",
        )
        .unwrap();
        assert_eq!(FaultPlan::parse(&plan.to_text()).unwrap(), plan);
        for seed in [1u64, 7, 42] {
            let seeded = FaultPlan::seeded(seed, 4);
            assert_eq!(FaultPlan::parse(&seeded.to_text()).unwrap(), seeded);
        }
    }

    /// Exercise `gpu` with a fixed operation schedule (fault-tolerantly)
    /// and return the `gpu.fault` events that fired, rendered as the
    /// JSON lines a `JsonlSink` would write.
    fn run_workload_capturing_faults(plan: &FaultPlan) -> Vec<String> {
        use crate::{DeviceConfig, Gpu};
        use std::sync::Arc;
        use tracto_trace::{json::event_to_json, RingSink, Tracer};

        struct Spin;
        impl crate::SimKernel for Spin {
            type Lane = u32;
            fn step(&self, lane: &mut u32) -> crate::LaneStatus {
                if *lane > 1 {
                    *lane -= 1;
                    crate::LaneStatus::Continue
                } else {
                    *lane = 0;
                    crate::LaneStatus::Finished
                }
            }
        }

        let ring = Arc::new(RingSink::new(256));
        let mut gpu = Gpu::with_tracer(
            DeviceConfig {
                wavefront_size: 4,
                num_compute_units: 2,
                waves_per_cu: 1,
                ..DeviceConfig::radeon_5870()
            },
            Tracer::shared(ring.clone()),
        );
        gpu.set_fault_plan(plan, 0);
        for _ in 0..4 {
            let _ = gpu.try_transfer_to_device(1024);
            let mut lanes = vec![3u32; 8];
            let _ = gpu.try_launch(&Spin, &mut lanes, 10);
            let _ = gpu.device_alloc(64);
            let _ = gpu.try_transfer_to_host(1024);
        }
        ring.named("gpu.fault").iter().map(event_to_json).collect()
    }

    #[test]
    fn from_trace_replays_an_identical_failure_sequence() {
        // Record a faulty run, turn its trace back into a plan, replay the
        // same workload: the second trace must fire the same faults at the
        // same operations.
        let original = FaultPlan::parse(
            "fault 0 1 launch-fail\nfault 0 2 transfer-timeout\n\
             fault 0 0 alloc-fail\nfault 0 3 degrade",
        )
        .unwrap();
        let first = run_workload_capturing_faults(&original);
        assert_eq!(first.len(), 4, "all scheduled faults fire");

        let recovered = FaultPlan::from_trace(&first.join("\n")).unwrap();
        // Events are reconstructed in firing order; the schedule itself is
        // order-independent (events fire by counter), so compare as sets.
        let sorted = |plan: &FaultPlan| {
            let mut v = plan.events.clone();
            v.sort_by_key(|e| (e.device, e.kind.category() as u8, e.at_op));
            v
        };
        assert_eq!(
            sorted(&recovered),
            sorted(&original),
            "schedule reconstructed"
        );

        let second = run_workload_capturing_faults(&recovered);
        let strip = |lines: &[String]| -> Vec<String> {
            // Compare the deterministic parts only (seq/t_ns are wall-time).
            lines
                .iter()
                .map(|l| l.split("\"name\"").nth(1).unwrap_or(l).to_string())
                .collect()
        };
        assert_eq!(strip(&first), strip(&second));
    }

    #[test]
    fn from_trace_skips_other_events_and_rejects_garbage() {
        let mixed = "{\"seq\":0,\"t_ns\":1,\"name\":\"serve.submit\",\"fields\":{}}\n\
             {\"seq\":1,\"t_ns\":2,\"name\":\"gpu.fault\",\"fields\":{\
             \"device\":1,\"kind\":\"device-lost\",\"op\":\"launch\",\
             \"at_op\":2,\"health\":\"failed\"}}\n";
        let plan = FaultPlan::from_trace(mixed).unwrap();
        assert_eq!(
            plan.events,
            vec![FaultEvent {
                device: 1,
                at_op: 2,
                kind: FaultKind::DeviceLost
            }]
        );

        for bad in [
            "not json at all",
            "{\"name\":\"gpu.fault\"}",
            "{\"name\":\"gpu.fault\",\"fields\":{\"device\":0,\"kind\":\"explode\",\"at_op\":0}}",
            "{\"name\":\"gpu.fault\",\"fields\":{\"device\":0,\"kind\":\"degrade\"}}",
        ] {
            let err = FaultPlan::from_trace(bad).expect_err(bad);
            assert_eq!(err.kind(), tracto_trace::ErrorKind::Format, "{bad}");
        }
    }

    #[test]
    fn events_only_hit_their_device() {
        let plan = FaultPlan::parse("fault 3 0 launch-fail").unwrap();
        let mut state = FaultState::default();
        state.install(&plan, 0);
        assert_eq!(state.next_fault(FaultCategory::Launch), None);
        let mut state3 = FaultState::default();
        state3.install(&plan, 3);
        assert_eq!(
            state3.next_fault(FaultCategory::Launch),
            Some((FaultKind::LaunchFail, 0))
        );
    }
}
