//! Stream-aware simulated clock — the Fig. 8 overlap model charged online.
//!
//! The paper's Fig. 8 shows upload / kernel / readback segments of different
//! streams hiding behind each other. [`StreamClock`] reproduces that cost
//! model on the simulated clock: every operation is charged to a *stream*
//! (an ordered chain of dependent segments) and a *resource* (the physical
//! unit that can only do one thing at a time — a GPU's compute engine, its
//! DMA link, the host CPU). A segment starts when both its stream's
//! previous segment has finished **and** its resource is free; it can never
//! start earlier than either, so overlapped schedules reorder *time*, never
//! the order of dependent work.
//!
//! With a single stream every charge starts exactly at the stream's ready
//! time (a resource can never be busy past it), so the clock degenerates to
//! the plain sequential sum the serialized path has always charged —
//! bit-identical, not merely close. Extra streams can only move segments
//! earlier, which is where the overlap saving comes from.

/// Greedy earliest-start scheduler over streams × resources.
///
/// `serial_s` accumulates what the same charges would have cost on the
/// serialized single-stream path (group charges count their maximum, like
/// the concurrent-device rounds of [`MultiGpu`](crate::MultiGpu)), so
/// `saved_s` is the wall time hidden purely by multi-stream overlap.
#[derive(Debug, Clone, Default)]
pub struct StreamClock {
    stream_ready: Vec<f64>,
    resource_free: Vec<f64>,
    makespan_s: f64,
    serial_s: f64,
}

/// Interval one charge occupied on the simulated timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChargeSpan {
    /// When the segment started (simulated seconds).
    pub start_s: f64,
    /// When it finished.
    pub end_s: f64,
    /// How much of its duration was hidden behind already-scheduled work
    /// (i.e. did not extend the makespan).
    pub hidden_s: f64,
}

impl ChargeSpan {
    /// Segment duration.
    pub fn duration_s(&self) -> f64 {
        self.end_s - self.start_s
    }
}

impl StreamClock {
    /// A fresh clock at t = 0 with no streams or resources yet.
    pub fn new() -> Self {
        StreamClock::default()
    }

    fn ready_slot(&mut self, stream: usize) -> &mut f64 {
        if stream >= self.stream_ready.len() {
            self.stream_ready.resize(stream + 1, 0.0);
        }
        &mut self.stream_ready[stream]
    }

    fn free_slot(&mut self, resource: usize) -> &mut f64 {
        if resource >= self.resource_free.len() {
            self.resource_free.resize(resource + 1, 0.0);
        }
        &mut self.resource_free[resource]
    }

    /// Charge `duration_s` of work on `stream` occupying `resource`.
    ///
    /// The segment starts at `max(stream ready, resource free)`; both are
    /// advanced to its end.
    pub fn charge(&mut self, stream: usize, resource: usize, duration_s: f64) -> ChargeSpan {
        let start = (*self.ready_slot(stream)).max(*self.free_slot(resource));
        let end = start + duration_s;
        *self.ready_slot(stream) = end;
        *self.free_slot(resource) = end;
        let before = self.makespan_s;
        self.makespan_s = self.makespan_s.max(end);
        self.serial_s += duration_s;
        ChargeSpan {
            start_s: start,
            end_s: end,
            hidden_s: (duration_s - (end - before).max(0.0)).max(0.0),
        }
    }

    /// Charge a group of segments that run concurrently on distinct
    /// resources but belong to one stream step — the shape of a
    /// partitioned multi-device kernel round. All segments start together
    /// at `max(stream ready, every listed resource's free time)`; the
    /// stream becomes ready when the slowest finishes.
    ///
    /// `serial_s` counts the group's maximum (the serialized path already
    /// overlapped concurrent devices), so group charges never inflate the
    /// overlap saving.
    pub fn charge_group(&mut self, stream: usize, parts: &[(usize, f64)]) -> ChargeSpan {
        if parts.is_empty() {
            let ready = *self.ready_slot(stream);
            return ChargeSpan {
                start_s: ready,
                end_s: ready,
                hidden_s: 0.0,
            };
        }
        let mut start = *self.ready_slot(stream);
        for &(resource, _) in parts {
            start = start.max(*self.free_slot(resource));
        }
        let mut slowest = 0.0f64;
        for &(resource, duration_s) in parts {
            let end = start + duration_s;
            *self.free_slot(resource) = end;
            slowest = slowest.max(duration_s);
        }
        let end = start + slowest;
        *self.ready_slot(stream) = end;
        let before = self.makespan_s;
        self.makespan_s = self.makespan_s.max(end);
        self.serial_s += slowest;
        ChargeSpan {
            start_s: start,
            end_s: end,
            hidden_s: (slowest - (end - before).max(0.0)).max(0.0),
        }
    }

    /// When `stream`'s last segment finishes (0.0 for an untouched stream).
    pub fn stream_ready_s(&self, stream: usize) -> f64 {
        self.stream_ready.get(stream).copied().unwrap_or(0.0)
    }

    /// When `resource` next becomes free (0.0 for an untouched resource).
    pub fn resource_free_s(&self, resource: usize) -> f64 {
        self.resource_free.get(resource).copied().unwrap_or(0.0)
    }

    /// End of the last segment across all streams — the overlapped wall.
    pub fn makespan_s(&self) -> f64 {
        self.makespan_s
    }

    /// What the same charges cost on the serialized single-stream path.
    pub fn serial_s(&self) -> f64 {
        self.serial_s
    }

    /// Wall time hidden by overlap: `serial − makespan` (≥ 0; exactly 0
    /// when everything ran on one stream).
    pub fn saved_s(&self) -> f64 {
        (self.serial_s - self.makespan_s).max(0.0)
    }

    /// Occupancy ratio `serial / makespan` (≥ 1; 1.0 when serialized).
    pub fn occupancy(&self) -> f64 {
        if self.makespan_s <= 0.0 {
            1.0
        } else {
            self.serial_s / self.makespan_s
        }
    }

    /// Back to t = 0, forgetting all streams and resources.
    pub fn reset(&mut self) {
        self.stream_ready.clear();
        self.resource_free.clear();
        self.makespan_s = 0.0;
        self.serial_s = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_stream_is_sequential_sum() {
        let mut c = StreamClock::new();
        c.charge(0, 0, 1.0);
        c.charge(0, 1, 0.5);
        c.charge(0, 0, 0.25);
        assert_eq!(c.makespan_s(), 1.75);
        assert_eq!(c.serial_s(), 1.75);
        assert_eq!(c.saved_s(), 0.0);
        assert_eq!(c.occupancy(), 1.0);
    }

    #[test]
    fn second_stream_hides_behind_first() {
        let mut c = StreamClock::new();
        // Stream 0: kernel on resource 0 for 1.0s.
        c.charge(0, 0, 1.0);
        // Stream 1: transfer on resource 1 fully hidden behind the kernel.
        let span = c.charge(1, 1, 0.4);
        assert_eq!(span.start_s, 0.0);
        assert_eq!(span.hidden_s, 0.4);
        assert_eq!(c.makespan_s(), 1.0);
        assert!((c.saved_s() - 0.4).abs() < 1e-15);
        // Stream 1's kernel must wait for resource 0.
        let span = c.charge(1, 0, 0.5);
        assert_eq!(span.start_s, 1.0);
        assert_eq!(span.end_s, 1.5);
        assert_eq!(span.hidden_s, 0.0);
        assert_eq!(c.makespan_s(), 1.5);
    }

    #[test]
    fn stream_dependency_chains() {
        let mut c = StreamClock::new();
        c.charge(2, 0, 1.0);
        // Same stream, free resource: still waits for the stream.
        let span = c.charge(2, 1, 1.0);
        assert_eq!(span.start_s, 1.0);
        assert_eq!(c.stream_ready_s(2), 2.0);
        assert_eq!(c.stream_ready_s(0), 0.0);
    }

    #[test]
    fn group_charge_matches_concurrent_round() {
        let mut c = StreamClock::new();
        let span = c.charge_group(0, &[(0, 0.3), (1, 0.7), (2, 0.5)]);
        assert_eq!(span.start_s, 0.0);
        assert_eq!(span.end_s, 0.7);
        assert_eq!(c.makespan_s(), 0.7);
        // Serial view counts the slowest, like the legacy round accounting.
        assert_eq!(c.serial_s(), 0.7);
        // Next round starts when the stream is ready.
        let span = c.charge_group(0, &[(0, 0.2), (1, 0.1)]);
        assert_eq!(span.start_s, 0.7);
        assert!((c.makespan_s() - 0.9).abs() < 1e-15);
    }

    #[test]
    fn group_waits_for_busiest_listed_resource() {
        let mut c = StreamClock::new();
        c.charge(1, 2, 1.0);
        let span = c.charge_group(0, &[(0, 0.3), (2, 0.3)]);
        assert_eq!(span.start_s, 1.0, "resource 2 busy until 1.0");
    }

    #[test]
    fn empty_group_is_noop() {
        let mut c = StreamClock::new();
        c.charge(0, 0, 1.0);
        let span = c.charge_group(0, &[]);
        assert_eq!(span.start_s, 1.0);
        assert_eq!(span.end_s, 1.0);
        assert_eq!(c.makespan_s(), 1.0);
    }

    #[test]
    fn overlap_matches_fig8_two_stream_model() {
        // Two identical jobs of (upload 0.2, kernel 1.0, readback 0.2) on
        // one GPU + one DMA engine: stream 1's upload hides behind stream
        // 0's kernel, exactly the overlap.rs pipeline model. Charges are
        // issued interleaved — submission order is issue order, so a
        // pipelined driver interleaves streams to realize the overlap.
        let mut c = StreamClock::new();
        const GPU: usize = 0;
        const DMA: usize = 1;
        c.charge(0, DMA, 0.2);
        c.charge(1, DMA, 0.2);
        c.charge(0, GPU, 1.0);
        c.charge(1, GPU, 1.0);
        c.charge(0, DMA, 0.2);
        c.charge(1, DMA, 0.2);
        // Serialized: 2 × 1.4 = 2.8. Overlapped: stream 1's upload at 0.2,
        // its kernel waits for the GPU until 1.2, ends 2.2, readback 2.4.
        assert!((c.serial_s() - 2.8).abs() < 1e-15);
        assert!((c.makespan_s() - 2.4).abs() < 1e-15);
        assert!((c.saved_s() - 0.4).abs() < 1e-15);
        assert!(c.occupancy() > 1.0);
    }

    #[test]
    fn reset_forgets_everything() {
        let mut c = StreamClock::new();
        c.charge(3, 2, 5.0);
        c.reset();
        assert_eq!(c.makespan_s(), 0.0);
        assert_eq!(c.serial_s(), 0.0);
        assert_eq!(c.stream_ready_s(3), 0.0);
        assert_eq!(c.resource_free_s(2), 0.0);
    }
}
