//! Schedule traces — the execution timelines of the paper's Figs. 3 and 7.

/// What a schedule event represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// GPU kernel execution.
    Kernel,
    /// Host→device transfer.
    TransferH2D,
    /// Device→host transfer.
    TransferD2H,
    /// Host-side reduction/compaction.
    Reduction,
}

impl EventKind {
    /// Short label for rendering.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::Kernel => "kernel",
            EventKind::TransferH2D => "h2d",
            EventKind::TransferD2H => "d2h",
            EventKind::Reduction => "reduce",
        }
    }
}

/// One interval on the simulated timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduleEvent {
    /// Event kind.
    pub kind: EventKind,
    /// Start time (simulated seconds).
    pub start_s: f64,
    /// Duration (simulated seconds).
    pub duration_s: f64,
    /// Number of lanes/elements involved (rendered as bar width, like the
    /// rectangle widths of the paper's Fig. 3).
    pub lanes: usize,
}

/// An ordered trace of schedule events.
#[derive(Debug, Clone, Default)]
pub struct ScheduleTrace {
    events: Vec<ScheduleEvent>,
}

impl ScheduleTrace {
    /// Append an event.
    pub fn push(&mut self, e: ScheduleEvent) {
        self.events.push(e);
    }

    /// All events in submission order.
    pub fn events(&self) -> &[ScheduleEvent] {
        &self.events
    }

    /// Total time attributed to a kind.
    pub fn total_for(&self, kind: EventKind) -> f64 {
        self.events
            .iter()
            .filter(|e| e.kind == kind)
            .map(|e| e.duration_s)
            .sum()
    }

    /// Makespan: end of the last event.
    pub fn makespan_s(&self) -> f64 {
        self.events
            .iter()
            .map(|e| e.start_s + e.duration_s)
            .fold(0.0, f64::max)
    }

    /// Render an ASCII timeline (one row per event), the textual analogue of
    /// the paper's Fig. 3/7 schedule diagrams.
    pub fn render_ascii(&self, width: usize) -> String {
        let makespan = self.makespan_s();
        if makespan <= 0.0 || self.events.is_empty() {
            return String::from("(empty trace)\n");
        }
        let mut out = String::new();
        for e in &self.events {
            let start = ((e.start_s / makespan) * width as f64).round() as usize;
            let len = (((e.duration_s / makespan) * width as f64).round() as usize).max(1);
            let bar_char = match e.kind {
                EventKind::Kernel => '#',
                EventKind::Reduction => '=',
                _ => '-',
            };
            out.push_str(&" ".repeat(start.min(width)));
            out.push_str(
                &bar_char
                    .to_string()
                    .repeat(len.min(width.saturating_sub(start) + 1)),
            );
            out.push_str(&format!(
                "  {:<7} t={:.4}s dur={:.4}s lanes={}\n",
                e.kind.label(),
                e.start_s,
                e.duration_s,
                e.lanes
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> ScheduleTrace {
        let mut t = ScheduleTrace::default();
        t.push(ScheduleEvent {
            kind: EventKind::TransferH2D,
            start_s: 0.0,
            duration_s: 0.1,
            lanes: 0,
        });
        t.push(ScheduleEvent {
            kind: EventKind::Kernel,
            start_s: 0.1,
            duration_s: 0.5,
            lanes: 128,
        });
        t.push(ScheduleEvent {
            kind: EventKind::TransferD2H,
            start_s: 0.6,
            duration_s: 0.1,
            lanes: 0,
        });
        t.push(ScheduleEvent {
            kind: EventKind::Reduction,
            start_s: 0.7,
            duration_s: 0.2,
            lanes: 128,
        });
        t
    }

    #[test]
    fn totals_by_kind() {
        let t = trace();
        assert!((t.total_for(EventKind::Kernel) - 0.5).abs() < 1e-12);
        assert!(
            (t.total_for(EventKind::TransferH2D) + t.total_for(EventKind::TransferD2H) - 0.2).abs()
                < 1e-12
        );
    }

    #[test]
    fn makespan_is_last_end() {
        assert!((trace().makespan_s() - 0.9).abs() < 1e-12);
        assert_eq!(ScheduleTrace::default().makespan_s(), 0.0);
    }

    #[test]
    fn ascii_render_has_one_row_per_event() {
        let s = trace().render_ascii(40);
        assert_eq!(s.lines().count(), 4);
        assert!(s.contains("kernel"));
        assert!(s.contains("reduce"));
    }

    #[test]
    fn empty_trace_renders_placeholder() {
        assert!(ScheduleTrace::default().render_ascii(40).contains("empty"));
    }

    #[test]
    fn labels() {
        assert_eq!(EventKind::Kernel.label(), "kernel");
        assert_eq!(EventKind::TransferH2D.label(), "h2d");
    }
}
