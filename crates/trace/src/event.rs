//! Structured events: a static name, sequencing/timestamps, and typed
//! key/value fields.

use std::fmt;

/// A typed field value. Field keys are `&'static str` so the disabled path
/// never allocates; values allocate only for [`Value::Text`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer (counts, bytes, lane totals).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (simulated seconds, rates).
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// Static string (enum-like labels).
    Str(&'static str),
    /// Owned string (paths, formatted keys).
    Text(String),
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::U64(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v}"),
            Value::Text(v) => write!(f, "{v}"),
        }
    }
}

macro_rules! value_from {
    ($($ty:ty => $variant:ident as $cast:ty),* $(,)?) => {
        $(impl From<$ty> for Value {
            fn from(v: $ty) -> Self {
                Value::$variant(v as $cast)
            }
        })*
    };
}

value_from!(
    u64 => U64 as u64,
    u32 => U64 as u64,
    usize => U64 as u64,
    i64 => I64 as i64,
    i32 => I64 as i64,
    f64 => F64 as f64,
    f32 => F64 as f64,
);

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&'static str> for Value {
    fn from(v: &'static str) -> Self {
        Value::Str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

/// A key/value pair attached to an event.
pub type Field = (&'static str, Value);

/// One recorded event. `seq` and `t_ns` are assigned by the tracer at emit
/// time; `sim_s` carries the simulated-device clock when the emitting layer
/// has one.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Monotonically increasing per-tracer sequence number.
    pub seq: u64,
    /// Monotonic nanoseconds since the tracer was created.
    pub t_ns: u64,
    /// Simulated-clock seconds, if the emitter tracks a simulated device.
    pub sim_s: Option<f64>,
    /// Event name, dotted by subsystem (`gpu.launch`, `serve.cache_hit`).
    pub name: &'static str,
    /// Typed key/value payload.
    pub fields: Vec<Field>,
}

impl Event {
    /// Look up a field by key.
    pub fn field(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// Look up a field and coerce it to `u64` (U64/I64 only).
    pub fn field_u64(&self, key: &str) -> Option<u64> {
        match self.field(key)? {
            Value::U64(v) => Some(*v),
            Value::I64(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// Look up a field and coerce it to `f64` (numeric variants only).
    pub fn field_f64(&self, key: &str) -> Option<f64> {
        match self.field(key)? {
            Value::F64(v) => Some(*v),
            Value::U64(v) => Some(*v as f64),
            Value::I64(v) => Some(*v as f64),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_lookup_and_coercion() {
        let e = Event {
            seq: 0,
            t_ns: 1,
            sim_s: Some(0.5),
            name: "gpu.launch",
            fields: vec![
                ("lanes", Value::U64(4096)),
                ("kernel_s", Value::F64(0.25)),
                ("label", Value::Str("step2")),
            ],
        };
        assert_eq!(e.field_u64("lanes"), Some(4096));
        assert_eq!(e.field_f64("kernel_s"), Some(0.25));
        assert_eq!(e.field_f64("lanes"), Some(4096.0));
        assert!(e.field("missing").is_none());
        assert!(e.field_u64("label").is_none());
    }

    #[test]
    fn from_impls_cover_common_types() {
        assert_eq!(Value::from(3usize), Value::U64(3));
        assert_eq!(Value::from(-2i32), Value::I64(-2));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("x"), Value::Str("x"));
        assert_eq!(Value::from(String::from("y")), Value::Text("y".into()));
    }
}
