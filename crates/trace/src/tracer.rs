//! The cheap-to-clone tracer handle shared by every instrumented layer.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::event::{Event, Field};
use crate::sink::TraceSink;

struct Inner {
    sink: Box<dyn TraceSink>,
    epoch: Instant,
    seq: AtomicU64,
}

/// Handle through which instrumented code emits events. Cloning is an `Arc`
/// bump; a disabled tracer (the default) makes every emit a single branch
/// with no allocation, so instrumentation can stay on hot paths
/// unconditionally.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl Tracer {
    /// A tracer that records nothing. Equivalent to `Tracer::default()`.
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// A tracer recording into `sink`. Timestamps are monotonic nanoseconds
    /// since this call.
    pub fn new(sink: impl TraceSink + 'static) -> Self {
        Tracer {
            inner: Some(Arc::new(Inner {
                sink: Box::new(sink),
                epoch: Instant::now(),
                seq: AtomicU64::new(0),
            })),
        }
    }

    /// Like [`Tracer::new`] but shares an already-`Arc`ed sink, so the
    /// caller can keep a handle for inspection (ring buffers in tests).
    pub fn shared(sink: Arc<dyn TraceSink>) -> Self {
        struct ArcSink(Arc<dyn TraceSink>);
        impl TraceSink for ArcSink {
            fn record(&self, event: Event) {
                self.0.record(event);
            }
            fn flush(&self) {
                self.0.flush();
            }
        }
        Tracer::new(ArcSink(sink))
    }

    /// True when a sink is attached. Callers building expensive field sets
    /// should check this first; plain `emit` calls need not.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Emit an event with no simulated timestamp.
    #[inline]
    pub fn emit(&self, name: &'static str, fields: &[Field]) {
        if let Some(inner) = &self.inner {
            Self::record(inner, name, None, fields);
        }
    }

    /// Emit an event stamped with a simulated-clock reading.
    #[inline]
    pub fn emit_sim(&self, name: &'static str, sim_s: f64, fields: &[Field]) {
        if let Some(inner) = &self.inner {
            Self::record(inner, name, Some(sim_s), fields);
        }
    }

    /// Emit a counter observation: one named value, standard `value` key.
    #[inline]
    pub fn counter(&self, name: &'static str, value: u64) {
        if let Some(inner) = &self.inner {
            Self::record(inner, name, None, &[("value", crate::Value::U64(value))]);
        }
    }

    #[cold]
    fn record(inner: &Inner, name: &'static str, sim_s: Option<f64>, fields: &[Field]) {
        let event = Event {
            seq: inner.seq.fetch_add(1, Ordering::Relaxed),
            t_ns: inner.epoch.elapsed().as_nanos() as u64,
            sim_s,
            name,
            fields: fields.to_vec(),
        };
        inner.sink.record(event);
    }

    /// Open a span: emits `<name>` with `phase="begin"` now and, when the
    /// guard ends, `<name>` with `phase="end"` and the wall duration.
    pub fn span(&self, name: &'static str) -> Span {
        self.span_with(name, &[])
    }

    /// Open a span carrying extra fields on the begin event.
    pub fn span_with(&self, name: &'static str, fields: &[Field]) -> Span {
        if self.inner.is_some() {
            let mut begin = vec![("phase", crate::Value::Str("begin"))];
            begin.extend_from_slice(fields);
            self.emit(name, &begin);
            Span {
                tracer: self.clone(),
                name,
                start: Some(Instant::now()),
            }
        } else {
            Span {
                tracer: Tracer::disabled(),
                name,
                start: None,
            }
        }
    }

    /// Flush the attached sink, if any.
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            inner.sink.flush();
        }
    }
}

/// Guard for an open span. Emits the end event on drop; use
/// [`Span::end_with`] to attach result fields.
#[must_use = "a span measures the scope it lives in"]
pub struct Span {
    tracer: Tracer,
    name: &'static str,
    start: Option<Instant>,
}

impl Span {
    /// Close the span now, attaching extra fields to the end event.
    pub fn end_with(mut self, fields: &[Field]) {
        self.finish(fields);
    }

    fn finish(&mut self, fields: &[Field]) {
        if let Some(start) = self.start.take() {
            let mut end = vec![
                ("phase", crate::Value::Str("end")),
                (
                    "duration_ns",
                    crate::Value::U64(start.elapsed().as_nanos() as u64),
                ),
            ];
            end.extend_from_slice(fields);
            self.tracer.emit(self.name, &end);
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.finish(&[]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::RingSink;
    use crate::Value;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        assert!(!t.enabled());
        t.emit("x", &[("k", Value::U64(1))]);
        t.counter("c", 3);
        let span = t.span("s");
        span.end_with(&[("r", Value::Bool(true))]);
        // Nothing to assert against — the point is no panic and no sink.
    }

    #[test]
    fn shared_ring_sees_emits_in_order() {
        let ring = Arc::new(RingSink::new(64));
        let t = Tracer::shared(ring.clone());
        t.emit("a", &[("n", Value::U64(1))]);
        t.emit_sim("b", 2.5, &[]);
        t.counter("c", 9);
        let events = ring.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].name, "a");
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[1].sim_s, Some(2.5));
        assert_eq!(events[2].field_u64("value"), Some(9));
        assert!(events[1].seq < events[2].seq);
    }

    #[test]
    fn span_emits_begin_and_end_with_duration() {
        let ring = Arc::new(RingSink::new(64));
        let t = Tracer::shared(ring.clone());
        {
            let span = t.span_with("step", &[("step", Value::U64(1))]);
            t.emit("inner", &[]);
            span.end_with(&[("voxels", Value::U64(100))]);
        }
        let events = ring.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].name, "step");
        assert_eq!(events[0].field("phase"), Some(&Value::Str("begin")));
        assert_eq!(events[0].field_u64("step"), Some(1));
        assert_eq!(events[2].name, "step");
        assert_eq!(events[2].field("phase"), Some(&Value::Str("end")));
        assert!(events[2].field_u64("duration_ns").is_some());
        assert_eq!(events[2].field_u64("voxels"), Some(100));
    }

    #[test]
    fn span_drop_also_closes() {
        let ring = Arc::new(RingSink::new(8));
        let t = Tracer::shared(ring.clone());
        {
            let _span = t.span("scope");
        }
        assert_eq!(ring.count("scope"), 2);
    }

    #[test]
    fn clones_share_sequence_numbers() {
        let ring = Arc::new(RingSink::new(8));
        let t = Tracer::shared(ring.clone());
        let t2 = t.clone();
        t.emit("a", &[]);
        t2.emit("b", &[]);
        let events = ring.events();
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[1].seq, 1);
    }
}
