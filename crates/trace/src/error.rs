//! The workspace-wide typed error hierarchy.
//!
//! Every fallible public API in the workspace returns [`TractoError`] so
//! callers can match on [`ErrorKind`] instead of scraping format strings.
//! Variants carry human-readable context plus a chained `source()` where an
//! underlying error exists.

use std::error::Error;
use std::fmt;

/// Convenience alias used across the workspace.
pub type TractoResult<T> = Result<T, TractoError>;

/// Discriminant of a [`TractoError`], for cheap equality checks in callers
/// and tests without comparing message text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorKind {
    /// Operating-system I/O failure.
    Io,
    /// Malformed or inconsistent data (on disk or in a stream).
    Format,
    /// Invalid configuration, arguments, or script input.
    Config,
    /// A resource bound (device memory, queue, cache) would be exceeded.
    Capacity,
    /// A device fault: launch failure, device loss, allocation fault, or
    /// transfer timeout. Usually transient — callers may retry.
    Device,
    /// The operation was cancelled by its client.
    Cancelled,
    /// A deadline passed before the work could complete.
    Deadline,
    /// A wire-protocol violation: malformed frame, bad message, or an
    /// incompatible peer version.
    Protocol,
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ErrorKind::Io => "io",
            ErrorKind::Format => "format",
            ErrorKind::Config => "config",
            ErrorKind::Capacity => "capacity",
            ErrorKind::Device => "device",
            ErrorKind::Cancelled => "cancelled",
            ErrorKind::Deadline => "deadline",
            ErrorKind::Protocol => "protocol",
        };
        f.write_str(name)
    }
}

/// The workspace error type. Construct via the helper constructors
/// ([`TractoError::io`], [`TractoError::format`], ...) rather than the
/// variants directly so context strings stay uniform.
#[derive(Debug)]
pub enum TractoError {
    /// An operating-system I/O failure, with the path or operation as context.
    Io {
        /// What was being done (usually a path plus an operation).
        context: String,
        /// The underlying OS error, reachable via `source()`.
        source: std::io::Error,
    },
    /// Malformed or inconsistent data.
    Format {
        /// What is wrong and where.
        context: String,
        /// The underlying parse/decode error, if any.
        source: Option<Box<dyn Error + Send + Sync + 'static>>,
    },
    /// Invalid configuration, arguments, or script input.
    Config {
        /// What is invalid and what would be valid.
        message: String,
    },
    /// A resource bound would be exceeded.
    Capacity {
        /// The bounded resource ("device memory", "job queue", ...).
        resource: String,
        /// Units required by the request.
        required: u64,
        /// Units actually available.
        available: u64,
    },
    /// A device fault (injected by a fault plan or surfaced by the
    /// simulator): failed launch, lost device, allocation fault, or
    /// stalled transfer.
    Device {
        /// Which device faulted.
        device: u32,
        /// What failed on it.
        context: String,
    },
    /// The operation was cancelled by its client.
    Cancelled,
    /// A deadline passed before the work could complete.
    Deadline,
    /// A wire-protocol violation (malformed frame, bad message, version
    /// mismatch) from `tracto-proto` or its socket front end.
    Protocol {
        /// What was violated and where.
        context: String,
    },
}

impl TractoError {
    /// An I/O error with context.
    pub fn io(context: impl Into<String>, source: std::io::Error) -> Self {
        TractoError::Io {
            context: context.into(),
            source,
        }
    }

    /// A data-format error with no underlying cause.
    pub fn format(context: impl Into<String>) -> Self {
        TractoError::Format {
            context: context.into(),
            source: None,
        }
    }

    /// A data-format error chaining an underlying cause.
    pub fn format_with(
        context: impl Into<String>,
        source: impl Error + Send + Sync + 'static,
    ) -> Self {
        TractoError::Format {
            context: context.into(),
            source: Some(Box::new(source)),
        }
    }

    /// A configuration/argument error.
    pub fn config(message: impl Into<String>) -> Self {
        TractoError::Config {
            message: message.into(),
        }
    }

    /// A capacity error for a bounded resource.
    pub fn capacity(resource: impl Into<String>, required: u64, available: u64) -> Self {
        TractoError::Capacity {
            resource: resource.into(),
            required,
            available,
        }
    }

    /// A device-fault error.
    pub fn device(device: u32, context: impl Into<String>) -> Self {
        TractoError::Device {
            device,
            context: context.into(),
        }
    }

    /// A wire-protocol violation.
    pub fn protocol(context: impl Into<String>) -> Self {
        TractoError::Protocol {
            context: context.into(),
        }
    }

    /// This error's discriminant, for matching without message text.
    pub fn kind(&self) -> ErrorKind {
        match self {
            TractoError::Io { .. } => ErrorKind::Io,
            TractoError::Format { .. } => ErrorKind::Format,
            TractoError::Config { .. } => ErrorKind::Config,
            TractoError::Capacity { .. } => ErrorKind::Capacity,
            TractoError::Device { .. } => ErrorKind::Device,
            TractoError::Cancelled => ErrorKind::Cancelled,
            TractoError::Deadline => ErrorKind::Deadline,
            TractoError::Protocol { .. } => ErrorKind::Protocol,
        }
    }

    /// Whether a retry could plausibly succeed. Device faults are
    /// transient by contract (a lost device is replaced by failover or a
    /// re-dispatched job); everything else reflects state a retry will see
    /// again.
    pub fn is_retryable(&self) -> bool {
        matches!(self, TractoError::Device { .. })
    }
}

impl fmt::Display for TractoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TractoError::Io { context, source } => write!(f, "{context}: {source}"),
            TractoError::Format { context, source } => match source {
                Some(inner) => write!(f, "{context}: {inner}"),
                None => write!(f, "{context}"),
            },
            TractoError::Config { message } => write!(f, "{message}"),
            TractoError::Capacity {
                resource,
                required,
                available,
            } => write!(
                f,
                "{resource} exhausted: {required} required, {available} available"
            ),
            TractoError::Device { device, context } => {
                write!(f, "device {device} fault: {context}")
            }
            TractoError::Cancelled => write!(f, "cancelled"),
            TractoError::Deadline => write!(f, "deadline exceeded"),
            TractoError::Protocol { context } => write!(f, "protocol violation: {context}"),
        }
    }
}

impl Error for TractoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TractoError::Io { source, .. } => Some(source),
            TractoError::Format { source, .. } => {
                source.as_deref().map(|e| e as &(dyn Error + 'static))
            }
            _ => None,
        }
    }
}

impl From<std::io::Error> for TractoError {
    fn from(source: std::io::Error) -> Self {
        TractoError::Io {
            context: "i/o error".to_string(),
            source,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_match_variants() {
        assert_eq!(
            TractoError::io("open x", std::io::Error::other("boom")).kind(),
            ErrorKind::Io
        );
        assert_eq!(TractoError::format("bad magic").kind(), ErrorKind::Format);
        assert_eq!(
            TractoError::config("no such flag").kind(),
            ErrorKind::Config
        );
        assert_eq!(
            TractoError::capacity("queue", 2, 1).kind(),
            ErrorKind::Capacity
        );
        assert_eq!(
            TractoError::device(3, "launch failed").kind(),
            ErrorKind::Device
        );
        assert_eq!(TractoError::Cancelled.kind(), ErrorKind::Cancelled);
        assert_eq!(TractoError::Deadline.kind(), ErrorKind::Deadline);
        assert_eq!(
            TractoError::protocol("bad frame").kind(),
            ErrorKind::Protocol
        );
    }

    #[test]
    fn protocol_errors_are_not_retryable_and_carry_context() {
        let e = TractoError::protocol("frame exceeds 16 MiB");
        assert!(!e.is_retryable());
        assert!(e.to_string().contains("protocol violation"));
        assert!(e.to_string().contains("16 MiB"));
        assert_eq!(ErrorKind::Protocol.to_string(), "protocol");
    }

    #[test]
    fn only_device_faults_are_retryable() {
        assert!(TractoError::device(0, "transfer timeout").is_retryable());
        assert!(!TractoError::config("bad flag").is_retryable());
        assert!(!TractoError::capacity("queue", 2, 1).is_retryable());
        assert!(!TractoError::Cancelled.is_retryable());
        let d = TractoError::device(7, "device lost");
        assert!(d.to_string().contains("device 7"));
        assert!(d.to_string().contains("device lost"));
    }

    #[test]
    fn display_includes_context() {
        let e = TractoError::io("read dwi.trv4", std::io::Error::other("denied"));
        let text = e.to_string();
        assert!(text.contains("dwi.trv4"));
        assert!(text.contains("denied"));
        let c = TractoError::capacity("device memory", 100, 64);
        assert!(c.to_string().contains("100 required"));
    }

    #[test]
    fn source_chain_is_reachable() {
        let inner = std::io::Error::other("short read");
        let e = TractoError::format_with("truncated volume", inner);
        let src = e.source().expect("has source");
        assert!(src.to_string().contains("short read"));
        assert!(TractoError::format("no cause").source().is_none());
    }

    #[test]
    fn io_from_impl_sets_generic_context() {
        let e: TractoError = std::io::Error::other("nope").into();
        assert_eq!(e.kind(), ErrorKind::Io);
        assert!(e.to_string().contains("nope"));
    }
}
