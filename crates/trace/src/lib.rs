//! `tracto-trace`: structured instrumentation and the workspace typed error
//! hierarchy.
//!
//! This crate is the root of the workspace dependency graph (it depends on
//! nothing, not even the shims) and provides the two cross-cutting seams
//! every other layer threads through:
//!
//! * **Events** — [`Tracer`] is a cheap-clone handle over a pluggable
//!   [`TraceSink`]. Instrumented code calls `tracer.emit(name, fields)`
//!   unconditionally; with no sink attached that is one branch and zero
//!   allocation, so launch loops and cache lookups keep their hooks even in
//!   production builds. Events carry a per-tracer sequence number, a
//!   monotonic timestamp, and (from the GPU simulator) the simulated-device
//!   clock. Sinks: [`RingSink`] (tests/in-process), [`JsonlSink`]
//!   (JSON-lines file, `tracto --trace out.jsonl`), [`StderrSink`] (pretty
//!   stderr, `tracto --trace-stderr`).
//!
//! * **Errors** — [`TractoError`] with `Io`/`Format`/`Config`/`Capacity`/
//!   `Cancelled`/`Deadline` variants, `source()` chaining, and a cheap
//!   [`ErrorKind`] discriminant so callers match on kind instead of
//!   scraping strings.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod event;
pub mod json;
mod sink;
mod tracer;

pub use error::{ErrorKind, TractoError, TractoResult};
pub use event::{Event, Field, Value};
pub use sink::{JsonlSink, RingSink, StderrSink, TraceSink};
pub use tracer::{Span, Tracer};
