//! Minimal hand-rolled JSON support: enough to serialize events as JSON
//! lines and to parse them back in tests/tools. Not a general-purpose JSON
//! library — objects, arrays, strings, numbers, booleans, and null only.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::error::TractoError;
use crate::event::{Event, Value};

/// Append a JSON string literal (with escaping) to `out`.
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn value_into(out: &mut String, v: &Value) {
    match v {
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(n) => {
            if n.is_finite() {
                let _ = write!(out, "{n}");
            } else {
                out.push_str("null");
            }
        }
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Str(s) => escape_into(out, s),
        Value::Text(s) => escape_into(out, s),
    }
}

/// Serialize one event as a single JSON object (no trailing newline).
/// Field keys land under a nested `"fields"` object so they can never
/// collide with the envelope keys.
pub fn event_to_json(event: &Event) -> String {
    let mut out = String::with_capacity(96 + event.fields.len() * 24);
    out.push_str("{\"seq\":");
    let _ = write!(out, "{}", event.seq);
    out.push_str(",\"t_ns\":");
    let _ = write!(out, "{}", event.t_ns);
    if let Some(sim) = event.sim_s {
        out.push_str(",\"sim_s\":");
        let _ = write!(out, "{sim}");
    }
    out.push_str(",\"name\":");
    escape_into(&mut out, event.name);
    out.push_str(",\"fields\":{");
    for (i, (key, value)) in event.fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        escape_into(&mut out, key);
        out.push(':');
        value_into(&mut out, value);
    }
    out.push_str("}}");
    out
}

/// A parsed JSON value, used by tests and tools to inspect trace files.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as f64).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object (sorted keys).
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parse one JSON document from `input`. Trailing non-whitespace is an
/// error, so each JSONL line parses independently.
pub fn parse(input: &str) -> Result<Json, TractoError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(TractoError::format(format!(
            "json: trailing data at byte {}",
            p.pos
        )));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), TractoError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(TractoError::format(format!(
                "json: expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Json, TractoError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(TractoError::format(format!(
                "json: unexpected input at byte {}",
                self.pos
            ))),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, TractoError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(TractoError::format(format!(
                "json: bad literal at byte {}",
                self.pos
            )))
        }
    }

    fn number(&mut self) -> Result<Json, TractoError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| TractoError::format("json: non-utf8 number"))?;
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| TractoError::format(format!("json: bad number '{text}'")))
    }

    fn string(&mut self) -> Result<String, TractoError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Scan the plain run, then decode it as UTF-8 in one go.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| TractoError::format("json: non-utf8 string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| TractoError::format("json: unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(TractoError::format("json: short \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| TractoError::format("json: bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| TractoError::format("json: bad \\u escape"))?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(TractoError::format(format!(
                                "json: unknown escape '\\{}'",
                                other as char
                            )))
                        }
                    }
                }
                _ => return Err(TractoError::format("json: unterminated string")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, TractoError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(TractoError::format("json: expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, TractoError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(TractoError::format("json: expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_roundtrips_through_parser() {
        let e = Event {
            seq: 7,
            t_ns: 1234,
            sim_s: Some(0.125),
            name: "gpu.launch",
            fields: vec![
                ("lanes", Value::U64(4096)),
                ("path", Value::Text("a \"b\"\n".into())),
                ("ok", Value::Bool(true)),
            ],
        };
        let line = event_to_json(&e);
        let parsed = parse(&line).expect("parses");
        assert_eq!(parsed.get("seq").and_then(Json::as_f64), Some(7.0));
        assert_eq!(parsed.get("sim_s").and_then(Json::as_f64), Some(0.125));
        assert_eq!(
            parsed.get("name").and_then(Json::as_str),
            Some("gpu.launch")
        );
        let fields = parsed.get("fields").expect("fields object");
        assert_eq!(fields.get("lanes").and_then(Json::as_f64), Some(4096.0));
        assert_eq!(fields.get("path").and_then(Json::as_str), Some("a \"b\"\n"));
        assert_eq!(fields.get("ok"), Some(&Json::Bool(true)));
    }

    #[test]
    fn event_without_sim_clock_omits_key() {
        let e = Event {
            seq: 0,
            t_ns: 0,
            sim_s: None,
            name: "x",
            fields: vec![],
        };
        let line = event_to_json(&e);
        assert!(!line.contains("sim_s"));
        assert!(parse(&line).is_ok());
    }

    #[test]
    fn parser_handles_nesting_and_escapes() {
        let doc = r#"{"a": [1, -2.5, "t\tbA", {"n": null}], "b": false}"#;
        let v = parse(doc).expect("parses");
        let a = v.get("a").expect("a");
        match a {
            Json::Array(items) => {
                assert_eq!(items[0].as_f64(), Some(1.0));
                assert_eq!(items[1].as_f64(), Some(-2.5));
                assert_eq!(items[2].as_str(), Some("t\tbA"));
                assert_eq!(items[3].get("n"), Some(&Json::Null));
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("123 456").is_err());
        assert!(parse("\"unterminated").is_err());
    }
}
