//! Pluggable event sinks: ring buffer (tests), JSON-lines file, pretty
//! stderr.

use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

use crate::error::TractoError;
use crate::event::Event;
use crate::json::event_to_json;

/// Destination for recorded events. Sinks must be thread-safe: workers on
/// several threads share one tracer.
pub trait TraceSink: Send + Sync {
    /// Record one event. Sinks should not block for long; the emitting hot
    /// paths (kernel launches, cache lookups) call this inline.
    fn record(&self, event: Event);

    /// Flush any buffered output. Default is a no-op.
    fn flush(&self) {}
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    // A panic while holding the lock poisons it; the event stream is
    // best-effort diagnostics, so keep recording anyway.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Bounded in-memory ring buffer; oldest events are dropped once full.
/// Intended for tests and in-process inspection.
pub struct RingSink {
    capacity: usize,
    events: Mutex<VecDeque<Event>>,
    dropped: Mutex<u64>,
}

impl RingSink {
    /// A ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        RingSink {
            capacity: capacity.max(1),
            events: Mutex::new(VecDeque::new()),
            dropped: Mutex::new(0),
        }
    }

    /// Snapshot of the buffered events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        lock(&self.events).iter().cloned().collect()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        lock(&self.events).len()
    }

    /// True when nothing has been recorded (or everything was dropped).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        *lock(&self.dropped)
    }

    /// Count buffered events with the given name.
    pub fn count(&self, name: &str) -> usize {
        lock(&self.events).iter().filter(|e| e.name == name).count()
    }

    /// Clone the buffered events with the given name, oldest first.
    pub fn named(&self, name: &str) -> Vec<Event> {
        lock(&self.events)
            .iter()
            .filter(|e| e.name == name)
            .cloned()
            .collect()
    }
}

impl TraceSink for RingSink {
    fn record(&self, event: Event) {
        let mut events = lock(&self.events);
        if events.len() == self.capacity {
            events.pop_front();
            *lock(&self.dropped) += 1;
        }
        events.push_back(event);
    }
}

/// JSON-lines file writer: one event per line, flushed on `flush()` and on
/// drop.
pub struct JsonlSink {
    writer: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Create (truncating) the file at `path`.
    pub fn create(path: &Path) -> Result<Self, TractoError> {
        let file = File::create(path)
            .map_err(|e| TractoError::io(format!("create trace file {}", path.display()), e))?;
        Ok(JsonlSink {
            writer: Mutex::new(BufWriter::new(file)),
        })
    }
}

impl TraceSink for JsonlSink {
    fn record(&self, event: Event) {
        let mut line = event_to_json(&event);
        line.push('\n');
        let mut writer = lock(&self.writer);
        // Diagnostics are best-effort: a full disk must not take the
        // pipeline down with it.
        let _ = writer.write_all(line.as_bytes());
    }

    fn flush(&self) {
        let _ = lock(&self.writer).flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Human-oriented stderr sink: `[seq +12.345ms sim=0.5000s] name k=v ...`.
pub struct StderrSink;

impl TraceSink for StderrSink {
    fn record(&self, event: Event) {
        let mut line = format!("[{:>6} +{:>10.3}ms", event.seq, event.t_ns as f64 / 1e6);
        if let Some(sim) = event.sim_s {
            line.push_str(&format!(" sim={sim:.4}s"));
        }
        line.push_str("] ");
        line.push_str(event.name);
        for (key, value) in &event.fields {
            line.push_str(&format!(" {key}={value}"));
        }
        eprintln!("{line}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(seq: u64, name: &'static str) -> Event {
        Event {
            seq,
            t_ns: seq * 10,
            sim_s: None,
            name,
            fields: vec![],
        }
    }

    #[test]
    fn ring_drops_oldest_when_full() {
        let ring = RingSink::new(2);
        ring.record(event(0, "a"));
        ring.record(event(1, "b"));
        ring.record(event(2, "c"));
        let events = ring.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "b");
        assert_eq!(events[1].name, "c");
        assert_eq!(ring.dropped(), 1);
        assert_eq!(ring.count("c"), 1);
        assert_eq!(ring.count("a"), 0);
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let dir = std::env::temp_dir().join("tracto-trace-sink-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.jsonl");
        {
            let sink = JsonlSink::create(&path).unwrap();
            sink.record(event(0, "one"));
            sink.record(event(1, "two"));
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            crate::json::parse(line).expect("line parses as json");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn jsonl_create_in_missing_dir_is_typed_io_error() {
        let path = Path::new("/nonexistent-tracto-dir/out.jsonl");
        let err = JsonlSink::create(path).err().expect("create should fail");
        assert_eq!(err.kind(), crate::error::ErrorKind::Io);
    }
}
