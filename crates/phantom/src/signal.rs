//! DWI signal synthesis: forward-model the ground-truth field through the
//! ball-and-sticks prediction and apply noise.

use crate::field::GroundTruthField;
use crate::noise::NoiseModel;
use tracto_diffusion::models::ball_two_sticks_predict;
use tracto_diffusion::Acquisition;
use tracto_rng::{BoxMuller, HybridTaus};
use tracto_volume::{Vec3, Volume4};

/// Tissue parameters for signal synthesis.
#[derive(Debug, Clone, Copy)]
pub struct TissueParams {
    /// Baseline (b=0) intensity inside the head.
    pub s0: f64,
    /// Diffusivity (mm²/s); white-matter typical ≈ 1.5×10⁻³ at b in s/mm².
    pub d: f64,
}

impl Default for TissueParams {
    fn default() -> Self {
        TissueParams {
            s0: 1000.0,
            d: 1.5e-3,
        }
    }
}

/// Synthesize the 4-D DWI volume (`DimX × DimY × DimZ × n`, the paper's
/// Fig. 1 input) for a ground-truth field.
///
/// Every voxel gets the ball-and-two-sticks prediction of its ground truth
/// (zero to two sticks) plus the configured noise. Deterministic for a given
/// `seed`.
pub fn synthesize(
    field: &GroundTruthField,
    acq: &Acquisition,
    tissue: TissueParams,
    noise: NoiseModel,
    seed: u64,
) -> Volume4<f32> {
    let dims = field.dims();
    let n = acq.len();
    let mut out = Volume4::zeros(dims, n);
    for idx in 0..dims.len() {
        let vt = field.at_index(idx);
        let mut rng = BoxMuller::new(HybridTaus::seed_stream(seed, idx as u64));
        let (f1, dir1) = vt
            .sticks()
            .first()
            .map(|&(d, f)| (f, d))
            .unwrap_or((0.0, Vec3::Z));
        let (f2, dir2) = vt
            .sticks()
            .get(1)
            .map(|&(d, f)| (f, d))
            .unwrap_or((0.0, Vec3::X));
        let voxel = out.voxel_at_mut(idx);
        for (i, slot) in voxel.iter_mut().enumerate() {
            let clean = ball_two_sticks_predict(
                tissue.s0,
                tissue.d,
                f1,
                f2,
                dir1,
                dir2,
                acq.bval(i),
                acq.grad(i),
            );
            *slot = noise.apply(clean, &mut rng) as f32;
        }
    }
    out
}

/// Extract one voxel's signal as `f64` (the MCMC-side access pattern).
pub fn voxel_signal(dwi: &Volume4<f32>, voxel_index: usize) -> Vec<f64> {
    dwi.voxel_at(voxel_index)
        .iter()
        .map(|&v| v as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::StraightBundle;
    use crate::gradients::test_protocol;
    use tracto_volume::{Dim3, Ijk};

    fn small_field() -> GroundTruthField {
        let dims = Dim3::new(8, 8, 4);
        let b = StraightBundle::new(Vec3::new(0.0, 4.0, 2.0), Vec3::new(7.0, 4.0, 2.0), 1.5);
        GroundTruthField::rasterize(dims, &[(&b, 0.65)], 0.9)
    }

    #[test]
    fn clean_signal_matches_forward_model() {
        let field = small_field();
        let acq = test_protocol(1);
        let dwi = synthesize(&field, &acq, TissueParams::default(), NoiseModel::None, 0);
        let dims = field.dims();
        let c = Ijk::new(4, 4, 2);
        let vt = field.at(c);
        assert_eq!(vt.count, 1);
        let (dir, f) = vt.sticks()[0];
        for i in 0..acq.len() {
            let expected = ball_two_sticks_predict(
                1000.0,
                1.5e-3,
                f,
                0.0,
                dir,
                Vec3::X,
                acq.bval(i),
                acq.grad(i),
            );
            let got = *dwi.get(c, i) as f64;
            assert!(
                (got - expected).abs() < 1e-3,
                "measurement {i}: {got} vs {expected}"
            );
        }
        let _ = dims;
    }

    #[test]
    fn b0_equals_s0_without_noise() {
        let field = small_field();
        let acq = test_protocol(2);
        let dwi = synthesize(&field, &acq, TissueParams::default(), NoiseModel::None, 0);
        for &i in &acq.b0_indices() {
            assert!((*dwi.get(Ijk::new(4, 4, 2), i) as f64 - 1000.0).abs() < 1e-3);
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let field = small_field();
        let acq = test_protocol(3);
        let noise = NoiseModel::Rician { sigma: 30.0 };
        let a = synthesize(&field, &acq, TissueParams::default(), noise, 11);
        let b = synthesize(&field, &acq, TissueParams::default(), noise, 11);
        assert_eq!(a, b);
        let c = synthesize(&field, &acq, TissueParams::default(), noise, 12);
        assert_ne!(a, c);
    }

    #[test]
    fn noise_perturbs_but_preserves_scale() {
        let field = small_field();
        let acq = test_protocol(4);
        let clean = synthesize(&field, &acq, TissueParams::default(), NoiseModel::None, 0);
        let noisy = synthesize(
            &field,
            &acq,
            TissueParams::default(),
            NoiseModel::Rician { sigma: 20.0 },
            0,
        );
        let mut diff_count = 0;
        let mut max_rel = 0.0f64;
        for (a, b) in clean.as_slice().iter().zip(noisy.as_slice()) {
            if a != b {
                diff_count += 1;
            }
            if *a > 0.0 {
                max_rel = max_rel.max(((a - b) / a).abs() as f64);
            }
        }
        assert!(diff_count > clean.len() / 2, "noise barely applied");
        assert!(max_rel < 0.5, "noise implausibly large: {max_rel}");
    }

    #[test]
    fn signal_attenuated_along_fiber() {
        let field = small_field();
        let acq = test_protocol(5);
        let dwi = synthesize(&field, &acq, TissueParams::default(), NoiseModel::None, 0);
        let c = Ijk::new(4, 4, 2); // fiber along X
                                   // Find the DWI measurement most and least aligned with X.
        let mut best_align = (0, -1.0);
        let mut worst_align = (0, 2.0);
        for i in acq.dwi_indices() {
            let a = acq.grad(i).dot(Vec3::X).abs();
            if a > best_align.1 {
                best_align = (i, a);
            }
            if a < worst_align.1 {
                worst_align = (i, a);
            }
        }
        let along = *dwi.get(c, best_align.0);
        let across = *dwi.get(c, worst_align.0);
        assert!(
            along < across,
            "along-fiber signal must attenuate more: {along} vs {across}"
        );
    }

    #[test]
    fn voxel_signal_extraction() {
        let field = small_field();
        let acq = test_protocol(6);
        let dwi = synthesize(&field, &acq, TissueParams::default(), NoiseModel::None, 0);
        let s = voxel_signal(&dwi, 0);
        assert_eq!(s.len(), acq.len());
        assert_eq!(s[0] as f32, dwi.voxel_at(0)[0]);
    }
}
