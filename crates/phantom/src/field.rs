//! Rasterization of bundles into a per-voxel ground-truth orientation field.

use crate::geometry::Bundle;
use tracto_volume::{Dim3, Ijk, Mask, Vec3};

/// Up to two fiber populations per voxel, matching the N = 2
/// partial-volume model the paper estimates.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct VoxelTruth {
    /// `(unit direction, volume fraction)` of each population; unused slots
    /// have zero fraction.
    pub sticks: [(Vec3, f64); 2],
    /// Number of populated slots (0, 1 or 2).
    pub count: u8,
}

impl VoxelTruth {
    /// An empty (isotropic) voxel.
    pub const EMPTY: VoxelTruth = VoxelTruth {
        sticks: [(
            Vec3 {
                x: 0.0,
                y: 0.0,
                z: 0.0,
            },
            0.0,
        ); 2],
        count: 0,
    };

    /// Add a population; keeps the two largest fractions when more than two
    /// bundles overlap a voxel.
    pub fn push(&mut self, dir: Vec3, fraction: f64) {
        if fraction <= 0.0 {
            return;
        }
        let entry = (dir.normalized(), fraction);
        match self.count {
            0 => {
                self.sticks[0] = entry;
                self.count = 1;
            }
            1 => {
                self.sticks[1] = entry;
                self.count = 2;
                if self.sticks[1].1 > self.sticks[0].1 {
                    self.sticks.swap(0, 1);
                }
            }
            _ => {
                // Keep the two strongest populations.
                if fraction > self.sticks[1].1 {
                    self.sticks[1] = entry;
                    if self.sticks[1].1 > self.sticks[0].1 {
                        self.sticks.swap(0, 1);
                    }
                }
            }
        }
    }

    /// Total anisotropic volume fraction, clamped so `Σf ≤ f_cap`.
    pub fn normalize_to_cap(&mut self, f_cap: f64) {
        let total: f64 = self.sticks[..self.count as usize].iter().map(|s| s.1).sum();
        if total > f_cap && total > 0.0 {
            let scale = f_cap / total;
            for s in &mut self.sticks[..self.count as usize] {
                s.1 *= scale;
            }
        }
    }

    /// The populated sticks.
    pub fn sticks(&self) -> &[(Vec3, f64)] {
        &self.sticks[..self.count as usize]
    }

    /// Total stick fraction.
    pub fn total_fraction(&self) -> f64 {
        self.sticks().iter().map(|s| s.1).sum()
    }

    /// The dominant direction, if any population exists.
    pub fn principal(&self) -> Option<Vec3> {
        (self.count > 0).then(|| self.sticks[0].0)
    }
}

/// The ground-truth orientation field of a phantom: per-voxel populations
/// plus the white-matter mask.
#[derive(Debug, Clone)]
pub struct GroundTruthField {
    dims: Dim3,
    voxels: Vec<VoxelTruth>,
}

impl GroundTruthField {
    /// Rasterize a set of bundles onto a grid.
    ///
    /// Each bundle contributes `peak_fraction × bundle.weight(p)` at the
    /// voxel center `p`; overlapping bundles yield two-population (crossing)
    /// voxels. Total fractions are capped at `f_cap` (< 1 leaves room for
    /// the isotropic ball compartment).
    pub fn rasterize(dims: Dim3, bundles: &[(&dyn Bundle, f64)], f_cap: f64) -> Self {
        assert!((0.0..=1.0).contains(&f_cap));
        let mut voxels = vec![VoxelTruth::EMPTY; dims.len()];
        for (idx, vt) in voxels.iter_mut().enumerate() {
            let c = dims.coords(idx);
            let p = Vec3::new(c.i as f64, c.j as f64, c.k as f64);
            for (bundle, peak) in bundles {
                if let Some(dir) = bundle.orientation(p) {
                    let w = bundle.weight(p);
                    if w > 0.0 {
                        vt.push(dir, peak * w);
                    }
                }
            }
            vt.normalize_to_cap(f_cap);
        }
        GroundTruthField { dims, voxels }
    }

    /// A placeholder truth field for data whose real fiber geometry is
    /// unknown — an uploaded DWI volume rather than a synthesized phantom.
    ///
    /// Every in-mask voxel gets one x-aligned stick, so
    /// [`fiber_mask`](Self::fiber_mask) reproduces `mask` exactly and
    /// mask-driven seeding works unchanged; accuracy-vs-truth metrics are
    /// meaningless against it and should not be reported.
    pub fn from_mask(dims: Dim3, mask: &Mask, fraction: f64) -> Self {
        let mut voxels = vec![VoxelTruth::EMPTY; dims.len()];
        for (idx, vt) in voxels.iter_mut().enumerate() {
            if mask.contains(dims.coords(idx)) {
                vt.push(Vec3::X, fraction);
            }
        }
        GroundTruthField { dims, voxels }
    }

    /// Grid dimensions.
    pub fn dims(&self) -> Dim3 {
        self.dims
    }

    /// Ground truth at a voxel.
    #[inline]
    pub fn at(&self, c: Ijk) -> &VoxelTruth {
        &self.voxels[self.dims.index(c)]
    }

    /// Ground truth by linear voxel index.
    #[inline]
    pub fn at_index(&self, idx: usize) -> &VoxelTruth {
        &self.voxels[idx]
    }

    /// Voxels with at least one fiber population.
    pub fn fiber_mask(&self) -> Mask {
        Mask::from_fn(self.dims, |c| self.at(c).count > 0)
    }

    /// Voxels with exactly two populations (crossings).
    pub fn crossing_mask(&self) -> Mask {
        Mask::from_fn(self.dims, |c| self.at(c).count == 2)
    }

    /// Number of fiber-bearing voxels.
    pub fn fiber_voxel_count(&self) -> usize {
        self.voxels.iter().filter(|v| v.count > 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::StraightBundle;

    #[test]
    fn voxel_truth_push_orders_by_fraction() {
        let mut vt = VoxelTruth::EMPTY;
        vt.push(Vec3::X, 0.2);
        vt.push(Vec3::Y, 0.5);
        assert_eq!(vt.count, 2);
        assert_eq!(vt.sticks()[0].1, 0.5);
        assert!((vt.sticks()[0].0 - Vec3::Y).norm() < 1e-12);
        assert_eq!(vt.principal().unwrap(), Vec3::Y);
    }

    #[test]
    fn voxel_truth_keeps_two_strongest() {
        let mut vt = VoxelTruth::EMPTY;
        vt.push(Vec3::X, 0.3);
        vt.push(Vec3::Y, 0.5);
        vt.push(Vec3::Z, 0.4);
        assert_eq!(vt.count, 2);
        assert_eq!(vt.sticks()[0].1, 0.5);
        assert_eq!(vt.sticks()[1].1, 0.4);
    }

    #[test]
    fn voxel_truth_ignores_zero_fraction() {
        let mut vt = VoxelTruth::EMPTY;
        vt.push(Vec3::X, 0.0);
        assert_eq!(vt.count, 0);
    }

    #[test]
    fn normalize_caps_total() {
        let mut vt = VoxelTruth::EMPTY;
        vt.push(Vec3::X, 0.6);
        vt.push(Vec3::Y, 0.6);
        vt.normalize_to_cap(0.9);
        assert!((vt.total_fraction() - 0.9).abs() < 1e-12);
        // Relative proportions preserved.
        assert!((vt.sticks()[0].1 - vt.sticks()[1].1).abs() < 1e-12);
    }

    #[test]
    fn rasterize_straight_bundle() {
        let dims = Dim3::new(16, 8, 8);
        let b = StraightBundle::new(Vec3::new(0.0, 4.0, 4.0), Vec3::new(15.0, 4.0, 4.0), 2.0);
        let field = GroundTruthField::rasterize(dims, &[(&b, 0.7)], 0.9);
        // Center of the tube is fiber-bearing with the x direction.
        let vt = field.at(Ijk::new(8, 4, 4));
        assert_eq!(vt.count, 1);
        assert!((vt.sticks()[0].0 - Vec3::X).norm() < 1e-12);
        assert!((vt.sticks()[0].1 - 0.7).abs() < 1e-12);
        // A corner voxel is empty.
        assert_eq!(field.at(Ijk::new(0, 0, 0)).count, 0);
        assert!(field.fiber_voxel_count() > 0);
    }

    #[test]
    fn rasterize_crossing_creates_two_population_voxels() {
        let dims = Dim3::new(12, 12, 5);
        let bx = StraightBundle::new(Vec3::new(0.0, 6.0, 2.0), Vec3::new(11.0, 6.0, 2.0), 1.8);
        let by = StraightBundle::new(Vec3::new(6.0, 0.0, 2.0), Vec3::new(6.0, 11.0, 2.0), 1.8);
        let field = GroundTruthField::rasterize(dims, &[(&bx, 0.5), (&by, 0.5)], 0.9);
        let center = field.at(Ijk::new(6, 6, 2));
        assert_eq!(center.count, 2, "crossing voxel must hold two populations");
        assert!(field.crossing_mask().count() > 0);
        // Away from the crossing only one population.
        assert_eq!(field.at(Ijk::new(1, 6, 2)).count, 1);
    }

    #[test]
    fn from_mask_reproduces_the_mask_exactly() {
        let dims = Dim3::new(6, 5, 4);
        let mask = Mask::from_fn(dims, |c| (c.i + c.j + c.k) % 3 == 0);
        let field = GroundTruthField::from_mask(dims, &mask, 0.7);
        let derived = field.fiber_mask();
        for idx in 0..dims.len() {
            let c = dims.coords(idx);
            assert_eq!(derived.contains(c), mask.contains(c));
        }
        // In-mask voxels carry one stick so default seeding works.
        let inside = dims.coords(mask.indices()[0]);
        assert_eq!(field.at(inside).count, 1);
        assert!((field.at(inside).total_fraction() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn fiber_mask_matches_counts() {
        let dims = Dim3::new(8, 8, 4);
        let b = StraightBundle::new(Vec3::new(0.0, 4.0, 2.0), Vec3::new(7.0, 4.0, 2.0), 1.0);
        let field = GroundTruthField::rasterize(dims, &[(&b, 0.6)], 0.9);
        assert_eq!(field.fiber_mask().count(), field.fiber_voxel_count());
    }
}
