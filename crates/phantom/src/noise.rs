//! Measurement noise models.
//!
//! Magnitude MR images carry **Rician** noise: the measured magnitude is
//! `√((S + n₁)² + n₂²)` with `n₁, n₂ ~ N(0, σ²)`. At the SNRs of white
//! matter it is well approximated by Gaussian noise, which is what the
//! Behrens likelihood assumes; both are provided so the estimator's
//! robustness to the model mismatch can be exercised.

use tracto_rng::{BoxMuller, HybridTaus};

/// Noise model applied to synthesized signals.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NoiseModel {
    /// No noise (for exactness tests).
    None,
    /// Additive Gaussian noise with the given σ.
    Gaussian {
        /// Standard deviation (absolute signal units).
        sigma: f64,
    },
    /// Rician noise with per-channel σ.
    Rician {
        /// Standard deviation of each quadrature channel.
        sigma: f64,
    },
}

impl NoiseModel {
    /// Construct from an SNR relative to a reference (b=0) intensity:
    /// `σ = s0 / snr`.
    pub fn rician_snr(s0: f64, snr: f64) -> NoiseModel {
        assert!(snr > 0.0);
        NoiseModel::Rician { sigma: s0 / snr }
    }

    /// Apply the noise model to a clean signal value.
    pub fn apply(&self, clean: f64, rng: &mut BoxMuller<HybridTaus>) -> f64 {
        match *self {
            NoiseModel::None => clean,
            NoiseModel::Gaussian { sigma } => clean + rng.next(0.0, sigma),
            NoiseModel::Rician { sigma } => {
                let re = clean + rng.next(0.0, sigma);
                let im = rng.next(0.0, sigma);
                (re * re + im * im).sqrt()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(seed: u64) -> BoxMuller<HybridTaus> {
        BoxMuller::new(HybridTaus::new(seed))
    }

    #[test]
    fn none_is_identity() {
        let mut r = rng(1);
        assert_eq!(NoiseModel::None.apply(123.0, &mut r), 123.0);
    }

    #[test]
    fn gaussian_statistics() {
        let mut r = rng(2);
        let m = NoiseModel::Gaussian { sigma: 5.0 };
        const N: usize = 50_000;
        let samples: Vec<f64> = (0..N).map(|_| m.apply(100.0, &mut r)).collect();
        let mean = samples.iter().sum::<f64>() / N as f64;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / N as f64;
        assert!((mean - 100.0).abs() < 0.1, "mean {mean}");
        assert!((var - 25.0).abs() < 0.5, "var {var}");
    }

    #[test]
    fn rician_high_snr_approaches_gaussian() {
        // At SNR 50, Rician mean ≈ S + σ²/(2S) (tiny positive bias).
        let mut r = rng(3);
        let s = 100.0;
        let sigma = 2.0;
        let m = NoiseModel::Rician { sigma };
        const N: usize = 50_000;
        let mean = (0..N).map(|_| m.apply(s, &mut r)).sum::<f64>() / N as f64;
        let expected_bias = sigma * sigma / (2.0 * s);
        assert!((mean - s - expected_bias).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn rician_zero_signal_rayleigh_mean() {
        // With S = 0, Rician reduces to Rayleigh with mean σ√(π/2).
        let mut r = rng(4);
        let sigma = 3.0;
        let m = NoiseModel::Rician { sigma };
        const N: usize = 50_000;
        let mean = (0..N).map(|_| m.apply(0.0, &mut r)).sum::<f64>() / N as f64;
        let expected = sigma * (std::f64::consts::PI / 2.0).sqrt();
        assert!(
            (mean - expected).abs() < 0.05,
            "mean {mean} expected {expected}"
        );
    }

    #[test]
    fn rician_always_nonnegative() {
        let mut r = rng(5);
        let m = NoiseModel::Rician { sigma: 50.0 };
        for _ in 0..10_000 {
            assert!(m.apply(10.0, &mut r) >= 0.0);
        }
    }

    #[test]
    fn rician_snr_constructor() {
        match NoiseModel::rician_snr(200.0, 20.0) {
            NoiseModel::Rician { sigma } => assert_eq!(sigma, 10.0),
            _ => panic!("wrong variant"),
        }
    }
}
