//! Analytic fiber-bundle primitives.
//!
//! A bundle answers one question: *does this point lie inside me, and if so,
//! what is the local fiber tangent?* Bundles are defined in continuous voxel
//! coordinates so that the same geometry scales with grid resolution.

use tracto_volume::Vec3;

/// A fiber bundle: a tube around a spine curve.
pub trait Bundle {
    /// If `p` lies inside the bundle, the unit tangent of the spine at the
    /// closest spine point; otherwise `None`.
    fn orientation(&self, p: Vec3) -> Option<Vec3>;

    /// Signed-free distance from `p` to the bundle spine (used for soft
    /// partial-volume weighting near the boundary).
    fn spine_distance(&self, p: Vec3) -> f64;

    /// Tube radius.
    fn radius(&self) -> f64;

    /// Partial-volume weight in `[0, 1]`: 1 deep inside, rolling off to 0 at
    /// the boundary over the outer 20% of the radius. Models the partial
    /// voluming that makes boundary voxels mixed-population.
    fn weight(&self, p: Vec3) -> f64 {
        let d = self.spine_distance(p);
        let r = self.radius();
        if d >= r {
            return 0.0;
        }
        let edge = 0.8 * r;
        if d <= edge {
            1.0
        } else {
            ((r - d) / (r - edge)).clamp(0.0, 1.0)
        }
    }
}

/// A straight cylindrical bundle between two spine end points.
#[derive(Debug, Clone, Copy)]
pub struct StraightBundle {
    /// Spine start.
    pub a: Vec3,
    /// Spine end.
    pub b: Vec3,
    /// Tube radius.
    pub r: f64,
}

impl StraightBundle {
    /// Construct a straight bundle from `a` to `b` with radius `r`.
    pub fn new(a: Vec3, b: Vec3, r: f64) -> Self {
        assert!((b - a).norm() > 0.0, "degenerate spine");
        assert!(r > 0.0, "radius must be positive");
        StraightBundle { a, b, r }
    }

    fn closest_param(&self, p: Vec3) -> f64 {
        let ab = self.b - self.a;
        ((p - self.a).dot(ab) / ab.norm_sq()).clamp(0.0, 1.0)
    }
}

impl Bundle for StraightBundle {
    fn orientation(&self, p: Vec3) -> Option<Vec3> {
        (self.spine_distance(p) < self.r).then(|| (self.b - self.a).normalized())
    }

    fn spine_distance(&self, p: Vec3) -> f64 {
        let t = self.closest_param(p);
        (p - self.a.lerp(self.b, t)).norm()
    }

    fn radius(&self) -> f64 {
        self.r
    }
}

/// A circular-arc bundle — the corpus-callosum-like geometry of the paper's
/// biological figures (Figs. 9–12): an arc of a circle of radius `arc_radius`
/// around `center`, lying in the plane spanned by `u` and `v`, from angle
/// `ang0` to `ang1` (radians measured from `u` toward `v`), thickened into a
/// tube of radius `tube_radius`.
#[derive(Debug, Clone, Copy)]
pub struct ArcBundle {
    /// Circle center.
    pub center: Vec3,
    /// First in-plane basis vector (unit).
    pub u: Vec3,
    /// Second in-plane basis vector (unit, orthogonal to `u`).
    pub v: Vec3,
    /// Circle radius.
    pub arc_radius: f64,
    /// Start angle (radians).
    pub ang0: f64,
    /// End angle (radians), `> ang0`.
    pub ang1: f64,
    /// Tube radius.
    pub tube_radius: f64,
}

impl ArcBundle {
    /// Construct an arc bundle in the plane orthogonal to `normal`.
    pub fn new(
        center: Vec3,
        normal: Vec3,
        arc_radius: f64,
        ang0: f64,
        ang1: f64,
        tube_radius: f64,
    ) -> Self {
        assert!(
            arc_radius > 0.0 && tube_radius > 0.0,
            "radii must be positive"
        );
        assert!(ang1 > ang0, "empty arc");
        let n = normal.normalized();
        let u = n.any_orthogonal();
        let v = n.cross(u).normalized();
        ArcBundle {
            center,
            u,
            v,
            arc_radius,
            ang0,
            ang1,
            tube_radius,
        }
    }

    /// The spine point at angle `a`.
    pub fn spine_point(&self, a: f64) -> Vec3 {
        self.center + self.u * (self.arc_radius * a.cos()) + self.v * (self.arc_radius * a.sin())
    }

    /// Unit tangent of the spine at angle `a`.
    pub fn spine_tangent(&self, a: f64) -> Vec3 {
        (self.v * a.cos() - self.u * a.sin()).normalized()
    }

    fn closest_angle(&self, p: Vec3) -> f64 {
        let rel = p - self.center;
        let x = rel.dot(self.u);
        let y = rel.dot(self.v);
        let a = y.atan2(x);
        // Choose the representative of `a` (mod 2π) closest to the arc range.
        let candidates = [a, a + std::f64::consts::TAU, a - std::f64::consts::TAU];
        let mut best = self.ang0;
        let mut best_cost = f64::INFINITY;
        for c in candidates {
            let clamped = c.clamp(self.ang0, self.ang1);
            let cost = (c - clamped).abs();
            if cost < best_cost {
                best_cost = cost;
                best = clamped;
            }
        }
        best
    }
}

impl Bundle for ArcBundle {
    fn orientation(&self, p: Vec3) -> Option<Vec3> {
        let a = self.closest_angle(p);
        ((p - self.spine_point(a)).norm() < self.tube_radius).then(|| self.spine_tangent(a))
    }

    fn spine_distance(&self, p: Vec3) -> f64 {
        let a = self.closest_angle(p);
        (p - self.spine_point(a)).norm()
    }

    fn radius(&self) -> f64 {
        self.tube_radius
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn straight_inside_outside() {
        let b = StraightBundle::new(Vec3::ZERO, Vec3::new(10.0, 0.0, 0.0), 2.0);
        assert!(b.orientation(Vec3::new(5.0, 1.0, 0.5)).is_some());
        assert!(b.orientation(Vec3::new(5.0, 3.0, 0.0)).is_none());
        assert!(b.orientation(Vec3::new(-3.0, 0.0, 0.0)).is_none());
    }

    #[test]
    fn straight_tangent_is_axis() {
        let b = StraightBundle::new(Vec3::ZERO, Vec3::new(0.0, 4.0, 3.0), 1.0);
        let t = b.orientation(Vec3::new(0.0, 2.0, 1.5)).unwrap();
        assert!((t - Vec3::new(0.0, 0.8, 0.6)).norm() < 1e-12);
    }

    #[test]
    fn straight_distance_to_endpoints() {
        let b = StraightBundle::new(Vec3::ZERO, Vec3::new(10.0, 0.0, 0.0), 1.0);
        assert!((b.spine_distance(Vec3::new(12.0, 0.0, 0.0)) - 2.0).abs() < 1e-12);
        assert!((b.spine_distance(Vec3::new(5.0, 3.0, 4.0)) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn weight_profile() {
        let b = StraightBundle::new(Vec3::ZERO, Vec3::new(10.0, 0.0, 0.0), 2.0);
        assert_eq!(b.weight(Vec3::new(5.0, 0.0, 0.0)), 1.0); // core
        assert_eq!(b.weight(Vec3::new(5.0, 2.5, 0.0)), 0.0); // outside
        let w = b.weight(Vec3::new(5.0, 1.8, 0.0)); // boundary band
        assert!(w > 0.0 && w < 1.0, "boundary weight {w}");
    }

    #[test]
    fn arc_tangent_perpendicular_to_radius() {
        let arc = ArcBundle::new(Vec3::ZERO, Vec3::Z, 10.0, 0.0, PI, 1.5);
        for a in [0.1, FRAC_PI_2, 2.5] {
            let p = arc.spine_point(a);
            let t = arc.spine_tangent(a);
            assert!(((p - arc.center).normalized().dot(t)).abs() < 1e-12);
            assert!((t.norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn arc_membership() {
        let arc = ArcBundle::new(Vec3::ZERO, Vec3::Z, 10.0, 0.0, PI, 1.5);
        let on_spine = arc.spine_point(1.0);
        assert!(arc.orientation(on_spine).is_some());
        // Point near the circle but beyond the angular range.
        let beyond = arc.spine_point(0.0) + arc.spine_tangent(0.0) * -5.0;
        assert!(arc.orientation(beyond).is_none());
        // Point radially displaced past the tube.
        let outside = arc.spine_point(1.0) * 1.5;
        assert!(arc.orientation(outside).is_none());
    }

    #[test]
    fn arc_closest_angle_clamps_to_range() {
        let arc = ArcBundle::new(Vec3::ZERO, Vec3::Z, 10.0, 0.2, 1.0, 1.0);
        // A point at angle 1.5 should project to the end of the arc.
        let p = arc.spine_point(1.5);
        let d = arc.spine_distance(p);
        let end = arc.spine_point(1.0);
        assert!((d - (p - end).norm()).abs() < 1e-9);
    }

    #[test]
    fn arc_orientation_continuous_along_spine() {
        let arc = ArcBundle::new(Vec3::new(5.0, 5.0, 5.0), Vec3::X, 8.0, 0.3, 2.8, 1.0);
        let mut prev = arc.spine_tangent(0.3);
        let steps = 50;
        for s in 1..=steps {
            let a = 0.3 + (2.8 - 0.3) * s as f64 / steps as f64;
            let t = arc.spine_tangent(a);
            assert!(t.dot(prev) > 0.9, "tangent jumped at a={a}");
            prev = t;
        }
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn straight_degenerate_rejected() {
        let _ = StraightBundle::new(Vec3::ZERO, Vec3::ZERO, 1.0);
    }

    #[test]
    #[should_panic(expected = "empty arc")]
    fn arc_empty_range_rejected() {
        let _ = ArcBundle::new(Vec3::ZERO, Vec3::Z, 5.0, 1.0, 1.0, 1.0);
    }
}
