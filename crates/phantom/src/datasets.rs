//! The paper-equivalent datasets and special-purpose phantoms.
//!
//! Dataset 1 mimics the paper's first scan (48×96×96 @ 2.5 mm) and dataset 2
//! the second (60×102×102 @ 2 mm). Geometry is expressed in fractions of the
//! grid, so a `scale` factor produces smaller (CI-speed) instances with the
//! same anatomy: a corpus-callosum-like arc spanning the x axis, two
//! corticospinal-like vertical bundles crossing it, and an association
//! bundle along y, all inside an ellipsoidal "brain" white-matter mask.

use crate::field::GroundTruthField;
use crate::geometry::{ArcBundle, Bundle, StraightBundle};
use crate::gradients;
use crate::noise::NoiseModel;
use crate::signal::{synthesize, TissueParams};
use tracto_diffusion::Acquisition;
use tracto_volume::{Dim3, Mask, Vec3, Volume4, VoxelGrid};

/// Parameters describing a synthetic dataset before it is built.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Human-readable name ("dataset1", …).
    pub name: String,
    /// Grid dimensions.
    pub dims: Dim3,
    /// Isotropic voxel spacing in mm.
    pub spacing_mm: f64,
    /// Number of diffusion directions.
    pub n_dirs: usize,
    /// Number of b=0 volumes.
    pub n_b0: usize,
    /// b-value of the weighted volumes (s/mm²).
    pub bval: f64,
    /// SNR at b=0 (Rician); `None` disables noise.
    pub snr: Option<f64>,
    /// Seed for gradients and noise.
    pub seed: u64,
}

impl DatasetSpec {
    /// The paper's first dataset: 48×96×96 @ 2.5 mm.
    pub fn paper_dataset1() -> Self {
        DatasetSpec {
            name: "dataset1".into(),
            dims: Dim3::new(48, 96, 96),
            spacing_mm: 2.5,
            n_dirs: 60,
            n_b0: 4,
            bval: 1000.0,
            snr: Some(25.0),
            seed: 1001,
        }
    }

    /// The paper's second dataset: 60×102×102 @ 2 mm.
    pub fn paper_dataset2() -> Self {
        DatasetSpec {
            name: "dataset2".into(),
            dims: Dim3::new(60, 102, 102),
            spacing_mm: 2.0,
            n_dirs: 60,
            n_b0: 4,
            bval: 1000.0,
            snr: Some(25.0),
            seed: 2002,
        }
    }

    /// Shrink the grid by `scale` (0 < scale ≤ 1) keeping the anatomy;
    /// used to run the same experiments at CI speed.
    pub fn scaled(mut self, scale: f64) -> Self {
        assert!(scale > 0.0 && scale <= 1.0);
        let f = |n: usize| ((n as f64 * scale).round() as usize).max(8);
        self.dims = Dim3::new(f(self.dims.nx), f(self.dims.ny), f(self.dims.nz));
        self.spacing_mm /= scale; // preserve physical extent
        self
    }

    /// Use a lighter protocol (fewer directions) for fast tests.
    pub fn light_protocol(mut self) -> Self {
        self.n_dirs = 15;
        self.n_b0 = 2;
        self
    }

    /// Disable noise.
    pub fn noiseless(mut self) -> Self {
        self.snr = None;
        self
    }

    /// Build the dataset: rasterize anatomy, synthesize DWI.
    pub fn build(&self) -> Dataset {
        let dims = self.dims;
        let (nx, ny, nz) = (dims.nx as f64, dims.ny as f64, dims.nz as f64);
        let cx = (nx - 1.0) / 2.0;
        let cy = (ny - 1.0) / 2.0;
        let cz = (nz - 1.0) / 2.0;
        let min_dim = nx.min(ny).min(nz);

        // Corpus-callosum-like arc: spans x, arches over +z, in the x–z
        // plane (normal = y).
        let cc = ArcBundle {
            center: Vec3::new(cx, cy, cz * 0.7),
            u: Vec3::X,
            v: Vec3::Z,
            arc_radius: 0.30 * nx.max(nz),
            ang0: 0.15 * std::f64::consts::PI,
            ang1: 0.85 * std::f64::consts::PI,
            tube_radius: (0.09 * min_dim).max(1.2),
        };
        // Two corticospinal-like vertical (z) bundles, left and right.
        let cst_l = StraightBundle::new(
            Vec3::new(cx - 0.22 * nx, cy, 0.1 * nz),
            Vec3::new(cx - 0.22 * nx, cy, 0.95 * nz),
            (0.08 * min_dim).max(1.1),
        );
        let cst_r = StraightBundle::new(
            Vec3::new(cx + 0.22 * nx, cy, 0.1 * nz),
            Vec3::new(cx + 0.22 * nx, cy, 0.95 * nz),
            (0.08 * min_dim).max(1.1),
        );
        // Association bundle along y at mid height — crosses both CSTs.
        let assoc = StraightBundle::new(
            Vec3::new(cx, 0.05 * ny, cz * 0.55),
            Vec3::new(cx, 0.95 * ny, cz * 0.55),
            (0.07 * min_dim).max(1.0),
        );

        let bundles: Vec<(&dyn Bundle, f64)> =
            vec![(&cc, 0.65), (&cst_l, 0.60), (&cst_r, 0.60), (&assoc, 0.55)];
        let truth = GroundTruthField::rasterize(dims, &bundles, 0.95);

        // Ellipsoidal brain mask (the "valid white-matter voxels" of Table
        // III). Semi-axes at 45% of each extent.
        let wm_mask = Mask::from_fn(dims, |c| {
            let dx = (c.i as f64 - cx) / (0.45 * nx);
            let dy = (c.j as f64 - cy) / (0.45 * ny);
            let dz = (c.k as f64 - cz) / (0.45 * nz);
            dx * dx + dy * dy + dz * dz <= 1.0
        });

        let acq = gradients::protocol(self.n_dirs, self.n_b0, self.bval, self.seed);
        let tissue = TissueParams::default();
        let noise = match self.snr {
            Some(snr) => NoiseModel::rician_snr(tissue.s0, snr),
            None => NoiseModel::None,
        };
        let dwi = synthesize(&truth, &acq, tissue, noise, self.seed);

        Dataset {
            spec: self.clone(),
            grid: VoxelGrid::isotropic(dims, self.spacing_mm),
            acq,
            dwi,
            truth,
            wm_mask,
            tissue,
        }
    }
}

/// A fully built synthetic dataset: DWI volume, protocol, geometry, ground
/// truth, and white-matter mask.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// The generating spec.
    pub spec: DatasetSpec,
    /// Voxel/world geometry.
    pub grid: VoxelGrid,
    /// The acquisition protocol.
    pub acq: Acquisition,
    /// The 4-D DWI volume (`dims × n` measurements).
    pub dwi: Volume4<f32>,
    /// Ground-truth orientation field.
    pub truth: GroundTruthField,
    /// White-matter (valid-voxel) mask.
    pub wm_mask: Mask,
    /// Tissue parameters used in synthesis.
    pub tissue: TissueParams,
}

impl Dataset {
    /// Number of valid (white-matter) voxels — the MCMC workload size.
    pub fn valid_voxel_count(&self) -> usize {
        self.wm_mask.count()
    }
}

/// A minimal single-bundle phantom for quickstarts and unit tests: one
/// straight x-aligned bundle in a small grid, noiseless by default.
pub fn single_bundle(dims: Dim3, noise_snr: Option<f64>, seed: u64) -> Dataset {
    let (nx, ny, nz) = (dims.nx as f64, dims.ny as f64, dims.nz as f64);
    let bundle = StraightBundle::new(
        Vec3::new(0.0, (ny - 1.0) / 2.0, (nz - 1.0) / 2.0),
        Vec3::new(nx - 1.0, (ny - 1.0) / 2.0, (nz - 1.0) / 2.0),
        (0.18 * ny.min(nz)).max(1.2),
    );
    let bundles: Vec<(&dyn Bundle, f64)> = vec![(&bundle, 0.7)];
    let truth = GroundTruthField::rasterize(dims, &bundles, 0.95);
    let wm_mask = Mask::full(dims);
    let acq = gradients::protocol(15, 2, 1000.0, seed);
    let tissue = TissueParams::default();
    let noise = match noise_snr {
        Some(snr) => NoiseModel::rician_snr(tissue.s0, snr),
        None => NoiseModel::None,
    };
    let dwi = synthesize(&truth, &acq, tissue, noise, seed);
    Dataset {
        spec: DatasetSpec {
            name: "single_bundle".into(),
            dims,
            spacing_mm: 2.0,
            n_dirs: 15,
            n_b0: 2,
            bval: 1000.0,
            snr: noise_snr,
            seed,
        },
        grid: VoxelGrid::isotropic(dims, 2.0),
        acq,
        dwi,
        truth,
        wm_mask,
        tissue,
    }
}

/// A two-bundle crossing phantom: bundle A along x, bundle B in the x–y
/// plane at `angle_deg` to A, crossing at the grid center. Exercises the
/// multi-fiber model's crossing recovery (the motivating case of the paper's
/// introduction).
pub fn crossing(dims: Dim3, angle_deg: f64, noise_snr: Option<f64>, seed: u64) -> Dataset {
    let (nx, ny, nz) = (dims.nx as f64, dims.ny as f64, dims.nz as f64);
    let center = Vec3::new((nx - 1.0) / 2.0, (ny - 1.0) / 2.0, (nz - 1.0) / 2.0);
    let half = 0.5 * nx.max(ny);
    let r = (0.12 * nx.min(ny)).max(1.2);
    let a = StraightBundle::new(center - Vec3::X * half, center + Vec3::X * half, r);
    let ang = angle_deg.to_radians();
    let dir_b = Vec3::new(ang.cos(), ang.sin(), 0.0);
    let b = StraightBundle::new(center - dir_b * half, center + dir_b * half, r);
    let bundles: Vec<(&dyn Bundle, f64)> = vec![(&a, 0.5), (&b, 0.5)];
    let truth = GroundTruthField::rasterize(dims, &bundles, 0.95);
    let wm_mask = Mask::full(dims);
    let acq = gradients::protocol(30, 2, 1000.0, seed);
    let tissue = TissueParams::default();
    let noise = match noise_snr {
        Some(snr) => NoiseModel::rician_snr(tissue.s0, snr),
        None => NoiseModel::None,
    };
    let dwi = synthesize(&truth, &acq, tissue, noise, seed);
    Dataset {
        spec: DatasetSpec {
            name: format!("crossing_{angle_deg:.0}deg"),
            dims,
            spacing_mm: 2.0,
            n_dirs: 30,
            n_b0: 2,
            bval: 1000.0,
            snr: noise_snr,
            seed,
        },
        grid: VoxelGrid::isotropic(dims, 2.0),
        acq,
        dwi,
        truth,
        wm_mask,
        tissue,
    }
}

/// A "kissing" phantom: two arc bundles that curve toward each other, touch
/// near the grid center, and separate again — the classic configuration that
/// looks locally identical to a crossing but has different connectivity
/// (A-west connects to A-east, never to B). Distinguishing kissing from
/// crossing is a known hard case for tractography; the multi-fiber tracker's
/// orientation-maintenance rule is what resolves it.
pub fn kissing(dims: Dim3, noise_snr: Option<f64>, seed: u64) -> Dataset {
    let (nx, ny, nz) = (dims.nx as f64, dims.ny as f64, dims.nz as f64);
    let cz = (nz - 1.0) / 2.0;
    let cx = (nx - 1.0) / 2.0;
    let cy = (ny - 1.0) / 2.0;
    let r = (0.10 * nx.min(ny)).max(1.2);
    let arc_r = 0.65 * ny;
    // Upper arc: center above the grid, bulging down to the middle.
    let upper = ArcBundle {
        center: Vec3::new(cx, cy + arc_r, cz),
        u: Vec3::X,
        v: -Vec3::Y,
        arc_radius: arc_r - 0.04 * ny,
        ang0: std::f64::consts::FRAC_PI_2 - 0.9,
        ang1: std::f64::consts::FRAC_PI_2 + 0.9,
        tube_radius: r,
    };
    // Lower arc: mirrored, bulging up to the middle.
    let lower = ArcBundle {
        center: Vec3::new(cx, cy - arc_r, cz),
        u: Vec3::X,
        v: Vec3::Y,
        arc_radius: arc_r - 0.04 * ny,
        ang0: std::f64::consts::FRAC_PI_2 - 0.9,
        ang1: std::f64::consts::FRAC_PI_2 + 0.9,
        tube_radius: r,
    };
    let bundles: Vec<(&dyn Bundle, f64)> = vec![(&upper, 0.55), (&lower, 0.55)];
    let truth = GroundTruthField::rasterize(dims, &bundles, 0.95);
    let wm_mask = Mask::full(dims);
    let acq = gradients::protocol(30, 2, 1000.0, seed);
    let tissue = TissueParams::default();
    let noise = match noise_snr {
        Some(snr) => NoiseModel::rician_snr(tissue.s0, snr),
        None => NoiseModel::None,
    };
    let dwi = synthesize(&truth, &acq, tissue, noise, seed);
    Dataset {
        spec: DatasetSpec {
            name: "kissing".into(),
            dims,
            spacing_mm: 2.0,
            n_dirs: 30,
            n_b0: 2,
            bval: 1000.0,
            snr: noise_snr,
            seed,
        },
        grid: VoxelGrid::isotropic(dims, 2.0),
        acq,
        dwi,
        truth,
        wm_mask,
        tissue,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_dataset1_builds() {
        let ds = DatasetSpec::paper_dataset1()
            .scaled(0.15)
            .light_protocol()
            .build();
        assert!(!ds.dwi.dims().is_empty());
        assert_eq!(ds.dwi.nt(), ds.acq.len());
        assert!(ds.valid_voxel_count() > 0);
        assert!(ds.truth.fiber_voxel_count() > 0, "anatomy must rasterize");
    }

    #[test]
    fn paper_dims_match() {
        let d1 = DatasetSpec::paper_dataset1();
        assert_eq!(d1.dims, Dim3::new(48, 96, 96));
        assert_eq!(d1.spacing_mm, 2.5);
        let d2 = DatasetSpec::paper_dataset2();
        assert_eq!(d2.dims, Dim3::new(60, 102, 102));
        assert_eq!(d2.spacing_mm, 2.0);
    }

    #[test]
    fn scaling_preserves_physical_extent() {
        let full = DatasetSpec::paper_dataset1();
        let half = DatasetSpec::paper_dataset1().scaled(0.5);
        let full_extent = full.dims.nx as f64 * full.spacing_mm;
        let half_extent = half.dims.nx as f64 * half.spacing_mm;
        assert!((full_extent - half_extent).abs() / full_extent < 0.1);
    }

    #[test]
    fn dataset_contains_crossings() {
        let ds = DatasetSpec::paper_dataset1()
            .scaled(0.2)
            .light_protocol()
            .build();
        assert!(
            ds.truth.crossing_mask().count() > 0,
            "CST × association crossings must exist"
        );
    }

    #[test]
    fn wm_mask_is_ellipsoid_interior() {
        let ds = DatasetSpec::paper_dataset1()
            .scaled(0.15)
            .light_protocol()
            .build();
        let d = ds.spec.dims;
        // Center voxel in, corner voxel out.
        assert!(ds
            .wm_mask
            .contains(tracto_volume::Ijk::new(d.nx / 2, d.ny / 2, d.nz / 2)));
        assert!(!ds.wm_mask.contains(tracto_volume::Ijk::new(0, 0, 0)));
        // Roughly half the volume (ellipsoid of semi-axes 0.45 fills
        // 4/3·π·0.45³ / 1 ≈ 38% of the bounding box).
        let frac = ds.valid_voxel_count() as f64 / d.len() as f64;
        assert!((0.25..0.5).contains(&frac), "mask fraction {frac}");
    }

    #[test]
    fn single_bundle_truth_along_x() {
        let ds = single_bundle(Dim3::new(12, 8, 8), None, 3);
        let c = tracto_volume::Ijk::new(6, 3, 3);
        let vt = ds.truth.at(c);
        assert_eq!(vt.count, 1);
        assert!(vt.sticks()[0].0.dot(Vec3::X).abs() > 0.999);
    }

    #[test]
    fn crossing_has_two_population_center() {
        let ds = crossing(Dim3::new(16, 16, 6), 90.0, None, 4);
        let c = tracto_volume::Ijk::new(7, 7, 2);
        let vt = ds.truth.at(c);
        assert_eq!(vt.count, 2, "center voxel must be a crossing");
        let d0 = vt.sticks()[0].0;
        let d1 = vt.sticks()[1].0;
        assert!(
            d0.dot(d1).abs() < 0.2,
            "crossing directions near-orthogonal"
        );
    }

    #[test]
    fn noiseless_flag_respected() {
        let a = DatasetSpec::paper_dataset1()
            .scaled(0.12)
            .light_protocol()
            .noiseless()
            .build();
        let b = DatasetSpec::paper_dataset1()
            .scaled(0.12)
            .light_protocol()
            .noiseless()
            .build();
        assert_eq!(a.dwi, b.dwi, "noiseless builds must be identical");
    }

    #[test]
    fn kissing_bundles_touch_near_center() {
        let dims = Dim3::new(24, 24, 7);
        let ds = kissing(dims, None, 6);
        assert!(ds.truth.fiber_voxel_count() > 20, "bundles must rasterize");
        // Near the touch zone both populations appear in some voxels.
        let mut near_center_two = 0;
        for c in dims.iter() {
            let dx = c.i as isize - 11;
            let dy = c.j as isize - 11;
            if dx.abs() <= 3 && dy.abs() <= 3 && ds.truth.at(c).count == 2 {
                near_center_two += 1;
            }
        }
        assert!(near_center_two > 0, "touch zone should mix populations");
        // Far from the center, bundles are separate (single population).
        let west_top = tracto_volume::Ijk::new(3, 16, 3);
        let count_far = ds.truth.at(west_top).count;
        assert!(count_far <= 1, "arms must be disjoint away from the kiss");
    }

    #[test]
    fn dataset2_larger_than_dataset1() {
        let d1 = DatasetSpec::paper_dataset1().scaled(0.15);
        let d2 = DatasetSpec::paper_dataset2().scaled(0.15);
        assert!(d2.dims.len() > d1.dims.len());
    }
}
