//! Synthetic DWI phantom generation.
//!
//! The paper evaluates on two DT-MRI scans downloaded from
//! `cabiatl.com/CABI/resources/dti-analysis/` (48×96×96 @ 2.5 mm and
//! 60×102×102 @ 2 mm), which are no longer obtainable. This crate builds the
//! substitute: fully synthetic datasets with **known ground truth**:
//!
//! 1. [`geometry`] — analytic fiber-bundle primitives (straight tubes,
//!    circular arcs like the corpus callosum, crossings);
//! 2. [`field`] — rasterization of bundles into a per-voxel ground-truth
//!    orientation field (up to two sticks per voxel, matching the N = 2
//!    partial-volume model);
//! 3. [`gradients`] — gradient schemes (electrostatic-repulsion point sets);
//! 4. [`signal`] — DWI synthesis through the ball-and-sticks forward model
//!    with Rician or Gaussian noise;
//! 5. [`datasets`] — the two paper-equivalent datasets and smaller
//!    special-purpose phantoms (crossing validation, quickstart).
//!
//! Because the MCMC and tracking code paths consume only
//! `(signal, b-values, gradients)` per voxel, they are bit-for-bit agnostic
//! to whether the data came from a scanner or from this generator; the
//! phantom's known truth additionally enables validation experiments the
//! original data could not support.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod datasets;
pub mod field;
pub mod geometry;
pub mod gradients;
pub mod noise;
pub mod signal;

pub use datasets::{Dataset, DatasetSpec};
pub use field::GroundTruthField;
pub use geometry::{ArcBundle, Bundle, StraightBundle};
