//! Gradient schemes: the `(b, ĝ)` protocol of the synthetic scan.
//!
//! Real scanners spread diffusion-encoding directions quasi-uniformly over
//! the hemisphere (antipodal directions are equivalent). We generate such
//! point sets by electrostatic repulsion — the standard Jones scheme — and
//! assemble them with interleaved b=0 volumes into an [`Acquisition`].

use tracto_diffusion::Acquisition;
use tracto_rng::{dist, HybridTaus};
use tracto_volume::Vec3;

/// Generate `n` quasi-uniform unit directions on the hemisphere by
/// electrostatic repulsion of antipodal charge pairs (Jones et al. 1999).
///
/// Deterministic for a given `(n, seed)`.
pub fn repulsion_directions(n: usize, seed: u64) -> Vec<Vec3> {
    assert!(n > 0, "need at least one direction");
    let mut rng = HybridTaus::new(seed);
    let mut dirs: Vec<Vec3> = (0..n)
        .map(|_| {
            let (theta, phi) = dist::uniform_sphere_angles(&mut rng);
            let v = Vec3::from_spherical(theta, phi);
            // Canonical hemisphere: z ≥ 0.
            if v.z < 0.0 {
                -v
            } else {
                v
            }
        })
        .collect();

    // Gradient descent on the electrostatic energy of the antipodally
    // symmetric point set. Step size shrinks geometrically.
    let mut step = 0.1;
    for _ in 0..200 {
        let mut forces = vec![Vec3::ZERO; n];
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                for sign in [1.0, -1.0] {
                    let d = dirs[i] - dirs[j] * sign;
                    let dist_sq = d.norm_sq().max(1e-6);
                    forces[i] += d / (dist_sq * dist_sq.sqrt());
                }
            }
        }
        for i in 0..n {
            // Project the force onto the tangent plane and renormalize.
            let tangential = forces[i] - dirs[i] * forces[i].dot(dirs[i]);
            let mut v = (dirs[i] + tangential * step).normalized();
            if v.z < 0.0 {
                v = -v;
            }
            dirs[i] = v;
        }
        step *= 0.97;
    }
    dirs
}

/// Minimum angle (radians) between any two directions of a set, treating
/// antipodes as identical. A quality metric for gradient schemes.
pub fn min_pairwise_angle(dirs: &[Vec3]) -> f64 {
    let mut min = std::f64::consts::FRAC_PI_2;
    for i in 0..dirs.len() {
        for j in (i + 1)..dirs.len() {
            let c = dirs[i].dot(dirs[j]).abs().clamp(0.0, 1.0);
            min = min.min(c.acos());
        }
    }
    min
}

/// Build an acquisition protocol: `n_b0` interleaved b=0 volumes plus
/// `n_dirs` diffusion-weighted volumes at the given b-value.
pub fn protocol(n_dirs: usize, n_b0: usize, bval: f64, seed: u64) -> Acquisition {
    assert!(bval > 0.0, "b-value must be positive");
    let dirs = repulsion_directions(n_dirs, seed);
    let mut bvals = Vec::with_capacity(n_dirs + n_b0);
    let mut grads = Vec::with_capacity(n_dirs + n_b0);
    // Interleave b0s roughly evenly through the series, as scanners do.
    let stride = (n_dirs + n_b0).checked_div(n_b0).unwrap_or(usize::MAX);
    let mut dir_iter = dirs.into_iter();
    let mut placed_b0 = 0;
    for i in 0..(n_dirs + n_b0) {
        if placed_b0 < n_b0 && i % stride == 0 {
            bvals.push(0.0);
            grads.push(Vec3::ZERO);
            placed_b0 += 1;
        } else if let Some(d) = dir_iter.next() {
            bvals.push(bval);
            grads.push(d);
        } else {
            bvals.push(0.0);
            grads.push(Vec3::ZERO);
        }
    }
    Acquisition::new(bvals, grads)
}

/// The default protocol used by the paper-equivalent datasets: 60 directions
/// at b = 1000 s/mm² plus 4 interleaved b=0 volumes — "regular spatial and
/// angular resolution" per the paper's introduction.
pub fn default_protocol(seed: u64) -> Acquisition {
    protocol(60, 4, 1000.0, seed)
}

/// A light protocol for fast tests: 15 directions + 2 b0.
pub fn test_protocol(seed: u64) -> Acquisition {
    protocol(15, 2, 1000.0, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directions_unit_and_hemispheric() {
        let dirs = repulsion_directions(20, 7);
        assert_eq!(dirs.len(), 20);
        for d in &dirs {
            assert!((d.norm() - 1.0).abs() < 1e-9);
            assert!(d.z >= -1e-12);
        }
    }

    #[test]
    fn repulsion_improves_spread() {
        // Energy-minimized sets must beat the random initialization's worst
        // case: with 20 points, min pairwise angle should exceed ~15°.
        let dirs = repulsion_directions(20, 42);
        let min = min_pairwise_angle(&dirs);
        assert!(
            min > 15f64.to_radians(),
            "min angle {:.1}°",
            min.to_degrees()
        );
    }

    #[test]
    fn deterministic_for_seed() {
        let a = repulsion_directions(12, 5);
        let b = repulsion_directions(12, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seed_different_set() {
        let a = repulsion_directions(12, 5);
        let b = repulsion_directions(12, 6);
        assert_ne!(a, b);
    }

    #[test]
    fn protocol_counts() {
        let acq = protocol(30, 3, 1000.0, 1);
        assert_eq!(acq.len(), 33);
        assert_eq!(acq.b0_indices().len(), 3);
        assert_eq!(acq.dwi_indices().len(), 30);
    }

    #[test]
    fn protocol_b0_interleaved_not_clustered() {
        let acq = protocol(30, 3, 1000.0, 1);
        let b0s = acq.b0_indices();
        // No two b0s adjacent.
        for w in b0s.windows(2) {
            assert!(w[1] - w[0] > 1, "b0s clustered: {b0s:?}");
        }
    }

    #[test]
    fn default_protocol_shape() {
        let acq = default_protocol(0);
        assert_eq!(acq.len(), 64);
        assert_eq!(acq.b0_indices().len(), 4);
    }

    #[test]
    fn protocol_gradients_unit_for_dwi() {
        let acq = test_protocol(3);
        for i in acq.dwi_indices() {
            assert!((acq.grad(i).norm() - 1.0).abs() < 1e-9);
        }
    }
}
