//! The `tracto` command-line interface: generate phantoms, estimate
//! posteriors, and run probabilistic tracking from the shell.
//!
//! ```text
//! tracto phantom  --dataset 1 --scale 0.3 --out data/
//! tracto estimate --data data/ --samples 25 --out data/samples/
//! tracto track    --data data/ --samples-dir data/samples/ --strategy B --out data/tract/
//! tracto info     --data data/
//! ```
//!
//! Datasets persist as the workspace's native binary volumes (`dwi.trv4`,
//! `wm_mask.trv3`, six `*.trv4` sample volumes) plus a plain-text protocol
//! file (`acq.txt`: one `bval gx gy gz` row per measurement), so every
//! stage can be rerun, swapped, or inspected independently.
//!
//! Every command accepts the global `--trace FILE` (JSON-lines event log)
//! and `--trace-stderr` (pretty-printed events) flags; failures exit with a
//! typed [`tracto_trace::TractoError`] printed with its cause chain.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;
pub mod store;

use args::ArgMap;
use std::error::Error as _;
use std::path::Path;
use tracto_trace::{JsonlSink, StderrSink, Tracer, TractoError, TractoResult, Value};

/// Top-level usage text.
pub const USAGE: &str = "\
tracto — probabilistic brain fiber tractography (IPDPS-W 2012 reproduction)

USAGE: tracto <COMMAND> [FLAGS]

COMMANDS:
  phantom    generate a synthetic DWI dataset
             --out DIR [--dataset 1|2|single|crossing] [--scale F]
             [--snr F|none] [--seed N] [--light]
  estimate   sample voxelwise fiber-orientation posteriors (MCMC)
             --data DIR --out DIR [--samples N] [--burnin N] [--interval N]
             [--seed N] [--point] [--gpu]
  track      probabilistic streamlining over estimated samples
             --data DIR (--samples-dir DIR | --cache-dir DIR) --out DIR
             [--step F] [--threshold F] [--max-steps N]
             [--strategy B|C|single|every|uniform:K] [--seed N] [--cpu]
             [--min-export-steps N]
             [--modality mcmc|tensorline|analytic]
             [--stop-mask FILE.trv3] [--stop-threshold PCT]
             [--est-samples N] [--est-burnin N] [--est-interval N] [--est-seed N]
             [--devices N] [--fault-plan FILE | --fault-seed N]
             [--checkpoint-every N] [--streams N]
  serve      run the batched job service: replay a job script, listen on a
             socket for remote clients, or both
             (--script FILE | --listen ENDPOINT | both) [--devices N]
             [--workers N] [--max-batch N] [--batch-window-ms N]
             [--strategy B|C|single|every|uniform:K] [--cache-mb N]
             [--cache-dir DIR] [--disk-cache-mb N]
             [--fault-plan FILE | --fault-seed N] [--retry-budget N]
             [--state-dir DIR] [--checkpoint-every N] [--streams N]
             [--approx-low BOOL] [--rate-limit JPS]
  fleet      run a fleet coordinator: route jobs to member servers by
             consistent hash, replicate-aware takeover on host death
             --listen ENDPOINT --members [NAME=]EP,[NAME=]EP,...
             [--heartbeat-ms N] [--max-misses N]
  submit     submit one job to a listening server and wait for its result
             --connect ENDPOINT [--dataset 1|2|single|crossing] [--scale F]
             [--dataset-seed N] [--snr F|none] [--volume HASH] [--estimate]
             [--samples N] [--burnin N] [--interval N] [--seed N]
             [--step F] [--threshold F] [--max-steps N]
             [--modality mcmc|tensorline|analytic] [--stop-threshold PCT]
             [--deadline-ms N] [--priority low|normal|high] [--tenant NAME]
             [--retry-budget N] [--cache rw|ro|bypass]
             [--no-wait] [--follow] [--timeout-ms N]
  loadgen    fire a synthetic or replayed workload at a listening server
             (open-loop pacing; reports sheds, latency percentiles, and
             deadline hit rates per priority and tenant)
             [--connect ENDPOINT] [--replay FILE] [--out FILE]
             [--requests N] [--rate JPS] [--arrivals poisson|burst|uniform]
             [--burst N] [--tenants a:3,b:1] [--priorities low:1,high:1]
             [--repeat F] [--distinct N] [--deadline-ms N]
             [--scale F] [--samples N] [--burnin N] [--seed N]
             [--timeout-ms N]
  upload     upload a stored dataset for remote jobs (server needs
             --state-dir); prints the HASH for submit --volume
             --connect ENDPOINT --data DIR
  await      wait for a remote job (e.g. one recovered after a restart)
             --connect ENDPOINT --job N [--timeout-ms N]
  status     poll a remote job          --connect ENDPOINT --job N
  cancel     cancel a remote job        --connect ENDPOINT --job N
  metrics    print remote service metrics  --connect ENDPOINT
  ping       probe a server's heartbeat (reports fleet member name;
             old servers answer \"v1, no heartbeat\")  --connect ENDPOINT
  fleet-status
             print a coordinator's member table  --connect ENDPOINT
  shutdown   drain and stop a listening server  --connect ENDPOINT
  replay-faults
             reconstruct a --fault-plan file from a recorded trace
             --trace FILE [--out FILE]
  info       describe a stored dataset
             --data DIR
  render     print an ASCII maximum-intensity projection of a volume
             --volume FILE.trv3 [--axis x|y|z]
  help       print this message

ENDPOINTS: unix:PATH (the default — a bare path works) or tcp:HOST:PORT

GLOBAL FLAGS (any command):
  --trace FILE      append structured events as JSON lines to FILE
                    (for replay-faults, --trace is the input recording)
  --trace-stderr    pretty-print structured events to stderr

REMOTE COMMANDS also accept [--connect-retries N] [--connect-backoff-ms N]
to ride out a server restart (defaults: 3 retries, 20 ms base backoff).
";

/// Build the tracer requested by the global `--trace`/`--trace-stderr`
/// flags (disabled when neither is given).
fn build_tracer(args: &ArgMap) -> TractoResult<Tracer> {
    match (args.get("trace"), args.switch("trace-stderr")) {
        (Some(_), true) => Err(TractoError::config(
            "--trace and --trace-stderr are mutually exclusive",
        )),
        (Some(path), false) => Ok(Tracer::new(JsonlSink::create(Path::new(path))?)),
        (None, true) => Ok(Tracer::new(StderrSink)),
        (None, false) => Ok(Tracer::disabled()),
    }
}

/// Run the CLI with the given arguments (excluding `argv[0]`). Returns the
/// process exit code.
pub fn run(args: &[String]) -> i32 {
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return 2;
    };
    let parsed = match ArgMap::parse(rest) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return 2;
        }
    };
    // For `replay-faults`, `--trace FILE` names the *input* recording, not
    // an event sink — building the usual JSONL sink would truncate it.
    let tracer = if command == "replay-faults" {
        if parsed.switch("trace-stderr") {
            Tracer::new(StderrSink)
        } else {
            Tracer::disabled()
        }
    } else {
        match build_tracer(&parsed) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: {e}");
                return 2;
            }
        }
    };
    let span = tracer.span_with(
        "cli.command",
        &[("command", Value::Text(command.to_string()))],
    );
    let result = match command.as_str() {
        "phantom" => commands::phantom::run(&parsed, &tracer),
        "estimate" => commands::estimate::run(&parsed, &tracer),
        "track" => commands::track::run(&parsed, &tracer),
        "serve" => commands::serve::run(&parsed, &tracer),
        "fleet" => commands::fleet::run(&parsed, &tracer),
        "submit" => commands::remote::submit(&parsed, &tracer),
        "loadgen" => commands::loadgen::run(&parsed, &tracer),
        "upload" => commands::remote::upload(&parsed, &tracer),
        "await" => commands::remote::await_job(&parsed, &tracer),
        "status" => commands::remote::status(&parsed, &tracer),
        "cancel" => commands::remote::cancel(&parsed, &tracer),
        "metrics" => commands::remote::metrics(&parsed, &tracer),
        "ping" => commands::remote::ping(&parsed, &tracer),
        "fleet-status" => commands::remote::fleet_status(&parsed, &tracer),
        "shutdown" => commands::remote::shutdown(&parsed, &tracer),
        "info" => commands::info::run(&parsed, &tracer),
        "render" => commands::render::run(&parsed, &tracer),
        "replay-faults" => commands::replay::run(&parsed, &tracer),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(TractoError::config(format!("unknown command `{other}`"))),
    };
    let code = match result {
        Ok(()) => {
            span.end_with(&[("ok", true.into())]);
            0
        }
        Err(e) => {
            if tracer.enabled() {
                tracer.emit(
                    "cli.error",
                    &[
                        ("command", Value::Text(command.to_string())),
                        ("kind", Value::Text(e.kind().to_string())),
                        ("error", Value::Text(e.to_string())),
                    ],
                );
            }
            span.end_with(&[("ok", false.into())]);
            eprintln!("error: {e}");
            let mut source = e.source();
            while let Some(cause) = source {
                eprintln!("  caused by: {cause}");
                source = cause.source();
            }
            1
        }
    };
    tracer.flush();
    code
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_args_prints_usage() {
        assert_eq!(run(&[]), 2);
    }

    #[test]
    fn help_succeeds() {
        assert_eq!(run(&["help".to_string()]), 0);
    }

    #[test]
    fn unknown_command_fails() {
        assert_eq!(run(&["frobnicate".to_string()]), 1);
    }

    #[test]
    fn missing_required_flag_fails() {
        assert_eq!(run(&["info".to_string()]), 1);
    }

    #[test]
    fn conflicting_trace_flags_rejected() {
        let args: Vec<String> = ["help", "--trace", "t.jsonl", "--trace-stderr"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(run(&args), 2);
    }
}
