//! The `tracto` command-line interface: generate phantoms, estimate
//! posteriors, and run probabilistic tracking from the shell.
//!
//! ```text
//! tracto phantom  --dataset 1 --scale 0.3 --out data/
//! tracto estimate --data data/ --samples 25 --out data/samples/
//! tracto track    --data data/ --samples-dir data/samples/ --strategy B --out data/tract/
//! tracto info     --data data/
//! ```
//!
//! Datasets persist as the workspace's native binary volumes (`dwi.trv4`,
//! `wm_mask.trv3`, six `*.trv4` sample volumes) plus a plain-text protocol
//! file (`acq.txt`: one `bval gx gy gz` row per measurement), so every
//! stage can be rerun, swapped, or inspected independently.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;
pub mod store;

use args::ArgMap;

/// Top-level usage text.
pub const USAGE: &str = "\
tracto — probabilistic brain fiber tractography (IPDPS-W 2012 reproduction)

USAGE: tracto <COMMAND> [FLAGS]

COMMANDS:
  phantom    generate a synthetic DWI dataset
             --out DIR [--dataset 1|2|single|crossing] [--scale F]
             [--snr F|none] [--seed N] [--light]
  estimate   sample voxelwise fiber-orientation posteriors (MCMC)
             --data DIR --out DIR [--samples N] [--burnin N] [--interval N]
             [--seed N] [--point] [--gpu]
  track      probabilistic streamlining over estimated samples
             --data DIR (--samples-dir DIR | --cache-dir DIR) --out DIR
             [--step F] [--threshold F] [--max-steps N]
             [--strategy B|C|single|every|uniform:K] [--seed N] [--cpu]
             [--min-export-steps N]
             [--est-samples N] [--est-burnin N] [--est-interval N] [--est-seed N]
  serve      replay a job script through the batched job service
             --script FILE [--devices N] [--workers N] [--max-batch N]
             [--batch-window-ms N] [--strategy B|C|single|every|uniform:K]
             [--cache-mb N] [--cache-dir DIR]
  info       describe a stored dataset
             --data DIR
  render     print an ASCII maximum-intensity projection of a volume
             --volume FILE.trv3 [--axis x|y|z]
  help       print this message
";

/// Run the CLI with the given arguments (excluding `argv[0]`). Returns the
/// process exit code.
pub fn run(args: &[String]) -> i32 {
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return 2;
    };
    let parsed = match ArgMap::parse(rest) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return 2;
        }
    };
    let result = match command.as_str() {
        "phantom" => commands::phantom::run(&parsed),
        "estimate" => commands::estimate::run(&parsed),
        "track" => commands::track::run(&parsed),
        "serve" => commands::serve::run(&parsed),
        "info" => commands::info::run(&parsed),
        "render" => commands::render::run(&parsed),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: {e}");
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_args_prints_usage() {
        assert_eq!(run(&[]), 2);
    }

    #[test]
    fn help_succeeds() {
        assert_eq!(run(&["help".to_string()]), 0);
    }

    #[test]
    fn unknown_command_fails() {
        assert_eq!(run(&["frobnicate".to_string()]), 1);
    }

    #[test]
    fn missing_required_flag_fails() {
        assert_eq!(run(&["info".to_string()]), 1);
    }
}
