//! On-disk layout for datasets and sample volumes.

use std::fs::{self, File};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;
use tracto_diffusion::Acquisition;
use tracto_mcmc::SampleVolumes;
use tracto_trace::{TractoError, TractoResult};
use tracto_volume::io::{read_volume3, read_volume4, write_volume3, write_volume4};
use tracto_volume::{Mask, Vec3, Volume3, Volume4};

fn create(path: &Path) -> TractoResult<BufWriter<File>> {
    File::create(path)
        .map(BufWriter::new)
        .map_err(|e| TractoError::io(format!("create {}", path.display()), e))
}

fn open(path: &Path) -> TractoResult<BufReader<File>> {
    File::open(path)
        .map(BufReader::new)
        .map_err(|e| TractoError::io(format!("open {}", path.display()), e))
}

/// Write the acquisition protocol as text: `bval gx gy gz` per line.
pub fn write_acquisition(path: &Path, acq: &Acquisition) -> TractoResult<()> {
    let mut f = create(path)?;
    for i in 0..acq.len() {
        let g = acq.grad(i);
        writeln!(f, "{} {} {} {}", acq.bval(i), g.x, g.y, g.z)
            .map_err(|e| TractoError::io(format!("write {}", path.display()), e))?;
    }
    Ok(())
}

/// Read the protocol text file.
pub fn read_acquisition(path: &Path) -> TractoResult<Acquisition> {
    let f = open(path)?;
    let mut bvals = Vec::new();
    let mut grads = Vec::new();
    for (lineno, line) in f.lines().enumerate() {
        let line = line.map_err(|e| TractoError::io(format!("read {}", path.display()), e))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let parts: Vec<f64> = trimmed
            .split_whitespace()
            .map(|t| {
                t.parse().map_err(|_| {
                    TractoError::format(format!("acq.txt line {}: bad number `{t}`", lineno + 1))
                })
            })
            .collect::<TractoResult<_>>()?;
        if parts.len() != 4 {
            return Err(TractoError::format(format!(
                "acq.txt line {}: expected 4 columns",
                lineno + 1
            )));
        }
        bvals.push(parts[0]);
        grads.push(Vec3::new(parts[1], parts[2], parts[3]));
    }
    if bvals.is_empty() {
        return Err(TractoError::format("acq.txt: no measurements"));
    }
    Ok(Acquisition::new(bvals, grads))
}

/// Save a dataset directory: `dwi.trv4`, `wm_mask.trv3`, `acq.txt`.
pub fn save_dataset(
    dir: &Path,
    dwi: &Volume4<f32>,
    mask: &Mask,
    acq: &Acquisition,
) -> TractoResult<()> {
    fs::create_dir_all(dir).map_err(|e| TractoError::io(format!("create {}", dir.display()), e))?;
    let path = dir.join("dwi.trv4");
    let mut f = create(&path)?;
    write_volume4(&mut f, dwi)
        .map_err(|e| TractoError::format_with(format!("write {}", path.display()), e))?;
    let mask_vol = mask.as_volume().map(|&b| if b { 1.0f32 } else { 0.0 });
    let path = dir.join("wm_mask.trv3");
    let mut f = create(&path)?;
    write_volume3(&mut f, &mask_vol)
        .map_err(|e| TractoError::format_with(format!("write {}", path.display()), e))?;
    write_acquisition(&dir.join("acq.txt"), acq)
}

/// Load a dataset directory.
pub fn load_dataset(dir: &Path) -> TractoResult<(Volume4<f32>, Mask, Acquisition)> {
    let path = dir.join("dwi.trv4");
    let mut f = open(&path)?;
    let dwi = read_volume4(&mut f)
        .map_err(|e| TractoError::format_with(format!("read {}", path.display()), e))?;
    let path = dir.join("wm_mask.trv3");
    let mut f = open(&path)?;
    let mask_vol: Volume3<f32> = read_volume3(&mut f)
        .map_err(|e| TractoError::format_with(format!("read {}", path.display()), e))?;
    let mask = Mask::threshold(&mask_vol, 0.5);
    let acq = read_acquisition(&dir.join("acq.txt"))?;
    if dwi.nt() != acq.len() {
        return Err(TractoError::format(format!(
            "dataset inconsistent: dwi has {} measurements, acq.txt {}",
            dwi.nt(),
            acq.len()
        )));
    }
    if dwi.dims() != mask.dims() {
        return Err(TractoError::format(
            "dataset inconsistent: mask dims differ from dwi",
        ));
    }
    Ok((dwi, mask, acq))
}

const SAMPLE_FILES: [&str; 6] = ["f1", "f2", "th1", "ph1", "th2", "ph2"];

/// Save the six sample volumes into a directory.
pub fn save_samples(dir: &Path, samples: &SampleVolumes) -> TractoResult<()> {
    fs::create_dir_all(dir).map_err(|e| TractoError::io(format!("create {}", dir.display()), e))?;
    let vols = [
        &samples.f1,
        &samples.f2,
        &samples.th1,
        &samples.ph1,
        &samples.th2,
        &samples.ph2,
    ];
    for (name, vol) in SAMPLE_FILES.iter().zip(vols) {
        let path = dir.join(format!("{name}.trv4"));
        let mut f = create(&path)?;
        write_volume4(&mut f, vol)
            .map_err(|e| TractoError::format_with(format!("write {}", path.display()), e))?;
    }
    Ok(())
}

/// Load six sample volumes from a directory.
pub fn load_samples(dir: &Path) -> TractoResult<SampleVolumes> {
    let load = |name: &str| -> TractoResult<Volume4<f32>> {
        let path = dir.join(format!("{name}.trv4"));
        let mut f = open(&path)?;
        read_volume4(&mut f)
            .map_err(|e| TractoError::format_with(format!("read {}", path.display()), e))
    };
    let f1 = load("f1")?;
    let f2 = load("f2")?;
    let th1 = load("th1")?;
    let ph1 = load("ph1")?;
    let th2 = load("th2")?;
    let ph2 = load("ph2")?;
    for v in [&f2, &th1, &ph1, &th2, &ph2] {
        if v.dims() != f1.dims() || v.nt() != f1.nt() {
            return Err(TractoError::format(
                "sample volumes have inconsistent shapes",
            ));
        }
    }
    Ok(SampleVolumes {
        f1,
        f2,
        th1,
        ph1,
        th2,
        ph2,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracto_phantom::datasets;
    use tracto_trace::ErrorKind;
    use tracto_volume::Dim3;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("tracto_cli_store_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn dataset_roundtrip() {
        let dir = tmpdir("ds");
        let ds = datasets::single_bundle(Dim3::new(6, 5, 4), Some(25.0), 3);
        save_dataset(&dir, &ds.dwi, &ds.wm_mask, &ds.acq).unwrap();
        let (dwi, mask, acq) = load_dataset(&dir).unwrap();
        assert_eq!(dwi, ds.dwi);
        assert_eq!(mask.count(), ds.wm_mask.count());
        assert_eq!(acq.len(), ds.acq.len());
        for i in 0..acq.len() {
            assert!((acq.bval(i) - ds.acq.bval(i)).abs() < 1e-12);
            assert!((acq.grad(i) - ds.acq.grad(i)).norm() < 1e-12);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn samples_roundtrip() {
        let dir = tmpdir("sv");
        let mut sv = SampleVolumes::zeros(Dim3::new(3, 3, 3), 4);
        sv.f1.set(tracto_volume::Ijk::new(1, 1, 1), 2, 0.5);
        sv.ph2.set(tracto_volume::Ijk::new(2, 0, 1), 3, -1.25);
        save_samples(&dir, &sv).unwrap();
        let back = load_samples(&dir).unwrap();
        assert_eq!(back.f1, sv.f1);
        assert_eq!(back.ph2, sv.ph2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_files_are_io_errors() {
        let dir = tmpdir("missing");
        let err = load_dataset(&dir).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Io);
        assert!(err.to_string().contains("dwi.trv4"));
        let err = load_samples(&dir).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Io);
        assert!(err.to_string().contains("f1.trv4"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_volume_is_format_error_with_source() {
        use std::error::Error as _;
        let dir = tmpdir("trunc");
        let ds = datasets::single_bundle(Dim3::new(5, 4, 4), None, 2);
        save_dataset(&dir, &ds.dwi, &ds.wm_mask, &ds.acq).unwrap();
        // Chop the volume mid-payload: typed Format error, chained source.
        let path = dir.join("dwi.trv4");
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let err = load_dataset(&dir).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Format);
        assert!(err.to_string().contains("dwi.trv4"));
        assert!(err.source().is_some(), "volume error chained as source");
        // Garbage header is also a Format error, not a panic.
        fs::write(&path, b"not a volume at all").unwrap();
        let err = load_dataset(&dir).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Format);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn acq_text_rejects_bad_rows() {
        let dir = tmpdir("acq");
        let path = dir.join("acq.txt");
        fs::write(&path, "0 0 0 0\n1000 1 0\n").unwrap();
        let err = read_acquisition(&path).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Format);
        assert!(err.to_string().contains("4 columns"));
        fs::write(&path, "# comment only\n").unwrap();
        let err = read_acquisition(&path).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Format);
        assert!(err.to_string().contains("no measurements"));
        let _ = fs::remove_dir_all(&dir);
    }
}
