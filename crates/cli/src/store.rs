//! On-disk layout for datasets and sample volumes.

use std::fs::{self, File};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;
use tracto_diffusion::Acquisition;
use tracto_mcmc::SampleVolumes;
use tracto_volume::io::{read_volume3, read_volume4, write_volume3, write_volume4};
use tracto_volume::{Mask, Vec3, Volume3, Volume4};

/// Write the acquisition protocol as text: `bval gx gy gz` per line.
pub fn write_acquisition(path: &Path, acq: &Acquisition) -> Result<(), String> {
    let mut f = BufWriter::new(File::create(path).map_err(|e| e.to_string())?);
    for i in 0..acq.len() {
        let g = acq.grad(i);
        writeln!(f, "{} {} {} {}", acq.bval(i), g.x, g.y, g.z).map_err(|e| e.to_string())?;
    }
    Ok(())
}

/// Read the protocol text file.
pub fn read_acquisition(path: &Path) -> Result<Acquisition, String> {
    let f = BufReader::new(File::open(path).map_err(|e| format!("{}: {e}", path.display()))?);
    let mut bvals = Vec::new();
    let mut grads = Vec::new();
    for (lineno, line) in f.lines().enumerate() {
        let line = line.map_err(|e| e.to_string())?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let parts: Vec<f64> = trimmed
            .split_whitespace()
            .map(|t| {
                t.parse()
                    .map_err(|_| format!("acq.txt line {}: bad number `{t}`", lineno + 1))
            })
            .collect::<Result<_, _>>()?;
        if parts.len() != 4 {
            return Err(format!("acq.txt line {}: expected 4 columns", lineno + 1));
        }
        bvals.push(parts[0]);
        grads.push(Vec3::new(parts[1], parts[2], parts[3]));
    }
    if bvals.is_empty() {
        return Err("acq.txt: no measurements".into());
    }
    Ok(Acquisition::new(bvals, grads))
}

/// Save a dataset directory: `dwi.trv4`, `wm_mask.trv3`, `acq.txt`.
pub fn save_dataset(
    dir: &Path,
    dwi: &Volume4<f32>,
    mask: &Mask,
    acq: &Acquisition,
) -> Result<(), String> {
    fs::create_dir_all(dir).map_err(|e| e.to_string())?;
    let mut f = BufWriter::new(File::create(dir.join("dwi.trv4")).map_err(|e| e.to_string())?);
    write_volume4(&mut f, dwi).map_err(|e| e.to_string())?;
    let mask_vol = mask.as_volume().map(|&b| if b { 1.0f32 } else { 0.0 });
    let mut f = BufWriter::new(File::create(dir.join("wm_mask.trv3")).map_err(|e| e.to_string())?);
    write_volume3(&mut f, &mask_vol).map_err(|e| e.to_string())?;
    write_acquisition(&dir.join("acq.txt"), acq)
}

/// Load a dataset directory.
pub fn load_dataset(dir: &Path) -> Result<(Volume4<f32>, Mask, Acquisition), String> {
    let mut f =
        BufReader::new(File::open(dir.join("dwi.trv4")).map_err(|e| format!("dwi.trv4: {e}"))?);
    let dwi = read_volume4(&mut f).map_err(|e| e.to_string())?;
    let mut f = BufReader::new(
        File::open(dir.join("wm_mask.trv3")).map_err(|e| format!("wm_mask.trv3: {e}"))?,
    );
    let mask_vol: Volume3<f32> = read_volume3(&mut f).map_err(|e| e.to_string())?;
    let mask = Mask::threshold(&mask_vol, 0.5);
    let acq = read_acquisition(&dir.join("acq.txt"))?;
    if dwi.nt() != acq.len() {
        return Err(format!(
            "dataset inconsistent: dwi has {} measurements, acq.txt {}",
            dwi.nt(),
            acq.len()
        ));
    }
    if dwi.dims() != mask.dims() {
        return Err("dataset inconsistent: mask dims differ from dwi".into());
    }
    Ok((dwi, mask, acq))
}

const SAMPLE_FILES: [&str; 6] = ["f1", "f2", "th1", "ph1", "th2", "ph2"];

/// Save the six sample volumes into a directory.
pub fn save_samples(dir: &Path, samples: &SampleVolumes) -> Result<(), String> {
    fs::create_dir_all(dir).map_err(|e| e.to_string())?;
    let vols = [
        &samples.f1,
        &samples.f2,
        &samples.th1,
        &samples.ph1,
        &samples.th2,
        &samples.ph2,
    ];
    for (name, vol) in SAMPLE_FILES.iter().zip(vols) {
        let mut f = BufWriter::new(
            File::create(dir.join(format!("{name}.trv4"))).map_err(|e| e.to_string())?,
        );
        write_volume4(&mut f, vol).map_err(|e| e.to_string())?;
    }
    Ok(())
}

/// Load six sample volumes from a directory.
pub fn load_samples(dir: &Path) -> Result<SampleVolumes, String> {
    let load = |name: &str| -> Result<Volume4<f32>, String> {
        let path = dir.join(format!("{name}.trv4"));
        let mut f =
            BufReader::new(File::open(&path).map_err(|e| format!("{}: {e}", path.display()))?);
        read_volume4(&mut f).map_err(|e| e.to_string())
    };
    let f1 = load("f1")?;
    let f2 = load("f2")?;
    let th1 = load("th1")?;
    let ph1 = load("ph1")?;
    let th2 = load("th2")?;
    let ph2 = load("ph2")?;
    for v in [&f2, &th1, &ph1, &th2, &ph2] {
        if v.dims() != f1.dims() || v.nt() != f1.nt() {
            return Err("sample volumes have inconsistent shapes".into());
        }
    }
    Ok(SampleVolumes {
        f1,
        f2,
        th1,
        ph1,
        th2,
        ph2,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracto_phantom::datasets;
    use tracto_volume::Dim3;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("tracto_cli_store_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn dataset_roundtrip() {
        let dir = tmpdir("ds");
        let ds = datasets::single_bundle(Dim3::new(6, 5, 4), Some(25.0), 3);
        save_dataset(&dir, &ds.dwi, &ds.wm_mask, &ds.acq).unwrap();
        let (dwi, mask, acq) = load_dataset(&dir).unwrap();
        assert_eq!(dwi, ds.dwi);
        assert_eq!(mask.count(), ds.wm_mask.count());
        assert_eq!(acq.len(), ds.acq.len());
        for i in 0..acq.len() {
            assert!((acq.bval(i) - ds.acq.bval(i)).abs() < 1e-12);
            assert!((acq.grad(i) - ds.acq.grad(i)).norm() < 1e-12);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn samples_roundtrip() {
        let dir = tmpdir("sv");
        let mut sv = SampleVolumes::zeros(Dim3::new(3, 3, 3), 4);
        sv.f1.set(tracto_volume::Ijk::new(1, 1, 1), 2, 0.5);
        sv.ph2.set(tracto_volume::Ijk::new(2, 0, 1), 3, -1.25);
        save_samples(&dir, &sv).unwrap();
        let back = load_samples(&dir).unwrap();
        assert_eq!(back.f1, sv.f1);
        assert_eq!(back.ph2, sv.ph2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_files_reported() {
        let dir = tmpdir("missing");
        assert!(load_dataset(&dir).unwrap_err().contains("dwi.trv4"));
        assert!(load_samples(&dir).unwrap_err().contains("f1.trv4"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn acq_text_rejects_bad_rows() {
        let dir = tmpdir("acq");
        let path = dir.join("acq.txt");
        fs::write(&path, "0 0 0 0\n1000 1 0\n").unwrap();
        assert!(read_acquisition(&path).unwrap_err().contains("4 columns"));
        fs::write(&path, "# comment only\n").unwrap();
        assert!(read_acquisition(&path)
            .unwrap_err()
            .contains("no measurements"));
        let _ = fs::remove_dir_all(&dir);
    }
}
