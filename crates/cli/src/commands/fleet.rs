//! `tracto fleet` — run the thin fleet coordinator: one endpoint that
//! places every job on a member host by consistent hash of its placement
//! key, probes member heartbeats, and hands a dead member's hash range
//! (and replicated journal) to its standby.
//!
//! ```text
//! tracto fleet --listen unix:/tmp/fleet.sock \
//!     --members a=unix:/tmp/a.sock,b=unix:/tmp/b.sock
//! ```
//!
//! Member names default to `m0, m1, …` when not given. The member order is
//! the standby chain: when a host dies, the next *alive* member in listed
//! order adopts its replicated journal. The names must match each member's
//! `serve --member NAME` so takeover finds the right replica.

use crate::args::ArgMap;
use std::time::Duration;
use tracto_proto::Endpoint;
use tracto_serve::{Fleet, FleetConfig};
use tracto_trace::{Tracer, TractoError, TractoResult, Value};

/// Parse `--members [NAME=]EP,...` into the standby-chain-ordered member
/// list, inventing `m{i}` names where none are given.
fn parse_members(raw: &str) -> TractoResult<Vec<(String, Endpoint)>> {
    let mut members = Vec::new();
    for (i, item) in raw.split(',').enumerate() {
        let item = item.trim();
        if item.is_empty() {
            return Err(TractoError::config(format!(
                "--members: empty entry at position {i}"
            )));
        }
        // `tcp:host:port` contains colons but never `=`; a name is
        // everything before the first `=` when one is present.
        let (name, endpoint) = match item.split_once('=') {
            Some((name, ep)) => (name.to_string(), ep),
            None => (format!("m{i}"), item),
        };
        if name.is_empty()
            || !name
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || b"._-".contains(&b))
        {
            return Err(TractoError::config(format!(
                "--members: bad member name `{name}` (letters, digits, `.`, `_`, `-`)"
            )));
        }
        if members.iter().any(|(n, _)| *n == name) {
            return Err(TractoError::config(format!(
                "--members: duplicate member name `{name}`"
            )));
        }
        members.push((name, Endpoint::parse(endpoint)?));
    }
    Ok(members)
}

/// Run the command.
pub fn run(args: &ArgMap, tracer: &Tracer) -> TractoResult<()> {
    args.reject_unknown(&["listen", "members", "heartbeat-ms", "max-misses"])?;
    let listen = Endpoint::parse(args.required("listen")?)?;
    let members = parse_members(args.required("members")?)?;
    let mut config = FleetConfig::new(listen, members);
    config.heartbeat = Duration::from_millis(args.get_parse("heartbeat-ms", 500u64)?.max(10));
    config.max_misses = args.get_parse("max-misses", 3u32)?.max(1);
    config.tracer = tracer.clone();

    let fleet = Fleet::bind(config)?;
    tracer.emit(
        "cli.fleet_up",
        &[("endpoint", Value::Text(fleet.endpoint().to_string()))],
    );
    let status = fleet.status();
    println!("fleet coordinator on {}", fleet.endpoint());
    for member in &status.members {
        println!("  member {}: {}", member.name, member.endpoint);
    }
    println!("(stops when a client sends `shutdown`)");
    fleet.wait_shutdown();
    println!("{}", fleet.status());
    fleet.stop();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argmap(v: &[&str]) -> ArgMap {
        ArgMap::parse(&v.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn members_parse_with_and_without_names() {
        let members = parse_members("a=unix:/tmp/a.sock,/tmp/b.sock,tcp:127.0.0.1:7777").unwrap();
        assert_eq!(members[0].0, "a");
        assert_eq!(members[1].0, "m1");
        assert_eq!(members[2].0, "m2");
        assert!(matches!(members[2].1, Endpoint::Tcp(_)));
    }

    #[test]
    fn bad_member_lists_are_config_errors() {
        for raw in [
            "",
            "a=unix:/tmp/a.sock,",
            "a=unix:/tmp/a.sock,a=unix:/tmp/b.sock",
            "bad name=unix:/tmp/a.sock",
            "=unix:/tmp/a.sock",
        ] {
            let err = parse_members(raw).expect_err(raw);
            assert_eq!(err.kind(), tracto_trace::ErrorKind::Config, "{raw}");
        }
    }

    #[test]
    fn missing_flags_are_reported() {
        let err = run(&argmap(&[]), &Tracer::disabled()).unwrap_err();
        assert_eq!(err.kind(), tracto_trace::ErrorKind::Config);
        assert!(err.to_string().contains("listen"), "{err}");
    }
}
