//! `tracto serve` — replay a job script through the batched job service.
//!
//! The script is line-based (`#` starts a comment). Three directives:
//!
//! ```text
//! dataset <name> <kind> [scale=F] [seed=N] [snr=F|none]   # kind: 1|2|single|crossing
//! estimate <dataset> [samples=N] [burnin=N] [interval=N] [seed=N]
//! track <dataset> [samples=N] [burnin=N] [interval=N] [seed=N]
//!       [step=F] [threshold=F] [max-steps=N] [deadline-ms=N]
//! ```
//!
//! All jobs are submitted up front, so tracking jobs that land in the same
//! batching window share GPU launches; `estimate` warms the sample cache
//! for later `track` lines with the same estimation configuration.

use crate::args::ArgMap;
use crate::commands::track::parse_strategy;
use std::collections::HashMap;
use std::path::PathBuf;
use std::str::FromStr;
use std::sync::Arc;
use std::time::Duration;
use tracto::phantom::{datasets, datasets::DatasetSpec, Dataset};
use tracto::pipeline::PipelineConfig;
use tracto_diffusion::PriorConfig;
use tracto_mcmc::mh::AdaptScheme;
use tracto_mcmc::ChainConfig;
use tracto_serve::{
    EstimateJob, EstimateResult, ServiceConfig, Ticket, TrackJob, TrackResult, TractoService,
};
use tracto_trace::{Tracer, TractoError, TractoResult};
use tracto_volume::Dim3;

const FLAGS: [&str; 12] = [
    "script",
    "devices",
    "workers",
    "max-batch",
    "batch-window-ms",
    "strategy",
    "cache-mb",
    "cache-dir",
    "disk-cache-mb",
    "fault-plan",
    "fault-seed",
    "retry-budget",
];

/// `key=value` options trailing a script directive.
struct Kv(HashMap<String, String>);

impl Kv {
    fn parse(tokens: &[&str], lineno: usize) -> TractoResult<Kv> {
        let mut map = HashMap::new();
        for tok in tokens {
            let Some((k, v)) = tok.split_once('=') else {
                return Err(TractoError::config(format!(
                    "line {lineno}: expected key=value, got `{tok}`"
                )));
            };
            map.insert(k.to_string(), v.to_string());
        }
        Ok(Kv(map))
    }

    fn get<T: FromStr>(&self, key: &str, default: T) -> TractoResult<T> {
        match self.0.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| TractoError::config(format!("{key}: bad value `{v}`"))),
        }
    }
}

/// One parsed `estimate` or `track` line.
enum ScriptJob {
    Estimate {
        dataset: String,
        chain: ChainConfig,
        seed: u64,
    },
    Track {
        dataset: String,
        config: PipelineConfig,
        deadline: Option<Duration>,
    },
}

/// A parsed script: named datasets plus jobs in submission order.
struct Script {
    datasets: Vec<(String, Arc<Dataset>)>,
    jobs: Vec<ScriptJob>,
}

fn chain_from(kv: &Kv) -> TractoResult<(ChainConfig, u64)> {
    let chain = ChainConfig {
        num_burnin: kv.get("burnin", 300)?,
        num_samples: kv.get("samples", 25)?,
        sample_interval: kv.get("interval", 2)?,
        adapt: AdaptScheme::paper_default(),
    };
    if chain.num_samples == 0 || chain.sample_interval == 0 {
        return Err(TractoError::config("samples and interval must be positive"));
    }
    Ok((chain, kv.get("seed", 42)?))
}

fn build_dataset(kind: &str, kv: &Kv) -> TractoResult<Dataset> {
    let scale: f64 = kv.get("scale", 0.25)?;
    if !(0.0..=1.0).contains(&scale) || scale == 0.0 {
        return Err(TractoError::config("scale must be in (0, 1]"));
    }
    let seed: u64 = kv.get("seed", 7)?;
    let snr: Option<f64> = match kv.0.get("snr").map(String::as_str) {
        None => Some(25.0),
        Some("none") => None,
        Some(v) => Some(
            v.parse()
                .map_err(|_| TractoError::config(format!("snr: bad value `{v}`")))?,
        ),
    };
    match kind {
        "1" | "2" => {
            let mut spec = if kind == "1" {
                DatasetSpec::paper_dataset1()
            } else {
                DatasetSpec::paper_dataset2()
            }
            .scaled(scale);
            spec.seed = seed;
            spec.snr = snr;
            Ok(spec.build())
        }
        "single" => {
            let n = ((32.0 * scale * 4.0).round() as usize).max(8);
            Ok(datasets::single_bundle(
                Dim3::new(n, n / 2 + 2, n / 2 + 2),
                snr,
                seed,
            ))
        }
        "crossing" => {
            let n = ((40.0 * scale * 4.0).round() as usize).max(10);
            Ok(datasets::crossing(
                Dim3::new(n, n, (n / 3).max(5)),
                90.0,
                snr,
                seed,
            ))
        }
        other => Err(TractoError::config(format!(
            "unknown dataset kind `{other}` (1|2|single|crossing)"
        ))),
    }
}

fn parse_script(text: &str) -> TractoResult<Script> {
    let mut script = Script {
        datasets: Vec::new(),
        jobs: Vec::new(),
    };
    let lookup = |script: &Script, name: &str, lineno: usize| {
        script
            .datasets
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, ds)| Arc::clone(ds))
            .ok_or_else(|| TractoError::config(format!("line {lineno}: unknown dataset `{name}`")))
    };
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        match tokens[0] {
            "dataset" => {
                let [_, name, kind, rest @ ..] = tokens.as_slice() else {
                    return Err(TractoError::config(format!(
                        "line {lineno}: dataset <name> <kind> [k=v…]"
                    )));
                };
                if script.datasets.iter().any(|(n, _)| n == name) {
                    return Err(TractoError::config(format!(
                        "line {lineno}: dataset `{name}` redefined"
                    )));
                }
                let kv = Kv::parse(rest, lineno)?;
                let ds = build_dataset(kind, &kv)
                    .map_err(|e| TractoError::config(format!("line {lineno}: {e}")))?;
                script.datasets.push((name.to_string(), Arc::new(ds)));
            }
            "estimate" => {
                let [_, name, rest @ ..] = tokens.as_slice() else {
                    return Err(TractoError::config(format!(
                        "line {lineno}: estimate <dataset> [k=v…]"
                    )));
                };
                lookup(&script, name, lineno)?;
                let kv = Kv::parse(rest, lineno)?;
                let (chain, seed) = chain_from(&kv)
                    .map_err(|e| TractoError::config(format!("line {lineno}: {e}")))?;
                script.jobs.push(ScriptJob::Estimate {
                    dataset: name.to_string(),
                    chain,
                    seed,
                });
            }
            "track" => {
                let [_, name, rest @ ..] = tokens.as_slice() else {
                    return Err(TractoError::config(format!(
                        "line {lineno}: track <dataset> [k=v…]"
                    )));
                };
                lookup(&script, name, lineno)?;
                let kv = Kv::parse(rest, lineno)?;
                let (chain, seed) = chain_from(&kv)
                    .map_err(|e| TractoError::config(format!("line {lineno}: {e}")))?;
                let mut config = PipelineConfig {
                    chain,
                    seed,
                    ..PipelineConfig::fast()
                };
                config.tracking.step_length = kv.get("step", config.tracking.step_length)?;
                config.tracking.angular_threshold =
                    kv.get("threshold", config.tracking.angular_threshold)?;
                config.tracking.max_steps = kv.get("max-steps", config.tracking.max_steps)?;
                if config.tracking.step_length <= 0.0 || config.tracking.max_steps == 0 {
                    return Err(TractoError::config(format!(
                        "line {lineno}: invalid tracking parameters"
                    )));
                }
                let deadline = match kv.0.get("deadline-ms") {
                    None => None,
                    Some(v) => Some(Duration::from_millis(v.parse().map_err(|_| {
                        TractoError::config(format!("line {lineno}: bad deadline-ms `{v}`"))
                    })?)),
                };
                script.jobs.push(ScriptJob::Track {
                    dataset: name.to_string(),
                    config,
                    deadline,
                });
            }
            other => {
                return Err(TractoError::config(format!(
                    "line {lineno}: unknown directive `{other}` (dataset|estimate|track)"
                )))
            }
        }
    }
    if script.jobs.is_empty() {
        return Err(TractoError::config("script contains no jobs"));
    }
    Ok(script)
}

enum Pending {
    Estimate(Ticket<EstimateResult>),
    Track(Ticket<TrackResult>),
}

/// Run the command.
pub fn run(args: &ArgMap, tracer: &Tracer) -> TractoResult<()> {
    args.reject_unknown(&FLAGS)?;
    let path = PathBuf::from(args.required("script")?);
    let text = std::fs::read_to_string(&path)
        .map_err(|e| TractoError::io(format!("read {}", path.display()), e))?;
    let script = parse_script(&text)?;

    let devices: usize = args.get_parse("devices", 1)?;
    let fault_plan = crate::commands::track::parse_fault_plan(args, devices)?;
    let config = ServiceConfig {
        devices,
        fault_plan,
        retry_budget: args.get_parse("retry-budget", 2)?,
        estimate_workers: args.get_parse("workers", 2)?,
        max_batch_jobs: args.get_parse("max-batch", 16)?,
        batch_window: Duration::from_millis(args.get_parse("batch-window-ms", 20)?),
        strategy: parse_strategy(args.get("strategy").unwrap_or("B"))?,
        cache_bytes: args.get_parse::<u64>("cache-mb", 256)? << 20,
        disk_cache: args.get("cache-dir").map(PathBuf::from),
        disk_cache_bytes: args
            .get("disk-cache-mb")
            .map(|v| {
                v.parse::<u64>()
                    .map(|mb| mb << 20)
                    .map_err(|_| TractoError::config(format!("--disk-cache-mb: bad value `{v}`")))
            })
            .transpose()?,
        tracer: tracer.clone(),
        ..ServiceConfig::default()
    };
    if config.devices == 0 || config.estimate_workers == 0 || config.max_batch_jobs == 0 {
        return Err(TractoError::config(
            "--devices, --workers, and --max-batch must be positive",
        ));
    }

    for (name, ds) in &script.datasets {
        println!(
            "dataset {name}: dims {:?}, {} measurements, {} fiber voxels",
            ds.dwi.dims(),
            ds.acq.len(),
            ds.truth.fiber_voxel_count()
        );
    }
    println!(
        "serving {} job(s) on {} device(s), window {:?}, strategy {}",
        script.jobs.len(),
        config.devices,
        config.batch_window,
        config.strategy.label()
    );
    if let Some(plan) = &config.fault_plan {
        println!(
            "fault injection: {} scheduled event(s), retry budget {}",
            plan.events.len(),
            config.retry_budget
        );
    }

    let service = TractoService::start(config);
    let mut pending: Vec<(String, Pending)> = Vec::new();
    for job in &script.jobs {
        match job {
            ScriptJob::Estimate {
                dataset,
                chain,
                seed,
            } => {
                let (_, ds) = script
                    .datasets
                    .iter()
                    .find(|(n, _)| n == dataset)
                    .expect("validated");
                let ticket = service.submit_estimate(EstimateJob {
                    dataset: Arc::clone(ds),
                    prior: PriorConfig::default(),
                    chain: *chain,
                    seed: *seed,
                });
                pending.push((format!("estimate {dataset}"), Pending::Estimate(ticket)));
            }
            ScriptJob::Track {
                dataset,
                config,
                deadline,
            } => {
                let (_, ds) = script
                    .datasets
                    .iter()
                    .find(|(n, _)| n == dataset)
                    .expect("validated");
                let ticket = service.submit_track(TrackJob {
                    dataset: Arc::clone(ds),
                    config: config.clone(),
                    seeds: None,
                    deadline: *deadline,
                });
                pending.push((format!("track {dataset}"), Pending::Track(ticket)));
            }
        }
    }

    let mut failed = 0usize;
    for (label, ticket) in pending {
        match ticket {
            Pending::Estimate(t) => match t.wait() {
                Ok(r) => println!(
                    "[{}] {label}: {} voxels, cache_hit={}",
                    t.id, r.voxels, r.cache_hit
                ),
                Err(e) => {
                    failed += 1;
                    println!("[{}] {label}: error: {e}", t.id);
                }
            },
            Pending::Track(t) => match t.wait() {
                Ok(r) => println!(
                    "[{}] {label}: {} total steps, cache_hit={}, batch of {} job(s) / {} lanes",
                    t.id, r.tracking.total_steps, r.cache_hit, r.batch_jobs, r.batch_lanes
                ),
                Err(e) => {
                    failed += 1;
                    println!("[{}] {label}: error: {e}", t.id);
                }
            },
        }
    }

    service.drain();
    println!("\n--- service metrics ---\n{}", service.shutdown());
    if failed > 0 {
        return Err(TractoError::format(format!("{failed} job(s) failed")));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("tracto_cli_srv_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn argmap(v: &[&str]) -> ArgMap {
        ArgMap::parse(&v.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    const TINY: &str = "\
# two datasets, one estimate warm-up, three tracking jobs
dataset b single scale=0.05 seed=3 snr=none
dataset x crossing scale=0.05 seed=5 snr=none
estimate b samples=2 burnin=30 interval=1 seed=9
track b samples=2 burnin=30 interval=1 seed=9 max-steps=60
track x samples=2 burnin=30 interval=1 seed=9 max-steps=60
track b samples=2 burnin=30 interval=1 seed=9 max-steps=60
";

    #[test]
    fn parses_directives_and_rejects_garbage() {
        let s = parse_script(TINY).unwrap();
        assert_eq!(s.datasets.len(), 2);
        assert_eq!(s.jobs.len(), 4);
        assert!(matches!(s.jobs[0], ScriptJob::Estimate { .. }));
        for (text, needle) in [
            ("track nowhere\n", "unknown dataset"),
            ("dataset d single\n", "no jobs"),
            ("frob x\n", "unknown directive"),
            ("dataset d single scale\n", "key=value"),
            ("dataset d nope\ntrack d\n", "unknown dataset kind"),
        ] {
            let err = parse_script(text).err().expect("parse must fail");
            assert_eq!(err.kind(), tracto_trace::ErrorKind::Config, "{text}");
            assert!(err.to_string().contains(needle), "{text}: {err}");
        }
    }

    #[test]
    fn replays_script_end_to_end() {
        let dir = tmp("e2e");
        let script = dir.join("jobs.txt");
        std::fs::write(&script, TINY).unwrap();
        let args = argmap(&[
            "--script",
            script.to_str().unwrap(),
            "--workers",
            "2",
            "--batch-window-ms",
            "30",
        ]);
        run(&args, &Tracer::disabled()).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replays_script_with_seeded_faults() {
        let dir = tmp("chaos");
        let script = dir.join("jobs.txt");
        std::fs::write(&script, TINY).unwrap();
        // Seeded plans are internally recoverable (no alloc faults, at
        // least one survivor), so every job must still complete.
        let args = argmap(&[
            "--script",
            script.to_str().unwrap(),
            "--devices",
            "2",
            "--fault-seed",
            "5",
            "--retry-budget",
            "3",
        ]);
        run(&args, &Tracer::disabled()).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_script_reported() {
        let args = argmap(&["--script", "/nonexistent/jobs.txt"]);
        let err = run(&args, &Tracer::disabled()).unwrap_err();
        assert_eq!(err.kind(), tracto_trace::ErrorKind::Io);
        assert!(err.to_string().contains("jobs.txt"));
    }

    #[test]
    fn malformed_script_line_is_typed_config_error() {
        let dir = tmp("badscript");
        let script = dir.join("jobs.txt");
        std::fs::write(
            &script,
            "dataset b single scale=0.05\ntrack b max-steps=oops\n",
        )
        .unwrap();
        let args = argmap(&["--script", script.to_str().unwrap()]);
        let err = run(&args, &Tracer::disabled()).unwrap_err();
        assert_eq!(err.kind(), tracto_trace::ErrorKind::Config);
        assert!(err.to_string().contains("max-steps"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
