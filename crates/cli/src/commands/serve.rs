//! `tracto serve` — run the batched job service, replaying a job script,
//! listening on a socket for remote clients, or both.
//!
//! The script is line-based (`#` starts a comment). Three directives:
//!
//! ```text
//! dataset <name> <kind> [scale=F] [seed=N] [snr=F|none]   # kind: 1|2|single|crossing
//! estimate <dataset> [samples=N] [burnin=N] [interval=N] [seed=N]
//! track <dataset> [samples=N] [burnin=N] [interval=N] [seed=N]
//!       [step=F] [threshold=F] [max-steps=N] [deadline-ms=N]
//! ```
//!
//! All script jobs are submitted up front, so tracking jobs that land in
//! the same batching window share GPU launches; `estimate` warms the
//! sample cache for later `track` lines with the same estimation
//! configuration.
//!
//! With `--listen ENDPOINT` the same service also accepts remote jobs over
//! the `tracto-proto` wire protocol (`unix:PATH` by default, `tcp:` to
//! opt in) until a client sends a `shutdown` request. Service tuning flags
//! are exactly [`ServiceConfigBuilder::CLI_FLAGS`] — the flag set is
//! derived from the builder, so it cannot drift from the library.

use crate::args::ArgMap;
use std::collections::HashMap;
use std::path::PathBuf;
use std::str::FromStr;
use std::sync::Arc;
use std::time::Duration;
use tracto::phantom::Dataset;
use tracto::pipeline::PipelineConfig;
use tracto_mcmc::mh::AdaptScheme;
use tracto_mcmc::ChainConfig;
use tracto_proto::Endpoint;
use tracto_serve::{
    materialize_dataset, JobOutput, JobSpec, ServiceConfig, ServiceConfigBuilder, SocketServer,
    Ticket, TractoService,
};
use tracto_trace::{Tracer, TractoError, TractoResult};

/// `key=value` options trailing a script directive.
struct Kv(HashMap<String, String>);

impl Kv {
    fn parse(tokens: &[&str], lineno: usize) -> TractoResult<Kv> {
        let mut map = HashMap::new();
        for tok in tokens {
            let Some((k, v)) = tok.split_once('=') else {
                return Err(TractoError::config(format!(
                    "line {lineno}: expected key=value, got `{tok}`"
                )));
            };
            map.insert(k.to_string(), v.to_string());
        }
        Ok(Kv(map))
    }

    fn get<T: FromStr>(&self, key: &str, default: T) -> TractoResult<T> {
        match self.0.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| TractoError::config(format!("{key}: bad value `{v}`"))),
        }
    }
}

/// One parsed `estimate` or `track` line.
enum ScriptJob {
    Estimate {
        dataset: String,
        chain: ChainConfig,
        seed: u64,
    },
    Track {
        dataset: String,
        config: PipelineConfig,
        deadline: Option<Duration>,
    },
}

/// A parsed script: named datasets plus jobs in submission order.
struct Script {
    datasets: Vec<(String, Arc<Dataset>)>,
    jobs: Vec<ScriptJob>,
}

fn chain_from(kv: &Kv) -> TractoResult<(ChainConfig, u64)> {
    let chain = ChainConfig {
        num_burnin: kv.get("burnin", 300)?,
        num_samples: kv.get("samples", 25)?,
        sample_interval: kv.get("interval", 2)?,
        adapt: AdaptScheme::paper_default(),
    };
    if chain.num_samples == 0 || chain.sample_interval == 0 {
        return Err(TractoError::config("samples and interval must be positive"));
    }
    Ok((chain, kv.get("seed", 42)?))
}

/// A `dataset` directive is exactly a wire-level recipe: the same
/// [`materialize_dataset`] the socket listener uses builds it, so a script
/// replay and a remote submission of the same recipe run identical data.
fn build_dataset(kind: &str, kv: &Kv) -> TractoResult<Dataset> {
    let snr: Option<f64> = match kv.0.get("snr").map(String::as_str) {
        None => Some(25.0),
        Some("none") => None,
        Some(v) => Some(
            v.parse()
                .map_err(|_| TractoError::config(format!("snr: bad value `{v}`")))?,
        ),
    };
    materialize_dataset(&tracto_proto::DatasetSpec {
        kind: kind.to_string(),
        scale: kv.get("scale", 0.25)?,
        seed: kv.get("seed", 7)?,
        snr,
        upload: None,
    })
}

fn parse_script(text: &str) -> TractoResult<Script> {
    let mut script = Script {
        datasets: Vec::new(),
        jobs: Vec::new(),
    };
    let lookup = |script: &Script, name: &str, lineno: usize| {
        script
            .datasets
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, ds)| Arc::clone(ds))
            .ok_or_else(|| TractoError::config(format!("line {lineno}: unknown dataset `{name}`")))
    };
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        match tokens[0] {
            "dataset" => {
                let [_, name, kind, rest @ ..] = tokens.as_slice() else {
                    return Err(TractoError::config(format!(
                        "line {lineno}: dataset <name> <kind> [k=v…]"
                    )));
                };
                if script.datasets.iter().any(|(n, _)| n == name) {
                    return Err(TractoError::config(format!(
                        "line {lineno}: dataset `{name}` redefined"
                    )));
                }
                let kv = Kv::parse(rest, lineno)?;
                let ds = build_dataset(kind, &kv)
                    .map_err(|e| TractoError::config(format!("line {lineno}: {e}")))?;
                script.datasets.push((name.to_string(), Arc::new(ds)));
            }
            "estimate" => {
                let [_, name, rest @ ..] = tokens.as_slice() else {
                    return Err(TractoError::config(format!(
                        "line {lineno}: estimate <dataset> [k=v…]"
                    )));
                };
                lookup(&script, name, lineno)?;
                let kv = Kv::parse(rest, lineno)?;
                let (chain, seed) = chain_from(&kv)
                    .map_err(|e| TractoError::config(format!("line {lineno}: {e}")))?;
                script.jobs.push(ScriptJob::Estimate {
                    dataset: name.to_string(),
                    chain,
                    seed,
                });
            }
            "track" => {
                let [_, name, rest @ ..] = tokens.as_slice() else {
                    return Err(TractoError::config(format!(
                        "line {lineno}: track <dataset> [k=v…]"
                    )));
                };
                lookup(&script, name, lineno)?;
                let kv = Kv::parse(rest, lineno)?;
                let (chain, seed) = chain_from(&kv)
                    .map_err(|e| TractoError::config(format!("line {lineno}: {e}")))?;
                let mut config = PipelineConfig {
                    chain,
                    seed,
                    ..PipelineConfig::fast()
                };
                config.tracking.step_length = kv.get("step", config.tracking.step_length)?;
                config.tracking.angular_threshold =
                    kv.get("threshold", config.tracking.angular_threshold)?;
                config.tracking.max_steps = kv.get("max-steps", config.tracking.max_steps)?;
                if config.tracking.step_length <= 0.0 || config.tracking.max_steps == 0 {
                    return Err(TractoError::config(format!(
                        "line {lineno}: invalid tracking parameters"
                    )));
                }
                let deadline = match kv.0.get("deadline-ms") {
                    None => None,
                    Some(v) => Some(Duration::from_millis(v.parse().map_err(|_| {
                        TractoError::config(format!("line {lineno}: bad deadline-ms `{v}`"))
                    })?)),
                };
                script.jobs.push(ScriptJob::Track {
                    dataset: name.to_string(),
                    config,
                    deadline,
                });
            }
            other => {
                return Err(TractoError::config(format!(
                    "line {lineno}: unknown directive `{other}` (dataset|estimate|track)"
                )))
            }
        }
    }
    if script.jobs.is_empty() {
        return Err(TractoError::config("script contains no jobs"));
    }
    Ok(script)
}

enum Pending {
    Estimate(Ticket<JobOutput>),
    Track(Ticket<JobOutput>),
}

/// Replay a parsed script through the service: submit everything up front,
/// then wait in submission order. Returns how many jobs failed.
fn replay_script(service: &TractoService, script: &Script) -> usize {
    let mut pending: Vec<(String, Pending)> = Vec::new();
    for job in &script.jobs {
        let dataset = |name: &str| {
            script
                .datasets
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, ds)| Arc::clone(ds))
                .expect("validated at parse time")
        };
        match job {
            ScriptJob::Estimate {
                dataset: name,
                chain,
                seed,
            } => {
                let ticket = service.submit(JobSpec::estimate(dataset(name), *chain, *seed));
                pending.push((format!("estimate {name}"), Pending::Estimate(ticket)));
            }
            ScriptJob::Track {
                dataset: name,
                config,
                deadline,
            } => {
                let mut spec = JobSpec::track(dataset(name), config.clone());
                if let Some(d) = deadline {
                    spec = spec.with_deadline(*d);
                }
                pending.push((
                    format!("track {name}"),
                    Pending::Track(service.submit(spec)),
                ));
            }
        }
    }

    let mut failed = 0usize;
    for (label, ticket) in pending {
        match ticket {
            Pending::Estimate(t) => match t.wait_estimate() {
                Ok(r) => println!(
                    "[{}] {label}: {} voxels, cache_hit={}",
                    t.id, r.voxels, r.cache_hit
                ),
                Err(e) => {
                    failed += 1;
                    println!("[{}] {label}: error: {e}", t.id);
                }
            },
            Pending::Track(t) => match t.wait_track() {
                Ok(r) => println!(
                    "[{}] {label}: {} total steps, cache_hit={}, batch of {} job(s) / {} lanes",
                    t.id, r.tracking.total_steps, r.cache_hit, r.batch_jobs, r.batch_lanes
                ),
                Err(e) => {
                    failed += 1;
                    println!("[{}] {label}: error: {e}", t.id);
                }
            },
        }
    }
    failed
}

/// Run the command.
pub fn run(args: &ArgMap, tracer: &Tracer) -> TractoResult<()> {
    let mut flags: Vec<&str> = vec!["script", "listen"];
    flags.extend(ServiceConfigBuilder::CLI_FLAGS.iter().map(|(n, _, _)| *n));
    args.reject_unknown(&flags)?;

    let script = args
        .get("script")
        .map(|p| {
            let path = PathBuf::from(p);
            let text = std::fs::read_to_string(&path)
                .map_err(|e| TractoError::io(format!("read {}", path.display()), e))?;
            parse_script(&text)
        })
        .transpose()?;
    let listen = args.get("listen").map(Endpoint::parse).transpose()?;
    if script.is_none() && listen.is_none() {
        return Err(TractoError::config(
            "serve needs --script, --listen, or both",
        ));
    }

    let mut builder = ServiceConfig::builder();
    for (name, _, _) in ServiceConfigBuilder::CLI_FLAGS {
        if let Some(value) = args.get(name) {
            builder = builder.set_cli(name, value)?;
        }
    }
    let config = builder.tracer(tracer.clone()).build()?;

    if let Some(script) = &script {
        for (name, ds) in &script.datasets {
            println!(
                "dataset {name}: dims {:?}, {} measurements, {} fiber voxels",
                ds.dwi.dims(),
                ds.acq.len(),
                ds.truth.fiber_voxel_count()
            );
        }
        println!(
            "serving {} job(s) on {} device(s), window {:?}, strategy {}",
            script.jobs.len(),
            config.devices,
            config.batch_window,
            config.strategy.label()
        );
    }
    if let Some(plan) = &config.fault_plan {
        println!(
            "fault injection: {} scheduled event(s), retry budget {}",
            plan.events.len(),
            config.retry_budget
        );
    }

    let service = Arc::new(TractoService::start(config));
    // Re-enqueue jobs the journal says never finished (from a previous
    // process that crashed with the same --state-dir). Their tickets are
    // handed to the socket server below so remote clients can `await` the
    // original job ids across the restart.
    let recovered = service.recover();
    if !recovered.is_empty() {
        println!(
            "recovered {} unfinished job(s) from the journal",
            recovered.len()
        );
    }
    let failed = script
        .as_ref()
        .map(|s| replay_script(&service, s))
        .unwrap_or(0);

    if let Some(endpoint) = listen {
        let server = SocketServer::bind(Arc::clone(&service), &endpoint)?;
        server.adopt_jobs(recovered);
        println!(
            "listening on {} (stops when a client sends `shutdown`)",
            server.endpoint()
        );
        server.wait_shutdown();
        let remote = server.remote_jobs();
        server.stop();
        println!("served {remote} remote job(s)");
    }

    service.drain();
    match Arc::try_unwrap(service) {
        Ok(service) => println!("\n--- service metrics ---\n{}", service.shutdown()),
        Err(service) => println!("\n--- service metrics ---\n{}", service.metrics()),
    }
    if failed > 0 {
        return Err(TractoError::format(format!("{failed} job(s) failed")));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("tracto_cli_srv_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn argmap(v: &[&str]) -> ArgMap {
        ArgMap::parse(&v.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    const TINY: &str = "\
# two datasets, one estimate warm-up, three tracking jobs
dataset b single scale=0.05 seed=3 snr=none
dataset x crossing scale=0.05 seed=5 snr=none
estimate b samples=2 burnin=30 interval=1 seed=9
track b samples=2 burnin=30 interval=1 seed=9 max-steps=60
track x samples=2 burnin=30 interval=1 seed=9 max-steps=60
track b samples=2 burnin=30 interval=1 seed=9 max-steps=60
";

    #[test]
    fn parses_directives_and_rejects_garbage() {
        let s = parse_script(TINY).unwrap();
        assert_eq!(s.datasets.len(), 2);
        assert_eq!(s.jobs.len(), 4);
        assert!(matches!(s.jobs[0], ScriptJob::Estimate { .. }));
        for (text, needle) in [
            ("track nowhere\n", "unknown dataset"),
            ("dataset d single\n", "no jobs"),
            ("frob x\n", "unknown directive"),
            ("dataset d single scale\n", "key=value"),
            ("dataset d nope\ntrack d\n", "unknown dataset kind"),
        ] {
            let err = parse_script(text).err().expect("parse must fail");
            assert_eq!(err.kind(), tracto_trace::ErrorKind::Config, "{text}");
            assert!(err.to_string().contains(needle), "{text}: {err}");
        }
    }

    #[test]
    fn replays_script_end_to_end() {
        let dir = tmp("e2e");
        let script = dir.join("jobs.txt");
        std::fs::write(&script, TINY).unwrap();
        let args = argmap(&[
            "--script",
            script.to_str().unwrap(),
            "--workers",
            "2",
            "--batch-window-ms",
            "30",
        ]);
        run(&args, &Tracer::disabled()).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replays_script_with_seeded_faults() {
        let dir = tmp("chaos");
        let script = dir.join("jobs.txt");
        std::fs::write(&script, TINY).unwrap();
        // Seeded plans are internally recoverable (no alloc faults, at
        // least one survivor), so every job must still complete.
        let args = argmap(&[
            "--script",
            script.to_str().unwrap(),
            "--devices",
            "2",
            "--fault-seed",
            "5",
            "--retry-budget",
            "3",
        ]);
        run(&args, &Tracer::disabled()).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_script_reported() {
        let args = argmap(&["--script", "/nonexistent/jobs.txt"]);
        let err = run(&args, &Tracer::disabled()).unwrap_err();
        assert_eq!(err.kind(), tracto_trace::ErrorKind::Io);
        assert!(err.to_string().contains("jobs.txt"));
    }

    #[test]
    fn neither_script_nor_listen_is_config_error() {
        let err = run(&argmap(&[]), &Tracer::disabled()).unwrap_err();
        assert_eq!(err.kind(), tracto_trace::ErrorKind::Config);
        assert!(err.to_string().contains("--script"), "{err}");
    }

    #[test]
    fn invalid_service_knob_is_config_error() {
        // Validation comes from ServiceConfigBuilder::build, not ad-hoc
        // checks in the command.
        let dir = tmp("knob");
        let script = dir.join("jobs.txt");
        std::fs::write(&script, TINY).unwrap();
        let args = argmap(&["--script", script.to_str().unwrap(), "--devices", "0"]);
        let err = run(&args, &Tracer::disabled()).unwrap_err();
        assert_eq!(err.kind(), tracto_trace::ErrorKind::Config);
        assert!(err.to_string().contains("devices"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_script_line_is_typed_config_error() {
        let dir = tmp("badscript");
        let script = dir.join("jobs.txt");
        std::fs::write(
            &script,
            "dataset b single scale=0.05\ntrack b max-steps=oops\n",
        )
        .unwrap();
        let args = argmap(&["--script", script.to_str().unwrap()]);
        let err = run(&args, &Tracer::disabled()).unwrap_err();
        assert_eq!(err.kind(), tracto_trace::ErrorKind::Config);
        assert!(err.to_string().contains("max-steps"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
