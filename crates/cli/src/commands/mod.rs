//! CLI subcommands.

pub mod estimate;
pub mod fleet;
pub mod info;
pub mod loadgen;
pub mod phantom;
pub mod remote;
pub mod render;
pub mod replay;
pub mod serve;
pub mod track;
