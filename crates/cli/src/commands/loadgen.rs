//! `tracto loadgen` — trace-driven and synthetic load generation against a
//! live `tracto serve --listen` process.
//!
//! Two sources of work, one pacing engine:
//!
//! * **Synthesis** (default): a deterministic, seeded workload built from
//!   knobs — request count, offered rate, arrival process (Poisson, fixed
//!   bursts, or uniform spacing), a weighted tenant mix, a weighted
//!   priority mix, and a repeat rate that re-submits earlier dataset/seed
//!   pairs so the server's sample cache sees realistic reuse.
//! * **Replay** (`--replay FILE`): a JSON-lines schedule of
//!   `loadgen.request` events, as written by `--out` (or extracted from
//!   any tracto trace that carries such events), fired at the recorded
//!   offsets.
//!
//! Pacing is **open-loop**: every request fires at its scheduled instant
//! whether or not earlier ones have finished, so an overloaded server
//! sees true offered load instead of a closed feedback loop that
//! self-throttles. Shed responses (typed `capacity` errors, including
//! the server's `retry_after_ms` hint) are counted, not retried — the
//! point is to observe the server's overload ladder, not to hide it.
//!
//! Completions are timestamped from a second, subscribed connection
//! (protocol v2 pushed events), so per-job latency is measured at settle
//! time rather than at whichever moment a sequential await got around to
//! the job.

use crate::args::ArgMap;
use std::collections::BTreeMap;
use std::io::Write as _;
use std::time::{Duration, Instant};
use tracto_proto::{ChainSpec, DatasetSpec, Endpoint, JobSpec, JobState, Priority, RemoteService};
use tracto_trace::json::{escape_into, parse, Json};
use tracto_trace::{Tracer, TractoError, TractoResult, Value};

const LOADGEN_FLAGS: [&str; 19] = [
    "connect",
    "connect-retries",
    "connect-backoff-ms",
    "replay",
    "out",
    "requests",
    "rate",
    "arrivals",
    "burst",
    "tenants",
    "priorities",
    "repeat",
    "distinct",
    "deadline-ms",
    "scale",
    "samples",
    "burnin",
    "seed",
    "timeout-ms",
];

/// One scheduled submission: fire `spec` at `at` past the run's start.
#[derive(Debug, Clone)]
struct Request {
    at: Duration,
    tenant: String,
    dataset_seed: u64,
    priority: Priority,
    deadline_ms: Option<u64>,
}

/// Deterministic 64-bit LCG (same constants as the service tests) so a
/// `--seed` fully determines the workload.
struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Lcg {
        Lcg(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1))
    }

    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    /// Uniform in `[0, 1)`.
    fn f64(&mut self) -> f64 {
        self.next() as f64 / (1u64 << 53) as f64
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// Parse a weighted mix like `a:3,b:1` (weight defaults to 1) into
/// `(name, weight)` pairs.
fn parse_mix(spec: &str, flag: &str) -> TractoResult<Vec<(String, u64)>> {
    let mut mix = Vec::new();
    for part in spec.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (name, weight) = match part.split_once(':') {
            None => (part, 1),
            Some((name, w)) => (
                name,
                w.parse::<u64>().map_err(|_| {
                    TractoError::config(format!("--{flag}: bad weight in `{part}`"))
                })?,
            ),
        };
        if weight == 0 {
            return Err(TractoError::config(format!(
                "--{flag}: weight 0 in `{part}` would never fire"
            )));
        }
        mix.push((name.to_string(), weight));
    }
    if mix.is_empty() {
        return Err(TractoError::config(format!("--{flag}: empty mix `{spec}`")));
    }
    Ok(mix)
}

/// Draw one name from a weighted mix.
fn draw<'a>(mix: &'a [(String, u64)], rng: &mut Lcg) -> &'a str {
    let total: u64 = mix.iter().map(|(_, w)| w).sum();
    let mut roll = rng.next() % total;
    for (name, w) in mix {
        if roll < *w {
            return name;
        }
        roll -= w;
    }
    &mix[mix.len() - 1].0
}

/// Synthesize a schedule from the knob flags.
fn synthesize(args: &ArgMap) -> TractoResult<Vec<Request>> {
    let requests: usize = args.get_parse("requests", 32)?;
    let rate: f64 = args.get_parse("rate", 8.0)?;
    if !(rate.is_finite() && rate > 0.0) {
        return Err(TractoError::config("--rate must be a positive jobs/sec"));
    }
    let arrivals = args.get("arrivals").unwrap_or("poisson");
    let burst: usize = args.get_parse("burst", 4)?;
    let repeat: f64 = args.get_parse("repeat", 0.6)?;
    if !(0.0..=1.0).contains(&repeat) {
        return Err(TractoError::config("--repeat must be in [0, 1]"));
    }
    let distinct: usize = args.get_parse("distinct", 4)?;
    let deadline_ms: u64 = args.get_parse("deadline-ms", 0)?;
    let tenants = parse_mix(args.get("tenants").unwrap_or("default"), "tenants")?;
    let priorities = parse_mix(args.get("priorities").unwrap_or("normal"), "priorities")?;
    let mut rng = Lcg::new(args.get_parse("seed", 1u64)?);
    let mut schedule = Vec::with_capacity(requests);
    let mut t = 0.0f64;
    // The pool of dataset seeds already in play; a repeat re-uses one so
    // the server's sample cache can hit, a fresh draw grows the pool up
    // to `--distinct` distinct datasets.
    let mut pool: Vec<u64> = Vec::new();
    for i in 0..requests {
        match arrivals {
            "poisson" => t += -rng.f64().max(1e-12).ln() / rate,
            "uniform" => t += 1.0 / rate,
            "burst" => {
                // Whole bursts arrive together, spaced so the long-run
                // offered rate still matches `--rate`.
                if i > 0 && i % burst.max(1) == 0 {
                    t += burst.max(1) as f64 / rate;
                }
            }
            other => {
                return Err(TractoError::config(format!(
                    "--arrivals: unknown process `{other}` (poisson|burst|uniform)"
                )))
            }
        }
        let dataset_seed = if !pool.is_empty() && (pool.len() >= distinct || rng.f64() < repeat) {
            pool[rng.below(pool.len())]
        } else {
            let fresh = 100 + pool.len() as u64;
            pool.push(fresh);
            fresh
        };
        let priority = Priority::parse(draw(&priorities, &mut rng))?;
        schedule.push(Request {
            at: Duration::from_secs_f64(t),
            tenant: draw(&tenants, &mut rng).to_string(),
            dataset_seed,
            priority,
            deadline_ms: (deadline_ms > 0).then_some(deadline_ms),
        });
    }
    Ok(schedule)
}

/// Read a schedule back from a JSON-lines file: every `loadgen.request`
/// event becomes a request; other events are ignored, so a full trace
/// from a previous run replays as-is.
fn read_schedule(path: &str) -> TractoResult<Vec<Request>> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| TractoError::io(format!("read schedule {path}"), e))?;
    let mut schedule = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = parse(line).map_err(|e| {
            TractoError::format(format!("{path}:{}: bad JSON line: {e}", lineno + 1))
        })?;
        if v.get("name").and_then(Json::as_str) != Some("loadgen.request") {
            continue;
        }
        let fields = v
            .get("fields")
            .ok_or_else(|| TractoError::format(format!("{path}:{}: no fields", lineno + 1)))?;
        let num = |name: &str| -> TractoResult<Option<f64>> {
            match fields.get(name) {
                None | Some(Json::Null) => Ok(None),
                Some(j) => j.as_f64().map(Some).ok_or_else(|| {
                    TractoError::format(format!(
                        "{path}:{}: field `{name}` is not a number",
                        lineno + 1
                    ))
                }),
            }
        };
        let at_ms = num("at_ms")?.unwrap_or(0.0);
        schedule.push(Request {
            at: Duration::from_millis(at_ms.max(0.0) as u64),
            tenant: fields
                .get("tenant")
                .and_then(Json::as_str)
                .unwrap_or(tracto_proto::DEFAULT_TENANT)
                .to_string(),
            dataset_seed: num("dataset_seed")?.unwrap_or(1.0) as u64,
            priority: Priority::parse(
                fields
                    .get("priority")
                    .and_then(Json::as_str)
                    .unwrap_or("normal"),
            )?,
            deadline_ms: num("deadline_ms")?.map(|v| v as u64),
        });
    }
    if schedule.is_empty() {
        return Err(TractoError::format(format!(
            "{path}: no loadgen.request events to replay"
        )));
    }
    schedule.sort_by_key(|r| r.at);
    Ok(schedule)
}

/// Write a schedule as replayable `loadgen.request` JSON lines.
fn write_schedule(path: &str, schedule: &[Request]) -> TractoResult<()> {
    let mut out = String::new();
    for r in schedule {
        out.push_str("{\"name\":\"loadgen.request\",\"fields\":{\"at_ms\":");
        out.push_str(&(r.at.as_millis() as u64).to_string());
        out.push_str(",\"tenant\":");
        escape_into(&mut out, &r.tenant);
        out.push_str(",\"dataset_seed\":");
        out.push_str(&r.dataset_seed.to_string());
        out.push_str(",\"priority\":\"");
        out.push_str(match r.priority {
            Priority::Low => "low",
            Priority::Normal => "normal",
            Priority::High => "high",
        });
        out.push('"');
        if let Some(ms) = r.deadline_ms {
            out.push_str(",\"deadline_ms\":");
            out.push_str(&ms.to_string());
        }
        out.push_str("}}\n");
    }
    let mut file = std::fs::File::create(path)
        .map_err(|e| TractoError::io(format!("create schedule {path}"), e))?;
    file.write_all(out.as_bytes())
        .map_err(|e| TractoError::io(format!("write schedule {path}"), e))
}

/// The wire spec for one scheduled request. The MCMC seed equals the
/// dataset seed so a repeated request shares the server's sample-cache
/// key with its original — and, being fully deterministic, must produce
/// a bit-identical result digest.
fn spec_for(r: &Request, args: &ArgMap) -> TractoResult<JobSpec> {
    let mut spec = JobSpec::track(DatasetSpec {
        kind: "single".to_string(),
        scale: args.get_parse("scale", 0.05)?,
        seed: r.dataset_seed,
        snr: None,
        upload: None,
    });
    spec.chain = ChainSpec {
        burnin: args.get_parse("burnin", 40)?,
        samples: args.get_parse("samples", 3)?,
        interval: 2,
    };
    spec.seed = r.dataset_seed;
    spec.deadline_ms = r.deadline_ms;
    spec.priority = r.priority;
    spec.tenant = r.tenant.clone();
    Ok(spec)
}

#[derive(Default)]
struct TenantTally {
    submitted: u64,
    shed: u64,
}

/// Percentile over an unsorted sample set (nearest-rank).
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

/// `tracto loadgen [--connect EP] [--replay FILE | synthesis knobs]
/// [--out FILE]`: build or load a schedule, optionally save it, and fire
/// it open-loop at a server, reporting sheds, latency percentiles, and
/// deadline outcomes.
pub fn run(args: &ArgMap, tracer: &Tracer) -> TractoResult<()> {
    args.reject_unknown(&LOADGEN_FLAGS)?;
    let schedule = match args.get("replay") {
        Some(path) => read_schedule(path)?,
        None => synthesize(args)?,
    };
    if let Some(path) = args.get("out") {
        write_schedule(path, &schedule)?;
        println!("wrote {} request(s) to {path}", schedule.len());
    }
    let Some(endpoint) = args.get("connect") else {
        if args.get("out").is_none() {
            return Err(TractoError::config(
                "nothing to do: give --connect to fire the workload and/or \
                 --out to save it for replay",
            ));
        }
        return Ok(());
    };
    let endpoint = Endpoint::parse(endpoint)?;
    let retries: u32 = args.get_parse("connect-retries", 3)?;
    let backoff = Duration::from_millis(args.get_parse("connect-backoff-ms", 20)?);
    let timeout_ms: u64 = args.get_parse("timeout-ms", 60_000)?;
    let mut submitter =
        RemoteService::connect_with_retry(&endpoint, "tracto-loadgen", retries, backoff)?;
    // Second connection, subscribed to all jobs *before* the first submit,
    // so every terminal push is timestamped at settle time.
    let mut watcher = if submitter.server_version >= 2 {
        let mut w =
            RemoteService::connect_with_retry(&endpoint, "tracto-loadgen-watch", retries, backoff)?;
        w.subscribe(None)?;
        Some(w)
    } else {
        None
    };
    tracer.emit(
        "loadgen.start",
        &[
            ("requests", Value::U64(schedule.len() as u64)),
            ("endpoint", Value::Text(endpoint.to_string())),
        ],
    );

    // Open-loop pacing: sleep to each request's offset, fire, move on.
    struct InFlight {
        submitted_at: Instant,
        deadline_ms: Option<u64>,
        priority: Priority,
    }
    let mut in_flight: BTreeMap<u64, InFlight> = BTreeMap::new();
    let mut tenants: BTreeMap<String, TenantTally> = BTreeMap::new();
    let mut shed = 0u64;
    let mut shed_hinted = 0u64;
    let mut latencies: Vec<u64> = Vec::new();
    let mut hits = BTreeMap::from([(Priority::Low, (0u64, 0u64))]);
    hits.insert(Priority::Normal, (0, 0));
    hits.insert(Priority::High, (0, 0));
    let mut completed = 0u64;
    let mut failed = 0u64;
    let mut expired = 0u64;
    let mut shed_in_batch = 0u64;
    let mut settle =
        |state: &JobState, info: &InFlight, latencies: &mut Vec<u64>, settled_at: Instant| {
            let latency_ms = settled_at.duration_since(info.submitted_at).as_millis() as u64;
            match state {
                JobState::Done(_) => {
                    completed += 1;
                    latencies.push(latency_ms);
                    if let Some(budget) = info.deadline_ms {
                        let slot = hits.entry(info.priority).or_insert((0, 0));
                        slot.1 += 1;
                        if latency_ms <= budget {
                            slot.0 += 1;
                        }
                    }
                }
                JobState::Failed { kind, .. } => {
                    if kind == "capacity" {
                        shed_in_batch += 1;
                    } else if kind == "deadline" {
                        // An admitted job that blew its deadline is an SLO
                        // miss, not a shed: it stays in the denominator.
                        expired += 1;
                        if info.deadline_ms.is_some() {
                            hits.entry(info.priority).or_insert((0, 0)).1 += 1;
                        }
                    } else {
                        failed += 1;
                    }
                }
                _ => failed += 1,
            }
        };
    let start = Instant::now();
    for r in &schedule {
        let due = start + r.at;
        // Use the pacing gap to drain pushed completions, so latencies are
        // stamped when events arrive rather than after the whole schedule
        // has been offered (which would inflate slow-rate runs).
        match &mut watcher {
            Some(w) => loop {
                let left = due.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    break;
                }
                match w.next_event(Some(left))? {
                    None => break,
                    Some(ev) if ev.is_terminal() => {
                        if let Some(info) = in_flight.remove(&ev.job) {
                            settle(&ev.state, &info, &mut latencies, Instant::now());
                        }
                    }
                    Some(_) => {}
                }
            },
            None => {
                let now = Instant::now();
                if due > now {
                    std::thread::sleep(due - now);
                }
            }
        }
        let spec = spec_for(r, args)?;
        let tally = tenants.entry(r.tenant.clone()).or_default();
        tally.submitted += 1;
        match submitter.submit(spec) {
            Ok(job) => {
                in_flight.insert(
                    job,
                    InFlight {
                        submitted_at: Instant::now(),
                        deadline_ms: r.deadline_ms,
                        priority: r.priority,
                    },
                );
            }
            Err(err) if err.kind() == tracto_trace::ErrorKind::Capacity => {
                shed += 1;
                tally.shed += 1;
                if tracto_proto::capacity_retry_after(&err).is_some() {
                    shed_hinted += 1;
                }
                if tracer.enabled() {
                    tracer.emit(
                        "loadgen.shed",
                        &[
                            ("tenant", Value::Text(r.tenant.clone())),
                            ("error", Value::Text(err.to_string())),
                        ],
                    );
                }
            }
            Err(err) => return Err(err),
        }
    }
    let offered_s = start.elapsed().as_secs_f64().max(1e-9);

    // Harvest remaining completions: timestamp each terminal push as it lands.
    let deadline = Instant::now() + Duration::from_millis(timeout_ms);
    match &mut watcher {
        Some(w) => {
            while !in_flight.is_empty() {
                let left = deadline.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    break;
                }
                match w.next_event(Some(left))? {
                    None => break,
                    Some(ev) if ev.is_terminal() => {
                        if let Some(info) = in_flight.remove(&ev.job) {
                            settle(&ev.state, &info, &mut latencies, Instant::now());
                        }
                    }
                    Some(_) => {}
                }
            }
        }
        None => {
            // v1 fallback: sequential awaits (latency upper bounds only).
            let jobs: Vec<u64> = in_flight.keys().copied().collect();
            for job in jobs {
                let left = deadline
                    .saturating_duration_since(Instant::now())
                    .as_millis() as u64;
                let state = submitter.await_job(job, Some(left.max(1)))?;
                if state == JobState::Pending {
                    break;
                }
                if let Some(info) = in_flight.remove(&job) {
                    settle(&state, &info, &mut latencies, Instant::now());
                }
            }
        }
    }
    let unsettled = in_flight.len() as u64;

    latencies.sort_unstable();
    let total = schedule.len() as u64;
    println!(
        "loadgen: {total} request(s) offered over {offered_s:.2}s ({:.1} jobs/s)",
        total as f64 / offered_s
    );
    println!(
        "  submit: {} accepted, {shed} shed at submit ({shed_hinted} with retry hint), \
         {shed_in_batch} shed in batch",
        total - shed
    );
    println!(
        "  settle: {completed} completed, {expired} deadline-expired, {failed} failed, \
         {unsettled} unsettled at timeout"
    );
    if !latencies.is_empty() {
        println!(
            "  latency: p50 {}ms p90 {}ms p99 {}ms max {}ms",
            percentile(&latencies, 50.0),
            percentile(&latencies, 90.0),
            percentile(&latencies, 99.0),
            latencies[latencies.len() - 1]
        );
    }
    for (prio, (hit, total)) in &hits {
        if *total > 0 {
            println!(
                "  deadline[{}]: {hit}/{total} hit ({:.1}%)",
                match prio {
                    Priority::Low => "low",
                    Priority::Normal => "normal",
                    Priority::High => "high",
                },
                100.0 * *hit as f64 / *total as f64
            );
        }
    }
    for (tenant, tally) in &tenants {
        println!(
            "  tenant {tenant}: {} submitted, {} shed",
            tally.submitted, tally.shed
        );
    }
    tracer.emit(
        "loadgen.done",
        &[
            ("requests", Value::U64(total)),
            ("shed", Value::U64(shed + shed_in_batch)),
            ("completed", Value::U64(completed)),
            ("expired", Value::U64(expired)),
            ("failed", Value::U64(failed)),
            ("unsettled", Value::U64(unsettled)),
        ],
    );
    if unsettled > 0 {
        return Err(TractoError::format(format!(
            "{unsettled} job(s) unsettled after {timeout_ms}ms"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argmap(v: &[&str]) -> ArgMap {
        ArgMap::parse(&v.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    fn tmp_file(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("tracto-loadgen-{tag}-{}.jsonl", std::process::id()))
    }

    #[test]
    fn synthesis_is_deterministic_and_respects_the_mixes() {
        let args = argmap(&[
            "--requests",
            "64",
            "--rate",
            "100",
            "--tenants",
            "a:3,b:1",
            "--priorities",
            "normal:2,high:1",
            "--repeat",
            "0.5",
            "--distinct",
            "3",
            "--deadline-ms",
            "500",
            "--seed",
            "9",
        ]);
        let one = synthesize(&args).unwrap();
        let two = synthesize(&args).unwrap();
        assert_eq!(one.len(), 64);
        for (x, y) in one.iter().zip(&two) {
            assert_eq!(x.at, y.at, "same seed, same schedule");
            assert_eq!(x.tenant, y.tenant);
            assert_eq!(x.dataset_seed, y.dataset_seed);
        }
        let tenants: std::collections::BTreeSet<&str> =
            one.iter().map(|r| r.tenant.as_str()).collect();
        assert!(tenants.contains("a") && tenants.contains("b"));
        let distinct: std::collections::BTreeSet<u64> =
            one.iter().map(|r| r.dataset_seed).collect();
        assert!(distinct.len() <= 3, "pool is capped by --distinct");
        assert!(one.iter().all(|r| r.deadline_ms == Some(500)));
        assert!(one.iter().any(|r| r.priority == Priority::High));
        // Arrival offsets are nondecreasing (open-loop schedule).
        assert!(one.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn burst_arrivals_group_requests() {
        let args = argmap(&[
            "--requests",
            "8",
            "--rate",
            "4",
            "--arrivals",
            "burst",
            "--burst",
            "4",
        ]);
        let schedule = synthesize(&args).unwrap();
        assert_eq!(
            schedule[0].at, schedule[3].at,
            "first burst is simultaneous"
        );
        assert!(schedule[4].at > schedule[3].at, "next burst is spaced");
        assert_eq!(schedule[4].at, schedule[7].at);
    }

    #[test]
    fn schedules_round_trip_through_the_jsonl_format() {
        let path = tmp_file("roundtrip");
        let args = argmap(&[
            "--requests",
            "12",
            "--tenants",
            "lab-a:1,lab-b:1",
            "--deadline-ms",
            "250",
            "--priorities",
            "low:1,high:1",
        ]);
        let schedule = synthesize(&args).unwrap();
        write_schedule(path.to_str().unwrap(), &schedule).unwrap();
        let replayed = read_schedule(path.to_str().unwrap()).unwrap();
        assert_eq!(replayed.len(), schedule.len());
        for (x, y) in schedule.iter().zip(&replayed) {
            assert_eq!(x.at.as_millis(), y.at.as_millis());
            assert_eq!(x.tenant, y.tenant);
            assert_eq!(x.dataset_seed, y.dataset_seed);
            assert_eq!(x.priority, y.priority);
            assert_eq!(x.deadline_ms, y.deadline_ms);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn replay_ignores_unrelated_trace_events() {
        let path = tmp_file("mixed");
        std::fs::write(
            &path,
            concat!(
                "{\"name\":\"serve.batch_done\",\"fields\":{\"jobs\":3}}\n",
                "{\"name\":\"loadgen.request\",\"fields\":{\"at_ms\":5,\"tenant\":\"x\",\
                 \"dataset_seed\":7,\"priority\":\"high\",\"deadline_ms\":100}}\n",
                "{\"name\":\"cli.connected\",\"fields\":{}}\n",
            ),
        )
        .unwrap();
        let schedule = read_schedule(path.to_str().unwrap()).unwrap();
        assert_eq!(schedule.len(), 1);
        assert_eq!(schedule[0].tenant, "x");
        assert_eq!(schedule[0].deadline_ms, Some(100));
        assert_eq!(schedule[0].priority, Priority::High);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bad_knobs_are_config_errors() {
        for flags in [
            vec!["--rate", "0"],
            vec!["--repeat", "1.5"],
            vec!["--arrivals", "fractal"],
            vec!["--tenants", ""],
            vec!["--tenants", "a:0"],
            vec!["--priorities", "urgent"],
        ] {
            let err = synthesize(&argmap(&flags))
                .map(|_| ())
                .expect_err("must fail");
            assert_eq!(err.kind(), tracto_trace::ErrorKind::Config, "{flags:?}");
        }
    }

    #[test]
    fn no_connect_and_no_out_is_an_error() {
        let err = run(&argmap(&[]), &Tracer::disabled()).unwrap_err();
        assert!(err.to_string().contains("--connect"));
    }

    #[test]
    fn out_without_connect_just_writes_the_schedule() {
        let path = tmp_file("outonly");
        let args = argmap(&["--requests", "3", "--out", path.to_str().unwrap()]);
        run(&args, &Tracer::disabled()).unwrap();
        assert!(read_schedule(path.to_str().unwrap()).unwrap().len() == 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn repeats_share_dataset_seeds_for_cache_reuse() {
        let args = argmap(&["--requests", "40", "--repeat", "0.9", "--distinct", "2"]);
        let schedule = synthesize(&args).unwrap();
        let distinct: std::collections::BTreeSet<u64> =
            schedule.iter().map(|r| r.dataset_seed).collect();
        assert!(distinct.len() <= 2);
        assert!(schedule.len() > distinct.len(), "most requests are repeats");
    }
}
