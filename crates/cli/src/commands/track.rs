//! `tracto track` — Step 2: probabilistic streamlining.

use crate::args::ArgMap;
use crate::store;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::PathBuf;
use std::sync::Arc;
use tracto_gpu_sim::{DeviceConfig, FaultPlan, Gpu, MultiGpu};
use tracto_mcmc::CheckpointPolicy;
use tracto_trace::{Tracer, TractoError, TractoResult};
use tracto_tracking::analytic::{analytic_params, mean_posterior};
use tracto_tracking::export;
use tracto_tracking::field::InterpMode;
use tracto_tracking::getter::Modality;
use tracto_tracking::gpu::{GpuTracker, SeedOrdering};
use tracto_tracking::probabilistic::{seeds_from_mask, CpuTracker, RecordMode};
use tracto_tracking::stop::mask_from_percentile;
use tracto_tracking::tensorline::TensorField;
use tracto_tracking::walker::TrackingParams;
use tracto_tracking::SegmentationStrategy;
use tracto_volume::io::write_volume3;
use tracto_volume::Mask;

const FLAGS: [&str; 23] = [
    "data",
    "out",
    "samples-dir",
    "cache-dir",
    "step",
    "threshold",
    "max-steps",
    "strategy",
    "seed",
    "cpu",
    "min-export-steps",
    "est-samples",
    "est-burnin",
    "est-interval",
    "est-seed",
    "devices",
    "fault-plan",
    "fault-seed",
    "checkpoint-every",
    "streams",
    "modality",
    "stop-mask",
    "stop-threshold",
];

/// Resolve `--stop-mask FILE` / `--stop-threshold PCT` into an optional
/// termination mask on the dataset grid. A mask file alone keeps voxels
/// strictly above zero; with a threshold, voxels above the file's
/// `PCT`-th percentile; a threshold alone is taken over the dataset's
/// per-voxel mean DWI signal.
fn parse_stop_mask(args: &ArgMap, dwi: &tracto_volume::Volume4<f32>) -> TractoResult<Option<Mask>> {
    let pct: Option<f64> = args
        .get("stop-threshold")
        .map(|v| {
            v.parse()
                .map_err(|_| TractoError::config(format!("--stop-threshold: bad value `{v}`")))
        })
        .transpose()?;
    if let Some(p) = pct {
        if !p.is_finite() || !(0.0..=100.0).contains(&p) {
            return Err(TractoError::config(
                "--stop-threshold must be a percentile in 0..=100",
            ));
        }
    }
    let vol = match args.get("stop-mask") {
        Some(path) => {
            let mut f = File::open(path).map_err(|e| TractoError::io(format!("open {path}"), e))?;
            Some(
                tracto_volume::io::read_volume3(&mut f)
                    .map_err(|e| TractoError::format_with(format!("read {path}"), e))?,
            )
        }
        None => None,
    };
    let mask = match (vol, pct) {
        (Some(v), Some(p)) => mask_from_percentile(&v, p),
        (Some(v), None) => Some(Mask::threshold(&v, 0.0)),
        (None, Some(p)) => mask_from_percentile(&tracto::pipeline::mean_dwi_volume(dwi), p),
        (None, None) => None,
    };
    if let Some(m) = &mask {
        if m.dims() != dwi.dims() {
            return Err(TractoError::format(
                "--stop-mask volume does not match the dataset grid",
            ));
        }
    }
    Ok(mask)
}

pub(crate) fn parse_strategy(s: &str) -> TractoResult<SegmentationStrategy> {
    // One parser serves the CLI, the serve script, and the wire protocol.
    SegmentationStrategy::parse(s)
}

/// Resolve `--fault-plan FILE` / `--fault-seed S` into a deterministic
/// fault schedule for a pool of `devices` devices. The two flags are
/// mutually exclusive; seeded plans only contain internally-recoverable
/// faults, so results stay bit-identical to a fault-free run.
pub(crate) fn parse_fault_plan(args: &ArgMap, devices: usize) -> TractoResult<Option<FaultPlan>> {
    match (args.get("fault-plan"), args.get("fault-seed")) {
        (Some(_), Some(_)) => Err(TractoError::config(
            "--fault-plan and --fault-seed are mutually exclusive",
        )),
        (Some(path), None) => Ok(Some(FaultPlan::load(path)?)),
        (None, Some(seed)) => {
            let seed: u64 = seed
                .parse()
                .map_err(|_| TractoError::config(format!("--fault-seed: bad value `{seed}`")))?;
            Ok(Some(FaultPlan::seeded(seed, devices as u32)))
        }
        (None, None) => Ok(None),
    }
}

/// Resolve the posterior samples for `track` out of a serve-layer disk
/// cache, running Step 1 only on a miss (the CLI analogue of what
/// `tracto-serve` does in memory). With a device pool, estimation runs
/// checkpointed across it and survives injected faults.
fn samples_from_cache(
    cache_dir: &std::path::Path,
    dwi: &tracto_volume::Volume4<f32>,
    mask: &tracto_volume::Mask,
    acq: &tracto_diffusion::Acquisition,
    args: &ArgMap,
    tracer: &Tracer,
    pool: Option<(&mut MultiGpu, CheckpointPolicy)>,
) -> TractoResult<tracto_mcmc::SampleVolumes> {
    use tracto_mcmc::mh::AdaptScheme;
    let chain = tracto_mcmc::ChainConfig {
        num_burnin: args.get_parse("est-burnin", 300)?,
        num_samples: args.get_parse("est-samples", 25)?,
        sample_interval: args.get_parse("est-interval", 2)?,
        adapt: AdaptScheme::paper_default(),
    };
    if chain.num_samples == 0 || chain.sample_interval == 0 {
        return Err(TractoError::config(
            "--est-samples and --est-interval must be positive",
        ));
    }
    let est_seed: u64 = args.get_parse("est-seed", 42)?;
    let prior = tracto_diffusion::PriorConfig::default();
    let key = tracto_serve::sample_key_parts(dwi, mask, acq, &prior, &chain, est_seed);
    let cache = tracto_serve::DiskSampleCache::open(cache_dir)?.with_tracer(tracer.clone());
    if let Some(samples) = cache.get(key)? {
        println!("cache hit {} — skipping estimation", key.hex());
        return Ok(samples);
    }
    println!(
        "cache miss {} — running MCMC over {} voxels…",
        key.hex(),
        mask.count()
    );
    let samples = match pool {
        Some((multi, checkpoint)) => {
            let report =
                tracto::run_mcmc_multi(multi, acq, dwi, mask, prior, chain, est_seed, checkpoint)?;
            println!(
                "estimated on {} device(s): {} checkpoint(s), {} failover(s), {} fault(s) injected",
                multi.alive_devices(),
                report.checkpoints,
                multi.failovers(),
                multi.faults_injected()
            );
            report.samples
        }
        None => {
            let mut gpu = Gpu::with_tracer(DeviceConfig::radeon_5870(), tracer.clone());
            tracto::run_mcmc_gpu(&mut gpu, acq, dwi, mask, prior, chain, est_seed).samples
        }
    };
    cache.put(key, &samples)?;
    Ok(samples)
}

/// Run the command.
pub fn run(args: &ArgMap, tracer: &Tracer) -> TractoResult<()> {
    args.reject_unknown(&FLAGS)?;
    let data = PathBuf::from(args.required("data")?);
    let out = PathBuf::from(args.required("out")?);
    let step: f64 = args.get_parse("step", 0.1)?;
    let threshold: f64 = args.get_parse("threshold", 0.9)?;
    let max_steps: u32 = args.get_parse("max-steps", 2000)?;
    let seed: u64 = args.get_parse("seed", 42)?;
    let min_export: u32 = args.get_parse("min-export-steps", 100)?;
    let strategy = parse_strategy(args.get("strategy").unwrap_or("B"))?;
    if step <= 0.0 || !(0.0..=1.0).contains(&threshold) || max_steps == 0 {
        return Err(TractoError::config("invalid tracking parameters"));
    }
    let modality = match args.get("modality") {
        None => Modality::Mcmc,
        Some(s) => Modality::parse(s)?,
    };
    let devices: usize = args.get_parse("devices", 1)?;
    if devices == 0 {
        return Err(TractoError::config("--devices must be positive"));
    }
    let streams: usize = args.get_parse("streams", 1)?;
    if streams == 0 {
        return Err(TractoError::config(
            "--streams must be positive (1 = serialized)",
        ));
    }
    let fault_plan = parse_fault_plan(args, devices)?;
    let checkpoint_every: u32 = args.get_parse("checkpoint-every", 0)?;
    let checkpoint = if checkpoint_every == 0 {
        CheckpointPolicy::disabled()
    } else {
        CheckpointPolicy::every(checkpoint_every)
    };
    // A device pool (and its fault schedule) only exists on the GPU path.
    let mut pool = if devices > 1 || fault_plan.is_some() {
        if args.switch("cpu") {
            return Err(TractoError::config(
                "--cpu is incompatible with --devices/--fault-plan/--fault-seed",
            ));
        }
        let mut m = MultiGpu::try_new(DeviceConfig::radeon_5870(), devices)?;
        m.set_tracer(tracer);
        if let Some(plan) = &fault_plan {
            m.set_fault_plan(plan);
        }
        Some(m)
    } else {
        None
    };

    let (dwi, mask, acq) = store::load_dataset(&data)?;
    let samples = if modality == Modality::Tensorline {
        // Tensorlines fit one tensor per voxel from the data directly;
        // posterior samples are neither needed nor accepted.
        if args.get("samples-dir").is_some() || args.get("cache-dir").is_some() {
            return Err(TractoError::config(
                "--modality tensorline fits the dataset directly and takes \
                 no --samples-dir/--cache-dir",
            ));
        }
        TensorField::fit(&acq, &dwi).to_sample_volumes()
    } else {
        match (args.get("samples-dir"), args.get("cache-dir")) {
            (Some(_), Some(_)) => {
                return Err(TractoError::config(
                    "--samples-dir and --cache-dir are mutually exclusive",
                ))
            }
            (Some(dir), None) => store::load_samples(&PathBuf::from(dir))?,
            (None, Some(dir)) => samples_from_cache(
                &PathBuf::from(dir),
                &dwi,
                &mask,
                &acq,
                args,
                tracer,
                pool.as_mut().map(|m| (m, checkpoint)),
            )?,
            (None, None) => {
                return Err(TractoError::config("need --samples-dir or --cache-dir"));
            }
        }
    };
    if samples.dims() != dwi.dims() {
        return Err(TractoError::format(
            "sample volumes do not match the dataset grid",
        ));
    }
    let seeds = seeds_from_mask(&mask);
    let params = TrackingParams {
        step_length: step,
        angular_threshold: threshold,
        max_steps,
        min_fraction: 0.05,
        interp: InterpMode::Nearest,
    };
    // The analytic fast tier is a transform, not a different engine:
    // collapse the posterior to its mean and take closed-form unit steps.
    let (samples, params) = if modality == Modality::Analytic {
        (mean_posterior(&samples), analytic_params(&params))
    } else {
        (samples, params)
    };
    let samples = Arc::new(samples);
    let jitter = modality.effective_jitter(0.5);
    let stop_mask = parse_stop_mask(args, &dwi)?;
    std::fs::create_dir_all(&out)
        .map_err(|e| TractoError::io(format!("create {}", out.display()), e))?;

    println!(
        "tracking {} seeds × {} samples (strategy {}, modality {})…",
        seeds.len(),
        samples.num_samples(),
        strategy.label(),
        modality.as_str()
    );
    let t0 = std::time::Instant::now();

    // CPU path records connectivity and exportable fibers; the GPU paths
    // report the timing breakdown. Default is one simulated GPU unless
    // --cpu, or a fault-tolerant pool with --devices/--fault-plan.
    let (lengths, connectivity, fibers) = if args.switch("cpu") {
        let tracker = CpuTracker {
            samples: &samples,
            params,
            seeds,
            mask: stop_mask.as_ref(),
            jitter,
            run_seed: seed,
            bidirectional: false,
        };
        let o = tracker.run_parallel(RecordMode::Streamlines {
            min_steps: min_export,
        });
        (o.lengths_by_sample, o.connectivity, o.streamlines)
    } else if let Some(multi) = pool.as_mut() {
        let job = tracto_serve::BatchJob {
            samples: Arc::clone(&samples),
            params,
            seeds,
            mask: stop_mask.clone(),
            jitter,
            run_seed: seed,
            record_visits: true,
        };
        let mut report = tracto_serve::run_batch_streamed(multi, &[job], &strategy, streams)?;
        let out = report.per_job.pop().expect("one job in the batch");
        println!(
            "simulated pool: {}/{} devices alive, wall {:.3}s (util {:.1}%, \
             {:.3}s hidden by {} stream(s)), \
             {} failover(s), {} retry(ies), {} fault(s) injected",
            multi.alive_devices(),
            multi.num_devices(),
            report.wall_s,
            report.utilization * 100.0,
            report.overlap_saved_s,
            report.streams,
            multi.failovers(),
            multi.fault_retries(),
            multi.faults_injected()
        );
        (out.lengths_by_sample, out.connectivity, Vec::new())
    } else {
        let mut gpu = Gpu::with_tracer(DeviceConfig::radeon_5870(), tracer.clone());
        let tracker = GpuTracker {
            samples: &samples,
            params,
            seeds,
            mask: stop_mask.as_ref(),
            strategy,
            ordering: SeedOrdering::Natural,
            jitter,
            run_seed: seed,
            record_visits: true,
        };
        let report = tracker.run_streamed(&mut gpu, streams);
        println!(
            "simulated GPU: kernel {:.3}s, reduction {:.3}s, transfer {:.3}s \
             (util {:.1}%, {:.3}s hidden by streams)",
            report.ledger.kernel_s,
            report.ledger.reduction_s,
            report.ledger.transfer_s,
            report.ledger.simd_utilization() * 100.0,
            gpu.overlap_saved_s()
        );
        (report.lengths_by_sample, report.connectivity, Vec::new())
    };

    // lengths.csv: sample,seed,steps.
    let path = out.join("lengths.csv");
    let io_err = |e| TractoError::io(format!("write {}", path.display()), e);
    let mut f = BufWriter::new(File::create(&path).map_err(io_err)?);
    writeln!(f, "sample,seed,steps").map_err(io_err)?;
    let mut total: u64 = 0;
    let mut longest: u32 = 0;
    for (s, row) in lengths.iter().enumerate() {
        for (i, &l) in row.iter().enumerate() {
            writeln!(f, "{s},{i},{l}").map_err(io_err)?;
            total += l as u64;
            longest = longest.max(l);
        }
    }
    drop(f);

    if let Some(conn) = &connectivity {
        let vol = conn.probability_volume();
        let path = out.join("connectivity.trv3");
        let mut f = BufWriter::new(
            File::create(&path)
                .map_err(|e| TractoError::io(format!("write {}", path.display()), e))?,
        );
        write_volume3(&mut f, &vol)
            .map_err(|e| TractoError::format_with(format!("write {}", path.display()), e))?;
    }
    if !fibers.is_empty() {
        let path = out.join("fibers.csv");
        let io_err = |e| TractoError::io(format!("write {}", path.display()), e);
        let mut f = BufWriter::new(File::create(&path).map_err(io_err)?);
        export::write_csv(&mut f, &fibers).map_err(io_err)?;
    }

    println!(
        "wrote {}: total length {} steps, longest {} steps, {} exported fibers, {:.1}s wall",
        out.display(),
        total,
        longest,
        fibers.len(),
        t0.elapsed().as_secs_f64()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracto_phantom::datasets;
    use tracto_volume::{Dim3, Mask};

    fn tmp(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("tracto_cli_trk_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn argmap(v: &[&str]) -> ArgMap {
        ArgMap::parse(&v.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn strategy_parser() {
        assert_eq!(parse_strategy("B").unwrap().label(), "B+1000");
        assert_eq!(parse_strategy("C").unwrap().label(), "C");
        assert_eq!(
            parse_strategy("single").unwrap(),
            SegmentationStrategy::Single
        );
        assert_eq!(
            parse_strategy("uniform:20").unwrap(),
            SegmentationStrategy::Uniform(20)
        );
        assert!(parse_strategy("uniform:0").is_err());
        assert!(parse_strategy("zig").is_err());
    }

    #[test]
    fn end_to_end_track_from_disk() {
        let data = tmp("data");
        let samples_dir = tmp("sv");
        let out = tmp("out");
        // Build + store a small dataset and synthetic samples.
        let ds = datasets::single_bundle(Dim3::new(10, 6, 6), None, 3);
        let mask = Mask::from_fn(ds.dwi.dims(), |c| ds.truth.at(c).count > 0);
        store::save_dataset(&data, &ds.dwi, &mask, &ds.acq).unwrap();
        let sv = tracto::synthetic::samples_from_truth(&ds.truth, 4, 0.1, 0.02, 5);
        store::save_samples(&samples_dir, &sv).unwrap();

        let args = argmap(&[
            "--data",
            data.to_str().unwrap(),
            "--samples-dir",
            samples_dir.to_str().unwrap(),
            "--out",
            out.to_str().unwrap(),
            "--step",
            "0.3",
            "--max-steps",
            "500",
        ]);
        run(&args, &Tracer::disabled()).unwrap();
        let lengths = std::fs::read_to_string(out.join("lengths.csv")).unwrap();
        assert!(lengths.lines().count() > 4, "lengths rows written");
        assert!(out.join("connectivity.trv3").exists());
        for d in [&data, &samples_dir, &out] {
            let _ = std::fs::remove_dir_all(d);
        }
    }

    #[test]
    fn cache_dir_runs_estimation_once_then_hits() {
        let data = tmp("cc_data");
        let cache = tmp("cc_cache");
        let out = tmp("cc_out");
        let ds = datasets::single_bundle(Dim3::new(6, 5, 5), None, 3);
        // Narrow mask keeps both estimation and seeding small.
        let mask = Mask::from_fn(ds.dwi.dims(), |c| c.j == 2 && c.k == 2);
        store::save_dataset(&data, &ds.dwi, &mask, &ds.acq).unwrap();
        let args = argmap(&[
            "--data",
            data.to_str().unwrap(),
            "--cache-dir",
            cache.to_str().unwrap(),
            "--out",
            out.to_str().unwrap(),
            "--step",
            "0.3",
            "--max-steps",
            "200",
            "--est-samples",
            "3",
            "--est-burnin",
            "40",
            "--est-interval",
            "1",
        ]);
        run(&args, &Tracer::disabled()).unwrap();
        let entries = std::fs::read_dir(&cache).unwrap().count();
        assert_eq!(entries, 1, "one cache entry after a cold run");
        // Second run must reuse the entry (no new directories) and still
        // produce the outputs.
        std::fs::remove_dir_all(&out).unwrap();
        run(&args, &Tracer::disabled()).unwrap();
        assert_eq!(std::fs::read_dir(&cache).unwrap().count(), 1);
        assert!(out.join("lengths.csv").exists());
        for d in [&data, &cache, &out] {
            let _ = std::fs::remove_dir_all(d);
        }
    }

    #[test]
    fn seeded_faults_leave_track_output_bit_identical() {
        let data = tmp("fp_data");
        let samples_dir = tmp("fp_sv");
        let out_clean = tmp("fp_clean");
        let out_chaos = tmp("fp_chaos");
        let ds = datasets::single_bundle(Dim3::new(10, 6, 6), None, 3);
        let mask = Mask::from_fn(ds.dwi.dims(), |c| ds.truth.at(c).count > 0);
        store::save_dataset(&data, &ds.dwi, &mask, &ds.acq).unwrap();
        let sv = tracto::synthetic::samples_from_truth(&ds.truth, 4, 0.1, 0.02, 5);
        store::save_samples(&samples_dir, &sv).unwrap();

        let base = |out: &PathBuf, extra: &[&str]| {
            let mut v = vec![
                "--data",
                data.to_str().unwrap(),
                "--samples-dir",
                samples_dir.to_str().unwrap(),
                "--out",
                out.to_str().unwrap(),
                "--step",
                "0.3",
                "--max-steps",
                "300",
                "--devices",
                "3",
            ];
            v.extend_from_slice(extra);
            argmap(&v)
        };
        run(&base(&out_clean, &[]), &Tracer::disabled()).unwrap();
        run(
            &base(&out_chaos, &["--fault-seed", "9"]),
            &Tracer::disabled(),
        )
        .unwrap();
        let clean = std::fs::read_to_string(out_clean.join("lengths.csv")).unwrap();
        let chaos = std::fs::read_to_string(out_chaos.join("lengths.csv")).unwrap();
        assert_eq!(clean, chaos, "injected faults must not change results");
        for d in [&data, &samples_dir, &out_clean, &out_chaos] {
            let _ = std::fs::remove_dir_all(d);
        }
    }

    #[test]
    fn streams_flag_leaves_track_output_bit_identical() {
        let data = tmp("st_data");
        let samples_dir = tmp("st_sv");
        let out_serial = tmp("st_serial");
        let out_streamed = tmp("st_streamed");
        let out_pool = tmp("st_pool");
        let ds = datasets::single_bundle(Dim3::new(10, 6, 6), None, 3);
        let mask = Mask::from_fn(ds.dwi.dims(), |c| ds.truth.at(c).count > 0);
        store::save_dataset(&data, &ds.dwi, &mask, &ds.acq).unwrap();
        let sv = tracto::synthetic::samples_from_truth(&ds.truth, 4, 0.1, 0.02, 5);
        store::save_samples(&samples_dir, &sv).unwrap();

        let base = |out: &PathBuf, extra: &[&str]| {
            let mut v = vec![
                "--data",
                data.to_str().unwrap(),
                "--samples-dir",
                samples_dir.to_str().unwrap(),
                "--out",
                out.to_str().unwrap(),
                "--step",
                "0.3",
                "--max-steps",
                "300",
            ];
            v.extend_from_slice(extra);
            argmap(&v)
        };
        run(&base(&out_serial, &[]), &Tracer::disabled()).unwrap();
        run(
            &base(&out_streamed, &["--streams", "3"]),
            &Tracer::disabled(),
        )
        .unwrap();
        run(
            &base(&out_pool, &["--streams", "3", "--devices", "2"]),
            &Tracer::disabled(),
        )
        .unwrap();
        let serial = std::fs::read_to_string(out_serial.join("lengths.csv")).unwrap();
        let streamed = std::fs::read_to_string(out_streamed.join("lengths.csv")).unwrap();
        let pool = std::fs::read_to_string(out_pool.join("lengths.csv")).unwrap();
        assert_eq!(serial, streamed, "streams must not change results");
        assert_eq!(serial, pool, "streams over a pool must not change results");

        let zero = base(&out_serial, &["--streams", "0"]);
        assert!(run(&zero, &Tracer::disabled())
            .unwrap_err()
            .to_string()
            .contains("--streams"));
        for d in [&data, &samples_dir, &out_serial, &out_streamed, &out_pool] {
            let _ = std::fs::remove_dir_all(d);
        }
    }

    #[test]
    fn fault_flags_validated() {
        let args = argmap(&[
            "--data",
            "x",
            "--out",
            "y",
            "--samples-dir",
            "z",
            "--fault-plan",
            "p.txt",
            "--fault-seed",
            "3",
        ]);
        assert!(run(&args, &Tracer::disabled())
            .unwrap_err()
            .to_string()
            .contains("mutually exclusive"));
        let args = argmap(&[
            "--data",
            "x",
            "--out",
            "y",
            "--samples-dir",
            "z",
            "--cpu",
            "--fault-seed",
            "3",
        ]);
        assert!(run(&args, &Tracer::disabled())
            .unwrap_err()
            .to_string()
            .contains("incompatible"));
    }

    /// Sum the `steps` column of a run's `lengths.csv`.
    fn total_steps(out: &std::path::Path) -> u64 {
        std::fs::read_to_string(out.join("lengths.csv"))
            .unwrap()
            .lines()
            .skip(1)
            .map(|l| l.rsplit(',').next().unwrap().parse::<u64>().unwrap())
            .sum()
    }

    #[test]
    fn analytic_modality_is_cheaper_than_default() {
        let data = tmp("an_data");
        let samples_dir = tmp("an_sv");
        let out_mcmc = tmp("an_mcmc");
        let out_fast = tmp("an_fast");
        let ds = datasets::single_bundle(Dim3::new(10, 6, 6), None, 3);
        let mask = Mask::from_fn(ds.dwi.dims(), |c| ds.truth.at(c).count > 0);
        store::save_dataset(&data, &ds.dwi, &mask, &ds.acq).unwrap();
        let sv = tracto::synthetic::samples_from_truth(&ds.truth, 4, 0.1, 0.02, 5);
        store::save_samples(&samples_dir, &sv).unwrap();
        let base = |out: &PathBuf, extra: &[&str]| {
            let mut v = vec![
                "--data",
                data.to_str().unwrap(),
                "--samples-dir",
                samples_dir.to_str().unwrap(),
                "--out",
                out.to_str().unwrap(),
                "--step",
                "0.3",
                "--max-steps",
                "500",
            ];
            v.extend_from_slice(extra);
            argmap(&v)
        };
        run(&base(&out_mcmc, &[]), &Tracer::disabled()).unwrap();
        run(
            &base(&out_fast, &["--modality", "analytic"]),
            &Tracer::disabled(),
        )
        .unwrap();
        // One mean sample instead of four, and unit steps instead of 0.3:
        // the fast tier must do strictly less work.
        assert!(total_steps(&out_fast) < total_steps(&out_mcmc));
        let rows = |o: &PathBuf| {
            std::fs::read_to_string(o.join("lengths.csv"))
                .unwrap()
                .lines()
                .count()
        };
        assert!(rows(&out_fast) < rows(&out_mcmc), "fewer lanes tracked");
        for d in [&data, &samples_dir, &out_mcmc, &out_fast] {
            let _ = std::fs::remove_dir_all(d);
        }
    }

    #[test]
    fn tensorline_modality_needs_no_samples() {
        let data = tmp("tl_data");
        let out = tmp("tl_out");
        let ds = datasets::single_bundle(Dim3::new(10, 6, 6), None, 3);
        let mask = Mask::from_fn(ds.dwi.dims(), |c| ds.truth.at(c).count > 0);
        store::save_dataset(&data, &ds.dwi, &mask, &ds.acq).unwrap();
        let args = argmap(&[
            "--data",
            data.to_str().unwrap(),
            "--out",
            out.to_str().unwrap(),
            "--modality",
            "tensorline",
            "--cpu",
            "--step",
            "0.3",
            "--max-steps",
            "300",
        ]);
        run(&args, &Tracer::disabled()).unwrap();
        assert!(out.join("lengths.csv").exists());
        // A sample source is rejected: tensorlines fit the data directly.
        let rejected = argmap(&[
            "--data",
            data.to_str().unwrap(),
            "--out",
            out.to_str().unwrap(),
            "--modality",
            "tensorline",
            "--samples-dir",
            "sv",
        ]);
        assert!(run(&rejected, &Tracer::disabled())
            .unwrap_err()
            .to_string()
            .contains("tensorline"));
        for d in [&data, &out] {
            let _ = std::fs::remove_dir_all(d);
        }
    }

    #[test]
    fn stop_flags_validated_and_truncate() {
        let data = tmp("sm_data");
        let samples_dir = tmp("sm_sv");
        let out_free = tmp("sm_free");
        let out_stop = tmp("sm_stop");
        let ds = datasets::single_bundle(Dim3::new(10, 6, 6), None, 3);
        let mask = Mask::from_fn(ds.dwi.dims(), |c| ds.truth.at(c).count > 0);
        store::save_dataset(&data, &ds.dwi, &mask, &ds.acq).unwrap();
        let sv = tracto::synthetic::samples_from_truth(&ds.truth, 4, 0.1, 0.02, 5);
        store::save_samples(&samples_dir, &sv).unwrap();
        let base = |out: &PathBuf, extra: &[&str]| {
            let mut v = vec![
                "--data",
                data.to_str().unwrap(),
                "--samples-dir",
                samples_dir.to_str().unwrap(),
                "--out",
                out.to_str().unwrap(),
                "--step",
                "0.3",
                "--max-steps",
                "500",
            ];
            v.extend_from_slice(extra);
            argmap(&v)
        };
        run(&base(&out_free, &[]), &Tracer::disabled()).unwrap();
        // A 95th-percentile stop mask leaves almost every voxel out of
        // bounds for the walkers, so streamlines terminate early.
        run(
            &base(&out_stop, &["--stop-threshold", "95"]),
            &Tracer::disabled(),
        )
        .unwrap();
        assert!(total_steps(&out_stop) < total_steps(&out_free));

        let err = run(
            &base(&out_stop, &["--stop-threshold", "150"]),
            &Tracer::disabled(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("0..=100"));

        // A stop-mask volume on the wrong grid is rejected.
        let bad = tmp("sm_badmask");
        std::fs::create_dir_all(&bad).unwrap();
        let bad_path = bad.join("stop.trv3");
        let mut f = std::fs::File::create(&bad_path).unwrap();
        tracto_volume::io::write_volume3(
            &mut f,
            &tracto_volume::Volume3::zeros(Dim3::new(3, 3, 3)),
        )
        .unwrap();
        drop(f);
        let err = run(
            &base(&out_stop, &["--stop-mask", bad_path.to_str().unwrap()]),
            &Tracer::disabled(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("does not match"));
        for d in [&data, &samples_dir, &out_free, &out_stop, &bad] {
            let _ = std::fs::remove_dir_all(d);
        }
    }

    #[test]
    fn samples_source_flags_validated() {
        let data = tmp("sf_data");
        let ds = datasets::single_bundle(Dim3::new(6, 5, 5), None, 3);
        store::save_dataset(&data, &ds.dwi, &ds.wm_mask, &ds.acq).unwrap();
        let base = ["--data", data.to_str().unwrap(), "--out", "x"];
        let none = argmap(&base);
        assert!(run(&none, &Tracer::disabled())
            .unwrap_err()
            .to_string()
            .contains("--samples-dir or --cache-dir"));
        let mut both = base.to_vec();
        both.extend(["--samples-dir", "a", "--cache-dir", "b"]);
        assert!(run(&argmap(&both), &Tracer::disabled())
            .unwrap_err()
            .to_string()
            .contains("mutually exclusive"));
        let _ = std::fs::remove_dir_all(&data);
    }

    #[test]
    fn mismatched_samples_rejected() {
        let data = tmp("m_data");
        let samples_dir = tmp("m_sv");
        let out = tmp("m_out");
        let ds = datasets::single_bundle(Dim3::new(10, 6, 6), None, 3);
        store::save_dataset(&data, &ds.dwi, &ds.wm_mask, &ds.acq).unwrap();
        let other = datasets::single_bundle(Dim3::new(8, 6, 6), None, 3);
        let sv = tracto::synthetic::samples_from_truth(&other.truth, 2, 0.1, 0.02, 5);
        store::save_samples(&samples_dir, &sv).unwrap();
        let args = argmap(&[
            "--data",
            data.to_str().unwrap(),
            "--samples-dir",
            samples_dir.to_str().unwrap(),
            "--out",
            out.to_str().unwrap(),
        ]);
        assert!(run(&args, &Tracer::disabled())
            .unwrap_err()
            .to_string()
            .contains("do not match"));
        for d in [&data, &samples_dir, &out] {
            let _ = std::fs::remove_dir_all(d);
        }
    }
}
