//! `tracto estimate` — Step 1: voxelwise posterior sampling.

use crate::args::ArgMap;
use crate::store;
use std::path::PathBuf;
use tracto::run_mcmc_gpu;
use tracto_diffusion::PriorConfig;
use tracto_gpu_sim::{DeviceConfig, Gpu};
use tracto_mcmc::mh::AdaptScheme;
use tracto_mcmc::{ChainConfig, PointEstimator, VoxelEstimator};
use tracto_trace::{Tracer, TractoError, TractoResult};

const FLAGS: [&str; 8] = [
    "data", "out", "samples", "burnin", "interval", "seed", "point", "gpu",
];

/// Run the command.
pub fn run(args: &ArgMap, tracer: &Tracer) -> TractoResult<()> {
    args.reject_unknown(&FLAGS)?;
    let data = PathBuf::from(args.required("data")?);
    let out = PathBuf::from(args.required("out")?);
    let num_samples: u32 = args.get_parse("samples", 25)?;
    let burnin: u32 = args.get_parse("burnin", 300)?;
    let interval: u32 = args.get_parse("interval", 2)?;
    let seed: u64 = args.get_parse("seed", 42)?;
    if num_samples == 0 || interval == 0 {
        return Err(TractoError::config(
            "--samples and --interval must be positive",
        ));
    }

    let (dwi, mask, acq) = store::load_dataset(&data)?;
    let prior = PriorConfig::default();
    let t0 = std::time::Instant::now();

    let samples = if args.switch("point") {
        // The point-estimation baseline (single stick, Laplace samples).
        println!(
            "point-estimating {} voxels ({} pseudo-samples each)…",
            mask.count(),
            num_samples
        );
        PointEstimator::new(&acq, &dwi, &mask, prior, num_samples as usize, seed).run_parallel()
    } else {
        let config = ChainConfig {
            num_burnin: burnin,
            num_samples,
            sample_interval: interval,
            adapt: AdaptScheme::paper_default(),
        };
        println!(
            "running MCMC over {} voxels ({} loops each)…",
            mask.count(),
            config.num_loops()
        );
        if args.switch("gpu") {
            let mut gpu = Gpu::with_tracer(DeviceConfig::radeon_5870(), tracer.clone());
            let report = run_mcmc_gpu(&mut gpu, &acq, &dwi, &mask, prior, config, seed);
            println!(
                "simulated GPU time {:.2}s (kernel {:.2}s, transfer {:.2}s)",
                report.ledger.total_s(),
                report.ledger.kernel_s,
                report.ledger.transfer_s
            );
            report.samples
        } else {
            VoxelEstimator::new(&acq, &dwi, &mask, prior, config, seed)
                .with_tracer(tracer.clone())
                .run_parallel()
        }
    };

    store::save_samples(&out, &samples)?;
    println!(
        "wrote {} ({} samples/voxel) in {:.1}s wall",
        out.display(),
        samples.num_samples(),
        t0.elapsed().as_secs_f64()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracto_phantom::datasets;
    use tracto_volume::{Dim3, Ijk, Vec3};

    fn tmp(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("tracto_cli_est_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn argmap(v: &[&str]) -> ArgMap {
        ArgMap::parse(&v.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn estimates_stored_dataset() {
        let data = tmp("data");
        let out = tmp("samples");
        let ds = datasets::single_bundle(Dim3::new(8, 5, 5), None, 3);
        // Narrow mask for speed.
        let mask = tracto_volume::Mask::from_fn(ds.dwi.dims(), |c| c.j == 2 && c.k == 2);
        store::save_dataset(&data, &ds.dwi, &mask, &ds.acq).unwrap();
        let args = argmap(&[
            "--data",
            data.to_str().unwrap(),
            "--out",
            out.to_str().unwrap(),
            "--samples",
            "8",
            "--burnin",
            "100",
        ]);
        run(&args, &Tracer::disabled()).unwrap();
        let sv = store::load_samples(&out).unwrap();
        assert_eq!(sv.num_samples(), 8);
        // The bundle voxel's direction should be near x.
        let dir = sv.mean_principal_direction(Ijk::new(4, 2, 2));
        assert!(dir.dot(Vec3::X).abs() > 0.9, "dir {dir:?}");
        let _ = std::fs::remove_dir_all(&data);
        let _ = std::fs::remove_dir_all(&out);
    }

    #[test]
    fn point_mode_writes_single_stick_samples() {
        let data = tmp("pdata");
        let out = tmp("psamples");
        let ds = datasets::single_bundle(Dim3::new(6, 5, 5), Some(25.0), 3);
        let mask = tracto_volume::Mask::from_fn(ds.dwi.dims(), |c| c == Ijk::new(3, 2, 2));
        store::save_dataset(&data, &ds.dwi, &mask, &ds.acq).unwrap();
        let args = argmap(&[
            "--data",
            data.to_str().unwrap(),
            "--out",
            out.to_str().unwrap(),
            "--samples",
            "5",
            "--point",
        ]);
        run(&args, &Tracer::disabled()).unwrap();
        let sv = store::load_samples(&out).unwrap();
        for s in 0..5 {
            assert_eq!(sv.sticks_at(Ijk::new(3, 2, 2), s)[1].1, 0.0);
        }
        let _ = std::fs::remove_dir_all(&data);
        let _ = std::fs::remove_dir_all(&out);
    }

    #[test]
    fn rejects_zero_samples() {
        let args = argmap(&["--data", "x", "--out", "y", "--samples", "0"]);
        assert!(run(&args, &Tracer::disabled()).is_err());
    }
}
