//! `tracto info` — describe a stored dataset.

use crate::args::ArgMap;
use crate::store;
use std::path::PathBuf;
use tracto_trace::{Tracer, TractoResult};

/// Run the command.
pub fn run(args: &ArgMap, _tracer: &Tracer) -> TractoResult<()> {
    args.reject_unknown(&["data"])?;
    let data = PathBuf::from(args.required("data")?);
    let (dwi, mask, acq) = store::load_dataset(&data)?;
    let dims = dwi.dims();
    println!("dataset: {}", data.display());
    println!(
        "  grid           {} × {} × {} ({} voxels)",
        dims.nx,
        dims.ny,
        dims.nz,
        dims.len()
    );
    println!(
        "  measurements   {} ({} b=0, {} diffusion-weighted)",
        acq.len(),
        acq.b0_indices().len(),
        acq.dwi_indices().len()
    );
    let bmax = acq.bvals().iter().cloned().fold(0.0, f64::max);
    println!("  max b-value    {bmax}");
    println!(
        "  white matter   {} voxels ({:.1}% of grid)",
        mask.count(),
        100.0 * mask.count() as f64 / dims.len() as f64
    );
    // Signal summary from the first b0 volume.
    if let Some(&b0) = acq.b0_indices().first() {
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        let mut sum = 0.0f64;
        for idx in 0..dims.len() {
            let v = dwi.voxel_at(idx)[b0];
            lo = lo.min(v);
            hi = hi.max(v);
            sum += v as f64;
        }
        println!(
            "  b0 intensity   min {lo:.1} mean {:.1} max {hi:.1}",
            sum / dims.len() as f64
        );
    }
    // Per-samples-dir summary if present alongside.
    let samples_dir = data.join("samples");
    if samples_dir.join("f1.trv4").exists() {
        if let Ok(sv) = store::load_samples(&samples_dir) {
            println!(
                "  samples/       {} posterior samples per voxel",
                sv.num_samples()
            );
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracto_phantom::datasets;
    use tracto_volume::Dim3;

    #[test]
    fn info_on_stored_dataset() {
        let dir = std::env::temp_dir().join(format!("tracto_cli_info_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let ds = datasets::single_bundle(Dim3::new(6, 5, 4), Some(20.0), 1);
        store::save_dataset(&dir, &ds.dwi, &ds.wm_mask, &ds.acq).unwrap();
        let args =
            crate::args::ArgMap::parse(&["--data".to_string(), dir.to_str().unwrap().to_string()])
                .unwrap();
        run(&args, &Tracer::disabled()).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn info_missing_dir_errors() {
        let args =
            crate::args::ArgMap::parse(&["--data".to_string(), "/nonexistent/tracto".to_string()])
                .unwrap();
        assert!(run(&args, &Tracer::disabled()).is_err());
    }
}
