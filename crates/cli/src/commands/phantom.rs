//! `tracto phantom` — generate a synthetic DWI dataset.

use crate::args::ArgMap;
use crate::store;
use std::path::PathBuf;
use tracto_phantom::datasets::{self, DatasetSpec};
use tracto_trace::{Tracer, TractoError, TractoResult};
use tracto_volume::Dim3;

const FLAGS: [&str; 6] = ["out", "dataset", "scale", "snr", "seed", "light"];

/// Run the command.
pub fn run(args: &ArgMap, _tracer: &Tracer) -> TractoResult<()> {
    args.reject_unknown(&FLAGS)?;
    let out = PathBuf::from(args.required("out")?);
    let kind = args.get("dataset").unwrap_or("1");
    let scale: f64 = args.get_parse("scale", 0.25)?;
    if !(0.0..=1.0).contains(&scale) || scale == 0.0 {
        return Err(TractoError::config("--scale must be in (0, 1]"));
    }
    let seed: u64 = args.get_parse("seed", 7)?;
    let snr: Option<f64> = match args.get("snr") {
        None => Some(25.0),
        Some("none") => None,
        Some(v) => Some(
            v.parse()
                .map_err(|_| TractoError::config(format!("--snr: bad value `{v}`")))?,
        ),
    };

    let ds = match kind {
        "1" | "2" => {
            let mut spec = if kind == "1" {
                DatasetSpec::paper_dataset1()
            } else {
                DatasetSpec::paper_dataset2()
            }
            .scaled(scale);
            spec.seed = seed;
            spec.snr = snr;
            if args.switch("light") {
                spec = spec.light_protocol();
            }
            spec.build()
        }
        "single" => {
            let n = ((32.0 * scale * 4.0).round() as usize).max(8);
            datasets::single_bundle(Dim3::new(n, n / 2 + 2, n / 2 + 2), snr, seed)
        }
        "crossing" => {
            let n = ((40.0 * scale * 4.0).round() as usize).max(10);
            datasets::crossing(Dim3::new(n, n, (n / 3).max(5)), 90.0, snr, seed)
        }
        other => {
            return Err(TractoError::config(format!(
                "--dataset: unknown kind `{other}` (1|2|single|crossing)"
            )))
        }
    };

    store::save_dataset(&out, &ds.dwi, &ds.wm_mask, &ds.acq)?;
    println!(
        "wrote {}: dims {:?}, {} measurements, {} WM voxels, {} fiber voxels",
        out.display(),
        ds.dwi.dims(),
        ds.acq.len(),
        ds.wm_mask.count(),
        ds.truth.fiber_voxel_count()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("tracto_cli_ph_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn argmap(v: &[&str]) -> ArgMap {
        ArgMap::parse(&v.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn generates_single_bundle() {
        let dir = tmp("single");
        let args = argmap(&[
            "--out",
            dir.to_str().unwrap(),
            "--dataset",
            "single",
            "--scale",
            "0.1",
        ]);
        run(&args, &Tracer::disabled()).unwrap();
        let (dwi, mask, acq) = store::load_dataset(&dir).unwrap();
        assert!(!dwi.is_empty());
        assert!(mask.count() > 0);
        assert_eq!(dwi.nt(), acq.len());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejects_bad_scale_and_kind() {
        let dir = tmp("bad");
        let args = argmap(&["--out", dir.to_str().unwrap(), "--scale", "0"]);
        assert!(run(&args, &Tracer::disabled()).is_err());
        let args = argmap(&["--out", dir.to_str().unwrap(), "--dataset", "nope"]);
        assert!(run(&args, &Tracer::disabled()).is_err());
    }

    #[test]
    fn unknown_flag_rejected_with_listing() {
        let args = argmap(&["--out", "x", "--bogus"]);
        let err = run(&args, &Tracer::disabled()).unwrap_err();
        assert_eq!(err.kind(), tracto_trace::ErrorKind::Config);
        let text = err.to_string();
        assert!(text.contains("--bogus") && text.contains("--dataset"));
    }

    #[test]
    fn snr_none_is_noiseless_and_deterministic() {
        let d1 = tmp("clean1");
        let d2 = tmp("clean2");
        for d in [&d1, &d2] {
            let args = argmap(&[
                "--out",
                d.to_str().unwrap(),
                "--dataset",
                "single",
                "--scale",
                "0.1",
                "--snr",
                "none",
            ]);
            run(&args, &Tracer::disabled()).unwrap();
        }
        let (a, _, _) = store::load_dataset(&d1).unwrap();
        let (b, _, _) = store::load_dataset(&d2).unwrap();
        assert_eq!(a, b);
        let _ = std::fs::remove_dir_all(&d1);
        let _ = std::fs::remove_dir_all(&d2);
    }
}
