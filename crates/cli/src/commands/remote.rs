//! Remote-service commands: `tracto submit | await | status | cancel |
//! upload | metrics | shutdown`, all speaking the `tracto-proto` wire
//! protocol to a `tracto serve --listen` process via `--connect ENDPOINT`.
//!
//! Datasets cross the wire as deterministic phantom recipes, so a remote
//! submission names `(kind, scale, seed, snr)` and the server materializes
//! bit-identical volumes on its side — or, since protocol v2, as a content
//! hash from `tracto upload` (`--volume HASH`), which ships a real stored
//! dataset to the server once and reuses it by reference.

use crate::args::ArgMap;
use std::time::{Duration, Instant};
use tracto::loaded::encode_trds;
use tracto_proto::{
    CachePolicy, ChainSpec, DatasetSpec, Endpoint, JobKind, JobSpec, JobState, Modality, Outcome,
    Priority, RemoteService, TrackSpec,
};
use tracto_trace::{Tracer, TractoError, TractoResult, Value};

/// Flags every remote command accepts: the endpoint plus the reconnect
/// policy (a restarting server refuses connections while it replays its
/// journal, so the client rides that out with bounded retries).
const CONNECT_FLAGS: [&str; 3] = ["connect", "connect-retries", "connect-backoff-ms"];

const SUBMIT_FLAGS: [&str; 22] = [
    "connect",
    "dataset",
    "scale",
    "dataset-seed",
    "snr",
    "volume",
    "estimate",
    "samples",
    "burnin",
    "interval",
    "seed",
    "step",
    "threshold",
    "max-steps",
    "deadline-ms",
    "priority",
    "no-wait",
    "follow",
    "modality",
    "stop-mask",
    "stop-threshold",
    "tenant",
];

/// Connect and perform the handshake, emitting a trace span for the call.
/// Transient transport failures are retried `--connect-retries` times
/// (default 3) with exponential backoff starting at
/// `--connect-backoff-ms` (default 20).
fn connect(args: &ArgMap, tracer: &Tracer) -> TractoResult<RemoteService> {
    let endpoint = Endpoint::parse(args.required("connect")?)?;
    let retries: u32 = args.get_parse("connect-retries", 3)?;
    let backoff_ms: u64 = args.get_parse("connect-backoff-ms", 20)?;
    let client = RemoteService::connect_with_retry(
        &endpoint,
        "tracto-cli",
        retries,
        std::time::Duration::from_millis(backoff_ms),
    )?;
    tracer.emit(
        "cli.connected",
        &[
            ("endpoint", Value::Text(endpoint.to_string())),
            ("server", Value::Text(client.server_name.clone())),
        ],
    );
    Ok(client)
}

/// The [`CONNECT_FLAGS`] plus a command's own flags, for `reject_unknown`.
fn with_connect_flags<'a>(extra: &[&'a str]) -> Vec<&'a str> {
    let mut flags = CONNECT_FLAGS.to_vec();
    flags.extend_from_slice(extra);
    flags
}

/// Render a job state; returns `Err` for a failed job so the process exits
/// non-zero.
fn report_state(job: u64, state: &JobState) -> TractoResult<()> {
    match state {
        JobState::Pending => {
            println!("job {job}: pending");
            Ok(())
        }
        JobState::Done(Outcome::Estimate { voxels, cache_hit }) => {
            println!("job {job}: done (estimate), {voxels} voxels, cache_hit={cache_hit}");
            Ok(())
        }
        JobState::Done(Outcome::Track {
            total_steps,
            streamlines,
            lengths_digest,
            cache_hit,
            batch_jobs,
            batch_lanes,
        }) => {
            println!(
                "job {job}: done (track), {total_steps} total steps, {streamlines} streamlines, \
                 digest {lengths_digest:016x}, cache_hit={cache_hit}, \
                 batch of {batch_jobs} job(s) / {batch_lanes} lanes"
            );
            Ok(())
        }
        JobState::Failed { kind, message } => Err(TractoError::format(format!(
            "job {job} failed ({kind}): {message}"
        ))),
    }
}

/// Build the wire spec from submit flags.
fn spec_from_args(args: &ArgMap) -> TractoResult<JobSpec> {
    if args.get("stop-mask").is_some() {
        // Mask volumes never cross the wire; remote jobs carry only the
        // percentile and the server derives the mask from its copy of
        // the dataset's mean DWI signal.
        return Err(TractoError::config(
            "--stop-mask is local-only; for remote jobs use --stop-threshold \
             (the server derives the mask from the dataset's mean DWI)",
        ));
    }
    let dataset = if let Some(hash) = args.get("volume") {
        if args.get("dataset").is_some() {
            return Err(TractoError::config(
                "--volume and --dataset are mutually exclusive (an uploaded \
                 volume replaces the phantom recipe)",
            ));
        }
        DatasetSpec::uploaded(hash)
    } else {
        DatasetSpec {
            kind: args.get("dataset").unwrap_or("1").to_string(),
            scale: args.get_parse("scale", 0.25)?,
            seed: args.get_parse("dataset-seed", 7)?,
            snr: match args.get("snr") {
                None => Some(25.0),
                Some("none") => None,
                Some(v) => Some(
                    v.parse()
                        .map_err(|_| TractoError::config(format!("--snr: bad value `{v}`")))?,
                ),
            },
            upload: None,
        }
    };
    let kind = if args.switch("estimate") {
        JobKind::Estimate
    } else {
        let defaults = TrackSpec::default();
        JobKind::Track(TrackSpec {
            step: args.get_parse("step", defaults.step)?,
            threshold: args.get_parse("threshold", defaults.threshold)?,
            max_steps: args.get_parse("max-steps", defaults.max_steps)?,
        })
    };
    let chain_defaults = ChainSpec::default();
    Ok(JobSpec {
        dataset,
        kind,
        chain: ChainSpec {
            burnin: args.get_parse("burnin", chain_defaults.burnin)?,
            samples: args.get_parse("samples", chain_defaults.samples)?,
            interval: args.get_parse("interval", chain_defaults.interval)?,
        },
        seed: args.get_parse("seed", 42)?,
        deadline_ms: args
            .get("deadline-ms")
            .map(|v| {
                v.parse()
                    .map_err(|_| TractoError::config(format!("--deadline-ms: bad value `{v}`")))
            })
            .transpose()?,
        modality: Modality::parse(args.get("modality").unwrap_or("mcmc"))?,
        stop_percentile: args
            .get("stop-threshold")
            .map(|v| {
                v.parse()
                    .map_err(|_| TractoError::config(format!("--stop-threshold: bad value `{v}`")))
            })
            .transpose()?,
        priority: Priority::parse(args.get("priority").unwrap_or("normal"))?,
        retry_budget: args
            .get("retry-budget")
            .map(|v| {
                v.parse()
                    .map_err(|_| TractoError::config(format!("--retry-budget: bad value `{v}`")))
            })
            .transpose()?,
        cache: CachePolicy::parse(args.get("cache").unwrap_or("read-write"))?,
        tenant: args
            .get("tenant")
            .unwrap_or(tracto_proto::DEFAULT_TENANT)
            .to_string(),
    })
}

/// Subscribe to one job's pushed events and narrate each transition until
/// the terminal one, whose state is returned. `Pending` means the timeout
/// elapsed first. Requires a v2 connection.
fn follow_job(
    client: &mut RemoteService,
    job: u64,
    timeout_ms: Option<u64>,
) -> TractoResult<JobState> {
    client.subscribe(Some(job))?;
    let deadline = timeout_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
    loop {
        let remaining = match deadline {
            None => None,
            Some(d) => {
                let left = d.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    return Ok(JobState::Pending);
                }
                Some(left)
            }
        };
        match client.next_event(remaining)? {
            Some(ev) if ev.job == job && ev.is_terminal() => return Ok(ev.state),
            Some(ev) if ev.job == job => println!("job {job}: {}", ev.kind),
            Some(_) => {}
            None => return Ok(JobState::Pending),
        }
    }
}

/// `tracto submit --connect EP [job flags]`: submit one job, and (unless
/// `--no-wait`) block until it finishes. With `--follow`, narrate pushed
/// lifecycle events along the way instead of waiting silently.
pub fn submit(args: &ArgMap, tracer: &Tracer) -> TractoResult<()> {
    let mut flags = with_connect_flags(&SUBMIT_FLAGS);
    flags.extend(["retry-budget", "cache", "timeout-ms"]);
    args.reject_unknown(&flags)?;
    let spec = spec_from_args(args)?;
    let mut client = connect(args, tracer)?;
    let job = client.submit(spec)?;
    println!("submitted job {job}");
    if args.switch("no-wait") {
        return Ok(());
    }
    let timeout_ms = args
        .get("timeout-ms")
        .map(|v| {
            v.parse::<u64>()
                .map_err(|_| TractoError::config(format!("--timeout-ms: bad value `{v}`")))
        })
        .transpose()?;
    let state = if args.switch("follow") && client.server_version >= 2 {
        follow_job(&mut client, job, timeout_ms)?
    } else {
        // --follow against a v1 server degrades to a silent await: same
        // result, no narration to stream.
        client.await_job(job, timeout_ms)?
    };
    if state == JobState::Pending {
        return Err(TractoError::format(format!(
            "job {job} still pending after {}ms",
            timeout_ms.unwrap_or(0)
        )));
    }
    report_state(job, &state)
}

/// `tracto upload --connect EP --data DIR`: pack a stored dataset
/// directory (`dwi.trv4`, `wm_mask.trv3`, `acq.txt`) into a TRDS container
/// and upload it in chunks, printing the content hash to pass as
/// `submit --volume HASH`. Content-addressed: re-uploading the same data
/// is a cheap no-op, and an interrupted upload resumes where it stopped.
pub fn upload(args: &ArgMap, tracer: &Tracer) -> TractoResult<()> {
    args.reject_unknown(&with_connect_flags(&["data"]))?;
    let data = std::path::PathBuf::from(args.required("data")?);
    let (dwi, mask, acq) = crate::store::load_dataset(&data)?;
    let blob = encode_trds(&dwi, &mask, &acq)?;
    let mut client = connect(args, tracer)?;
    let hash = client.upload(&blob)?;
    tracer.emit(
        "cli.uploaded",
        &[
            ("hash", Value::Text(hash.clone())),
            ("bytes", Value::U64(blob.len() as u64)),
        ],
    );
    println!(
        "uploaded {} bytes as volume {hash}\nsubmit against it with: \
         tracto submit --connect {} --volume {hash}",
        blob.len(),
        args.required("connect")?
    );
    Ok(())
}

/// `tracto await --connect EP --job N [--timeout-ms N]`: block until a
/// job finishes (e.g. one recovered from the journal after a restart) and
/// render its outcome exactly like `submit` would have.
pub fn await_job(args: &ArgMap, tracer: &Tracer) -> TractoResult<()> {
    args.reject_unknown(&with_connect_flags(&["job", "timeout-ms"]))?;
    let job = args.required("job")?.parse::<u64>().map_err(|_| {
        TractoError::config(format!("--job: bad value `{}`", args.get("job").unwrap()))
    })?;
    let timeout_ms = args
        .get("timeout-ms")
        .map(|v| {
            v.parse::<u64>()
                .map_err(|_| TractoError::config(format!("--timeout-ms: bad value `{v}`")))
        })
        .transpose()?;
    let mut client = connect(args, tracer)?;
    let state = client.await_job(job, timeout_ms)?;
    if state == JobState::Pending {
        return Err(TractoError::format(format!(
            "job {job} still pending after {}ms",
            timeout_ms.unwrap_or(0)
        )));
    }
    report_state(job, &state)
}

/// `tracto status --connect EP --job N`: poll one job without blocking.
pub fn status(args: &ArgMap, tracer: &Tracer) -> TractoResult<()> {
    args.reject_unknown(&with_connect_flags(&["job"]))?;
    let job = args.required("job")?.parse::<u64>().map_err(|_| {
        TractoError::config(format!("--job: bad value `{}`", args.get("job").unwrap()))
    })?;
    let mut client = connect(args, tracer)?;
    let state = client.status(job)?;
    report_state(job, &state)
}

/// `tracto cancel --connect EP --job N`: request cancellation.
pub fn cancel(args: &ArgMap, tracer: &Tracer) -> TractoResult<()> {
    args.reject_unknown(&with_connect_flags(&["job"]))?;
    let job = args.required("job")?.parse::<u64>().map_err(|_| {
        TractoError::config(format!("--job: bad value `{}`", args.get("job").unwrap()))
    })?;
    let mut client = connect(args, tracer)?;
    if client.cancel(job)? {
        println!("job {job}: cancelled");
    } else {
        println!("job {job}: already settled, cancel lost the race");
    }
    Ok(())
}

/// `tracto ping --connect EP`: probe a server's heartbeat. A fleet member
/// answers with its member name; a pre-v3 server has no ping verb, which
/// is itself useful information (the connection still proved liveness).
pub fn ping(args: &ArgMap, tracer: &Tracer) -> TractoResult<()> {
    args.reject_unknown(&with_connect_flags(&[]))?;
    let mut client = connect(args, tracer)?;
    match client.ping()? {
        tracto_proto::PingReply::Heartbeat { member } if member.is_empty() => {
            println!(
                "server {} v{} is alive (not a named fleet member)",
                client.server_name, client.server_version
            );
        }
        tracto_proto::PingReply::Heartbeat { member } => {
            println!(
                "server {} v{} is alive, fleet member `{member}`",
                client.server_name, client.server_version
            );
        }
        tracto_proto::PingReply::NoHeartbeat => {
            println!(
                "server {} v{} is alive but predates heartbeats (v1, no ping verb)",
                client.server_name, client.server_version
            );
        }
    }
    Ok(())
}

/// `tracto fleet-status --connect EP`: print a coordinator's member table.
pub fn fleet_status(args: &ArgMap, tracer: &Tracer) -> TractoResult<()> {
    args.reject_unknown(&with_connect_flags(&[]))?;
    let mut client = connect(args, tracer)?;
    println!("{}", client.fleet_status()?);
    Ok(())
}

/// `tracto metrics --connect EP`: print the server's metrics snapshot.
pub fn metrics(args: &ArgMap, tracer: &Tracer) -> TractoResult<()> {
    args.reject_unknown(&with_connect_flags(&[]))?;
    let mut client = connect(args, tracer)?;
    println!("{}", client.metrics()?);
    Ok(())
}

/// `tracto shutdown --connect EP`: drain the remote service and stop its
/// listener.
pub fn shutdown(args: &ArgMap, tracer: &Tracer) -> TractoResult<()> {
    args.reject_unknown(&with_connect_flags(&[]))?;
    let mut client = connect(args, tracer)?;
    client.drain()?;
    client.shutdown()?;
    println!("server is draining and shutting down");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argmap(v: &[&str]) -> ArgMap {
        ArgMap::parse(&v.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn spec_defaults_match_wire_defaults() {
        let spec = spec_from_args(&argmap(&["--connect", "/tmp/x.sock"])).unwrap();
        assert_eq!(spec, JobSpec::track(DatasetSpec::new("1")));
    }

    #[test]
    fn spec_flags_land_in_the_right_fields() {
        let spec = spec_from_args(&argmap(&[
            "--dataset",
            "crossing",
            "--scale",
            "0.1",
            "--dataset-seed",
            "11",
            "--snr",
            "none",
            "--samples",
            "3",
            "--seed",
            "9",
            "--step",
            "0.2",
            "--deadline-ms",
            "1500",
            "--priority",
            "high",
            "--cache",
            "bypass",
        ]))
        .unwrap();
        assert_eq!(spec.dataset.kind, "crossing");
        assert_eq!(spec.dataset.scale, 0.1);
        assert_eq!(spec.dataset.seed, 11);
        assert_eq!(spec.dataset.snr, None);
        assert_eq!(spec.chain.samples, 3);
        assert_eq!(spec.seed, 9);
        match spec.kind {
            JobKind::Track(t) => assert_eq!(t.step, 0.2),
            JobKind::Estimate => panic!("expected a track job"),
        }
        assert_eq!(spec.deadline_ms, Some(1500));
        assert_eq!(spec.priority, Priority::High);
        assert_eq!(spec.cache, CachePolicy::Bypass);
    }

    #[test]
    fn modality_flags_land_on_the_wire() {
        let spec = spec_from_args(&argmap(&[
            "--modality",
            "analytic",
            "--stop-threshold",
            "90",
        ]))
        .unwrap();
        assert_eq!(spec.modality, Modality::Analytic);
        assert_eq!(spec.stop_percentile, Some(90.0));
        let spec = spec_from_args(&argmap(&[])).unwrap();
        assert_eq!(spec.modality, Modality::Mcmc);
        assert_eq!(spec.stop_percentile, None);
    }

    #[test]
    fn tenant_flag_lands_on_the_wire() {
        let spec = spec_from_args(&argmap(&["--tenant", "lab-a"])).unwrap();
        assert_eq!(spec.tenant, "lab-a");
        let spec = spec_from_args(&argmap(&[])).unwrap();
        assert_eq!(spec.tenant, tracto_proto::DEFAULT_TENANT);
    }

    #[test]
    fn stop_mask_is_rejected_for_remote_jobs() {
        let err = spec_from_args(&argmap(&["--stop-mask", "wm.trv3"]))
            .map(|_| ())
            .expect_err("must fail");
        assert_eq!(err.kind(), tracto_trace::ErrorKind::Config);
        assert!(err.to_string().contains("local-only"));
    }

    #[test]
    fn estimate_switch_selects_estimation() {
        let spec = spec_from_args(&argmap(&["--estimate"])).unwrap();
        assert_eq!(spec.kind, JobKind::Estimate);
    }

    #[test]
    fn bad_values_are_config_errors() {
        for flags in [
            vec!["--priority", "urgent"],
            vec!["--cache", "write-back"],
            vec!["--snr", "loud"],
            vec!["--deadline-ms", "soon"],
        ] {
            let err = spec_from_args(&argmap(&flags))
                .map(|_| ())
                .expect_err("must fail");
            assert_eq!(err.kind(), tracto_trace::ErrorKind::Config, "{flags:?}");
        }
    }

    #[test]
    fn connect_refused_is_typed_io_error() {
        // --connect-retries 0 keeps the failure fast; the error type must
        // survive retry exhaustion either way.
        let args = argmap(&[
            "--connect",
            "/nonexistent/tracto.sock",
            "--job",
            "1",
            "--connect-retries",
            "0",
        ]);
        let err = status(&args, &Tracer::disabled()).unwrap_err();
        assert_eq!(err.kind(), tracto_trace::ErrorKind::Io);
    }

    #[test]
    fn await_accepts_the_connect_retry_flags() {
        // The flag set parses cleanly; the connection itself still fails
        // (nothing listens), which proves the flags reached `connect`.
        let args = argmap(&[
            "--connect",
            "/nonexistent/tracto.sock",
            "--job",
            "3",
            "--timeout-ms",
            "50",
            "--connect-retries",
            "1",
            "--connect-backoff-ms",
            "1",
        ]);
        let err = await_job(&args, &Tracer::disabled()).unwrap_err();
        assert_eq!(err.kind(), tracto_trace::ErrorKind::Io);
    }

    #[test]
    fn await_rejects_submit_only_flags() {
        let args = argmap(&["--connect", "/tmp/x.sock", "--job", "1", "--estimate"]);
        let err = await_job(&args, &Tracer::disabled()).unwrap_err();
        assert_eq!(err.kind(), tracto_trace::ErrorKind::Config);
        assert!(err.to_string().contains("--estimate"));
    }
}
