//! `tracto replay-faults` — turn a recorded trace back into a fault plan.
//!
//! A chaos run traced with `--trace FILE` records every injected fault as
//! a `gpu.fault` event. This command distills that log into the plan-file
//! format [`FaultPlan::parse`] accepts, so the exact fault schedule a
//! crashed or flaky run experienced can be replayed deterministically:
//!
//! ```text
//! tracto serve --script jobs.txt --fault-seed 7 --trace run.jsonl
//! tracto replay-faults --trace run.jsonl --out faults.plan
//! tracto serve --script jobs.txt --fault-plan faults.plan
//! ```
//!
//! Note the flag asymmetry: everywhere else `--trace FILE` *writes* an
//! event log; here it *reads* one (the top-level driver suppresses the
//! usual sink for this command so the recording is never truncated).

use crate::args::ArgMap;
use std::path::Path;
use tracto_gpu_sim::FaultPlan;
use tracto_trace::{Tracer, TractoError, TractoResult, Value};

/// `tracto replay-faults --trace FILE [--out FILE]`: reconstruct the fault
/// plan recorded in a JSON-lines trace and print it (or write it with
/// `--out`) in `--fault-plan` format.
pub fn run(args: &ArgMap, tracer: &Tracer) -> TractoResult<()> {
    args.reject_unknown(&["trace", "out"])?;
    let path = Path::new(args.required("trace")?);
    let text = std::fs::read_to_string(path)
        .map_err(|e| TractoError::io(format!("read trace {}", path.display()), e))?;
    let plan = FaultPlan::from_trace(&text)?;
    tracer.emit(
        "cli.replay_faults",
        &[
            ("trace", Value::Text(path.display().to_string())),
            ("events", Value::U64(plan.events.len() as u64)),
        ],
    );
    let rendered = plan.to_text();
    match args.get("out") {
        Some(out) => {
            let out = Path::new(out);
            std::fs::write(out, rendered.as_bytes())
                .map_err(|e| TractoError::io(format!("write plan {}", out.display()), e))?;
            println!(
                "replayed {} fault event(s) from {} into {}",
                plan.events.len(),
                path.display(),
                out.display()
            );
        }
        None => print!("{rendered}"),
    }
    if plan.events.is_empty() {
        eprintln!("note: the trace records no gpu.fault events; the plan is empty");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argmap(v: &[&str]) -> ArgMap {
        ArgMap::parse(&v.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("tracto-replay-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn recorded_faults_round_trip_through_the_plan_format() {
        let dir = tmp_dir("roundtrip");
        let trace = dir.join("run.jsonl");
        // A hand-rolled recording: two faults on device 0, one on device 1,
        // interleaved with unrelated events a real trace would contain.
        std::fs::write(
            &trace,
            concat!(
                "{\"name\":\"serve.start\",\"fields\":{\"workers\":2}}\n",
                "{\"name\":\"gpu.fault\",\"fields\":{\"device\":0,\"kind\":\"launch-fail\",\"at_op\":5}}\n",
                "{\"name\":\"batch.launch\",\"fields\":{\"lanes\":64}}\n",
                "{\"name\":\"gpu.fault\",\"fields\":{\"device\":1,\"kind\":\"transfer-timeout\",\"at_op\":9}}\n",
                "{\"name\":\"gpu.fault\",\"fields\":{\"device\":0,\"kind\":\"device-lost\",\"at_op\":12}}\n",
            ),
        )
        .unwrap();
        let out = dir.join("faults.plan");
        let args = argmap(&[
            "--trace",
            trace.to_str().unwrap(),
            "--out",
            out.to_str().unwrap(),
        ]);
        run(&args, &Tracer::disabled()).unwrap();

        let written = std::fs::read_to_string(&out).unwrap();
        let plan = FaultPlan::parse(&written).unwrap();
        assert_eq!(plan.events.len(), 3, "all three faults survive: {written}");
        assert_eq!(plan.events_for(0).len(), 2);
        assert_eq!(plan.events_for(1).len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_trace_file_is_a_typed_io_error() {
        let args = argmap(&["--trace", "/nonexistent/tracto-run.jsonl"]);
        let err = run(&args, &Tracer::disabled()).unwrap_err();
        assert_eq!(err.kind(), tracto_trace::ErrorKind::Io);
    }

    #[test]
    fn unknown_flags_are_rejected() {
        let args = argmap(&["--trace", "x.jsonl", "--fault-seed", "3"]);
        let err = run(&args, &Tracer::disabled()).unwrap_err();
        assert_eq!(err.kind(), tracto_trace::ErrorKind::Config);
    }
}
