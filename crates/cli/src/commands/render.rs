//! `tracto render` — print an ASCII maximum-intensity projection of a
//! stored volume (e.g. the `connectivity.trv3` that `tracto track` writes).

use crate::args::ArgMap;
use std::fs::File;
use std::io::BufReader;
use std::path::PathBuf;
use tracto_trace::{Tracer, TractoError, TractoResult};
use tracto_volume::io::read_volume3;
use tracto_volume::render::{mip_ascii, Axis};

/// Run the command.
pub fn run(args: &ArgMap, _tracer: &Tracer) -> TractoResult<()> {
    args.reject_unknown(&["volume", "axis"])?;
    let path = PathBuf::from(args.required("volume")?);
    let axis = match args.get("axis").unwrap_or("z") {
        "x" | "X" => Axis::X,
        "y" | "Y" => Axis::Y,
        "z" | "Z" => Axis::Z,
        other => {
            return Err(TractoError::config(format!(
                "--axis: expected x|y|z, got `{other}`"
            )))
        }
    };
    let mut f = BufReader::new(
        File::open(&path).map_err(|e| TractoError::io(format!("open {}", path.display()), e))?,
    );
    let vol = read_volume3(&mut f)
        .map_err(|e| TractoError::format_with(format!("read {}", path.display()), e))?;
    let dims = vol.dims();
    let (lo, hi) = vol.min_max().unwrap_or((0.0, 0.0));
    println!(
        "{} — {}×{}×{}, range [{:.4}, {:.4}], MIP along {:?}:",
        path.display(),
        dims.nx,
        dims.ny,
        dims.nz,
        lo,
        hi,
        axis
    );
    print!("{}", mip_ascii(&vol, axis));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracto_volume::io::write_volume3;
    use tracto_volume::{Dim3, Ijk, Volume3};

    #[test]
    fn renders_stored_volume() {
        let dir = std::env::temp_dir().join(format!("tracto_cli_render_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut v = Volume3::filled(Dim3::new(4, 4, 2), 0.0f32);
        v.set(Ijk::new(2, 2, 1), 1.0);
        let path = dir.join("vol.trv3");
        let mut f = std::io::BufWriter::new(File::create(&path).unwrap());
        write_volume3(&mut f, &v).unwrap();
        drop(f);
        let args = crate::args::ArgMap::parse(&[
            "--volume".to_string(),
            path.to_str().unwrap().to_string(),
            "--axis".to_string(),
            "z".to_string(),
        ])
        .unwrap();
        run(&args, &Tracer::disabled()).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_axis_rejected() {
        let args = crate::args::ArgMap::parse(&[
            "--volume".to_string(),
            "x.trv3".to_string(),
            "--axis".to_string(),
            "w".to_string(),
        ])
        .unwrap();
        assert!(run(&args, &Tracer::disabled())
            .unwrap_err()
            .to_string()
            .contains("--axis"));
    }

    #[test]
    fn missing_file_reported() {
        let args = crate::args::ArgMap::parse(&[
            "--volume".to_string(),
            "/nonexistent/v.trv3".to_string(),
        ])
        .unwrap();
        assert!(run(&args, &Tracer::disabled()).is_err());
    }
}
