//! A tiny `--flag value` / `--flag` argument parser (no external crates).

use std::collections::BTreeMap;

/// Parsed flags: `--key value` pairs plus bare `--switch`es.
#[derive(Debug, Clone, Default)]
pub struct ArgMap {
    values: BTreeMap<String, String>,
    switches: Vec<String>,
}

impl ArgMap {
    /// Parse a flat argument list. Every token must be `--name` optionally
    /// followed by a non-flag value.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut map = ArgMap::default();
        let mut i = 0;
        while i < args.len() {
            let tok = &args[i];
            let Some(name) = tok.strip_prefix("--") else {
                return Err(format!("unexpected positional argument `{tok}`"));
            };
            if name.is_empty() {
                return Err("empty flag `--`".into());
            }
            if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                map.values.insert(name.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                map.switches.push(name.to_string());
                i += 1;
            }
        }
        Ok(map)
    }

    /// A required string flag.
    pub fn required(&self, name: &str) -> Result<&str, String> {
        self.values
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required flag --{name}"))
    }

    /// An optional string flag.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// Optional flag parsed to a type, with default.
    pub fn get_parse<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.values.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("flag --{name}: cannot parse `{v}`")),
        }
    }

    /// Whether a bare switch was given.
    pub fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_pairs_and_switches() {
        let a = ArgMap::parse(&strs(&["--out", "dir", "--gpu", "--scale", "0.5"])).unwrap();
        assert_eq!(a.required("out").unwrap(), "dir");
        assert!(a.switch("gpu"));
        assert_eq!(a.get_parse("scale", 1.0).unwrap(), 0.5);
        assert!(!a.switch("cpu"));
    }

    #[test]
    fn rejects_positional() {
        assert!(ArgMap::parse(&strs(&["oops"])).is_err());
    }

    #[test]
    fn missing_required_reported() {
        let a = ArgMap::parse(&strs(&[])).unwrap();
        assert!(a.required("data").unwrap_err().contains("--data"));
    }

    #[test]
    fn bad_parse_reported() {
        let a = ArgMap::parse(&strs(&["--n", "abc"])).unwrap();
        assert!(a.get_parse("n", 0usize).is_err());
    }

    #[test]
    fn default_used_when_absent() {
        let a = ArgMap::parse(&strs(&[])).unwrap();
        assert_eq!(a.get_parse("n", 7usize).unwrap(), 7);
    }

    #[test]
    fn negative_numbers_are_values() {
        // A value starting with '-' but not '--' is accepted as a value.
        let a = ArgMap::parse(&strs(&["--offset", "-3.5"])).unwrap();
        assert_eq!(a.get_parse("offset", 0.0).unwrap(), -3.5);
    }
}
