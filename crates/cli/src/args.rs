//! A tiny `--flag value` / `--flag` argument parser (no external crates).

use std::collections::BTreeMap;
use tracto_trace::{TractoError, TractoResult};

/// Flags accepted by every subcommand (stripped by the top-level driver).
pub const GLOBAL_FLAGS: [&str; 2] = ["trace", "trace-stderr"];

/// Parsed flags: `--key value` pairs plus bare `--switch`es.
#[derive(Debug, Clone, Default)]
pub struct ArgMap {
    values: BTreeMap<String, String>,
    switches: Vec<String>,
}

impl ArgMap {
    /// Parse a flat argument list. Every token must be `--name` optionally
    /// followed by a non-flag value.
    pub fn parse(args: &[String]) -> TractoResult<Self> {
        let mut map = ArgMap::default();
        let mut i = 0;
        while i < args.len() {
            let tok = &args[i];
            let Some(name) = tok.strip_prefix("--") else {
                return Err(TractoError::config(format!(
                    "unexpected positional argument `{tok}`"
                )));
            };
            if name.is_empty() {
                return Err(TractoError::config("empty flag `--`"));
            }
            if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                map.values.insert(name.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                map.switches.push(name.to_string());
                i += 1;
            }
        }
        Ok(map)
    }

    /// A required string flag.
    pub fn required(&self, name: &str) -> TractoResult<&str> {
        self.values
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| TractoError::config(format!("missing required flag --{name}")))
    }

    /// An optional string flag.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// Optional flag parsed to a type, with default.
    pub fn get_parse<T: std::str::FromStr>(&self, name: &str, default: T) -> TractoResult<T> {
        match self.values.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| TractoError::config(format!("flag --{name}: cannot parse `{v}`"))),
        }
    }

    /// Whether a bare switch was given.
    pub fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// Reject any flag outside `valid` (the [`GLOBAL_FLAGS`] are always
    /// accepted). The error lists what the subcommand does accept.
    pub fn reject_unknown(&self, valid: &[&str]) -> TractoResult<()> {
        let known = |name: &str| valid.contains(&name) || GLOBAL_FLAGS.contains(&name);
        let unknown: Vec<&str> = self
            .values
            .keys()
            .map(String::as_str)
            .chain(self.switches.iter().map(String::as_str))
            .filter(|name| !known(name))
            .collect();
        if unknown.is_empty() {
            return Ok(());
        }
        let mut accepted: Vec<&str> = valid.iter().chain(GLOBAL_FLAGS.iter()).copied().collect();
        accepted.sort_unstable();
        let accepted: Vec<String> = accepted.iter().map(|f| format!("--{f}")).collect();
        Err(TractoError::config(format!(
            "unknown flag --{} (valid flags: {})",
            unknown[0],
            accepted.join(", ")
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracto_trace::ErrorKind;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_pairs_and_switches() {
        let a = ArgMap::parse(&strs(&["--out", "dir", "--gpu", "--scale", "0.5"])).unwrap();
        assert_eq!(a.required("out").unwrap(), "dir");
        assert!(a.switch("gpu"));
        assert_eq!(a.get_parse("scale", 1.0).unwrap(), 0.5);
        assert!(!a.switch("cpu"));
    }

    #[test]
    fn rejects_positional() {
        let err = ArgMap::parse(&strs(&["oops"])).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Config);
    }

    #[test]
    fn missing_required_reported() {
        let a = ArgMap::parse(&strs(&[])).unwrap();
        let err = a.required("data").unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Config);
        assert!(err.to_string().contains("--data"));
    }

    #[test]
    fn bad_parse_reported() {
        let a = ArgMap::parse(&strs(&["--n", "abc"])).unwrap();
        let err = a.get_parse("n", 0usize).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Config);
    }

    #[test]
    fn default_used_when_absent() {
        let a = ArgMap::parse(&strs(&[])).unwrap();
        assert_eq!(a.get_parse("n", 7usize).unwrap(), 7);
    }

    #[test]
    fn negative_numbers_are_values() {
        // A value starting with '-' but not '--' is accepted as a value.
        let a = ArgMap::parse(&strs(&["--offset", "-3.5"])).unwrap();
        assert_eq!(a.get_parse("offset", 0.0).unwrap(), -3.5);
    }

    #[test]
    fn unknown_flags_rejected_with_listing() {
        let a = ArgMap::parse(&strs(&["--out", "dir", "--frobnicate"])).unwrap();
        let err = a.reject_unknown(&["out", "scale"]).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Config);
        let text = err.to_string();
        assert!(text.contains("--frobnicate"));
        assert!(text.contains("--out") && text.contains("--scale"));
    }

    #[test]
    fn global_trace_flags_always_accepted() {
        let a = ArgMap::parse(&strs(&[
            "--out",
            "dir",
            "--trace",
            "t.jsonl",
            "--trace-stderr",
        ]))
        .unwrap();
        a.reject_unknown(&["out"]).unwrap();
    }
}
