//! `tracto` binary entry point.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(tracto_cli::run(&args));
}
