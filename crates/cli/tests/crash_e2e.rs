//! Kill-the-process end-to-end test: a real `tracto serve --listen
//! --state-dir` server is SIGKILLed at randomized points mid-batch,
//! restarted over the same state dir, and every job submitted before the
//! first crash must still complete — with results bit-identical to an
//! uninterrupted run of the same specs.
//!
//! The kill schedule is seeded (`TRACTO_CHAOS_SEED`, default 1) so a
//! failing timing can be replayed exactly.

use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_tracto");

/// How many SIGKILL/restart cycles the chaos run performs.
const CRASHES: usize = 3;

fn tmp(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("tracto_crash_e2e_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Deterministic kill-point schedule: an LCG over the chaos seed.
struct Lcg(u64);

impl Lcg {
    fn from_env() -> Self {
        let seed = std::env::var("TRACTO_CHAOS_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(1u64);
        Lcg(seed.wrapping_mul(0x9e3779b97f4a7c15).max(1))
    }

    fn next_delay_ms(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        60 + (self.0 >> 33) % 340 // 60..400 ms into the batch
    }
}

fn client(args: &[&str]) -> (i32, String) {
    let out = Command::new(BIN)
        .args(args)
        .stderr(Stdio::piped())
        .output()
        .expect("spawn client");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

struct ServerGuard(Option<Child>);

impl Drop for ServerGuard {
    fn drop(&mut self) {
        if let Some(mut child) = self.0.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

impl ServerGuard {
    /// SIGKILL — no drain, no Drop handlers, no journal compaction.
    fn crash(mut self) {
        let mut child = self.0.take().expect("server running");
        child.kill().expect("SIGKILL server");
        let _ = child.wait();
    }

    /// Release the child from the guard (caller takes over reaping).
    fn release(mut self) -> Child {
        self.0.take().expect("server running")
    }
}

fn start_server(socket: &str, state_dir: &str) -> ServerGuard {
    start_server_with(socket, state_dir, &[])
}

fn start_server_with(socket: &str, state_dir: &str, extra: &[&str]) -> ServerGuard {
    let child = Command::new(BIN)
        .args([
            "serve",
            "--listen",
            socket,
            "--workers",
            "2",
            "--state-dir",
            state_dir,
            "--checkpoint-every",
            "1",
        ])
        .args(extra)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn server");
    // Guard first so a panic below still reaps the child. The previous
    // incarnation's socket file may linger after SIGKILL; the new server
    // replaces it, so wait until a client can actually connect.
    let guard = ServerGuard(Some(child));
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (code, _) = client(&["metrics", "--connect", socket, "--connect-retries", "0"]);
        if code == 0 {
            return guard;
        }
        assert!(Instant::now() < deadline, "server never became reachable");
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// The job recipes under test: three distinct tracking jobs (distinct MCMC
/// seeds, so distinct cache keys and real per-job estimation work).
fn spec_flags(seed: u32) -> Vec<String> {
    [
        "--dataset",
        "single",
        "--scale",
        "0.05",
        "--snr",
        "none",
        "--samples",
        "2",
        "--burnin",
        "30",
        "--interval",
        "1",
        "--max-steps",
        "60",
    ]
    .iter()
    .map(|s| s.to_string())
    .chain(["--seed".to_string(), seed.to_string()])
    .collect()
}

const SEEDS: [u32; 3] = [9, 10, 11];

fn digest_of(stdout: &str) -> String {
    let at = stdout.find("digest ").expect("digest in output");
    stdout[at + 7..at + 23].to_string()
}

/// Run every spec against an uninterrupted server and return its digests.
fn reference_digests(dir: &std::path::Path) -> Vec<String> {
    let socket = dir.join("ref.sock");
    let socket = socket.to_str().unwrap();
    let state = dir.join("ref-state");
    let server = start_server(socket, state.to_str().unwrap());
    let digests = SEEDS
        .iter()
        .map(|&seed| {
            let mut args = vec!["submit".to_string(), "--connect".into(), socket.into()];
            args.extend(spec_flags(seed));
            let argv: Vec<&str> = args.iter().map(String::as_str).collect();
            let (code, out) = client(&argv);
            assert_eq!(code, 0, "reference submit failed: {out}");
            digest_of(&out)
        })
        .collect();
    drop(server);
    digests
}

/// Counters pulled out of `tracto metrics` output:
/// `(submitted, deadline_hits, sheds, demotions, rate_limited)`.
fn overload_counters(metrics: &str) -> (u64, u64, u64, u64, u64) {
    let field = |line_tag: &str, suffix: &str| -> u64 {
        let line = metrics
            .lines()
            .find(|l| l.starts_with(line_tag))
            .unwrap_or_else(|| panic!("no `{line_tag}` line in: {metrics}"));
        let at = line
            .find(suffix)
            .unwrap_or_else(|| panic!("no `{suffix}` in: {line}"));
        line[..at]
            .rsplit([' ', ',', ':'])
            .find(|t| !t.is_empty())
            .and_then(|t| t.parse().ok())
            .unwrap_or_else(|| panic!("no count before `{suffix}` in: {line}"))
    };
    (
        field("jobs:", " submitted"),
        field("overload:", " deadline hits"),
        field("overload:", " sheds"),
        field("overload:", " demotions"),
        field("overload:", " rate limited"),
    )
}

/// A `kill -9` in the middle of an overload storm must not lose or
/// double-settle the persisted SLO counters: the restarted incarnation
/// seeds from the sidecar, so every counter reads at least what a client
/// observed over RPC before the crash.
#[test]
fn overload_counters_stay_monotone_across_a_kill_mid_storm() {
    let dir = tmp("storm");
    let socket = dir.join("storm.sock");
    let socket = socket.to_str().unwrap();
    let state = dir.join("storm-state");
    let state = state.to_str().unwrap();
    // A tight rate limit guarantees the ladder is active from the first
    // burst; the deadline arms the hit/shed counters too.
    let server = start_server_with(
        socket,
        state,
        &["--rate-limit", "15", "--approx-low", "true"],
    );

    let mut storm = Command::new(BIN)
        .args([
            "loadgen",
            "--connect",
            socket,
            "--requests",
            "400",
            "--rate",
            "50",
            "--arrivals",
            "uniform",
            "--repeat",
            "0.9",
            "--distinct",
            "3",
            "--priorities",
            "low:1,high:1",
            "--deadline-ms",
            "2000",
            "--scale",
            "0.05",
            "--samples",
            "2",
            "--burnin",
            "30",
            "--timeout-ms",
            "30000",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn loadgen storm");

    // Observe the counters mid-storm: wait until the ladder has provably
    // fired (sheds or rate limits) and work has settled (submissions).
    let deadline = Instant::now() + Duration::from_secs(30);
    let observed = loop {
        let (code, out) = client(&["metrics", "--connect", socket]);
        assert_eq!(code, 0, "metrics poll failed: {out}");
        let counters = overload_counters(&out);
        if counters.0 > 20 && (counters.2 + counters.4) > 0 {
            break counters;
        }
        assert!(
            Instant::now() < deadline,
            "the storm never tripped the overload ladder: {out}"
        );
        std::thread::sleep(Duration::from_millis(50));
    };

    // Die mid-storm, with submissions still arriving.
    std::thread::sleep(Duration::from_millis(120));
    server.crash();
    let _ = storm.kill();
    let _ = storm.wait();

    // The restarted incarnation seeds its counters from the sidecar:
    // nothing a client already saw may be lost.
    let server = start_server_with(
        socket,
        state,
        &["--rate-limit", "15", "--approx-low", "true"],
    );
    let (code, out) = client(&["metrics", "--connect", socket]);
    assert_eq!(code, 0, "post-restart metrics failed: {out}");
    let after = overload_counters(&out);
    assert!(
        after.0 >= observed.0,
        "submitted regressed across the crash: {after:?} < {observed:?}"
    );
    assert!(
        after.1 >= observed.1,
        "deadline hits regressed: {after:?} < {observed:?}"
    );
    assert!(
        after.2 >= observed.2,
        "sheds regressed: {after:?} < {observed:?}"
    );
    assert!(
        after.3 >= observed.3,
        "demotions regressed: {after:?} < {observed:?}"
    );
    assert!(
        after.4 >= observed.4,
        "rate limits regressed: {after:?} < {observed:?}"
    );

    let (code, _) = client(&["shutdown", "--connect", socket]);
    assert_eq!(code, 0);
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn killed_server_recovers_every_job_bit_identically() {
    let dir = tmp("kill");
    let reference = reference_digests(&dir);

    let socket = dir.join("chaos.sock");
    let socket = socket.to_str().unwrap();
    let state = dir.join("chaos-state");
    let state = state.to_str().unwrap();
    let mut schedule = Lcg::from_env();

    // Incarnation 0: accept the whole batch, then die mid-flight.
    let mut server = start_server(socket, state);
    let mut jobs = Vec::new();
    for &seed in &SEEDS {
        let mut args = vec![
            "submit".to_string(),
            "--connect".into(),
            socket.into(),
            "--no-wait".into(),
        ];
        args.extend(spec_flags(seed));
        let argv: Vec<&str> = args.iter().map(String::as_str).collect();
        let (code, out) = client(&argv);
        assert_eq!(code, 0, "chaos submit failed: {out}");
        let id: u64 = out
            .trim()
            .rsplit(' ')
            .next()
            .and_then(|t| t.parse().ok())
            .unwrap_or_else(|| panic!("no job id in {out:?}"));
        jobs.push((id, seed));
    }

    for _ in 0..CRASHES {
        let delay = schedule.next_delay_ms();
        std::thread::sleep(Duration::from_millis(delay));
        server.crash();
        // Same state dir: the journal's dead lock is stolen, unfinished
        // jobs re-enqueue under their original ids, and any mid-run MCMC
        // checkpoint resumes bit-identically.
        server = start_server(socket, state);
    }

    // Every job submitted to incarnation 0 must finish. A job that
    // completed entirely within an earlier incarnation has left the
    // journal, so its id is gone after the next restart — re-submitting
    // the identical recipe must then reproduce the same digest (that is
    // the determinism the cache and journal both key on).
    for (i, &(id, seed)) in jobs.iter().enumerate() {
        let id_str = id.to_string();
        let (code, out) = client(&[
            "await",
            "--connect",
            socket,
            "--job",
            &id_str,
            "--timeout-ms",
            "120000",
            "--connect-retries",
            "10",
            "--connect-backoff-ms",
            "50",
        ]);
        let digest = if code == 0 {
            digest_of(&out)
        } else {
            let mut args = vec!["submit".to_string(), "--connect".into(), socket.into()];
            args.extend(spec_flags(seed));
            let argv: Vec<&str> = args.iter().map(String::as_str).collect();
            let (code, out) = client(&argv);
            assert_eq!(code, 0, "post-crash resubmit failed: {out}");
            digest_of(&out)
        };
        assert_eq!(
            digest, reference[i],
            "job {id} (seed {seed}) must match the uninterrupted run"
        );
    }

    let (code, out) = client(&["shutdown", "--connect", socket]);
    assert_eq!(code, 0, "shutdown failed: {out}");
    drop(server);

    // The journal settles: a fresh incarnation over the same state dir has
    // nothing to recover (no "recovered" line on stdout).
    let probe = Command::new(BIN)
        .args(["serve", "--listen", socket, "--state-dir", state])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn probe server");
    let probe = ServerGuard(Some(probe));
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (code, _) = client(&["metrics", "--connect", socket, "--connect-retries", "0"]);
        if code == 0 {
            break;
        }
        assert!(Instant::now() < deadline, "probe server never bound");
        std::thread::sleep(Duration::from_millis(25));
    }
    let (code, _) = client(&["shutdown", "--connect", socket]);
    assert_eq!(code, 0);
    let out = probe
        .release()
        .wait_with_output()
        .expect("probe server exit");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        !stdout.contains("recovered"),
        "settled journal must recover nothing, got: {stdout}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
