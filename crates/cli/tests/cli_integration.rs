//! End-to-end CLI tests driving `tracto_cli::run` the way `main` does,
//! with the global `--trace` flag writing a JSON-lines event log.

use tracto_trace::json::{self, Json};

fn tmp(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("tracto_cli_it_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn run(args: &[&str]) -> i32 {
    let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    tracto_cli::run(&argv)
}

#[test]
fn track_with_trace_writes_parseable_json_lines() {
    let root = tmp("trace");
    let data = root.join("data");
    let out = root.join("tract");
    let trace = root.join("out.jsonl");

    assert_eq!(
        run(&[
            "phantom",
            "--out",
            data.to_str().unwrap(),
            "--dataset",
            "single",
            "--scale",
            "0.05",
            "--snr",
            "none",
        ]),
        0
    );
    assert_eq!(
        run(&[
            "track",
            "--data",
            data.to_str().unwrap(),
            "--cache-dir",
            root.join("cache").to_str().unwrap(),
            "--out",
            out.to_str().unwrap(),
            "--max-steps",
            "100",
            "--est-samples",
            "2",
            "--est-burnin",
            "30",
            "--est-interval",
            "1",
            "--trace",
            trace.to_str().unwrap(),
        ]),
        0
    );

    let text = std::fs::read_to_string(&trace).expect("trace file written");
    let mut names = Vec::new();
    for line in text.lines() {
        let event = json::parse(line).expect("every trace line parses as JSON");
        let name = event
            .get("name")
            .and_then(Json::as_str)
            .expect("event has a name")
            .to_string();
        assert!(event.get("seq").is_some(), "event has a sequence number");
        assert!(event.get("t_ns").is_some(), "event has a timestamp");
        names.push(name);
    }
    // The command span wraps everything; the simulated GPU emits at least
    // one launch per kernel; the disk cache misses on a cold run.
    assert!(names.iter().any(|n| n == "cli.command"));
    assert!(names.iter().any(|n| n == "gpu.launch"));
    assert!(names.iter().any(|n| n == "serve.disk_cache_miss"));
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn corrupt_dataset_exits_with_typed_error_and_trace_event() {
    let root = tmp("corrupt");
    let data = root.join("data");
    let trace = root.join("err.jsonl");
    assert_eq!(
        run(&[
            "phantom",
            "--out",
            data.to_str().unwrap(),
            "--dataset",
            "single",
            "--scale",
            "0.05",
        ]),
        0
    );
    // Truncate the stored DWI volume so loading fails mid-payload.
    let dwi = data.join("dwi.trv4");
    let bytes = std::fs::read(&dwi).unwrap();
    std::fs::write(&dwi, &bytes[..bytes.len() / 3]).unwrap();

    let code = run(&[
        "info",
        "--data",
        data.to_str().unwrap(),
        "--trace",
        trace.to_str().unwrap(),
    ]);
    assert_eq!(code, 1, "corrupt dataset is an error, not a panic");

    let text = std::fs::read_to_string(&trace).unwrap();
    let error_event = text
        .lines()
        .map(|l| json::parse(l).unwrap())
        .find(|e| e.get("name").and_then(Json::as_str) == Some("cli.error"))
        .expect("cli.error event recorded");
    let fields = error_event.get("fields").expect("fields object");
    assert_eq!(fields.get("kind").and_then(Json::as_str), Some("format"));
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn unknown_flag_fails_fast() {
    assert_eq!(run(&["info", "--data", "x", "--frobnicate"]), 1);
}
