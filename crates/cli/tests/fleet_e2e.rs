//! Host-death end-to-end test for fleet mode: two real `tracto serve`
//! member processes behind a `tracto fleet` coordinator process, one
//! member SIGKILLed mid-batch at a seeded point. Every job accepted by
//! the coordinator must still complete — bit-identically to a fault-free
//! single-host run of the same specs — and repeat submissions of a
//! cached job must land on the surviving member's warm sample cache.
//!
//! The kill schedule is seeded (`TRACTO_CHAOS_SEED`, default 1) so a
//! failing timing can be replayed exactly.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_tracto");

fn tmp(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("tracto_fleet_e2e_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Deterministic kill-point schedule: an LCG over the chaos seed.
struct Lcg(u64);

impl Lcg {
    fn from_env() -> Self {
        let seed = std::env::var("TRACTO_CHAOS_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(1u64);
        Lcg(seed.wrapping_mul(0x9e3779b97f4a7c15).max(1))
    }

    fn next_delay_ms(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        60 + (self.0 >> 33) % 340 // 60..400 ms into the batch
    }
}

fn client(args: &[&str]) -> (i32, String) {
    let out = Command::new(BIN)
        .args(args)
        .stderr(Stdio::piped())
        .output()
        .expect("spawn client");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

struct ProcGuard(Option<Child>);

impl Drop for ProcGuard {
    fn drop(&mut self) {
        if let Some(mut child) = self.0.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

impl ProcGuard {
    /// SIGKILL — no drain, no Drop handlers, no journal compaction.
    fn crash(mut self) {
        let mut child = self.0.take().expect("process running");
        child.kill().expect("SIGKILL process");
        let _ = child.wait();
    }
}

/// Block until `tracto ping` succeeds against `socket` (the satellite
/// heartbeat verb doubles as the readiness probe here).
fn wait_ready(socket: &str) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (code, _) = client(&["ping", "--connect", socket, "--connect-retries", "0"]);
        if code == 0 {
            return;
        }
        assert!(Instant::now() < deadline, "{socket} never became reachable");
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Start one fleet member: a plain `serve --listen` with a member name, a
/// journal, and (optionally) replication to its standby.
fn start_member(dir: &Path, name: &str, replicate_to: Option<&str>) -> (ProcGuard, String) {
    let socket = dir.join(format!("{name}.sock"));
    let socket = socket.to_str().unwrap().to_string();
    let state = dir.join(format!("{name}-state"));
    let mut args = vec![
        "serve".to_string(),
        "--listen".into(),
        socket.clone(),
        "--workers".into(),
        "2".into(),
        "--member".into(),
        name.to_string(),
        "--state-dir".into(),
        state.to_str().unwrap().to_string(),
        "--checkpoint-every".into(),
        "1".into(),
    ];
    if let Some(target) = replicate_to {
        args.extend(["--replicate-to".to_string(), target.to_string()]);
    }
    let child = Command::new(BIN)
        .args(&args)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn member");
    let guard = ProcGuard(Some(child));
    wait_ready(&socket);
    (guard, socket)
}

fn start_coordinator(dir: &Path, members: &str) -> (ProcGuard, String) {
    let socket = dir.join("fleet.sock");
    let socket = socket.to_str().unwrap().to_string();
    let child = Command::new(BIN)
        .args([
            "fleet",
            "--listen",
            &socket,
            "--members",
            members,
            "--heartbeat-ms",
            "100",
            "--max-misses",
            "2",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn coordinator");
    let guard = ProcGuard(Some(child));
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (code, _) = client(&[
            "fleet-status",
            "--connect",
            &socket,
            "--connect-retries",
            "0",
        ]);
        if code == 0 {
            return (guard, socket);
        }
        assert!(
            Instant::now() < deadline,
            "coordinator never became reachable"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// The job recipes under test: distinct MCMC seeds, so distinct cache
/// keys, distinct placement keys, and real per-job estimation work.
fn spec_flags(seed: u32) -> Vec<String> {
    [
        "--dataset",
        "single",
        "--scale",
        "0.05",
        "--snr",
        "none",
        "--samples",
        "2",
        "--burnin",
        "30",
        "--interval",
        "1",
        "--max-steps",
        "60",
    ]
    .iter()
    .map(|s| s.to_string())
    .chain(["--seed".to_string(), seed.to_string()])
    .collect()
}

const SEEDS: [u32; 4] = [20, 21, 22, 23];

fn digest_of(stdout: &str) -> String {
    let at = stdout.find("digest ").expect("digest in output");
    stdout[at + 7..at + 23].to_string()
}

fn submit(socket: &str, seed: u32, extra: &[&str]) -> (i32, String) {
    let mut args = vec!["submit".to_string(), "--connect".into(), socket.into()];
    args.extend(extra.iter().map(|s| s.to_string()));
    args.extend(spec_flags(seed));
    let argv: Vec<&str> = args.iter().map(String::as_str).collect();
    client(&argv)
}

/// Run every spec against one uninterrupted single-host server and return
/// its digests — the bit-identity reference for the fleet run.
fn reference_digests(dir: &Path) -> Vec<String> {
    let (server, socket) = start_member(dir, "ref", None);
    let digests = SEEDS
        .iter()
        .map(|&seed| {
            let (code, out) = submit(&socket, seed, &[]);
            assert_eq!(code, 0, "reference submit failed: {out}");
            digest_of(&out)
        })
        .collect();
    drop(server);
    digests
}

#[test]
fn fleet_survives_member_sigkill_bit_identically() {
    let dir = tmp("kill");
    let reference = reference_digests(&dir);

    // b is the standby: a streams its journal to b, so killing a leaves b
    // holding everything it needs to adopt a's unfinished jobs.
    let (b, b_sock) = start_member(&dir, "b", None);
    let (a, a_sock) = start_member(&dir, "a", Some(&b_sock));
    let (coordinator, fleet_sock) = start_coordinator(&dir, &format!("a={a_sock},b={b_sock}"));

    // The fleet coordinator answers the heartbeat verb too.
    let (code, out) = client(&["ping", "--connect", &fleet_sock]);
    assert_eq!(code, 0, "ping coordinator: {out}");
    assert!(
        out.contains("fleet"),
        "coordinator ping names itself: {out}"
    );

    // Accept the whole batch through the coordinator, then kill a at a
    // seeded point mid-flight.
    let mut jobs = Vec::new();
    for &seed in &SEEDS {
        let (code, out) = submit(&fleet_sock, seed, &["--no-wait"]);
        assert_eq!(code, 0, "fleet submit failed: {out}");
        let id: u64 = out
            .trim()
            .rsplit(' ')
            .next()
            .and_then(|t| t.parse().ok())
            .unwrap_or_else(|| panic!("no job id in {out:?}"));
        jobs.push((id, seed));
    }
    let delay = Lcg::from_env().next_delay_ms();
    std::thread::sleep(Duration::from_millis(delay));
    a.crash();

    // Await every accepted job through the one coordinator endpoint. The
    // monitor needs a few heartbeats to declare a dead and hand its jobs
    // to b, so the await timeout is generous; re-routed work restarts
    // from a's last replicated checkpoint (losing at most one interval),
    // and bit-identity must hold regardless.
    for (i, &(id, seed)) in jobs.iter().enumerate() {
        let id_str = id.to_string();
        let (code, out) = client(&[
            "await",
            "--connect",
            &fleet_sock,
            "--job",
            &id_str,
            "--timeout-ms",
            "180000",
        ]);
        assert_eq!(code, 0, "await job {id} (seed {seed}) failed: {out}");
        assert_eq!(
            digest_of(&out),
            reference[i],
            "job {id} (seed {seed}) must match the fault-free single-host run"
        );
    }

    // The coordinator has recorded the death and the takeover.
    let (code, out) = client(&["fleet-status", "--connect", &fleet_sock]);
    assert_eq!(code, 0, "fleet-status: {out}");
    assert!(out.contains("1 takeover(s)"), "takeover recorded: {out}");

    // Repeat submission of a finished job: routes to the survivor, whose
    // Step-1 sample cache is warm from the post-takeover run.
    let (code, out) = submit(&fleet_sock, SEEDS[0], &[]);
    assert_eq!(code, 0, "repeat submit failed: {out}");
    assert_eq!(digest_of(&out), reference[0]);
    assert!(out.contains("cache_hit=true"), "warm-cache repeat: {out}");
    let (code, out) = client(&["metrics", "--connect", &b_sock]);
    assert_eq!(code, 0, "member metrics: {out}");
    let hits: u64 = out
        .lines()
        .find_map(|l| l.split("cache ").nth(1))
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|n| n.parse().ok())
        .unwrap_or_else(|| panic!("no cache hits in {out:?}"));
    assert!(
        hits >= 1,
        "survivor must have served a warm-cache hit: {out}"
    );

    let (code, out) = client(&["shutdown", "--connect", &fleet_sock]);
    assert_eq!(code, 0, "fleet shutdown failed: {out}");
    drop(coordinator);
    drop(b);
    let _ = std::fs::remove_dir_all(&dir);
}
