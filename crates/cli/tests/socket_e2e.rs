//! Two-process end-to-end test: a real `tracto serve --listen` server
//! process driven by real `tracto submit/status/metrics/shutdown` client
//! invocations over a Unix socket.

use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_tracto");

fn tmp(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("tracto_sock_e2e_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Run a client command against the server, returning (exit code, stdout).
fn client(args: &[&str]) -> (i32, String) {
    let out = Command::new(BIN)
        .args(args)
        .stderr(Stdio::piped())
        .output()
        .expect("spawn client");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

/// Kills the server on drop so a failing test doesn't leak a process.
struct ServerGuard(Option<Child>);

impl ServerGuard {
    fn wait(mut self) -> std::process::ExitStatus {
        let mut child = self.0.take().expect("server still running");
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            if let Some(status) = child.try_wait().expect("try_wait") {
                return status;
            }
            if Instant::now() > deadline {
                let _ = child.kill();
                panic!("server did not exit after shutdown request");
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}

impl Drop for ServerGuard {
    fn drop(&mut self) {
        if let Some(mut child) = self.0.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

fn start_server(socket: &str) -> ServerGuard {
    start_server_with(socket, &[])
}

fn start_server_with(socket: &str, extra: &[&str]) -> ServerGuard {
    let child = Command::new(BIN)
        .args(["serve", "--listen", socket, "--workers", "2"])
        .args(extra)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn server");
    let deadline = Instant::now() + Duration::from_secs(60);
    while !std::path::Path::new(socket).exists() {
        assert!(Instant::now() < deadline, "server never bound {socket}");
        std::thread::sleep(Duration::from_millis(20));
    }
    ServerGuard(Some(child))
}

/// Open descriptors in the server process (Linux procfs).
fn server_fds(server: &ServerGuard) -> usize {
    let pid = server.0.as_ref().expect("server running").id();
    std::fs::read_dir(format!("/proc/{pid}/fd"))
        .map(|d| d.count())
        .unwrap_or(0)
}

fn digest_of(stdout: &str) -> &str {
    let at = stdout.find("digest ").expect("digest in output");
    &stdout[at + 7..at + 23]
}

#[test]
fn socket_round_trip_across_processes() {
    let dir = tmp("rt");
    let socket = dir.join("tracto.sock");
    let socket = socket.to_str().unwrap();
    let server = start_server(socket);

    let job = [
        "submit",
        "--connect",
        socket,
        "--dataset",
        "single",
        "--scale",
        "0.05",
        "--snr",
        "none",
        "--samples",
        "2",
        "--burnin",
        "30",
        "--interval",
        "1",
        "--seed",
        "9",
        "--max-steps",
        "60",
    ];
    let (code, out) = client(&job);
    assert_eq!(code, 0, "submit failed: {out}");
    assert!(out.contains("done (track)"), "{out}");
    let first = digest_of(&out).to_string();

    // The identical recipe resubmitted is served from the sample cache and
    // produces a bit-identical length digest.
    let (code, out) = client(&job);
    assert_eq!(code, 0, "resubmit failed: {out}");
    assert!(out.contains("cache_hit=true"), "{out}");
    assert_eq!(digest_of(&out), first, "digest must be deterministic");

    // An estimation job over the same recipe also hits the warm cache.
    let (code, out) = client(&[
        "submit",
        "--connect",
        socket,
        "--estimate",
        "--dataset",
        "single",
        "--scale",
        "0.05",
        "--snr",
        "none",
        "--samples",
        "2",
        "--burnin",
        "30",
        "--interval",
        "1",
        "--seed",
        "9",
    ]);
    assert_eq!(code, 0, "estimate failed: {out}");
    assert!(out.contains("done (estimate)"), "{out}");

    let (code, out) = client(&["metrics", "--connect", socket]);
    assert_eq!(code, 0, "metrics failed: {out}");
    assert!(out.contains("3 remote"), "{out}");
    assert!(out.contains("3 completed"), "{out}");

    // Unknown job ids are typed errors, not crashes.
    let (code, _) = client(&["status", "--connect", socket, "--job", "999"]);
    assert_ne!(code, 0);

    let (code, out) = client(&["shutdown", "--connect", socket]);
    assert_eq!(code, 0, "shutdown failed: {out}");
    let status = server.wait();
    assert!(status.success(), "server exited with {status:?}");
    assert!(!std::path::Path::new(socket).exists(), "socket unlinked");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn upload_and_follow_round_trip_across_processes() {
    let dir = tmp("upload");
    let socket = dir.join("tracto.sock");
    let socket = socket.to_str().unwrap();
    let state = dir.join("state");
    let server = start_server_with(socket, &["--state-dir", state.to_str().unwrap()]);

    // Generate a real stored dataset with the phantom command.
    let data = dir.join("data");
    let (code, out) = client(&[
        "phantom",
        "--out",
        data.to_str().unwrap(),
        "--dataset",
        "single",
        "--scale",
        "0.05",
        "--snr",
        "none",
        "--seed",
        "3",
    ]);
    assert_eq!(code, 0, "phantom failed: {out}");

    // Upload it; the command prints the content hash to submit against.
    let (code, out) = client(&[
        "upload",
        "--connect",
        socket,
        "--data",
        data.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "upload failed: {out}");
    let at = out.find("as volume ").expect("hash in output") + "as volume ".len();
    let hash = out[at..at + 16].to_string();
    assert!(
        hash.bytes().all(|b| b.is_ascii_hexdigit()),
        "bad hash `{hash}` in {out}"
    );

    // Re-uploading is a content-addressed no-op with the same hash.
    let (code, out) = client(&[
        "upload",
        "--connect",
        socket,
        "--data",
        data.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "re-upload failed: {out}");
    assert!(out.contains(&hash), "{out}");

    // Submit against the uploaded volume, following pushed events.
    let job = [
        "submit",
        "--connect",
        socket,
        "--volume",
        &hash,
        "--follow",
        "--samples",
        "2",
        "--burnin",
        "30",
        "--interval",
        "1",
        "--seed",
        "9",
        "--max-steps",
        "60",
    ];
    let (code, out) = client(&job);
    assert_eq!(code, 0, "submit --volume failed: {out}");
    assert!(out.contains("done (track)"), "{out}");
    let first = digest_of(&out).to_string();

    // Resubmitting hits the sample cache and reproduces the digest.
    let (code, out) = client(&job);
    assert_eq!(code, 0, "resubmit failed: {out}");
    assert!(out.contains("cache_hit=true"), "{out}");
    assert_eq!(
        digest_of(&out),
        first,
        "uploaded volume must be deterministic"
    );

    // Connection churn must not leak descriptors in the reactor: after a
    // burst of short-lived clients the server's fd table returns to its
    // baseline.
    let baseline = server_fds(&server);
    assert!(baseline > 0, "procfs fd listing unavailable");
    for _ in 0..20 {
        let (code, _) = client(&["metrics", "--connect", socket]);
        assert_eq!(code, 0);
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let now = server_fds(&server);
        if now <= baseline {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "reactor leaked fds: {baseline} before churn, {now} after"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    let (code, out) = client(&["shutdown", "--connect", socket]);
    assert_eq!(code, 0, "shutdown failed: {out}");
    let status = server.wait();
    assert!(status.success(), "server exited with {status:?}");
    assert!(!std::path::Path::new(socket).exists(), "socket unlinked");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_endpoint_and_dead_socket_fail_cleanly() {
    let (code, _) = client(&["submit", "--connect", "tcp:nohost", "--no-wait"]);
    assert_ne!(code, 0, "malformed endpoint must fail");
    let (code, _) = client(&["metrics", "--connect", "/nonexistent/tracto.sock"]);
    assert_ne!(code, 0, "dead socket must fail");
}
