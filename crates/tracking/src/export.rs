//! Streamline export for the biological-result figures (Figs. 9, 11, 12).

use crate::deterministic::Streamline;
use std::io::Write;

/// Write streamlines as CSV polylines: one row per point,
/// `streamline_id,point_index,x,y,z` (voxel coordinates). Downstream
/// plotting tools (or the examples' summaries) consume this directly.
pub fn write_csv<W: Write>(w: &mut W, streamlines: &[Streamline]) -> std::io::Result<()> {
    writeln!(w, "streamline,point,x,y,z")?;
    for (id, s) in streamlines.iter().enumerate() {
        for (pi, p) in s.points.iter().enumerate() {
            writeln!(w, "{id},{pi},{:.4},{:.4},{:.4}", p.x, p.y, p.z)?;
        }
    }
    Ok(())
}

/// Write streamlines as a Wavefront OBJ file of polylines (`l` elements),
/// loadable by standard 3-D viewers.
pub fn write_obj<W: Write>(w: &mut W, streamlines: &[Streamline]) -> std::io::Result<()> {
    writeln!(w, "# tracto streamlines: {} polylines", streamlines.len())?;
    let mut vertex_base = 1usize; // OBJ indices are 1-based
    for s in streamlines {
        for p in &s.points {
            writeln!(w, "v {:.4} {:.4} {:.4}", p.x, p.y, p.z)?;
        }
        if s.points.len() >= 2 {
            write!(w, "l")?;
            for i in 0..s.points.len() {
                write!(w, " {}", vertex_base + i)?;
            }
            writeln!(w)?;
        }
        vertex_base += s.points.len();
    }
    Ok(())
}

/// Summary statistics of an exported fiber set, printed by the examples in
/// place of the paper's renderings.
#[derive(Debug, Clone, PartialEq)]
pub struct FiberSetSummary {
    /// Number of streamlines.
    pub count: usize,
    /// Total points.
    pub points: usize,
    /// Min/mean/max steps.
    pub min_steps: u32,
    /// Mean steps.
    pub mean_steps: f64,
    /// Max steps.
    pub max_steps: u32,
}

/// Summarize a fiber set.
pub fn summarize(streamlines: &[Streamline]) -> FiberSetSummary {
    let count = streamlines.len();
    let points = streamlines.iter().map(|s| s.points.len()).sum();
    let min_steps = streamlines.iter().map(|s| s.steps).min().unwrap_or(0);
    let max_steps = streamlines.iter().map(|s| s.steps).max().unwrap_or(0);
    let mean_steps = if count == 0 {
        0.0
    } else {
        streamlines.iter().map(|s| s.steps as f64).sum::<f64>() / count as f64
    };
    FiberSetSummary {
        count,
        points,
        min_steps,
        mean_steps,
        max_steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::walker::StopReason;
    use tracto_volume::Vec3;

    fn lines() -> Vec<Streamline> {
        vec![
            Streamline {
                seed_id: 0,
                points: vec![
                    Vec3::ZERO,
                    Vec3::new(1.0, 0.0, 0.0),
                    Vec3::new(2.0, 0.0, 0.0),
                ],
                steps: 2,
                stop: StopReason::MaxSteps,
            },
            Streamline {
                seed_id: 1,
                points: vec![Vec3::new(0.0, 1.0, 0.0), Vec3::new(0.0, 2.0, 0.0)],
                steps: 1,
                stop: StopReason::OutOfBounds,
            },
        ]
    }

    #[test]
    fn csv_rows_per_point() {
        let mut buf = Vec::new();
        write_csv(&mut buf, &lines()).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 1 + 5);
        assert!(text.starts_with("streamline,point,x,y,z"));
        assert!(text.contains("0,2,2.0000,0.0000,0.0000"));
    }

    #[test]
    fn obj_structure() {
        let mut buf = Vec::new();
        write_obj(&mut buf, &lines()).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let vcount = text.lines().filter(|l| l.starts_with("v ")).count();
        let lcount = text.lines().filter(|l| l.starts_with("l ")).count();
        assert_eq!(vcount, 5);
        assert_eq!(lcount, 2);
        // Second polyline's indices continue after the first's vertices.
        assert!(text.contains("l 4 5"));
    }

    #[test]
    fn obj_skips_degenerate_polyline() {
        let one_point = vec![Streamline {
            seed_id: 0,
            points: vec![Vec3::ZERO],
            steps: 0,
            stop: StopReason::NoDirection,
        }];
        let mut buf = Vec::new();
        write_obj(&mut buf, &one_point).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().filter(|l| l.starts_with("l")).count(), 0);
    }

    #[test]
    fn summary_statistics() {
        let s = summarize(&lines());
        assert_eq!(s.count, 2);
        assert_eq!(s.points, 5);
        assert_eq!(s.min_steps, 1);
        assert_eq!(s.max_steps, 2);
        assert!((s.mean_steps - 1.5).abs() < 1e-12);
    }

    #[test]
    fn summary_empty() {
        let s = summarize(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean_steps, 0.0);
    }
}
