//! Pluggable direction getters — the tracking modality layer.
//!
//! The paper's Step 2 is "deterministic streamlining invoked for many
//! times", and everything about *how a step picks its direction* lives
//! behind the object-safe [`DirectionGetter`] trait: the MCMC
//! posterior-sample selection of the original kernel is one implementation
//! ([`PosteriorSampleGetter`]) next to the classical single-tensor
//! baseline ([`TensorlineGetter`]) and the closed-form analytic fast tier
//! ([`AnalyticGetter`](crate::analytic::AnalyticGetter)). The walker, the
//! CPU reference, the simulated-GPU kernel, and the policy layer all step
//! through `&dyn DirectionGetter`, so a new modality is one `impl`, not a
//! fork of the drivers.

use crate::field::{select_direction, InterpMode, OrientationField};
use crate::probabilistic::initial_direction;
use crate::tensorline::TensorField;
use tracto_rng::HybridTaus;
use tracto_trace::{TractoError, TractoResult};
use tracto_volume::{Dim3, Vec3};

/// Which direction getter drives Step 2 — the service's selectable
/// tracking tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Modality {
    /// Probabilistic streamlining over the MCMC posterior sample stack
    /// (the paper's pipeline; the default, bit-identical to the
    /// pre-modality code path).
    #[default]
    Mcmc,
    /// Classical deterministic tensor-line tracking over a per-voxel
    /// tensor fit — one trajectory per seed, no posterior.
    Tensorline,
    /// The closed-form fast tier: deterministic tracking over the
    /// collapsed posterior mean with voxel-sized steps (after Cieslak et
    /// al., *Analytic Tractography*) — an approximate answer at a fraction
    /// of the simulated cost.
    Analytic,
}

impl Modality {
    /// Canonical wire/CLI name.
    pub fn as_str(&self) -> &'static str {
        match self {
            Modality::Mcmc => "mcmc",
            Modality::Tensorline => "tensorline",
            Modality::Analytic => "analytic",
        }
    }

    /// Parse a wire/CLI name.
    pub fn parse(s: &str) -> TractoResult<Self> {
        match s {
            "mcmc" => Ok(Modality::Mcmc),
            "tensorline" => Ok(Modality::Tensorline),
            "analytic" => Ok(Modality::Analytic),
            other => Err(TractoError::config(format!(
                "unknown modality `{other}` (mcmc|tensorline|analytic)"
            ))),
        }
    }

    /// The seed jitter this modality actually uses: the deterministic
    /// tiers (tensorline, analytic) produce exactly one trajectory per
    /// seed, so sub-voxel jitter is forced off.
    pub fn effective_jitter(&self, jitter: f64) -> f64 {
        match self {
            Modality::Mcmc => jitter,
            Modality::Tensorline | Modality::Analytic => 0.0,
        }
    }

    /// All modalities, for conformance matrices.
    pub const ALL: [Modality; 3] = [Modality::Mcmc, Modality::Tensorline, Modality::Analytic];
}

impl std::fmt::Display for Modality {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How one tracking step picks its direction. Object-safe so drivers hold
/// `&dyn DirectionGetter`; implementations must be [`Sync`] because the
/// simulated-GPU kernel steps lanes from rayon workers.
///
/// Deterministic getters ignore `rng`; it is threaded through so
/// stochastic getters (bootstrap, learned) slot in without an API change.
/// Every lane owns its own deterministically-seeded stream
/// ([`lane_rng`]), so a getter that draws stays reproducible and
/// launch-order independent.
pub trait DirectionGetter: Sync {
    /// Grid dimensions (bounds termination is the walker's job).
    fn dims(&self) -> Dim3;

    /// Candidate initial directions at a seed position (empty when the
    /// seed has no eligible fiber population). The first entry is the
    /// canonical choice; bidirectional tracking negates it.
    fn initial_directions(&self, seed: Vec3) -> Vec<Vec3>;

    /// The stepping direction at `pos` given the previous direction, or
    /// `None` when no eligible population remains.
    fn next_direction(&self, pos: Vec3, prev: Vec3, rng: &mut HybridTaus) -> Option<Vec3>;

    /// How many distinct fiber populations this getter can resolve per
    /// voxel (metadata: 2 for the ball-and-two-sticks posterior, 1 for a
    /// single-tensor fit).
    fn peak_count(&self) -> usize {
        1
    }
}

/// Deterministic per-(run, sample, seed) RNG stream for one tracking lane,
/// derived exactly like the seed-jitter stream so lanes never share draws.
/// The built-in getters are deterministic and never consume it.
pub fn lane_rng(run_seed: u64, sample: usize, seed_idx: usize) -> HybridTaus {
    let stream = ((sample as u64) << 40) ^ seed_idx as u64;
    HybridTaus::seed_stream(run_seed ^ 0x6765_7474, stream)
}

/// The original modality: direction selection over an
/// [`OrientationField`] of posterior-sample sticks — nearest/trilinear
/// interpolation plus the paper's multi-fiber "maintain orientation" rule.
/// This is the exact `select_direction` the pre-trait kernel used, so the
/// default tracking path is bit-identical to the pre-modality code.
#[derive(Debug, Clone, Copy)]
pub struct PosteriorSampleGetter<F> {
    field: F,
    interp: InterpMode,
    min_fraction: f64,
}

impl<F: OrientationField> PosteriorSampleGetter<F> {
    /// Wrap a field with the interpolation mode and anisotropy floor that
    /// used to live in `TrackingParams`.
    pub fn new(field: F, interp: InterpMode, min_fraction: f64) -> Self {
        PosteriorSampleGetter {
            field,
            interp,
            min_fraction,
        }
    }

    /// The wrapped field.
    pub fn field(&self) -> &F {
        &self.field
    }
}

impl<F: OrientationField> DirectionGetter for PosteriorSampleGetter<F> {
    fn dims(&self) -> Dim3 {
        self.field.dims()
    }

    fn initial_directions(&self, seed: Vec3) -> Vec<Vec3> {
        initial_direction(&self.field, seed, self.min_fraction)
            .into_iter()
            .collect()
    }

    #[inline]
    fn next_direction(&self, pos: Vec3, prev: Vec3, _rng: &mut HybridTaus) -> Option<Vec3> {
        select_direction(&self.field, pos, prev, self.interp, self.min_fraction)
    }

    fn peak_count(&self) -> usize {
        2
    }
}

/// The classical deterministic baseline as a getter: principal
/// eigenvector of a per-voxel tensor fit, with `min_fraction` acting as
/// the FA termination floor. One peak per voxel, blind to crossings —
/// exactly the failure mode the paper's probabilistic pipeline fixes.
#[derive(Debug, Clone, Copy)]
pub struct TensorlineGetter<'a> {
    inner: PosteriorSampleGetter<&'a TensorField>,
}

impl<'a> TensorlineGetter<'a> {
    /// Wrap a fitted tensor field; `fa_floor` is the classical FA
    /// termination threshold.
    pub fn new(field: &'a TensorField, fa_floor: f64) -> Self {
        TensorlineGetter {
            inner: PosteriorSampleGetter::new(field, InterpMode::Nearest, fa_floor),
        }
    }
}

impl DirectionGetter for TensorlineGetter<'_> {
    fn dims(&self) -> Dim3 {
        self.inner.dims()
    }

    fn initial_directions(&self, seed: Vec3) -> Vec<Vec3> {
        self.inner.initial_directions(seed)
    }

    #[inline]
    fn next_direction(&self, pos: Vec3, prev: Vec3, rng: &mut HybridTaus) -> Option<Vec3> {
        self.inner.next_direction(pos, prev, rng)
    }

    fn peak_count(&self) -> usize {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::FnField;
    use tracto_volume::Ijk;

    fn x_field(dims: Dim3) -> FnField<impl Fn(Ijk) -> [(Vec3, f64); 2] + Sync> {
        FnField::new(dims, |_| [(Vec3::X, 0.6), (Vec3::ZERO, 0.0)])
    }

    #[test]
    fn modality_names_round_trip() {
        for m in Modality::ALL {
            assert_eq!(Modality::parse(m.as_str()).unwrap(), m);
            assert_eq!(format!("{m}"), m.as_str());
        }
        assert!(Modality::parse("deeptract").is_err());
        assert_eq!(Modality::default(), Modality::Mcmc);
    }

    #[test]
    fn deterministic_tiers_force_jitter_off() {
        assert_eq!(Modality::Mcmc.effective_jitter(0.5), 0.5);
        assert_eq!(Modality::Tensorline.effective_jitter(0.5), 0.0);
        assert_eq!(Modality::Analytic.effective_jitter(0.5), 0.0);
    }

    #[test]
    fn posterior_getter_matches_free_functions() {
        let dims = Dim3::new(8, 4, 4);
        let f = x_field(dims);
        let g = PosteriorSampleGetter::new(&f, InterpMode::Nearest, 0.05);
        let mut rng = lane_rng(1, 0, 0);
        let pos = Vec3::new(2.2, 2.0, 2.0);
        assert_eq!(
            g.next_direction(pos, Vec3::X, &mut rng),
            select_direction(&f, pos, Vec3::X, InterpMode::Nearest, 0.05)
        );
        assert_eq!(g.initial_directions(pos), vec![Vec3::X]);
        assert_eq!(g.dims(), dims);
        assert_eq!(g.peak_count(), 2);
    }

    #[test]
    fn getter_is_object_safe() {
        let dims = Dim3::new(4, 4, 4);
        let f = x_field(dims);
        let g = PosteriorSampleGetter::new(&f, InterpMode::Nearest, 0.05);
        let dynamic: &dyn DirectionGetter = &g;
        let mut rng = lane_rng(0, 0, 0);
        assert!(dynamic
            .next_direction(Vec3::new(1.0, 1.0, 1.0), Vec3::X, &mut rng)
            .is_some());
    }

    #[test]
    fn lane_rng_is_per_lane_deterministic() {
        let mut a = lane_rng(7, 3, 11);
        let mut b = lane_rng(7, 3, 11);
        let mut c = lane_rng(7, 3, 12);
        use tracto_rng::RandomSource;
        let (xa, xb, xc) = (a.next_f64(), b.next_f64(), c.next_f64());
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }
}
