//! The paper's kernel-segmentation strategies.
//!
//! A strategy expands to a `NumIterations[]` array: the per-launch iteration
//! budgets of Algorithm 1. The paper's named strategies:
//!
//! | Name | Array |
//! |---|---|
//! | `A_k` | `{k, k, …}` until `MaxStep` is covered (`A_1` = per-step reduction, Mittmann'08; `A_MaxStep` = no segmentation) |
//! | `B` | `{1, 2, 5, 10, 20, 50, 100, 200, 500}` |
//! | `C` | `{1, 1, 2, 2, 5, 5, 10, 10, 20, 20, 50, 50, 100, 100, 200, 200}` |
//! | Table II run | `{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000}` |

/// A kernel segmentation strategy.
///
/// ```
/// use tracto_tracking::SegmentationStrategy;
/// // The paper's Table II array covers MaxStep = 1888 in ten launches.
/// let b = SegmentationStrategy::paper_table2().budgets(1888);
/// assert_eq!(b, vec![1, 2, 5, 10, 20, 50, 100, 200, 500, 1000]);
/// assert_eq!(SegmentationStrategy::Uniform(500).budgets(1200), vec![500, 500, 200]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SegmentationStrategy {
    /// One launch covering `MaxStep` (`A_MaxStep`): minimal overhead,
    /// maximal SIMD imbalance.
    Single,
    /// Launches of a fixed budget `k` (`A_k`); `Uniform(1)` is the paper's
    /// "maximize the segments" extreme (reduction at every advance).
    Uniform(u32),
    /// An explicit increasing-interval array — the paper's contribution.
    Increasing(Vec<u32>),
}

impl SegmentationStrategy {
    /// The paper's strategy `B`.
    pub fn paper_b() -> Self {
        SegmentationStrategy::Increasing(vec![1, 2, 5, 10, 20, 50, 100, 200, 500])
    }

    /// The paper's strategy `C` (each interval doubled up).
    pub fn paper_c() -> Self {
        SegmentationStrategy::Increasing(vec![
            1, 1, 2, 2, 5, 5, 10, 10, 20, 20, 50, 50, 100, 100, 200, 200,
        ])
    }

    /// The increasing-interval array used for Table II
    /// (`{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000}`).
    pub fn paper_table2() -> Self {
        SegmentationStrategy::Increasing(vec![1, 2, 5, 10, 20, 50, 100, 200, 500, 1000])
    }

    /// `A_1`: host reduction after every tracking step.
    pub fn every_step() -> Self {
        SegmentationStrategy::Uniform(1)
    }

    /// Expand to the concrete `NumIterations[]` array whose budgets sum to
    /// at least `max_steps` (the last entry is clamped so the sum equals
    /// `max_steps` exactly). An exhausted `Increasing` array is extended by
    /// repeating its last entry.
    ///
    /// # Panics
    /// On `Uniform(0)` or an empty/zero `Increasing` array.
    pub fn budgets(&self, max_steps: u32) -> Vec<u32> {
        assert!(max_steps > 0, "max_steps must be positive");
        match self {
            SegmentationStrategy::Single => vec![max_steps],
            SegmentationStrategy::Uniform(k) => {
                assert!(*k > 0, "uniform segment size must be positive");
                let mut out = Vec::with_capacity(max_steps.div_ceil(*k) as usize);
                let mut covered = 0;
                while covered < max_steps {
                    let b = (*k).min(max_steps - covered);
                    out.push(b);
                    covered += b;
                }
                out
            }
            SegmentationStrategy::Increasing(arr) => {
                assert!(
                    !arr.is_empty() && arr.iter().all(|&b| b > 0),
                    "increasing array must be nonempty and positive"
                );
                let mut out = Vec::new();
                let mut covered = 0u32;
                let mut i = 0usize;
                while covered < max_steps {
                    let next = arr[i.min(arr.len() - 1)];
                    let b = next.min(max_steps - covered);
                    out.push(b);
                    covered += b;
                    i += 1;
                }
                out
            }
        }
    }

    /// Parse a strategy name as accepted by the CLI and the wire protocol:
    /// `B`, `C`, `single`, `every`, or `uniform:K`.
    pub fn parse(s: &str) -> tracto_trace::TractoResult<Self> {
        use tracto_trace::TractoError;
        match s {
            "B" | "b" => Ok(SegmentationStrategy::paper_table2()),
            "C" | "c" => Ok(SegmentationStrategy::paper_c()),
            "single" => Ok(SegmentationStrategy::Single),
            "every" => Ok(SegmentationStrategy::every_step()),
            other => {
                if let Some(k) = other.strip_prefix("uniform:") {
                    let k: u32 = k.parse().map_err(|_| {
                        TractoError::config(format!("strategy uniform:K: bad K `{k}`"))
                    })?;
                    if k == 0 {
                        return Err(TractoError::config("strategy uniform:K needs K ≥ 1"));
                    }
                    Ok(SegmentationStrategy::Uniform(k))
                } else {
                    Err(TractoError::config(format!(
                        "unknown strategy `{other}` (B|C|single|every|uniform:K)"
                    )))
                }
            }
        }
    }

    /// Display label matching the paper's Table IV row names.
    pub fn label(&self) -> String {
        match self {
            SegmentationStrategy::Single => "A_MaxStep".into(),
            SegmentationStrategy::Uniform(k) => format!("A_{k}"),
            SegmentationStrategy::Increasing(arr) => {
                if *self == Self::paper_b() {
                    "B".into()
                } else if *self == Self::paper_c() {
                    "C".into()
                } else if *self == Self::paper_table2() {
                    "B+1000".into()
                } else {
                    format!("Increasing({} segments)", arr.len())
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_is_one_launch() {
        assert_eq!(SegmentationStrategy::Single.budgets(1000), vec![1000]);
    }

    #[test]
    fn parse_accepts_cli_names_and_rejects_garbage() {
        assert_eq!(
            SegmentationStrategy::parse("B").unwrap(),
            SegmentationStrategy::paper_table2()
        );
        assert_eq!(
            SegmentationStrategy::parse("C").unwrap(),
            SegmentationStrategy::paper_c()
        );
        assert_eq!(
            SegmentationStrategy::parse("single").unwrap(),
            SegmentationStrategy::Single
        );
        assert_eq!(
            SegmentationStrategy::parse("uniform:20").unwrap(),
            SegmentationStrategy::Uniform(20)
        );
        assert!(SegmentationStrategy::parse("uniform:0").is_err());
        assert!(SegmentationStrategy::parse("zig").is_err());
    }

    #[test]
    fn uniform_covers_exactly() {
        let b = SegmentationStrategy::Uniform(100).budgets(250);
        assert_eq!(b, vec![100, 100, 50]);
        assert_eq!(b.iter().sum::<u32>(), 250);
    }

    #[test]
    fn every_step_has_max_steps_launches() {
        let b = SegmentationStrategy::every_step().budgets(37);
        assert_eq!(b.len(), 37);
        assert!(b.iter().all(|&x| x == 1));
    }

    #[test]
    fn paper_b_sums_to_max() {
        let b = SegmentationStrategy::paper_b().budgets(878);
        assert_eq!(b.iter().sum::<u32>(), 878);
        // Prefix matches the published array.
        assert_eq!(&b[..5], &[1, 2, 5, 10, 20]);
    }

    #[test]
    fn increasing_extends_by_repeating_last() {
        let s = SegmentationStrategy::Increasing(vec![1, 2, 4]);
        let b = s.budgets(20);
        assert_eq!(b, vec![1, 2, 4, 4, 4, 4, 1]);
    }

    #[test]
    fn increasing_truncates_last() {
        let s = SegmentationStrategy::paper_table2();
        let b = s.budgets(1000);
        assert_eq!(b.iter().sum::<u32>(), 1000);
        assert_eq!(*b.last().unwrap(), 112); // 1000 − 888
    }

    #[test]
    fn budgets_always_cover_max_steps() {
        for s in [
            SegmentationStrategy::Single,
            SegmentationStrategy::Uniform(7),
            SegmentationStrategy::paper_b(),
            SegmentationStrategy::paper_c(),
        ] {
            for max in [1u32, 10, 99, 1000, 2048] {
                let b = s.budgets(max);
                assert_eq!(b.iter().sum::<u32>(), max, "{s:?} @ {max}");
                assert!(b.iter().all(|&x| x > 0));
            }
        }
    }

    #[test]
    fn labels() {
        assert_eq!(SegmentationStrategy::Single.label(), "A_MaxStep");
        assert_eq!(SegmentationStrategy::Uniform(20).label(), "A_20");
        assert_eq!(SegmentationStrategy::paper_b().label(), "B");
        assert_eq!(SegmentationStrategy::paper_c().label(), "C");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn uniform_zero_rejected() {
        let _ = SegmentationStrategy::Uniform(0).budgets(10);
    }
}
