//! Streamline bundle clustering (QuickBundles-style).
//!
//! The paper's biological figures present *bundles* — the corpus callosum,
//! long association fibers — rather than raw streamline soups. This module
//! implements the standard single-pass clustering used for that grouping
//! (Garyfallidis et al.'s QuickBundles): streamlines are resampled to a
//! fixed point count, compared by the minimum-average-direct-flip (MDF)
//! distance, and greedily assigned to the nearest centroid within a
//! threshold.

use crate::resample::resample_by_arclength;
use tracto_volume::Vec3;

/// Number of points every streamline is resampled to before clustering.
pub const CLUSTER_POINTS: usize = 12;

/// Mean point-wise distance between two equal-length polylines.
fn direct_distance(a: &[Vec3], b: &[Vec3]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(p, q)| (*p - *q).norm()).sum::<f64>() / a.len() as f64
}

/// Minimum-average-direct-flip distance: streamlines have no intrinsic
/// orientation, so compare both orderings and keep the smaller mean
/// point-wise distance.
pub fn mdf_distance(a: &[Vec3], b: &[Vec3]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "resample before comparing");
    let direct = direct_distance(a, b);
    let flipped: f64 = a
        .iter()
        .zip(b.iter().rev())
        .map(|(p, q)| (*p - *q).norm())
        .sum::<f64>()
        / a.len() as f64;
    direct.min(flipped)
}

/// One cluster: a running-mean centroid plus member indices.
#[derive(Debug, Clone)]
pub struct Bundle {
    /// Centroid polyline (CLUSTER_POINTS points).
    pub centroid: Vec<Vec3>,
    /// Indices of member streamlines (into the input order).
    pub members: Vec<usize>,
}

impl Bundle {
    /// Number of member streamlines.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the bundle has no members (never returned by clustering).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

/// Cluster streamlines by MDF distance with the given threshold (same
/// spatial units as the points — voxels here). Streamlines with fewer than
/// two points are skipped. Returns bundles sorted by descending size.
pub fn quick_bundles(streamlines: &[Vec<Vec3>], threshold: f64) -> Vec<Bundle> {
    assert!(threshold > 0.0, "threshold must be positive");
    let mut bundles: Vec<Bundle> = Vec::new();
    // Running sums for centroid updates, parallel to `bundles`.
    let mut sums: Vec<Vec<Vec3>> = Vec::new();

    for (idx, line) in streamlines.iter().enumerate() {
        if line.len() < 2 {
            continue;
        }
        let r = resample_by_arclength(line, CLUSTER_POINTS);
        // Find the nearest centroid.
        let mut best: Option<(usize, f64, bool)> = None;
        for (b, bundle) in bundles.iter().enumerate() {
            let direct = direct_distance(&r, &bundle.centroid);
            let flipped: f64 = r
                .iter()
                .zip(bundle.centroid.iter().rev())
                .map(|(p, q)| (*p - *q).norm())
                .sum::<f64>()
                / r.len() as f64;
            let (dist, flip) = if direct <= flipped {
                (direct, false)
            } else {
                (flipped, true)
            };
            if best.map(|(_, d, _)| dist < d).unwrap_or(true) {
                best = Some((b, dist, flip));
            }
        }
        match best {
            Some((b, dist, flip)) if dist <= threshold => {
                let oriented: Vec<Vec3> = if flip {
                    r.iter().rev().copied().collect()
                } else {
                    r
                };
                for (s, p) in sums[b].iter_mut().zip(&oriented) {
                    *s += *p;
                }
                bundles[b].members.push(idx);
                let n = bundles[b].members.len() as f64;
                for (c, s) in bundles[b].centroid.iter_mut().zip(&sums[b]) {
                    *c = *s / n;
                }
            }
            _ => {
                sums.push(r.clone());
                bundles.push(Bundle {
                    centroid: r,
                    members: vec![idx],
                });
            }
        }
    }
    bundles.sort_by_key(|b| std::cmp::Reverse(b.members.len()));
    bundles
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(offset: Vec3, dir: Vec3, n: usize, wiggle: f64, seed: usize) -> Vec<Vec3> {
        (0..n)
            .map(|i| {
                let w = ((i * 7 + seed * 13) % 5) as f64 * wiggle;
                offset + dir * i as f64 + Vec3::new(0.0, w, -w)
            })
            .collect()
    }

    #[test]
    fn mdf_zero_for_identical_and_flip_invariant() {
        let a = resample_by_arclength(&line(Vec3::ZERO, Vec3::X, 20, 0.0, 0), CLUSTER_POINTS);
        assert_eq!(mdf_distance(&a, &a), 0.0);
        let rev: Vec<Vec3> = a.iter().rev().copied().collect();
        assert!(mdf_distance(&a, &rev) < 1e-12, "flip invariance");
    }

    #[test]
    fn mdf_grows_with_offset() {
        let a = resample_by_arclength(&line(Vec3::ZERO, Vec3::X, 20, 0.0, 0), CLUSTER_POINTS);
        let b = resample_by_arclength(
            &line(Vec3::new(0.0, 3.0, 0.0), Vec3::X, 20, 0.0, 0),
            CLUSTER_POINTS,
        );
        assert!((mdf_distance(&a, &b) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn two_separated_bundles_found() {
        let mut lines = Vec::new();
        for s in 0..10 {
            lines.push(line(Vec3::new(0.0, 0.0, 0.0), Vec3::X, 20, 0.05, s));
        }
        for s in 0..7 {
            lines.push(line(Vec3::new(0.0, 20.0, 0.0), Vec3::Y, 20, 0.05, s));
        }
        let bundles = quick_bundles(&lines, 2.0);
        assert_eq!(bundles.len(), 2, "bundle count: {}", bundles.len());
        assert_eq!(bundles[0].len(), 10);
        assert_eq!(bundles[1].len(), 7);
        // Members partition the input.
        let mut all: Vec<usize> = bundles
            .iter()
            .flat_map(|b| b.members.iter().copied())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..17).collect::<Vec<_>>());
    }

    #[test]
    fn flipped_members_join_the_same_bundle() {
        let forward = line(Vec3::ZERO, Vec3::X, 20, 0.0, 0);
        let backward: Vec<Vec3> = forward.iter().rev().copied().collect();
        let bundles = quick_bundles(&[forward, backward], 1.0);
        assert_eq!(bundles.len(), 1);
        assert_eq!(bundles[0].len(), 2);
    }

    #[test]
    fn tight_threshold_splits() {
        let a = line(Vec3::ZERO, Vec3::X, 20, 0.0, 0);
        let b = line(Vec3::new(0.0, 1.5, 0.0), Vec3::X, 20, 0.0, 0);
        assert_eq!(quick_bundles(&[a.clone(), b.clone()], 5.0).len(), 1);
        assert_eq!(quick_bundles(&[a, b], 0.5).len(), 2);
    }

    #[test]
    fn centroid_is_member_mean() {
        let a = line(Vec3::ZERO, Vec3::X, 20, 0.0, 0);
        let b = line(Vec3::new(0.0, 2.0, 0.0), Vec3::X, 20, 0.0, 0);
        let bundles = quick_bundles(&[a, b], 5.0);
        assert_eq!(bundles.len(), 1);
        // Centroid y ≈ 1.0 everywhere.
        for p in &bundles[0].centroid {
            assert!((p.y - 1.0).abs() < 1e-9, "centroid point {p:?}");
        }
    }

    #[test]
    fn degenerate_streamlines_skipped() {
        let bundles = quick_bundles(&[vec![], vec![Vec3::ZERO]], 1.0);
        assert!(bundles.is_empty());
    }
}
