//! The CPU reference implementation of probabilistic streamlining — the
//! baseline whose time is the "CPU time" column of Table II.

use crate::connectivity::ConnectivityAccumulator;
use crate::deterministic::{track_bidirectional, track_streamline, Streamline};
use crate::field::{dominant_direction, OrientationField, SampleFieldView};
use crate::walker::{StopReason, TrackingParams};
use rayon::prelude::*;
use tracto_mcmc::SampleVolumes;
use tracto_rng::{HybridTaus, RandomSource};
use tracto_volume::{Ijk, Mask, Vec3};

/// What to collect while tracking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordMode {
    /// Only per-thread fiber lengths (the Tables II/IV workload).
    LengthsOnly,
    /// Lengths plus the per-voxel connectivity accumulator.
    Connectivity,
    /// Lengths, connectivity, and full polylines for streamlines of at
    /// least `min_steps` steps (the Figs. 11/12 "fibers whose length > 100"
    /// renders).
    Streamlines {
        /// Minimum steps for a streamline to be retained.
        min_steps: u32,
    },
}

/// Seed positions at the centers of a mask's voxels.
pub fn seeds_from_mask(mask: &Mask) -> Vec<Vec3> {
    mask.coords()
        .into_iter()
        .map(|c| Vec3::new(c.i as f64, c.j as f64, c.k as f64))
        .collect()
}

/// Deterministic per-(run, sample, seed) sub-voxel jitter in
/// `[-amp/2, amp/2]³`. Jitter decorrelates fiber lengths across samples —
/// the effect that defeats the load-sorting strategy in the paper's Fig. 4.
pub fn jittered_seed(pos: Vec3, run_seed: u64, sample: usize, seed_idx: usize, amp: f64) -> Vec3 {
    if amp == 0.0 {
        return pos;
    }
    let stream = ((sample as u64) << 40) ^ seed_idx as u64;
    let mut rng = HybridTaus::seed_stream(run_seed ^ 0x7261636B, stream);
    Vec3::new(
        pos.x + (rng.next_f64() - 0.5) * amp,
        pos.y + (rng.next_f64() - 0.5) * amp,
        pos.z + (rng.next_f64() - 0.5) * amp,
    )
}

/// The initial tracking direction at a (possibly jittered) seed: the
/// dominant stick of the nearest voxel.
pub fn initial_direction<Fld: OrientationField + ?Sized>(
    field: &Fld,
    pos: Vec3,
    min_fraction: f64,
) -> Option<Vec3> {
    let dims = field.dims();
    let c = Ijk::new(
        (pos.x.round().clamp(0.0, (dims.nx - 1) as f64)) as usize,
        (pos.y.round().clamp(0.0, (dims.ny - 1) as f64)) as usize,
        (pos.z.round().clamp(0.0, (dims.nz - 1) as f64)) as usize,
    );
    dominant_direction(field, c, min_fraction)
}

/// Output of a probabilistic streamlining run.
#[derive(Debug, Clone)]
pub struct TrackingOutput {
    /// `lengths_by_sample[s][i]`: steps of seed `i`'s streamline in sample
    /// `s` — the per-thread loads of Figs. 4–6.
    pub lengths_by_sample: Vec<Vec<u32>>,
    /// Total steps over all streamlines (the "Total fiber length" column of
    /// Table II).
    pub total_steps: u64,
    /// Per-voxel visit counts (when requested).
    pub connectivity: Option<ConnectivityAccumulator>,
    /// Retained streamline polylines (when requested).
    pub streamlines: Vec<Streamline>,
}

impl TrackingOutput {
    /// All lengths flattened across samples.
    pub fn all_lengths(&self) -> Vec<u32> {
        self.lengths_by_sample.iter().flatten().copied().collect()
    }

    /// The longest fiber (steps) — Table II's "Longest fiber length".
    pub fn longest(&self) -> u32 {
        self.lengths_by_sample
            .iter()
            .flatten()
            .copied()
            .max()
            .unwrap_or(0)
    }
}

/// CPU probabilistic streamlining over a stack of posterior sample volumes.
#[derive(Clone)]
pub struct CpuTracker<'a> {
    /// The sample stack from Step 1.
    pub samples: &'a SampleVolumes,
    /// Tracking parameters.
    pub params: TrackingParams,
    /// Seed positions (continuous voxel coordinates).
    pub seeds: Vec<Vec3>,
    /// Optional tracking mask (streamlines stop on exit).
    pub mask: Option<&'a Mask>,
    /// Sub-voxel seed jitter amplitude (voxels); 0 disables.
    pub jitter: f64,
    /// Run seed for jitter determinism.
    pub run_seed: u64,
    /// Track both ways from each seed.
    pub bidirectional: bool,
}

impl<'a> CpuTracker<'a> {
    /// Track seed `seed_idx` through sample `sample`. Always returns a
    /// streamline; seeds without an eligible direction yield zero steps.
    pub fn track_one(&self, sample: usize, seed_idx: usize, record: bool) -> Streamline {
        let field = SampleFieldView::new(self.samples, sample);
        let pos = jittered_seed(
            self.seeds[seed_idx],
            self.run_seed,
            sample,
            seed_idx,
            self.jitter,
        );
        if self.bidirectional {
            if let Some(s) = track_bidirectional(
                &field,
                seed_idx as u32,
                pos,
                &self.params,
                self.mask,
                record,
            ) {
                return s;
            }
        } else if let Some(dir) = initial_direction(&field, pos, self.params.min_fraction) {
            return track_streamline(
                &field,
                seed_idx as u32,
                pos,
                dir,
                &self.params,
                self.mask,
                record,
            );
        }
        Streamline {
            seed_id: seed_idx as u32,
            points: Vec::new(),
            steps: 0,
            stop: StopReason::NoDirection,
        }
    }

    fn assemble(
        &self,
        mode: RecordMode,
        per_sample: Vec<(Vec<u32>, Option<ConnectivityAccumulator>, Vec<Streamline>)>,
    ) -> TrackingOutput {
        let mut lengths_by_sample = Vec::with_capacity(per_sample.len());
        let mut connectivity = match mode {
            RecordMode::LengthsOnly => None,
            _ => Some(ConnectivityAccumulator::new(self.samples.dims())),
        };
        let mut streamlines = Vec::new();
        let mut total_steps = 0u64;
        for (lengths, conn, lines) in per_sample {
            total_steps += lengths.iter().map(|&l| l as u64).sum::<u64>();
            lengths_by_sample.push(lengths);
            if let (Some(acc), Some(c)) = (connectivity.as_mut(), conn.as_ref()) {
                acc.merge(c);
            }
            streamlines.extend(lines);
        }
        TrackingOutput {
            lengths_by_sample,
            total_steps,
            connectivity,
            streamlines,
        }
    }

    fn run_sample(
        &self,
        sample: usize,
        mode: RecordMode,
    ) -> (Vec<u32>, Option<ConnectivityAccumulator>, Vec<Streamline>) {
        let record = !matches!(mode, RecordMode::LengthsOnly);
        let mut lengths = Vec::with_capacity(self.seeds.len());
        let mut conn = match mode {
            RecordMode::LengthsOnly => None,
            _ => Some(ConnectivityAccumulator::new(self.samples.dims())),
        };
        let mut kept = Vec::new();
        for seed_idx in 0..self.seeds.len() {
            let mut s = self.track_one(sample, seed_idx, record);
            lengths.push(s.steps);
            if let Some(acc) = conn.as_mut() {
                if s.points.is_empty() {
                    acc.add_empty();
                } else {
                    acc.add_path(&s.points);
                }
            }
            if let RecordMode::Streamlines { min_steps } = mode {
                if s.steps >= min_steps {
                    kept.push(s);
                    continue;
                }
            }
            s.points = Vec::new();
        }
        (lengths, conn, kept)
    }

    /// Run serially — the Table II "CPU time" baseline.
    pub fn run_serial(&self, mode: RecordMode) -> TrackingOutput {
        let per_sample: Vec<_> = (0..self.samples.num_samples())
            .map(|s| self.run_sample(s, mode))
            .collect();
        self.assemble(mode, per_sample)
    }

    /// Run with rayon parallelism over samples.
    pub fn run_parallel(&self, mode: RecordMode) -> TrackingOutput {
        let per_sample: Vec<_> = (0..self.samples.num_samples())
            .into_par_iter()
            .map(|s| self.run_sample(s, mode))
            .collect();
        self.assemble(mode, per_sample)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::InterpMode;
    use tracto_volume::Dim3;

    /// Sample volumes whose every sample is a clean x-aligned field.
    fn x_samples(dims: Dim3, n: usize) -> SampleVolumes {
        let mut sv = SampleVolumes::zeros(dims, n);
        for c in dims.iter() {
            for s in 0..n {
                sv.f1.set(c, s, 0.6);
                sv.th1.set(c, s, std::f64::consts::FRAC_PI_2 as f32);
                sv.ph1.set(c, s, 0.0);
            }
        }
        sv
    }

    fn params() -> TrackingParams {
        TrackingParams {
            step_length: 0.5,
            angular_threshold: 0.8,
            max_steps: 500,
            min_fraction: 0.05,
            interp: InterpMode::Nearest,
        }
    }

    #[test]
    fn lengths_shape_matches_samples_and_seeds() {
        let dims = Dim3::new(8, 4, 4);
        let sv = x_samples(dims, 3);
        let tracker = CpuTracker {
            samples: &sv,
            params: params(),
            seeds: vec![Vec3::new(0.0, 2.0, 2.0), Vec3::new(4.0, 2.0, 2.0)],
            mask: None,
            jitter: 0.0,
            run_seed: 1,
            bidirectional: false,
        };
        let out = tracker.run_serial(RecordMode::LengthsOnly);
        assert_eq!(out.lengths_by_sample.len(), 3);
        assert_eq!(out.lengths_by_sample[0].len(), 2);
        assert!(out.total_steps > 0);
        assert_eq!(out.all_lengths().len(), 6);
    }

    #[test]
    fn serial_equals_parallel() {
        let dims = Dim3::new(8, 6, 4);
        let sv = x_samples(dims, 4);
        let tracker = CpuTracker {
            samples: &sv,
            params: params(),
            seeds: seeds_from_mask(&Mask::from_fn(dims, |c| c.j == 3 && c.k == 2)),
            mask: None,
            jitter: 0.3,
            run_seed: 7,
            bidirectional: false,
        };
        let a = tracker.run_serial(RecordMode::Connectivity);
        let b = tracker.run_parallel(RecordMode::Connectivity);
        assert_eq!(a.lengths_by_sample, b.lengths_by_sample);
        assert_eq!(a.total_steps, b.total_steps);
        let ca = a.connectivity.unwrap().probability_volume();
        let cb = b.connectivity.unwrap().probability_volume();
        assert_eq!(ca, cb);
    }

    #[test]
    fn jitter_decorrelates_lengths_across_samples() {
        let dims = Dim3::new(16, 6, 6);
        let sv = x_samples(dims, 2);
        let tracker = CpuTracker {
            samples: &sv,
            params: params(),
            seeds: vec![Vec3::new(8.0, 3.0, 3.0); 8],
            mask: None,
            jitter: 0.9,
            run_seed: 3,
            bidirectional: false,
        };
        let out = tracker.run_serial(RecordMode::LengthsOnly);
        // Same nominal seed, different jitter per (sample, idx) → spread of
        // lengths.
        let s0 = &out.lengths_by_sample[0];
        assert!(
            s0.iter().any(|&l| l != s0[0]),
            "jitter had no effect: {s0:?}"
        );
    }

    #[test]
    fn zero_direction_seed_counts_as_empty() {
        let dims = Dim3::new(4, 4, 4);
        let sv = SampleVolumes::zeros(dims, 1); // no sticks anywhere
        let tracker = CpuTracker {
            samples: &sv,
            params: params(),
            seeds: vec![Vec3::new(2.0, 2.0, 2.0)],
            mask: None,
            jitter: 0.0,
            run_seed: 1,
            bidirectional: false,
        };
        let out = tracker.run_serial(RecordMode::Connectivity);
        assert_eq!(out.lengths_by_sample[0][0], 0);
        assert_eq!(out.connectivity.unwrap().total_streamlines(), 1);
    }

    #[test]
    fn streamline_mode_filters_by_min_steps() {
        let dims = Dim3::new(16, 4, 4);
        let sv = x_samples(dims, 1);
        let tracker = CpuTracker {
            samples: &sv,
            params: params(),
            // One seed at the left edge (long run) and one near the right
            // edge (short run).
            seeds: vec![Vec3::new(0.0, 2.0, 2.0), Vec3::new(14.0, 2.0, 2.0)],
            mask: None,
            jitter: 0.0,
            run_seed: 1,
            bidirectional: false,
        };
        let out = tracker.run_serial(RecordMode::Streamlines { min_steps: 10 });
        assert_eq!(out.streamlines.len(), 1);
        assert!(out.streamlines[0].steps >= 10);
        assert!(!out.streamlines[0].points.is_empty());
    }

    #[test]
    fn connectivity_accumulates_over_samples() {
        let dims = Dim3::new(8, 4, 4);
        let sv = x_samples(dims, 5);
        let tracker = CpuTracker {
            samples: &sv,
            params: params(),
            seeds: vec![Vec3::new(0.0, 2.0, 2.0)],
            mask: None,
            jitter: 0.0,
            run_seed: 1,
            bidirectional: false,
        };
        let out = tracker.run_serial(RecordMode::Connectivity);
        let acc = out.connectivity.unwrap();
        assert_eq!(acc.total_streamlines(), 5);
        // All 5 clean-field streamlines pass through the downstream voxel.
        assert_eq!(acc.probability(Ijk::new(6, 2, 2)), 1.0);
    }

    #[test]
    fn bidirectional_extends_lengths() {
        let dims = Dim3::new(16, 4, 4);
        let sv = x_samples(dims, 1);
        let mid_seed = vec![Vec3::new(8.0, 2.0, 2.0)];
        let make = |bidir| CpuTracker {
            samples: &sv,
            params: params(),
            seeds: mid_seed.clone(),
            mask: None,
            jitter: 0.0,
            run_seed: 1,
            bidirectional: bidir,
        };
        let uni = make(false).run_serial(RecordMode::LengthsOnly);
        let bi = make(true).run_serial(RecordMode::LengthsOnly);
        assert!(bi.lengths_by_sample[0][0] > uni.lengths_by_sample[0][0]);
    }

    #[test]
    fn seeds_from_mask_centers() {
        let dims = Dim3::new(3, 2, 1);
        let m = Mask::from_fn(dims, |c| c.i == 1);
        let seeds = seeds_from_mask(&m);
        assert_eq!(seeds.len(), 2);
        assert_eq!(seeds[0], Vec3::new(1.0, 0.0, 0.0));
    }

    #[test]
    fn jitter_deterministic_and_bounded() {
        let p = Vec3::new(4.0, 4.0, 4.0);
        let a = jittered_seed(p, 9, 3, 17, 0.8);
        let b = jittered_seed(p, 9, 3, 17, 0.8);
        assert_eq!(a, b);
        assert!((a - p).norm() < 0.8);
        let c = jittered_seed(p, 9, 4, 17, 0.8);
        assert_ne!(a, c, "different sample → different jitter");
        assert_eq!(jittered_seed(p, 9, 3, 17, 0.0), p);
    }
}
