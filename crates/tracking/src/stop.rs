//! Composable stop criteria — the termination half of the modality layer.
//!
//! The walker used to hard-code its stop checks (max steps, curvature,
//! bounds, one optional tracking mask) against `TrackingParams` fields.
//! [`StopStack`] makes the same checks a composable list so callers can
//! add mask-based stop and exclusion regions — with thresholds
//! expressible as percentiles of a scalar volume
//! ([`mask_from_percentile`]) in the pyAFQ `stop_threshold` style —
//! without growing the parameter struct again.
//!
//! The stack is evaluated in three phases matching the walker's exact
//! legacy order (budget → turn → position), so
//! [`StopStack::standard`] is bit-identical to the pre-stack walker.

use crate::walker::{StopReason, TrackingParams};
use tracto_volume::{Dim3, Ijk, Mask, Vec3, Volume3};

/// One termination rule. Mask-based rules both map to
/// [`StopReason::OutOfMask`]; they differ in polarity: a streamline stops
/// on *leaving* a [`StopCriterion::StopMask`] and on *entering* a
/// [`StopCriterion::Exclusion`] region.
#[derive(Debug, Clone, Copy)]
pub enum StopCriterion<'a> {
    /// Stop after this many steps ("to avoid dead loops").
    MaxSteps(u32),
    /// Stop when successive directions' dot product drops below this
    /// threshold (the paper's angular criterion).
    Curvature(f64),
    /// Stop on leaving the volume.
    Bounds,
    /// Stop on leaving this mask (the classical tracking mask).
    StopMask(&'a Mask),
    /// Stop on entering this mask (termination regions; the policy
    /// layer's exclusion test uses the same membership rule).
    Exclusion(&'a Mask),
}

impl StopCriterion<'_> {
    /// Whether stepping to voxel `c` fires this (mask-based) criterion.
    /// Budget and turn criteria never fire here.
    pub fn stop_at_voxel(&self, c: Ijk) -> Option<StopReason> {
        match self {
            StopCriterion::StopMask(m) => (!m.contains(c)).then_some(StopReason::OutOfMask),
            StopCriterion::Exclusion(m) => m.contains(c).then_some(StopReason::OutOfMask),
            _ => None,
        }
    }
}

/// An ordered stack of stop criteria, evaluated in the walker's legacy
/// phase order. Build once per streamline (or per kernel), not per step.
#[derive(Debug, Clone, Default)]
pub struct StopStack<'a> {
    criteria: Vec<StopCriterion<'a>>,
}

impl<'a> StopStack<'a> {
    /// An empty stack (nothing ever stops except `NoDirection`).
    pub fn new() -> Self {
        StopStack::default()
    }

    /// The pre-stack walker's exact criteria: max steps, curvature,
    /// bounds, and the optional tracking mask — in that order.
    pub fn standard(params: &TrackingParams, mask: Option<&'a Mask>) -> Self {
        let mut stack = StopStack::new()
            .with(StopCriterion::MaxSteps(params.max_steps))
            .with(StopCriterion::Curvature(params.angular_threshold))
            .with(StopCriterion::Bounds);
        if let Some(m) = mask {
            stack = stack.with(StopCriterion::StopMask(m));
        }
        stack
    }

    /// Append a criterion (builder style).
    pub fn with(mut self, criterion: StopCriterion<'a>) -> Self {
        self.criteria.push(criterion);
        self
    }

    /// Append a criterion in place.
    pub fn push(&mut self, criterion: StopCriterion<'a>) {
        self.criteria.push(criterion);
    }

    /// The criteria in evaluation order.
    pub fn criteria(&self) -> &[StopCriterion<'a>] {
        &self.criteria
    }

    /// Phase 1 (also re-run after advancing): has the step budget run out?
    #[inline]
    pub fn check_budget(&self, steps: u32) -> Option<StopReason> {
        for c in &self.criteria {
            if let StopCriterion::MaxSteps(max) = c {
                if steps >= *max {
                    return Some(StopReason::MaxSteps);
                }
            }
        }
        None
    }

    /// Phase 2: does the proposed direction turn too sharply?
    #[inline]
    pub fn check_turn(&self, prev: Vec3, next: Vec3) -> Option<StopReason> {
        for c in &self.criteria {
            if let StopCriterion::Curvature(threshold) = c {
                if next.dot(prev) < *threshold {
                    return Some(StopReason::Curvature);
                }
            }
        }
        None
    }

    /// Phase 3: does the proposed position terminate the streamline?
    /// Bounds and mask criteria fire in stack order; mask membership uses
    /// the nearest voxel, exactly as the legacy walker did.
    #[inline]
    pub fn check_position(&self, dims: Dim3, pos: Vec3) -> Option<StopReason> {
        let mut voxel: Option<Ijk> = None;
        for c in &self.criteria {
            match c {
                StopCriterion::Bounds if !dims.contains_point(pos.x, pos.y, pos.z) => {
                    return Some(StopReason::OutOfBounds);
                }
                StopCriterion::StopMask(_) | StopCriterion::Exclusion(_) => {
                    let v = *voxel.get_or_insert_with(|| {
                        Ijk::new(
                            pos.x.round() as usize,
                            pos.y.round() as usize,
                            pos.z.round() as usize,
                        )
                    });
                    if let Some(r) = c.stop_at_voxel(v) {
                        return Some(r);
                    }
                }
                _ => {}
            }
        }
        None
    }
}

/// The value at percentile `pct` (0–100) of a scalar volume — pyAFQ's
/// `thresholds_as_percentages` convention, nearest-rank on the sorted
/// values. Returns `None` for an empty volume or a non-finite percentile.
pub fn percentile_threshold(volume: &Volume3<f32>, pct: f64) -> Option<f32> {
    if volume.is_empty() || !pct.is_finite() {
        return None;
    }
    let mut values: Vec<f32> = volume.as_slice().to_vec();
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite volume values"));
    let pct = pct.clamp(0.0, 100.0);
    let rank = ((pct / 100.0) * (values.len() - 1) as f64).round() as usize;
    Some(values[rank])
}

/// Threshold a scalar volume at a percentile of its own values: voxels
/// strictly above the percentile value are in the mask. `--stop-threshold
/// 60` keeps the top 40 % of (say) mean-signal voxels as trackable.
pub fn mask_from_percentile(volume: &Volume3<f32>, pct: f64) -> Option<Mask> {
    percentile_threshold(volume, pct).map(|t| Mask::threshold(volume, t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::InterpMode;

    fn params() -> TrackingParams {
        TrackingParams {
            step_length: 0.5,
            angular_threshold: 0.8,
            max_steps: 100,
            min_fraction: 0.05,
            interp: InterpMode::Nearest,
        }
    }

    #[test]
    fn standard_stack_mirrors_legacy_checks() {
        let dims = Dim3::new(8, 4, 4);
        let mask = Mask::from_fn(dims, |c| c.i < 4);
        let stack = StopStack::standard(&params(), Some(&mask));
        assert_eq!(stack.criteria().len(), 4);
        assert_eq!(stack.check_budget(99), None);
        assert_eq!(stack.check_budget(100), Some(StopReason::MaxSteps));
        assert_eq!(stack.check_turn(Vec3::X, Vec3::X), None);
        assert_eq!(
            stack.check_turn(Vec3::X, Vec3::Y),
            Some(StopReason::Curvature)
        );
        // In bounds and in mask.
        assert_eq!(stack.check_position(dims, Vec3::new(2.0, 2.0, 2.0)), None);
        // In bounds, out of mask.
        assert_eq!(
            stack.check_position(dims, Vec3::new(6.0, 2.0, 2.0)),
            Some(StopReason::OutOfMask)
        );
        // Out of bounds fires before the mask, as in the legacy walker.
        assert_eq!(
            stack.check_position(dims, Vec3::new(9.0, 2.0, 2.0)),
            Some(StopReason::OutOfBounds)
        );
    }

    #[test]
    fn exclusion_polarity_is_stop_on_entry() {
        let dims = Dim3::new(8, 4, 4);
        let wall = Mask::from_fn(dims, |c| c.i == 6);
        let stack = StopStack::new()
            .with(StopCriterion::Bounds)
            .with(StopCriterion::Exclusion(&wall));
        assert_eq!(stack.check_position(dims, Vec3::new(2.0, 2.0, 2.0)), None);
        assert_eq!(
            stack.check_position(dims, Vec3::new(6.2, 2.0, 2.0)),
            Some(StopReason::OutOfMask)
        );
        assert_eq!(
            StopCriterion::Exclusion(&wall).stop_at_voxel(Ijk::new(6, 2, 2)),
            Some(StopReason::OutOfMask)
        );
        assert_eq!(
            StopCriterion::Exclusion(&wall).stop_at_voxel(Ijk::new(5, 2, 2)),
            None
        );
    }

    #[test]
    fn empty_stack_never_stops() {
        let stack = StopStack::new();
        assert_eq!(stack.check_budget(u32::MAX), None);
        assert_eq!(stack.check_turn(Vec3::X, -Vec3::X), None);
        assert_eq!(
            stack.check_position(Dim3::new(2, 2, 2), Vec3::new(99.0, 0.0, 0.0)),
            None
        );
    }

    #[test]
    fn percentile_thresholds_match_nearest_rank() {
        let dims = Dim3::new(5, 1, 1);
        let v = Volume3::from_fn(dims, |c| c.i as f32); // 0,1,2,3,4
        assert_eq!(percentile_threshold(&v, 0.0), Some(0.0));
        assert_eq!(percentile_threshold(&v, 50.0), Some(2.0));
        assert_eq!(percentile_threshold(&v, 100.0), Some(4.0));
        assert_eq!(percentile_threshold(&v, 200.0), Some(4.0), "clamped");
        assert_eq!(percentile_threshold(&v, f64::NAN), None);
        let m = mask_from_percentile(&v, 50.0).unwrap();
        // Strictly above the 50th-percentile value (2.0): voxels 3 and 4.
        assert_eq!(m.count(), 2);
        assert!(m.contains(Ijk::new(4, 0, 0)));
        assert!(!m.contains(Ijk::new(2, 0, 0)));
    }

    #[test]
    fn percentile_mask_as_stop_criterion() {
        let dims = Dim3::new(8, 1, 1);
        // Signal falls off with i: 7,6,…,0. The 50th-percentile value is
        // 4.0, so the strictly-above mask keeps voxels i < 3.
        let signal = Volume3::from_fn(dims, |c| (7 - c.i) as f32);
        let mask = mask_from_percentile(&signal, 50.0).unwrap();
        assert_eq!(mask.count(), 3);
        let stack = StopStack::new()
            .with(StopCriterion::Bounds)
            .with(StopCriterion::StopMask(&mask));
        assert_eq!(stack.check_position(dims, Vec3::new(2.0, 0.0, 0.0)), None);
        assert_eq!(
            stack.check_position(dims, Vec3::new(6.0, 0.0, 0.0)),
            Some(StopReason::OutOfMask)
        );
    }
}
