//! Whole-streamline deterministic tracking — the inner loop of
//! probabilistic streamlining ("the probabilistic streamlining algorithm is
//! done by invoking deterministic streamlining for many times").

use crate::field::{dominant_direction, OrientationField};
use crate::getter::{lane_rng, DirectionGetter, PosteriorSampleGetter};
use crate::stop::StopStack;
use crate::walker::{StopReason, TrackingParams, Walker};
use tracto_rng::HybridTaus;
use tracto_volume::{Ijk, Mask, Vec3};

/// A completed streamline.
#[derive(Debug, Clone)]
pub struct Streamline {
    /// Seed identifier.
    pub seed_id: u32,
    /// Trajectory points, including the seed (present only when recorded).
    pub points: Vec<Vec3>,
    /// Number of steps taken (the fiber length in steps — the paper's
    /// load/length unit).
    pub steps: u32,
    /// Why tracking stopped.
    pub stop: StopReason,
}

impl Streamline {
    /// Path length in voxel units (`steps × step_length`).
    pub fn length_voxels(&self, params: &TrackingParams) -> f64 {
        self.steps as f64 * params.step_length
    }
}

/// Track a single streamline through any [`DirectionGetter`] under a
/// [`StopStack`] — the modality-layer driver every tracker shares.
#[allow(clippy::too_many_arguments)]
pub fn track_streamline_with(
    getter: &dyn DirectionGetter,
    seed_id: u32,
    seed: Vec3,
    dir: Vec3,
    step_length: f64,
    stop: &StopStack<'_>,
    rng: &mut HybridTaus,
    record: bool,
) -> Streamline {
    let mut w = if record {
        Walker::new_recording(seed_id, seed, dir)
    } else {
        Walker::new(seed_id, seed, dir)
    };
    while w.alive() {
        w.step_with(getter, step_length, stop, rng);
    }
    Streamline {
        seed_id,
        points: w.path,
        steps: w.steps,
        stop: w.stop,
    }
}

/// Track a single streamline from `seed` in direction `dir` until a stop
/// criterion fires. Records the trajectory when `record` is set.
///
/// This is the posterior-sampling modality spelled out: a
/// [`PosteriorSampleGetter`] over `field` with the standard stop stack.
pub fn track_streamline<Fld: OrientationField + ?Sized>(
    field: &Fld,
    seed_id: u32,
    seed: Vec3,
    dir: Vec3,
    params: &TrackingParams,
    mask: Option<&Mask>,
    record: bool,
) -> Streamline {
    let getter = PosteriorSampleGetter::new(field, params.interp, params.min_fraction);
    let stop = StopStack::standard(params, mask);
    let mut rng = lane_rng(0, 0, seed_id as usize);
    track_streamline_with(
        &getter,
        seed_id,
        seed,
        dir,
        params.step_length,
        &stop,
        &mut rng,
        record,
    )
}

/// Track bidirectionally: once along the seed's dominant direction and once
/// along its negation, splicing the two halves (reversed backward half +
/// forward half). Step counts add.
pub fn track_bidirectional<Fld: OrientationField + ?Sized>(
    field: &Fld,
    seed_id: u32,
    seed: Vec3,
    params: &TrackingParams,
    mask: Option<&Mask>,
    record: bool,
) -> Option<Streamline> {
    let c = Ijk::new(
        seed.x.round().max(0.0) as usize,
        seed.y.round().max(0.0) as usize,
        seed.z.round().max(0.0) as usize,
    );
    if !field.dims().contains(c) {
        return None;
    }
    let dir = dominant_direction(field, c, params.min_fraction)?;
    let fwd = track_streamline(field, seed_id, seed, dir, params, mask, record);
    let bwd = track_streamline(field, seed_id, seed, -dir, params, mask, record);
    let mut points = Vec::new();
    if record {
        points.reserve(bwd.points.len() + fwd.points.len());
        points.extend(bwd.points.iter().rev().copied());
        // Skip the duplicated seed point.
        points.extend(fwd.points.iter().skip(1).copied());
    }
    Some(Streamline {
        seed_id,
        points,
        steps: fwd.steps + bwd.steps,
        stop: fwd.stop,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::{FnField, InterpMode};
    use tracto_volume::Dim3;

    fn params() -> TrackingParams {
        TrackingParams {
            step_length: 0.5,
            angular_threshold: 0.8,
            max_steps: 1000,
            min_fraction: 0.05,
            interp: InterpMode::Nearest,
        }
    }

    fn x_field(dims: Dim3) -> FnField<impl Fn(Ijk) -> [(Vec3, f64); 2] + Sync> {
        FnField::new(dims, |_| [(Vec3::X, 0.6), (Vec3::ZERO, 0.0)])
    }

    #[test]
    fn streamline_reaches_far_boundary() {
        let dims = Dim3::new(16, 4, 4);
        let f = x_field(dims);
        let s = track_streamline(
            &f,
            0,
            Vec3::new(0.0, 2.0, 2.0),
            Vec3::X,
            &params(),
            None,
            true,
        );
        assert_eq!(s.stop, StopReason::OutOfBounds);
        assert_eq!(s.points.len() as u32, s.steps + 1);
        assert!((s.length_voxels(&params()) - 15.0).abs() < 1e-9);
    }

    #[test]
    fn unrecorded_streamline_has_no_points() {
        let dims = Dim3::new(8, 4, 4);
        let f = x_field(dims);
        let s = track_streamline(
            &f,
            0,
            Vec3::new(0.0, 2.0, 2.0),
            Vec3::X,
            &params(),
            None,
            false,
        );
        assert!(s.points.is_empty());
        assert!(s.steps > 0);
    }

    #[test]
    fn bidirectional_covers_both_sides() {
        let dims = Dim3::new(16, 4, 4);
        let f = x_field(dims);
        let s = track_bidirectional(&f, 0, Vec3::new(8.0, 2.0, 2.0), &params(), None, true)
            .expect("seed on fiber");
        // Forward reaches x=15 (14 steps), backward reaches x=0 (16 steps).
        assert_eq!(s.steps, 30);
        // Spliced path is ordered from the backward extreme to the forward
        // extreme.
        let first = s.points.first().unwrap();
        let last = s.points.last().unwrap();
        assert!(first.x < 1.0 && last.x > 14.0, "ends {first:?} {last:?}");
        // No duplicated seed point.
        let dup = s
            .points
            .windows(2)
            .filter(|w| (w[0] - w[1]).norm() < 1e-12)
            .count();
        assert_eq!(dup, 0);
    }

    #[test]
    fn bidirectional_none_off_fiber() {
        let dims = Dim3::new(8, 4, 4);
        let f = FnField::new(dims, |_| [(Vec3::ZERO, 0.0), (Vec3::ZERO, 0.0)]);
        assert!(
            track_bidirectional(&f, 0, Vec3::new(4.0, 2.0, 2.0), &params(), None, false).is_none()
        );
    }

    #[test]
    fn follows_curved_field() {
        // Quarter-circle field in the x–y plane around the origin corner:
        // tangent = (−y, x) normalized.
        let dims = Dim3::new(32, 32, 3);
        let f = FnField::new(dims, |c: Ijk| {
            let t = Vec3::new(-(c.j as f64), c.i as f64, 0.0).normalized();
            let t = if t == Vec3::ZERO { Vec3::Y } else { t };
            [(t, 0.6), (Vec3::ZERO, 0.0)]
        });
        let mut p = params();
        p.step_length = 0.2;
        p.angular_threshold = 0.95;
        let start = Vec3::new(20.0, 1.0, 1.0);
        let s = track_streamline(&f, 0, start, Vec3::Y, &p, None, true);
        // The walker should sweep a curve and keep a ~constant radius from
        // the (x=0, y=0) axis.
        let r0 = (start.x * start.x + start.y * start.y).sqrt();
        for pt in &s.points {
            let r = (pt.x * pt.x + pt.y * pt.y).sqrt();
            assert!((r - r0).abs() < 2.0, "radius drifted: {r} vs {r0}");
        }
        assert!(
            s.steps > 50,
            "should follow the curve a while, got {}",
            s.steps
        );
    }
}
