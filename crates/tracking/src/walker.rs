//! One streamline walker: stepping and termination.

use crate::field::{select_direction, InterpMode, OrientationField};
use crate::getter::DirectionGetter;
use crate::stop::StopStack;
use tracto_rng::HybridTaus;
use tracto_volume::{Ijk, Mask, Vec3};

/// Tracking configuration.
///
/// Step length and the angular threshold are the paper's swept parameters
/// (Table II: step 0.1–0.3 voxels, threshold 0.8–0.9 measured as "the dot
/// product of the two regular directions").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackingParams {
    /// Step length in voxel units.
    pub step_length: f64,
    /// Minimum dot product between successive step directions; below it the
    /// streamline stops ("maximum angle formed by two subsequent fiber
    /// segments").
    pub angular_threshold: f64,
    /// Maximum number of steps ("to avoid dead loops").
    pub max_steps: u32,
    /// Sticks with fraction below this are invisible to the walker. The
    /// paper notes the anisotropy floor "is not a must" for probabilistic
    /// tracking; a small floor keeps walkers out of pure-ball voxels.
    pub min_fraction: f64,
    /// Orientation interpolation mode.
    pub interp: InterpMode,
}

impl TrackingParams {
    /// The paper's first Table II row: step 0.1, threshold 0.9.
    pub fn paper_default() -> Self {
        TrackingParams {
            step_length: 0.1,
            angular_threshold: 0.9,
            max_steps: 2000,
            min_fraction: 0.05,
            interp: InterpMode::Nearest,
        }
    }
}

/// Why a streamline terminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// Hit the step cap.
    MaxSteps,
    /// Turned sharper than the angular threshold.
    Curvature,
    /// Left the volume.
    OutOfBounds,
    /// Left the tracking mask.
    OutOfMask,
    /// No eligible fiber population at the current position.
    NoDirection,
    /// Still running (not yet terminated).
    Running,
}

/// A streamline walker: the per-lane state of the tracking kernel
/// (Algorithm 1's `GetStartPoint` → iterate `Interpolation`;
/// `StepToNextPoint`; stop-check → `SetEndPoint`).
#[derive(Debug, Clone)]
pub struct Walker {
    /// Current position (continuous voxel coordinates).
    pub pos: Vec3,
    /// Direction of the last step (unit).
    pub dir: Vec3,
    /// Steps taken so far.
    pub steps: u32,
    /// Termination state.
    pub stop: StopReason,
    /// Index of the seed this walker serves (survives compaction).
    pub seed_id: u32,
    /// Recorded trajectory (empty unless recording was requested).
    pub path: Vec<Vec3>,
}

impl Walker {
    /// Start a walker at `pos` heading along `dir`.
    pub fn new(seed_id: u32, pos: Vec3, dir: Vec3) -> Self {
        Walker {
            pos,
            dir: dir.normalized(),
            steps: 0,
            stop: StopReason::Running,
            seed_id,
            path: Vec::new(),
        }
    }

    /// Start a walker that records its trajectory (pre-seeded with the
    /// start point).
    pub fn new_recording(seed_id: u32, pos: Vec3, dir: Vec3) -> Self {
        let mut w = Self::new(seed_id, pos, dir);
        w.path.push(pos);
        w
    }

    /// Whether the walker is still tracking.
    #[inline]
    pub fn alive(&self) -> bool {
        self.stop == StopReason::Running
    }

    /// Advance one step through a pluggable [`DirectionGetter`] under a
    /// composable [`StopStack`] — the modality-layer stepping path every
    /// tracker now drives.
    ///
    /// The check order is exactly the legacy [`step`](Self::step): budget,
    /// direction, turn, position (bounds then masks), advance, budget
    /// again — so `step_with` over a
    /// [`PosteriorSampleGetter`](crate::getter::PosteriorSampleGetter)
    /// and [`StopStack::standard`] is bit-identical to the fused fast
    /// path. Deterministic getters never draw from `rng`.
    pub fn step_with(
        &mut self,
        getter: &dyn DirectionGetter,
        step_length: f64,
        stop: &StopStack<'_>,
        rng: &mut HybridTaus,
    ) -> StopReason {
        if !self.alive() {
            return self.stop;
        }
        if let Some(r) = stop.check_budget(self.steps) {
            self.stop = r;
            return self.stop;
        }
        // Interpolation(): evaluate the local direction.
        let Some(new_dir) = getter.next_direction(self.pos, self.dir, rng) else {
            self.stop = StopReason::NoDirection;
            return self.stop;
        };
        if let Some(r) = stop.check_turn(self.dir, new_dir) {
            self.stop = r;
            return self.stop;
        }
        // StepToNextPoint().
        let next = self.pos + new_dir * step_length;
        if let Some(r) = stop.check_position(getter.dims(), next) {
            self.stop = r;
            return self.stop;
        }
        self.pos = next;
        self.dir = new_dir;
        self.steps += 1;
        if !self.path.is_empty() {
            self.path.push(next);
        }
        if let Some(r) = stop.check_budget(self.steps) {
            self.stop = r;
        }
        self.stop
    }

    /// Advance one step through `field`. Returns the walker's stop state
    /// after the step ([`StopReason::Running`] if it may continue).
    ///
    /// One call is exactly one iteration of the GPU kernel's inner loop.
    /// This is the fused fast path for the standard criteria; it is
    /// asserted bit-identical to [`step_with`](Self::step_with) over the
    /// standard stack.
    pub fn step<Fld: OrientationField + ?Sized>(
        &mut self,
        field: &Fld,
        params: &TrackingParams,
        mask: Option<&Mask>,
    ) -> StopReason {
        if !self.alive() {
            return self.stop;
        }
        if self.steps >= params.max_steps {
            self.stop = StopReason::MaxSteps;
            return self.stop;
        }
        // Interpolation(): evaluate the local direction.
        let Some(new_dir) = select_direction(
            field,
            self.pos,
            self.dir,
            params.interp,
            params.min_fraction,
        ) else {
            self.stop = StopReason::NoDirection;
            return self.stop;
        };
        // Curvature criterion on successive directions.
        if new_dir.dot(self.dir) < params.angular_threshold {
            self.stop = StopReason::Curvature;
            return self.stop;
        }
        // StepToNextPoint().
        let next = self.pos + new_dir * params.step_length;
        if !field.dims().contains_point(next.x, next.y, next.z) {
            self.stop = StopReason::OutOfBounds;
            return self.stop;
        }
        if let Some(m) = mask {
            let c = Ijk::new(
                next.x.round() as usize,
                next.y.round() as usize,
                next.z.round() as usize,
            );
            if !m.contains(c) {
                self.stop = StopReason::OutOfMask;
                return self.stop;
            }
        }
        self.pos = next;
        self.dir = new_dir;
        self.steps += 1;
        if !self.path.is_empty() {
            self.path.push(next);
        }
        if self.steps >= params.max_steps {
            self.stop = StopReason::MaxSteps;
        }
        self.stop
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::FnField;
    use tracto_volume::Dim3;

    fn x_field(dims: Dim3) -> FnField<impl Fn(Ijk) -> [(Vec3, f64); 2] + Sync> {
        FnField::new(dims, |_| [(Vec3::X, 0.6), (Vec3::ZERO, 0.0)])
    }

    fn params() -> TrackingParams {
        TrackingParams {
            step_length: 0.5,
            angular_threshold: 0.8,
            max_steps: 100,
            min_fraction: 0.05,
            interp: InterpMode::Nearest,
        }
    }

    #[test]
    fn walks_straight_until_boundary() {
        let dims = Dim3::new(8, 4, 4);
        let f = x_field(dims);
        let mut w = Walker::new(0, Vec3::new(0.0, 2.0, 2.0), Vec3::X);
        while w.alive() {
            w.step(&f, &params(), None);
        }
        assert_eq!(w.stop, StopReason::OutOfBounds);
        // 14 steps of 0.5 reach x=7.0; the 15th would leave.
        assert_eq!(w.steps, 14);
        assert!((w.pos.x - 7.0).abs() < 1e-9);
    }

    #[test]
    fn max_steps_terminates() {
        let dims = Dim3::new(8, 4, 4);
        let f = x_field(dims);
        let mut p = params();
        p.max_steps = 5;
        let mut w = Walker::new(0, Vec3::new(0.0, 2.0, 2.0), Vec3::X);
        while w.alive() {
            w.step(&f, &p, None);
        }
        assert_eq!(w.stop, StopReason::MaxSteps);
        assert_eq!(w.steps, 5);
    }

    #[test]
    fn curvature_stops_sharp_turn() {
        // Field flips from +x to +y halfway: dot = 0 < 0.8 threshold.
        let dims = Dim3::new(8, 8, 4);
        let f = FnField::new(dims, |c: Ijk| {
            let d = if c.i < 4 { Vec3::X } else { Vec3::Y };
            [(d, 0.6), (Vec3::ZERO, 0.0)]
        });
        let mut w = Walker::new(0, Vec3::new(0.0, 2.0, 2.0), Vec3::X);
        while w.alive() {
            w.step(&f, &params(), None);
        }
        assert_eq!(w.stop, StopReason::Curvature);
        assert!(w.pos.x < 4.5, "stopped near the flip plane at {:?}", w.pos);
    }

    #[test]
    fn no_direction_in_empty_region() {
        let dims = Dim3::new(8, 4, 4);
        let f = FnField::new(dims, |c: Ijk| {
            if c.i < 4 {
                [(Vec3::X, 0.6), (Vec3::ZERO, 0.0)]
            } else {
                [(Vec3::ZERO, 0.0), (Vec3::ZERO, 0.0)]
            }
        });
        let mut w = Walker::new(0, Vec3::new(0.0, 2.0, 2.0), Vec3::X);
        while w.alive() {
            w.step(&f, &params(), None);
        }
        assert_eq!(w.stop, StopReason::NoDirection);
    }

    #[test]
    fn mask_exit_detected() {
        let dims = Dim3::new(8, 4, 4);
        let f = x_field(dims);
        let mask = Mask::from_fn(dims, |c| c.i < 4);
        let mut w = Walker::new(0, Vec3::new(0.0, 2.0, 2.0), Vec3::X);
        while w.alive() {
            w.step(&f, &params(), Some(&mask));
        }
        assert_eq!(w.stop, StopReason::OutOfMask);
        assert!(w.pos.x <= 3.5);
    }

    #[test]
    fn recording_collects_path() {
        let dims = Dim3::new(8, 4, 4);
        let f = x_field(dims);
        let mut w = Walker::new_recording(3, Vec3::new(0.0, 2.0, 2.0), Vec3::X);
        while w.alive() {
            w.step(&f, &params(), None);
        }
        assert_eq!(w.path.len() as u32, w.steps + 1);
        assert_eq!(w.seed_id, 3);
        assert_eq!(w.path[0], Vec3::new(0.0, 2.0, 2.0));
    }

    #[test]
    fn step_after_stop_is_noop() {
        let dims = Dim3::new(4, 4, 4);
        let f = x_field(dims);
        let mut p = params();
        p.max_steps = 1;
        let mut w = Walker::new(0, Vec3::new(0.0, 2.0, 2.0), Vec3::X);
        w.step(&f, &p, None);
        w.step(&f, &p, None);
        let steps = w.steps;
        let pos = w.pos;
        w.step(&f, &p, None);
        assert_eq!(w.steps, steps);
        assert_eq!(w.pos, pos);
    }

    #[test]
    fn step_with_standard_stack_is_bit_identical_to_step() {
        use crate::getter::{lane_rng, PosteriorSampleGetter};
        use crate::stop::StopStack;
        // Curved field + mask exercises every stop reason.
        let dims = Dim3::new(16, 16, 4);
        let f = FnField::new(dims, |c: Ijk| {
            let t = Vec3::new(-(c.j as f64), c.i as f64, 0.0).normalized();
            let t = if t == Vec3::ZERO { Vec3::Y } else { t };
            [(t, 0.6), (Vec3::ZERO, 0.0)]
        });
        let mask = Mask::from_fn(dims, |c| c.i + c.j < 24);
        let p = params();
        for seed in [
            Vec3::new(10.0, 1.0, 2.0),
            Vec3::new(3.0, 0.5, 2.0),
            Vec3::new(14.9, 2.0, 2.0),
        ] {
            let mut legacy = Walker::new_recording(0, seed, Vec3::Y);
            while legacy.alive() {
                legacy.step(&f, &p, Some(&mask));
            }
            let getter = PosteriorSampleGetter::new(&f, p.interp, p.min_fraction);
            let stack = StopStack::standard(&p, Some(&mask));
            let mut rng = lane_rng(0, 0, 0);
            let mut new = Walker::new_recording(0, seed, Vec3::Y);
            while new.alive() {
                new.step_with(&getter, p.step_length, &stack, &mut rng);
            }
            assert_eq!(new.stop, legacy.stop);
            assert_eq!(new.steps, legacy.steps);
            assert_eq!(new.pos, legacy.pos);
            assert_eq!(new.path, legacy.path);
        }
    }

    #[test]
    fn walker_follows_sign_flips_in_axis_field() {
        // Stored directions alternate sign per voxel; the walker must still
        // travel in a consistent direction.
        let dims = Dim3::new(16, 4, 4);
        let f = FnField::new(dims, |c: Ijk| {
            let d = if c.i % 2 == 0 { Vec3::X } else { -Vec3::X };
            [(d, 0.6), (Vec3::ZERO, 0.0)]
        });
        let mut w = Walker::new(0, Vec3::new(0.0, 2.0, 2.0), Vec3::X);
        while w.alive() {
            w.step(&f, &params(), None);
        }
        assert_eq!(w.stop, StopReason::OutOfBounds);
        assert!(w.pos.x > 14.0, "walker should traverse the whole field");
    }
}
