//! Constrained tracking: waypoint, exclusion, and termination masks.
//!
//! The pipeline's output stage (connectivity "between two voxels" in the
//! paper) generalizes in practice to region-constrained queries, the
//! probtrackx semantics:
//!
//! * **exclusion** mask — a streamline entering it is discarded entirely
//!   (it does not count toward connectivity at all);
//! * **termination** mask — a streamline entering it stops there but is
//!   kept;
//! * **waypoint** masks — a streamline is accepted only if it visits every
//!   waypoint region.

use crate::deterministic::Streamline;
use crate::field::OrientationField;
use crate::getter::{lane_rng, PosteriorSampleGetter};
use crate::stop::{StopCriterion, StopStack};
use crate::walker::{StopReason, TrackingParams, Walker};
use tracto_volume::{Ijk, Mask, Vec3};

/// Region constraints applied while tracking.
#[derive(Clone, Copy, Default)]
pub struct TrackingPolicy<'a> {
    /// Stay-inside mask (leaving it stops the streamline), as in the base
    /// tracker.
    pub track_mask: Option<&'a Mask>,
    /// Streamlines entering this region are rejected outright.
    pub exclusion: Option<&'a Mask>,
    /// Streamlines entering this region stop (and are kept).
    pub termination: Option<&'a Mask>,
    /// All of these regions must be visited for acceptance.
    pub waypoints: &'a [Mask],
}

/// Why a streamline was rejected by the policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// Entered the exclusion mask.
    EnteredExclusion,
    /// Finished without visiting every waypoint.
    MissedWaypoint,
}

/// Outcome of policy-constrained tracking.
#[derive(Debug, Clone)]
pub enum TrackOutcome {
    /// The streamline satisfies the policy.
    Accepted(Streamline),
    /// The streamline was rejected; it is returned for inspection.
    Rejected(Streamline, RejectReason),
}

impl TrackOutcome {
    /// The streamline regardless of acceptance.
    pub fn streamline(&self) -> &Streamline {
        match self {
            TrackOutcome::Accepted(s) | TrackOutcome::Rejected(s, _) => s,
        }
    }

    /// True when accepted.
    pub fn accepted(&self) -> bool {
        matches!(self, TrackOutcome::Accepted(_))
    }
}

fn voxel_of(pos: Vec3) -> Option<Ijk> {
    if pos.x < -0.5 || pos.y < -0.5 || pos.z < -0.5 {
        return None;
    }
    Some(Ijk::new(
        pos.x.round().max(0.0) as usize,
        pos.y.round().max(0.0) as usize,
        pos.z.round().max(0.0) as usize,
    ))
}

/// Track one streamline from `seed` along `dir` under a [`TrackingPolicy`].
///
/// Policy checks happen per step (the GPU kernel evaluates them the same
/// way: masks are read-only device images), so exclusion aborts tracking
/// immediately rather than filtering post hoc.
pub fn track_with_policy<Fld: OrientationField + ?Sized>(
    field: &Fld,
    seed_id: u32,
    seed: Vec3,
    dir: Vec3,
    params: &TrackingParams,
    policy: &TrackingPolicy<'_>,
    record: bool,
) -> TrackOutcome {
    let mut walker = if record {
        Walker::new_recording(seed_id, seed, dir)
    } else {
        Walker::new(seed_id, seed, dir)
    };
    let mut visited_waypoints = vec![false; policy.waypoints.len()];
    // The policy layer drives the same modality surface as the trackers:
    // a direction getter plus the standard stop stack over the track mask.
    // Termination regions are the stop-on-entry criterion, applied at the
    // policy's own voxel granularity below.
    let getter = PosteriorSampleGetter::new(field, params.interp, params.min_fraction);
    let stop = StopStack::standard(params, policy.track_mask);
    let termination = policy.termination.map(StopCriterion::Exclusion);
    let mut rng = lane_rng(0, 0, seed_id as usize);

    // Evaluate the seed voxel itself.
    if let Some(c) = voxel_of(walker.pos) {
        if policy.exclusion.map(|m| m.contains(c)).unwrap_or(false) {
            let s = Streamline {
                seed_id,
                points: walker.path.clone(),
                steps: 0,
                stop: StopReason::OutOfMask,
            };
            return TrackOutcome::Rejected(s, RejectReason::EnteredExclusion);
        }
        for (i, wp) in policy.waypoints.iter().enumerate() {
            if wp.contains(c) {
                visited_waypoints[i] = true;
            }
        }
    }

    while walker.alive() {
        walker.step_with(&getter, params.step_length, &stop, &mut rng);
        let Some(c) = voxel_of(walker.pos) else {
            continue;
        };
        if walker.alive() || walker.stop == StopReason::MaxSteps {
            if policy.exclusion.map(|m| m.contains(c)).unwrap_or(false) {
                let s = Streamline {
                    seed_id,
                    points: walker.path,
                    steps: walker.steps,
                    stop: StopReason::OutOfMask,
                };
                return TrackOutcome::Rejected(s, RejectReason::EnteredExclusion);
            }
            for (i, wp) in policy.waypoints.iter().enumerate() {
                if !visited_waypoints[i] && wp.contains(c) {
                    visited_waypoints[i] = true;
                }
            }
            if walker.alive() {
                if let Some(r) = termination.as_ref().and_then(|t| t.stop_at_voxel(c)) {
                    walker.stop = r;
                    break;
                }
            }
        }
    }

    let s = Streamline {
        seed_id,
        points: walker.path,
        steps: walker.steps,
        stop: walker.stop,
    };
    if visited_waypoints.iter().all(|&v| v) {
        TrackOutcome::Accepted(s)
    } else {
        TrackOutcome::Rejected(s, RejectReason::MissedWaypoint)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::{FnField, InterpMode};
    use tracto_volume::Dim3;

    fn x_field(dims: Dim3) -> FnField<impl Fn(Ijk) -> [(Vec3, f64); 2] + Sync> {
        FnField::new(dims, |_| [(Vec3::X, 0.6), (Vec3::ZERO, 0.0)])
    }

    fn params() -> TrackingParams {
        TrackingParams {
            step_length: 0.5,
            angular_threshold: 0.8,
            max_steps: 1000,
            min_fraction: 0.05,
            interp: InterpMode::Nearest,
        }
    }

    #[test]
    fn no_policy_accepts_everything() {
        let dims = Dim3::new(12, 4, 4);
        let f = x_field(dims);
        let out = track_with_policy(
            &f,
            0,
            Vec3::new(0.0, 2.0, 2.0),
            Vec3::X,
            &params(),
            &TrackingPolicy::default(),
            false,
        );
        assert!(out.accepted());
        assert!(out.streamline().steps > 10);
    }

    #[test]
    fn exclusion_rejects_midway() {
        let dims = Dim3::new(12, 4, 4);
        let f = x_field(dims);
        let excl = Mask::from_fn(dims, |c| c.i == 6);
        let policy = TrackingPolicy {
            exclusion: Some(&excl),
            ..Default::default()
        };
        let out = track_with_policy(
            &f,
            0,
            Vec3::new(0.0, 2.0, 2.0),
            Vec3::X,
            &params(),
            &policy,
            false,
        );
        match out {
            TrackOutcome::Rejected(s, RejectReason::EnteredExclusion) => {
                assert!(
                    s.steps < 13,
                    "must abort at the exclusion wall, got {}",
                    s.steps
                );
            }
            other => panic!("expected exclusion rejection, got {other:?}"),
        }
    }

    #[test]
    fn exclusion_at_seed_rejects_immediately() {
        let dims = Dim3::new(12, 4, 4);
        let f = x_field(dims);
        let excl = Mask::from_fn(dims, |c| c.i == 0);
        let policy = TrackingPolicy {
            exclusion: Some(&excl),
            ..Default::default()
        };
        let out = track_with_policy(
            &f,
            0,
            Vec3::new(0.0, 2.0, 2.0),
            Vec3::X,
            &params(),
            &policy,
            false,
        );
        assert!(!out.accepted());
        assert_eq!(out.streamline().steps, 0);
    }

    #[test]
    fn termination_stops_but_keeps() {
        let dims = Dim3::new(12, 4, 4);
        let f = x_field(dims);
        let term = Mask::from_fn(dims, |c| c.i >= 6);
        let policy = TrackingPolicy {
            termination: Some(&term),
            ..Default::default()
        };
        let out = track_with_policy(
            &f,
            0,
            Vec3::new(0.0, 2.0, 2.0),
            Vec3::X,
            &params(),
            &policy,
            true,
        );
        assert!(out.accepted());
        let s = out.streamline();
        assert!(
            s.points.last().unwrap().x <= 6.5,
            "stopped at the termination wall"
        );
        assert!(s.steps >= 11);
    }

    #[test]
    fn waypoint_required_for_acceptance() {
        let dims = Dim3::new(12, 4, 4);
        let f = x_field(dims);
        // Waypoint the walker passes.
        let on_path = Mask::from_fn(dims, |c| c.i == 8 && c.j == 2 && c.k == 2);
        // Waypoint it cannot reach.
        let off_path = Mask::from_fn(dims, |c| c.j == 0 && c.k == 0);
        let accept = TrackingPolicy {
            waypoints: std::slice::from_ref(&on_path),
            ..Default::default()
        };
        let out = track_with_policy(
            &f,
            0,
            Vec3::new(0.0, 2.0, 2.0),
            Vec3::X,
            &params(),
            &accept,
            false,
        );
        assert!(out.accepted());

        let both = [on_path, off_path];
        let reject = TrackingPolicy {
            waypoints: &both,
            ..Default::default()
        };
        let out = track_with_policy(
            &f,
            0,
            Vec3::new(0.0, 2.0, 2.0),
            Vec3::X,
            &params(),
            &reject,
            false,
        );
        assert!(matches!(
            out,
            TrackOutcome::Rejected(_, RejectReason::MissedWaypoint)
        ));
    }

    #[test]
    fn waypoint_at_seed_counts() {
        let dims = Dim3::new(12, 4, 4);
        let f = x_field(dims);
        let seed_wp = Mask::from_fn(dims, |c| c.i == 0 && c.j == 2 && c.k == 2);
        let policy = TrackingPolicy {
            waypoints: std::slice::from_ref(&seed_wp),
            ..Default::default()
        };
        let out = track_with_policy(
            &f,
            0,
            Vec3::new(0.0, 2.0, 2.0),
            Vec3::X,
            &params(),
            &policy,
            false,
        );
        assert!(out.accepted());
    }

    #[test]
    fn track_mask_still_respected() {
        let dims = Dim3::new(12, 4, 4);
        let f = x_field(dims);
        let stay = Mask::from_fn(dims, |c| c.i < 5);
        let policy = TrackingPolicy {
            track_mask: Some(&stay),
            ..Default::default()
        };
        let out = track_with_policy(
            &f,
            0,
            Vec3::new(0.0, 2.0, 2.0),
            Vec3::X,
            &params(),
            &policy,
            false,
        );
        assert!(out.accepted());
        assert!(out.streamline().steps <= 10);
    }
}
