//! The analytic fast tier (after Cieslak et al., *Analytic Tractography*):
//! collapse the MCMC posterior to its per-voxel mean field and answer
//! connectivity questions from closed-form local evaluations instead of
//! thousands of per-sample walks.
//!
//! Two pieces:
//!
//! * [`mean_posterior`] + [`analytic_params`] — the service tier. The
//!   posterior stack collapses to **one** mean sample volume and the step
//!   length is raised to whole-voxel hops (with `max_steps` rescaled so
//!   spatial reach is preserved), so the unchanged tracking machinery runs
//!   `samples × (1/step)` times cheaper in simulated time. The batch
//!   scheduler routes `--modality analytic` (and optionally low-priority)
//!   jobs through this transform.
//! * [`local_connectivity`] — the fully closed-form estimate: a one-sweep
//!   per-voxel score of how coherently each voxel's mean fiber
//!   orientation continues into the neighbor it points at. No
//!   streamlines at all; useful as a screening map.

use crate::field::{InterpMode, SampleFieldView};
use crate::getter::{DirectionGetter, PosteriorSampleGetter};
use crate::walker::TrackingParams;
use tracto_mcmc::SampleVolumes;
use tracto_rng::HybridTaus;
use tracto_volume::{Dim3, Ijk, Vec3, Volume3};

/// Collapse a posterior sample stack to one mean sample volume: per stick
/// slot, the sign-aligned vector mean of the sampled directions and the
/// arithmetic mean of the sampled fractions. Slots whose mean direction
/// vanishes (or whose mean fraction is zero) become empty sticks.
pub fn mean_posterior(samples: &SampleVolumes) -> SampleVolumes {
    let dims = samples.dims();
    let n = samples.num_samples();
    let mut mean = SampleVolumes::zeros(dims, 1);
    if n == 0 {
        return mean;
    }
    for c in dims.iter() {
        let reference = samples.sticks_at(c, 0);
        let mut acc = [(Vec3::ZERO, 0.0f64); 2];
        for s in 0..n {
            let sticks = samples.sticks_at(c, s);
            for slot in 0..2 {
                let (d, f) = sticks[slot];
                acc[slot].1 += f;
                if f > 0.0 && d != Vec3::ZERO {
                    acc[slot].0 += d.aligned_with(reference[slot].0);
                }
            }
        }
        let fields: [(&mut tracto_volume::Volume4<f32>, _, _); 2] = [
            (&mut mean.f1, &mut mean.th1, &mut mean.ph1),
            (&mut mean.f2, &mut mean.th2, &mut mean.ph2),
        ];
        for (slot, (fv, thv, phv)) in fields.into_iter().enumerate() {
            let dir = acc[slot].0.normalized();
            let f = acc[slot].1 / n as f64;
            if dir == Vec3::ZERO || f <= 0.0 {
                continue;
            }
            let (theta, phi) = dir.to_spherical();
            fv.set(c, 0, f as f32);
            thv.set(c, 0, theta as f32);
            phv.set(c, 0, phi as f32);
        }
    }
    mean
}

/// Tracking parameters for the analytic tier: whole-voxel steps with
/// `max_steps` rescaled so the maximum spatial reach (`max_steps × step`)
/// is preserved. Thresholds and interpolation are untouched.
pub fn analytic_params(params: &TrackingParams) -> TrackingParams {
    let reach = params.max_steps as f64 * params.step_length;
    TrackingParams {
        step_length: 1.0,
        max_steps: (reach.ceil() as u32).max(1),
        ..*params
    }
}

/// The closed-form local-connectivity map: for each voxel, each eligible
/// mean stick contributes `fraction × |d · d'|` where `d'` is the best
/// continuation stick in the neighbor voxel that `d` points at (zero when
/// the neighbor is outside the volume or has no eligible stick). High
/// values mean "a streamline through here keeps going coherently" — the
/// no-streamline screening estimate.
pub fn local_connectivity(samples: &SampleVolumes, min_fraction: f64) -> Volume3<f32> {
    let mean = mean_posterior(samples);
    let dims = mean.dims();
    Volume3::from_fn(dims, |c| {
        let mut score = 0.0f64;
        for (d, f) in mean.sticks_at(c, 0) {
            if f < min_fraction || f <= 0.0 || d == Vec3::ZERO {
                continue;
            }
            let nx = c.i as f64 + d.x.round();
            let ny = c.j as f64 + d.y.round();
            let nz = c.k as f64 + d.z.round();
            if nx < 0.0 || ny < 0.0 || nz < 0.0 {
                continue;
            }
            let nc = Ijk::new(nx as usize, ny as usize, nz as usize);
            if !dims.contains(nc) || nc == c {
                continue;
            }
            let continuation = mean
                .sticks_at(nc, 0)
                .iter()
                .filter(|(nd, nf)| *nf >= min_fraction && *nf > 0.0 && *nd != Vec3::ZERO)
                .map(|(nd, _)| nd.dot(d).abs())
                .fold(0.0f64, f64::max);
            score += f * continuation;
        }
        score as f32
    })
}

/// The analytic tier as a [`DirectionGetter`]: deterministic direction
/// selection over the collapsed posterior mean. Owns its mean volume so
/// it can outlive the full sample stack.
#[derive(Debug, Clone)]
pub struct AnalyticGetter {
    mean: SampleVolumes,
    interp: InterpMode,
    min_fraction: f64,
}

impl AnalyticGetter {
    /// Collapse `samples` and wrap the result.
    pub fn new(samples: &SampleVolumes, interp: InterpMode, min_fraction: f64) -> Self {
        AnalyticGetter {
            mean: mean_posterior(samples),
            interp,
            min_fraction,
        }
    }

    /// The collapsed mean sample volume (always exactly one sample).
    pub fn mean(&self) -> &SampleVolumes {
        &self.mean
    }

    fn inner(&self) -> PosteriorSampleGetter<SampleFieldView<'_>> {
        PosteriorSampleGetter::new(
            SampleFieldView::new(&self.mean, 0),
            self.interp,
            self.min_fraction,
        )
    }
}

impl DirectionGetter for AnalyticGetter {
    fn dims(&self) -> Dim3 {
        self.mean.dims()
    }

    fn initial_directions(&self, seed: Vec3) -> Vec<Vec3> {
        self.inner().initial_directions(seed)
    }

    #[inline]
    fn next_direction(&self, pos: Vec3, prev: Vec3, rng: &mut HybridTaus) -> Option<Vec3> {
        self.inner().next_direction(pos, prev, rng)
    }

    fn peak_count(&self) -> usize {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::getter::lane_rng;

    /// A stack whose samples wobble around +x in the xy-plane.
    fn wobbly_x_samples(dims: Dim3, n: usize) -> SampleVolumes {
        let mut sv = SampleVolumes::zeros(dims, n);
        for c in dims.iter() {
            for s in 0..n {
                // ±0.2 rad wobble in φ, alternating sign per sample.
                let wobble = if s % 2 == 0 { 0.2 } else { -0.2 };
                sv.f1.set(c, s, 0.6);
                sv.th1.set(c, s, std::f64::consts::FRAC_PI_2 as f32);
                sv.ph1.set(c, s, wobble);
            }
        }
        sv
    }

    #[test]
    fn mean_posterior_collapses_to_one_sample() {
        let dims = Dim3::new(6, 4, 4);
        let sv = wobbly_x_samples(dims, 4);
        let mean = mean_posterior(&sv);
        assert_eq!(mean.num_samples(), 1);
        assert_eq!(mean.dims(), dims);
        let c = Ijk::new(3, 2, 2);
        let [(d, f), (d2, f2)] = mean.sticks_at(c, 0);
        // The ±wobble cancels: the mean is +x with the mean fraction.
        assert!(d.dot(Vec3::X) > 0.999, "mean direction {d:?}");
        assert!((f - 0.6).abs() < 1e-6, "mean fraction {f}");
        // The empty second slot stays empty (θ=φ=0 ⇒ +z with f=0).
        assert_eq!(f2, 0.0);
        let _ = d2;
    }

    #[test]
    fn mean_posterior_handles_sign_flipped_samples() {
        // Antipodal directions are the same fiber axis: the sign-aligned
        // mean must not cancel to zero.
        let dims = Dim3::new(2, 2, 2);
        let mut sv = SampleVolumes::zeros(dims, 2);
        for c in dims.iter() {
            sv.f1.set(c, 0, 0.5);
            sv.th1.set(c, 0, std::f64::consts::FRAC_PI_2 as f32);
            sv.ph1.set(c, 0, 0.0); // +x
            sv.f1.set(c, 1, 0.5);
            sv.th1.set(c, 1, std::f64::consts::FRAC_PI_2 as f32);
            sv.ph1.set(c, 1, std::f64::consts::PI as f32); // −x
        }
        let mean = mean_posterior(&sv);
        let (d, f) = mean.sticks_at(Ijk::new(1, 1, 1), 0)[0];
        assert!(d.dot(Vec3::X).abs() > 0.999, "axis preserved: {d:?}");
        assert!((f - 0.5).abs() < 1e-6);
    }

    #[test]
    fn analytic_params_preserve_reach() {
        let p = TrackingParams {
            step_length: 0.1,
            angular_threshold: 0.9,
            max_steps: 400,
            min_fraction: 0.05,
            interp: InterpMode::Nearest,
        };
        let a = analytic_params(&p);
        assert_eq!(a.step_length, 1.0);
        assert_eq!(a.max_steps, 40);
        assert_eq!(a.angular_threshold, p.angular_threshold);
        assert_eq!(a.min_fraction, p.min_fraction);
        // Degenerate inputs never collapse to a zero budget.
        let tiny = TrackingParams {
            max_steps: 1,
            step_length: 0.1,
            ..p
        };
        assert_eq!(analytic_params(&tiny).max_steps, 1);
    }

    #[test]
    fn local_connectivity_scores_coherent_voxels() {
        let dims = Dim3::new(8, 4, 4);
        let sv = wobbly_x_samples(dims, 4);
        let map = local_connectivity(&sv, 0.05);
        // Interior voxel: +x neighbor exists and is perfectly aligned.
        let interior = *map.get(Ijk::new(3, 2, 2));
        assert!(interior > 0.55, "coherent interior score {interior}");
        // The +x boundary voxel has no continuation.
        let edge = *map.get(Ijk::new(7, 2, 2));
        assert_eq!(edge, 0.0);
        // An empty stack scores zero everywhere.
        let empty = local_connectivity(&SampleVolumes::zeros(dims, 2), 0.05);
        assert!(empty.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn analytic_getter_is_deterministic_mean_field() {
        let dims = Dim3::new(8, 4, 4);
        let sv = wobbly_x_samples(dims, 4);
        let g = AnalyticGetter::new(&sv, InterpMode::Nearest, 0.05);
        assert_eq!(g.dims(), dims);
        assert_eq!(g.mean().num_samples(), 1);
        let mut rng = lane_rng(0, 0, 0);
        let pos = Vec3::new(2.0, 2.0, 2.0);
        let d = g.next_direction(pos, Vec3::X, &mut rng).unwrap();
        assert!(d.dot(Vec3::X) > 0.999, "mean-field direction {d:?}");
        assert_eq!(g.initial_directions(pos).len(), 1);
    }
}
