//! Orientation fields and direction selection.

use tracto_mcmc::SampleVolumes;
use tracto_volume::{Dim3, Ijk, Vec3};

/// A field of per-voxel fiber populations: up to two `(direction, fraction)`
/// sticks per voxel, the output shape of the N = 2 partial-volume model.
pub trait OrientationField: Sync {
    /// Grid dimensions.
    fn dims(&self) -> Dim3;

    /// The stick populations of voxel `c`; unused slots carry zero fraction.
    fn sticks(&self, c: Ijk) -> [(Vec3, f64); 2];
}

impl<F: OrientationField + ?Sized> OrientationField for &F {
    fn dims(&self) -> Dim3 {
        (**self).dims()
    }

    #[inline]
    fn sticks(&self, c: Ijk) -> [(Vec3, f64); 2] {
        (**self).sticks(c)
    }
}

/// One posterior sample volume viewed as an orientation field — what one
/// iteration of the paper's "for every sample volume" loop tracks through.
#[derive(Debug, Clone, Copy)]
pub struct SampleFieldView<'a> {
    samples: &'a SampleVolumes,
    sample: usize,
}

impl<'a> SampleFieldView<'a> {
    /// View sample `sample` of a sample stack.
    pub fn new(samples: &'a SampleVolumes, sample: usize) -> Self {
        assert!(sample < samples.num_samples(), "sample index out of range");
        SampleFieldView { samples, sample }
    }

    /// The sample index viewed.
    pub fn sample_index(&self) -> usize {
        self.sample
    }
}

impl OrientationField for SampleFieldView<'_> {
    fn dims(&self) -> Dim3 {
        self.samples.dims()
    }

    #[inline]
    fn sticks(&self, c: Ijk) -> [(Vec3, f64); 2] {
        self.samples.sticks_at(c, self.sample)
    }
}

/// A closure-backed field, used by tests and by ground-truth tracking.
pub struct FnField<F> {
    dims: Dim3,
    f: F,
}

impl<F: Fn(Ijk) -> [(Vec3, f64); 2] + Sync> FnField<F> {
    /// Wrap a closure.
    pub fn new(dims: Dim3, f: F) -> Self {
        FnField { dims, f }
    }
}

impl<F: Fn(Ijk) -> [(Vec3, f64); 2] + Sync> OrientationField for FnField<F> {
    fn dims(&self) -> Dim3 {
        self.dims
    }

    fn sticks(&self, c: Ijk) -> [(Vec3, f64); 2] {
        (self.f)(c)
    }
}

/// Orientation interpolation mode for the tracking kernel's
/// `Interpolation()` step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterpMode {
    /// Take the nearest voxel's selected stick (the sample-volume access
    /// pattern of the original kernel).
    Nearest,
    /// Blend the selected, sign-aligned stick of the eight surrounding
    /// voxels with trilinear weights.
    Trilinear,
}

/// Select the stick of voxel `c` that best maintains the walker's current
/// orientation (the paper's multi-fiber rule: "a right direction should be
/// chosen … maintaining the original orientation of the streamline through
/// crossing regions"), sign-aligned with `prev_dir`.
///
/// Sticks with fraction below `min_fraction` are ignored. Returns `None`
/// when no eligible stick exists.
#[inline]
pub fn select_stick<Fld: OrientationField + ?Sized>(
    field: &Fld,
    c: Ijk,
    prev_dir: Vec3,
    min_fraction: f64,
) -> Option<Vec3> {
    let sticks = field.sticks(c);
    let mut best: Option<(f64, Vec3)> = None;
    for (dir, f) in sticks {
        if f < min_fraction || f <= 0.0 || dir == Vec3::ZERO {
            continue;
        }
        let align = dir.dot(prev_dir).abs();
        if best.map(|(a, _)| align > a).unwrap_or(true) {
            best = Some((align, dir.aligned_with(prev_dir)));
        }
    }
    best.map(|(_, d)| d)
}

/// Evaluate the stepping direction at a continuous position.
///
/// `prev_dir` both disambiguates stick signs and drives multi-fiber stick
/// selection. Positions are clamped to the lattice (bounds termination is
/// the walker's responsibility).
pub fn select_direction<Fld: OrientationField + ?Sized>(
    field: &Fld,
    pos: Vec3,
    prev_dir: Vec3,
    mode: InterpMode,
    min_fraction: f64,
) -> Option<Vec3> {
    let dims = field.dims();
    match mode {
        InterpMode::Nearest => {
            let c = Ijk::new(
                (pos.x.round().clamp(0.0, (dims.nx - 1) as f64)) as usize,
                (pos.y.round().clamp(0.0, (dims.ny - 1) as f64)) as usize,
                (pos.z.round().clamp(0.0, (dims.nz - 1) as f64)) as usize,
            );
            select_stick(field, c, prev_dir, min_fraction)
        }
        InterpMode::Trilinear => {
            let st = tracto_volume::interp::trilinear_stencil(dims, pos);
            let mut acc = Vec3::ZERO;
            let mut weight_used = 0.0;
            for (c, w) in st.corners.iter().zip(st.weights.iter()) {
                if let Some(d) = select_stick(field, *c, prev_dir, min_fraction) {
                    acc += d * *w;
                    weight_used += *w;
                }
            }
            if weight_used < 0.5 {
                // Majority of the neighborhood is sub-threshold — treat as
                // leaving the fiber-bearing region.
                return None;
            }
            let n = acc.normalized();
            (n != Vec3::ZERO).then_some(n)
        }
    }
}

/// The dominant (largest-fraction) stick at a voxel — the canonical initial
/// direction of a streamline seeded there.
pub fn dominant_direction<Fld: OrientationField + ?Sized>(
    field: &Fld,
    c: Ijk,
    min_fraction: f64,
) -> Option<Vec3> {
    let sticks = field.sticks(c);
    sticks
        .iter()
        .filter(|(d, f)| *f >= min_fraction && *f > 0.0 && *d != Vec3::ZERO)
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite fractions"))
        .map(|(d, _)| *d)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_x_field(dims: Dim3) -> FnField<impl Fn(Ijk) -> [(Vec3, f64); 2] + Sync> {
        FnField::new(dims, |_| [(Vec3::X, 0.6), (Vec3::ZERO, 0.0)])
    }

    fn crossing_field(dims: Dim3) -> FnField<impl Fn(Ijk) -> [(Vec3, f64); 2] + Sync> {
        FnField::new(dims, |_| [(Vec3::X, 0.5), (Vec3::Y, 0.4)])
    }

    #[test]
    fn select_stick_prefers_aligned_population() {
        let dims = Dim3::new(4, 4, 4);
        let f = crossing_field(dims);
        let c = Ijk::new(1, 1, 1);
        // Walker heading along y picks the y stick even though x has more
        // volume.
        let d = select_stick(&f, c, Vec3::Y, 0.05).unwrap();
        assert!((d - Vec3::Y).norm() < 1e-12);
        let d = select_stick(&f, c, Vec3::X, 0.05).unwrap();
        assert!((d - Vec3::X).norm() < 1e-12);
    }

    #[test]
    fn select_stick_aligns_sign() {
        let dims = Dim3::new(2, 2, 2);
        let f = uniform_x_field(dims);
        let d = select_stick(&f, Ijk::new(0, 0, 0), -Vec3::X, 0.0).unwrap();
        assert!(
            (d + Vec3::X).norm() < 1e-12,
            "must flip into walker hemisphere"
        );
    }

    #[test]
    fn select_stick_respects_min_fraction() {
        let dims = Dim3::new(2, 2, 2);
        let f = FnField::new(dims, |_| [(Vec3::X, 0.04), (Vec3::ZERO, 0.0)]);
        assert!(select_stick(&f, Ijk::new(0, 0, 0), Vec3::X, 0.05).is_none());
        assert!(select_stick(&f, Ijk::new(0, 0, 0), Vec3::X, 0.01).is_some());
    }

    #[test]
    fn nearest_direction_uses_closest_voxel() {
        let dims = Dim3::new(4, 1, 1);
        let f = FnField::new(dims, |c| {
            let d = if c.i < 2 { Vec3::X } else { Vec3::Z };
            [(d, 0.5), (Vec3::ZERO, 0.0)]
        });
        let d = select_direction(
            &f,
            Vec3::new(2.4, 0.0, 0.0),
            Vec3::Z,
            InterpMode::Nearest,
            0.0,
        )
        .unwrap();
        assert!((d - Vec3::Z).norm() < 1e-12);
        let d = select_direction(
            &f,
            Vec3::new(1.4, 0.0, 0.0),
            Vec3::X,
            InterpMode::Nearest,
            0.0,
        )
        .unwrap();
        assert!((d - Vec3::X).norm() < 1e-12);
    }

    #[test]
    fn trilinear_blends_neighbors() {
        let dims = Dim3::new(2, 1, 1);
        // Directions 45° apart; midpoint blend must lie between them.
        let d0 = Vec3::X;
        let d1 = Vec3::new(1.0, 1.0, 0.0).normalized();
        let f = FnField::new(dims, move |c| {
            [(if c.i == 0 { d0 } else { d1 }, 0.5), (Vec3::ZERO, 0.0)]
        });
        let d = select_direction(
            &f,
            Vec3::new(0.5, 0.0, 0.0),
            Vec3::X,
            InterpMode::Trilinear,
            0.0,
        )
        .unwrap();
        assert!((d.norm() - 1.0).abs() < 1e-12);
        assert!(
            d.dot(d0) > 0.8 && d.dot(d1) > 0.8,
            "blend between neighbors: {d:?}"
        );
    }

    #[test]
    fn trilinear_none_when_region_subthreshold() {
        let dims = Dim3::new(2, 2, 2);
        let f = FnField::new(dims, |_| [(Vec3::X, 0.01), (Vec3::ZERO, 0.0)]);
        assert!(select_direction(
            &f,
            Vec3::new(0.5, 0.5, 0.5),
            Vec3::X,
            InterpMode::Trilinear,
            0.05
        )
        .is_none());
    }

    #[test]
    fn dominant_direction_largest_fraction() {
        let dims = Dim3::new(2, 2, 2);
        let f = crossing_field(dims);
        let d = dominant_direction(&f, Ijk::new(0, 0, 0), 0.0).unwrap();
        assert!((d - Vec3::X).norm() < 1e-12);
    }

    #[test]
    fn dominant_direction_none_when_empty() {
        let dims = Dim3::new(2, 2, 2);
        let f = FnField::new(dims, |_| [(Vec3::ZERO, 0.0), (Vec3::ZERO, 0.0)]);
        assert!(dominant_direction(&f, Ijk::new(0, 0, 0), 0.0).is_none());
    }

    #[test]
    fn sample_field_view_reads_samples() {
        let mut sv = SampleVolumes::zeros(Dim3::new(2, 2, 2), 2);
        // th=π/2, ph=0 → +x in sample 0; th=π/2, ph=π/2 → +y in sample 1.
        let c = Ijk::new(1, 1, 1);
        sv.f1.set(c, 0, 0.6);
        sv.th1.set(c, 0, std::f64::consts::FRAC_PI_2 as f32);
        sv.ph1.set(c, 0, 0.0);
        sv.f1.set(c, 1, 0.6);
        sv.th1.set(c, 1, std::f64::consts::FRAC_PI_2 as f32);
        sv.ph1.set(c, 1, std::f64::consts::FRAC_PI_2 as f32);
        let v0 = SampleFieldView::new(&sv, 0);
        let v1 = SampleFieldView::new(&sv, 1);
        assert!(v0.sticks(c)[0].0.dot(Vec3::X) > 0.999);
        assert!(v1.sticks(c)[0].0.dot(Vec3::Y) > 0.999);
        assert_eq!(v0.sample_index(), 0);
    }

    #[test]
    #[should_panic(expected = "sample index")]
    fn sample_view_out_of_range() {
        let sv = SampleVolumes::zeros(Dim3::new(2, 2, 2), 1);
        let _ = SampleFieldView::new(&sv, 1);
    }
}
