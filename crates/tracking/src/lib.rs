//! Deterministic and probabilistic streamline tracking.
//!
//! Step 2 of the paper's pipeline: probabilistic streamlining is
//! "deterministic streamlining invoked for many times" — once per posterior
//! sample volume per seed — after which connectivity is the fraction of
//! streamlines that visit a target voxel.
//!
//! Layout:
//!
//! * [`field`] — the [`field::OrientationField`]
//!   abstraction over per-voxel stick populations (posterior samples,
//!   ground-truth fields, closures for tests) plus direction selection with
//!   multi-fiber "maintain orientation" semantics and nearest/trilinear
//!   interpolation;
//! * [`walker`] — one streamline walker: stepping, stop criteria (maximum
//!   steps and angular threshold, the two criteria the paper keeps);
//! * [`deterministic`] — whole-streamline tracking from a seed;
//! * [`probabilistic`] — the CPU reference probabilistic-streamlining driver
//!   (serial baseline + rayon-parallel host path);
//! * [`segmentation`] — the paper's segmentation strategies: `A_k` uniform
//!   segments, the increasing-interval arrays `B` and `C`, single-launch
//!   `A_MaxStep`, per-step `A_1`, and load-sorted variants (Fig. 4);
//! * [`gpu`] — Algorithm 1: the segmented tracking loop on the simulated
//!   GPU, with per-segment compaction and the full timing breakdown;
//! * [`policy`] — waypoint / exclusion / termination mask constraints;
//! * [`tensorline`] — the classical deterministic single-tensor baseline;
//! * [`connectivity`] — visit counting and the connectivity matrix;
//! * [`export`] — streamline polyline export (CSV) for the biological
//!   figures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod connectivity;
pub mod deterministic;
pub mod export;
pub mod field;
pub mod gpu;
pub mod policy;
pub mod probabilistic;
pub mod resample;
pub mod segmentation;
pub mod tensorline;
pub mod walker;

pub use connectivity::ConnectivityAccumulator;
pub use field::{select_direction, InterpMode, OrientationField, SampleFieldView};
pub use gpu::{GpuTracker, GpuTrackingReport};
pub use probabilistic::{CpuTracker, TrackingOutput};
pub use segmentation::SegmentationStrategy;
pub use walker::{StopReason, TrackingParams, Walker};
