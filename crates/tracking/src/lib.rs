//! Deterministic and probabilistic streamline tracking.
//!
//! Step 2 of the paper's pipeline: probabilistic streamlining is
//! "deterministic streamlining invoked for many times" — once per posterior
//! sample volume per seed — after which connectivity is the fraction of
//! streamlines that visit a target voxel.
//!
//! Layout:
//!
//! * [`field`] — the [`field::OrientationField`]
//!   abstraction over per-voxel stick populations (posterior samples,
//!   ground-truth fields, closures for tests) plus direction selection with
//!   multi-fiber "maintain orientation" semantics and nearest/trilinear
//!   interpolation;
//! * [`getter`] — the modality layer: the object-safe
//!   [`getter::DirectionGetter`] trait with the posterior sampler,
//!   tensorline, and analytic tiers as interchangeable implementations,
//!   plus the [`getter::Modality`] selector threaded through the service;
//! * [`stop`] — the composable [`stop::StopStack`] of termination
//!   criteria (max steps, curvature, bounds, stop/exclusion masks with
//!   percentile thresholds);
//! * [`walker`] — one streamline walker: stepping through a getter under
//!   a stop stack (plus the fused legacy fast path);
//! * [`deterministic`] — whole-streamline tracking from a seed;
//! * [`probabilistic`] — the CPU reference probabilistic-streamlining driver
//!   (serial baseline + rayon-parallel host path);
//! * [`analytic`] — the closed-form fast tier: posterior-mean collapse,
//!   rescaled voxel-hop parameters, and the no-streamline
//!   local-connectivity map (after Cieslak et al.);
//! * [`segmentation`] — the paper's segmentation strategies: `A_k` uniform
//!   segments, the increasing-interval arrays `B` and `C`, single-launch
//!   `A_MaxStep`, per-step `A_1`, and load-sorted variants (Fig. 4);
//! * [`gpu`] — Algorithm 1: the segmented tracking loop on the simulated
//!   GPU, with per-segment compaction and the full timing breakdown;
//! * [`policy`] — waypoint / exclusion / termination mask constraints;
//! * [`tensorline`] — the classical deterministic single-tensor baseline;
//! * [`connectivity`] — visit counting and the connectivity matrix;
//! * [`export`] — streamline polyline export (CSV) for the biological
//!   figures.
//!
//! Import the working set in one line with [`prelude`]. Direction
//! selection (`select_direction`, `InterpMode`) lives behind the getter
//! surface now; reach it via [`prelude`] or the [`field`] module rather
//! than crate-root re-exports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytic;
pub mod cluster;
pub mod connectivity;
pub mod deterministic;
pub mod export;
pub mod field;
pub mod getter;
pub mod gpu;
pub mod policy;
pub mod probabilistic;
pub mod resample;
pub mod segmentation;
pub mod stop;
pub mod tensorline;
pub mod walker;

pub use connectivity::ConnectivityAccumulator;
pub use field::{OrientationField, SampleFieldView};
pub use getter::{DirectionGetter, Modality};
pub use gpu::{GpuTracker, GpuTrackingReport};
pub use probabilistic::{CpuTracker, TrackingOutput};
pub use segmentation::SegmentationStrategy;
pub use stop::{StopCriterion, StopStack};
pub use walker::{StopReason, TrackingParams, Walker};

/// The one-line import for tracking callers: modality surface, stop
/// criteria, trackers, and the parameter/result types.
pub mod prelude {
    pub use crate::analytic::{
        analytic_params, local_connectivity, mean_posterior, AnalyticGetter,
    };
    pub use crate::connectivity::ConnectivityAccumulator;
    pub use crate::deterministic::{track_streamline, track_streamline_with, Streamline};
    pub use crate::field::{
        select_direction, FnField, InterpMode, OrientationField, SampleFieldView,
    };
    pub use crate::getter::{
        lane_rng, DirectionGetter, Modality, PosteriorSampleGetter, TensorlineGetter,
    };
    pub use crate::gpu::{GpuTracker, GpuTrackingReport, SeedOrdering};
    pub use crate::probabilistic::{seeds_from_mask, CpuTracker, RecordMode, TrackingOutput};
    pub use crate::segmentation::SegmentationStrategy;
    pub use crate::stop::{mask_from_percentile, percentile_threshold, StopCriterion, StopStack};
    pub use crate::tensorline::TensorField;
    pub use crate::walker::{StopReason, TrackingParams, Walker};
}
